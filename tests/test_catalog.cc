// Multi-tenant catalog tests (server/catalog.h + the scoped protocol of
// server/server.h): catalog unit semantics — lazy opens, LRU eviction with
// in-flight pins, per-tenant refresh — and the served behavior of one
// daemon holding many graphs: scoped counts vs dedicated single-tenant
// daemons, unknown-id rejection, eviction churn under --max-engines 1, and
// old-client compatibility against a v2 daemon.

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "engine/gm_engine.h"
#include "query/pattern_parser.h"
#include "server/catalog.h"
#include "server/client.h"
#include "server/server.h"
#include "storage/delta_log.h"
#include "storage/snapshot.h"
#include "test_util.h"

namespace rigpm {
namespace {

using rigpm::testing::PaperExample;
using namespace rigpm::server;

std::string UniquePath() {
  static std::atomic<int> counter{0};
  return (std::filesystem::temp_directory_path() /
          ("rigpm_catalog_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter++)))
      .string();
}

constexpr const char* kPaperPattern = "(a:0)->(b:1), (a)->(c:2), (b)=>(c)";

/// Occurrence count from a throwaway in-process engine — the oracle every
/// served count is compared against.
uint64_t ColdCount(const Graph& g, const std::string& pattern) {
  GmEngine cold(g);
  auto q = ParsePattern(pattern);
  EXPECT_TRUE(q.has_value());
  if (!q.has_value()) return ~0ull;
  return static_cast<uint64_t>(cold.EvaluateCollect(*q).size());
}

/// Three distinct graphs persisted as snapshots, each with a (lazily
/// created) delta log path bound to its base checksum — the raw material
/// for both the catalog unit tests and the multi-tenant daemon tests.
class MultiTenantFiles : public ::testing::Test {
 protected:
  static constexpr const char* kIds[3] = {"alpha", "beta", "gamma"};

  struct TenantFiles {
    Graph graph;
    std::string snap, delta;
    uint64_t checksum = 0;
  };

  void SetUp() override {
    Build(0, PaperExample::MakeGraph());
    // Distinct tenants on purpose: extra a->b / a->c edges change the
    // paper query's count differently per graph, so a request routed to
    // the wrong tenant cannot return the right number by accident.
    const std::vector<std::pair<NodeId, NodeId>> beta_extra = {{0, 3},
                                                               {0, 7}};
    const std::vector<std::pair<NodeId, NodeId>> gamma_extra = {
        {1, 4}, {1, 8}, {2, 6}};
    Build(1, ApplyEdgesToGraph(t_[0].graph, beta_extra));
    Build(2, ApplyEdgesToGraph(t_[0].graph, gamma_extra));
    ASSERT_NE(ColdCount(t_[0].graph, kPaperPattern),
              ColdCount(t_[1].graph, kPaperPattern));
    ASSERT_NE(ColdCount(t_[0].graph, kPaperPattern),
              ColdCount(t_[2].graph, kPaperPattern));
  }

  void TearDown() override {
    for (const TenantFiles& t : t_) {
      if (!t.snap.empty()) std::remove(t.snap.c_str());
      if (!t.delta.empty()) std::remove(t.delta.c_str());
    }
  }

  void Build(int i, Graph g) {
    t_[i].graph = std::move(g);
    t_[i].snap = UniquePath() + ".snap";
    t_[i].delta = UniquePath() + ".delta";
    std::string error;
    GmEngine cold(t_[i].graph);
    ASSERT_TRUE(SaveEngineSnapshot(cold, t_[i].snap, &error)) << error;
    auto info = InspectSnapshot(t_[i].snap, &error);
    ASSERT_TRUE(info.has_value()) << error;
    t_[i].checksum = info->stored_checksum;
  }

  EngineSource SourceFor(int i) const {
    EngineSource source;
    source.snapshot_path = t_[i].snap;
    source.delta_path = t_[i].delta;
    return source;
  }

  void AppendTo(int i, const std::vector<std::pair<NodeId, NodeId>>& edges) {
    std::string error;
    auto writer = DeltaWriter::Open(t_[i].delta, t_[i].checksum,
                                    t_[i].graph.NumNodes(), &error);
    ASSERT_NE(writer, nullptr) << error;
    ASSERT_TRUE(writer->Append(edges, &error)) << error;
  }

  TenantFiles t_[3];
};

// --------------------------------------------------------- catalog (unit)

using EngineCatalogTest = MultiTenantFiles;

TEST_F(EngineCatalogTest, RegisterAcquireDefaultsAndErrors) {
  EngineCatalog catalog;
  std::string error;
  ASSERT_TRUE(catalog.Register("alpha", SourceFor(0), &error)) << error;
  ASSERT_TRUE(catalog.Register("beta", SourceFor(1), &error)) << error;

  // Duplicate ids and empty sources are registration-time mistakes.
  EXPECT_FALSE(catalog.Register("alpha", SourceFor(2), &error));
  EXPECT_FALSE(catalog.Register("late", EngineSource{}, &error));

  // The first registration is the default; "" resolves to it.
  EXPECT_EQ(catalog.default_id(), "alpha");
  EXPECT_TRUE(catalog.Has("beta"));
  EXPECT_FALSE(catalog.Has("nope"));
  auto def = catalog.Acquire("", &error);
  ASSERT_NE(def, nullptr) << error;
  auto alpha = catalog.Acquire("alpha", &error);
  ASSERT_NE(alpha, nullptr) << error;
  EXPECT_EQ(def->engine.get(), alpha->engine.get());

  EXPECT_EQ(catalog.Acquire("nope", &error), nullptr);
  EXPECT_NE(error.find("unknown graph id"), std::string::npos) << error;

  ASSERT_TRUE(catalog.SetDefault("beta"));
  EXPECT_FALSE(catalog.SetDefault("nope"));
  auto beta = catalog.Acquire("", &error);
  ASSERT_NE(beta, nullptr) << error;
  EXPECT_NE(beta->engine.get(), alpha->engine.get());
}

TEST_F(EngineCatalogTest, LazyOpensCountMissesThenHits) {
  EngineCatalog catalog;
  std::string error;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(catalog.Register(kIds[i], SourceFor(i), &error)) << error;
  }
  CatalogStats s0 = catalog.Stats();
  EXPECT_EQ(s0.registered, 3u);
  EXPECT_EQ(s0.resident, 0u);  // nothing opened yet
  EXPECT_EQ(s0.misses, 0u);

  ASSERT_NE(catalog.Acquire("beta", &error), nullptr) << error;
  CatalogStats s1 = catalog.Stats();
  EXPECT_EQ(s1.resident, 1u);
  EXPECT_EQ(s1.misses, 1u);

  ASSERT_NE(catalog.Acquire("beta", &error), nullptr) << error;
  CatalogStats s2 = catalog.Stats();
  EXPECT_EQ(s2.misses, 1u);  // second acquire is a hit
  EXPECT_GE(s2.hits, 1u);

  // Per-tenant rows: beta resident, the others cold, all refreshable.
  std::vector<TenantInfo> list = catalog.List();
  ASSERT_EQ(list.size(), 3u);
  for (const TenantInfo& info : list) {
    EXPECT_EQ(info.resident, info.id == "beta");
    EXPECT_TRUE(info.refreshable);
  }
}

TEST_F(EngineCatalogTest, LruEvictionKeepsInFlightPinsAlive) {
  EngineCatalog catalog(/*max_engines=*/1);
  std::string error;
  ASSERT_TRUE(catalog.Register("alpha", SourceFor(0), &error)) << error;
  ASSERT_TRUE(catalog.Register("beta", SourceFor(1), &error)) << error;

  auto pin = catalog.Acquire("alpha", &error);
  ASSERT_NE(pin, nullptr) << error;

  // Opening beta must evict alpha (cap 1) — but the pin keeps the victim
  // engine alive and fully usable mid-"query".
  ASSERT_NE(catalog.Acquire("beta", &error), nullptr) << error;
  CatalogStats s = catalog.Stats();
  EXPECT_EQ(s.resident, 1u);
  EXPECT_EQ(s.evictions, 1u);
  auto q = ParsePattern(kPaperPattern);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(pin->engine->EvaluateCollect(*q).size(),
            ColdCount(t_[0].graph, kPaperPattern));

  // Reacquiring the victim is a fresh open that evicts the other tenant.
  auto reopened = catalog.Acquire("alpha", &error);
  ASSERT_NE(reopened, nullptr) << error;
  EXPECT_NE(reopened.get(), pin.get());
  s = catalog.Stats();
  EXPECT_EQ(s.resident, 1u);
  EXPECT_EQ(s.evictions, 2u);
  EXPECT_EQ(s.misses, 3u);  // alpha, beta, alpha-again
}

TEST_F(EngineCatalogTest, AdoptedEnginesArePinnedResidents) {
  Graph graph = PaperExample::MakeGraph();
  GmEngine engine(graph);
  EngineCatalog catalog(/*max_engines=*/1);
  std::string error;
  ASSERT_TRUE(catalog.AdoptEngine("default", engine, {}, 0, &error)) << error;
  ASSERT_TRUE(catalog.Register("beta", SourceFor(1), &error)) << error;

  // The adopted tenant neither counts against the cap nor gets evicted:
  // both engines stay resident and the adopted one survives LRU pressure.
  ASSERT_NE(catalog.Acquire("beta", &error), nullptr) << error;
  ASSERT_NE(catalog.Acquire("beta", &error), nullptr) << error;
  CatalogStats s = catalog.Stats();
  EXPECT_EQ(s.resident, 2u);
  EXPECT_EQ(s.evictions, 0u);
  auto adopted = catalog.Acquire("", &error);
  ASSERT_NE(adopted, nullptr) << error;
  EXPECT_EQ(adopted->engine.get(), &engine);
}

TEST_F(EngineCatalogTest, ReopenAfterEvictionReplaysTheWholeLog) {
  EngineCatalog catalog(/*max_engines=*/1);
  std::string error;
  ASSERT_TRUE(catalog.Register("alpha", SourceFor(0), &error)) << error;
  ASSERT_TRUE(catalog.Register("beta", SourceFor(1), &error)) << error;

  AppendTo(0, {{0, 3}});
  auto first = catalog.Acquire("alpha", &error);
  ASSERT_NE(first, nullptr) << error;
  EXPECT_EQ(first->applied_seqno, 1u);  // lazy open replays the log

  // Evict alpha, grow its log, reopen: the fresh open must serve base plus
  // the ENTIRE current log, never the stale pre-eviction prefix.
  ASSERT_NE(catalog.Acquire("beta", &error), nullptr) << error;
  AppendTo(0, {{0, 4}});
  auto reopened = catalog.Acquire("alpha", &error);
  ASSERT_NE(reopened, nullptr) << error;
  EXPECT_EQ(reopened->applied_seqno, 2u);
  const std::vector<std::pair<NodeId, NodeId>> both = {{0, 3}, {0, 4}};
  Graph merged = ApplyEdgesToGraph(t_[0].graph, both);
  auto q = ParsePattern(kPaperPattern);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(reopened->engine->EvaluateCollect(*q).size(),
            ColdCount(merged, kPaperPattern));
}

TEST_F(EngineCatalogTest, RefreshIsScopedToOneTenant) {
  EngineCatalog catalog;
  std::string error;
  ASSERT_TRUE(catalog.Register("alpha", SourceFor(0), &error)) << error;
  ASSERT_TRUE(catalog.Register("beta", SourceFor(1), &error)) << error;
  auto beta_before = catalog.Acquire("beta", &error);
  ASSERT_NE(beta_before, nullptr) << error;

  AppendTo(0, {{0, 3}});
  CatalogRefreshResult r = catalog.Refresh("alpha");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.records_applied, 1u);
  auto alpha = catalog.Acquire("alpha", &error);
  ASSERT_NE(alpha, nullptr) << error;
  EXPECT_EQ(alpha->applied_seqno, 1u);

  // Beta's published state is the very pointer from before the refresh,
  // and its own refresh is a caught-up no-op (its log does not exist).
  auto beta_after = catalog.Acquire("beta", &error);
  ASSERT_NE(beta_after, nullptr) << error;
  EXPECT_EQ(beta_after.get(), beta_before.get());
  CatalogRefreshResult rb = catalog.Refresh("beta");
  EXPECT_TRUE(rb.ok) << rb.error;
  EXPECT_EQ(rb.records_applied, 0u);

  // Unknown tenants and tenants without a delta source are bad requests.
  CatalogRefreshResult unknown = catalog.Refresh("nope");
  EXPECT_FALSE(unknown.ok);
  EXPECT_TRUE(unknown.bad_request);
  EngineSource no_delta;
  no_delta.snapshot_path = t_[2].snap;
  ASSERT_TRUE(catalog.Register("gamma", no_delta, &error)) << error;
  CatalogRefreshResult nd = catalog.Refresh("gamma");
  EXPECT_FALSE(nd.ok);
  EXPECT_TRUE(nd.bad_request);
  EXPECT_NE(nd.error.find("delta"), std::string::npos) << nd.error;
}

// ------------------------------------------------------ daemon (end-to-end)

/// One daemon over the three tenant snapshots, catalog-backed.
class MultiTenantServerTest : public MultiTenantFiles {
 protected:
  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
    MultiTenantFiles::TearDown();
  }

  void StartServer(uint32_t max_engines) {
    catalog_ = std::make_shared<EngineCatalog>(max_engines);
    std::string error;
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(catalog_->Register(kIds[i], SourceFor(i), &error)) << error;
    }
    config_.unix_path = UniquePath() + ".sock";
    config_.num_workers = 4;
    server_ = std::make_unique<QueryServer>(catalog_, config_);
    ASSERT_TRUE(server_->Start(&error)) << error;
  }

  QueryClient Connect(const std::string& graph_id = "") {
    QueryClient client;
    std::string error;
    EXPECT_TRUE(client.ConnectUnix(config_.unix_path, &error)) << error;
    client.SetGraph(graph_id);
    return client;
  }

  uint64_t ServedCount(QueryClient& client, const std::string& pattern) {
    QueryRequest req;
    req.patterns = {pattern};
    std::string error;
    auto resp = client.Query(req, &error);
    EXPECT_TRUE(resp.has_value()) << error;
    if (!resp.has_value()) return ~0ull;
    EXPECT_EQ(resp->status, StatusCode::kOk) << resp->error;
    return resp->results[0].num_occurrences;
  }

  std::shared_ptr<EngineCatalog> catalog_;
  ServerConfig config_;
  std::unique_ptr<QueryServer> server_;
};

TEST_F(MultiTenantServerTest, ScopedCountsMatchDedicatedDaemons) {
  StartServer(/*max_engines=*/0);
  const std::vector<std::string> patterns = {
      kPaperPattern, "(a:0)->(b:1)", "(b:1)=>(c:2)"};

  // For each tenant: a dedicated single-tenant daemon over the same graph
  // must serve byte-identical counts to the scoped view of the shared one.
  for (int i = 0; i < 3; ++i) {
    GmEngine engine(t_[i].graph);
    ServerConfig solo_cfg;
    solo_cfg.unix_path = UniquePath() + ".sock";
    solo_cfg.num_workers = 2;
    QueryServer dedicated(engine, solo_cfg);
    std::string error;
    ASSERT_TRUE(dedicated.Start(&error)) << error;

    QueryClient solo;
    ASSERT_TRUE(solo.ConnectUnix(solo_cfg.unix_path, &error)) << error;
    QueryClient scoped = Connect(kIds[i]);
    for (const std::string& pattern : patterns) {
      EXPECT_EQ(ServedCount(scoped, pattern), ServedCount(solo, pattern))
          << kIds[i] << " " << pattern;
    }
    dedicated.Stop();
  }

  // Scoped pipelining: tagged-outside/scoped-inside frames for two tenants
  // interleaved on two connections, all counts still per-tenant exact.
  QueryClient a = Connect("alpha");
  QueryClient b = Connect("beta");
  QueryRequest req;
  req.patterns = {kPaperPattern};
  std::vector<QueryRequest> batch(4, req);
  std::string error;
  auto ra = a.QueryPipelined(batch, &error);
  ASSERT_TRUE(ra.has_value()) << error;
  auto rb = b.QueryPipelined(batch, &error);
  ASSERT_TRUE(rb.has_value()) << error;
  for (const QueryResponse& resp : *ra) {
    ASSERT_EQ(resp.status, StatusCode::kOk) << resp.error;
    EXPECT_EQ(resp.results[0].num_occurrences,
              ColdCount(t_[0].graph, kPaperPattern));
  }
  for (const QueryResponse& resp : *rb) {
    ASSERT_EQ(resp.status, StatusCode::kOk) << resp.error;
    EXPECT_EQ(resp.results[0].num_occurrences,
              ColdCount(t_[1].graph, kPaperPattern));
  }
}

TEST_F(MultiTenantServerTest, UnknownGraphIdIsABadRequestNotADeadSocket) {
  StartServer(/*max_engines=*/0);
  QueryClient client = Connect("nope");
  QueryRequest req;
  req.patterns = {kPaperPattern};
  std::string error;
  auto resp = client.Query(req, &error);
  ASSERT_TRUE(resp.has_value()) << error;
  EXPECT_EQ(resp->status, StatusCode::kBadRequest);
  EXPECT_NE(resp->error.find("unknown graph id"), std::string::npos)
      << resp->error;

  // The connection survives the rejection; readdressing fixes the session.
  client.SetGraph("beta");
  EXPECT_EQ(ServedCount(client, kPaperPattern),
            ColdCount(t_[1].graph, kPaperPattern));
}

TEST_F(MultiTenantServerTest, EvictionChurnUnderCapOneServesExactCounts) {
  StartServer(/*max_engines=*/1);
  const uint64_t expected[2] = {ColdCount(t_[0].graph, kPaperPattern),
                                ColdCount(t_[1].graph, kPaperPattern)};

  // A pinned acquire plays the "query in flight on the victim": alpha gets
  // evicted by the churn below while this pin stays usable throughout.
  std::string error;
  auto pin = catalog_->Acquire("alpha", &error);
  ASSERT_NE(pin, nullptr) << error;

  // Two tenants hammered concurrently under a one-engine cap: every
  // request may evict the other tenant, and every count must stay exact.
  constexpr int kRounds = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 2; ++i) {
    threads.emplace_back([&, i] {
      QueryClient client = Connect(kIds[i]);
      QueryRequest req;
      req.patterns = {kPaperPattern};
      for (int round = 0; round < kRounds; ++round) {
        std::string thread_error;
        auto resp = client.Query(req, &thread_error);
        if (!resp.has_value() || resp->status != StatusCode::kOk ||
            resp->results[0].num_occurrences != expected[i]) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  auto q = ParsePattern(kPaperPattern);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(pin->engine->EvaluateCollect(*q).size(), expected[0]);

  CatalogStats s = catalog_->Stats();
  EXPECT_LE(s.resident, 1u);
  EXPECT_GE(s.evictions, 1u);
  EXPECT_GE(s.misses, 2u);
}

TEST_F(MultiTenantServerTest, RefreshIsIsolatedPerTenant) {
  StartServer(/*max_engines=*/0);
  QueryClient alpha = Connect("alpha");
  QueryClient beta = Connect("beta");
  const uint64_t beta_before = ServedCount(beta, kPaperPattern);

  // Refresh alpha after its log grows: alpha serves base+delta, beta's
  // count and beta's own (log-less) refresh are untouched.
  const std::vector<std::pair<NodeId, NodeId>> batch = {{0, 3}, {0, 7}};
  AppendTo(0, batch);
  std::string error;
  auto r = alpha.Refresh(&error);
  ASSERT_TRUE(r.has_value()) << error;
  ASSERT_EQ(r->status, StatusCode::kOk) << r->error;
  EXPECT_EQ(r->records_applied, 1u);
  Graph merged = ApplyEdgesToGraph(t_[0].graph, batch);
  EXPECT_EQ(ServedCount(alpha, kPaperPattern),
            ColdCount(merged, kPaperPattern));
  EXPECT_EQ(ServedCount(beta, kPaperPattern), beta_before);

  auto rb = beta.Refresh(&error);
  ASSERT_TRUE(rb.has_value()) << error;
  EXPECT_EQ(rb->status, StatusCode::kOk) << rb->error;
  EXPECT_EQ(rb->records_applied, 0u);

  // The stats tail reports the divergent per-tenant seqnos.
  auto stats = alpha.Stats(&error);
  ASSERT_TRUE(stats.has_value()) << error;
  EXPECT_EQ(stats->graphs_registered, 3u);
  bool saw_alpha = false, saw_beta = false;
  for (const GraphInfoWire& g : stats->tenants) {
    if (g.id == "alpha") {
      saw_alpha = true;
      EXPECT_EQ(g.applied_seqno, 1u);
    }
    if (g.id == "beta") {
      saw_beta = true;
      EXPECT_EQ(g.applied_seqno, 0u);
    }
  }
  EXPECT_TRUE(saw_alpha);
  EXPECT_TRUE(saw_beta);
}

TEST_F(MultiTenantServerTest, LegacyUnscopedClientsServeTheDefaultTenant) {
  StartServer(/*max_engines=*/0);

  // A pre-v2 client never sends an envelope: its queries land on the
  // default tenant (first registered), its ping just works.
  QueryClient legacy = Connect();
  EXPECT_EQ(ServedCount(legacy, kPaperPattern),
            ColdCount(t_[0].graph, kPaperPattern));
  std::string error;
  EXPECT_TRUE(legacy.Ping(&error)) << error;

  // A v2 client feature-detects instead of guessing.
  auto caps = legacy.Capabilities(&error);
  ASSERT_TRUE(caps.has_value()) << error;
  EXPECT_EQ(caps->revision, kProtocolRevision);
  EXPECT_TRUE(caps->tagged());
  EXPECT_TRUE(caps->scoped());
  EXPECT_TRUE(caps->list_graphs());
  EXPECT_TRUE(caps->refresh());  // every tenant has a delta source

  auto graphs = legacy.ListGraphs(&error);
  ASSERT_TRUE(graphs.has_value()) << error;
  EXPECT_EQ(graphs->status, StatusCode::kOk) << graphs->error;
  EXPECT_EQ(graphs->default_id, "alpha");
  ASSERT_EQ(graphs->graphs.size(), 3u);
}

TEST_F(MultiTenantServerTest, MalformedEnvelopesAreRejectedInPlace) {
  StartServer(/*max_engines=*/0);
  QueryClient client = Connect();
  QueryRequest req;
  req.patterns = {kPaperPattern};
  ByteSink inner;
  req.Serialize(inner);

  auto expect_error = [&](const ByteSink& frame, const std::string& needle) {
    std::string error;
    ASSERT_TRUE(WriteFrame(client.fd(), frame, &error)) << error;
    std::vector<uint8_t> payload;
    ASSERT_EQ(ReadFrame(client.fd(), kDefaultMaxFrameBytes, &payload, &error),
              FrameReadStatus::kOk)
        << error;
    ByteSource src(payload.data(), payload.size());
    ASSERT_EQ(ReadMessageType(src), MessageType::kErrorResponse);
    EXPECT_EQ(static_cast<StatusCode>(src.ReadU32()),
              StatusCode::kBadRequest);
    std::string message = src.ReadString();
    EXPECT_NE(message.find(needle), std::string::npos) << message;
  };

  // Scoped may not nest, and tagging must stay outermost.
  expect_error(WrapScoped("alpha", WrapScoped("beta", inner)),
               "scoped envelope cannot nest");
  expect_error(
      WrapScoped("alpha",
                 WrapTagged(MessageType::kTaggedRequest, 7, inner)),
      "tagged envelope must be outermost");

  // Both rejections left the stream framed: the session still serves.
  EXPECT_EQ(ServedCount(client, kPaperPattern),
            ColdCount(t_[0].graph, kPaperPattern));
}

}  // namespace
}  // namespace rigpm
