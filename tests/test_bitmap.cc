#include "bitmap/bitmap.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <vector>

namespace rigpm {
namespace {

TEST(Bitmap, StartsEmpty) {
  Bitmap b;
  EXPECT_TRUE(b.Empty());
  EXPECT_EQ(b.Cardinality(), 0u);
  EXPECT_FALSE(b.Contains(0));
  EXPECT_EQ(b.ToVector(), std::vector<uint32_t>{});
}

TEST(Bitmap, AddContainsRemove) {
  Bitmap b;
  b.Add(5);
  b.Add(100000);
  b.Add(5);  // duplicate
  EXPECT_EQ(b.Cardinality(), 2u);
  EXPECT_TRUE(b.Contains(5));
  EXPECT_TRUE(b.Contains(100000));
  EXPECT_FALSE(b.Contains(6));
  b.Remove(5);
  EXPECT_FALSE(b.Contains(5));
  EXPECT_EQ(b.Cardinality(), 1u);
  b.Remove(5);  // removing absent value is a no-op
  EXPECT_EQ(b.Cardinality(), 1u);
}

TEST(Bitmap, InitializerListAndFirst) {
  Bitmap b = {42, 7, 99};
  EXPECT_EQ(b.Cardinality(), 3u);
  EXPECT_EQ(b.First(), 7u);
}

TEST(Bitmap, FromSortedMatchesAdds) {
  std::vector<uint32_t> values = {1, 2, 70000, 70001, 1u << 20};
  Bitmap a = Bitmap::FromSorted(values);
  Bitmap b;
  for (uint32_t v : values) b.Add(v);
  EXPECT_EQ(a, b);
}

TEST(Bitmap, FromUnsortedDeduplicates) {
  std::vector<uint32_t> values = {5, 3, 5, 1, 3};
  Bitmap b = Bitmap::FromUnsorted(values);
  EXPECT_EQ(b.ToVector(), (std::vector<uint32_t>{1, 3, 5}));
}

TEST(Bitmap, FromRange) {
  Bitmap b = Bitmap::FromRange(70000);  // spans two containers
  EXPECT_EQ(b.Cardinality(), 70000u);
  EXPECT_TRUE(b.Contains(0));
  EXPECT_TRUE(b.Contains(69999));
  EXPECT_FALSE(b.Contains(70000));
  EXPECT_EQ(b.ContainerCount(), 2u);
}

TEST(Bitmap, ArrayPromotesToBitsetAndBack) {
  Bitmap b;
  for (uint32_t i = 0; i < Bitmap::kArrayCapacity + 10; ++i) b.Add(i * 2);
  EXPECT_EQ(b.Cardinality(), Bitmap::kArrayCapacity + 10);
  for (uint32_t i = 0; i < Bitmap::kArrayCapacity + 10; ++i) {
    EXPECT_TRUE(b.Contains(i * 2));
    EXPECT_FALSE(b.Contains(i * 2 + 1));
  }
  // Shrink back below the threshold; values must survive the conversion.
  for (uint32_t i = 20; i < Bitmap::kArrayCapacity + 10; ++i) b.Remove(i * 2);
  EXPECT_EQ(b.Cardinality(), 20u);
  for (uint32_t i = 0; i < 20; ++i) EXPECT_TRUE(b.Contains(i * 2));
}

TEST(Bitmap, AndOrAndNotBasic) {
  Bitmap a = {1, 2, 3, 100000};
  Bitmap b = {2, 3, 4, 200000};
  EXPECT_EQ(Bitmap::And(a, b).ToVector(), (std::vector<uint32_t>{2, 3}));
  EXPECT_EQ(Bitmap::Or(a, b).ToVector(),
            (std::vector<uint32_t>{1, 2, 3, 4, 100000, 200000}));
  EXPECT_EQ(Bitmap::AndNot(a, b).ToVector(),
            (std::vector<uint32_t>{1, 100000}));
}

TEST(Bitmap, IntersectsEarlyExit) {
  Bitmap a = {1, 500000};
  Bitmap b = {500000};
  Bitmap c = {2, 600000};
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_FALSE(Bitmap().Intersects(a));
}

TEST(Bitmap, SubsetChecks) {
  Bitmap small = {3, 70000};
  Bitmap big = {1, 3, 70000, 70001};
  EXPECT_TRUE(small.IsSubsetOf(big));
  EXPECT_FALSE(big.IsSubsetOf(small));
  EXPECT_TRUE(Bitmap().IsSubsetOf(small));
  EXPECT_TRUE(small.IsSubsetOf(small));
}

TEST(Bitmap, AndManyPicksSmallestFirst) {
  Bitmap a = Bitmap::FromRange(1000);
  Bitmap b = {5, 10, 999, 2000};
  Bitmap c = {10, 999};
  std::vector<const Bitmap*> inputs = {&a, &b, &c};
  EXPECT_EQ(Bitmap::AndMany(inputs).ToVector(),
            (std::vector<uint32_t>{10, 999}));
  EXPECT_TRUE(Bitmap::AndMany({}).Empty());
}

TEST(Bitmap, OrManyBalancedReduction) {
  Bitmap a = {1};
  Bitmap b = {2};
  Bitmap c = {3};
  Bitmap d = {70000};
  Bitmap e = {5};
  std::vector<const Bitmap*> inputs = {&a, &b, &c, &d, &e};
  EXPECT_EQ(Bitmap::OrMany(inputs).ToVector(),
            (std::vector<uint32_t>{1, 2, 3, 5, 70000}));
}

TEST(Bitmap, ForEachVisitsInOrder) {
  Bitmap b = {9, 1, 70001, 70000};
  std::vector<uint32_t> seen;
  b.ForEach([&seen](uint32_t v) { seen.push_back(v); });
  EXPECT_EQ(seen, (std::vector<uint32_t>{1, 9, 70000, 70001}));
}

TEST(Bitmap, EqualityAcrossRepresentations) {
  // Same contents, one built dense-then-shrunk (bitset path), one sparse.
  Bitmap a;
  for (uint32_t i = 0; i < 5000; ++i) a.Add(i);
  for (uint32_t i = 10; i < 5000; ++i) a.Remove(i);
  Bitmap b;
  for (uint32_t i = 0; i < 10; ++i) b.Add(i);
  EXPECT_EQ(a, b);
}

TEST(Bitmap, MemoryBytesGrowsWithContent) {
  Bitmap empty;
  Bitmap loaded = Bitmap::FromRange(100000);
  EXPECT_GT(loaded.MemoryBytes(), empty.MemoryBytes());
}

// ---------------------------------------------------------------------------
// Run containers.
// ---------------------------------------------------------------------------

BitmapContainerStats StatsOf(const Bitmap& b) {
  BitmapContainerStats s;
  b.AccumulateStats(&s);
  return s;
}

TEST(BitmapRun, FromRangeProducesRunContainers) {
  // A full range is one run per chunk — 4 bytes beats both array and bitset.
  Bitmap b = Bitmap::FromRange(200000);
  BitmapContainerStats s = StatsOf(b);
  EXPECT_EQ(s.run_containers, b.ContainerCount());
  EXPECT_EQ(s.array_containers, 0u);
  EXPECT_EQ(s.bitset_containers, 0u);
  EXPECT_EQ(b.Cardinality(), 200000u);
  EXPECT_TRUE(b.Contains(0));
  EXPECT_TRUE(b.Contains(199999));
  EXPECT_FALSE(b.Contains(200000));
}

TEST(BitmapRun, FromSortedPicksRunForClusteredValues) {
  // 8 runs of 1000: 32 B of runs vs 2000 B array vs 8192 B bitset.
  std::vector<uint32_t> values;
  for (uint32_t r = 0; r < 8; ++r) {
    for (uint32_t i = 0; i < 1000; ++i) values.push_back(r * 5000 + i);
  }
  Bitmap b = Bitmap::FromSorted(values);
  BitmapContainerStats s = StatsOf(b);
  EXPECT_EQ(s.run_containers, 1u);
  EXPECT_EQ(s.encoded_bytes, 8u * Bitmap::kBytesPerRun);
  EXPECT_EQ(b.ToVector(), values);
}

TEST(BitmapRun, RunOptimizeCompressesClusteredBitset) {
  Bitmap b;
  for (uint32_t i = 10000; i < 40000; ++i) b.Add(i);  // dense -> bitset
  EXPECT_EQ(StatsOf(b).bitset_containers, 1u);
  b.RunOptimize();
  BitmapContainerStats s = StatsOf(b);
  EXPECT_EQ(s.run_containers, 1u);
  EXPECT_EQ(s.encoded_bytes, Bitmap::kBytesPerRun);
  EXPECT_EQ(b.Cardinality(), 30000u);
  EXPECT_TRUE(b.Contains(10000));
  EXPECT_TRUE(b.Contains(39999));
  EXPECT_FALSE(b.Contains(9999));
  EXPECT_FALSE(b.Contains(40000));
}

TEST(BitmapRun, RunOptimizeLeavesScatteredValuesAlone) {
  Bitmap b;
  for (uint32_t i = 0; i < 1000; ++i) b.Add(i * 61 % 65536);  // no adjacency
  Bitmap before = b;
  b.RunOptimize();
  EXPECT_EQ(StatsOf(b).run_containers, 0u);
  EXPECT_EQ(b, before);
}

TEST(BitmapRun, NoOpMutationsStayEncoded) {
  Bitmap b = Bitmap::FromRange(30000);
  b.RunOptimize();
  ASSERT_EQ(StatsOf(b).run_containers, 1u);
  b.Add(15000);    // already present
  b.Remove(50000); // absent (same chunk, beyond the run)
  EXPECT_EQ(StatsOf(b).run_containers, 1u);  // still encoded
  b.Remove(15000);  // real mutation decompresses
  EXPECT_EQ(StatsOf(b).run_containers, 0u);
  EXPECT_EQ(b.Cardinality(), 29999u);
}

TEST(BitmapRun, EqualityAcrossRunAndDecodedForms) {
  Bitmap run_form = Bitmap::FromRange(30000);
  run_form.RunOptimize();
  Bitmap decoded;
  for (uint32_t i = 0; i < 30000; ++i) decoded.Add(i);
  EXPECT_EQ(StatsOf(run_form).run_containers, 1u);
  EXPECT_EQ(StatsOf(decoded).run_containers, 0u);
  EXPECT_EQ(run_form, decoded);
  EXPECT_EQ(decoded, run_form);
  EXPECT_TRUE(run_form.IsSubsetOf(decoded));
  EXPECT_TRUE(decoded.IsSubsetOf(run_form));
}

TEST(BitmapRun, KernelsConsumeRunOperands) {
  // run x {array, bitset, run} through And/Or/AndNot/Intersects/Subset.
  Bitmap run_a = Bitmap::FromRange(20000);          // [0, 20000)
  Bitmap run_b;
  for (uint32_t i = 10000; i < 30000; ++i) run_b.Add(i);
  run_b.RunOptimize();                              // [10000, 30000)
  Bitmap arr = {5, 15000, 25000, 100000};
  Bitmap dense;
  for (uint32_t i = 0; i < 30000; i += 2) dense.Add(i);

  EXPECT_EQ(Bitmap::And(run_a, run_b).Cardinality(), 10000u);
  EXPECT_EQ(Bitmap::Or(run_a, run_b).Cardinality(), 30000u);
  EXPECT_EQ(Bitmap::AndNot(run_a, run_b).Cardinality(), 10000u);
  EXPECT_EQ(Bitmap::And(run_a, arr).ToVector(),
            (std::vector<uint32_t>{5, 15000}));
  EXPECT_EQ(Bitmap::And(arr, run_a).ToVector(),
            (std::vector<uint32_t>{5, 15000}));
  EXPECT_EQ(Bitmap::AndNot(arr, run_a).ToVector(),
            (std::vector<uint32_t>{25000, 100000}));
  EXPECT_EQ(Bitmap::And(run_a, dense).Cardinality(), 10000u);
  EXPECT_EQ(Bitmap::Or(run_a, dense).Cardinality(), 25000u);
  EXPECT_EQ(Bitmap::AndNot(dense, run_a).Cardinality(), 5000u);
  EXPECT_TRUE(run_a.Intersects(run_b));
  EXPECT_TRUE(run_a.Intersects(arr));
  EXPECT_TRUE(dense.Intersects(run_a));
  EXPECT_FALSE(Bitmap({30001}).Intersects(run_b));
  EXPECT_TRUE(Bitmap({3, 4, 19999}).IsSubsetOf(run_a));
  EXPECT_FALSE(run_a.IsSubsetOf(run_b));
  Bitmap whole = Bitmap::FromRange(40000);
  whole.RunOptimize();
  EXPECT_TRUE(run_b.IsSubsetOf(whole));
  EXPECT_TRUE(dense.IsSubsetOf(whole));
}

TEST(BitmapRun, SerializeRoundTripsNativeRuns) {
  Bitmap b = Bitmap::FromRange(100000);
  ASSERT_GT(StatsOf(b).run_containers, 0u);
  ByteSink sink;
  b.Serialize(sink);
  ByteSource src(sink.data().data(), sink.size());
  Bitmap back = Bitmap::Deserialize(src);
  EXPECT_EQ(back, b);
  EXPECT_EQ(StatsOf(back).run_containers, StatsOf(b).run_containers);
}

TEST(BitmapRun, SerializeWithoutRunEncodingMaterializes) {
  Bitmap b = Bitmap::FromRange(100000);
  ByteSink sink(/*pad_arrays=*/true, /*encode_runs=*/false);
  b.Serialize(sink);
  ByteSource src(sink.data().data(), sink.size());
  src.DisallowRunContainers();  // a pre-v3 reader must accept these bytes
  Bitmap back = Bitmap::Deserialize(src);
  EXPECT_TRUE(src.ok());
  EXPECT_EQ(back, b);
  EXPECT_EQ(StatsOf(back).run_containers, 0u);
}

TEST(BitmapRun, PreV3ReaderRejectsRunContainers) {
  // A native-v3 byte stream fed to a pre-v3 reader desyncs immediately (the
  // layouts differ) and must fail.
  Bitmap b = Bitmap::FromRange(100000);
  ByteSink sink;
  b.Serialize(sink);
  ByteSource src(sink.data().data(), sink.size());
  src.DisallowRunContainers();
  Bitmap back = Bitmap::Deserialize(src);
  EXPECT_FALSE(src.ok());

  // Hand-crafted pre-v3-layout stream whose container kind byte says run:
  // the reader must reject it at the kind check, by name.
  ByteSink crafted(/*pad_arrays=*/true, /*encode_runs=*/false);
  crafted.WriteU32(1);      // one container
  crafted.WriteU64(30000);  // pre-v3 total-cardinality word
  crafted.WriteU16(0);      // key
  crafted.WriteU8(2);       // kind byte 2 = run — illegal before v3
  crafted.WriteU32(30000);  // cardinality
  ByteSource crafted_src(crafted.data().data(), crafted.size());
  crafted_src.DisallowRunContainers();
  Bitmap crafted_back = Bitmap::Deserialize(crafted_src);
  EXPECT_FALSE(crafted_src.ok());
  EXPECT_NE(crafted_src.error().find("run container"), std::string::npos)
      << crafted_src.error();
}

// ---------------------------------------------------------------------------
// Property tests: every operation must agree with a std::set reference model
// across sparse, dense, and clustered value distributions.
// ---------------------------------------------------------------------------

struct RandomParams {
  uint32_t universe;
  uint32_t inserts;
  const char* label;
};

class BitmapPropertyTest : public ::testing::TestWithParam<RandomParams> {};

TEST_P(BitmapPropertyTest, MatchesReferenceSet) {
  const RandomParams p = GetParam();
  std::mt19937_64 rng(p.universe * 31 + p.inserts);
  std::uniform_int_distribution<uint32_t> dist(0, p.universe - 1);

  Bitmap a_bm, b_bm;
  std::set<uint32_t> a_ref, b_ref;
  for (uint32_t i = 0; i < p.inserts; ++i) {
    uint32_t va = dist(rng), vb = dist(rng);
    a_bm.Add(va);
    a_ref.insert(va);
    b_bm.Add(vb);
    b_ref.insert(vb);
  }
  // Random deletions on a.
  for (uint32_t i = 0; i < p.inserts / 4; ++i) {
    uint32_t v = dist(rng);
    a_bm.Remove(v);
    a_ref.erase(v);
  }

  EXPECT_EQ(a_bm.Cardinality(), a_ref.size());
  EXPECT_EQ(a_bm.ToVector(),
            std::vector<uint32_t>(a_ref.begin(), a_ref.end()));

  auto check = [](const Bitmap& got, const std::set<uint32_t>& want) {
    EXPECT_EQ(got.ToVector(), std::vector<uint32_t>(want.begin(), want.end()));
  };
  std::set<uint32_t> and_ref, or_ref, andnot_ref;
  std::set_intersection(a_ref.begin(), a_ref.end(), b_ref.begin(), b_ref.end(),
                        std::inserter(and_ref, and_ref.begin()));
  std::set_union(a_ref.begin(), a_ref.end(), b_ref.begin(), b_ref.end(),
                 std::inserter(or_ref, or_ref.begin()));
  std::set_difference(a_ref.begin(), a_ref.end(), b_ref.begin(), b_ref.end(),
                      std::inserter(andnot_ref, andnot_ref.begin()));
  check(Bitmap::And(a_bm, b_bm), and_ref);
  check(Bitmap::Or(a_bm, b_bm), or_ref);
  check(Bitmap::AndNot(a_bm, b_bm), andnot_ref);
  EXPECT_EQ(a_bm.Intersects(b_bm), !and_ref.empty());
  EXPECT_EQ(Bitmap::And(a_bm, b_bm) == a_bm, a_bm.IsSubsetOf(b_bm));

  // In-place ops agree with the static ones.
  Bitmap c = a_bm;
  c.AndWith(b_bm);
  check(c, and_ref);
  c = a_bm;
  c.OrWith(b_bm);
  check(c, or_ref);
  c = a_bm;
  c.AndNotWith(b_bm);
  check(c, andnot_ref);

  // Membership spot checks.
  for (uint32_t i = 0; i < 100; ++i) {
    uint32_t v = dist(rng);
    EXPECT_EQ(a_bm.Contains(v), a_ref.count(v) > 0) << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, BitmapPropertyTest,
    ::testing::Values(RandomParams{1u << 8, 200, "tiny_dense"},
                      RandomParams{1u << 16, 1000, "one_container_sparse"},
                      RandomParams{1u << 16, 30000, "one_container_dense"},
                      RandomParams{1u << 22, 5000, "many_containers_sparse"},
                      RandomParams{1u << 18, 120000, "mixed_kinds"}),
    [](const ::testing::TestParamInfo<RandomParams>& info) {
      return info.param.label;
    });

TEST(BitmapProperty, MultiwayAgreesWithFolds) {
  std::mt19937_64 rng(99);
  std::uniform_int_distribution<uint32_t> dist(0, 1u << 18);
  std::vector<Bitmap> bitmaps(6);
  for (auto& b : bitmaps) {
    for (int i = 0; i < 3000; ++i) b.Add(dist(rng));
    b.Add(12345);  // common element so AndMany is non-empty
  }
  std::vector<const Bitmap*> ptrs;
  for (auto& b : bitmaps) ptrs.push_back(&b);

  Bitmap and_fold = bitmaps[0];
  Bitmap or_fold = bitmaps[0];
  for (size_t i = 1; i < bitmaps.size(); ++i) {
    and_fold.AndWith(bitmaps[i]);
    or_fold.OrWith(bitmaps[i]);
  }
  EXPECT_EQ(Bitmap::AndMany(ptrs), and_fold);
  EXPECT_EQ(Bitmap::OrMany(ptrs), or_fold);
  EXPECT_TRUE(and_fold.Contains(12345));
}

}  // namespace
}  // namespace rigpm
