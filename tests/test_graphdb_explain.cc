// Tests for the application layer: GraphDatabase (subgraph search over a
// collection of small graphs), ExplainQuery, and Graph::MakeBidirected.

#include <gtest/gtest.h>

#include "baseline/iso_engine.h"
#include "engine/explain.h"
#include "graph/generators.h"
#include "graphdb/graph_database.h"
#include "query/pattern_parser.h"
#include "test_util.h"

namespace rigpm {
namespace {

using ::rigpm::testing::BruteForceAnswer;
using ::rigpm::testing::PaperExample;

// --- GraphDatabase.

class GraphDbFixture : public ::testing::Test {
 protected:
  GraphDbFixture() {
    // Member 0: a triangle-ish graph containing the 0->1->2 chain.
    db_.Add(Graph::FromEdges({0, 1, 2}, {{0, 1}, {1, 2}, {0, 2}}), "chain");
    // Member 1: the labels exist but no 0->1 edge.
    db_.Add(Graph::FromEdges({0, 1, 2}, {{1, 0}, {1, 2}}), "reversed");
    // Member 2: label 2 missing entirely.
    db_.Add(Graph::FromEdges({0, 1, 1}, {{0, 1}, {1, 2}}), "no_label2");
    // Member 3: the paper's example graph (contains lots of structure).
    db_.Add(PaperExample::MakeGraph(), "paper");
  }
  GraphDatabase db_;
};

TEST_F(GraphDbFixture, AccessorsWork) {
  EXPECT_EQ(db_.Size(), 4u);
  EXPECT_EQ(db_.Name(0), "chain");
  EXPECT_EQ(db_.MemberGraph(3).NumNodes(), 10u);
}

TEST_F(GraphDbFixture, LabelFilterPrunes) {
  auto q = ParsePattern("(a:0)->(b:1)->(c:2)");
  ASSERT_TRUE(q.has_value());
  EXPECT_TRUE(db_.PassesFilter(0, *q));
  EXPECT_FALSE(db_.PassesFilter(1, *q));   // no 0->1 labeled edge
  EXPECT_FALSE(db_.PassesFilter(2, *q));   // label 2 missing
}

TEST_F(GraphDbFixture, HomomorphicSearchFindsContainingMembers) {
  auto q = ParsePattern("(a:0)->(b:1)->(c:2)");
  ASSERT_TRUE(q.has_value());
  GraphDatabase::SearchStats stats;
  auto hits = db_.Search(*q, {}, &stats);
  // "chain" contains 0->1->2 directly; the paper graph contains the child
  // chain a1 -> b0 -> c0 with the same label sequence.
  EXPECT_EQ(hits, (std::vector<size_t>{0, 3}));
  EXPECT_LE(stats.verified, db_.Size());
}

TEST_F(GraphDbFixture, DescendantEdgesSupported) {
  auto q = ParsePattern("(a:0)=>(c:2)");
  ASSERT_TRUE(q.has_value());
  auto hits = db_.Search(*q);
  // chain: 0 => 2 via 1 (and directly); paper graph: a's reach c's.
  EXPECT_EQ(hits, (std::vector<size_t>{0, 3}));
}

TEST_F(GraphDbFixture, IsomorphicVsHomomorphicSemantics) {
  // Two distinct label-0 parents of a common label-1 child.
  GraphDatabase db;
  db.Add(Graph::FromEdges({0, 1}, {{0, 1}}), "single_parent");
  db.Add(Graph::FromEdges({0, 0, 1}, {{0, 2}, {1, 2}}), "two_parents");
  auto q = ParsePattern("(a:0)->(c:1), (b:0)->(c)");
  ASSERT_TRUE(q.has_value());
  auto hom = db.Search(*q, {.isomorphic = false});
  auto iso = db.Search(*q, {.isomorphic = true});
  EXPECT_EQ(hom, (std::vector<size_t>{0, 1}));  // folding allowed
  EXPECT_EQ(iso, (std::vector<size_t>{1}));     // needs two distinct parents
}

TEST_F(GraphDbFixture, SearchAgreesWithBruteForceOnRandomLibrary) {
  GraphDatabase db;
  std::vector<Graph> graphs;
  for (uint64_t seed = 0; seed < 25; ++seed) {
    graphs.push_back(GenerateErdosRenyi({.num_nodes = 12, .num_edges = 20,
                                         .num_labels = 3, .seed = seed}));
    db.Add(graphs.back());
  }
  auto q = ParsePattern("(a:0)->(b:1), (b)=>(c:2)");
  ASSERT_TRUE(q.has_value());
  auto hits = db.Search(*q);
  std::vector<size_t> expected;
  for (size_t i = 0; i < graphs.size(); ++i) {
    if (!BruteForceAnswer(graphs[i], *q).empty()) expected.push_back(i);
  }
  EXPECT_EQ(hits, expected);
}

// --- ExplainQuery.

TEST(Explain, ReportsPipelineStages) {
  Graph g = PaperExample::MakeGraph();
  GmEngine engine(g);
  std::string report = ExplainQuery(engine, PaperExample::MakeQuery());
  EXPECT_NE(report.find("EXPLAIN"), std::string::npos);
  EXPECT_NE(report.find("irreducible"), std::string::npos);
  EXPECT_NE(report.find("candidates"), std::string::npos);
  EXPECT_NE(report.find("RIG"), std::string::npos);
  EXPECT_NE(report.find("order"), std::string::npos);
  // The FB column for query node 0 must show the pruned cardinality (2).
  EXPECT_NE(report.find("q0 (label 0)  3  "), std::string::npos);
}

TEST(Explain, ReportsTransitiveReduction) {
  Graph g = PaperExample::MakeGraph();
  GmEngine engine(g);
  auto q = ParsePattern("(a:0)->(b:1), (b)=>(c:2), (a)=>(c)");
  ASSERT_TRUE(q.has_value());
  std::string report = ExplainQuery(engine, *q);
  EXPECT_NE(report.find("removed 1 transitive"), std::string::npos);
}

TEST(Explain, ReportsEmptyAnswerShortcut) {
  Graph g = Graph::FromEdges({0, 1}, {{0, 1}});
  GmEngine engine(g);
  auto q = ParsePattern("(a:1)->(b:0)");  // reversed direction: empty
  ASSERT_TRUE(q.has_value());
  std::string report = ExplainQuery(engine, *q);
  EXPECT_NE(report.find("EMPTY"), std::string::npos);
}

// --- MakeBidirected.

TEST(MakeBidirected, AddsReverseEdges) {
  Graph g = Graph::FromEdges({0, 1, 2}, {{0, 1}, {1, 2}});
  Graph b = Graph::MakeBidirected(g);
  EXPECT_EQ(b.NumEdges(), 4u);
  EXPECT_TRUE(b.HasEdge(1, 0));
  EXPECT_TRUE(b.HasEdge(2, 1));
  EXPECT_FALSE(b.HasEdge(0, 2));
  // Idempotent on already-bidirected graphs.
  Graph bb = Graph::MakeBidirected(b);
  EXPECT_EQ(bb.NumEdges(), b.NumEdges());
}

TEST(MakeBidirected, PreservesLabels) {
  Graph g = GeneratePowerLaw({.num_nodes = 50, .num_edges = 150,
                              .num_labels = 4, .seed = 8});
  Graph b = Graph::MakeBidirected(g);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    EXPECT_EQ(b.Label(v), g.Label(v));
  }
}

}  // namespace
}  // namespace rigpm
