#include "engine/gm_engine.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "graph/generators.h"
#include "query/query_generator.h"
#include "query/query_templates.h"
#include "test_util.h"

namespace rigpm {
namespace {

using ::rigpm::testing::BruteForceAnswer;
using ::rigpm::testing::PaperExample;

TEST(GmEngine, PaperExampleEndToEnd) {
  Graph g = PaperExample::MakeGraph();
  GmEngine engine(g);
  GmResult result;
  auto tuples = engine.EvaluateCollect(PaperExample::MakeQuery(), GmOptions{},
                                       &result);
  std::set<std::vector<NodeId>> got(tuples.begin(), tuples.end());
  EXPECT_EQ(got, PaperExample::ExpectedAnswer());
  EXPECT_EQ(result.num_occurrences, 4u);
  EXPECT_FALSE(result.hit_limit);
  EXPECT_EQ(result.rig_nodes, 7u);
  EXPECT_GE(result.TotalMs(), 0.0);
  EXPECT_GE(result.MatchingMs(), 0.0);
  EXPECT_EQ(result.order_used.size(), 3u);
}

TEST(GmEngine, ReachIndexConfigurable) {
  Graph g = PaperExample::MakeGraph();
  for (ReachKind kind :
       {ReachKind::kBfs, ReachKind::kTransitiveClosure, ReachKind::kBfl}) {
    GmEngine engine(g, kind);
    GmResult result;
    engine.EvaluateCollect(PaperExample::MakeQuery(), GmOptions{}, &result);
    EXPECT_EQ(result.num_occurrences, 4u) << ReachKindName(kind);
    EXPECT_GE(engine.reach_build_ms(), 0.0);
  }
}

TEST(GmEngine, LimitReported) {
  Graph g = PaperExample::MakeGraph();
  GmEngine engine(g);
  GmOptions opts;
  opts.limit = 3;
  GmResult result = engine.Evaluate(PaperExample::MakeQuery(), opts);
  EXPECT_EQ(result.num_occurrences, 3u);
  EXPECT_TRUE(result.hit_limit);
}

TEST(GmEngine, EmptyRigShortcut) {
  // Query label that does not exist in the graph.
  Graph g = PaperExample::MakeGraph();
  GmEngine engine(g);
  PatternQuery q = PatternQuery::FromParts(
      {0, 9}, {{0, 1, EdgeKind::kChild}});
  GmResult result = engine.Evaluate(q);
  EXPECT_EQ(result.num_occurrences, 0u);
  EXPECT_TRUE(result.empty_rig_shortcut);
  EXPECT_EQ(result.mjoin_stats.intersections, 0u);
}

TEST(GmEngine, TransitiveReductionShrinksQuery) {
  Graph g = PaperExample::MakeGraph();
  GmEngine engine(g);
  // (A,C) descendant edge is implied by A->B->C? No — B->C is a descendant
  // edge, so the path A -> B ≺ C implies A ≺ C. Add the redundant edge.
  PatternQuery q = PatternQuery::FromParts(
      {PaperExample::kLabelA, PaperExample::kLabelB, PaperExample::kLabelC},
      {{0, 1, EdgeKind::kChild},
       {1, 2, EdgeKind::kDescendant},
       {0, 2, EdgeKind::kDescendant}});
  GmResult with;
  GmOptions opts;
  engine.EvaluateCollect(q, opts, &with);
  EXPECT_EQ(with.reduced_query_edges, 2u);

  GmOptions no_red = opts;
  no_red.use_transitive_reduction = false;
  GmResult without;
  auto t1 = engine.EvaluateCollect(q, no_red, &without);
  EXPECT_EQ(without.reduced_query_edges, 3u);
  // Same answer either way (equivalence of Section 3).
  auto t0 = engine.EvaluateCollect(q, opts, &with);
  EXPECT_EQ(std::set<std::vector<NodeId>>(t0.begin(), t0.end()),
            std::set<std::vector<NodeId>>(t1.begin(), t1.end()));
}

// All four named variants must return the same answer; they differ only in
// how much they prune before enumeration (Fig. 13).
TEST(GmEngine, VariantsAgreeOnAnswers) {
  Graph g = GeneratePowerLaw({.num_nodes = 120, .num_edges = 600,
                              .num_labels = 5, .seed = 3});
  GmEngine engine(g);
  PatternQuery q = GenerateRandomQuery({.num_nodes = 5, .num_edges = 7,
                                        .num_labels = 5,
                                        .variant = QueryVariant::kHybrid,
                                        .seed = 17});
  auto run = [&](bool prefilter, bool sim, bool reduction) {
    GmOptions opts;
    opts.use_prefilter = prefilter;
    opts.use_double_simulation = sim;
    opts.use_transitive_reduction = reduction;
    auto tuples = engine.EvaluateCollect(q, opts);
    return std::set<std::vector<NodeId>>(tuples.begin(), tuples.end());
  };
  auto gm = run(true, true, true);
  EXPECT_EQ(run(false, true, true), gm);   // GM-S
  EXPECT_EQ(run(true, false, true), gm);   // GM-F
  EXPECT_EQ(run(true, true, false), gm);   // GM-NR
  EXPECT_EQ(run(false, false, false), gm); // everything off
  EXPECT_EQ(gm, BruteForceAnswer(g, q));
}

TEST(GmEngine, VariantRigSizesOrdered) {
  Graph g = GeneratePowerLaw({.num_nodes = 150, .num_edges = 700,
                              .num_labels = 4, .seed = 5});
  GmEngine engine(g);
  PatternQuery q = GenerateRandomQuery({.num_nodes = 4, .num_edges = 5,
                                        .num_labels = 4,
                                        .variant = QueryVariant::kHybrid,
                                        .seed = 21});
  GmOptions gm_opts;          // GM: prefilter + simulation
  GmOptions gmf_opts;         // GM-F: no simulation
  gmf_opts.use_double_simulation = false;
  GmResult gm, gmf;
  engine.Evaluate(q, gm_opts, nullptr);
  GmResult r_gm, r_gmf;
  engine.EvaluateCollect(q, gm_opts, &r_gm);
  engine.EvaluateCollect(q, gmf_opts, &r_gmf);
  // Double simulation can only shrink the RIG.
  EXPECT_LE(r_gm.rig_nodes, r_gmf.rig_nodes);
  EXPECT_LE(r_gm.rig_edges, r_gmf.rig_edges);
}

TEST(GmEngine, SimAlgorithmsInterchangeable) {
  Graph g = GeneratePowerLaw({.num_nodes = 100, .num_edges = 500,
                              .num_labels = 4, .seed = 9});
  GmEngine engine(g);
  PatternQuery q = GenerateRandomQuery({.num_nodes = 5, .num_edges = 6,
                                        .num_labels = 4,
                                        .variant = QueryVariant::kHybrid,
                                        .seed = 8});
  std::set<std::vector<NodeId>> expected;
  bool first = true;
  for (SimAlgorithm alg :
       {SimAlgorithm::kBas, SimAlgorithm::kDag, SimAlgorithm::kDagMap}) {
    GmOptions opts;
    opts.sim_algorithm = alg;
    auto tuples = engine.EvaluateCollect(q, opts);
    std::set<std::vector<NodeId>> got(tuples.begin(), tuples.end());
    if (first) {
      expected = got;
      first = false;
    } else {
      EXPECT_EQ(got, expected) << SimAlgorithmName(alg);
    }
  }
}

TEST(GmEngine, ExactSimulationPrunesAtLeastAsMuchAsCapped) {
  Graph g = GeneratePowerLaw({.num_nodes = 200, .num_edges = 1000,
                              .num_labels = 4, .seed = 12});
  GmEngine engine(g);
  PatternQuery q = GenerateRandomQuery({.num_nodes = 6, .num_edges = 8,
                                        .num_labels = 4,
                                        .variant = QueryVariant::kHybrid,
                                        .seed = 30});
  GmOptions capped;  // default: 3 passes
  GmOptions exact;
  exact.sim.max_passes = 0;
  GmResult r_capped, r_exact;
  engine.EvaluateCollect(q, capped, &r_capped);
  engine.EvaluateCollect(q, exact, &r_exact);
  EXPECT_LE(r_exact.rig_nodes, r_capped.rig_nodes);
  EXPECT_EQ(r_exact.num_occurrences, r_capped.num_occurrences);
}

// Worst-case-optimality smoke check (Theorem 5.2): for a clique query, the
// number of candidates MJoin scans never exceeds n * m * AGM bound; here we
// just assert the enumeration does not blow up past the answer by more than
// the RIG-edge product bound on a small instance.
TEST(GmEngine, EnumerationWorkBoundedByRigProduct) {
  Graph g = GeneratePowerLaw({.num_nodes = 80, .num_edges = 400,
                              .num_labels = 3, .seed = 14});
  GmEngine engine(g);
  PatternQuery q = PatternQuery::FromParts(
      {0, 1, 2},
      {{0, 1, EdgeKind::kChild},
       {0, 2, EdgeKind::kChild},
       {1, 2, EdgeKind::kChild}});
  GmResult r;
  engine.EvaluateCollect(q, GmOptions{}, &r);
  // Fractional cover of the triangle: x = 1/2 per edge; AGM bound =
  // sqrt(|R1| |R2| |R3|).
  double agm = std::sqrt(static_cast<double>(
      std::max<uint64_t>(1, r.rig_edges) *
      std::max<uint64_t>(1, r.rig_edges) *
      std::max<uint64_t>(1, r.rig_edges)));
  EXPECT_LE(static_cast<double>(r.num_occurrences), agm + 1.0);
}

}  // namespace
}  // namespace rigpm
