// Delta-log maintenance tests (storage/lineage.h, server/catalog.h
// Compact/RunMaintenance, engine/incremental.h deletions): the randomized
// add/delete differential suite against a from-scratch oracle, lineage
// head-pointer resolution and its crash window, compaction folding a log
// into a new snapshot generation, and the background maintenance pass —
// O(tail) refresh polls and policy-triggered auto-compaction.

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <random>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "engine/gm_engine.h"
#include "engine/incremental.h"
#include "graph/generators.h"
#include "query/pattern_parser.h"
#include "server/catalog.h"
#include "server/client.h"
#include "server/server.h"
#include "storage/delta_log.h"
#include "storage/lineage.h"
#include "storage/snapshot.h"
#include "test_util.h"
#include "util/serde.h"

namespace rigpm {
namespace {

using namespace rigpm::server;

std::string UniquePath() {
  static std::atomic<int> counter{0};
  return (std::filesystem::temp_directory_path() /
          ("rigpm_maint_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter++)))
      .string();
}

constexpr const char* kPattern = "(a:0)->(b:1), (a)->(c:2), (b)=>(c)";

uint64_t FileSize(const std::string& path) {
  struct stat st{};
  EXPECT_EQ(::stat(path.c_str(), &st), 0) << path;
  return static_cast<uint64_t>(st.st_size);
}

bool Exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

std::vector<Occurrence> SortedAnswer(const GmEngine& engine,
                                     const PatternQuery& q) {
  std::vector<Occurrence> a = engine.EvaluateCollect(q);
  std::sort(a.begin(), a.end());
  return a;
}

/// Answer(after) \ Answer(before) — the oracle for MatchDelta sides.
std::vector<Occurrence> AnswerDifference(std::vector<Occurrence> after,
                                         std::vector<Occurrence> before) {
  std::vector<Occurrence> diff;
  std::set_difference(after.begin(), after.end(), before.begin(),
                      before.end(), std::back_inserter(diff));
  return diff;
}

// ------------------------------------------ randomized differential suite

/// The replay half runs under both IO modes — a maintenance refresh must
/// rebuild the same graph whether the log is mapped or slurped.
class IncrementalDiffTest : public ::testing::TestWithParam<SnapshotIoMode> {
};

INSTANTIATE_TEST_SUITE_P(IoModes, IncrementalDiffTest,
                         ::testing::Values(SnapshotIoMode::kMmap,
                                           SnapshotIoMode::kRead),
                         [](const auto& info) {
                           return info.param == SnapshotIoMode::kMmap
                                      ? "mmap"
                                      : "read";
                         });

TEST_P(IncrementalDiffTest, RandomAddDeleteBatchesMatchFromScratchOracle) {
  // The growth-only assumption is gone: random batches mixing inserts and
  // deletions, each checked three ways against a from-scratch oracle —
  // the current answer equals a cold engine's on the mutated graph, the
  // reported added/removed sides equal the exact answer set differences,
  // and the journaled log replays to the matcher's graph byte for byte.
  const std::string log_path = UniquePath() + ".delta";
  Graph base = GeneratePowerLaw(
      {.num_nodes = 90, .num_edges = 300, .num_labels = 3, .seed = 17});
  auto q = ParsePattern(kPattern);
  ASSERT_TRUE(q.has_value());

  constexpr uint64_t kBaseChecksum = 0xfeedface12345678ull;
  std::string error;
  auto writer =
      DeltaWriter::Open(log_path, kBaseChecksum, base.NumNodes(), &error);
  ASSERT_NE(writer, nullptr) << error;

  IncrementalMatcher matcher(base, *q);
  matcher.AttachJournal(writer.get());
  Graph oracle_graph = base;

  std::mt19937 rng(20260807);
  std::uniform_int_distribution<NodeId> node(0, base.NumNodes() - 1);
  for (int round = 0; round < 12; ++round) {
    std::vector<Occurrence> before =
        SortedAnswer(GmEngine(oracle_graph), *q);

    // A mixed batch: random candidate adds plus deletes sampled from the
    // current edge set (so most rounds really remove something).
    std::vector<DeltaOp> ops;
    std::uniform_int_distribution<int> n_ops(1, 8);
    for (int i = n_ops(rng); i > 0; --i) {
      if (rng() % 2 == 0 && oracle_graph.NumEdges() > 0) {
        NodeId u = node(rng);
        for (int probe = 0; probe < 32 && oracle_graph.OutDegree(u) == 0;
             ++probe) {
          u = node(rng);
        }
        if (oracle_graph.OutDegree(u) > 0) {
          auto nbrs = oracle_graph.OutNeighbors(u);
          ops.push_back({u, nbrs[rng() % nbrs.size()],
                         DeltaOpKind::kDelete});
          continue;
        }
      }
      ops.push_back({node(rng), node(rng), DeltaOpKind::kAdd});
    }

    auto delta = matcher.ApplyOpsAndDiff(ops, &error);
    ASSERT_TRUE(delta.has_value()) << error;
    oracle_graph = ApplyDeltaOps(oracle_graph, ops);

    std::vector<Occurrence> after = SortedAnswer(GmEngine(oracle_graph), *q);
    EXPECT_EQ(SortedAnswer(GmEngine(matcher.current_graph()), *q), after)
        << "round " << round;

    std::sort(delta->added.begin(), delta->added.end());
    std::sort(delta->removed.begin(), delta->removed.end());
    EXPECT_EQ(delta->added, AnswerDifference(after, before))
        << "round " << round;
    EXPECT_EQ(delta->removed, AnswerDifference(before, after))
        << "round " << round;
  }

  // The write-ahead journal reconstructs the matcher's final graph.
  DeltaReader reader(log_path, GetParam());
  ASSERT_TRUE(reader.ok()) << reader.error();
  ReplayStats stats;
  auto replayed = ReplayDelta(base, reader, &error, &stats);
  ASSERT_TRUE(replayed.has_value()) << error;
  EXPECT_FALSE(reader.truncated());
  EXPECT_GT(stats.delete_ops, 0u);
  ByteSink a, b;
  replayed->Serialize(a);
  matcher.current_graph().Serialize(b);
  EXPECT_EQ(a.data(), b.data());

  writer.reset();
  std::remove(log_path.c_str());
}

// ------------------------------------------------------- lineage pointers

TEST(Lineage, MissingHeadResolvesToConfiguredPathsAsGenerationZero) {
  const std::string snap = UniquePath() + ".snap";
  Lineage lineage;
  std::string error;
  ASSERT_TRUE(ResolveLineage(snap, snap + ".delta", &lineage, &error))
      << error;
  EXPECT_EQ(lineage.generation, 0u);
  EXPECT_EQ(lineage.snapshot_path, snap);
  EXPECT_EQ(lineage.delta_path, snap + ".delta");
}

TEST(Lineage, PublishThenResolveRoundTripsAndMalformedHeadIsAnError) {
  const std::string snap = UniquePath() + ".snap";
  const std::string delta = UniquePath() + ".delta";
  Lineage next;
  next.generation = 3;
  next.snapshot_path = GenerationPath(snap, 3);
  next.delta_path = GenerationPath(delta, 3);
  std::string error;
  ASSERT_TRUE(PublishLineage(snap, next, &error)) << error;

  Lineage got;
  ASSERT_TRUE(ResolveLineage(snap, delta, &got, &error)) << error;
  EXPECT_EQ(got.generation, 3u);
  EXPECT_EQ(got.snapshot_path, next.snapshot_path);
  EXPECT_EQ(got.delta_path, next.delta_path);

  // A present-but-garbage head must refuse, not guess a generation.
  std::ofstream(LineageHeadPath(snap), std::ios::trunc) << "not a head\n";
  EXPECT_FALSE(ResolveLineage(snap, delta, &got, &error));
  EXPECT_FALSE(error.empty());
  std::remove(LineageHeadPath(snap).c_str());
}

// ----------------------------------------- catalog compaction/maintenance

/// One snapshot+delta tenant in a catalog, with append helpers that follow
/// the lineage head the way `rigpm_cli delta append` does.
class MaintenanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = GeneratePowerLaw(
        {.num_nodes = 80, .num_edges = 260, .num_labels = 3, .seed = 23});
    snap_path_ = UniquePath() + ".snap";
    delta_path_ = UniquePath() + ".delta";
    std::string error;
    {
      GmEngine cold(graph_);
      ASSERT_TRUE(SaveEngineSnapshot(cold, snap_path_, &error)) << error;
    }
    auto info = InspectSnapshot(snap_path_, &error);
    ASSERT_TRUE(info.has_value()) << error;
    checksum_ = info->stored_checksum;
    query_ = *ParsePattern(kPattern);
  }

  void TearDown() override {
    // Sweep every generation this test may have produced.
    for (uint64_t g = 1; g <= 4; ++g) {
      std::remove(GenerationPath(snap_path_, g).c_str());
      std::remove(GenerationPath(delta_path_, g).c_str());
    }
    std::remove(LineageHeadPath(snap_path_).c_str());
    std::remove(snap_path_.c_str());
    std::remove(delta_path_.c_str());
  }

  EngineSource Source() const {
    EngineSource source;
    source.snapshot_path = snap_path_;
    source.delta_path = delta_path_;
    return source;
  }

  /// Appends one op record to the CURRENT generation's log (head-resolved,
  /// base checksum read from the current snapshot) and tracks the ops for
  /// the cold-rebuild oracle.
  void AppendOps(const std::vector<DeltaOp>& ops) {
    Lineage lineage;
    std::string error;
    ASSERT_TRUE(ResolveLineage(snap_path_, delta_path_, &lineage, &error))
        << error;
    auto info = InspectSnapshot(lineage.snapshot_path, &error);
    ASSERT_TRUE(info.has_value()) << error;
    auto writer = DeltaWriter::Open(lineage.delta_path,
                                    info->stored_checksum,
                                    graph_.NumNodes(), &error);
    ASSERT_NE(writer, nullptr) << error;
    ASSERT_TRUE(writer->AppendOps(ops, &error)) << error;
    all_ops_.insert(all_ops_.end(), ops.begin(), ops.end());
  }

  /// A delete of node u's first outgoing edge, or a throwaway add when u
  /// happens to have none in the generated graph.
  DeltaOp FirstDeleteOrAdd(NodeId u) const {
    auto nbrs = graph_.OutNeighbors(u);
    if (nbrs.empty()) return {u, 60, DeltaOpKind::kAdd};
    return {u, nbrs[0], DeltaOpKind::kDelete};
  }

  /// The from-scratch oracle: base graph + every op ever appended.
  uint64_t OracleCount() const {
    Graph rebuilt = ApplyDeltaOps(graph_, all_ops_);
    return GmEngine(rebuilt).EvaluateCollect(query_).size();
  }

  uint64_t ServedCount(EngineCatalog& catalog) {
    std::string error;
    auto state = catalog.Acquire("g", &error);
    EXPECT_NE(state, nullptr) << error;
    if (state == nullptr) return ~0ull;
    return state->engine->EvaluateCollect(query_).size();
  }

  Graph graph_;
  PatternQuery query_;
  std::string snap_path_, delta_path_;
  uint64_t checksum_ = 0;
  std::vector<DeltaOp> all_ops_;
};

TEST_F(MaintenanceTest, CompactFoldsLogIntoNewGenerationAndRepointsHead) {
  EngineCatalog catalog;
  ASSERT_TRUE(catalog.Register("g", Source()));
  AppendOps({{0, 40, DeltaOpKind::kAdd}, {1, 41, DeltaOpKind::kAdd}});
  AppendOps({FirstDeleteOrAdd(0)});
  const uint64_t want = OracleCount();
  ASSERT_EQ(ServedCount(catalog), want);
  const uint64_t old_log_bytes = FileSize(delta_path_);

  CatalogCompactionResult c = catalog.Compact("g");
  ASSERT_TRUE(c.ok) << c.error;
  ASSERT_FALSE(c.skipped);
  EXPECT_EQ(c.generation, 1u);
  EXPECT_EQ(c.snapshot_path, GenerationPath(snap_path_, 1));
  EXPECT_EQ(c.delta_path, GenerationPath(delta_path_, 1));
  EXPECT_GT(c.bytes_reclaimed, 0u);

  // The head now points at generation 1; the old log is gone; the new log
  // is empty (header only) — the "log shrinks" contract.
  Lineage lineage;
  std::string error;
  ASSERT_TRUE(ResolveLineage(snap_path_, delta_path_, &lineage, &error))
      << error;
  EXPECT_EQ(lineage.generation, 1u);
  EXPECT_TRUE(Exists(c.snapshot_path));
  EXPECT_FALSE(Exists(delta_path_));
  EXPECT_EQ(FileSize(c.delta_path), kDeltaFileHeaderBytes);
  EXPECT_LT(FileSize(c.delta_path), old_log_bytes);
  // The configured gen-0 snapshot is never unlinked (it may be the only
  // copy an operator configured; only gen >= 1 intermediates are swept).
  EXPECT_TRUE(Exists(snap_path_));

  // Serving is unchanged by the storage swap...
  EXPECT_EQ(ServedCount(catalog), want);
  MaintenanceStats ms = catalog.maintenance_stats();
  EXPECT_EQ(ms.bytes_reclaimed, c.bytes_reclaimed);

  // ...and the tenant keeps working END TO END on the new generation:
  // appends follow the head into the gen-1 log, refresh applies them, and
  // a second compaction advances to generation 2.
  AppendOps({{2, 42, DeltaOpKind::kAdd}});
  CatalogRefreshResult r = catalog.Refresh("g");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.records_applied, 1u);
  EXPECT_EQ(ServedCount(catalog), OracleCount());

  CatalogCompactionResult c2 = catalog.Compact("g");
  ASSERT_TRUE(c2.ok) << c2.error;
  EXPECT_EQ(c2.generation, 2u);
  EXPECT_FALSE(Exists(GenerationPath(delta_path_, 1)));
  EXPECT_FALSE(Exists(GenerationPath(snap_path_, 1)));
  EXPECT_EQ(ServedCount(catalog), OracleCount());
}

TEST_F(MaintenanceTest, CompactCountsMatchColdRebuildAfterDeletes) {
  // Deletions survive the fold: compact a log whose net effect removes
  // edges, then reopen the tenant COLD from the new generation only.
  EngineCatalog catalog;
  ASSERT_TRUE(catalog.Register("g", Source()));
  ASSERT_EQ(ServedCount(catalog), OracleCount());  // resident, empty log
  std::vector<DeltaOp> ops;
  for (NodeId u = 0; u < 10; ++u) {
    for (NodeId v : graph_.OutNeighbors(u)) {
      ops.push_back({u, v, DeltaOpKind::kDelete});
    }
  }
  ASSERT_FALSE(ops.empty());
  ops.push_back({0, 50, DeltaOpKind::kAdd});
  AppendOps(ops);

  // Compact's drain step IS a refresh — it applies the deletes (counted)
  // before folding them into the new base.
  CatalogCompactionResult c = catalog.Compact("g");
  ASSERT_TRUE(c.ok) << c.error;
  EXPECT_GT(catalog.maintenance_stats().deletes_applied, 0u);
  EXPECT_EQ(ServedCount(catalog), OracleCount());

  // A second catalog resolves the head fresh — everything it knows comes
  // from the compacted generation's files.
  EngineCatalog cold;
  ASSERT_TRUE(cold.Register("g", Source()));
  EXPECT_EQ(ServedCount(cold), OracleCount());
}

TEST_F(MaintenanceTest, CompactSkipsWhileAnExternalAppenderHoldsTheLog) {
  EngineCatalog catalog;
  ASSERT_TRUE(catalog.Register("g", Source()));
  AppendOps({{0, 40, DeltaOpKind::kAdd}});
  ASSERT_EQ(ServedCount(catalog), OracleCount());

  std::string error;
  auto appender =
      DeltaWriter::Open(delta_path_, checksum_, graph_.NumNodes(), &error);
  ASSERT_NE(appender, nullptr) << error;

  CatalogCompactionResult c = catalog.Compact("g");
  EXPECT_TRUE(c.ok) << c.error;
  EXPECT_TRUE(c.skipped);
  EXPECT_TRUE(Exists(delta_path_));
  EXPECT_FALSE(Exists(LineageHeadPath(snap_path_)));
  EXPECT_EQ(catalog.maintenance_stats().auto_compactions, 0u);

  // Released lock -> the next attempt folds normally.
  appender.reset();
  c = catalog.Compact("g");
  ASSERT_TRUE(c.ok) << c.error;
  EXPECT_FALSE(c.skipped);
  EXPECT_EQ(ServedCount(catalog), OracleCount());
}

TEST_F(MaintenanceTest, CrashBeforeHeadPublishLeavesOldLineageServing) {
  // The compaction crash window: generation files written, head NOT yet
  // published. The old lineage must keep serving exactly, and the next
  // compaction sweeps the orphans and takes the generation over.
  EngineCatalog catalog;
  ASSERT_TRUE(catalog.Register("g", Source()));
  AppendOps({{0, 40, DeltaOpKind::kAdd}, {1, 41, DeltaOpKind::kAdd}});
  const uint64_t want = OracleCount();

  // Simulate the crash: plausible-but-uncommitted gen-1 orphans.
  std::filesystem::copy_file(snap_path_, GenerationPath(snap_path_, 1));
  std::ofstream(GenerationPath(delta_path_, 1), std::ios::binary)
      << "orphan bytes from a dead compactor";
  ASSERT_FALSE(Exists(LineageHeadPath(snap_path_)));

  // Resolution ignores orphans (only the head commits a generation), and
  // serving still reflects base + the full log.
  Lineage lineage;
  std::string error;
  ASSERT_TRUE(ResolveLineage(snap_path_, delta_path_, &lineage, &error))
      << error;
  EXPECT_EQ(lineage.generation, 0u);
  EXPECT_EQ(ServedCount(catalog), want);

  // The next compaction rewrites generation 1 from scratch and commits it.
  CatalogCompactionResult c = catalog.Compact("g");
  ASSERT_TRUE(c.ok) << c.error;
  ASSERT_FALSE(c.skipped);
  EXPECT_EQ(c.generation, 1u);
  ASSERT_TRUE(ResolveLineage(snap_path_, delta_path_, &lineage, &error))
      << error;
  EXPECT_EQ(lineage.generation, 1u);
  EXPECT_EQ(ServedCount(catalog), want);
  EXPECT_EQ(FileSize(c.delta_path), kDeltaFileHeaderBytes);
}

TEST_F(MaintenanceTest, RunMaintenanceAppliesNewRecordsWithoutClientRefresh) {
  EngineCatalog catalog;
  catalog.SetMaintenancePolicy({.auto_compact_ratio = 0.0, .interval_ms = 1});
  ASSERT_TRUE(catalog.Register("g", Source()));
  ASSERT_EQ(ServedCount(catalog), OracleCount());  // make it resident

  // Nothing new: the pass touches nothing and counts nothing.
  EXPECT_EQ(catalog.RunMaintenance(), 0u);
  EXPECT_EQ(catalog.maintenance_stats().auto_refreshes, 0u);

  AppendOps({{0, 40, DeltaOpKind::kAdd}, FirstDeleteOrAdd(5)});
  EXPECT_EQ(catalog.RunMaintenance(), 1u);
  MaintenanceStats ms = catalog.maintenance_stats();
  EXPECT_EQ(ms.auto_refreshes, 1u);
  EXPECT_EQ(ms.auto_compactions, 0u);
  EXPECT_EQ(ServedCount(catalog), OracleCount());

  // The published state records the O(1) resume point: the next pass sees
  // size == applied_end_offset and does not act.
  std::string error;
  auto state = catalog.Acquire("g", &error);
  ASSERT_NE(state, nullptr) << error;
  EXPECT_EQ(state->applied_end_offset, FileSize(delta_path_));
  EXPECT_EQ(catalog.RunMaintenance(), 0u);
  EXPECT_EQ(catalog.maintenance_stats().auto_refreshes, 1u);
}

TEST_F(MaintenanceTest, RunMaintenanceAutoCompactsWhenTheRatioTrips) {
  EngineCatalog catalog;
  // Any nonempty log exceeds this fraction of the base snapshot.
  catalog.SetMaintenancePolicy(
      {.auto_compact_ratio = 0.0001, .interval_ms = 1});
  ASSERT_TRUE(catalog.Register("g", Source()));
  ASSERT_EQ(ServedCount(catalog), OracleCount());

  AppendOps({{0, 40, DeltaOpKind::kAdd}});
  AppendOps({{1, 41, DeltaOpKind::kAdd}});
  EXPECT_GE(catalog.RunMaintenance(), 1u);

  MaintenanceStats ms = catalog.maintenance_stats();
  EXPECT_EQ(ms.auto_refreshes, 1u);
  EXPECT_EQ(ms.auto_compactions, 1u);
  EXPECT_GT(ms.bytes_reclaimed, 0u);
  Lineage lineage;
  std::string error;
  ASSERT_TRUE(ResolveLineage(snap_path_, delta_path_, &lineage, &error))
      << error;
  EXPECT_EQ(lineage.generation, 1u);
  EXPECT_EQ(ServedCount(catalog), OracleCount());
  EXPECT_EQ(FileSize(lineage.delta_path), kDeltaFileHeaderBytes);
}

TEST_F(MaintenanceTest, MaintenanceThreadRefreshesAndReportsOverTheWire) {
  // End to end through the daemon: a server with a maintenance thread
  // picks up externally appended records with no client kRefresh, and the
  // stats tail reports the maintenance counters over the wire.
  auto catalog = std::make_shared<EngineCatalog>();
  ASSERT_TRUE(catalog->Register("g", Source()));
  ServerConfig config;
  config.unix_path = UniquePath() + ".sock";
  config.num_workers = 2;
  config.maintenance_interval_ms = 10;
  auto server = std::make_unique<QueryServer>(catalog, config);
  std::string error;
  ASSERT_TRUE(server->Start(&error)) << error;

  QueryClient client;
  ASSERT_TRUE(client.ConnectUnix(config.unix_path, &error)) << error;
  client.SetGraph("g");
  QueryRequest req;
  req.patterns = {kPattern};
  auto resp = client.Query(req, &error);
  ASSERT_TRUE(resp.has_value()) << error;
  ASSERT_EQ(resp->status, StatusCode::kOk) << resp->error;
  EXPECT_EQ(resp->results[0].num_occurrences, OracleCount());

  AppendOps({{0, 40, DeltaOpKind::kAdd}, {1, 41, DeltaOpKind::kAdd}});
  const uint64_t want = OracleCount();

  // The thread polls every 10ms; give it a generous deadline. The stats
  // counter is the signal records were applied (the appended edges may or
  // may not change this particular pattern's count).
  uint64_t auto_refreshes = 0;
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    auto stats = client.Stats(&error);
    ASSERT_TRUE(stats.has_value()) << error;
    auto_refreshes = stats->auto_refreshes;
    if (auto_refreshes >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GE(auto_refreshes, 1u);

  auto r = client.Query(req, &error);
  ASSERT_TRUE(r.has_value()) << error;
  ASSERT_EQ(r->status, StatusCode::kOk) << r->error;
  EXPECT_EQ(r->results[0].num_occurrences, want);

  server->Stop();
  std::remove(config.unix_path.c_str());
}

}  // namespace
}  // namespace rigpm
