// Persistence subsystem tests (storage/snapshot.h, util/serde.h): bitmap
// and graph round trips, warm-start engine equivalence at several thread
// counts, database round trips, and rejection of malformed input for both
// the binary snapshot reader and the text graph reader.

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench_util/workloads.h"
#include "bitmap/bitmap.h"
#include "engine/gm_engine.h"
#include "graph/generators.h"
#include "graph/graph_io.h"
#include "graphdb/graph_database.h"
#include "query/query_generator.h"
#include "storage/snapshot.h"
#include "test_util.h"
#include "util/serde.h"

namespace rigpm {
namespace {

using rigpm::testing::PaperExample;

// Unique temp path per test; removed on destruction.
class TempFile {
 public:
  explicit TempFile(const std::string& stem) {
    static int counter = 0;
    path_ = (std::filesystem::temp_directory_path() /
             (stem + "." + std::to_string(::getpid()) + "." +
              std::to_string(counter++) + ".snap"))
                .string();
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

Bitmap RoundTrip(const Bitmap& b) {
  ByteSink sink;
  b.Serialize(sink);
  ByteSource src(sink.data().data(), sink.size());
  Bitmap out = Bitmap::Deserialize(src);
  EXPECT_TRUE(src.ok()) << src.error();
  EXPECT_EQ(src.remaining(), 0u);
  return out;
}

TEST(BitmapSerde, EmptyRoundTrips) {
  Bitmap empty;
  EXPECT_EQ(RoundTrip(empty), empty);
}

TEST(BitmapSerde, SparseDenseAndMultiContainerRoundTrip) {
  // Sparse array container.
  Bitmap sparse{1, 5, 100, 65535};
  EXPECT_EQ(RoundTrip(sparse), sparse);

  // Dense bitset container (cardinality > kArrayCapacity).
  Bitmap dense;
  for (uint32_t i = 0; i < 3 * Bitmap::kArrayCapacity; ++i) dense.Add(2 * i);
  ASSERT_GT(dense.ContainerCount(), 0u);
  EXPECT_EQ(RoundTrip(dense), dense);

  // Mixed: array and bitset containers across several chunks.
  Bitmap mixed = dense;
  mixed.Add(10'000'000);
  mixed.Add(4'000'000'000u);
  EXPECT_EQ(RoundTrip(mixed), mixed);
}

TEST(BitmapSerde, RandomRoundTrips) {
  std::mt19937_64 rng(7);
  for (int round = 0; round < 10; ++round) {
    Bitmap b;
    std::uniform_int_distribution<uint32_t> dist(0, 1u << 20);
    int n = 1 + static_cast<int>(rng() % 20000);
    for (int i = 0; i < n; ++i) b.Add(dist(rng));
    EXPECT_EQ(RoundTrip(b), b);
  }
}

TEST(BitmapSerde, TruncatedPayloadFailsSoftly) {
  Bitmap b{1, 2, 3, 70000};
  ByteSink sink;
  b.Serialize(sink);
  for (size_t cut : {size_t{0}, size_t{3}, sink.size() / 2, sink.size() - 1}) {
    ByteSource src(sink.data().data(), cut);
    Bitmap out = Bitmap::Deserialize(src);
    EXPECT_FALSE(src.ok());
    EXPECT_TRUE(out.Empty());
  }
}

// --------------------------------------------------------------- graphs

void ExpectSameGraph(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.NumNodes(), b.NumNodes());
  ASSERT_EQ(a.NumEdges(), b.NumEdges());
  ASSERT_EQ(a.NumLabels(), b.NumLabels());
  for (NodeId v = 0; v < a.NumNodes(); ++v) {
    EXPECT_EQ(a.Label(v), b.Label(v));
    ASSERT_EQ(a.OutDegree(v), b.OutDegree(v));
    ASSERT_EQ(a.InDegree(v), b.InDegree(v));
    for (uint32_t i = 0; i < a.OutDegree(v); ++i) {
      EXPECT_EQ(a.OutNeighbors(v)[i], b.OutNeighbors(v)[i]);
    }
    // Bitmap contents must be byte-identical, not just equivalent.
    EXPECT_EQ(a.OutBitmap(v), b.OutBitmap(v));
    EXPECT_EQ(a.InBitmap(v), b.InBitmap(v));
  }
  for (LabelId l = 0; l < a.NumLabels(); ++l) {
    EXPECT_EQ(a.LabelBitmap(l), b.LabelBitmap(l));
  }
}

TEST(GraphSnapshot, PaperExampleRoundTrips) {
  Graph g = PaperExample::MakeGraph();
  TempFile file("graph_paper");
  std::string error;
  ASSERT_TRUE(SaveGraphSnapshot(g, file.path(), &error)) << error;
  auto loaded = LoadGraphSnapshot(file.path(), &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  ExpectSameGraph(g, *loaded);
}

TEST(GraphSnapshot, GeneratedGraphsRoundTrip) {
  GeneratorOptions opts;
  opts.num_nodes = 500;
  opts.num_edges = 2500;
  opts.num_labels = 6;
  for (uint64_t seed : {1ull, 2ull, 3ull}) {
    opts.seed = seed;
    for (const Graph& g : {GenerateErdosRenyi(opts), GeneratePowerLaw(opts),
                           GenerateRandomDag(opts)}) {
      TempFile file("graph_gen");
      std::string error;
      ASSERT_TRUE(SaveGraphSnapshot(g, file.path(), &error)) << error;
      auto loaded = LoadGraphSnapshot(file.path(), &error);
      ASSERT_TRUE(loaded.has_value()) << error;
      ExpectSameGraph(g, *loaded);
    }
  }
}

TEST(GraphSnapshot, TextWriteOfLoadedGraphIsIdentical) {
  Graph g = PaperExample::MakeGraph();
  TempFile file("graph_text");
  ASSERT_TRUE(SaveGraphSnapshot(g, file.path()));
  auto loaded = LoadGraphSnapshot(file.path());
  ASSERT_TRUE(loaded.has_value());
  std::ostringstream a, b;
  WriteGraph(g, a);
  WriteGraph(*loaded, b);
  EXPECT_EQ(a.str(), b.str());
}

// --------------------------------------------------------------- engines

std::set<std::vector<NodeId>> CollectSet(const GmEngine& engine,
                                         const PatternQuery& q,
                                         uint32_t threads) {
  GmOptions opts;
  opts.num_threads = threads;
  auto tuples = engine.EvaluateCollect(q, opts);
  return {tuples.begin(), tuples.end()};
}

TEST(EngineSnapshot, WarmStartMatchesColdStartOnPaperExample) {
  Graph g = PaperExample::MakeGraph();
  GmEngine cold(g);
  TempFile file("engine_paper");
  std::string error;
  ASSERT_TRUE(SaveEngineSnapshot(cold, file.path(), &error)) << error;
  auto warm = LoadEngineSnapshot(file.path(), &error);
  ASSERT_TRUE(warm.has_value()) << error;
  ExpectSameGraph(g, *warm->graph);

  PatternQuery q = PaperExample::MakeQuery();
  for (uint32_t threads : {1u, 2u, 4u}) {
    EXPECT_EQ(CollectSet(cold, q, threads), PaperExample::ExpectedAnswer());
    EXPECT_EQ(CollectSet(*warm->engine, q, threads),
              PaperExample::ExpectedAnswer());
  }
}

TEST(EngineSnapshot, WarmStartMatchesColdStartOnRandomGraphs) {
  GeneratorOptions gopts;
  gopts.num_nodes = 400;
  gopts.num_edges = 2000;
  gopts.num_labels = 5;
  RandomQueryOptions qopts;
  qopts.num_nodes = 4;
  qopts.num_edges = 5;
  qopts.num_labels = gopts.num_labels;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    gopts.seed = seed;
    Graph g = seed % 2 == 0 ? GeneratePowerLaw(gopts)
                            : GenerateErdosRenyi(gopts);
    GmEngine cold(g);
    TempFile file("engine_rand");
    std::string error;
    ASSERT_TRUE(SaveEngineSnapshot(cold, file.path(), &error)) << error;
    auto warm = LoadEngineSnapshot(file.path(), &error);
    ASSERT_TRUE(warm.has_value()) << error;

    for (uint64_t qseed = 1; qseed <= 5; ++qseed) {
      qopts.seed = qseed;
      PatternQuery q = GenerateRandomQuery(qopts);
      if (!q.IsConnected()) continue;
      for (uint32_t threads : {1u, 2u, 4u}) {
        EXPECT_EQ(CollectSet(cold, q, threads),
                  CollectSet(*warm->engine, q, threads))
            << "graph seed " << seed << " query seed " << qseed << " threads "
            << threads;
      }
    }
  }
}

TEST(EngineSnapshot, WarmStartMatchesColdStartOnTemplateWorkload) {
  GeneratorOptions gopts;
  gopts.num_nodes = 1000;
  gopts.num_edges = 5000;
  gopts.num_labels = 8;
  gopts.seed = 11;
  Graph g = GeneratePowerLaw(gopts);
  GmEngine cold(g);
  TempFile file("engine_tmpl");
  std::string error;
  ASSERT_TRUE(SaveEngineSnapshot(cold, file.path(), &error)) << error;
  auto warm = LoadEngineSnapshot(file.path(), &error);
  ASSERT_TRUE(warm.has_value()) << error;

  auto workload = TemplateWorkload(g, RepresentativeTemplateNames(),
                                   QueryVariant::kHybrid, /*seed=*/17);
  for (const NamedQuery& nq : workload) {
    GmOptions opts;
    opts.limit = 20000;
    GmResult a = cold.Evaluate(nq.query, opts);
    GmResult b = warm->engine->Evaluate(nq.query, opts);
    EXPECT_EQ(a.num_occurrences, b.num_occurrences) << nq.name;
  }
}

TEST(EngineSnapshot, BatchServingMatchesAcrossThreadCounts) {
  Graph g = PaperExample::MakeGraph();
  GmEngine cold(g);
  TempFile file("engine_batch");
  ASSERT_TRUE(SaveEngineSnapshot(cold, file.path()));
  auto warm = LoadEngineSnapshot(file.path());
  ASSERT_TRUE(warm.has_value());

  std::vector<PatternQuery> batch(6, PaperExample::MakeQuery());
  for (uint32_t threads : {1u, 2u, 4u}) {
    GmOptions opts;
    opts.num_threads = threads;
    auto cold_results = cold.EvaluateBatch(batch, opts);
    auto warm_results = warm->engine->EvaluateBatch(batch, opts);
    ASSERT_EQ(cold_results.size(), warm_results.size());
    for (size_t i = 0; i < cold_results.size(); ++i) {
      EXPECT_EQ(cold_results[i].num_occurrences,
                warm_results[i].num_occurrences);
    }
  }
}

// -------------------------------------------------------------- database

TEST(GraphDatabaseSnapshot, SearchResultsSurviveRoundTrip) {
  GraphDatabase db;
  GeneratorOptions gopts;
  gopts.num_nodes = 60;
  gopts.num_edges = 200;
  gopts.num_labels = 4;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    gopts.seed = seed;
    db.Add(GenerateErdosRenyi(gopts), "member-" + std::to_string(seed));
  }
  db.Add(PaperExample::MakeGraph(), "paper");

  TempFile file("graphdb");
  std::string error;
  ASSERT_TRUE(db.Save(file.path(), &error)) << error;
  auto loaded = GraphDatabase::Load(file.path(), &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  ASSERT_EQ(loaded->Size(), db.Size());
  for (size_t id = 0; id < db.Size(); ++id) {
    EXPECT_EQ(loaded->Name(id), db.Name(id));
    ExpectSameGraph(db.MemberGraph(id), loaded->MemberGraph(id));
  }

  PatternQuery q = PaperExample::MakeQuery();
  for (uint32_t threads : {1u, 2u}) {
    GraphDatabase::SearchOptions sopts;
    sopts.num_threads = threads;
    GraphDatabase::SearchStats stats_a, stats_b;
    EXPECT_EQ(db.Search(q, sopts, &stats_a),
              loaded->Search(q, sopts, &stats_b));
    EXPECT_EQ(stats_a.candidates_after_filter, stats_b.candidates_after_filter);
  }
  for (size_t id = 0; id < db.Size(); ++id) {
    EXPECT_EQ(db.PassesFilter(id, q), loaded->PassesFilter(id, q));
  }
}

// ------------------------------------------------------- malformed binary

std::string SlurpFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void DumpFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

class MalformedSnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Graph g = PaperExample::MakeGraph();
    ASSERT_TRUE(SaveGraphSnapshot(g, file_.path()));
    bytes_ = SlurpFile(file_.path());
    ASSERT_GT(bytes_.size(), 24u);
  }

  TempFile file_{"malformed"};
  std::string bytes_;
};

TEST_F(MalformedSnapshotTest, TruncatedFileIsRejected) {
  for (size_t keep : {size_t{0}, size_t{4}, size_t{20}, bytes_.size() / 2,
                      bytes_.size() - 1}) {
    DumpFile(file_.path(), bytes_.substr(0, keep));
    std::string error;
    EXPECT_FALSE(LoadGraphSnapshot(file_.path(), &error).has_value());
    EXPECT_FALSE(error.empty());
  }
}

TEST_F(MalformedSnapshotTest, BadMagicIsRejected) {
  std::string corrupt = bytes_;
  corrupt[0] = 'X';
  DumpFile(file_.path(), corrupt);
  std::string error;
  EXPECT_FALSE(LoadGraphSnapshot(file_.path(), &error).has_value());
  EXPECT_NE(error.find("magic"), std::string::npos) << error;
}

TEST_F(MalformedSnapshotTest, WrongVersionIsRejected) {
  std::string corrupt = bytes_;
  corrupt[8] = static_cast<char>(kSnapshotVersion + 7);
  DumpFile(file_.path(), corrupt);
  std::string error;
  EXPECT_FALSE(LoadGraphSnapshot(file_.path(), &error).has_value());
  EXPECT_NE(error.find("version"), std::string::npos) << error;
}

TEST_F(MalformedSnapshotTest, KindMismatchIsRejected) {
  std::string error;
  // A graph snapshot is not an engine snapshot.
  EXPECT_FALSE(LoadEngineSnapshot(file_.path(), &error).has_value());
  EXPECT_NE(error.find("kind"), std::string::npos) << error;
}

TEST_F(MalformedSnapshotTest, CorruptPayloadFailsChecksum) {
  // Flip one bit in the middle of the payload; the CRC footer must catch it
  // even when the payload still decodes structurally.
  std::string corrupt = bytes_;
  corrupt[corrupt.size() / 2] ^= 0x01;
  DumpFile(file_.path(), corrupt);
  std::string error;
  EXPECT_FALSE(LoadGraphSnapshot(file_.path(), &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST_F(MalformedSnapshotTest, OverstatedPayloadSizeIsRejected) {
  // The header's payload_size field (offset 16: magic 8 + version 4 +
  // kind 4) declares ~2^60 bytes; the reader must reject against the real
  // file size before attempting any allocation of that size.
  std::string corrupt = bytes_;
  const uint64_t huge = uint64_t{1} << 60;
  std::memcpy(&corrupt[16], &huge, sizeof(huge));
  DumpFile(file_.path(), corrupt);
  std::string error;
  EXPECT_FALSE(LoadGraphSnapshot(file_.path(), &error).has_value());
  EXPECT_NE(error.find("payload size"), std::string::npos) << error;
}

TEST_F(MalformedSnapshotTest, UnderstatedPayloadSizeIsRejected) {
  // Understating the payload length would leave payload bytes parsed as
  // the checksum footer; the size cross-check must catch it up front.
  std::string corrupt = bytes_;
  uint64_t declared = 0;
  std::memcpy(&declared, &corrupt[16], sizeof(declared));
  ASSERT_GT(declared, 0u);
  --declared;
  std::memcpy(&corrupt[16], &declared, sizeof(declared));
  DumpFile(file_.path(), corrupt);
  std::string error;
  EXPECT_FALSE(LoadGraphSnapshot(file_.path(), &error).has_value());
  EXPECT_NE(error.find("payload size"), std::string::npos) << error;
}

TEST_F(MalformedSnapshotTest, UnseekableSourceIsRejected) {
  // A FIFO has no end to seek to: tellg() fails with -1, which must become
  // a descriptive error, not a ~2^64 "file size" cast from the failure
  // value.
  std::string fifo_path = file_.path() + ".fifo";
  ASSERT_EQ(::mkfifo(fifo_path.c_str(), 0600), 0) << std::strerror(errno);
  int keep_open = ::open(fifo_path.c_str(), O_RDWR);  // so open() can't block
  ASSERT_GE(keep_open, 0);
  std::string error;
  EXPECT_FALSE(LoadGraphSnapshot(fifo_path, &error).has_value());
  EXPECT_NE(error.find("size"), std::string::npos) << error;
  ::close(keep_open);
  ::unlink(fifo_path.c_str());
}

TEST_F(MalformedSnapshotTest, CorruptChecksumFooterIsRejected) {
  std::string corrupt = bytes_;
  corrupt[corrupt.size() - 1] ^= 0xFF;
  DumpFile(file_.path(), corrupt);
  std::string error;
  EXPECT_FALSE(LoadGraphSnapshot(file_.path(), &error).has_value());
  EXPECT_NE(error.find("checksum"), std::string::npos) << error;
}

// --------------------------------------------------------- malformed text

std::optional<Graph> ParseText(const std::string& text, std::string* error) {
  std::istringstream in(text);
  return ReadGraph(in, error);
}

TEST(ReadGraphValidation, EdgeToUndeclaredNodeFailsWithoutHeader) {
  std::string error;
  EXPECT_FALSE(ParseText("v 0 0\nv 1 1\ne 0 5\n", &error).has_value());
  EXPECT_NE(error.find("undeclared"), std::string::npos) << error;
}

TEST(ReadGraphValidation, EdgeToUndeclaredNodeFailsWithHeader) {
  std::string error;
  EXPECT_FALSE(
      ParseText("t 9 1\nv 0 0\nv 1 1\ne 0 5\n", &error).has_value());
  EXPECT_NE(error.find("undeclared"), std::string::npos) << error;
}

TEST(ReadGraphValidation, HeaderCountMismatchFails) {
  std::string error;
  EXPECT_FALSE(ParseText("t 3 1\nv 0 0\nv 1 1\ne 0 1\n", &error).has_value());
  EXPECT_NE(error.find("node"), std::string::npos) << error;
  EXPECT_FALSE(ParseText("t 2 2\nv 0 0\nv 1 1\ne 0 1\n", &error).has_value());
  EXPECT_NE(error.find("edge"), std::string::npos) << error;
}

TEST(ReadGraphValidation, DuplicateOrMalformedHeaderFails) {
  std::string error;
  EXPECT_FALSE(ParseText("t 1 0\nt 1 0\nv 0 0\n", &error).has_value());
  EXPECT_NE(error.find("duplicate"), std::string::npos) << error;
  EXPECT_FALSE(ParseText("t one two\nv 0 0\n", &error).has_value());
}

TEST(ReadGraphValidation, NonDenseAndUnknownTagsStillFail) {
  std::string error;
  EXPECT_FALSE(ParseText("v 1 0\n", &error).has_value());
  EXPECT_FALSE(ParseText("v 0 0\nx 1 2\n", &error).has_value());
  EXPECT_FALSE(ParseText("v 0 zero\n", &error).has_value());
}

TEST(ReadGraphValidation, ValidInputStillParses) {
  std::string error;
  auto g = ParseText("t 2 1\nv 0 0\nv 1 1\ne 0 1\n# comment\n", &error);
  ASSERT_TRUE(g.has_value()) << error;
  EXPECT_EQ(g->NumNodes(), 2u);
  EXPECT_EQ(g->NumEdges(), 1u);
}

}  // namespace
}  // namespace rigpm
