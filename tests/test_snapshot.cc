// Persistence subsystem tests (storage/snapshot.h, util/serde.h): bitmap
// and graph round trips, warm-start engine equivalence at several thread
// counts and under both IO modes (zero-copy mmap and streaming read),
// database round trips, v1-format compatibility, header inspection, FIFO
// streaming fallback, and rejection of malformed input for both the binary
// snapshot reader and the text graph reader. Every malformed-file check
// runs under both IO modes — corrupt mapped files must be rejected before
// any decode, exactly like corrupt slurped ones.

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <thread>
#include <cstring>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench_util/workloads.h"
#include "bitmap/bitmap.h"
#include "engine/gm_engine.h"
#include "graph/generators.h"
#include "graph/graph_io.h"
#include "graphdb/graph_database.h"
#include "query/query_generator.h"
#include "reach/bfl_index.h"
#include "storage/snapshot.h"
#include "test_util.h"
#include "util/serde.h"

namespace rigpm {
namespace {

using rigpm::testing::PaperExample;

constexpr SnapshotIoMode kBothModes[] = {SnapshotIoMode::kMmap,
                                         SnapshotIoMode::kRead};

const char* ModeName(SnapshotIoMode mode) {
  return mode == SnapshotIoMode::kMmap ? "mmap" : "read";
}

// Unique temp path per test; removed on destruction.
class TempFile {
 public:
  explicit TempFile(const std::string& stem) {
    static int counter = 0;
    path_ = (std::filesystem::temp_directory_path() /
             (stem + "." + std::to_string(::getpid()) + "." +
              std::to_string(counter++) + ".snap"))
                .string();
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string SlurpFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void DumpFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

Bitmap RoundTrip(const Bitmap& b) {
  ByteSink sink;
  b.Serialize(sink);
  ByteSource src(sink.data().data(), sink.size());
  Bitmap out = Bitmap::Deserialize(src);
  EXPECT_TRUE(src.ok()) << src.error();
  EXPECT_EQ(src.remaining(), 0u);
  return out;
}

// ------------------------------------------------------------- checksum

TEST(ChecksumStream, MatchesOneShotAcrossChunkings) {
  std::mt19937_64 rng(99);
  std::vector<uint8_t> data(100'000);
  for (auto& b : data) b = static_cast<uint8_t>(rng());
  const uint64_t expected = Checksum64(data.data(), data.size());
  for (size_t chunk : {size_t{1}, size_t{7}, size_t{31}, size_t{32},
                       size_t{33}, size_t{4096}, data.size()}) {
    Checksum64Stream stream;
    for (size_t off = 0; off < data.size(); off += chunk) {
      stream.Update(data.data() + off, std::min(chunk, data.size() - off));
    }
    EXPECT_EQ(stream.Finish(), expected) << "chunk " << chunk;
  }
  Checksum64Stream empty;
  EXPECT_EQ(empty.Finish(), Checksum64(nullptr, 0));
}

// --------------------------------------------------------------- bitmaps

TEST(BitmapSerde, EmptyRoundTrips) {
  Bitmap empty;
  EXPECT_EQ(RoundTrip(empty), empty);
}

TEST(BitmapSerde, SparseDenseAndMultiContainerRoundTrip) {
  // Sparse array container.
  Bitmap sparse{1, 5, 100, 65535};
  EXPECT_EQ(RoundTrip(sparse), sparse);

  // Dense bitset container (cardinality > kArrayCapacity).
  Bitmap dense;
  for (uint32_t i = 0; i < 3 * Bitmap::kArrayCapacity; ++i) dense.Add(2 * i);
  ASSERT_GT(dense.ContainerCount(), 0u);
  EXPECT_EQ(RoundTrip(dense), dense);

  // Mixed: array and bitset containers across several chunks.
  Bitmap mixed = dense;
  mixed.Add(10'000'000);
  mixed.Add(4'000'000'000u);
  EXPECT_EQ(RoundTrip(mixed), mixed);
}

TEST(BitmapSerde, RandomRoundTrips) {
  std::mt19937_64 rng(7);
  for (int round = 0; round < 10; ++round) {
    Bitmap b;
    std::uniform_int_distribution<uint32_t> dist(0, 1u << 20);
    int n = 1 + static_cast<int>(rng() % 20000);
    for (int i = 0; i < n; ++i) b.Add(dist(rng));
    EXPECT_EQ(RoundTrip(b), b);
  }
}

TEST(BitmapSerde, TruncatedPayloadFailsSoftly) {
  Bitmap b{1, 2, 3, 70000};
  ByteSink sink;
  b.Serialize(sink);
  for (size_t cut : {size_t{0}, size_t{3}, sink.size() / 2, sink.size() - 1}) {
    ByteSource src(sink.data().data(), cut);
    Bitmap out = Bitmap::Deserialize(src);
    EXPECT_FALSE(src.ok());
    EXPECT_TRUE(out.Empty());
  }
}

// --------------------------------------------------------------- graphs

void ExpectSameGraph(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.NumNodes(), b.NumNodes());
  ASSERT_EQ(a.NumEdges(), b.NumEdges());
  ASSERT_EQ(a.NumLabels(), b.NumLabels());
  for (NodeId v = 0; v < a.NumNodes(); ++v) {
    EXPECT_EQ(a.Label(v), b.Label(v));
    ASSERT_EQ(a.OutDegree(v), b.OutDegree(v));
    ASSERT_EQ(a.InDegree(v), b.InDegree(v));
    for (uint32_t i = 0; i < a.OutDegree(v); ++i) {
      EXPECT_EQ(a.OutNeighbors(v)[i], b.OutNeighbors(v)[i]);
    }
    // Bitmap contents must be byte-identical, not just equivalent.
    EXPECT_EQ(a.OutBitmap(v), b.OutBitmap(v));
    EXPECT_EQ(a.InBitmap(v), b.InBitmap(v));
  }
  for (LabelId l = 0; l < a.NumLabels(); ++l) {
    EXPECT_EQ(a.LabelBitmap(l), b.LabelBitmap(l));
  }
}

TEST(GraphSnapshot, PaperExampleRoundTripsUnderBothIoModes) {
  Graph g = PaperExample::MakeGraph();
  TempFile file("graph_paper");
  std::string error;
  ASSERT_TRUE(SaveGraphSnapshot(g, file.path(), &error)) << error;
  for (SnapshotIoMode mode : kBothModes) {
    auto loaded = LoadGraphSnapshot(file.path(), {.io_mode = mode}, &error);
    ASSERT_TRUE(loaded.has_value()) << ModeName(mode) << ": " << error;
    ExpectSameGraph(g, *loaded);
  }
}

TEST(GraphSnapshot, GeneratedGraphsRoundTrip) {
  GeneratorOptions opts;
  opts.num_nodes = 500;
  opts.num_edges = 2500;
  opts.num_labels = 6;
  for (uint64_t seed : {1ull, 2ull, 3ull}) {
    opts.seed = seed;
    for (const Graph& g : {GenerateErdosRenyi(opts), GeneratePowerLaw(opts),
                           GenerateRandomDag(opts)}) {
      TempFile file("graph_gen");
      std::string error;
      ASSERT_TRUE(SaveGraphSnapshot(g, file.path(), &error)) << error;
      for (SnapshotIoMode mode : kBothModes) {
        auto loaded = LoadGraphSnapshot(file.path(), {.io_mode = mode}, &error);
        ASSERT_TRUE(loaded.has_value()) << ModeName(mode) << ": " << error;
        ExpectSameGraph(g, *loaded);
      }
    }
  }
}

TEST(GraphSnapshot, MmapLoadedGraphOutlivesReaderAndDeletedFile) {
  // The zero-copy contract: the loaded graph borrows from the mapping and
  // owns a token keeping it alive, so it must stay fully usable after the
  // reader is gone, after the file is unlinked, and across moves. (ASan in
  // CI turns any lifetime violation here into a hard failure.)
  Graph g = PaperExample::MakeGraph();
  TempFile file("graph_lifetime");
  ASSERT_TRUE(SaveGraphSnapshot(g, file.path()));
  std::optional<Graph> loaded =
      LoadGraphSnapshot(file.path(), {.io_mode = SnapshotIoMode::kMmap});
  ASSERT_TRUE(loaded.has_value());
  std::remove(file.path().c_str());  // mapping survives the unlink

  Graph moved = std::move(*loaded);
  loaded.reset();
  ExpectSameGraph(g, moved);

  // Copies deep-copy: mutating a copied bitmap must not touch the original
  // (which may be a borrowed view of the mapping).
  Bitmap copy = moved.OutBitmap(0);
  Bitmap before = copy;
  copy.Add(31);
  copy.Remove(6);
  EXPECT_NE(copy, moved.OutBitmap(0));
  EXPECT_EQ(before, moved.OutBitmap(0));
}

TEST(GraphSnapshot, V1FormatLoadsViaCopyFallback) {
  // A v1 file has no alignment padding, so zero-copy borrowing is mostly
  // impossible — the loader must still accept it (copying arrays out),
  // under both IO modes.
  Graph g = PaperExample::MakeGraph();
  ByteSink v1_sink(/*pad_arrays=*/false, /*encode_runs=*/false);
  g.Serialize(v1_sink);
  TempFile file("graph_v1");
  std::string error;
  ASSERT_TRUE(WriteSnapshotFile(file.path(), SnapshotKind::kGraph, v1_sink,
                                &error, kMinSnapshotVersion))
      << error;
  auto info = InspectSnapshot(file.path(), &error);
  ASSERT_TRUE(info.has_value()) << error;
  EXPECT_EQ(info->version, kMinSnapshotVersion);
  EXPECT_FALSE(info->aligned);
  for (SnapshotIoMode mode : kBothModes) {
    auto loaded = LoadGraphSnapshot(file.path(), {.io_mode = mode}, &error);
    ASSERT_TRUE(loaded.has_value()) << ModeName(mode) << ": " << error;
    ExpectSameGraph(g, *loaded);
  }
}

TEST(GraphSnapshot, V2FormatLoadsViaRunlessPath) {
  // A v2 file is aligned but predates run containers. The writer twin is
  // ByteSink(pad_arrays, encode_runs=false) + version 2; the reader must
  // accept it under both IO modes and reject any run container it finds.
  Graph g = PaperExample::MakeGraph();
  ByteSink v2_sink(/*pad_arrays=*/true, /*encode_runs=*/false);
  g.Serialize(v2_sink);
  TempFile file("graph_v2");
  std::string error;
  ASSERT_TRUE(WriteSnapshotFile(file.path(), SnapshotKind::kGraph, v2_sink,
                                &error, /*version=*/2))
      << error;
  auto info = InspectSnapshot(file.path(), &error);
  ASSERT_TRUE(info.has_value()) << error;
  EXPECT_EQ(info->version, 2u);
  EXPECT_TRUE(info->aligned);
  EXPECT_FALSE(info->run_encoded);
  for (SnapshotIoMode mode : kBothModes) {
    auto loaded = LoadGraphSnapshot(file.path(), {.io_mode = mode}, &error);
    ASSERT_TRUE(loaded.has_value()) << ModeName(mode) << ": " << error;
    ExpectSameGraph(g, *loaded);
  }

  // A native-v3 payload under a version-2 header is corruption, not data:
  // write a graph that genuinely serializes run containers (one node
  // adjacent to a long contiguous id range) under a v2 header and expect
  // rejection. The pre-v3 reader desyncs on the dropped total-cardinality
  // word before it even reaches a run container's kind byte, so the exact
  // error varies — what is pinned is that the load must fail, both modes.
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId v = 1; v < 20000; ++v) edges.push_back({0, v});
  Graph runs_graph =
      Graph::FromEdges(std::vector<LabelId>(20000, 0), std::move(edges));
  ByteSink bad_sink(/*pad_arrays=*/true, /*encode_runs=*/true);
  runs_graph.Serialize(bad_sink);
  TempFile bad("graph_v2_bad");
  ASSERT_TRUE(WriteSnapshotFile(bad.path(), SnapshotKind::kGraph, bad_sink,
                                &error, /*version=*/2));
  for (SnapshotIoMode mode : kBothModes) {
    EXPECT_FALSE(
        LoadGraphSnapshot(bad.path(), {.io_mode = mode}, &error).has_value())
        << ModeName(mode);
    EXPECT_FALSE(error.empty());
  }
}

TEST(GraphSnapshot, MmapLoadKeepsContainersEncodedUntilMutation) {
  // The daemon RSS accounting contract: after an mmap load the graph's
  // bitmap payloads stay *encoded inside the mapping*, so OwnedHeapBytes
  // must be far below the decoded footprint, borrowed container counts must
  // equal total container counts, and reads must not change either. This is
  // what makes resident memory track compressed snapshot size in serving.
  GeneratorOptions opts;
  opts.num_nodes = 3000;
  opts.num_edges = 40000;
  opts.num_labels = 4;
  opts.seed = 5;
  Graph g = GenerateErdosRenyi(opts);
  TempFile file("graph_lazy");
  std::string error;
  ASSERT_TRUE(SaveGraphSnapshot(g, file.path(), &error)) << error;

  auto mapped = LoadGraphSnapshot(
      file.path(), {.io_mode = SnapshotIoMode::kMmap}, &error);
  ASSERT_TRUE(mapped.has_value()) << error;
  auto slurped = LoadGraphSnapshot(
      file.path(), {.io_mode = SnapshotIoMode::kRead}, &error);
  ASSERT_TRUE(slurped.has_value()) << error;

  BitmapContainerStats mapped_stats;
  for (auto section : {Graph::BitmapSection::kForward,
                       Graph::BitmapSection::kBackward,
                       Graph::BitmapSection::kLabels}) {
    mapped_stats.Accumulate(mapped->SectionStats(section));
  }
  EXPECT_GT(mapped_stats.TotalContainers(), 0u);
  EXPECT_EQ(mapped_stats.borrowed_containers, mapped_stats.TotalContainers());

  // Owned heap: the mapped graph holds container tables but no payloads;
  // the slurped graph owns everything it decoded.
  EXPECT_LT(mapped->OwnedHeapBytes(), slurped->OwnedHeapBytes());

  // Reads leave the accounting untouched.
  const size_t before = mapped->OwnedHeapBytes();
  uint64_t sum = 0;
  for (NodeId v = 0; v < mapped->NumNodes(); v += 7) {
    mapped->OutBitmap(v).ForEach([&sum](uint32_t w) { sum += w; });
  }
  ASSERT_GT(sum, 0u);
  EXPECT_EQ(mapped->OwnedHeapBytes(), before);

  BitmapContainerStats after;
  for (auto section : {Graph::BitmapSection::kForward,
                       Graph::BitmapSection::kBackward,
                       Graph::BitmapSection::kLabels}) {
    after.Accumulate(mapped->SectionStats(section));
  }
  EXPECT_EQ(after.borrowed_containers, mapped_stats.borrowed_containers);
}

TEST(GraphSnapshot, InspectReportsHeaderWithoutDecoding) {
  Graph g = PaperExample::MakeGraph();
  TempFile file("graph_inspect");
  ASSERT_TRUE(SaveGraphSnapshot(g, file.path()));
  std::string error;
  auto info = InspectSnapshot(file.path(), &error);
  ASSERT_TRUE(info.has_value()) << error;
  EXPECT_EQ(info->version, kSnapshotVersion);
  EXPECT_EQ(info->kind_value, static_cast<uint32_t>(SnapshotKind::kGraph));
  EXPECT_TRUE(info->aligned);
  EXPECT_EQ(info->file_size, info->payload_size + 24 + 8);

  // Inspect must work even when the payload itself is garbage (that is the
  // point: debugging files that fail to load) ...
  std::ofstream out(file.path(),
                    std::ios::binary | std::ios::in | std::ios::out);
  out.seekp(30);
  out.put('\xFF');
  out.close();
  EXPECT_TRUE(InspectSnapshot(file.path(), &error).has_value());

  // ... but still reject files too short to hold a header.
  TempFile stub("inspect_stub");
  DumpFile(stub.path(), "RIGPM");
  EXPECT_FALSE(InspectSnapshot(stub.path(), &error).has_value());
  EXPECT_NE(error.find("truncated"), std::string::npos) << error;
}

TEST(GraphSnapshot, TextWriteOfLoadedGraphIsIdentical) {
  Graph g = PaperExample::MakeGraph();
  TempFile file("graph_text");
  ASSERT_TRUE(SaveGraphSnapshot(g, file.path()));
  auto loaded = LoadGraphSnapshot(file.path());
  ASSERT_TRUE(loaded.has_value());
  std::ostringstream a, b;
  WriteGraph(g, a);
  WriteGraph(*loaded, b);
  EXPECT_EQ(a.str(), b.str());
}

// --------------------------------------------------------------- engines

std::set<std::vector<NodeId>> CollectSet(const GmEngine& engine,
                                         const PatternQuery& q,
                                         uint32_t threads) {
  GmOptions opts;
  opts.num_threads = threads;
  auto tuples = engine.EvaluateCollect(q, opts);
  return {tuples.begin(), tuples.end()};
}

TEST(EngineSnapshot, WarmStartMatchesColdStartOnPaperExample) {
  Graph g = PaperExample::MakeGraph();
  GmEngine cold(g);
  TempFile file("engine_paper");
  std::string error;
  ASSERT_TRUE(SaveEngineSnapshot(cold, file.path(), &error)) << error;
  for (SnapshotIoMode mode : kBothModes) {
    auto warm = LoadEngineSnapshot(file.path(), {.io_mode = mode}, &error);
    ASSERT_TRUE(warm.has_value()) << ModeName(mode) << ": " << error;
    ExpectSameGraph(g, *warm->graph);

    PatternQuery q = PaperExample::MakeQuery();
    for (uint32_t threads : {1u, 2u, 4u}) {
      EXPECT_EQ(CollectSet(cold, q, threads), PaperExample::ExpectedAnswer());
      EXPECT_EQ(CollectSet(*warm->engine, q, threads),
                PaperExample::ExpectedAnswer())
          << ModeName(mode) << " threads " << threads;
    }
  }
}

TEST(EngineSnapshot, WarmStartMatchesColdStartOnRandomGraphs) {
  GeneratorOptions gopts;
  gopts.num_nodes = 400;
  gopts.num_edges = 2000;
  gopts.num_labels = 5;
  RandomQueryOptions qopts;
  qopts.num_nodes = 4;
  qopts.num_edges = 5;
  qopts.num_labels = gopts.num_labels;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    gopts.seed = seed;
    Graph g = seed % 2 == 0 ? GeneratePowerLaw(gopts)
                            : GenerateErdosRenyi(gopts);
    GmEngine cold(g);
    TempFile file("engine_rand");
    std::string error;
    ASSERT_TRUE(SaveEngineSnapshot(cold, file.path(), &error)) << error;
    // Load via zero-copy mmap AND streaming read: both engines must agree
    // with the cold build (and therefore with each other) on every query.
    auto warm_mmap = LoadEngineSnapshot(
        file.path(), {.io_mode = SnapshotIoMode::kMmap}, &error);
    ASSERT_TRUE(warm_mmap.has_value()) << error;
    auto warm_read = LoadEngineSnapshot(
        file.path(), {.io_mode = SnapshotIoMode::kRead}, &error);
    ASSERT_TRUE(warm_read.has_value()) << error;

    for (uint64_t qseed = 1; qseed <= 5; ++qseed) {
      qopts.seed = qseed;
      PatternQuery q = GenerateRandomQuery(qopts);
      if (!q.IsConnected()) continue;
      for (uint32_t threads : {1u, 2u, 4u}) {
        auto expected = CollectSet(cold, q, threads);
        EXPECT_EQ(expected, CollectSet(*warm_mmap->engine, q, threads))
            << "mmap: graph seed " << seed << " query seed " << qseed
            << " threads " << threads;
        EXPECT_EQ(expected, CollectSet(*warm_read->engine, q, threads))
            << "read: graph seed " << seed << " query seed " << qseed
            << " threads " << threads;
      }
    }
  }
}

TEST(EngineSnapshot, WarmStartMatchesColdStartOnTemplateWorkload) {
  GeneratorOptions gopts;
  gopts.num_nodes = 1000;
  gopts.num_edges = 5000;
  gopts.num_labels = 8;
  gopts.seed = 11;
  Graph g = GeneratePowerLaw(gopts);
  GmEngine cold(g);
  TempFile file("engine_tmpl");
  std::string error;
  ASSERT_TRUE(SaveEngineSnapshot(cold, file.path(), &error)) << error;
  auto warm = LoadEngineSnapshot(file.path(), {}, &error);
  ASSERT_TRUE(warm.has_value()) << error;

  auto workload = TemplateWorkload(g, RepresentativeTemplateNames(),
                                   QueryVariant::kHybrid, /*seed=*/17);
  for (const NamedQuery& nq : workload) {
    GmOptions opts;
    opts.limit = 20000;
    GmResult a = cold.Evaluate(nq.query, opts);
    GmResult b = warm->engine->Evaluate(nq.query, opts);
    EXPECT_EQ(a.num_occurrences, b.num_occurrences) << nq.name;
  }
}

TEST(EngineSnapshot, MmapLoadMatchesColdOnTemplateWorkload) {
  GeneratorOptions gopts;
  gopts.num_nodes = 1000;
  gopts.num_edges = 5000;
  gopts.num_labels = 8;
  gopts.seed = 11;
  Graph g = GeneratePowerLaw(gopts);
  GmEngine cold(g);
  TempFile file("engine_tmpl_mmap");
  std::string error;
  ASSERT_TRUE(SaveEngineSnapshot(cold, file.path(), &error)) << error;
  auto warm = LoadEngineSnapshot(file.path(),
                                 {.io_mode = SnapshotIoMode::kMmap}, &error);
  ASSERT_TRUE(warm.has_value()) << error;

  auto workload = TemplateWorkload(g, RepresentativeTemplateNames(),
                                   QueryVariant::kHybrid, /*seed=*/17);
  for (const NamedQuery& nq : workload) {
    GmOptions opts;
    opts.limit = 20000;
    GmResult a = cold.Evaluate(nq.query, opts);
    GmResult b = warm->engine->Evaluate(nq.query, opts);
    EXPECT_EQ(a.num_occurrences, b.num_occurrences) << nq.name;
  }
}

TEST(EngineSnapshot, BatchServingMatchesAcrossThreadCounts) {
  Graph g = PaperExample::MakeGraph();
  GmEngine cold(g);
  TempFile file("engine_batch");
  ASSERT_TRUE(SaveEngineSnapshot(cold, file.path()));
  for (SnapshotIoMode mode : kBothModes) {
    auto warm = LoadEngineSnapshot(file.path(), {.io_mode = mode});
    ASSERT_TRUE(warm.has_value());

    std::vector<PatternQuery> batch(6, PaperExample::MakeQuery());
    for (uint32_t threads : {1u, 2u, 4u}) {
      GmOptions opts;
      opts.num_threads = threads;
      auto cold_results = cold.EvaluateBatch(batch, opts);
      auto warm_results = warm->engine->EvaluateBatch(batch, opts);
      ASSERT_EQ(cold_results.size(), warm_results.size());
      for (size_t i = 0; i < cold_results.size(); ++i) {
        EXPECT_EQ(cold_results[i].num_occurrences,
                  warm_results[i].num_occurrences)
            << ModeName(mode);
      }
    }
  }
}

// -------------------------------------------------------------- database

TEST(GraphDatabaseSnapshot, SearchResultsSurviveRoundTrip) {
  GraphDatabase db;
  GeneratorOptions gopts;
  gopts.num_nodes = 60;
  gopts.num_edges = 200;
  gopts.num_labels = 4;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    gopts.seed = seed;
    db.Add(GenerateErdosRenyi(gopts), "member-" + std::to_string(seed));
  }
  db.Add(PaperExample::MakeGraph(), "paper");

  TempFile file("graphdb");
  std::string error;
  ASSERT_TRUE(db.Save(file.path(), &error)) << error;
  for (SnapshotIoMode mode : kBothModes) {
    auto loaded = GraphDatabase::Load(file.path(), {.io_mode = mode}, &error);
    ASSERT_TRUE(loaded.has_value()) << ModeName(mode) << ": " << error;
    ASSERT_EQ(loaded->Size(), db.Size());
    for (size_t id = 0; id < db.Size(); ++id) {
      EXPECT_EQ(loaded->Name(id), db.Name(id));
      ExpectSameGraph(db.MemberGraph(id), loaded->MemberGraph(id));
    }

    PatternQuery q = PaperExample::MakeQuery();
    for (uint32_t threads : {1u, 2u}) {
      GraphDatabase::SearchOptions sopts;
      sopts.num_threads = threads;
      GraphDatabase::SearchStats stats_a, stats_b;
      EXPECT_EQ(db.Search(q, sopts, &stats_a),
                loaded->Search(q, sopts, &stats_b));
      EXPECT_EQ(stats_a.candidates_after_filter,
                stats_b.candidates_after_filter);
    }
    for (size_t id = 0; id < db.Size(); ++id) {
      EXPECT_EQ(db.PassesFilter(id, q), loaded->PassesFilter(id, q));
    }
  }
}

// ------------------------------------------------------- malformed binary

class MalformedSnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Graph g = PaperExample::MakeGraph();
    ASSERT_TRUE(SaveGraphSnapshot(g, file_.path()));
    bytes_ = SlurpFile(file_.path());
    ASSERT_GT(bytes_.size(), 24u);
  }

  // Every malformed file must be rejected before any decode under BOTH IO
  // modes — a corrupt mapped file is just as dangerous as a corrupt slurped
  // one. `expect_substr` must appear in the error (empty = any error).
  void ExpectRejected(const std::string& contents,
                      const char* expect_substr = "") {
    DumpFile(file_.path(), contents);
    for (SnapshotIoMode mode : kBothModes) {
      std::string error;
      EXPECT_FALSE(LoadGraphSnapshot(file_.path(), {.io_mode = mode}, &error).has_value())
          << ModeName(mode);
      EXPECT_FALSE(error.empty()) << ModeName(mode);
      EXPECT_NE(error.find(expect_substr), std::string::npos)
          << ModeName(mode) << ": " << error;
    }
  }

  TempFile file_{"malformed"};
  std::string bytes_;
};

TEST_F(MalformedSnapshotTest, TruncatedFileIsRejected) {
  for (size_t keep : {size_t{0}, size_t{4}, size_t{20}, bytes_.size() / 2,
                      bytes_.size() - 1}) {
    ExpectRejected(bytes_.substr(0, keep));
  }
}

TEST_F(MalformedSnapshotTest, BadMagicIsRejected) {
  std::string corrupt = bytes_;
  corrupt[0] = 'X';
  ExpectRejected(corrupt, "magic");
}

TEST_F(MalformedSnapshotTest, WrongVersionIsRejected) {
  std::string corrupt = bytes_;
  corrupt[8] = static_cast<char>(kSnapshotVersion + 7);
  ExpectRejected(corrupt, "version");
}

TEST_F(MalformedSnapshotTest, KindMismatchIsRejected) {
  // A graph snapshot is not an engine snapshot.
  for (SnapshotIoMode mode : kBothModes) {
    std::string error;
    EXPECT_FALSE(
        LoadEngineSnapshot(file_.path(), {.io_mode = mode}, &error)
            .has_value());
    EXPECT_NE(error.find("kind"), std::string::npos) << error;
  }
}

TEST_F(MalformedSnapshotTest, CorruptPayloadFailsChecksum) {
  // Flip one bit in the middle of the payload; the CRC footer must catch it
  // even when the payload still decodes structurally.
  std::string corrupt = bytes_;
  corrupt[corrupt.size() / 2] ^= 0x01;
  ExpectRejected(corrupt);
}

TEST_F(MalformedSnapshotTest, OverstatedPayloadSizeIsRejected) {
  // The header's payload_size field (offset 16: magic 8 + version 4 +
  // kind 4) declares ~2^60 bytes; the reader must reject against the real
  // file size before attempting any allocation of that size.
  std::string corrupt = bytes_;
  const uint64_t huge = uint64_t{1} << 60;
  std::memcpy(&corrupt[16], &huge, sizeof(huge));
  ExpectRejected(corrupt, "payload size");
}

TEST_F(MalformedSnapshotTest, UnderstatedPayloadSizeIsRejected) {
  // Understating the payload length would leave payload bytes parsed as
  // the checksum footer; the size cross-check must catch it up front.
  std::string corrupt = bytes_;
  uint64_t declared = 0;
  std::memcpy(&declared, &corrupt[16], sizeof(declared));
  ASSERT_GT(declared, 0u);
  --declared;
  std::memcpy(&corrupt[16], &declared, sizeof(declared));
  ExpectRejected(corrupt, "payload size");
}

TEST_F(MalformedSnapshotTest, CorruptChecksumFooterIsRejected) {
  std::string corrupt = bytes_;
  corrupt[corrupt.size() - 1] ^= 0xFF;
  ExpectRejected(corrupt, "checksum");
}

TEST_F(MalformedSnapshotTest, HeaderOnlyFileWithHugePayloadSizeIsRejected) {
  // A 24-byte file (header, no footer) whose payload_size is crafted as
  // exactly `-(header+checksum)` mod 2^64: the reader's file-size
  // cross-check must not wrap into agreement and then die trying to
  // reserve ~2^64 bytes.
  std::string header_only = bytes_.substr(0, 24);
  const uint64_t wrap = ~uint64_t{0} - 7;  // 2^64 - 8 == 24 - 32 mod 2^64
  std::memcpy(&header_only[16], &wrap, sizeof(wrap));
  ExpectRejected(header_only, "truncated");
}

TEST_F(MalformedSnapshotTest, LabelCountOverflowIsRejected) {
  // num_labels = 0xFFFFFFFF must not wrap the `label_offsets.size() ==
  // num_labels + 1` structure check to "expected 0" and walk an empty
  // offsets array (checksum-valid payload, so only the structural
  // validation stands between this file and a crash).
  ByteSink sink;
  sink.WriteU32(0xFFFFFFFFu);  // num_labels
  OwnedOrBorrowedSpan<uint32_t> empty_u32;
  OwnedOrBorrowedSpan<uint64_t> zero_offsets(std::vector<uint64_t>{0});
  sink.WriteSpan<uint32_t>(empty_u32);     // labels (0 nodes)
  sink.WriteSpan<uint64_t>(zero_offsets);  // fwd_offsets = [0]
  sink.WriteSpan<uint32_t>(empty_u32);     // fwd_targets
  sink.WriteSpan<uint64_t>(zero_offsets);  // bwd_offsets = [0]
  sink.WriteSpan<uint32_t>(empty_u32);     // bwd_targets
  OwnedOrBorrowedSpan<uint64_t> empty_u64;
  sink.WriteSpan<uint64_t>(empty_u64);     // label_offsets (empty!)
  sink.WriteSpan<uint32_t>(empty_u32);     // label_nodes
  ASSERT_TRUE(WriteSnapshotFile(file_.path(), SnapshotKind::kGraph, sink));
  for (SnapshotIoMode mode : kBothModes) {
    std::string error;
    EXPECT_FALSE(LoadGraphSnapshot(file_.path(), {.io_mode = mode}, &error).has_value())
        << ModeName(mode);
    EXPECT_NE(error.find("inconsistent"), std::string::npos)
        << ModeName(mode) << ": " << error;
  }
}

// A FIFO cannot be mapped or seeked; the reader must fall back to the
// bounded streaming path and still load a valid snapshot end-to-end.
TEST_F(MalformedSnapshotTest, FifoStreamsViaReadFallback) {
  std::string fifo_path = file_.path() + ".fifo";
  ASSERT_EQ(::mkfifo(fifo_path.c_str(), 0600), 0) << std::strerror(errno);
  for (SnapshotIoMode mode : kBothModes) {
    // Feed the snapshot through the FIFO from a writer thread (a FIFO's
    // kernel buffer is smaller than the snapshot, so a blocking writer is
    // required).
    std::thread writer([&] {
      std::ofstream out(fifo_path, std::ios::binary);
      out.write(bytes_.data(), static_cast<std::streamsize>(bytes_.size()));
    });
    std::string error;
    auto loaded = LoadGraphSnapshot(fifo_path, {.io_mode = mode}, &error);
    writer.join();
    ASSERT_TRUE(loaded.has_value()) << ModeName(mode) << ": " << error;
    ExpectSameGraph(PaperExample::MakeGraph(), *loaded);
  }
  ::unlink(fifo_path.c_str());
}

TEST_F(MalformedSnapshotTest, FifoWithLyingPayloadSizeIsRejectedBounded) {
  // Through a FIFO the payload_size header cannot be cross-checked against
  // a file size; a corrupt ~2^60 value must hit the bounded chunk loop and
  // fail with `truncated` after the real bytes run out — never a giant
  // up-front allocation.
  std::string corrupt = bytes_;
  const uint64_t huge = uint64_t{1} << 60;
  std::memcpy(&corrupt[16], &huge, sizeof(huge));
  std::string fifo_path = file_.path() + ".fifo2";
  ASSERT_EQ(::mkfifo(fifo_path.c_str(), 0600), 0) << std::strerror(errno);
  std::thread writer([&] {
    std::ofstream out(fifo_path, std::ios::binary);
    out.write(corrupt.data(), static_cast<std::streamsize>(corrupt.size()));
  });
  std::string error;
  EXPECT_FALSE(LoadGraphSnapshot(fifo_path, {}, &error).has_value());
  writer.join();
  EXPECT_NE(error.find("truncated"), std::string::npos) << error;
  ::unlink(fifo_path.c_str());
}

TEST(BflSnapshot, IntervalSizeMismatchIsRejected) {
  // A checksum-valid BFL image whose interval labels were built over a
  // different (smaller) graph than its condensation: every per-component /
  // per-node array the cuts index into would be too short, so Deserialize
  // must reject the structure instead of serving OOB reachability reads.
  Graph big = PaperExample::MakeGraph();
  Condensation cond_big(big);
  Graph small = Graph::FromEdges({0}, {});
  Condensation cond_small(small);
  IntervalLabels iv_small(small, cond_small);

  const uint32_t nc = cond_big.NumComponents();
  ASSERT_GT(nc, 1u);
  ByteSink sink;
  cond_big.Serialize(sink);
  iv_small.Serialize(sink);  // sizes disagree with cond_big
  sink.WriteU32(1);          // words_
  OwnedOrBorrowedSpan<uint64_t> labels(std::vector<uint64_t>(nc, 0));
  sink.WriteSpan<uint64_t>(labels);  // l_out
  sink.WriteSpan<uint64_t>(labels);  // l_in
  OwnedOrBorrowedSpan<uint32_t> hash(std::vector<uint32_t>(nc, 0));
  sink.WriteSpan<uint32_t>(hash);
  OwnedOrBorrowedSpan<uint64_t> pred_offsets(
      std::vector<uint64_t>(nc + 1, 0));
  sink.WriteSpan<uint64_t>(pred_offsets);
  OwnedOrBorrowedSpan<uint32_t> pred_targets;
  sink.WriteSpan<uint32_t>(pred_targets);

  ByteSource src(sink.data().data(), sink.size());
  EXPECT_EQ(BflIndex::Deserialize(src), nullptr);
  EXPECT_FALSE(src.ok());
  EXPECT_NE(src.error().find("inconsistent"), std::string::npos)
      << src.error();
}

// --------------------------------------------------------- malformed text

std::optional<Graph> ParseText(const std::string& text, std::string* error) {
  std::istringstream in(text);
  return ReadGraph(in, error);
}

TEST(ReadGraphValidation, EdgeToUndeclaredNodeFailsWithoutHeader) {
  std::string error;
  EXPECT_FALSE(ParseText("v 0 0\nv 1 1\ne 0 5\n", &error).has_value());
  EXPECT_NE(error.find("undeclared"), std::string::npos) << error;
}

TEST(ReadGraphValidation, EdgeToUndeclaredNodeFailsWithHeader) {
  std::string error;
  EXPECT_FALSE(
      ParseText("t 9 1\nv 0 0\nv 1 1\ne 0 5\n", &error).has_value());
  EXPECT_NE(error.find("undeclared"), std::string::npos) << error;
}

TEST(ReadGraphValidation, HeaderCountMismatchFails) {
  std::string error;
  EXPECT_FALSE(ParseText("t 3 1\nv 0 0\nv 1 1\ne 0 1\n", &error).has_value());
  EXPECT_NE(error.find("node"), std::string::npos) << error;
  EXPECT_FALSE(ParseText("t 2 2\nv 0 0\nv 1 1\ne 0 1\n", &error).has_value());
  EXPECT_NE(error.find("edge"), std::string::npos) << error;
}

TEST(ReadGraphValidation, DuplicateOrMalformedHeaderFails) {
  std::string error;
  EXPECT_FALSE(ParseText("t 1 0\nt 1 0\nv 0 0\n", &error).has_value());
  EXPECT_NE(error.find("duplicate"), std::string::npos) << error;
  EXPECT_FALSE(ParseText("t one two\nv 0 0\n", &error).has_value());
}

TEST(ReadGraphValidation, NonDenseAndUnknownTagsStillFail) {
  std::string error;
  EXPECT_FALSE(ParseText("v 1 0\n", &error).has_value());
  EXPECT_FALSE(ParseText("v 0 0\nx 1 2\n", &error).has_value());
  EXPECT_FALSE(ParseText("v 0 zero\n", &error).has_value());
}

TEST(ReadGraphValidation, ValidInputStillParses) {
  std::string error;
  auto g = ParseText("t 2 1\nv 0 0\nv 1 1\ne 0 1\n# comment\n", &error);
  ASSERT_TRUE(g.has_value()) << error;
  EXPECT_EQ(g->NumNodes(), 2u);
  EXPECT_EQ(g->NumEdges(), 1u);
}

}  // namespace
}  // namespace rigpm
