#ifndef RIGPM_TESTS_TEST_UTIL_H_
#define RIGPM_TESTS_TEST_UTIL_H_

#include <set>
#include <vector>

#include "graph/graph.h"
#include "query/pattern_query.h"

namespace rigpm::testing {

/// The running example of the paper (Fig. 2): data graph G with labels
/// a/b/c and the hybrid query Q = { A -child-> B, A -child-> C,
/// B -desc-> C }. The node ids below follow the paper's subscripts:
///   a0=0 a1=1 a2=2   b0=3 b1=4 b2=5 b3=6   c0=7 c1=8 c2=9
/// The construction reproduces Table 1 (F/B/FB simulations), the refined
/// RIG of Fig. 2(e) (including the redundant edge (b2, c1)), and the
/// four-tuple answer {(a1,b0,c0), (a1,b0,c1), (a2,b2,c0), (a2,b2,c2)}.
struct PaperExample {
  static constexpr NodeId a0 = 0, a1 = 1, a2 = 2;
  static constexpr NodeId b0 = 3, b1 = 4, b2 = 5, b3 = 6;
  static constexpr NodeId c0 = 7, c1 = 8, c2 = 9;
  static constexpr LabelId kLabelA = 0, kLabelB = 1, kLabelC = 2;

  static Graph MakeGraph() {
    std::vector<LabelId> labels = {0, 0, 0, 1, 1, 1, 1, 2, 2, 2};
    std::vector<std::pair<NodeId, NodeId>> edges = {
        {a0, b3}, {a1, b0}, {a2, b2},            // a -> b children
        {a1, c0}, {a1, c1}, {a2, c0}, {a2, c2},  // a -> c children
        {b0, c0}, {b0, c1},                      // b0 reaches c0, c1
        {b1, c0}, {b1, c2},                      // b1 reaches c0, c2
        {b2, b0}, {b2, c2},  // b2 reaches c0, c1 (via b0), c2
    };
    return Graph::FromEdges(std::move(labels), std::move(edges));
  }

  static PatternQuery MakeQuery() {
    // Query nodes: A=0, B=1, C=2.
    return PatternQuery::FromParts(
        {kLabelA, kLabelB, kLabelC},
        {{0, 1, EdgeKind::kChild},
         {0, 2, EdgeKind::kChild},
         {1, 2, EdgeKind::kDescendant}});
  }

  static std::set<std::vector<NodeId>> ExpectedAnswer() {
    return {{a1, b0, c0}, {a1, b0, c1}, {a2, b2, c0}, {a2, b2, c2}};
  }
};

/// Exhaustive homomorphism enumeration by definition (Definition 2.5):
/// assigns query nodes in id order over the label inverted lists and checks
/// every edge with adjacency / DFS reachability. Exponential; use only on
/// tiny graphs. This is the oracle for the differential property tests.
std::set<std::vector<NodeId>> BruteForceAnswer(const Graph& g,
                                               const PatternQuery& q);

/// Plain DFS reachability (>= 1 edge), independent of src/reach.
bool SlowReaches(const Graph& g, NodeId u, NodeId v);

/// Depth-limited reachability: a path of 1..max_hops edges from u to v.
bool SlowReachesBounded(const Graph& g, NodeId u, NodeId v,
                        uint32_t max_hops);

}  // namespace rigpm::testing

#endif  // RIGPM_TESTS_TEST_UTIL_H_
