// Result-cache tests (server/result_cache.h, query CanonicalFingerprint):
// the fingerprint differential suite (permuted declarations collide,
// semantic mutations separate), the sharded-LRU byte budget, singleflight
// coalescing under thread fire, and the server-level guarantee that a warm
// cache never outlives the engine generation it was computed against.

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/gm_engine.h"
#include "query/pattern_parser.h"
#include "query/pattern_query.h"
#include "server/client.h"
#include "server/result_cache.h"
#include "server/server.h"
#include "storage/delta_log.h"
#include "storage/snapshot.h"
#include "test_util.h"

namespace rigpm {
namespace {

using rigpm::testing::PaperExample;
using namespace rigpm::server;

// ------------------------------------------------- canonical fingerprints

/// Renumbers a query's nodes by `perm` (old id -> new id) and shuffles the
/// edge declaration order: the same pattern as the caller would have
/// written it in a different textual order.
PatternQuery Permuted(const PatternQuery& q,
                      const std::vector<QueryNodeId>& perm,
                      std::mt19937* rng) {
  std::vector<LabelId> labels(q.NumNodes());
  for (QueryNodeId n = 0; n < q.NumNodes(); ++n)
    labels[perm[n]] = q.Label(n);
  std::vector<QueryEdge> edges = q.Edges();
  for (QueryEdge& e : edges) {
    e.from = perm[e.from];
    e.to = perm[e.to];
  }
  std::shuffle(edges.begin(), edges.end(), *rng);
  return PatternQuery::FromParts(std::move(labels), std::move(edges));
}

/// A random connected pattern: a spanning tree plus a few extra edges, with
/// deliberately few labels so WL refinement actually faces ties.
PatternQuery RandomPattern(std::mt19937* rng) {
  std::uniform_int_distribution<uint32_t> size(2, 7);
  const uint32_t n = size(*rng);
  std::uniform_int_distribution<LabelId> label(0, 2);
  std::uniform_int_distribution<int> coin(0, 1);
  std::vector<LabelId> labels(n);
  for (LabelId& l : labels) l = label(*rng);
  std::vector<QueryEdge> edges;
  for (QueryNodeId v = 1; v < n; ++v) {
    std::uniform_int_distribution<QueryNodeId> parent(0, v - 1);
    QueryEdge e;
    e.from = parent(*rng);
    e.to = v;
    e.kind = coin(*rng) != 0 ? EdgeKind::kDescendant : EdgeKind::kChild;
    if (e.kind == EdgeKind::kDescendant && coin(*rng) != 0) e.max_hops = 3;
    edges.push_back(e);
  }
  std::uniform_int_distribution<QueryNodeId> any(0, n - 1);
  for (uint32_t extra = n / 2; extra > 0; --extra) {
    QueryEdge e;
    e.from = any(*rng);
    e.to = any(*rng);
    if (e.from == e.to) continue;
    e.kind = coin(*rng) != 0 ? EdgeKind::kDescendant : EdgeKind::kChild;
    edges.push_back(e);
  }
  return PatternQuery::FromParts(std::move(labels), std::move(edges));
}

TEST(CanonicalFingerprint, PermutedDeclarationOrdersCollide) {
  // The differential: for many random patterns and many random node
  // renumberings, the fingerprint must not depend on declaration order.
  std::mt19937 rng(20230907);
  for (int trial = 0; trial < 80; ++trial) {
    PatternQuery q = RandomPattern(&rng);
    const uint64_t fp = q.CanonicalFingerprint();
    const std::vector<uint8_t> enc = q.CanonicalEncoding();
    std::vector<QueryNodeId> perm(q.NumNodes());
    std::iota(perm.begin(), perm.end(), 0);
    for (int round = 0; round < 4; ++round) {
      std::shuffle(perm.begin(), perm.end(), rng);
      PatternQuery twin = Permuted(q, perm, &rng);
      EXPECT_EQ(twin.CanonicalFingerprint(), fp)
          << "trial " << trial << ": " << q.Summary() << " vs "
          << twin.Summary();
      EXPECT_EQ(twin.CanonicalEncoding(), enc);
    }
  }
}

TEST(CanonicalFingerprint, TextDeclarationOrderIsIrrelevant) {
  // The same property end-to-end through the parser: comma-permuted clause
  // order renumbers nodes by first appearance, which must not show through.
  auto a = ParsePattern("(a:0)->(b:1), (a)->(c:2), (b)=>(c)");
  auto b = ParsePattern("(b:1)=>(c:2), (x:0)->(c), (x)->(b)");
  ASSERT_TRUE(a.has_value() && b.has_value());
  EXPECT_EQ(a->CanonicalFingerprint(), b->CanonicalFingerprint());
  EXPECT_EQ(a->CanonicalEncoding(), b->CanonicalEncoding());
}

TEST(CanonicalFingerprint, SemanticMutationsSeparate) {
  // Mutations chosen so the label / kind / hops multiset provably changes —
  // the mutant cannot be isomorphic to the original, so a collision would
  // be a genuine cache-poisoning bug, not an isomorphism false alarm.
  std::mt19937 rng(424242);
  for (int trial = 0; trial < 80; ++trial) {
    PatternQuery q = RandomPattern(&rng);
    const uint64_t fp = q.CanonicalFingerprint();

    std::uniform_int_distribution<QueryNodeId> node(0, q.NumNodes() - 1);
    std::vector<LabelId> labels = q.Labels();
    labels[node(rng)] = 9;  // a label the generator never emits
    EXPECT_NE(
        PatternQuery::FromParts(labels, q.Edges()).CanonicalFingerprint(),
        fp);

    std::uniform_int_distribution<QueryEdgeId> pick(0, q.NumEdges() - 1);
    std::vector<QueryEdge> kind_flip = q.Edges();
    QueryEdge& ke = kind_flip[pick(rng)];
    ke.kind = ke.kind == EdgeKind::kChild ? EdgeKind::kDescendant
                                          : EdgeKind::kChild;
    ke.max_hops = 0;
    PatternQuery mutant =
        PatternQuery::FromParts(q.Labels(), std::move(kind_flip));
    if (mutant.NumEdges() == q.NumEdges()) {  // flip may collide + dedup
      EXPECT_NE(mutant.CanonicalFingerprint(), fp);
    }

    std::vector<QueryEdge> hops = q.Edges();
    QueryEdge& he = hops[pick(rng)];
    if (he.kind == EdgeKind::kDescendant) {
      he.max_hops = he.max_hops == 0 ? 7 : he.max_hops + 4;
      EXPECT_NE(
          PatternQuery::FromParts(q.Labels(), hops).CanonicalFingerprint(),
          fp);
    }
  }
}

TEST(CanonicalFingerprint, DirectionMattersOnAsymmetricPatterns) {
  auto fwd = ParsePattern("(a:0)->(b:1), (b)->(c:1)");
  auto rev = ParsePattern("(a:0)<-(b:1), (b)<-(c:1)");
  if (!rev.has_value()) {  // the grammar may not have reverse arrows
    PatternQuery q = PatternQuery::FromParts(
        {0, 1, 1}, {{1, 0, EdgeKind::kChild, 0}, {2, 1, EdgeKind::kChild, 0}});
    rev = q;
  }
  ASSERT_TRUE(fwd.has_value());
  EXPECT_NE(fwd->CanonicalFingerprint(), rev->CanonicalFingerprint());
}

TEST(CanonicalFingerprint, ChildHopsAreNormalized) {
  // max_hops is documented as ignored for child edges; two declarations
  // differing only there are the same query and must share a key.
  PatternQuery a = PatternQuery::FromParts(
      {0, 1}, {{0, 1, EdgeKind::kChild, 0}});
  PatternQuery b = PatternQuery::FromParts(
      {0, 1}, {{0, 1, EdgeKind::kChild, 5}});
  EXPECT_EQ(a.CanonicalFingerprint(), b.CanonicalFingerprint());
}

TEST(CanonicalFingerprint, HighSymmetryPatternsStayCanonical) {
  // A 6-cycle of one label is the worst case for refinement (every node is
  // in one color class); the bounded permutation search must still land on
  // one orbit representative for every rotation.
  auto cycle = [](uint32_t shift) {
    std::vector<QueryEdge> edges;
    for (uint32_t v = 0; v < 6; ++v) {
      edges.push_back({(v + shift) % 6, (v + 1 + shift) % 6,
                       EdgeKind::kChild, 0});
    }
    return PatternQuery::FromParts(std::vector<LabelId>(6, 1),
                                   std::move(edges));
  };
  const uint64_t fp = cycle(0).CanonicalFingerprint();
  for (uint32_t shift = 1; shift < 6; ++shift) {
    EXPECT_EQ(cycle(shift).CanonicalFingerprint(), fp) << shift;
  }
}

// ------------------------------------------------------ ResultCache unit

ResultCache::Value MakeValue(uint64_t occurrences, size_t pad = 0) {
  auto resp = std::make_shared<QueryResponse>();
  QueryResultWire r;
  r.num_occurrences = occurrences;
  resp->results.push_back(r);
  resp->tuples.assign(pad, 0);
  return resp;
}

TEST(ResultCacheUnit, HitAfterInsertAndStatsAccounting) {
  ResultCache cache(1 << 20, /*num_shards=*/2);
  EXPECT_EQ(cache.Lookup("k1"), nullptr);
  auto v = cache.GetOrCompute("k1", [] { return MakeValue(7); });
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->results[0].num_occurrences, 7u);

  auto again = cache.GetOrCompute(
      "k1", []() -> ResultCache::Value { ADD_FAILURE(); return nullptr; });
  ASSERT_NE(again, nullptr);
  EXPECT_EQ(again.get(), v.get());  // the cached object, not a recompute
  ASSERT_NE(cache.Lookup("k1"), nullptr);

  ResultCacheStats s = cache.Stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.inserts, 1u);
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_GT(s.bytes_used, 0u);
}

TEST(ResultCacheUnit, ByteBudgetEvictsLeastRecentlyUsed) {
  // Entries of ~1 KiB against a budget that holds only a few per shard;
  // one shard keeps the arithmetic exact.
  ResultCache cache(4096, /*num_shards=*/1);
  const size_t pad = 128;  // tuples payload; EntryBytes adds overhead
  for (int i = 0; i < 64; ++i) {
    std::string key = "key-" + std::to_string(i);
    cache.GetOrCompute(key, [&] { return MakeValue(i, pad); });
  }
  ResultCacheStats s = cache.Stats();
  EXPECT_GT(s.evictions, 0u);
  EXPECT_LE(s.bytes_used, 4096u);
  EXPECT_EQ(s.misses, 64u);
  // The most recent key survived, the oldest was evicted.
  EXPECT_NE(cache.Lookup("key-63"), nullptr);
  EXPECT_EQ(cache.Lookup("key-0"), nullptr);
}

TEST(ResultCacheUnit, TouchOnHitProtectsHotKeys) {
  ResultCache cache(4096, /*num_shards=*/1);
  cache.GetOrCompute("hot", [] { return MakeValue(1, 128); });
  for (int i = 0; i < 64; ++i) {
    ASSERT_NE(cache.Lookup("hot"), nullptr) << "round " << i;  // keep MRU
    cache.GetOrCompute("cold-" + std::to_string(i),
                       [] { return MakeValue(2, 128); });
  }
  EXPECT_NE(cache.Lookup("hot"), nullptr);
}

TEST(ResultCacheUnit, OversizeEntryIsServedButNotCached) {
  ResultCache cache(512, /*num_shards=*/1);
  auto v = cache.GetOrCompute("huge", [] { return MakeValue(1, 4096); });
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(cache.Stats().entries, 0u);
  EXPECT_EQ(cache.Lookup("huge"), nullptr);
}

TEST(ResultCacheUnit, FailedComputeIsNotCachedAndRetries) {
  ResultCache cache(1 << 20);
  auto miss = cache.GetOrCompute(
      "k", []() -> ResultCache::Value { return nullptr; });
  EXPECT_EQ(miss, nullptr);
  auto retry = cache.GetOrCompute("k", [] { return MakeValue(3); });
  ASSERT_NE(retry, nullptr);
  EXPECT_EQ(retry->results[0].num_occurrences, 3u);
}

TEST(ResultCacheUnit, SingleflightComputesOnceUnderThreadFire) {
  // N threads race the same cold key: exactly one compute may run, the
  // rest must wait for it and observe the same object. This test is part
  // of the TSan matrix.
  ResultCache cache(1 << 20);
  constexpr int kThreads = 8;
  std::atomic<int> computes{0};
  std::atomic<bool> go{false};
  std::vector<ResultCache::Value> seen(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      while (!go.load()) std::this_thread::yield();
      seen[t] = cache.GetOrCompute("cold", [&] {
        ++computes;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        return MakeValue(11);
      });
    });
  }
  go.store(true);
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(computes.load(), 1);
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_NE(seen[t], nullptr) << t;
    EXPECT_EQ(seen[t].get(), seen[0].get());
  }
  ResultCacheStats s = cache.Stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits + s.singleflight_waits, kThreads - 1u);
}

TEST(ResultCacheUnit, ConcurrentMixedTrafficStaysConsistent) {
  // Hot/cold mix across shards with eviction pressure — the TSan target
  // for the shard locking itself. Every returned value must carry the
  // occurrence count its key encodes.
  ResultCache cache(16 << 10, /*num_shards=*/4);
  constexpr int kThreads = 6;
  constexpr int kRounds = 300;
  std::atomic<int> bad{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937 rng(1000 + t);
      std::uniform_int_distribution<int> key(0, 31);
      for (int r = 0; r < kRounds; ++r) {
        const int k = key(rng);
        auto v = cache.GetOrCompute(
            "key-" + std::to_string(k),
            [&] { return MakeValue(static_cast<uint64_t>(k), 64); });
        if (v == nullptr ||
            v->results[0].num_occurrences != static_cast<uint64_t>(k)) {
          ++bad;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(bad.load(), 0);
  ResultCacheStats s = cache.Stats();
  EXPECT_EQ(s.hits + s.misses + s.singleflight_waits,
            static_cast<uint64_t>(kThreads) * kRounds);
}

// ------------------------------------------- server: generation scoping

std::string UniqueSocketPath() {
  static std::atomic<int> counter{0};
  return (std::filesystem::temp_directory_path() /
          ("rigpm_cache_test_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter++) + ".sock"))
      .string();
}

/// Snapshot + delta-log server, as in test_server's RefreshTest, but aimed
/// at the cache: warm it up, change the graph underneath, and prove the
/// old generation's answers are gone.
class CacheRefreshTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_graph_ = PaperExample::MakeGraph();
    snap_path_ = UniqueSocketPath() + ".snap";
    delta_path_ = UniqueSocketPath() + ".delta";
    std::string error;
    {
      GmEngine cold(base_graph_);
      ASSERT_TRUE(SaveEngineSnapshot(cold, snap_path_, &error)) << error;
    }
    auto info = InspectSnapshot(snap_path_, &error);
    ASSERT_TRUE(info.has_value()) << error;
    base_checksum_ = info->stored_checksum;
    warm_ = LoadEngineSnapshot(snap_path_, {}, &error);
    ASSERT_TRUE(warm_.has_value()) << error;

    config_.unix_path = UniqueSocketPath();
    config_.num_workers = 2;
    config_.delta_path = delta_path_;
    config_.base_checksum = base_checksum_;
    server_ = std::make_unique<QueryServer>(*warm_->engine, config_);
    ASSERT_TRUE(server_->Start(&error)) << error;
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
    std::remove(snap_path_.c_str());
    std::remove(delta_path_.c_str());
  }

  void AppendBatch(const std::vector<std::pair<NodeId, NodeId>>& edges) {
    std::string error;
    auto writer = DeltaWriter::Open(delta_path_, base_checksum_,
                                    base_graph_.NumNodes(), &error);
    ASSERT_NE(writer, nullptr) << error;
    ASSERT_TRUE(writer->Append(edges, &error)) << error;
  }

  uint64_t ServedCount(QueryClient& client, const std::string& pattern) {
    QueryRequest req;
    req.patterns = {pattern};
    std::string error;
    auto resp = client.Query(req, &error);
    EXPECT_TRUE(resp.has_value()) << error;
    if (!resp.has_value()) return ~0ull;
    EXPECT_EQ(resp->status, StatusCode::kOk) << resp->error;
    return resp->results[0].num_occurrences;
  }

  Graph base_graph_;
  std::string snap_path_, delta_path_;
  uint64_t base_checksum_ = 0;
  std::optional<WarmEngine> warm_;
  ServerConfig config_;
  std::unique_ptr<QueryServer> server_;
};

TEST_F(CacheRefreshTest, RepeatedQueriesHitAndStayByteIdentical) {
  QueryClient client;
  std::string error;
  ASSERT_TRUE(client.ConnectUnix(config_.unix_path, &error)) << error;
  QueryRequest req;
  req.patterns = {"(a:0)->(b:1), (a)->(c:2), (b)=>(c)"};
  req.max_return_tuples = 100;

  auto cold = client.Query(req, &error);
  ASSERT_TRUE(cold.has_value()) << error;
  ASSERT_EQ(cold->status, StatusCode::kOk) << cold->error;
  EXPECT_EQ(cold->results[0].num_occurrences, 4u);

  for (int round = 0; round < 5; ++round) {
    auto warm = client.Query(req, &error);
    ASSERT_TRUE(warm.has_value()) << error;
    ASSERT_EQ(warm->status, StatusCode::kOk);
    EXPECT_EQ(warm->results[0].num_occurrences,
              cold->results[0].num_occurrences);
    EXPECT_EQ(warm->tuples, cold->tuples);  // byte-identical echo
    EXPECT_EQ(warm->tuple_arity, cold->tuple_arity);
  }
  ServerStats stats = server_->Snapshot();
  EXPECT_EQ(stats.cache.misses, 1u);
  EXPECT_GE(stats.cache.hits, 5u);
  EXPECT_EQ(stats.queries_served, 6u);  // hits still count as served
}

TEST_F(CacheRefreshTest, PermutedRequestTextSharesOneCacheEntry) {
  QueryClient client;
  std::string error;
  ASSERT_TRUE(client.ConnectUnix(config_.unix_path, &error)) << error;
  QueryRequest a;
  a.patterns = {"(a:0)->(b:1), (a)->(c:2), (b)=>(c)"};
  QueryRequest b;
  b.patterns = {"(b:1)=>(c:2), (x:0)->(c), (x)->(b)"};
  auto r1 = client.Query(a, &error);
  auto r2 = client.Query(b, &error);
  ASSERT_TRUE(r1.has_value() && r2.has_value());
  ASSERT_EQ(r1->status, StatusCode::kOk);
  ASSERT_EQ(r2->status, StatusCode::kOk);
  EXPECT_EQ(r2->results[0].num_occurrences, r1->results[0].num_occurrences);
  ServerStats stats = server_->Snapshot();
  EXPECT_EQ(stats.cache.misses, 1u);
  EXPECT_EQ(stats.cache.hits, 1u);
}

TEST_F(CacheRefreshTest, RefreshInvalidatesWholesaleAndMatchesColdRebuild) {
  const std::string pattern = "(a:0)->(b:1)";
  QueryClient client;
  std::string error;
  ASSERT_TRUE(client.ConnectUnix(config_.unix_path, &error)) << error;

  // Warm the cache on the base graph.
  const uint64_t before = ServedCount(client, pattern);
  EXPECT_EQ(ServedCount(client, pattern), before);
  EXPECT_GE(server_->Snapshot().cache.hits, 1u);

  // Change the answer underneath and refresh: the new generation's cache
  // starts empty, so the served count must equal a cold rebuild — a stale
  // hit would return `before`.
  const std::vector<std::pair<NodeId, NodeId>> batch = {{0, 3}, {0, 7}};
  AppendBatch(batch);
  auto r = client.Refresh(&error);
  ASSERT_TRUE(r.has_value()) << error;
  ASSERT_EQ(r->status, StatusCode::kOk) << r->error;

  Graph merged = ApplyEdgesToGraph(base_graph_, batch);
  GmEngine cold(merged);
  auto q = ParsePattern(pattern);
  ASSERT_TRUE(q.has_value());
  const uint64_t expected = cold.EvaluateCollect(*q).size();
  ASSERT_NE(expected, before) << "batch must change the answer";
  EXPECT_EQ(ServedCount(client, pattern), expected);
  EXPECT_EQ(ServedCount(client, pattern), expected);

  // The generation swap reset the per-tenant counters: the post-refresh
  // pair above is one fresh miss plus one fresh hit.
  ServerStats stats = server_->Snapshot();
  EXPECT_EQ(stats.cache.misses, 1u);
  EXPECT_EQ(stats.cache.hits, 1u);
}

TEST_F(CacheRefreshTest, HammeredCacheSurvivesConcurrentRefreshes) {
  // Clients replay a small pattern set (maximum hit pressure) while the
  // main thread swaps generations twice. Every round trip must succeed and
  // every count must belong to some legal generation — the TSan target for
  // cache-attached engine swaps.
  const std::vector<std::string> patterns = {
      "(a:0)->(b:1)", "(a:0)->(b:1), (a)->(c:2), (b)=>(c)"};
  auto counts_for =
      [&](const std::vector<std::pair<NodeId, NodeId>>& extra) {
        Graph merged = ApplyEdgesToGraph(base_graph_, extra);
        GmEngine cold(merged);
        std::vector<uint64_t> counts;
        for (const std::string& p : patterns) {
          auto q = ParsePattern(p);
          counts.push_back(cold.EvaluateCollect(*q).size());
        }
        return counts;
      };
  const std::vector<std::pair<NodeId, NodeId>> batch1 = {{0, 3}};
  std::vector<std::pair<NodeId, NodeId>> both = batch1;
  both.emplace_back(0, 4);
  const std::vector<std::vector<uint64_t>> legal = {
      counts_for({}), counts_for(batch1), counts_for(both)};

  constexpr int kClients = 4;
  constexpr int kRounds = 40;
  std::atomic<int> failures{0};
  std::atomic<int> bad_counts{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      QueryClient client;
      std::string error;
      if (!client.ConnectUnix(config_.unix_path, &error)) {
        ++failures;
        return;
      }
      while (!go.load()) std::this_thread::yield();
      for (int r = 0; r < kRounds; ++r) {
        const size_t pick = static_cast<size_t>(c + r) % patterns.size();
        QueryRequest req;
        req.patterns = {patterns[pick]};
        auto resp = client.Query(req, &error);
        if (!resp.has_value() || resp->status != StatusCode::kOk) {
          ++failures;
          return;
        }
        const uint64_t n = resp->results[0].num_occurrences;
        bool ok = false;
        for (const std::vector<uint64_t>& gen : legal) {
          if (n == gen[pick]) ok = true;
        }
        if (!ok) ++bad_counts;
      }
    });
  }

  go.store(true);
  QueryClient refresher;
  std::string error;
  ASSERT_TRUE(refresher.ConnectUnix(config_.unix_path, &error)) << error;
  AppendBatch(batch1);
  auto r1 = refresher.Refresh(&error);
  ASSERT_TRUE(r1.has_value()) << error;
  EXPECT_EQ(r1->status, StatusCode::kOk) << r1->error;
  AppendBatch({{0, 4}});
  auto r2 = refresher.Refresh(&error);
  ASSERT_TRUE(r2.has_value()) << error;
  EXPECT_EQ(r2->status, StatusCode::kOk) << r2->error;

  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(bad_counts.load(), 0);
  EXPECT_EQ(server_->Snapshot().errors, 0u);
}

TEST(CacheDisabled, ZeroBudgetServesWithoutCaching) {
  Graph graph = PaperExample::MakeGraph();
  GmEngine engine(graph);
  ServerConfig config;
  config.unix_path = UniqueSocketPath();
  config.num_workers = 2;
  config.cache_bytes = 0;
  QueryServer server(engine, config);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  QueryClient client;
  ASSERT_TRUE(client.ConnectUnix(config.unix_path, &error)) << error;
  QueryRequest req;
  req.patterns = {"(a:0)->(b:1), (a)->(c:2), (b)=>(c)"};
  for (int round = 0; round < 3; ++round) {
    auto resp = client.Query(req, &error);
    ASSERT_TRUE(resp.has_value()) << error;
    ASSERT_EQ(resp->status, StatusCode::kOk);
    EXPECT_EQ(resp->results[0].num_occurrences, 4u);
  }
  ServerStats stats = server.Snapshot();
  EXPECT_EQ(stats.cache.hits, 0u);
  EXPECT_EQ(stats.cache.misses, 0u);
  EXPECT_EQ(stats.cache.entries, 0u);
  server.Stop();
}

TEST_F(CacheRefreshTest, StatsResponseCarriesCacheAndFlushCounters) {
  QueryClient client;
  std::string error;
  ASSERT_TRUE(client.ConnectUnix(config_.unix_path, &error)) << error;
  QueryRequest req;
  req.patterns = {"(a:0)->(b:1)"};
  ASSERT_TRUE(client.Query(req, &error).has_value()) << error;
  ASSERT_TRUE(client.Query(req, &error).has_value()) << error;
  auto stats = client.Stats(&error);
  ASSERT_TRUE(stats.has_value()) << error;
  EXPECT_EQ(stats->cache_misses, 1u);
  EXPECT_GE(stats->cache_hits, 1u);
  EXPECT_GE(stats->cache_entries, 1u);
  EXPECT_GT(stats->cache_bytes_used, 0u);
  EXPECT_GT(stats->flushes, 0u);
  EXPECT_GE(stats->frames_flushed, stats->flushes);
  ASSERT_EQ(stats->tenant_caches.size(), 1u);
  EXPECT_EQ(stats->tenant_caches[0].misses, 1u);
}

}  // namespace
}  // namespace rigpm
