// End-to-end integration tests: dataset generators + workloads + all engines
// on realistic (small-scale) inputs, exactly the path the bench binaries use.

#include <gtest/gtest.h>

#include "baseline/jm_engine.h"
#include "baseline/tm_engine.h"
#include "bench_util/datasets.h"
#include "bench_util/harness.h"
#include "bench_util/table_printer.h"
#include "bench_util/workloads.h"
#include "engine/gm_engine.h"

namespace rigpm {
namespace {

TEST(Datasets, RegistryCoversTable2) {
  const auto& registry = DatasetRegistry();
  ASSERT_EQ(registry.size(), 9u);
  EXPECT_EQ(DatasetByName("yt").num_labels, 71u);
  EXPECT_EQ(DatasetByName("hp").num_labels, 307u);
  EXPECT_EQ(DatasetByName("am").num_labels, 3u);
  EXPECT_EQ(DatasetByName("bs").base_nodes, 685'000u);
}

TEST(Datasets, GenerationRespectsScale) {
  const DatasetSpec& yt = DatasetByName("yt");
  Graph g = MakeDataset(yt, /*scale=*/0.5, /*seed=*/1);
  EXPECT_NEAR(static_cast<double>(g.NumNodes()), yt.base_nodes * 0.5, 10.0);
  EXPECT_EQ(g.NumLabels(), yt.num_labels);
  // Deterministic.
  Graph g2 = MakeDataset(yt, 0.5, 1);
  EXPECT_EQ(g2.NumEdges(), g.NumEdges());
}

TEST(Datasets, LabelAndNodeVariants) {
  const DatasetSpec& em = DatasetByName("em");
  Graph five = MakeDatasetWithLabels(em, 0.01, 5);
  EXPECT_EQ(five.NumLabels(), 5u);
  Graph sized = MakeDatasetWithNodes(em, 3000);
  EXPECT_EQ(sized.NumNodes(), 3000u);
}

TEST(Workloads, TemplateWorkloadInstantiates) {
  Graph g = MakeDataset(DatasetByName("yt"), 0.2, 1);
  auto queries = TemplateWorkload(g, RepresentativeTemplateNames(),
                                  QueryVariant::kHybrid);
  ASSERT_EQ(queries.size(), 12u);
  for (const auto& nq : queries) {
    EXPECT_TRUE(nq.query.IsConnected()) << nq.name;
    for (QueryNodeId v = 0; v < nq.query.NumNodes(); ++v) {
      EXPECT_LT(nq.query.Label(v), g.NumLabels());
    }
  }
}

TEST(Workloads, ExtractedWorkloadSizes) {
  Graph g = MakeDataset(DatasetByName("hu"), 0.1, 2);
  auto queries =
      ExtractedWorkload(g, {4, 6, 8}, QueryVariant::kChildOnly, 2, 3);
  EXPECT_GE(queries.size(), 3u);  // extraction can occasionally fail
  for (const auto& nq : queries) {
    EXPECT_GE(nq.query.NumNodes(), 4u);
    EXPECT_TRUE(nq.query.IsConnected()) << nq.name;
  }
}

TEST(Harness, EnvDefaults) {
  EXPECT_GT(MatchLimitFromEnv(), 0u);
  EXPECT_GT(TimeoutMsFromEnv(), 0.0);
  EXPECT_FALSE(FormatSeconds(1234.5).empty());
  double ms = TimeMs([] {});
  EXPECT_GE(ms, 0.0);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"Query", "GM", "JM"});
  t.AddRow({"HQ0", "0.1", "12.0"});
  t.AddRow({"HQ17", "0.02"});  // short row padded
  std::ostringstream os;
  t.Print(os);
  std::string text = os.str();
  EXPECT_NE(text.find("Query"), std::string::npos);
  EXPECT_NE(text.find("HQ17"), std::string::npos);
  EXPECT_NE(text.find("---"), std::string::npos);
}

// The main integration check: on a miniature "yeast", all three approaches
// agree on counts for hybrid template workloads, with GM never slower
// by an unreasonable factor on the matching phase (sanity, not performance).
TEST(Integration, EnginesAgreeOnDatasetWorkload) {
  Graph g = MakeDataset(DatasetByName("yt"), 0.05, 4);
  GmEngine engine(g);
  auto reach = BuildReachabilityIndex(g, ReachKind::kBfl);
  MatchContext ctx(g, *reach);

  const uint64_t kLimit = 20'000;
  for (QueryVariant variant :
       {QueryVariant::kChildOnly, QueryVariant::kHybrid,
        QueryVariant::kDescendantOnly}) {
    auto queries =
        TemplateWorkload(g, {"HQ0", "HQ6", "HQ8"}, variant, /*seed=*/9);
    for (const auto& nq : queries) {
      GmOptions gopts;
      gopts.limit = kLimit;
      GmResult gm = engine.Evaluate(nq.query, gopts);

      JmOptions jopts;
      jopts.limit = kLimit;
      JmResult jm = JmEvaluate(ctx, nq.query, jopts);

      TmOptions topts;
      topts.limit = kLimit;
      TmResult tm = TmEvaluate(ctx, nq.query, topts);

      if (!gm.hit_limit && jm.status == EvalStatus::kOk &&
          tm.status == EvalStatus::kOk) {
        EXPECT_EQ(gm.num_occurrences, jm.num_occurrences)
            << nq.name << " variant " << QueryVariantName(variant);
        EXPECT_EQ(gm.num_occurrences, tm.num_occurrences)
            << nq.name << " variant " << QueryVariantName(variant);
      }
    }
  }
}

TEST(Integration, EmptyAnswerAcrossEngines) {
  // A graph where label 1 never sits below label 0.
  Graph g = Graph::FromEdges({1, 0, 1, 0}, {{2, 1}, {0, 3}});
  GmEngine engine(g);
  auto reach = BuildReachabilityIndex(g, ReachKind::kBfl);
  MatchContext ctx(g, *reach);
  PatternQuery q = PatternQuery::FromParts(
      {0, 1}, {{0, 1, EdgeKind::kDescendant}});
  // 0 -> 3 is label0 -> label0; 2 -> 1 is label1 -> label0: so label0 never
  // reaches a label-1 node.
  EXPECT_EQ(engine.Evaluate(q).num_occurrences, 0u);
  EXPECT_EQ(JmEvaluate(ctx, q).num_occurrences, 0u);
  EXPECT_EQ(TmEvaluate(ctx, q).num_occurrences, 0u);
}

}  // namespace
}  // namespace rigpm
