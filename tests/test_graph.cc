#include "graph/graph.h"

#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "graph/graph_io.h"

namespace rigpm {
namespace {

Graph Triangle() {
  // 0(a) -> 1(b) -> 2(c), 0 -> 2
  return Graph::FromEdges({0, 1, 2}, {{0, 1}, {1, 2}, {0, 2}});
}

TEST(Graph, BasicAccessors) {
  Graph g = Triangle();
  EXPECT_EQ(g.NumNodes(), 3u);
  EXPECT_EQ(g.NumEdges(), 3u);
  EXPECT_EQ(g.NumLabels(), 3u);
  EXPECT_EQ(g.Label(1), 1u);
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.InDegree(2), 2u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(1, 0));
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 1.0);
}

TEST(Graph, NeighborsAreSorted) {
  Graph g = Graph::FromEdges({0, 0, 0, 0}, {{0, 3}, {0, 1}, {0, 2}, {3, 0}});
  auto out = g.OutNeighbors(0);
  EXPECT_EQ(std::vector<NodeId>(out.begin(), out.end()),
            (std::vector<NodeId>{1, 2, 3}));
  auto in = g.InNeighbors(0);
  EXPECT_EQ(std::vector<NodeId>(in.begin(), in.end()),
            (std::vector<NodeId>{3}));
}

TEST(Graph, DuplicateEdgesRemoved) {
  Graph g = Graph::FromEdges({0, 0}, {{0, 1}, {0, 1}, {0, 1}});
  EXPECT_EQ(g.NumEdges(), 1u);
}

TEST(Graph, SelfLoopsKept) {
  Graph g = Graph::FromEdges({0}, {{0, 0}});
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_TRUE(g.HasEdge(0, 0));
}

TEST(Graph, InvertedLists) {
  Graph g = Graph::FromEdges({1, 0, 1, 0}, {{0, 1}});
  auto ones = g.LabelNodes(1);
  EXPECT_EQ(std::vector<NodeId>(ones.begin(), ones.end()),
            (std::vector<NodeId>{0, 2}));
  EXPECT_EQ(g.LabelCount(0), 2u);
  EXPECT_EQ(g.MaxLabelListSize(), 2u);
  EXPECT_TRUE(g.LabelBitmap(1).Contains(2));
  EXPECT_FALSE(g.LabelBitmap(1).Contains(1));
}

TEST(Graph, BitmapAdjacencyMatchesCsr) {
  Graph g = GenerateErdosRenyi({.num_nodes = 200, .num_edges = 1000,
                                .num_labels = 5, .seed = 3});
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    auto neigh = g.OutNeighbors(v);
    EXPECT_EQ(g.OutBitmap(v).ToVector(),
              std::vector<NodeId>(neigh.begin(), neigh.end()));
    auto in = g.InNeighbors(v);
    EXPECT_EQ(g.InBitmap(v).ToVector(),
              std::vector<NodeId>(in.begin(), in.end()));
  }
}

TEST(GraphBuilder, BuildsIncrementally) {
  GraphBuilder b;
  NodeId x = b.AddNode(2);
  NodeId y = b.AddNode(0);
  b.AddEdge(x, y);
  EXPECT_EQ(b.NumNodes(), 2u);
  EXPECT_EQ(b.NumEdges(), 1u);
  Graph g = std::move(b).Build();
  EXPECT_EQ(g.Label(x), 2u);
  EXPECT_TRUE(g.HasEdge(x, y));
  EXPECT_EQ(g.NumLabels(), 3u);  // labels are dense up to the max used
}

TEST(GraphIo, RoundTrip) {
  Graph g = GeneratePowerLaw({.num_nodes = 100, .num_edges = 400,
                              .num_labels = 4, .seed = 17});
  std::stringstream ss;
  WriteGraph(g, ss);
  std::string error;
  auto parsed = ReadGraph(ss, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->NumNodes(), g.NumNodes());
  EXPECT_EQ(parsed->NumEdges(), g.NumEdges());
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    EXPECT_EQ(parsed->Label(v), g.Label(v));
    auto a = g.OutNeighbors(v);
    auto b = parsed->OutNeighbors(v);
    EXPECT_EQ(std::vector<NodeId>(a.begin(), a.end()),
              std::vector<NodeId>(b.begin(), b.end()));
  }
}

TEST(GraphIo, RejectsMalformedInput) {
  std::string error;
  {
    std::istringstream in("v 0 0\ne 0 5\n");
    EXPECT_FALSE(ReadGraph(in, &error).has_value());
    EXPECT_NE(error.find("undeclared node"), std::string::npos);
  }
  {
    std::istringstream in("v 1 0\n");  // non-dense id
    EXPECT_FALSE(ReadGraph(in, &error).has_value());
  }
  {
    std::istringstream in("x nonsense\n");
    EXPECT_FALSE(ReadGraph(in, &error).has_value());
  }
}

TEST(GraphIo, CommentsAndHeaderAccepted) {
  std::istringstream in("# a comment\nt 2 1\nv 0 0\nv 1 1\ne 0 1\n");
  auto g = ReadGraph(in);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->NumNodes(), 2u);
  EXPECT_TRUE(g->HasEdge(0, 1));
}

// --- Generators.

TEST(Generators, ErdosRenyiHitsTargets) {
  GeneratorOptions opts{.num_nodes = 500, .num_edges = 2500, .num_labels = 7,
                        .seed = 5};
  Graph g = GenerateErdosRenyi(opts);
  EXPECT_EQ(g.NumNodes(), 500u);
  EXPECT_EQ(g.NumEdges(), 2500u);
  EXPECT_EQ(g.NumLabels(), 7u);
  // Deterministic per seed.
  Graph g2 = GenerateErdosRenyi(opts);
  EXPECT_EQ(g2.NumEdges(), g.NumEdges());
  EXPECT_EQ(g2.Label(123), g.Label(123));
}

TEST(Generators, PowerLawIsSkewed) {
  Graph g = GeneratePowerLaw({.num_nodes = 2000, .num_edges = 10000,
                              .num_labels = 5, .seed = 9});
  uint32_t max_in = 0;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    max_in = std::max(max_in, g.InDegree(v));
  }
  // Preferential attachment: the hub in-degree far exceeds both the average
  // degree (5) and the uniform-random hub (~16 at these parameters).
  EXPECT_GT(max_in, 30u);
}

TEST(Generators, RandomDagIsAcyclic) {
  Graph g = GenerateRandomDag({.num_nodes = 300, .num_edges = 2000,
                               .num_labels = 6, .seed = 21});
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    for (NodeId w : g.OutNeighbors(v)) {
      EXPECT_LT(v, w);  // rank-ordered edges cannot close a cycle
    }
  }
}

TEST(Generators, LayeredDagConnectsConsecutiveLayers) {
  Graph g = GenerateLayeredDag({.num_nodes = 400, .num_edges = 1500,
                                .num_labels = 4, .seed = 2},
                               /*layers=*/8, /*skip_prob=*/0.2);
  EXPECT_GT(g.NumEdges(), 0u);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    for (NodeId w : g.OutNeighbors(v)) EXPECT_LT(v, w);
  }
}

TEST(Generators, EveryLabelOccurs) {
  Graph g = GenerateErdosRenyi({.num_nodes = 100, .num_edges = 300,
                                .num_labels = 50, .seed = 31,
                                .label_zipf = 1.2});
  for (LabelId a = 0; a < g.NumLabels(); ++a) {
    EXPECT_GE(g.LabelCount(a), 1u) << "label " << a;
  }
}

TEST(Generators, ZipfSkewsLabelFrequencies) {
  Graph g = GenerateErdosRenyi({.num_nodes = 5000, .num_edges = 10000,
                                .num_labels = 10, .seed = 41,
                                .label_zipf = 1.5});
  EXPECT_GT(g.LabelCount(0), g.LabelCount(9) * 2);
}

}  // namespace
}  // namespace rigpm
