// Tests for the extension features: the inline pattern parser, parallel
// MJoin, and incremental (dynamic-graph) matching.

#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "engine/gm_engine.h"
#include "engine/incremental.h"
#include "enumerate/mjoin_parallel.h"
#include "graph/generators.h"
#include "order/search_order.h"
#include "query/pattern_parser.h"
#include "query/query_generator.h"
#include "query/transitive_reduction.h"
#include "rig/rig_builder.h"
#include "test_util.h"

namespace rigpm {
namespace {

using ::rigpm::testing::BruteForceAnswer;
using ::rigpm::testing::PaperExample;

// --- Pattern parser.

TEST(PatternParser, ParsesPaperExampleQuery) {
  auto q = ParsePattern("(a:0)->(b:1), (a)->(c:2), (b)=>(c)");
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(*q, PaperExample::MakeQuery());
}

TEST(PatternParser, ChainClause) {
  auto q = ParsePattern("(x:5)->(y:6)=>(z:7)");
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->NumNodes(), 3u);
  EXPECT_EQ(q->NumEdges(), 2u);
  EXPECT_EQ(q->Edge(0).kind, EdgeKind::kChild);
  EXPECT_EQ(q->Edge(1).kind, EdgeKind::kDescendant);
}

TEST(PatternParser, ReversedArrows) {
  auto q = ParsePattern("(a:0)<-(b:1), (a)<=(c:2)");
  ASSERT_TRUE(q.has_value());
  // b -> a (child), c => a (descendant).
  EXPECT_TRUE(q->HasEdgeBetween(1, 0));
  EXPECT_TRUE(q->HasEdgeBetween(2, 0));
  EXPECT_EQ(q->InDegree(0), 2u);
}

TEST(PatternParser, RejectsErrors) {
  std::string error;
  EXPECT_FALSE(ParsePattern("", &error).has_value());
  EXPECT_FALSE(ParsePattern("(a)", &error).has_value());  // no label
  EXPECT_NE(error.find("label"), std::string::npos);
  EXPECT_FALSE(ParsePattern("(a:0)->(a:1)", &error).has_value());  // conflict
  EXPECT_FALSE(ParsePattern("(a:0)~>(b:1)", &error).has_value());  // bad edge
  EXPECT_FALSE(ParsePattern("(a:0)->", &error).has_value());
  EXPECT_FALSE(ParsePattern("(:0)->(b:1)", &error).has_value());  // no name
}

TEST(PatternParser, RoundTripThroughToString) {
  PatternQuery q = PaperExample::MakeQuery();
  std::string text = PatternToString(q);
  auto parsed = ParsePattern(text);
  ASSERT_TRUE(parsed.has_value()) << text;
  EXPECT_EQ(*parsed, q);
}

TEST(PatternParser, WhitespaceTolerant) {
  auto q = ParsePattern("  ( a:0 ) -> ( b:1 ) ,\n (b) => (c:2)");
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->NumNodes(), 3u);
  EXPECT_EQ(q->NumEdges(), 2u);
}

// --- Parallel MJoin.

class ParallelMJoinTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ParallelMJoinTest, MatchesSequentialOnRandomInputs) {
  const uint32_t threads = GetParam();
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    Graph g = GeneratePowerLaw({.num_nodes = 150, .num_edges = 700,
                                .num_labels = 4, .seed = seed});
    auto reach = BuildReachabilityIndex(g, ReachKind::kBfl);
    MatchContext ctx(g, *reach);
    PatternQuery q = GenerateRandomQuery({.num_nodes = 5, .num_edges = 6,
                                          .num_labels = 4,
                                          .variant = QueryVariant::kHybrid,
                                          .seed = seed * 17});
    Rig rig = BuildRigFromMatchSets(ctx, q, RigBuildOptions{});
    auto order = ComputeSearchOrder(q, rig, OrderStrategy::kJO);

    auto sequential = MJoinCollect(q, rig, order);
    ParallelMJoinOptions popts;
    popts.num_threads = threads;
    auto parallel = MJoinParallelCollect(q, rig, order, popts);
    EXPECT_EQ(std::set<Occurrence>(parallel.begin(), parallel.end()),
              std::set<Occurrence>(sequential.begin(), sequential.end()))
        << "seed " << seed << " threads " << threads;
    EXPECT_EQ(parallel.size(), sequential.size());
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelMJoinTest,
                         ::testing::Values(1, 2, 4, 8),
                         [](const auto& info) {
                           return "t" + std::to_string(info.param);
                         });

TEST(ParallelMJoin, RespectsGlobalLimit) {
  Graph g = GeneratePowerLaw({.num_nodes = 200, .num_edges = 1200,
                              .num_labels = 2, .seed = 4});
  auto reach = BuildReachabilityIndex(g, ReachKind::kBfl);
  MatchContext ctx(g, *reach);
  PatternQuery q = GenerateRandomQuery({.num_nodes = 3, .num_edges = 2,
                                        .num_labels = 2,
                                        .variant = QueryVariant::kHybrid,
                                        .seed = 5});
  Rig rig = BuildRigFromMatchSets(ctx, q, RigBuildOptions{});
  auto order = ComputeSearchOrder(q, rig, OrderStrategy::kJO);
  uint64_t all = MJoinCount(q, rig, order);
  ASSERT_GT(all, 50u);  // meaningful test needs many matches

  ParallelMJoinOptions popts;
  popts.num_threads = 4;
  popts.limit = 50;
  MJoinStats stats;
  EXPECT_EQ(MJoinParallelCount(q, rig, order, popts, &stats), 50u);
  EXPECT_EQ(stats.occurrences, 50u);
}

TEST(ParallelMJoin, ConcurrentSinkSeesEveryTuple) {
  Graph g = PaperExample::MakeGraph();
  auto reach = BuildReachabilityIndex(g, ReachKind::kBfl);
  MatchContext ctx(g, *reach);
  PatternQuery q = PaperExample::MakeQuery();
  Rig rig = BuildRigFromMatchSets(ctx, q, RigBuildOptions{});
  auto order = ComputeSearchOrder(q, rig, OrderStrategy::kJO);
  std::atomic<uint64_t> seen{0};
  ParallelMJoinOptions popts;
  popts.num_threads = 3;
  uint64_t n = MJoinParallel(q, rig, order, [&seen](const Occurrence&) {
    seen.fetch_add(1);
    return true;
  }, popts);
  EXPECT_EQ(n, 4u);
  EXPECT_EQ(seen.load(), 4u);
}

TEST(ParallelMJoin, EmptyRigShortCircuit) {
  Graph g = Graph::FromEdges({0, 1}, {{0, 1}});
  auto reach = BuildReachabilityIndex(g, ReachKind::kBfl);
  MatchContext ctx(g, *reach);
  PatternQuery q =
      PatternQuery::FromParts({0, 5}, {{0, 1, EdgeKind::kChild}});
  Rig rig = BuildRigFromMatchSets(ctx, q, RigBuildOptions{});
  std::vector<QueryNodeId> order = {0, 1};
  EXPECT_EQ(MJoinParallelCount(q, rig, order), 0u);
}

// --- Incremental matching.

TEST(Incremental, ChildEdgeInsertionYieldsExactDelta) {
  // a0 -> b0 exists; adding a1 -> b0 creates exactly one new match of
  // (A)->(B).
  Graph g = Graph::FromEdges({0, 0, 1}, {{0, 2}});
  auto q = ParsePattern("(a:0)->(b:1)");
  ASSERT_TRUE(q.has_value());
  IncrementalMatcher matcher(std::move(g), *q);
  EXPECT_EQ(matcher.CurrentAnswer().size(), 1u);
  auto delta = matcher.ApplyAndDiff({{1, 2}});
  ASSERT_TRUE(delta.has_value());
  ASSERT_EQ(delta->size(), 1u);
  EXPECT_EQ((*delta)[0], (Occurrence{1, 2}));
  EXPECT_EQ(matcher.CurrentAnswer().size(), 2u);
}

TEST(Incremental, TransitiveReachabilityDelta) {
  // Chain a -> x exists; adding x -> b creates a NEW reachability match
  // (a => b) even though neither endpoint of the new edge is 'a'.
  Graph g = Graph::FromEdges({0, 2, 1}, {{0, 1}});
  auto q = ParsePattern("(a:0)=>(b:1)");
  ASSERT_TRUE(q.has_value());
  IncrementalMatcher matcher(std::move(g), *q);
  EXPECT_TRUE(matcher.CurrentAnswer().empty());
  auto delta = matcher.ApplyAndDiff({{1, 2}});
  ASSERT_TRUE(delta.has_value());
  ASSERT_EQ(delta->size(), 1u);
  EXPECT_EQ((*delta)[0], (Occurrence{0, 2}));
}

TEST(Incremental, DeltaNeverRepeatsOldMatches) {
  Graph g = GeneratePowerLaw({.num_nodes = 80, .num_edges = 300,
                              .num_labels = 3, .seed = 6});
  PatternQuery q = GenerateRandomQuery({.num_nodes = 4, .num_edges = 4,
                                        .num_labels = 3,
                                        .variant = QueryVariant::kHybrid,
                                        .seed = 7});
  // Differential check: Answer(G') \ Answer(G) computed by brute force.
  std::vector<std::pair<NodeId, NodeId>> batch = {{0, 40}, {11, 2}, {5, 33}};
  std::vector<LabelId> labels(g.NumNodes());
  for (NodeId v = 0; v < g.NumNodes(); ++v) labels[v] = g.Label(v);
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    for (NodeId w : g.OutNeighbors(v)) edges.emplace_back(v, w);
  }
  auto before = BruteForceAnswer(g, q);
  std::vector<std::pair<NodeId, NodeId>> all_edges = edges;
  for (auto e : batch) all_edges.push_back(e);
  Graph g_after = Graph::FromEdges(labels, all_edges);
  auto after = BruteForceAnswer(g_after, q);
  std::set<std::vector<NodeId>> expected_delta;
  for (const auto& t : after) {
    if (before.count(t) == 0) expected_delta.insert(t);
  }

  IncrementalMatcher matcher(Graph::FromEdges(labels, edges), q);
  auto delta = matcher.ApplyAndDiff(batch);
  ASSERT_TRUE(delta.has_value());
  EXPECT_EQ(std::set<std::vector<NodeId>>(delta->begin(), delta->end()),
            expected_delta);
}

TEST(Incremental, RepeatedBatchLeavesGraphAndDeltaStable) {
  // Applying the same batch twice must be idempotent: the second delta is
  // empty AND the rebuilt graph does not grow parallel CSR edges (the
  // adjacency bitmaps dedupe silently, so NumEdges() is where the pre-fix
  // unbounded growth showed).
  Graph g = Graph::FromEdges({0, 0, 1}, {{0, 2}});
  auto q = ParsePattern("(a:0)->(b:1)");
  ASSERT_TRUE(q.has_value());
  IncrementalMatcher matcher(std::move(g), *q);

  auto first = matcher.ApplyAndDiff({{1, 2}});
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->size(), 1u);
  const uint64_t edges_after_first = matcher.current_graph().NumEdges();
  EXPECT_EQ(edges_after_first, 2u);

  auto second = matcher.ApplyAndDiff({{1, 2}});
  ASSERT_TRUE(second.has_value());
  EXPECT_TRUE(second->empty());
  EXPECT_EQ(matcher.current_graph().NumEdges(), edges_after_first);
  EXPECT_EQ(matcher.CurrentAnswer().size(), 2u);
}

TEST(Incremental, DuplicateEdgesWithinOneBatchAreDeduped) {
  // A batch that repeats an edge (and re-adds an existing one) contributes
  // each distinct new edge exactly once.
  Graph g = Graph::FromEdges({0, 0, 1}, {{0, 2}});
  auto q = ParsePattern("(a:0)->(b:1)");
  ASSERT_TRUE(q.has_value());
  IncrementalMatcher matcher(std::move(g), *q);

  auto delta = matcher.ApplyAndDiff({{1, 2}, {1, 2}, {0, 2}, {1, 2}});
  ASSERT_TRUE(delta.has_value());
  EXPECT_EQ(delta->size(), 1u);
  EXPECT_EQ(matcher.current_graph().NumEdges(), 2u);
  EXPECT_EQ(matcher.CurrentAnswer().size(), 2u);
}

TEST(Incremental, OverlappingBatchesOnlyGrowByNewEdges) {
  Graph g = Graph::FromEdges({0, 0, 0, 1}, {{0, 3}});
  auto q = ParsePattern("(a:0)->(b:1)");
  ASSERT_TRUE(q.has_value());
  IncrementalMatcher matcher(std::move(g), *q);
  EXPECT_EQ(matcher.ApplyAndDiff({{1, 3}})->size(), 1u);
  // Overlaps with both the original edge and the previous batch; only
  // {2, 3} is new.
  EXPECT_EQ(matcher.ApplyAndDiff({{0, 3}, {1, 3}, {2, 3}})->size(), 1u);
  EXPECT_EQ(matcher.current_graph().NumEdges(), 3u);
  EXPECT_EQ(matcher.CurrentAnswer().size(), 3u);
}

TEST(Incremental, BatchWithNonexistentEndpointIsRejectedWhole) {
  // "Both endpoints must already exist" is an enforced precondition, not a
  // comment: one out-of-range edge rejects the whole batch with a
  // descriptive error, and no state changes — a journaled delta log must
  // never contain a record that cannot replay against its base.
  Graph g = Graph::FromEdges({0, 0, 1}, {{0, 2}});
  auto q = ParsePattern("(a:0)->(b:1)");
  ASSERT_TRUE(q.has_value());
  IncrementalMatcher matcher(std::move(g), *q);
  std::string error;
  auto delta = matcher.ApplyAndDiff({{1, 2}, {1, 99}}, &error);
  EXPECT_FALSE(delta.has_value());
  EXPECT_NE(error.find("99"), std::string::npos) << error;
  EXPECT_EQ(matcher.current_graph().NumEdges(), 1u);
  EXPECT_EQ(matcher.CurrentAnswer().size(), 1u);
  // The same batch without the offending edge applies normally afterwards.
  auto retry = matcher.ApplyAndDiff({{1, 2}});
  ASSERT_TRUE(retry.has_value());
  EXPECT_EQ(retry->size(), 1u);
}

TEST(Incremental, SequenceOfBatches) {
  // Build a path one edge at a time; the descendant-pair count after k
  // edges is k(k+1)/2 over path nodes; each batch's delta adds exactly the
  // pairs ending at the new edge's head.
  const uint32_t n = 6;
  std::vector<LabelId> labels(n, 0);
  Graph g = Graph::FromEdges(labels, {});
  auto q = ParsePattern("(a:0)=>(b:0)");
  ASSERT_TRUE(q.has_value());
  IncrementalMatcher matcher(std::move(g), *q);
  uint64_t total = 0;
  for (NodeId v = 0; v + 1 < n; ++v) {
    auto delta = matcher.ApplyAndDiff({{v, v + 1}});
    ASSERT_TRUE(delta.has_value());
    EXPECT_EQ(delta->size(), v + 1u);  // every earlier node now reaches v+1
    total += delta->size();
  }
  EXPECT_EQ(total, matcher.CurrentAnswer().size());
  EXPECT_EQ(total, static_cast<uint64_t>(n) * (n - 1) / 2);
}

}  // namespace
}  // namespace rigpm
