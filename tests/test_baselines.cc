#include <gtest/gtest.h>

#include <set>

#include "baseline/catalog.h"
#include "baseline/iso_engine.h"
#include "baseline/jm_engine.h"
#include "baseline/tm_engine.h"
#include "baseline/wcoj_engine.h"
#include "engine/gm_engine.h"
#include "graph/generators.h"
#include "query/query_generator.h"
#include "test_util.h"

namespace rigpm {
namespace {

using ::rigpm::testing::BruteForceAnswer;
using ::rigpm::testing::PaperExample;

std::set<std::vector<NodeId>> Collect(const std::vector<Occurrence>& v) {
  return {v.begin(), v.end()};
}

class BaselineFixture : public ::testing::Test {
 protected:
  BaselineFixture()
      : graph_(PaperExample::MakeGraph()),
        query_(PaperExample::MakeQuery()),
        reach_(BuildReachabilityIndex(graph_, ReachKind::kBfl)),
        ctx_(graph_, *reach_) {}

  Graph graph_;
  PatternQuery query_;
  std::unique_ptr<ReachabilityIndex> reach_;
  MatchContext ctx_;
};

TEST_F(BaselineFixture, JmMatchesPaperAnswer) {
  std::vector<Occurrence> tuples;
  JmResult r = JmEvaluate(ctx_, query_, JmOptions{},
                          [&tuples](const Occurrence& t) {
                            tuples.push_back(t);
                            return true;
                          });
  EXPECT_EQ(r.status, EvalStatus::kOk);
  EXPECT_EQ(r.num_occurrences, 4u);
  EXPECT_EQ(Collect(tuples), PaperExample::ExpectedAnswer());
  EXPECT_GT(r.max_intermediate_size, 0u);
}

TEST_F(BaselineFixture, TmMatchesPaperAnswer) {
  std::vector<Occurrence> tuples;
  TmResult r = TmEvaluate(ctx_, query_, TmOptions{},
                          [&tuples](const Occurrence& t) {
                            tuples.push_back(t);
                            return true;
                          });
  EXPECT_EQ(r.status, EvalStatus::kOk);
  EXPECT_EQ(r.num_occurrences, 4u);
  EXPECT_EQ(Collect(tuples), PaperExample::ExpectedAnswer());
  // Tree solutions >= final answers (the non-tree edge filters).
  EXPECT_GE(r.tree_solutions, r.num_occurrences);
  EXPECT_GT(r.aux_graph_nodes, 0u);
}

TEST_F(BaselineFixture, JmReportsOutOfMemory) {
  JmOptions opts;
  opts.max_intermediate_tuples = 2;  // absurdly small budget
  JmResult r = JmEvaluate(ctx_, query_, opts);
  EXPECT_EQ(r.status, EvalStatus::kOutOfMemory);
}

TEST_F(BaselineFixture, JmHonorsLimit) {
  JmOptions opts;
  opts.limit = 2;
  JmResult r = JmEvaluate(ctx_, query_, opts);
  EXPECT_EQ(r.num_occurrences, 2u);
}

TEST_F(BaselineFixture, WcojUnsupportedWithoutClosure) {
  WcojEngine wcoj(graph_);
  WcojResult r = wcoj.Evaluate(query_);  // has a descendant edge
  EXPECT_EQ(r.status, EvalStatus::kUnsupported);
}

TEST_F(BaselineFixture, WcojWithClosureMatchesAnswer) {
  WcojEngine wcoj(graph_);
  double build_ms = 0.0;
  ASSERT_EQ(wcoj.MaterializeClosure(/*max_bytes=*/1 << 26, &build_ms),
            EvalStatus::kOk);
  std::vector<Occurrence> tuples;
  WcojResult r = wcoj.Evaluate(query_, WcojOptions{},
                               [&tuples](const Occurrence& t) {
                                 tuples.push_back(t);
                                 return true;
                               });
  EXPECT_EQ(r.status, EvalStatus::kOk);
  EXPECT_EQ(Collect(tuples), PaperExample::ExpectedAnswer());
}

TEST_F(BaselineFixture, WcojClosureBudgetEnforced) {
  WcojEngine wcoj(graph_);
  EXPECT_EQ(wcoj.MaterializeClosure(/*max_bytes=*/1, nullptr),
            EvalStatus::kOutOfMemory);
  EXPECT_FALSE(wcoj.HasClosure());
}

TEST(Catalog, BuildsAndRespectsBudget) {
  Graph g = GeneratePowerLaw({.num_nodes = 300, .num_edges = 1500,
                              .num_labels = 8, .seed = 3});
  CatalogResult ok = BuildCatalog(g, /*max_entries=*/1u << 24);
  EXPECT_EQ(ok.status, EvalStatus::kOk);
  EXPECT_GT(ok.entries, 0u);
  CatalogResult oom = BuildCatalog(g, /*max_entries=*/4);
  EXPECT_EQ(oom.status, EvalStatus::kOutOfMemory);
}

TEST(Catalog, CostGrowsWithLabelCount) {
  GeneratorOptions base{.num_nodes = 400, .num_edges = 2500, .num_labels = 2,
                        .seed = 5};
  Graph few = GenerateErdosRenyi(base);
  base.num_labels = 30;
  Graph many = GenerateErdosRenyi(base);
  CatalogResult a = BuildCatalog(few, 1u << 26);
  CatalogResult b = BuildCatalog(many, 1u << 26);
  EXPECT_GT(b.entries, a.entries);  // more labels -> more catalog entries
}

// --- ISO.

TEST(Iso, RejectsDescendantEdges) {
  Graph g = PaperExample::MakeGraph();
  IsoResult r = IsoEvaluate(g, PaperExample::MakeQuery());
  EXPECT_EQ(r.status, EvalStatus::kUnsupported);
}

TEST(Iso, InjectivityExcludesFoldedMatches) {
  // Data: single b with two a-parents; query: two distinct A nodes sharing
  // the child B. Homomorphisms may map both A's to the same a; isomorphism
  // may not.
  Graph g = Graph::FromEdges({0, 0, 1}, {{0, 2}, {1, 2}});
  PatternQuery q = PatternQuery::FromParts(
      {0, 0, 1},
      {{0, 2, EdgeKind::kChild}, {1, 2, EdgeKind::kChild}});
  IsoResult iso = IsoEvaluate(g, q);
  EXPECT_EQ(iso.status, EvalStatus::kOk);
  EXPECT_EQ(iso.num_embeddings, 2u);  // (a0,a1), (a1,a0)
  // Homomorphic count includes the folded assignments.
  EXPECT_EQ(BruteForceAnswer(g, q).size(), 4u);
}

TEST(Iso, AgreesWithInjectiveBruteForceOnRandomInputs) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    Graph g = GeneratePowerLaw({.num_nodes = 60, .num_edges = 240,
                                .num_labels = 3, .seed = seed});
    PatternQuery q = GenerateRandomQuery({.num_nodes = 4, .num_edges = 4,
                                          .num_labels = 3,
                                          .variant = QueryVariant::kChildOnly,
                                          .seed = seed + 100});
    IsoResult iso = IsoEvaluate(g, q);
    ASSERT_EQ(iso.status, EvalStatus::kOk);
    uint64_t expected = 0;
    for (const auto& t : BruteForceAnswer(g, q)) {
      std::set<NodeId> distinct(t.begin(), t.end());
      if (distinct.size() == t.size()) ++expected;
    }
    EXPECT_EQ(iso.num_embeddings, expected) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Cross-engine differential property: GM == JM == TM == (WCOJ with closure)
// == brute force on random hybrid queries.
// ---------------------------------------------------------------------------

struct CrossCase {
  const char* label;
  uint64_t seed;
  uint32_t q_nodes;
  uint32_t q_edges;
  QueryVariant variant;
};

class CrossEngineTest : public ::testing::TestWithParam<CrossCase> {};

TEST_P(CrossEngineTest, AllEnginesAgree) {
  const CrossCase& p = GetParam();
  Graph g = GeneratePowerLaw({.num_nodes = 60, .num_edges = 220,
                              .num_labels = 4, .seed = p.seed});
  auto reach = BuildReachabilityIndex(g, ReachKind::kBfl);
  MatchContext ctx(g, *reach);
  PatternQuery q = GenerateRandomQuery({.num_nodes = p.q_nodes,
                                        .num_edges = p.q_edges,
                                        .num_labels = 4,
                                        .variant = p.variant,
                                        .seed = p.seed * 3 + 11});

  auto expected = BruteForceAnswer(g, q);

  GmEngine gm(g);
  EXPECT_EQ(Collect(gm.EvaluateCollect(q)), expected) << "GM";

  std::vector<Occurrence> jm_tuples;
  JmResult jm = JmEvaluate(ctx, q, JmOptions{}, [&](const Occurrence& t) {
    jm_tuples.push_back(t);
    return true;
  });
  ASSERT_EQ(jm.status, EvalStatus::kOk);
  EXPECT_EQ(Collect(jm_tuples), expected) << "JM";

  std::vector<Occurrence> tm_tuples;
  TmResult tm = TmEvaluate(ctx, q, TmOptions{}, [&](const Occurrence& t) {
    tm_tuples.push_back(t);
    return true;
  });
  ASSERT_EQ(tm.status, EvalStatus::kOk);
  EXPECT_EQ(Collect(tm_tuples), expected) << "TM";

  WcojEngine wcoj(g);
  ASSERT_EQ(wcoj.MaterializeClosure(1 << 28, nullptr), EvalStatus::kOk);
  std::vector<Occurrence> wcoj_tuples;
  WcojResult wr = wcoj.Evaluate(q, WcojOptions{}, [&](const Occurrence& t) {
    wcoj_tuples.push_back(t);
    return true;
  });
  ASSERT_EQ(wr.status, EvalStatus::kOk);
  EXPECT_EQ(Collect(wcoj_tuples), expected) << "WCOJ";
}

INSTANTIATE_TEST_SUITE_P(
    Cases, CrossEngineTest,
    ::testing::Values(
        CrossCase{"hybrid_small", 1, 4, 4, QueryVariant::kHybrid},
        CrossCase{"hybrid_cyclic", 2, 5, 7, QueryVariant::kHybrid},
        CrossCase{"child_only", 3, 5, 6, QueryVariant::kChildOnly},
        CrossCase{"desc_only", 4, 4, 4, QueryVariant::kDescendantOnly},
        CrossCase{"hybrid_six", 5, 6, 8, QueryVariant::kHybrid},
        CrossCase{"child_clique", 6, 4, 6, QueryVariant::kChildOnly}),
    [](const ::testing::TestParamInfo<CrossCase>& info) {
      return info.param.label;
    });

}  // namespace
}  // namespace rigpm
