// Query daemon tests (server/server.h, server/protocol.h): wire round
// trips, serving correctness against in-process evaluation, concurrent
// clients, and the protocol error paths — malformed frames, oversize
// requests, unknown types, and clients that disconnect mid-conversation.

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/gm_engine.h"
#include "graph/generators.h"
#include "query/pattern_parser.h"
#include "query/query_templates.h"
#include "server/client.h"
#include "server/server.h"
#include "storage/delta_log.h"
#include "storage/snapshot.h"
#include "test_util.h"
#include "util/concurrency.h"

namespace rigpm {
namespace {

using rigpm::testing::PaperExample;
using namespace rigpm::server;

std::string UniqueSocketPath() {
  static std::atomic<int> counter{0};
  return (std::filesystem::temp_directory_path() /
          ("rigpm_test_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter++) + ".sock"))
      .string();
}

/// A paper-example server on a Unix socket, plus the cold engine it must
/// agree with.
class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = std::make_unique<Graph>(PaperExample::MakeGraph());
    engine_ = std::make_unique<GmEngine>(*graph_);
    config_.unix_path = UniqueSocketPath();
    config_.num_workers = 4;
    server_ = std::make_unique<QueryServer>(*engine_, config_);
    std::string error;
    ASSERT_TRUE(server_->Start(&error)) << error;
  }

  void TearDown() override { server_->Stop(); }

  QueryClient Connect() {
    QueryClient client;
    std::string error;
    EXPECT_TRUE(client.ConnectUnix(config_.unix_path, &error)) << error;
    return client;
  }

  static QueryRequest PaperRequest(uint32_t max_tuples = 100) {
    QueryRequest req;
    req.patterns = {"(a:0)->(b:1), (a)->(c:2), (b)=>(c)"};
    req.max_return_tuples = max_tuples;
    return req;
  }

  std::unique_ptr<Graph> graph_;
  std::unique_ptr<GmEngine> engine_;
  ServerConfig config_;
  std::unique_ptr<QueryServer> server_;
};

// ------------------------------------------------------------- wire layer

TEST(ServerProtocol, QueryRequestRoundTrips) {
  QueryRequest req;
  req.patterns = {"(a:0)->(b:1)", "(a:0)=>(b:2)"};
  req.template_seed = 99;
  req.limit = 12345;
  req.num_threads = 3;
  req.use_prefilter = false;
  req.max_return_tuples = 7;

  ByteSink sink;
  req.Serialize(sink);
  ByteSource src(sink.data().data(), sink.size());
  EXPECT_EQ(ReadMessageType(src), MessageType::kQueryRequest);
  QueryRequest back = QueryRequest::Deserialize(src);
  ASSERT_TRUE(src.ok()) << src.error();
  EXPECT_EQ(src.remaining(), 0u);
  EXPECT_EQ(back.patterns, req.patterns);
  EXPECT_EQ(back.limit, req.limit);
  EXPECT_EQ(back.num_threads, req.num_threads);
  EXPECT_EQ(back.use_prefilter, false);
  EXPECT_EQ(back.use_double_simulation, true);
  EXPECT_EQ(back.max_return_tuples, req.max_return_tuples);
}

TEST(ServerProtocol, QueryResponseRoundTrips) {
  QueryResponse resp;
  resp.status = StatusCode::kOk;
  QueryResultWire r;
  r.num_occurrences = 42;
  r.hit_limit = true;
  r.matching_ms = 1.5;
  r.enumerate_ms = 2.5;
  r.phase_timings = {{"Reduce", 0.1}, {"Enumerate", 2.5}};
  resp.results.push_back(r);
  resp.tuple_arity = 2;
  resp.tuples = {1, 2, 3, 4};

  ByteSink sink;
  resp.Serialize(sink);
  ByteSource src(sink.data().data(), sink.size());
  EXPECT_EQ(ReadMessageType(src), MessageType::kQueryResponse);
  QueryResponse back = QueryResponse::Deserialize(src);
  ASSERT_TRUE(src.ok()) << src.error();
  ASSERT_EQ(back.results.size(), 1u);
  EXPECT_EQ(back.results[0].num_occurrences, 42u);
  EXPECT_TRUE(back.results[0].hit_limit);
  EXPECT_DOUBLE_EQ(back.results[0].enumerate_ms, 2.5);
  ASSERT_EQ(back.results[0].phase_timings.size(), 2u);
  EXPECT_EQ(back.results[0].phase_timings[1].name, "Enumerate");
  EXPECT_EQ(back.tuples, resp.tuples);
}

TEST(ServerProtocol, TruncatedResponsePayloadFailsSoftly) {
  QueryResponse resp;
  resp.results.resize(1);
  ByteSink sink;
  resp.Serialize(sink);
  for (size_t cut : {size_t{0}, size_t{5}, sink.size() / 2}) {
    ByteSource src(sink.data().data(), cut);
    ReadMessageType(src);
    QueryResponse::Deserialize(src);
    EXPECT_FALSE(src.ok());
  }
}

// --------------------------------------------------------------- serving

TEST_F(ServerTest, SingleQueryMatchesInProcessEvaluation) {
  QueryClient client = Connect();
  std::string error;
  auto resp = client.Query(PaperRequest(), &error);
  ASSERT_TRUE(resp.has_value()) << error;
  ASSERT_EQ(resp->status, StatusCode::kOk) << resp->error;
  ASSERT_EQ(resp->results.size(), 1u);
  EXPECT_EQ(resp->results[0].num_occurrences, 4u);
  EXPECT_FALSE(resp->results[0].phase_timings.empty());

  // The echoed tuples are the exact in-process answer set.
  ASSERT_EQ(resp->tuple_arity, 3u);
  std::set<std::vector<NodeId>> served;
  for (size_t i = 0; i + 3 <= resp->tuples.size(); i += 3) {
    served.insert({resp->tuples[i], resp->tuples[i + 1],
                   resp->tuples[i + 2]});
  }
  EXPECT_EQ(served, PaperExample::ExpectedAnswer());
}

TEST_F(ServerTest, TupleEchoIsCappedByRequest) {
  QueryClient client = Connect();
  auto resp = client.Query(PaperRequest(/*max_tuples=*/2));
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->results[0].num_occurrences, 4u);  // counting is uncapped
  EXPECT_EQ(resp->tuples.size(), 2u * 3u);
}

TEST_F(ServerTest, MultiPatternRequestUsesBatchAndKeepsOrder) {
  QueryRequest req;
  req.patterns = {"(a:0)->(b:1), (a)->(c:2), (b)=>(c)",  // the paper query: 4
                  "(a:0)->(b:1)",                        // every a->b edge
                  "(x:1)=>(y:2)"};                       // b reaches c
  req.num_threads = 2;
  QueryClient client = Connect();
  std::string error;
  auto resp = client.Query(req, &error);
  ASSERT_TRUE(resp.has_value()) << error;
  ASSERT_EQ(resp->status, StatusCode::kOk) << resp->error;
  ASSERT_EQ(resp->results.size(), 3u);

  GmOptions opts;
  for (size_t i = 0; i < req.patterns.size(); ++i) {
    auto q = ParsePattern(req.patterns[i]);
    ASSERT_TRUE(q.has_value());
    GmResult direct = engine_->Evaluate(*q, opts);
    EXPECT_EQ(resp->results[i].num_occurrences, direct.num_occurrences)
        << "query " << i;
  }
}

TEST_F(ServerTest, TemplateRequestMatchesDirectInstantiation) {
  QueryRequest req;
  req.template_name = "HQ0";
  req.template_seed = 17;
  QueryClient client = Connect();
  auto resp = client.Query(req);
  ASSERT_TRUE(resp.has_value());
  ASSERT_EQ(resp->status, StatusCode::kOk) << resp->error;

  PatternQuery q =
      InstantiateTemplate(TemplateByName("HQ0"), QueryVariant::kHybrid,
                          graph_->NumLabels(), 17);
  GmResult direct = engine_->Evaluate(q);
  ASSERT_EQ(resp->results.size(), 1u);
  EXPECT_EQ(resp->results[0].num_occurrences, direct.num_occurrences);
}

TEST_F(ServerTest, StatsCountServedQueries) {
  QueryClient client = Connect();
  for (int i = 0; i < 3; ++i) {
    auto resp = client.Query(PaperRequest(0));
    ASSERT_TRUE(resp.has_value());
  }
  auto stats = client.Stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->queries_served, 3u);
  EXPECT_EQ(stats->occurrences_emitted, 12u);
  EXPECT_EQ(stats->errors, 0u);
  EXPECT_GE(stats->requests_served, 3u);
  EXPECT_GE(stats->latency_p99_ms, stats->latency_p50_ms);
}

TEST_F(ServerTest, HostileThreadCountIsClampedNotHonored) {
  // num_threads is client-controlled; an absurd value must be clamped to
  // the hardware, not spawn 4 billion enumeration threads (which would
  // terminate the daemon with an uncaught std::system_error).
  QueryRequest req = PaperRequest(0);
  req.num_threads = std::numeric_limits<uint32_t>::max();
  QueryClient client = Connect();
  auto resp = client.Query(req);
  ASSERT_TRUE(resp.has_value());
  ASSERT_EQ(resp->status, StatusCode::kOk) << resp->error;
  EXPECT_EQ(resp->results[0].num_occurrences, 4u);
}

TEST_F(ServerTest, SecondServerOnLiveSocketFailsInsteadOfHijacking) {
  {
    QueryServer second(*engine_, config_);
    std::string error;
    EXPECT_FALSE(second.Start(&error));
    EXPECT_NE(error.find("already"), std::string::npos) << error;
  }
  // The original daemon is untouched — in particular the failed server's
  // destructor must not unlink the live socket it never bound.
  QueryClient client = Connect();
  auto resp = client.Query(PaperRequest(0));
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, StatusCode::kOk);
}

TEST_F(ServerTest, NonSocketPathIsRefusedNotDeleted) {
  // A mistyped --socket pointing at a regular file must not delete it.
  std::string path = UniqueSocketPath();
  {
    std::ofstream out(path);
    out << "precious";
  }
  ServerConfig config = config_;
  config.unix_path = path;
  QueryServer server(*engine_, config);
  std::string error;
  EXPECT_FALSE(server.Start(&error));
  EXPECT_NE(error.find("not a socket"), std::string::npos) << error;

  std::ifstream in(path);
  std::string content;
  in >> content;
  EXPECT_EQ(content, "precious");
  std::remove(path.c_str());
}

TEST_F(ServerTest, ShutdownRequestStopsTheServer) {
  QueryClient client = Connect();
  std::string error;
  EXPECT_TRUE(client.Shutdown(&error)) << error;
  server_->Wait();  // returns because the worker requested the stop
  EXPECT_FALSE(server_->running());
}

// The acceptance bar: several concurrent clients, every response identical
// to EvaluateCollect on the same engine.
TEST_F(ServerTest, ConcurrentClientsMatchInProcessCounts) {
  const std::vector<std::string> patterns = {
      "(a:0)->(b:1), (a)->(c:2), (b)=>(c)",
      "(a:0)->(b:1)",
      "(a:0)=>(c:2)",
      "(b:1)=>(c:2)",
  };
  std::vector<uint64_t> expected;
  for (const std::string& p : patterns) {
    auto q = ParsePattern(p);
    ASSERT_TRUE(q.has_value());
    expected.push_back(engine_->EvaluateCollect(*q).size());
  }

  constexpr int kClients = 6;
  constexpr int kRoundsPerClient = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      QueryClient client;
      std::string error;
      if (!client.ConnectUnix(config_.unix_path, &error)) {
        ++failures;
        return;
      }
      for (int round = 0; round < kRoundsPerClient; ++round) {
        size_t pick = static_cast<size_t>(c + round) % patterns.size();
        QueryRequest req;
        req.patterns = {patterns[pick]};
        auto resp = client.Query(req, &error);
        if (!resp.has_value() || resp->status != StatusCode::kOk ||
            resp->results.size() != 1 ||
            resp->results[0].num_occurrences != expected[pick]) {
          ++failures;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);

  auto stats = server_->Snapshot();
  EXPECT_EQ(stats.queries_served,
            static_cast<uint64_t>(kClients) * kRoundsPerClient);
  EXPECT_EQ(stats.errors, 0u);
}

// A snapshot-backed server (the daemon's deployment shape) serves the same
// counts as the cold engine it was saved from.
TEST(ServerSnapshot, WarmServerMatchesColdEngine) {
  GeneratorOptions gopts;
  gopts.num_nodes = 300;
  gopts.num_edges = 1500;
  gopts.num_labels = 4;
  gopts.seed = 5;
  Graph g = GeneratePowerLaw(gopts);
  GmEngine cold(g);

  std::string snap_path = UniqueSocketPath() + ".snap";
  std::string error;
  ASSERT_TRUE(SaveEngineSnapshot(cold, snap_path, &error)) << error;
  auto warm = LoadEngineSnapshot(snap_path, {}, &error);
  ASSERT_TRUE(warm.has_value()) << error;

  ServerConfig config;
  config.unix_path = UniqueSocketPath();
  config.num_workers = 2;
  QueryServer server(*warm->engine, config);
  ASSERT_TRUE(server.Start(&error)) << error;

  const std::vector<std::string> patterns = {
      "(a:0)->(b:1)", "(a:0)=>(b:2)", "(a:1)->(b:2), (a)=>(c:3)"};
  QueryClient client;
  ASSERT_TRUE(client.ConnectUnix(config.unix_path, &error)) << error;
  for (const std::string& p : patterns) {
    QueryRequest req;
    req.patterns = {p};
    auto resp = client.Query(req, &error);
    ASSERT_TRUE(resp.has_value()) << error;
    ASSERT_EQ(resp->status, StatusCode::kOk) << resp->error;
    auto q = ParsePattern(p);
    ASSERT_TRUE(q.has_value());
    EXPECT_EQ(resp->results[0].num_occurrences,
              cold.EvaluateCollect(*q).size())
        << p;
  }
  client.Close();
  server.Stop();
  std::remove(snap_path.c_str());
}

// ------------------------------------------------------------ error paths

TEST_F(ServerTest, ParseErrorIsReportedNotFatal) {
  QueryClient client = Connect();
  QueryRequest req;
  req.patterns = {"this is not a pattern"};
  auto resp = client.Query(req);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, StatusCode::kParseError);
  EXPECT_FALSE(resp->error.empty());

  // Same connection still serves well-formed queries.
  auto ok = client.Query(PaperRequest());
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->status, StatusCode::kOk);
}

TEST_F(ServerTest, UnknownTemplateIsRejected) {
  QueryClient client = Connect();
  QueryRequest req;
  req.template_name = "HQ99";
  auto resp = client.Query(req);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, StatusCode::kParseError);
}

TEST_F(ServerTest, EmptyRequestIsRejected) {
  QueryClient client = Connect();
  auto resp = client.Query(QueryRequest{});
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, StatusCode::kBadRequest);
}

// Speak raw bytes to exercise the framing errors a well-behaved client
// never produces.
class RawConnection {
 public:
  explicit RawConnection(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~RawConnection() { Close(); }
  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  bool ok() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void Send(const void* data, size_t n) {
    ASSERT_EQ(::send(fd_, data, n, MSG_NOSIGNAL),
              static_cast<ssize_t>(n));
  }
  void SendU32(uint32_t v) { Send(&v, sizeof(v)); }
  /// Reads one response frame; returns the leading message type or nullopt
  /// on EOF/error.
  std::optional<MessageType> ReadResponseType() {
    std::vector<uint8_t> payload;
    std::string error;
    if (ReadFrame(fd_, kDefaultMaxFrameBytes, &payload, &error) !=
        FrameReadStatus::kOk) {
      return std::nullopt;
    }
    ByteSource src(payload.data(), payload.size());
    MessageType type = ReadMessageType(src);
    return src.ok() ? std::optional<MessageType>(type) : std::nullopt;
  }

 private:
  int fd_ = -1;
};

TEST_F(ServerTest, UnknownRequestTypeGetsErrorResponse) {
  RawConnection raw(config_.unix_path);
  ASSERT_TRUE(raw.ok());
  raw.SendU32(4);        // frame length: one u32
  raw.SendU32(0xBEEF);   // not a MessageType
  auto type = raw.ReadResponseType();
  ASSERT_TRUE(type.has_value());
  EXPECT_EQ(*type, MessageType::kErrorResponse);

  // The connection survives: a valid ping on the same socket still works.
  ByteSink ping;
  ping.WriteU32(static_cast<uint32_t>(MessageType::kPingRequest));
  std::string error;
  ASSERT_TRUE(WriteFrame(raw.fd(), ping, &error)) << error;
  type = raw.ReadResponseType();
  ASSERT_TRUE(type.has_value());
  EXPECT_EQ(*type, MessageType::kPingResponse);
}

TEST_F(ServerTest, EmptyFrameGetsErrorResponse) {
  RawConnection raw(config_.unix_path);
  ASSERT_TRUE(raw.ok());
  raw.SendU32(0);  // zero-length frame: no room for a message type
  auto type = raw.ReadResponseType();
  ASSERT_TRUE(type.has_value());
  EXPECT_EQ(*type, MessageType::kErrorResponse);
  // Protocol rejections land in the operator-facing error counter.
  EXPECT_EQ(server_->Snapshot().errors, 1u);
}

TEST_F(ServerTest, MalformedRequestBodyGetsErrorResponse) {
  // Valid type, body truncated mid-struct: the ByteSource fails softly and
  // the server reports kBadRequest instead of crashing.
  RawConnection raw(config_.unix_path);
  ASSERT_TRUE(raw.ok());
  raw.SendU32(8);  // type + pattern count only; fields missing
  raw.SendU32(static_cast<uint32_t>(MessageType::kQueryRequest));
  raw.SendU32(1);
  auto type = raw.ReadResponseType();
  ASSERT_TRUE(type.has_value());
  EXPECT_EQ(*type, MessageType::kErrorResponse);
}

TEST_F(ServerTest, OversizeFrameIsRejectedAndConnectionClosed) {
  // Re-start with a small frame cap so the test doesn't ship megabytes.
  server_->Stop();
  config_.max_frame_bytes = 1024;
  config_.unix_path = UniqueSocketPath();
  server_ = std::make_unique<QueryServer>(*engine_, config_);
  std::string error;
  ASSERT_TRUE(server_->Start(&error)) << error;

  RawConnection raw(config_.unix_path);
  ASSERT_TRUE(raw.ok());
  raw.SendU32(1 << 20);  // declared length far over the 1 KiB cap
  auto type = raw.ReadResponseType();
  ASSERT_TRUE(type.has_value());
  EXPECT_EQ(*type, MessageType::kErrorResponse);
  // The stream cannot be resynchronized; the server hangs up.
  EXPECT_FALSE(raw.ReadResponseType().has_value());

  // And keeps serving fresh connections.
  QueryClient client = Connect();
  auto resp = client.Query(PaperRequest());
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, StatusCode::kOk);
}

TEST_F(ServerTest, OversizeResponseBecomesErrorNotCorruptFrame) {
  // Re-start with a frame cap the paper request (85 bytes) and a pong fit
  // under but the query response (>= 141 bytes of result + echoed tuples)
  // does not; the server must substitute a small error response rather
  // than send a frame the client rejects as oversize.
  server_->Stop();
  config_.max_frame_bytes = 120;
  config_.unix_path = UniqueSocketPath();
  server_ = std::make_unique<QueryServer>(*engine_, config_);
  std::string error;
  ASSERT_TRUE(server_->Start(&error)) << error;

  QueryClient client = Connect();
  auto resp = client.Query(PaperRequest(), &error);
  ASSERT_TRUE(resp.has_value()) << error;
  EXPECT_EQ(resp->status, StatusCode::kInternalError);
  EXPECT_NE(resp->error.find("frame cap"), std::string::npos) << resp->error;

  // The connection survives for responses that do fit, and the substituted
  // error was counted.
  EXPECT_TRUE(client.Ping(&error)) << error;
  EXPECT_GE(server_->Snapshot().errors, 1u);
}

TEST_F(ServerTest, ClientDisconnectMidFrameDoesNotKillServer) {
  {
    RawConnection raw(config_.unix_path);
    ASSERT_TRUE(raw.ok());
    raw.SendU32(100);  // promise 100 bytes...
    raw.SendU32(1);    // ...deliver 4, then vanish
  }
  {
    // Send a full valid query but disappear without reading the response.
    QueryClient client = Connect();
    ByteSink sink;
    PaperRequest().Serialize(sink);
    std::string error;
    ASSERT_TRUE(WriteFrame(client.fd(), sink, &error)) << error;
    client.Close();
  }
  // The server is still alive and correct for the next client.
  QueryClient client = Connect();
  auto resp = client.Query(PaperRequest());
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, StatusCode::kOk);
  EXPECT_EQ(resp->results[0].num_occurrences, 4u);
}

// ---------------------------- event loop: slow clients, idle connections

TEST_F(ServerTest, SlowLorisClientsDoNotOccupyWorkers) {
  // 64 connections drip one byte of a frame header each — with the old
  // thread-per-connection core and one worker, the first of them would
  // have parked the whole pool forever. Under the event loop a partial
  // frame is just buffered bytes; no worker is involved until a frame
  // completes.
  server_->Stop();
  config_.num_workers = 1;
  config_.unix_path = UniqueSocketPath();
  server_ = std::make_unique<QueryServer>(*engine_, config_);
  std::string error;
  ASSERT_TRUE(server_->Start(&error)) << error;

  constexpr int kLoris = 64;
  std::vector<std::unique_ptr<RawConnection>> loris;
  loris.reserve(kLoris);
  for (int i = 0; i < kLoris; ++i) {
    auto raw = std::make_unique<RawConnection>(config_.unix_path);
    ASSERT_TRUE(raw->ok());
    const uint8_t byte = 0x20;  // first byte of some future length prefix
    raw->Send(&byte, 1);
    loris.push_back(std::move(raw));
  }

  // A fresh client gets served promptly while all 64 sit mid-header.
  QueryClient client = Connect();
  for (int round = 0; round < 3; ++round) {
    auto resp = client.Query(PaperRequest(), &error);
    ASSERT_TRUE(resp.has_value()) << error;
    EXPECT_EQ(resp->status, StatusCode::kOk);
    EXPECT_EQ(resp->results[0].num_occurrences, 4u);
  }
  // Only the real requests ever reached the worker.
  EXPECT_EQ(server_->Snapshot().requests_served, 3u);
  EXPECT_GE(server_->Snapshot().active_connections,
            static_cast<uint64_t>(kLoris));
}

TEST_F(ServerTest, UntaggedRequestsAreAnsweredStrictlyInOrder) {
  // An old client may write several untagged frames back-to-back; the
  // responses must come back one per request, in request order (the
  // pipelining envelope is what opts INTO reordering).
  RawConnection raw(config_.unix_path);
  ASSERT_TRUE(raw.ok());
  std::string error;
  ByteSink ping;
  ping.WriteU32(static_cast<uint32_t>(MessageType::kPingRequest));
  ByteSink stats;
  stats.WriteU32(static_cast<uint32_t>(MessageType::kStatsRequest));
  ASSERT_TRUE(WriteFrame(raw.fd(), ping, &error)) << error;
  ASSERT_TRUE(WriteFrame(raw.fd(), stats, &error)) << error;
  ASSERT_TRUE(WriteFrame(raw.fd(), ping, &error)) << error;
  auto t1 = raw.ReadResponseType();
  auto t2 = raw.ReadResponseType();
  auto t3 = raw.ReadResponseType();
  ASSERT_TRUE(t1.has_value() && t2.has_value() && t3.has_value());
  EXPECT_EQ(*t1, MessageType::kPingResponse);
  EXPECT_EQ(*t2, MessageType::kStatsResponse);
  EXPECT_EQ(*t3, MessageType::kPingResponse);
}

TEST_F(ServerTest, ConnectionCapShedsExcessConnections) {
  server_->Stop();
  config_.max_connections = 3;
  config_.unix_path = UniqueSocketPath();
  server_ = std::make_unique<QueryServer>(*engine_, config_);
  std::string error;
  ASSERT_TRUE(server_->Start(&error)) << error;

  std::vector<std::unique_ptr<RawConnection>> held;
  for (int i = 0; i < 3; ++i) {
    auto raw = std::make_unique<RawConnection>(config_.unix_path);
    ASSERT_TRUE(raw->ok());
    held.push_back(std::move(raw));
  }
  // Give the loop a moment to register all three, then the fourth must be
  // accepted-and-closed: its first read sees EOF instead of a response.
  for (int spin = 0; spin < 100; ++spin) {
    if (server_->Snapshot().active_connections == 3u) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(server_->Snapshot().active_connections, 3u);
  RawConnection over(config_.unix_path);
  ASSERT_TRUE(over.ok());
  ByteSink ping;
  ping.WriteU32(static_cast<uint32_t>(MessageType::kPingRequest));
  WriteFrame(over.fd(), ping, nullptr);  // may race the server-side close
  EXPECT_FALSE(over.ReadResponseType().has_value());

  // Dropping one held connection frees a slot for the next client.
  held.pop_back();
  for (int spin = 0; spin < 100; ++spin) {
    if (server_->Snapshot().active_connections <= 2u) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  QueryClient client = Connect();
  EXPECT_TRUE(client.Ping(&error)) << error;
}

TEST_F(ServerTest, IdleTimeoutReapsQuietConnections) {
  server_->Stop();
  config_.idle_timeout_ms = 100;
  config_.unix_path = UniqueSocketPath();
  server_ = std::make_unique<QueryServer>(*engine_, config_);
  std::string error;
  ASSERT_TRUE(server_->Start(&error)) << error;

  RawConnection raw(config_.unix_path);
  ASSERT_TRUE(raw.ok());
  // Quiet past the deadline (+ a loop tick of slack): the server hangs up.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  EXPECT_FALSE(raw.ReadResponseType().has_value());

  // An active client is never reaped between its requests' bytes.
  QueryClient client = Connect();
  EXPECT_TRUE(client.Ping(&error)) << error;
}

// ------------------------------------------------- request-id pipelining

TEST_F(ServerTest, PipelinedQueriesMatchInProcessBatchEvaluation) {
  // N tagged requests on ONE socket, more than the worker pool is wide;
  // responses are matched by request id regardless of completion order and
  // every count must equal the in-process EvaluateBatch result.
  const std::vector<std::string> patterns = {
      "(a:0)->(b:1)",
      "(a:0)->(c:2)",
      "(a:0)->(b:1), (a)->(c:2), (b)=>(c)",
      "(b:1)=>(c:2)",
  };
  std::vector<PatternQuery> queries;
  for (const std::string& p : patterns) {
    auto q = ParsePattern(p);
    ASSERT_TRUE(q.has_value()) << p;
    queries.push_back(std::move(*q));
  }
  std::vector<GmResult> expected = engine_->EvaluateBatch(
      std::span<const PatternQuery>(queries), GmOptions{}, nullptr);

  constexpr int kRepeats = 4;  // 16 requests in flight on one connection
  QueryClient client = Connect();
  std::string error;
  std::vector<QueryRequest> requests;
  for (int r = 0; r < kRepeats; ++r) {
    for (const std::string& p : patterns) {
      QueryRequest req;
      req.patterns = {p};
      requests.push_back(req);
    }
  }
  auto responses = client.QueryPipelined(requests, &error);
  ASSERT_TRUE(responses.has_value()) << error;
  ASSERT_EQ(responses->size(), requests.size());
  for (size_t i = 0; i < responses->size(); ++i) {
    const QueryResponse& resp = (*responses)[i];
    ASSERT_EQ(resp.status, StatusCode::kOk) << resp.error;
    EXPECT_EQ(resp.results[0].num_occurrences,
              expected[i % patterns.size()].num_occurrences)
        << patterns[i % patterns.size()];
  }
  EXPECT_EQ(server_->Snapshot().errors, 0u);
}

TEST_F(ServerTest, TaggedResponsesCarryTheirRequestId) {
  // Manual send/receive (no convenience wrapper): ids echo back and every
  // in-flight request gets exactly one response.
  QueryClient client = Connect();
  std::string error;
  std::set<uint64_t> sent;
  for (int i = 0; i < 8; ++i) {
    auto id = client.SendTagged(PaperRequest(), &error);
    ASSERT_TRUE(id.has_value()) << error;
    EXPECT_TRUE(sent.insert(*id).second) << "duplicate id " << *id;
  }
  for (int i = 0; i < 8; ++i) {
    auto tagged = client.ReceiveTagged(&error);
    ASSERT_TRUE(tagged.has_value()) << error;
    EXPECT_EQ(sent.erase(tagged->request_id), 1u)
        << "unknown or repeated id " << tagged->request_id;
    EXPECT_EQ(tagged->response.status, StatusCode::kOk);
    EXPECT_EQ(tagged->response.results[0].num_occurrences, 4u);
  }
  EXPECT_TRUE(sent.empty());
}

// ---------------------------------------------------------- delta refresh

TEST_F(ServerTest, RefreshWithoutDeltaConfiguredIsRejected) {
  QueryClient client = Connect();
  std::string error;
  auto resp = client.Refresh(&error);
  ASSERT_TRUE(resp.has_value()) << error;
  EXPECT_EQ(resp->status, StatusCode::kBadRequest);
  EXPECT_NE(resp->error.find("delta"), std::string::npos) << resp->error;
  // The connection (and server) keep serving.
  auto ok = client.Query(PaperRequest());
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->status, StatusCode::kOk);
}

/// A snapshot-backed server armed with a delta log: the live-refresh
/// deployment shape. The fixture owns the base snapshot, its checksum, and
/// a writer-side view of the log so tests can append and refresh at will.
class RefreshTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_graph_ = PaperExample::MakeGraph();
    snap_path_ = UniqueSocketPath() + ".snap";
    delta_path_ = UniqueSocketPath() + ".delta";
    std::string error;
    {
      GmEngine cold(base_graph_);
      ASSERT_TRUE(SaveEngineSnapshot(cold, snap_path_, &error)) << error;
    }
    auto info = InspectSnapshot(snap_path_, &error);
    ASSERT_TRUE(info.has_value()) << error;
    base_checksum_ = info->stored_checksum;
    warm_ = LoadEngineSnapshot(snap_path_, {}, &error);
    ASSERT_TRUE(warm_.has_value()) << error;

    config_.unix_path = UniqueSocketPath();
    // FEWER workers than the 4 steady clients of the under-load test, plus
    // the refresher: the event loop multiplexes connections over the pool,
    // so clients > workers must serve fine (the old thread-per-connection
    // core starved the refresher under this sizing).
    config_.num_workers = 2;
    config_.delta_path = delta_path_;
    config_.base_checksum = base_checksum_;
    server_ = std::make_unique<QueryServer>(*warm_->engine, config_);
    ASSERT_TRUE(server_->Start(&error)) << error;
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();  // SetUp may have ASSERTed out
    std::remove(snap_path_.c_str());
    std::remove(delta_path_.c_str());
  }

  void AppendBatch(
      const std::vector<std::pair<NodeId, NodeId>>& edges) {
    std::string error;
    auto writer = DeltaWriter::Open(delta_path_, base_checksum_,
                                    base_graph_.NumNodes(), &error);
    ASSERT_NE(writer, nullptr) << error;
    ASSERT_TRUE(writer->Append(edges, &error)) << error;
  }

  uint64_t ServedCount(QueryClient& client, const std::string& pattern) {
    QueryRequest req;
    req.patterns = {pattern};
    std::string error;
    auto resp = client.Query(req, &error);
    EXPECT_TRUE(resp.has_value()) << error;
    if (!resp.has_value()) return ~0ull;
    EXPECT_EQ(resp->status, StatusCode::kOk) << resp->error;
    return resp->results[0].num_occurrences;
  }

  Graph base_graph_;
  std::string snap_path_, delta_path_;
  uint64_t base_checksum_ = 0;
  std::optional<WarmEngine> warm_;
  ServerConfig config_;
  std::unique_ptr<QueryServer> server_;
};

TEST_F(RefreshTest, RefreshBeforeTheLogExistsIsACaughtUpNoOp) {
  // The log is created lazily by the first `delta append`; a refresh that
  // arrives first (a poller on a timer) is a healthy caught-up state, not
  // an error — status kOk, nothing applied, no errors counted. A
  // zero-length file (crashed first creation) is the same state.
  QueryClient client;
  std::string error;
  ASSERT_TRUE(client.ConnectUnix(config_.unix_path, &error)) << error;
  auto resp = client.Refresh(&error);
  ASSERT_TRUE(resp.has_value()) << error;
  EXPECT_EQ(resp->status, StatusCode::kOk) << resp->error;
  EXPECT_EQ(resp->records_applied, 0u);
  EXPECT_EQ(resp->num_edges, base_graph_.NumEdges());

  std::ofstream(delta_path_, std::ios::binary).close();  // 0-byte file
  auto resp2 = client.Refresh(&error);
  ASSERT_TRUE(resp2.has_value()) << error;
  EXPECT_EQ(resp2->status, StatusCode::kOk) << resp2->error;
  EXPECT_EQ(resp2->records_applied, 0u);

  EXPECT_EQ(server_->Snapshot().errors, 0u);
  EXPECT_EQ(server_->Snapshot().refreshes, 0u);
}

TEST_F(RefreshTest, RefreshMatchesColdRebuildOfBasePlusDelta) {
  const std::string pattern = "(a:0)->(b:1)";
  QueryClient client;
  std::string error;
  ASSERT_TRUE(client.ConnectUnix(config_.unix_path, &error)) << error;

  // Two batches, two refresh rounds — counts after each must equal a cold
  // rebuild of base + the records applied so far.
  const std::vector<std::pair<NodeId, NodeId>> batch1 = {{0, 3}, {0, 7}};
  const std::vector<std::pair<NodeId, NodeId>> batch2 = {{1, 4}, {2, 6}};
  AppendBatch(batch1);
  auto r1 = client.Refresh(&error);
  ASSERT_TRUE(r1.has_value()) << error;
  ASSERT_EQ(r1->status, StatusCode::kOk) << r1->error;
  EXPECT_EQ(r1->records_applied, 1u);
  EXPECT_EQ(server_->applied_seqno(), 1u);
  {
    Graph merged = ApplyEdgesToGraph(base_graph_, batch1);
    GmEngine cold(merged);
    auto q = ParsePattern(pattern);
    ASSERT_TRUE(q.has_value());
    EXPECT_EQ(ServedCount(client, pattern), cold.EvaluateCollect(*q).size());
    EXPECT_EQ(r1->num_edges, merged.NumEdges());
  }

  AppendBatch(batch2);
  auto r2 = client.Refresh(&error);
  ASSERT_TRUE(r2.has_value()) << error;
  ASSERT_EQ(r2->status, StatusCode::kOk) << r2->error;
  EXPECT_EQ(r2->records_applied, 1u);
  EXPECT_EQ(r2->last_seqno, 2u);
  {
    std::vector<std::pair<NodeId, NodeId>> all = batch1;
    all.insert(all.end(), batch2.begin(), batch2.end());
    Graph merged = ApplyEdgesToGraph(base_graph_, all);
    GmEngine cold(merged);
    auto q = ParsePattern(pattern);
    ASSERT_TRUE(q.has_value());
    EXPECT_EQ(ServedCount(client, pattern), cold.EvaluateCollect(*q).size());
  }

  // Caught up: the third refresh is a no-op, not an error.
  auto r3 = client.Refresh(&error);
  ASSERT_TRUE(r3.has_value()) << error;
  EXPECT_EQ(r3->status, StatusCode::kOk);
  EXPECT_EQ(r3->records_applied, 0u);
  EXPECT_EQ(server_->Snapshot().refreshes, 2u);
}

TEST_F(RefreshTest, LogBoundToDifferentBaseIsRejected) {
  std::string error;
  {
    auto writer = DeltaWriter::Open(delta_path_, base_checksum_ + 1,
                                    base_graph_.NumNodes(), &error);
    ASSERT_NE(writer, nullptr) << error;
    ASSERT_TRUE(writer->Append({{0, 3}}, &error)) << error;
  }
  QueryClient client;
  ASSERT_TRUE(client.ConnectUnix(config_.unix_path, &error)) << error;
  auto resp = client.Refresh(&error);
  ASSERT_TRUE(resp.has_value()) << error;
  EXPECT_EQ(resp->status, StatusCode::kBadRequest);
  EXPECT_NE(resp->error.find("different base"), std::string::npos)
      << resp->error;
  // Serving is unchanged (4 paper-example occurrences).
  QueryRequest req;
  req.patterns = {"(a:0)->(b:1), (a)->(c:2), (b)=>(c)"};
  auto q = client.Query(req, &error);
  ASSERT_TRUE(q.has_value()) << error;
  EXPECT_EQ(q->results[0].num_occurrences, 4u);
}

TEST_F(RefreshTest, RewrittenLogWithReusedSeqnosIsRejectedNotSkipped) {
  // After a refresh, replace the log with a different one against the same
  // base (seqno 1 reused with other edges). Resuming by seqno alone would
  // report "caught up" and serve a stale graph forever; the chain check
  // must reject instead.
  QueryClient client;
  std::string error;
  ASSERT_TRUE(client.ConnectUnix(config_.unix_path, &error)) << error;
  AppendBatch({{0, 3}});
  auto r1 = client.Refresh(&error);
  ASSERT_TRUE(r1.has_value()) << error;
  ASSERT_EQ(r1->status, StatusCode::kOk) << r1->error;

  std::remove(delta_path_.c_str());
  AppendBatch({{0, 7}});  // fresh log: seqno 1 again, different edges
  auto r2 = client.Refresh(&error);
  ASSERT_TRUE(r2.has_value()) << error;
  EXPECT_EQ(r2->status, StatusCode::kBadRequest);
  EXPECT_NE(r2->error.find("applied prefix"), std::string::npos)
      << r2->error;
  // Serving continues on the last good state.
  EXPECT_EQ(server_->applied_seqno(), 1u);
}

TEST_F(RefreshTest, RefreshUnderConcurrentClientsDropsNothing) {
  // The RCU swap under fire: 4 clients hammer the same query while the
  // main thread appends records and refreshes twice. Every round trip must
  // succeed on its original connection, and every observed count must be
  // one of the legal states (before / after first / after second batch).
  // This is the primary TSAN target for the engine-swap path.
  const std::string pattern = "(a:0)->(b:1)";
  auto count_for = [&](const std::vector<std::pair<NodeId, NodeId>>& extra) {
    Graph merged = ApplyEdgesToGraph(base_graph_, extra);
    GmEngine cold(merged);
    auto q = ParsePattern(pattern);
    return static_cast<uint64_t>(cold.EvaluateCollect(*q).size());
  };
  const std::vector<std::pair<NodeId, NodeId>> batch1 = {{0, 3}};
  std::vector<std::pair<NodeId, NodeId>> both = batch1;
  both.emplace_back(0, 4);
  const uint64_t count0 = count_for({});
  const uint64_t count1 = count_for(batch1);
  const uint64_t count2 = count_for(both);

  constexpr int kClients = 4;
  constexpr int kRounds = 30;
  std::atomic<int> failures{0};
  std::atomic<int> bad_counts{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      QueryClient client;
      std::string error;
      if (!client.ConnectUnix(config_.unix_path, &error)) {
        ++failures;
        return;
      }
      while (!go.load()) std::this_thread::yield();
      QueryRequest req;
      req.patterns = {pattern};
      for (int r = 0; r < kRounds; ++r) {
        auto resp = client.Query(req, &error);
        if (!resp.has_value() || resp->status != StatusCode::kOk) {
          ++failures;
          return;
        }
        uint64_t n = resp->results[0].num_occurrences;
        if (n != count0 && n != count1 && n != count2) ++bad_counts;
      }
    });
  }

  go.store(true);
  QueryClient refresher;
  std::string error;
  ASSERT_TRUE(refresher.ConnectUnix(config_.unix_path, &error)) << error;
  AppendBatch(batch1);
  auto r1 = refresher.Refresh(&error);
  ASSERT_TRUE(r1.has_value()) << error;
  EXPECT_EQ(r1->status, StatusCode::kOk) << r1->error;
  AppendBatch({{0, 4}});
  auto r2 = refresher.Refresh(&error);
  ASSERT_TRUE(r2.has_value()) << error;
  EXPECT_EQ(r2->status, StatusCode::kOk) << r2->error;

  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(bad_counts.load(), 0);
  // Steady state: everyone sees base + both batches.
  QueryClient after;
  ASSERT_TRUE(after.ConnectUnix(config_.unix_path, &error)) << error;
  EXPECT_EQ(ServedCount(after, pattern), count2);
  EXPECT_EQ(server_->applied_seqno(), 2u);
}

}  // namespace
}  // namespace rigpm
