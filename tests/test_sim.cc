#include "sim/fbsim.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "query/query_generator.h"
#include "sim/fbsim_bas.h"
#include "sim/fbsim_dag.h"
#include "sim/prefilter.h"
#include "test_util.h"

namespace rigpm {
namespace {

using ::rigpm::testing::BruteForceAnswer;
using ::rigpm::testing::PaperExample;

std::vector<NodeId> Sorted(const Bitmap& b) { return b.ToVector(); }

class SimFixture : public ::testing::Test {
 protected:
  SimFixture()
      : graph_(PaperExample::MakeGraph()),
        query_(PaperExample::MakeQuery()),
        reach_(BuildReachabilityIndex(graph_, ReachKind::kBfl)),
        ctx_(graph_, *reach_) {}

  Graph graph_;
  PatternQuery query_;
  std::unique_ptr<ReachabilityIndex> reach_;
  MatchContext ctx_;
};

// Table 1 of the paper: F, B and FB simulations of Q on G.
TEST_F(SimFixture, Table1ForwardSimulation) {
  CandidateSets f = ForwardSimulation(ctx_, query_);
  EXPECT_EQ(Sorted(f[0]), (std::vector<NodeId>{PaperExample::a1,
                                               PaperExample::a2}));
  EXPECT_EQ(Sorted(f[1]),
            (std::vector<NodeId>{PaperExample::b0, PaperExample::b1,
                                 PaperExample::b2}));
  EXPECT_EQ(Sorted(f[2]),
            (std::vector<NodeId>{PaperExample::c0, PaperExample::c1,
                                 PaperExample::c2}));
}

TEST_F(SimFixture, Table1BackwardSimulation) {
  CandidateSets b = BackwardSimulation(ctx_, query_);
  EXPECT_EQ(Sorted(b[0]),
            (std::vector<NodeId>{PaperExample::a0, PaperExample::a1,
                                 PaperExample::a2}));
  EXPECT_EQ(Sorted(b[1]),
            (std::vector<NodeId>{PaperExample::b0, PaperExample::b2,
                                 PaperExample::b3}));
  EXPECT_EQ(Sorted(b[2]),
            (std::vector<NodeId>{PaperExample::c0, PaperExample::c1,
                                 PaperExample::c2}));
}

TEST_F(SimFixture, Table1DoubleSimulation) {
  for (SimAlgorithm alg :
       {SimAlgorithm::kBas, SimAlgorithm::kDag, SimAlgorithm::kDagMap}) {
    CandidateSets fb = ComputeDoubleSimulation(ctx_, query_, alg);
    EXPECT_EQ(Sorted(fb[0]), (std::vector<NodeId>{PaperExample::a1,
                                                  PaperExample::a2}))
        << SimAlgorithmName(alg);
    EXPECT_EQ(Sorted(fb[1]), (std::vector<NodeId>{PaperExample::b0,
                                                  PaperExample::b2}))
        << SimAlgorithmName(alg);
    EXPECT_EQ(Sorted(fb[2]),
              (std::vector<NodeId>{PaperExample::c0, PaperExample::c1,
                                   PaperExample::c2}))
        << SimAlgorithmName(alg);
  }
}

TEST_F(SimFixture, AllChildCheckModesAgree) {
  for (ChildCheckMode mode :
       {ChildCheckMode::kBinSearch, ChildCheckMode::kBitIter,
        ChildCheckMode::kBitBat}) {
    SimOptions opts;
    opts.child_check = mode;
    opts.batch_reachability = (mode == ChildCheckMode::kBitBat);
    CandidateSets fb = FBSimBas(ctx_, query_, opts);
    EXPECT_EQ(Sorted(fb[1]), (std::vector<NodeId>{PaperExample::b0,
                                                  PaperExample::b2}))
        << ChildCheckModeName(mode);
  }
}

TEST_F(SimFixture, StatsArePopulated) {
  SimStats stats;
  FBSimBas(ctx_, query_, SimOptions{}, &stats);
  EXPECT_GE(stats.passes, 1);
  EXPECT_GT(stats.pair_checks, 0u);
  EXPECT_GT(stats.pruned_nodes, 0u);  // a0, b1, b3 are pruned
}

TEST_F(SimFixture, PassCapIsSoundApproximation) {
  SimOptions capped;
  capped.max_passes = 1;
  CandidateSets approx = FBSimBas(ctx_, query_, capped);
  CandidateSets exact = FBSimBas(ctx_, query_, SimOptions{});
  for (QueryNodeId v = 0; v < query_.NumNodes(); ++v) {
    EXPECT_TRUE(exact[v].IsSubsetOf(approx[v])) << v;
  }
}

// Empty-answer early termination (the Fig. 4/5 behaviour): a query whose
// label exists but whose structure has no match must yield an all-empty FB.
TEST(Sim, EmptyAnswerDetected) {
  // Data: a -> b only. Query: a -> b -> c with c's label present but never
  // below a b.
  Graph g = Graph::FromEdges({0, 1, 2}, {{0, 1}});
  auto reach = BuildReachabilityIndex(g, ReachKind::kBfl);
  MatchContext ctx(g, *reach);
  PatternQuery q = PatternQuery::FromParts(
      {0, 1, 2},
      {{0, 1, EdgeKind::kChild}, {1, 2, EdgeKind::kDescendant}});
  CandidateSets fb = FBSim(ctx, q);
  for (const Bitmap& b : fb) EXPECT_TRUE(b.Empty());
}

TEST(Sim, PreFilterWeakerThanDoubleSim) {
  Graph g = PaperExample::MakeGraph();
  auto reach = BuildReachabilityIndex(g, ReachKind::kBfl);
  MatchContext ctx(g, *reach);
  PatternQuery q = PaperExample::MakeQuery();
  CandidateSets pre = PreFilter(ctx, q);
  CandidateSets fb = FBSimBas(ctx, q);
  for (QueryNodeId v = 0; v < q.NumNodes(); ++v) {
    EXPECT_TRUE(fb[v].IsSubsetOf(pre[v])) << v;
  }
}

TEST(Sim, BatchBfsHelpersMatchDefinition) {
  Graph g = PaperExample::MakeGraph();
  Bitmap targets = {PaperExample::c0};
  Bitmap reaching = NodesReaching(g, targets);
  // Everything with a path into c0.
  EXPECT_TRUE(reaching.Contains(PaperExample::b0));
  EXPECT_TRUE(reaching.Contains(PaperExample::b1));
  EXPECT_TRUE(reaching.Contains(PaperExample::b2));
  EXPECT_TRUE(reaching.Contains(PaperExample::a1));
  EXPECT_FALSE(reaching.Contains(PaperExample::b3));
  EXPECT_FALSE(reaching.Contains(PaperExample::c0));  // no cycle

  Bitmap sources = {PaperExample::b2};
  Bitmap reachable = NodesReachableFrom(g, sources);
  EXPECT_EQ(Sorted(reachable),
            (std::vector<NodeId>{PaperExample::b0, PaperExample::c0,
                                 PaperExample::c1, PaperExample::c2}));
}

// ---------------------------------------------------------------------------
// Property tests on random graph/query pairs.
// ---------------------------------------------------------------------------

struct SimCase {
  const char* label;
  uint64_t seed;
  uint32_t q_nodes;
  uint32_t q_edges;
  bool dag_data;
};

class SimPropertyTest : public ::testing::TestWithParam<SimCase> {};

// Invariants (Section 4.2): os(q) ⊆ FB(q) ⊆ ms(q), all algorithms compute
// the same (unique) double simulation, and the simulation is a fixpoint.
TEST_P(SimPropertyTest, Invariants) {
  const SimCase& p = GetParam();
  GeneratorOptions gopts{.num_nodes = 60, .num_edges = 200, .num_labels = 4,
                         .seed = p.seed};
  Graph g = p.dag_data ? GenerateRandomDag(gopts) : GeneratePowerLaw(gopts);
  auto reach = BuildReachabilityIndex(g, ReachKind::kBfl);
  MatchContext ctx(g, *reach);

  PatternQuery q = GenerateRandomQuery({.num_nodes = p.q_nodes,
                                        .num_edges = p.q_edges,
                                        .num_labels = 4,
                                        .variant = QueryVariant::kHybrid,
                                        .seed = p.seed * 7 + 1});

  CandidateSets bas = FBSimBas(ctx, q);
  CandidateSets dag = ComputeDoubleSimulation(ctx, q, SimAlgorithm::kDag);
  CandidateSets tuned = ComputeDoubleSimulation(ctx, q, SimAlgorithm::kDagMap);
  CandidateSets ms = InitialMatchSets(g, q);

  // Occurrence sets from the brute-force answer.
  auto answer = BruteForceAnswer(g, q);
  CandidateSets os(q.NumNodes());
  for (const auto& tuple : answer) {
    for (QueryNodeId v = 0; v < q.NumNodes(); ++v) os[v].Add(tuple[v]);
  }

  for (QueryNodeId v = 0; v < q.NumNodes(); ++v) {
    EXPECT_EQ(bas[v], dag[v]) << "node " << v;
    EXPECT_EQ(bas[v], tuned[v]) << "node " << v;
    EXPECT_TRUE(os[v].IsSubsetOf(bas[v])) << "os ⊄ FB at node " << v;
    EXPECT_TRUE(bas[v].IsSubsetOf(ms[v])) << "FB ⊄ ms at node " << v;
  }

  // Fixpoint: re-running any prune pass changes nothing.
  CandidateSets again = bas;
  SimOptions opts;
  bool changed = false;
  for (const QueryEdge& e : q.Edges()) {
    changed |= ForwardPruneEdge(ctx, e, &again[e.from], again[e.to], opts,
                                nullptr);
    changed |= BackwardPruneEdge(ctx, e, again[e.from], &again[e.to], opts,
                                 nullptr);
  }
  EXPECT_FALSE(changed);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SimPropertyTest,
    ::testing::Values(SimCase{"small_tree_dag", 1, 4, 3, true},
                      SimCase{"diamond_dag", 2, 4, 4, true},
                      SimCase{"six_node_cyclic_data", 3, 6, 8, false},
                      SimCase{"dense_query", 4, 5, 9, false},
                      SimCase{"larger_query", 5, 8, 12, true},
                      SimCase{"another_seed", 6, 6, 7, false}),
    [](const ::testing::TestParamInfo<SimCase>& info) {
      return info.param.label;
    });

// Directed-cyclic queries must go through the Dag+Δ path and still agree
// with the baseline.
TEST(Sim, CyclicQueryDagDeltaAgreesWithBas) {
  Graph g = GeneratePowerLaw({.num_nodes = 80, .num_edges = 320,
                              .num_labels = 3, .seed = 10});
  auto reach = BuildReachabilityIndex(g, ReachKind::kBfl);
  MatchContext ctx(g, *reach);
  // Directed 3-cycle query.
  PatternQuery q = PatternQuery::FromParts(
      {0, 1, 2},
      {{0, 1, EdgeKind::kChild},
       {1, 2, EdgeKind::kDescendant},
       {2, 0, EdgeKind::kDescendant}});
  CandidateSets bas = FBSimBas(ctx, q);
  CandidateSets delta = FBSim(ctx, q);
  for (QueryNodeId v = 0; v < q.NumNodes(); ++v) {
    EXPECT_EQ(bas[v], delta[v]) << v;
  }
}

}  // namespace
}  // namespace rigpm
