#include <gtest/gtest.h>

#include <random>

#include "graph/generators.h"
#include "graph/interval_labels.h"
#include "graph/scc.h"
#include "test_util.h"

namespace rigpm {
namespace {

using ::rigpm::testing::SlowReaches;

TEST(Condensation, SingleCycleCollapses) {
  // 0 -> 1 -> 2 -> 0, plus 2 -> 3.
  Graph g = Graph::FromEdges({0, 0, 0, 0}, {{0, 1}, {1, 2}, {2, 0}, {2, 3}});
  Condensation c(g);
  EXPECT_EQ(c.NumComponents(), 2u);
  EXPECT_EQ(c.Component(0), c.Component(1));
  EXPECT_EQ(c.Component(1), c.Component(2));
  EXPECT_NE(c.Component(0), c.Component(3));
  EXPECT_TRUE(c.IsCyclic(c.Component(0)));
  EXPECT_FALSE(c.IsCyclic(c.Component(3)));
  EXPECT_EQ(c.ComponentSize(c.Component(0)), 3u);
}

TEST(Condensation, SelfLoopIsCyclic) {
  Graph g = Graph::FromEdges({0, 0}, {{0, 0}, {0, 1}});
  Condensation c(g);
  EXPECT_TRUE(c.IsCyclic(c.Component(0)));
  EXPECT_FALSE(c.IsCyclic(c.Component(1)));
}

TEST(Condensation, ComponentIdsAreTopological) {
  Graph g = GeneratePowerLaw({.num_nodes = 500, .num_edges = 3000,
                              .num_labels = 3, .seed = 77});
  Condensation c(g);
  for (uint32_t comp = 0; comp < c.NumComponents(); ++comp) {
    for (uint32_t succ : c.Successors(comp)) {
      EXPECT_LT(comp, succ);
    }
  }
}

TEST(Condensation, DagGraphHasSingletonComponents) {
  Graph g = GenerateRandomDag({.num_nodes = 200, .num_edges = 800,
                               .num_labels = 3, .seed = 5});
  Condensation c(g);
  EXPECT_EQ(c.NumComponents(), g.NumNodes());
  for (uint32_t comp = 0; comp < c.NumComponents(); ++comp) {
    EXPECT_FALSE(c.IsCyclic(comp));
  }
}

// Property: two nodes are in the same SCC iff they reach each other.
class CondensationPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CondensationPropertyTest, MutualReachabilityDefinesComponents) {
  Graph g = GeneratePowerLaw({.num_nodes = 60, .num_edges = 180,
                              .num_labels = 3, .seed = GetParam()});
  Condensation c(g);
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (NodeId v = u + 1; v < g.NumNodes(); ++v) {
      bool mutual = SlowReaches(g, u, v) && SlowReaches(g, v, u);
      EXPECT_EQ(c.Component(u) == c.Component(v), mutual)
          << "u=" << u << " v=" << v;
    }
  }
  // Cyclic flag == node reaches itself.
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    EXPECT_EQ(c.IsCyclic(c.Component(u)), SlowReaches(g, u, u)) << u;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CondensationPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// Interval labels: the negative cut must never contradict true reachability,
// and the positive cut must never claim a false path.
class IntervalPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IntervalPropertyTest, CutsAreSound) {
  Graph g = GeneratePowerLaw({.num_nodes = 80, .num_edges = 240,
                              .num_labels = 3, .seed = GetParam() * 13});
  Condensation c(g);
  IntervalLabels labels(g, c);
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      if (c.Component(u) == c.Component(v)) continue;
      bool reaches = SlowReaches(g, u, v);
      if (labels.DefinitelyNotReaches(u, v)) {
        EXPECT_FALSE(reaches) << u << "->" << v;
      }
      if (labels.DefinitelyReaches(u, v)) {
        EXPECT_TRUE(reaches) << u << "->" << v;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalPropertyTest,
                         ::testing::Values(1, 2, 3, 4));

TEST(IntervalLabels, PositiveCutCoversTreePaths) {
  // A path graph: every ancestor/descendant pair is decided positively.
  Graph g = Graph::FromEdges({0, 0, 0, 0}, {{0, 1}, {1, 2}, {2, 3}});
  Condensation c(g);
  IntervalLabels labels(g, c);
  EXPECT_TRUE(labels.DefinitelyReaches(0, 3));
  EXPECT_TRUE(labels.DefinitelyReaches(1, 2));
  EXPECT_FALSE(labels.DefinitelyReaches(3, 0));
  EXPECT_TRUE(labels.DefinitelyNotReaches(3, 0) ||
              !labels.DefinitelyReaches(3, 0));
}

}  // namespace
}  // namespace rigpm
