#include "reach/reachability.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "reach/bfl_index.h"
#include "reach/transitive_closure.h"
#include "test_util.h"

namespace rigpm {
namespace {

using ::rigpm::testing::SlowReaches;

TEST(Reachability, KindNames) {
  EXPECT_STREQ(ReachKindName(ReachKind::kBfs), "BFS");
  EXPECT_STREQ(ReachKindName(ReachKind::kTransitiveClosure), "TC");
  EXPECT_STREQ(ReachKindName(ReachKind::kBfl), "BFL");
}

TEST(Reachability, PathSemantics) {
  // 0 -> 1 -> 2; reachability requires >= 1 edge, so 0 does not reach 0.
  Graph g = Graph::FromEdges({0, 0, 0}, {{0, 1}, {1, 2}});
  for (ReachKind kind :
       {ReachKind::kBfs, ReachKind::kTransitiveClosure, ReachKind::kBfl}) {
    auto idx = BuildReachabilityIndex(g, kind);
    EXPECT_TRUE(idx->Reaches(0, 1)) << idx->Name();
    EXPECT_TRUE(idx->Reaches(0, 2)) << idx->Name();
    EXPECT_TRUE(idx->Reaches(1, 2)) << idx->Name();
    EXPECT_FALSE(idx->Reaches(2, 0)) << idx->Name();
    EXPECT_FALSE(idx->Reaches(0, 0)) << idx->Name();
  }
}

TEST(Reachability, CycleMakesSelfReachable) {
  Graph g = Graph::FromEdges({0, 0, 0}, {{0, 1}, {1, 0}, {1, 2}});
  for (ReachKind kind :
       {ReachKind::kBfs, ReachKind::kTransitiveClosure, ReachKind::kBfl}) {
    auto idx = BuildReachabilityIndex(g, kind);
    EXPECT_TRUE(idx->Reaches(0, 0)) << idx->Name();
    EXPECT_TRUE(idx->Reaches(1, 1)) << idx->Name();
    EXPECT_FALSE(idx->Reaches(2, 2)) << idx->Name();
    EXPECT_TRUE(idx->Reaches(0, 2)) << idx->Name();
  }
}

TEST(Reachability, SelfLoop) {
  Graph g = Graph::FromEdges({0, 0}, {{0, 0}, {0, 1}});
  for (ReachKind kind :
       {ReachKind::kBfs, ReachKind::kTransitiveClosure, ReachKind::kBfl}) {
    auto idx = BuildReachabilityIndex(g, kind);
    EXPECT_TRUE(idx->Reaches(0, 0)) << idx->Name();
    EXPECT_FALSE(idx->Reaches(1, 1)) << idx->Name();
  }
}

struct ReachCase {
  const char* label;
  bool dag;
  uint32_t nodes;
  uint64_t edges;
  uint64_t seed;
};

class ReachPropertyTest : public ::testing::TestWithParam<ReachCase> {};

// Differential property: all three index kinds must agree with plain DFS on
// every node pair.
TEST_P(ReachPropertyTest, AllIndexesAgreeWithDfs) {
  const ReachCase& p = GetParam();
  GeneratorOptions opts{.num_nodes = p.nodes, .num_edges = p.edges,
                        .num_labels = 3, .seed = p.seed};
  Graph g = p.dag ? GenerateRandomDag(opts) : GeneratePowerLaw(opts);

  auto bfs = BuildReachabilityIndex(g, ReachKind::kBfs);
  auto tc = BuildReachabilityIndex(g, ReachKind::kTransitiveClosure);
  auto bfl = BuildReachabilityIndex(g, ReachKind::kBfl);

  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      bool expected = SlowReaches(g, u, v);
      ASSERT_EQ(bfs->Reaches(u, v), expected) << "BFS " << u << "->" << v;
      ASSERT_EQ(tc->Reaches(u, v), expected) << "TC " << u << "->" << v;
      ASSERT_EQ(bfl->Reaches(u, v), expected) << "BFL " << u << "->" << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Graphs, ReachPropertyTest,
    ::testing::Values(ReachCase{"dag_sparse", true, 60, 100, 1},
                      ReachCase{"dag_dense", true, 50, 400, 2},
                      ReachCase{"cyclic_sparse", false, 60, 120, 3},
                      ReachCase{"cyclic_dense", false, 50, 500, 4},
                      ReachCase{"deep_chain", true, 80, 90, 5}),
    [](const ::testing::TestParamInfo<ReachCase>& info) {
      return info.param.label;
    });

TEST(BflIndex, CutsDecideMostPairsOnDags) {
  Graph g = GenerateRandomDag({.num_nodes = 300, .num_edges = 900,
                               .num_labels = 3, .seed = 11});
  BflIndex bfl(g);
  uint64_t decided = 0, total = 0;
  for (NodeId u = 0; u < g.NumNodes(); u += 3) {
    for (NodeId v = 0; v < g.NumNodes(); v += 3) {
      bool unused = false;
      ++total;
      if (bfl.DecidedByCuts(u, v, &unused)) ++decided;
    }
  }
  // The labels should answer the vast majority of random pairs without DFS.
  EXPECT_GT(decided * 10, total * 9);
}

TEST(BflIndex, SmallBloomWidthStillExact) {
  // Narrow Bloom labels cause more collisions but never wrong answers.
  Graph g = GeneratePowerLaw({.num_nodes = 120, .num_edges = 500,
                              .num_labels = 3, .seed = 13});
  BflIndex narrow(g, /*bits=*/16);
  for (NodeId u = 0; u < g.NumNodes(); u += 2) {
    for (NodeId v = 0; v < g.NumNodes(); v += 2) {
      EXPECT_EQ(narrow.Reaches(u, v), SlowReaches(g, u, v))
          << u << "->" << v;
    }
  }
}

TEST(TransitiveClosure, ReachableNodeSetMatchesDfs) {
  Graph g = GeneratePowerLaw({.num_nodes = 70, .num_edges = 250,
                              .num_labels = 3, .seed = 23});
  TransitiveClosure tc(g);
  for (NodeId u = 0; u < g.NumNodes(); u += 5) {
    Bitmap set = tc.ReachableNodeSet(u, g);
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      EXPECT_EQ(set.Contains(v), SlowReaches(g, u, v)) << u << "->" << v;
    }
  }
}

TEST(Reachability, MemoryReporting) {
  Graph g = GenerateErdosRenyi({.num_nodes = 200, .num_edges = 600,
                                .num_labels = 3, .seed = 3});
  for (ReachKind kind :
       {ReachKind::kBfs, ReachKind::kTransitiveClosure, ReachKind::kBfl}) {
    auto idx = BuildReachabilityIndex(g, kind);
    EXPECT_GT(idx->MemoryBytes(), 0u) << idx->Name();
  }
}

}  // namespace
}  // namespace rigpm
