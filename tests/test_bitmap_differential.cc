// Randomized differential suite for the container-polymorphic bitmap
// (bitmap/bitmap.h): every operation is checked against a std::set<uint32_t>
// oracle across value distributions engineered to sit on the container-kind
// boundaries — the array->bitset promotion edge at kArrayCapacity, the
// run-vs-array and run-vs-bitset byte-cost thresholds, chunk edges (low bits
// 0x0000/0xFFFF), and cross-kind operand pairings. Operands are additionally
// exercised in their *borrowed* form (serialized to a file, mmap'd back with
// zero-copy enabled) so the lazy-decode read path and the owned path are
// differentially equivalent too, under both snapshot IO modes. A final group
// covers v2 -> v3 cross-version snapshot round trips.

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <random>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bitmap/bitmap.h"
#include "graph/generators.h"
#include "storage/snapshot.h"
#include "util/mapped_file.h"
#include "util/serde.h"

namespace rigpm {
namespace {

constexpr SnapshotIoMode kBothModes[] = {SnapshotIoMode::kMmap,
                                         SnapshotIoMode::kRead};

class TempFile {
 public:
  explicit TempFile(const std::string& stem) {
    static int counter = 0;
    path_ = (std::filesystem::temp_directory_path() /
             (stem + "." + std::to_string(::getpid()) + "." +
              std::to_string(counter++) + ".snap"))
                .string();
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// ------------------------------------------------------ value generators

// Distributions straddling every representation boundary. Values are the
// low 16 bits; Materialize() places them into one or more chunks.
enum class Dist {
  kEmpty,
  kSingleton,
  kChunkEdges,        // 0x0000, 0x0001, 0xFFFE, 0xFFFF
  kSparseArray,       // ~200 scattered values
  kArrayCapacity,     // exactly kArrayCapacity values (promotion edge)
  kArrayCapacityPlus, // kArrayCapacity + 1 (just past the edge)
  kDenseBitset,       // ~20000 scattered values
  kFullChunk,         // all 65536 values (single run)
  kFewLongRuns,       // 8 runs of ~2000 (deep in run territory)
  kRunThreshold,      // runs of 2: 4*runs == 2*card, exactly NOT smaller
  kRunJustUnder,      // runs of 3: 4*runs < 2*card, smallest as runs
  kAlternatingBits,   // every other value: worst case for runs, dense
};

constexpr Dist kAllDists[] = {
    Dist::kEmpty,          Dist::kSingleton,     Dist::kChunkEdges,
    Dist::kSparseArray,    Dist::kArrayCapacity, Dist::kArrayCapacityPlus,
    Dist::kDenseBitset,    Dist::kFullChunk,     Dist::kFewLongRuns,
    Dist::kRunThreshold,   Dist::kRunJustUnder,  Dist::kAlternatingBits,
};

const char* DistName(Dist d) {
  switch (d) {
    case Dist::kEmpty: return "empty";
    case Dist::kSingleton: return "singleton";
    case Dist::kChunkEdges: return "chunk_edges";
    case Dist::kSparseArray: return "sparse_array";
    case Dist::kArrayCapacity: return "array_capacity";
    case Dist::kArrayCapacityPlus: return "array_capacity_plus";
    case Dist::kDenseBitset: return "dense_bitset";
    case Dist::kFullChunk: return "full_chunk";
    case Dist::kFewLongRuns: return "few_long_runs";
    case Dist::kRunThreshold: return "run_threshold";
    case Dist::kRunJustUnder: return "run_just_under";
    case Dist::kAlternatingBits: return "alternating_bits";
  }
  return "?";
}

std::vector<uint16_t> LowBits(Dist d, std::mt19937_64& rng) {
  std::uniform_int_distribution<uint32_t> u16(0, 0xFFFF);
  std::set<uint16_t> out;
  switch (d) {
    case Dist::kEmpty:
      break;
    case Dist::kSingleton:
      out.insert(static_cast<uint16_t>(u16(rng)));
      break;
    case Dist::kChunkEdges:
      out = {0x0000, 0x0001, 0xFFFE, 0xFFFF};
      break;
    case Dist::kSparseArray:
      while (out.size() < 200) out.insert(static_cast<uint16_t>(u16(rng)));
      break;
    case Dist::kArrayCapacity:
      while (out.size() < Bitmap::kArrayCapacity) {
        out.insert(static_cast<uint16_t>(u16(rng)));
      }
      break;
    case Dist::kArrayCapacityPlus:
      while (out.size() < Bitmap::kArrayCapacity + 1) {
        out.insert(static_cast<uint16_t>(u16(rng)));
      }
      break;
    case Dist::kDenseBitset:
      while (out.size() < 20000) out.insert(static_cast<uint16_t>(u16(rng)));
      break;
    case Dist::kFullChunk:
      for (uint32_t v = 0; v <= 0xFFFF; ++v) {
        out.insert(static_cast<uint16_t>(v));
      }
      break;
    case Dist::kFewLongRuns:
      for (uint32_t r = 0; r < 8; ++r) {
        uint32_t start = r * 8000 + u16(rng) % 1000;
        for (uint32_t i = 0; i < 2000; ++i) {
          out.insert(static_cast<uint16_t>(start + i));
        }
      }
      break;
    case Dist::kRunThreshold:
      // Runs of length 2 spaced apart: 4 bytes/run vs 4 bytes of array —
      // run is NOT strictly smaller, so the encoder must keep the array.
      for (uint32_t r = 0; r < 100; ++r) {
        out.insert(static_cast<uint16_t>(r * 100));
        out.insert(static_cast<uint16_t>(r * 100 + 1));
      }
      break;
    case Dist::kRunJustUnder:
      // Runs of length 3: 4 bytes/run vs 6 bytes of array — run wins.
      for (uint32_t r = 0; r < 100; ++r) {
        out.insert(static_cast<uint16_t>(r * 100));
        out.insert(static_cast<uint16_t>(r * 100 + 1));
        out.insert(static_cast<uint16_t>(r * 100 + 2));
      }
      break;
    case Dist::kAlternatingBits:
      for (uint32_t v = 0; v <= 0xFFFF; v += 2) {
        out.insert(static_cast<uint16_t>(v));
      }
      break;
  }
  return {out.begin(), out.end()};
}

// Spreads one distribution across `chunks` chunks starting at `base_chunk`.
std::set<uint32_t> Materialize(Dist d, uint32_t base_chunk, uint32_t chunks,
                               std::mt19937_64& rng) {
  std::set<uint32_t> out;
  for (uint32_t c = 0; c < chunks; ++c) {
    for (uint16_t low : LowBits(d, rng)) {
      out.insert(((base_chunk + c) << 16) | low);
    }
  }
  return out;
}

Bitmap FromSet(const std::set<uint32_t>& s) {
  return Bitmap::FromSorted(std::vector<uint32_t>(s.begin(), s.end()));
}

// ------------------------------------------------------------ the oracle

void ExpectMatches(const Bitmap& got, const std::set<uint32_t>& want,
                   const std::string& what) {
  EXPECT_EQ(got.Cardinality(), want.size()) << what;
  EXPECT_EQ(got.ToVector(), std::vector<uint32_t>(want.begin(), want.end()))
      << what;
}

// Runs the full operation matrix of one (a, b) pair against the oracle.
void DifferentialCheck(const Bitmap& a, const Bitmap& b,
                       const std::set<uint32_t>& ra,
                       const std::set<uint32_t>& rb, const std::string& tag) {
  std::set<uint32_t> and_ref, or_ref, andnot_ref;
  std::set_intersection(ra.begin(), ra.end(), rb.begin(), rb.end(),
                        std::inserter(and_ref, and_ref.begin()));
  std::set_union(ra.begin(), ra.end(), rb.begin(), rb.end(),
                 std::inserter(or_ref, or_ref.begin()));
  std::set_difference(ra.begin(), ra.end(), rb.begin(), rb.end(),
                      std::inserter(andnot_ref, andnot_ref.begin()));

  ExpectMatches(a, ra, tag + " identity(a)");
  ExpectMatches(Bitmap::And(a, b), and_ref, tag + " and");
  ExpectMatches(Bitmap::Or(a, b), or_ref, tag + " or");
  ExpectMatches(Bitmap::AndNot(a, b), andnot_ref, tag + " andnot");
  ExpectMatches(Bitmap::AndNot(b, a),
                [&] {
                  std::set<uint32_t> r;
                  std::set_difference(rb.begin(), rb.end(), ra.begin(),
                                      ra.end(), std::inserter(r, r.begin()));
                  return r;
                }(),
                tag + " andnot_rev");
  EXPECT_EQ(a.Intersects(b), !and_ref.empty()) << tag;
  EXPECT_EQ(b.Intersects(a), !and_ref.empty()) << tag;
  EXPECT_EQ(a.IsSubsetOf(b),
            std::includes(rb.begin(), rb.end(), ra.begin(), ra.end()))
      << tag;
  EXPECT_EQ(a == b, ra == rb) << tag;
  if (!ra.empty()) EXPECT_EQ(a.First(), *ra.begin()) << tag;

  // In-place forms agree with the static ones.
  Bitmap c = a;
  c.AndWith(b);
  ExpectMatches(c, and_ref, tag + " andwith");
  c = a;
  c.OrWith(b);
  ExpectMatches(c, or_ref, tag + " orwith");
  c = a;
  c.AndNotWith(b);
  ExpectMatches(c, andnot_ref, tag + " andnotwith");

  // ForEach visits exactly the oracle's values in order.
  std::vector<uint32_t> seen;
  a.ForEach([&seen](uint32_t v) { seen.push_back(v); });
  EXPECT_EQ(seen, std::vector<uint32_t>(ra.begin(), ra.end())) << tag;
}

// ------------------------------------------- owned x owned, all pairings

TEST(BitmapDifferential, AllDistributionPairings) {
  std::mt19937_64 rng(2024);
  for (Dist da : kAllDists) {
    for (Dist db : kAllDists) {
      // Overlapping chunk ranges: a in chunks [0, 2), b in chunks [1, 3),
      // so the pair exercises disjoint-chunk and shared-chunk paths at once.
      std::set<uint32_t> ra = Materialize(da, 0, 2, rng);
      std::set<uint32_t> rb = Materialize(db, 1, 2, rng);
      Bitmap a = FromSet(ra);
      Bitmap b = FromSet(rb);
      DifferentialCheck(a, b, ra, rb,
                        std::string(DistName(da)) + " x " + DistName(db));
    }
  }
}

TEST(BitmapDifferential, RunOptimizedOperandsMatchOracle) {
  std::mt19937_64 rng(7);
  for (Dist da : {Dist::kFewLongRuns, Dist::kFullChunk, Dist::kRunJustUnder,
                  Dist::kAlternatingBits, Dist::kDenseBitset}) {
    for (Dist db : {Dist::kSparseArray, Dist::kFewLongRuns,
                    Dist::kDenseBitset, Dist::kChunkEdges}) {
      std::set<uint32_t> ra = Materialize(da, 0, 2, rng);
      std::set<uint32_t> rb = Materialize(db, 0, 2, rng);
      Bitmap a = FromSet(ra);
      Bitmap b = FromSet(rb);
      a.RunOptimize();
      b.RunOptimize();
      DifferentialCheck(a, b, ra, rb,
                        std::string("runopt ") + DistName(da) + " x " +
                            DistName(db));
    }
  }
}

// ------------------------------------------------- mutation at the edges

TEST(BitmapDifferential, MutationSequenceAcrossPromotionEdges) {
  // Random add/remove walk whose cardinality repeatedly crosses
  // kArrayCapacity, interleaved with RunOptimize so mutations also hit
  // run-encoded containers. One chunk so every crossing is this container's.
  std::mt19937_64 rng(99);
  std::uniform_int_distribution<uint32_t> val(0, 0xFFFF);
  std::uniform_int_distribution<int> coin(0, 99);
  Bitmap b;
  std::set<uint32_t> ref;
  // Bias phases: grow to ~1.5x capacity, shrink back, repeat.
  for (int phase = 0; phase < 4; ++phase) {
    const bool growing = phase % 2 == 0;
    const uint32_t steps = Bitmap::kArrayCapacity * 3 / 2;
    for (uint32_t i = 0; i < steps; ++i) {
      uint32_t v = val(rng);
      if (coin(rng) < (growing ? 85 : 15)) {
        b.Add(v);
        ref.insert(v);
      } else {
        b.Remove(v);
        ref.erase(v);
      }
      if (coin(rng) == 0) b.RunOptimize();
    }
    EXPECT_EQ(b.Cardinality(), ref.size()) << "phase " << phase;
  }
  ExpectMatches(b, ref, "mutation walk");
  // Spot-check membership after the walk.
  for (int i = 0; i < 1000; ++i) {
    uint32_t v = val(rng);
    EXPECT_EQ(b.Contains(v), ref.count(v) > 0) << v;
  }
}

TEST(BitmapDifferential, MutatingRunContainersDecodesCorrectly) {
  std::mt19937_64 rng(55);
  for (Dist d : {Dist::kFewLongRuns, Dist::kFullChunk, Dist::kRunJustUnder}) {
    std::set<uint32_t> ref = Materialize(d, 0, 1, rng);
    Bitmap b = FromSet(ref);
    b.RunOptimize();
    std::uniform_int_distribution<uint32_t> val(0, 0xFFFF);
    for (int i = 0; i < 2000; ++i) {
      uint32_t v = val(rng);
      if (i % 2 == 0) {
        b.Add(v);
        ref.insert(v);
      } else {
        b.Remove(v);
        ref.erase(v);
      }
    }
    ExpectMatches(b, ref, std::string("mutate-after-runopt ") + DistName(d));
  }
}

// ------------------------------------------ borrowed (mmap'd) operands

// Serializes `b`, writes the bytes to a file, maps it, and deserializes
// with zero-copy enabled — the returned bitmap borrows its array/run
// payloads from the mapping. `keep_alive` holds the mapping.
Bitmap BorrowedCopy(const Bitmap& b, const TempFile& file,
                    std::shared_ptr<MappedFile>* keep_alive) {
  ByteSink sink;
  b.Serialize(sink);
  {
    std::ofstream out(file.path(), std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(sink.data().data()),
              static_cast<std::streamsize>(sink.size()));
  }
  std::string error;
  *keep_alive = MappedFile::Open(file.path(), &error);
  EXPECT_NE(*keep_alive, nullptr) << error;
  ByteSource src((*keep_alive)->data(), (*keep_alive)->size());
  src.EnableZeroCopy(*keep_alive);
  Bitmap out = Bitmap::Deserialize(src);
  EXPECT_TRUE(src.ok()) << src.error();
  return out;
}

TEST(BitmapDifferential, BorrowedOperandsBehaveLikeOwned) {
  std::mt19937_64 rng(31337);
  for (Dist da : {Dist::kSparseArray, Dist::kFewLongRuns, Dist::kDenseBitset,
                  Dist::kFullChunk}) {
    for (Dist db : {Dist::kSparseArray, Dist::kFewLongRuns,
                    Dist::kAlternatingBits}) {
      std::set<uint32_t> ra = Materialize(da, 0, 2, rng);
      std::set<uint32_t> rb = Materialize(db, 1, 2, rng);
      Bitmap owned_a = FromSet(ra);
      Bitmap owned_b = FromSet(rb);
      owned_a.RunOptimize();
      owned_b.RunOptimize();
      TempFile fa("rigpm_diff_a"), fb("rigpm_diff_b");
      std::shared_ptr<MappedFile> ma, mb;
      Bitmap borrowed_a = BorrowedCopy(owned_a, fa, &ma);
      Bitmap borrowed_b = BorrowedCopy(owned_b, fb, &mb);
      std::string tag = std::string("borrowed ") + DistName(da) + " x " +
                        DistName(db);
      DifferentialCheck(borrowed_a, borrowed_b, ra, rb, tag);
      // Mixed ownership pairings.
      DifferentialCheck(borrowed_a, owned_b, ra, rb, tag + " (a borrowed)");
      DifferentialCheck(owned_a, borrowed_b, ra, rb, tag + " (b borrowed)");
      EXPECT_EQ(borrowed_a, owned_a) << tag;
    }
  }
}

TEST(BitmapDifferential, BorrowedContainersCostNoOwnedHeapUntilMutated) {
  // The lazy-decode accounting contract (daemon RSS): a bitmap whose
  // array/run payloads borrow from a mapping owns only its container table;
  // the first mutating touch of a container materializes a private copy and
  // the owned footprint grows.
  std::mt19937_64 rng(4242);
  std::set<uint32_t> ref = Materialize(Dist::kFullChunk, 0, 4, rng);
  Bitmap owned = FromSet(ref);
  owned.RunOptimize();
  TempFile file("rigpm_diff_borrow");
  std::shared_ptr<MappedFile> mapping;
  Bitmap borrowed = BorrowedCopy(owned, file, &mapping);

  BitmapContainerStats s;
  borrowed.AccumulateStats(&s);
  EXPECT_EQ(s.borrowed_containers, borrowed.ContainerCount());
  const size_t before = borrowed.MemoryBytes();
  // Borrowed encoded payloads are excluded from the owned footprint: four
  // full-chunk run containers decode to 4 x 8 KiB, far above what the
  // container table itself costs.
  EXPECT_LT(before, 4096u);

  // Reads do not decode.
  EXPECT_TRUE(borrowed.Contains(*ref.begin()));
  EXPECT_FALSE(borrowed.Contains(4u << 16));
  borrowed.Add(100);           // already present: still no decode
  EXPECT_EQ(borrowed.MemoryBytes(), before);

  borrowed.Remove(100);        // real mutation: private decoded copy
  ref.erase(100);
  BitmapContainerStats after_stats;
  borrowed.AccumulateStats(&after_stats);
  EXPECT_EQ(after_stats.borrowed_containers, borrowed.ContainerCount() - 1);
  EXPECT_GT(borrowed.MemoryBytes(), before);
  ExpectMatches(borrowed, ref, "borrowed after mutation");
}

// ------------------------------------------- v2 -> v3 cross-version trips

TEST(BitmapDifferential, CrossVersionGraphRoundTrips) {
  // A graph written in the v2 format (no run containers) must load and
  // re-save as v3 byte-identically in content, and vice versa, under both
  // IO modes. Generated graphs give CSR bitmaps of every container kind.
  GeneratorOptions gopts;
  gopts.num_nodes = 4000;
  gopts.num_edges = 60000;
  gopts.num_labels = 3;
  gopts.seed = 11;
  Graph g = GenerateErdosRenyi(gopts);

  TempFile v2_file("rigpm_diff_v2"), v3_file("rigpm_diff_v3");
  std::string error;
  // v2: pad arrays, no run containers, version-2 header.
  ByteSink v2_sink(/*pad_arrays=*/true, /*encode_runs=*/false);
  g.Serialize(v2_sink);
  ASSERT_TRUE(WriteSnapshotFile(v2_file.path(), SnapshotKind::kGraph, v2_sink,
                                &error, /*version=*/2))
      << error;
  ASSERT_TRUE(SaveGraphSnapshot(g, v3_file.path(), &error)) << error;

  // v3 must not be larger than its v2 twin.
  EXPECT_LE(std::filesystem::file_size(v3_file.path()),
            std::filesystem::file_size(v2_file.path()));

  for (SnapshotIoMode mode : kBothModes) {
    std::optional<Graph> from_v2 =
        LoadGraphSnapshot(v2_file.path(), {.io_mode = mode}, &error);
    ASSERT_TRUE(from_v2.has_value()) << error;
    std::optional<Graph> from_v3 =
        LoadGraphSnapshot(v3_file.path(), {.io_mode = mode}, &error);
    ASSERT_TRUE(from_v3.has_value()) << error;

    ASSERT_EQ(from_v2->NumNodes(), g.NumNodes());
    ASSERT_EQ(from_v3->NumNodes(), g.NumNodes());
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      EXPECT_EQ(from_v2->OutBitmap(v), g.OutBitmap(v));
      EXPECT_EQ(from_v3->OutBitmap(v), g.OutBitmap(v));
      EXPECT_EQ(from_v2->InBitmap(v), from_v3->InBitmap(v));
    }
    for (LabelId l = 0; l < g.NumLabels(); ++l) {
      EXPECT_EQ(from_v2->LabelBitmap(l), from_v3->LabelBitmap(l));
    }

    // Migration loop: v2 -> load -> save (v3 default) -> load.
    TempFile resaved("rigpm_diff_resave");
    ASSERT_TRUE(SaveGraphSnapshot(*from_v2, resaved.path(), &error)) << error;
    std::optional<Graph> migrated =
        LoadGraphSnapshot(resaved.path(), {.io_mode = mode}, &error);
    ASSERT_TRUE(migrated.has_value()) << error;
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      EXPECT_EQ(migrated->OutBitmap(v), g.OutBitmap(v));
    }
  }
}

TEST(BitmapDifferential, BitmapLevelCrossVersionRoundTrips) {
  // Every distribution survives serialize(encode_runs=false) -> reader with
  // runs disallowed (the v2 pipeline) and native v3 serialization alike.
  std::mt19937_64 rng(606);
  for (Dist d : kAllDists) {
    std::set<uint32_t> ref = Materialize(d, 0, 3, rng);
    Bitmap b = FromSet(ref);
    b.RunOptimize();

    ByteSink v2_sink(/*pad_arrays=*/true, /*encode_runs=*/false);
    b.Serialize(v2_sink);
    ByteSource v2_src(v2_sink.data().data(), v2_sink.size());
    v2_src.DisallowRunContainers();
    Bitmap from_v2 = Bitmap::Deserialize(v2_src);
    EXPECT_TRUE(v2_src.ok()) << DistName(d) << ": " << v2_src.error();
    ExpectMatches(from_v2, ref, std::string("v2 trip ") + DistName(d));

    ByteSink v3_sink;
    b.Serialize(v3_sink);
    ByteSource v3_src(v3_sink.data().data(), v3_sink.size());
    Bitmap from_v3 = Bitmap::Deserialize(v3_src);
    EXPECT_TRUE(v3_src.ok()) << DistName(d) << ": " << v3_src.error();
    ExpectMatches(from_v3, ref, std::string("v3 trip ") + DistName(d));
    EXPECT_LE(v3_sink.size(), v2_sink.size()) << DistName(d);
    EXPECT_EQ(from_v2, from_v3) << DistName(d);
  }
}

}  // namespace
}  // namespace rigpm
