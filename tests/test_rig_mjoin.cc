#include <gtest/gtest.h>

#include <set>

#include "enumerate/mjoin.h"
#include "graph/generators.h"
#include "order/search_order.h"
#include "query/query_generator.h"
#include "rig/rig_builder.h"
#include "test_util.h"

namespace rigpm {
namespace {

using ::rigpm::testing::BruteForceAnswer;
using ::rigpm::testing::PaperExample;

class RigFixture : public ::testing::Test {
 protected:
  RigFixture()
      : graph_(PaperExample::MakeGraph()),
        query_(PaperExample::MakeQuery()),
        reach_(BuildReachabilityIndex(graph_, ReachKind::kBfl)),
        ctx_(graph_, *reach_),
        cond_(graph_),
        intervals_(graph_, cond_) {}

  Graph graph_;
  PatternQuery query_;
  std::unique_ptr<ReachabilityIndex> reach_;
  MatchContext ctx_;
  Condensation cond_;
  IntervalLabels intervals_;
};

// The refined RIG of Fig. 2(e): node sets equal FB, and the (B,C) edge set
// contains the redundant pair (b2, c1) that only MJoin filters out.
TEST_F(RigFixture, PaperExampleRefinedRig) {
  Rig rig = BuildRigFromMatchSets(ctx_, query_, RigBuildOptions{}, &intervals_);
  EXPECT_EQ(rig.Cos(0).ToVector(),
            (std::vector<NodeId>{PaperExample::a1, PaperExample::a2}));
  EXPECT_EQ(rig.Cos(1).ToVector(),
            (std::vector<NodeId>{PaperExample::b0, PaperExample::b2}));
  EXPECT_EQ(rig.Cos(2).ToVector(),
            (std::vector<NodeId>{PaperExample::c0, PaperExample::c1,
                                 PaperExample::c2}));

  // Edge (A,B): exactly the occurrence pairs.
  EXPECT_EQ(rig.Forward(0, PaperExample::a1).ToVector(),
            (std::vector<NodeId>{PaperExample::b0}));
  EXPECT_EQ(rig.Forward(0, PaperExample::a2).ToVector(),
            (std::vector<NodeId>{PaperExample::b2}));
  // Edge (B,C): b2's adjacency includes the redundant c1.
  EXPECT_EQ(rig.Forward(2, PaperExample::b2).ToVector(),
            (std::vector<NodeId>{PaperExample::c0, PaperExample::c1,
                                 PaperExample::c2}));
  EXPECT_EQ(rig.EdgeCount(0), 2u);
  EXPECT_EQ(rig.EdgeCount(2), 5u);  // (b0,c0),(b0,c1),(b2,c0),(b2,c1),(b2,c2)
  EXPECT_EQ(rig.TotalNodes(), 7u);
  EXPECT_GT(rig.MemoryBytes(), 0u);
  EXPECT_FALSE(rig.AnyEmpty());
}

// Proposition 4.1 (losslessness): every homomorphism edge image is a RIG
// edge, in both the refined and the match RIG.
TEST_F(RigFixture, Proposition41Losslessness) {
  RigBuildOptions match_only;
  match_only.skip_simulation = true;  // match RIG G^m_Q
  Rig match_rig = BuildRigFromMatchSets(ctx_, query_, match_only);
  Rig refined = BuildRigFromMatchSets(ctx_, query_, RigBuildOptions{});

  auto answer = BruteForceAnswer(graph_, query_);
  ASSERT_FALSE(answer.empty());
  for (const auto& h : answer) {
    for (QueryEdgeId e = 0; e < query_.NumEdges(); ++e) {
      const QueryEdge& edge = query_.Edge(e);
      EXPECT_TRUE(match_rig.Forward(e, h[edge.from]).Contains(h[edge.to]));
      EXPECT_TRUE(refined.Forward(e, h[edge.from]).Contains(h[edge.to]));
      EXPECT_TRUE(refined.Backward(e, h[edge.to]).Contains(h[edge.from]));
    }
  }
  // The refined RIG is no larger than the match RIG.
  EXPECT_LE(refined.Size(), match_rig.Size());
}

TEST_F(RigFixture, MJoinProducesPaperAnswer) {
  Rig rig = BuildRigFromMatchSets(ctx_, query_, RigBuildOptions{}, &intervals_);
  std::vector<QueryNodeId> order =
      ComputeSearchOrder(query_, rig, OrderStrategy::kJO);
  MJoinStats stats;
  auto tuples = MJoinCollect(query_, rig, order, MJoinOptions{}, &stats);
  std::set<std::vector<NodeId>> got(tuples.begin(), tuples.end());
  EXPECT_EQ(got, PaperExample::ExpectedAnswer());
  EXPECT_EQ(stats.occurrences, 4u);
  EXPECT_GT(stats.intersections, 0u);
}

TEST_F(RigFixture, MJoinAnswerIndependentOfOrderStrategy) {
  Rig rig = BuildRigFromMatchSets(ctx_, query_, RigBuildOptions{}, &intervals_);
  std::set<std::vector<NodeId>> expected = PaperExample::ExpectedAnswer();
  for (OrderStrategy s :
       {OrderStrategy::kJO, OrderStrategy::kRI, OrderStrategy::kBJ}) {
    auto order = ComputeSearchOrder(query_, rig, s);
    auto tuples = MJoinCollect(query_, rig, order);
    EXPECT_EQ(std::set<std::vector<NodeId>>(tuples.begin(), tuples.end()),
              expected)
        << OrderStrategyName(s);
  }
}

TEST_F(RigFixture, MJoinLimitStopsEarly) {
  Rig rig = BuildRigFromMatchSets(ctx_, query_, RigBuildOptions{});
  std::vector<QueryNodeId> order =
      ComputeSearchOrder(query_, rig, OrderStrategy::kJO);
  MJoinOptions opts;
  opts.limit = 2;
  EXPECT_EQ(MJoinCount(query_, rig, order, opts), 2u);
}

TEST_F(RigFixture, MJoinSinkCanAbort) {
  Rig rig = BuildRigFromMatchSets(ctx_, query_, RigBuildOptions{});
  std::vector<QueryNodeId> order =
      ComputeSearchOrder(query_, rig, OrderStrategy::kJO);
  uint64_t seen = 0;
  MJoin(query_, rig, order, [&seen](const Occurrence&) {
    ++seen;
    return false;  // stop immediately
  });
  EXPECT_EQ(seen, 1u);
}

TEST_F(RigFixture, EarlyTerminationMatchesPlainExpansion) {
  RigBuildOptions with_cutoff;
  with_cutoff.early_termination = true;
  RigBuildOptions without;
  without.early_termination = false;
  Rig a = BuildRigFromMatchSets(ctx_, query_, with_cutoff, &intervals_);
  Rig b = BuildRigFromMatchSets(ctx_, query_, without, nullptr);
  EXPECT_EQ(a.TotalEdges(), b.TotalEdges());
  for (QueryEdgeId e = 0; e < query_.NumEdges(); ++e) {
    EXPECT_EQ(a.EdgeCount(e), b.EdgeCount(e)) << e;
  }
}

TEST(Rig, EmptyCosShortCircuitsEverything) {
  // Query label 3 does not exist in the data.
  Graph g = Graph::FromEdges({0, 1}, {{0, 1}});
  auto reach = BuildReachabilityIndex(g, ReachKind::kBfl);
  MatchContext ctx(g, *reach);
  PatternQuery q = PatternQuery::FromParts(
      {0, 3}, {{0, 1, EdgeKind::kChild}});
  RigBuildStats stats;
  Rig rig = BuildRigFromMatchSets(ctx, q, RigBuildOptions{}, nullptr, &stats);
  EXPECT_TRUE(rig.AnyEmpty());
  EXPECT_EQ(rig.TotalEdges(), 0u);
  EXPECT_EQ(stats.expand_pair_checks, 0u);  // expansion was skipped
  std::vector<QueryNodeId> order = {0, 1};
  EXPECT_EQ(MJoinCount(q, rig, order), 0u);
}

TEST(Rig, PruneIsolatedRemovesDeadCandidates) {
  Graph g = PaperExample::MakeGraph();
  auto reach = BuildReachabilityIndex(g, ReachKind::kBfl);
  MatchContext ctx(g, *reach);
  PatternQuery q = PaperExample::MakeQuery();
  // Build the *match* RIG (no simulation): it contains candidates like a0
  // that have no (A,B) edge; prune_isolated must remove them.
  RigBuildOptions opts;
  opts.skip_simulation = true;
  opts.prune_isolated = true;
  Rig rig = BuildRigFromMatchSets(ctx, q, opts);
  EXPECT_FALSE(rig.Cos(0).Contains(PaperExample::a0));
  EXPECT_FALSE(rig.Cos(1).Contains(PaperExample::b1));
  EXPECT_FALSE(rig.Cos(1).Contains(PaperExample::b3));
}

// --- Search orders.

TEST_F(RigFixture, OrdersArePermutationsWithConnectedPrefixes) {
  Rig rig = BuildRigFromMatchSets(ctx_, query_, RigBuildOptions{});
  for (OrderStrategy s :
       {OrderStrategy::kJO, OrderStrategy::kRI, OrderStrategy::kBJ}) {
    auto order = ComputeSearchOrder(query_, rig, s);
    ASSERT_EQ(order.size(), query_.NumNodes()) << OrderStrategyName(s);
    std::set<QueryNodeId> seen;
    for (uint32_t i = 0; i < order.size(); ++i) {
      EXPECT_TRUE(seen.insert(order[i]).second);
      if (i > 0) {
        bool connected = false;
        for (uint32_t j = 0; j < i && !connected; ++j) {
          connected = query_.HasEdgeBetween(order[i], order[j]) ||
                      query_.HasEdgeBetween(order[j], order[i]);
        }
        EXPECT_TRUE(connected)
            << OrderStrategyName(s) << " position " << i;
      }
    }
  }
}

TEST_F(RigFixture, JoStartsAtSmallestCandidateSet) {
  Rig rig = BuildRigFromMatchSets(ctx_, query_, RigBuildOptions{});
  auto order = ComputeSearchOrder(query_, rig, OrderStrategy::kJO);
  // cos(A) and cos(B) both have 2 nodes; cos(C) has 3. The start node must
  // be one of the minimum-cardinality ones.
  EXPECT_LE(rig.Cos(order[0]).Cardinality(), rig.Cos(order[1]).Cardinality());
  EXPECT_LE(rig.Cos(order[0]).Cardinality(), rig.Cos(order[2]).Cardinality());
}

TEST_F(RigFixture, BjReportsPlanCount) {
  Rig rig = BuildRigFromMatchSets(ctx_, query_, RigBuildOptions{});
  OrderStats stats;
  ComputeSearchOrder(query_, rig, OrderStrategy::kBJ, &stats);
  EXPECT_GT(stats.plans_considered, 0u);
  EXPECT_FALSE(stats.fell_back_to_jo);
}

TEST(SearchOrder, BjFallsBackOnHugeQueries) {
  // 24-node path query exceeds the BJ subset-DP bound.
  std::vector<LabelId> labels(24, 0);
  std::vector<QueryEdge> edges;
  for (QueryNodeId i = 0; i + 1 < 24; ++i) {
    edges.push_back({i, i + 1, EdgeKind::kChild});
  }
  PatternQuery q = PatternQuery::FromParts(labels, edges);
  Graph g = Graph::FromEdges({0, 0}, {{0, 1}});
  auto reach = BuildReachabilityIndex(g, ReachKind::kBfl);
  MatchContext ctx(g, *reach);
  Rig rig = BuildRigFromMatchSets(ctx, q, RigBuildOptions{});
  OrderStats stats;
  auto order = ComputeSearchOrder(q, rig, OrderStrategy::kBJ, &stats);
  EXPECT_TRUE(stats.fell_back_to_jo);
  EXPECT_EQ(order.size(), 24u);
}

// ---------------------------------------------------------------------------
// Differential property: RIG + MJoin equals brute force on random inputs.
// ---------------------------------------------------------------------------

struct EndToEndCase {
  const char* label;
  uint64_t seed;
  uint32_t q_nodes;
  uint32_t q_edges;
  bool dag_data;
};

class RigMJoinPropertyTest : public ::testing::TestWithParam<EndToEndCase> {};

TEST_P(RigMJoinPropertyTest, MatchesBruteForce) {
  const EndToEndCase& p = GetParam();
  GeneratorOptions gopts{.num_nodes = 50, .num_edges = 170, .num_labels = 4,
                         .seed = p.seed};
  Graph g = p.dag_data ? GenerateRandomDag(gopts) : GeneratePowerLaw(gopts);
  auto reach = BuildReachabilityIndex(g, ReachKind::kBfl);
  MatchContext ctx(g, *reach);
  Condensation cond(g);
  IntervalLabels intervals(g, cond);

  PatternQuery q = GenerateRandomQuery({.num_nodes = p.q_nodes,
                                        .num_edges = p.q_edges,
                                        .num_labels = 4,
                                        .variant = QueryVariant::kHybrid,
                                        .seed = p.seed * 31 + 5});
  Rig rig = BuildRigFromMatchSets(ctx, q, RigBuildOptions{}, &intervals);
  auto order = ComputeSearchOrder(q, rig, OrderStrategy::kJO);
  auto tuples = MJoinCollect(q, rig, order);
  std::set<std::vector<NodeId>> got(tuples.begin(), tuples.end());
  EXPECT_EQ(got.size(), tuples.size()) << "MJoin produced duplicates";
  EXPECT_EQ(got, BruteForceAnswer(g, q));
}

INSTANTIATE_TEST_SUITE_P(
    Cases, RigMJoinPropertyTest,
    ::testing::Values(EndToEndCase{"tree4", 1, 4, 3, true},
                      EndToEndCase{"diamond", 2, 4, 4, false},
                      EndToEndCase{"five_dense", 3, 5, 8, false},
                      EndToEndCase{"six_sparse", 4, 6, 6, true},
                      EndToEndCase{"clique4", 5, 4, 6, false},
                      EndToEndCase{"seven", 6, 7, 9, true},
                      EndToEndCase{"another", 7, 5, 6, false},
                      EndToEndCase{"eighth", 8, 6, 9, false}),
    [](const ::testing::TestParamInfo<EndToEndCase>& info) {
      return info.param.label;
    });

}  // namespace
}  // namespace rigpm
