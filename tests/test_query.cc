#include "query/pattern_query.h"

#include <gtest/gtest.h>

#include "query/dag_decomposition.h"
#include "query/query_generator.h"
#include "query/query_io.h"
#include "query/query_templates.h"
#include "query/transitive_reduction.h"
#include "test_util.h"

namespace rigpm {
namespace {

PatternQuery Diamond() {
  // 0 -> 1 -> 3, 0 -> 2 -> 3 (one undirected cycle).
  return PatternQuery::FromParts({0, 1, 2, 3},
                                 {{0, 1, EdgeKind::kChild},
                                  {0, 2, EdgeKind::kDescendant},
                                  {1, 3, EdgeKind::kChild},
                                  {2, 3, EdgeKind::kChild}});
}

TEST(PatternQuery, BasicAccessors) {
  PatternQuery q = Diamond();
  EXPECT_EQ(q.NumNodes(), 4u);
  EXPECT_EQ(q.NumEdges(), 4u);
  EXPECT_EQ(q.NumChildEdges(), 3u);
  EXPECT_EQ(q.NumDescendantEdges(), 1u);
  EXPECT_EQ(q.Label(2), 2u);
  EXPECT_EQ(q.OutDegree(0), 2u);
  EXPECT_EQ(q.InDegree(3), 2u);
  EXPECT_EQ(q.Degree(0), 2u);
  EXPECT_TRUE(q.HasEdgeBetween(0, 1));
  EXPECT_FALSE(q.HasEdgeBetween(1, 0));
}

TEST(PatternQuery, IncidenceListsConsistent) {
  PatternQuery q = Diamond();
  for (QueryNodeId v = 0; v < q.NumNodes(); ++v) {
    for (QueryEdgeId e : q.OutEdges(v)) EXPECT_EQ(q.Edge(e).from, v);
    for (QueryEdgeId e : q.InEdges(v)) EXPECT_EQ(q.Edge(e).to, v);
  }
}

TEST(PatternQuery, ChildAndDescendantBetweenSamePairCoexist) {
  PatternQuery q = PatternQuery::FromParts(
      {0, 1},
      {{0, 1, EdgeKind::kChild}, {0, 1, EdgeKind::kDescendant}});
  EXPECT_EQ(q.NumEdges(), 2u);
}

TEST(PatternQuery, ConnectivityAndDagChecks) {
  PatternQuery q = Diamond();
  EXPECT_TRUE(q.IsConnected());
  std::vector<QueryNodeId> topo;
  EXPECT_TRUE(q.IsDag(&topo));
  EXPECT_EQ(topo.size(), 4u);
  EXPECT_EQ(topo.front(), 0u);
  EXPECT_EQ(topo.back(), 3u);
  EXPECT_FALSE(q.IsUndirectedAcyclic());  // diamond has an undirected cycle

  PatternQuery disconnected =
      PatternQuery::FromParts({0, 1, 2}, {{0, 1, EdgeKind::kChild}});
  EXPECT_FALSE(disconnected.IsConnected());

  PatternQuery cyclic = PatternQuery::FromParts(
      {0, 1}, {{0, 1, EdgeKind::kChild}, {1, 0, EdgeKind::kChild}});
  EXPECT_FALSE(cyclic.IsDag());

  PatternQuery tree = PatternQuery::FromParts(
      {0, 1, 2}, {{0, 1, EdgeKind::kChild}, {0, 2, EdgeKind::kDescendant}});
  EXPECT_TRUE(tree.IsUndirectedAcyclic());
}

TEST(QueryIo, RoundTrip) {
  PatternQuery q = Diamond();
  std::string text = QueryToString(q);
  std::string error;
  auto parsed = ParseQuery(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(*parsed, q);
}

TEST(QueryIo, ParsesInlineText) {
  auto q = ParseQuery("q 3\nv 0 5\nv 1 6\nv 2 7\ne 0 1 c\ne 1 2 d\n");
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->NumNodes(), 3u);
  EXPECT_EQ(q->Edge(0).kind, EdgeKind::kChild);
  EXPECT_EQ(q->Edge(1).kind, EdgeKind::kDescendant);
}

TEST(QueryIo, RejectsBadEdgeKind) {
  std::string error;
  EXPECT_FALSE(
      ParseQuery("q 2\nv 0 0\nv 1 1\ne 0 1 x\n", &error).has_value());
}

// --- Transitive closure / reduction (Section 3, Fig. 3).

TEST(TransitiveReduction, Fig3Example) {
  // Q: A -> B -> C (descendant edges) plus transitive edge (A, C).
  PatternQuery q = PatternQuery::FromParts(
      {0, 1, 2},
      {{0, 1, EdgeKind::kDescendant},
       {1, 2, EdgeKind::kDescendant},
       {0, 2, EdgeKind::kDescendant}});
  PatternQuery reduced = QueryTransitiveReduction(q);
  EXPECT_EQ(reduced.NumEdges(), 2u);
  EXPECT_TRUE(reduced.HasEdgeBetween(0, 1));
  EXPECT_TRUE(reduced.HasEdgeBetween(1, 2));
  EXPECT_FALSE(reduced.HasEdgeBetween(0, 2));
}

TEST(TransitiveReduction, ChildPathAlsoSubsumesDescendantEdge) {
  // IR1: a child path implies reachability, so (A, C) is transitive even
  // though the covering path uses child edges.
  PatternQuery q = PatternQuery::FromParts(
      {0, 1, 2},
      {{0, 1, EdgeKind::kChild},
       {1, 2, EdgeKind::kChild},
       {0, 2, EdgeKind::kDescendant}});
  PatternQuery reduced = QueryTransitiveReduction(q);
  EXPECT_EQ(reduced.NumEdges(), 2u);
  EXPECT_EQ(reduced.NumChildEdges(), 2u);
}

TEST(TransitiveReduction, ChildEdgesNeverRemoved) {
  // A child edge parallel to a path is NOT redundant (it demands a direct
  // edge); only the descendant duplicate goes.
  PatternQuery q = PatternQuery::FromParts(
      {0, 1},
      {{0, 1, EdgeKind::kChild}, {0, 1, EdgeKind::kDescendant}});
  PatternQuery reduced = QueryTransitiveReduction(q);
  EXPECT_EQ(reduced.NumEdges(), 1u);
  EXPECT_EQ(reduced.Edge(0).kind, EdgeKind::kChild);
}

TEST(TransitiveReduction, IrreducibleQueryUnchanged) {
  PatternQuery q = Diamond();
  PatternQuery reduced = QueryTransitiveReduction(q);
  EXPECT_EQ(reduced, q);
}

TEST(TransitiveClosureOfQuery, AddsAllImpliedEdges) {
  PatternQuery q = PatternQuery::FromParts(
      {0, 1, 2},
      {{0, 1, EdgeKind::kChild}, {1, 2, EdgeKind::kDescendant}});
  PatternQuery closure = QueryTransitiveClosure(q);
  // Child edges kept + descendant edges for all reachable pairs:
  // (0,1), (1,2), (0,2).
  EXPECT_EQ(closure.NumChildEdges(), 1u);
  EXPECT_EQ(closure.NumDescendantEdges(), 3u);
  EXPECT_TRUE(closure.HasEdgeBetween(0, 2));
}

TEST(QueryReaches, SkipsTheExcludedEdge) {
  PatternQuery q = PatternQuery::FromParts(
      {0, 1}, {{0, 1, EdgeKind::kDescendant}});
  EXPECT_TRUE(QueryReaches(q, 0, 1, q.NumEdges()));
  EXPECT_FALSE(QueryReaches(q, 0, 1, 0));  // the only path is the edge itself
}

// --- DAG + Δ decomposition.

TEST(DagDecomposition, DagQueryHasNoBackEdges) {
  DagDecomposition d = DecomposeDag(Diamond());
  EXPECT_TRUE(d.IsDagQuery());
  EXPECT_EQ(d.dag_edges.size(), 4u);
  EXPECT_EQ(d.topo_order.size(), 4u);
}

TEST(DagDecomposition, CycleYieldsBackEdge) {
  PatternQuery q = PatternQuery::FromParts(
      {0, 1, 2},
      {{0, 1, EdgeKind::kChild},
       {1, 2, EdgeKind::kChild},
       {2, 0, EdgeKind::kDescendant}});
  DagDecomposition d = DecomposeDag(q);
  EXPECT_EQ(d.back_edges.size(), 1u);
  EXPECT_EQ(d.dag_edges.size(), 2u);
  // The topo order must respect all DAG edges.
  std::vector<uint32_t> pos(q.NumNodes());
  for (uint32_t i = 0; i < d.topo_order.size(); ++i) pos[d.topo_order[i]] = i;
  for (QueryEdgeId e : d.dag_edges) {
    EXPECT_LT(pos[q.Edge(e).from], pos[q.Edge(e).to]);
  }
}

// --- Templates.

TEST(Templates, TwentyTemplatesWithExpectedClasses) {
  const auto& templates = HQueryTemplates();
  ASSERT_EQ(templates.size(), 20u);
  for (uint32_t i = 0; i < 20; ++i) {
    EXPECT_EQ(templates[i].name, "HQ" + std::to_string(i));
  }
  EXPECT_EQ(TemplateByName("HQ2").cls, PatternClass::kAcyclic);
  EXPECT_EQ(TemplateByName("HQ8").cls, PatternClass::kCyclic);
  EXPECT_EQ(TemplateByName("HQ19").cls, PatternClass::kClique);
  EXPECT_EQ(TemplateByName("HQ19").num_nodes, 7u);
  EXPECT_EQ(TemplateByName("HQ19").edges.size(), 21u);  // K7
  EXPECT_EQ(TemplateByName("HQ14").cls, PatternClass::kCombo);
}

class TemplateInstantiationTest
    : public ::testing::TestWithParam<QueryVariant> {};

TEST_P(TemplateInstantiationTest, InstancesAreWellFormed) {
  for (const QueryTemplate& tpl : HQueryTemplates()) {
    PatternQuery q = InstantiateTemplate(tpl, GetParam(), /*num_labels=*/10,
                                         /*seed=*/5);
    EXPECT_EQ(q.NumNodes(), tpl.num_nodes) << tpl.name;
    EXPECT_EQ(q.NumEdges(), tpl.edges.size()) << tpl.name;
    EXPECT_TRUE(q.IsConnected()) << tpl.name;
    EXPECT_TRUE(q.IsDag()) << tpl.name;
    switch (GetParam()) {
      case QueryVariant::kChildOnly:
        EXPECT_EQ(q.NumDescendantEdges(), 0u) << tpl.name;
        break;
      case QueryVariant::kDescendantOnly:
        EXPECT_EQ(q.NumChildEdges(), 0u) << tpl.name;
        break;
      case QueryVariant::kHybrid:
        break;  // mixed by construction
    }
    // Structural class invariants.
    if (tpl.cls == PatternClass::kAcyclic) {
      EXPECT_TRUE(q.IsUndirectedAcyclic()) << tpl.name;
    } else {
      EXPECT_FALSE(q.IsUndirectedAcyclic()) << tpl.name;
    }
    if (tpl.cls == PatternClass::kClique) {
      EXPECT_EQ(q.NumEdges(), tpl.num_nodes * (tpl.num_nodes - 1) / 2)
          << tpl.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Variants, TemplateInstantiationTest,
                         ::testing::Values(QueryVariant::kChildOnly,
                                           QueryVariant::kHybrid,
                                           QueryVariant::kDescendantOnly),
                         [](const auto& info) {
                           return QueryVariantName(info.param);
                         });

TEST(Templates, HybridVariantMixesKindsSomewhere) {
  uint32_t child = 0, desc = 0;
  for (const QueryTemplate& tpl : HQueryTemplates()) {
    PatternQuery q =
        InstantiateTemplate(tpl, QueryVariant::kHybrid, 10, /*seed=*/1);
    child += q.NumChildEdges();
    desc += q.NumDescendantEdges();
  }
  EXPECT_GT(child, 0u);
  EXPECT_GT(desc, 0u);
}

// --- Generators.

TEST(QueryGenerator, RandomQueryRespectsOptions) {
  RandomQueryOptions opts{.num_nodes = 8, .num_edges = 12, .num_labels = 6,
                          .variant = QueryVariant::kHybrid, .seed = 3};
  PatternQuery q = GenerateRandomQuery(opts);
  EXPECT_EQ(q.NumNodes(), 8u);
  EXPECT_EQ(q.NumEdges(), 12u);
  EXPECT_TRUE(q.IsConnected());
  EXPECT_TRUE(q.IsDag());
  // Deterministic.
  EXPECT_EQ(GenerateRandomQuery(opts), q);
}

TEST(QueryGenerator, ExtractedQueryHasGuaranteedMatch) {
  Graph g = Graph::FromEdges({0, 1, 2, 0, 1, 2},
                             {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {0, 4}});
  ExtractedQueryOptions opts{
      .num_nodes = 4, .variant = QueryVariant::kChildOnly, .seed = 9};
  auto q = ExtractQueryFromGraph(g, opts);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->NumNodes(), 4u);
  EXPECT_TRUE(q->IsConnected());
  // The identity mapping is a homomorphism, so the answer is non-empty.
  auto answer = ::rigpm::testing::BruteForceAnswer(g, *q);
  EXPECT_FALSE(answer.empty());
}

}  // namespace
}  // namespace rigpm
