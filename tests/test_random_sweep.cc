// Wide randomized differential sweep: the full GM pipeline against the
// brute-force oracle across many seeds, data-graph shapes, and query
// variants. This is the repository's strongest end-to-end guarantee — any
// soundness bug in simulation pruning, RIG expansion, ordering, or MJoin
// shows up here as a concrete counterexample seed.

#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "engine/gm_engine.h"
#include "enumerate/mjoin_parallel.h"
#include "graph/generators.h"
#include "query/query_generator.h"
#include "query/transitive_reduction.h"
#include "test_util.h"

namespace rigpm {
namespace {

using ::rigpm::testing::BruteForceAnswer;

struct SweepCase {
  uint64_t seed;
  QueryVariant variant;
  bool dag_data;
  bool dense_query;
};

std::string SweepName(const ::testing::TestParamInfo<SweepCase>& info) {
  std::string name = "seed" + std::to_string(info.param.seed);
  name += info.param.variant == QueryVariant::kChildOnly       ? "_C"
          : info.param.variant == QueryVariant::kDescendantOnly ? "_D"
                                                                : "_H";
  name += info.param.dag_data ? "_dag" : "_cyc";
  name += info.param.dense_query ? "_dense" : "_sparse";
  return name;
}

class RandomSweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(RandomSweepTest, GmMatchesBruteForce) {
  const SweepCase& p = GetParam();
  GeneratorOptions gopts{.num_nodes = 70, .num_edges = 240, .num_labels = 4,
                         .seed = p.seed};
  Graph g = p.dag_data ? GenerateRandomDag(gopts) : GeneratePowerLaw(gopts);

  RandomQueryOptions qopts;
  qopts.num_nodes = p.dense_query ? 5 : 6;
  qopts.num_edges = p.dense_query ? 9 : 6;
  qopts.num_labels = 4;
  qopts.variant = p.variant;
  qopts.seed = p.seed * 101 + 3;
  PatternQuery q = GenerateRandomQuery(qopts);

  GmEngine engine(g);
  auto tuples = engine.EvaluateCollect(q);
  std::set<Occurrence> got(tuples.begin(), tuples.end());
  EXPECT_EQ(got.size(), tuples.size()) << "duplicates emitted";
  EXPECT_EQ(got, BruteForceAnswer(g, q));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomSweepTest,
    ::testing::Values(
        SweepCase{11, QueryVariant::kHybrid, false, false},
        SweepCase{12, QueryVariant::kHybrid, false, true},
        SweepCase{13, QueryVariant::kHybrid, true, false},
        SweepCase{14, QueryVariant::kHybrid, true, true},
        SweepCase{15, QueryVariant::kChildOnly, false, false},
        SweepCase{16, QueryVariant::kChildOnly, false, true},
        SweepCase{17, QueryVariant::kChildOnly, true, true},
        SweepCase{18, QueryVariant::kDescendantOnly, false, false},
        SweepCase{19, QueryVariant::kDescendantOnly, true, false},
        SweepCase{20, QueryVariant::kDescendantOnly, false, true},
        SweepCase{21, QueryVariant::kHybrid, false, false},
        SweepCase{22, QueryVariant::kHybrid, true, false},
        SweepCase{23, QueryVariant::kChildOnly, true, false},
        SweepCase{24, QueryVariant::kDescendantOnly, true, true},
        SweepCase{25, QueryVariant::kHybrid, false, true}),
    SweepName);

// Same sweep against the dedicated engine knobs: every combination of
// sim algorithm x order strategy must produce the identical answer set.
TEST(RandomSweep, AllKnobCombinationsAgree) {
  Graph g = GeneratePowerLaw({.num_nodes = 90, .num_edges = 350,
                              .num_labels = 4, .seed = 31});
  GmEngine engine(g);
  PatternQuery q = GenerateRandomQuery({.num_nodes = 5, .num_edges = 7,
                                        .num_labels = 4,
                                        .variant = QueryVariant::kHybrid,
                                        .seed = 77});
  std::set<Occurrence> reference;
  bool first = true;
  for (SimAlgorithm sim :
       {SimAlgorithm::kBas, SimAlgorithm::kDag, SimAlgorithm::kDagMap}) {
    for (OrderStrategy order :
         {OrderStrategy::kJO, OrderStrategy::kRI, OrderStrategy::kBJ}) {
      for (ChildCheckMode check :
           {ChildCheckMode::kBinSearch, ChildCheckMode::kBitIter,
            ChildCheckMode::kBitBat}) {
        GmOptions opts;
        opts.sim_algorithm = sim;
        opts.order = order;
        opts.sim.child_check = check;
        auto tuples = engine.EvaluateCollect(q, opts);
        std::set<Occurrence> got(tuples.begin(), tuples.end());
        if (first) {
          reference = got;
          first = false;
        } else {
          ASSERT_EQ(got, reference)
              << SimAlgorithmName(sim) << '/' << OrderStrategyName(order)
              << '/' << ChildCheckModeName(check);
        }
      }
    }
  }
  EXPECT_EQ(reference, BruteForceAnswer(g, q));
}

// --- Parallel/sequential equivalence sweeps. The partitioned parallel
// MJoin and the batch API must produce exactly the sequential answer for
// every graph shape, query variant, order strategy, and worker count.

std::vector<std::pair<Graph, PatternQuery>> SweepInstances() {
  std::vector<std::pair<Graph, PatternQuery>> instances;
  for (uint64_t seed : {41u, 42u, 43u, 44u}) {
    GeneratorOptions gopts{.num_nodes = 70, .num_edges = 240, .num_labels = 4,
                           .seed = seed};
    Graph g = (seed % 2 == 0) ? GenerateRandomDag(gopts)
                              : GeneratePowerLaw(gopts);
    RandomQueryOptions qopts;
    qopts.num_nodes = 5;
    qopts.num_edges = 7;
    qopts.num_labels = 4;
    qopts.variant = (seed % 3 == 0)   ? QueryVariant::kChildOnly
                    : (seed % 3 == 1) ? QueryVariant::kDescendantOnly
                                      : QueryVariant::kHybrid;
    qopts.seed = seed * 101 + 3;
    PatternQuery q = GenerateRandomQuery(qopts);
    instances.emplace_back(std::move(g), std::move(q));
  }
  return instances;
}

TEST(RandomSweep, ParallelEnumerationMatchesSequential) {
  for (auto& [g, q] : SweepInstances()) {
    GmEngine engine(g);
    auto sequential = engine.EvaluateCollect(q);
    std::set<Occurrence> expected(sequential.begin(), sequential.end());
    for (uint32_t threads : {0u, 2u, 3u, 8u}) {
      GmOptions opts;
      opts.num_threads = threads;
      GmResult result;
      auto tuples = engine.EvaluateCollect(q, opts, &result);
      std::set<Occurrence> got(tuples.begin(), tuples.end());
      ASSERT_EQ(got.size(), tuples.size())
          << "duplicates at threads=" << threads;
      ASSERT_EQ(got, expected) << "threads=" << threads;
      ASSERT_EQ(result.num_occurrences, expected.size())
          << "threads=" << threads;
    }
  }
}

TEST(RandomSweep, MJoinParallelMatchesSequentialAcrossOrders) {
  for (auto& [g, q] : SweepInstances()) {
    GmEngine engine(g);
    PatternQuery reduced = QueryTransitiveReduction(q);
    GmResult rig_result;
    Rig rig = engine.BuildRigOnly(q, GmOptions{}, &rig_result);
    if (rig.AnyEmpty()) continue;
    for (OrderStrategy strategy :
         {OrderStrategy::kJO, OrderStrategy::kRI, OrderStrategy::kBJ}) {
      auto order = ComputeSearchOrder(reduced, rig, strategy);
      uint64_t sequential = MJoinCount(reduced, rig, order);
      for (uint32_t threads : {2u, 5u}) {
        ParallelMJoinOptions popts;
        popts.num_threads = threads;
        EXPECT_EQ(MJoinParallelCount(reduced, rig, order, popts), sequential)
            << OrderStrategyName(strategy) << " threads=" << threads;
      }
    }
  }
}

TEST(RandomSweep, EvaluateBatchMatchesSequential) {
  auto instances = SweepInstances();
  // All queries of the sweep against one shared engine (first graph).
  const Graph& g = instances.front().first;
  GmEngine engine(g);
  std::vector<PatternQuery> batch;
  for (auto& [unused_g, q] : instances) batch.push_back(q);
  for (auto& [unused_g, q] : instances) batch.push_back(q);  // duplicates ok

  std::vector<uint64_t> expected;
  for (const PatternQuery& q : batch) {
    expected.push_back(engine.Evaluate(q).num_occurrences);
  }

  for (uint32_t threads : {1u, 2u, 4u, 8u}) {
    GmOptions opts;
    opts.num_threads = threads;
    std::atomic<uint64_t> sunk{0};
    auto results = engine.EvaluateBatch(
        batch, opts, [&sunk](size_t, const Occurrence&) {
          sunk.fetch_add(1, std::memory_order_relaxed);
          return true;
        });
    ASSERT_EQ(results.size(), batch.size());
    uint64_t total = 0;
    for (size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(results[i].num_occurrences, expected[i])
          << "query " << i << " threads=" << threads;
      total += results[i].num_occurrences;
    }
    EXPECT_EQ(sunk.load(), total) << "threads=" << threads;
  }
}

TEST(RandomSweep, LimitClampedUnderConcurrency) {
  // A permissive query with a large answer so every worker has work.
  Graph g = GeneratePowerLaw({.num_nodes = 80, .num_edges = 400,
                              .num_labels = 2, .seed = 51});
  GmEngine engine(g);
  PatternQuery q = GenerateRandomQuery({.num_nodes = 4, .num_edges = 4,
                                        .num_labels = 2,
                                        .variant = QueryVariant::kHybrid,
                                        .seed = 52});
  uint64_t full = engine.Evaluate(q).num_occurrences;
  ASSERT_GT(full, 50u) << "workload too selective for a limit test";

  const uint64_t limit = full / 2;
  for (uint32_t threads : {1u, 2u, 4u, 8u}) {
    GmOptions opts;
    opts.limit = limit;
    opts.num_threads = threads;
    std::atomic<uint64_t> sunk{0};
    GmResult r = engine.Evaluate(q, opts, [&sunk](const Occurrence&) {
      sunk.fetch_add(1, std::memory_order_relaxed);
      return true;
    });
    EXPECT_EQ(r.num_occurrences, limit) << "threads=" << threads;
    EXPECT_TRUE(r.hit_limit) << "threads=" << threads;
    EXPECT_LE(sunk.load(), limit) << "threads=" << threads;
  }

  // The same clamp must hold for every query of a concurrent batch.
  std::vector<PatternQuery> batch(6, q);
  GmOptions opts;
  opts.limit = limit;
  opts.num_threads = 4;
  for (const GmResult& r : engine.EvaluateBatch(batch, opts)) {
    EXPECT_EQ(r.num_occurrences, limit);
    EXPECT_TRUE(r.hit_limit);
  }
}

}  // namespace
}  // namespace rigpm
