// Wide randomized differential sweep: the full GM pipeline against the
// brute-force oracle across many seeds, data-graph shapes, and query
// variants. This is the repository's strongest end-to-end guarantee — any
// soundness bug in simulation pruning, RIG expansion, ordering, or MJoin
// shows up here as a concrete counterexample seed.

#include <gtest/gtest.h>

#include <set>

#include "engine/gm_engine.h"
#include "graph/generators.h"
#include "query/query_generator.h"
#include "test_util.h"

namespace rigpm {
namespace {

using ::rigpm::testing::BruteForceAnswer;

struct SweepCase {
  uint64_t seed;
  QueryVariant variant;
  bool dag_data;
  bool dense_query;
};

std::string SweepName(const ::testing::TestParamInfo<SweepCase>& info) {
  std::string name = "seed" + std::to_string(info.param.seed);
  name += info.param.variant == QueryVariant::kChildOnly       ? "_C"
          : info.param.variant == QueryVariant::kDescendantOnly ? "_D"
                                                                : "_H";
  name += info.param.dag_data ? "_dag" : "_cyc";
  name += info.param.dense_query ? "_dense" : "_sparse";
  return name;
}

class RandomSweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(RandomSweepTest, GmMatchesBruteForce) {
  const SweepCase& p = GetParam();
  GeneratorOptions gopts{.num_nodes = 70, .num_edges = 240, .num_labels = 4,
                         .seed = p.seed};
  Graph g = p.dag_data ? GenerateRandomDag(gopts) : GeneratePowerLaw(gopts);

  RandomQueryOptions qopts;
  qopts.num_nodes = p.dense_query ? 5 : 6;
  qopts.num_edges = p.dense_query ? 9 : 6;
  qopts.num_labels = 4;
  qopts.variant = p.variant;
  qopts.seed = p.seed * 101 + 3;
  PatternQuery q = GenerateRandomQuery(qopts);

  GmEngine engine(g);
  auto tuples = engine.EvaluateCollect(q);
  std::set<Occurrence> got(tuples.begin(), tuples.end());
  EXPECT_EQ(got.size(), tuples.size()) << "duplicates emitted";
  EXPECT_EQ(got, BruteForceAnswer(g, q));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomSweepTest,
    ::testing::Values(
        SweepCase{11, QueryVariant::kHybrid, false, false},
        SweepCase{12, QueryVariant::kHybrid, false, true},
        SweepCase{13, QueryVariant::kHybrid, true, false},
        SweepCase{14, QueryVariant::kHybrid, true, true},
        SweepCase{15, QueryVariant::kChildOnly, false, false},
        SweepCase{16, QueryVariant::kChildOnly, false, true},
        SweepCase{17, QueryVariant::kChildOnly, true, true},
        SweepCase{18, QueryVariant::kDescendantOnly, false, false},
        SweepCase{19, QueryVariant::kDescendantOnly, true, false},
        SweepCase{20, QueryVariant::kDescendantOnly, false, true},
        SweepCase{21, QueryVariant::kHybrid, false, false},
        SweepCase{22, QueryVariant::kHybrid, true, false},
        SweepCase{23, QueryVariant::kChildOnly, true, false},
        SweepCase{24, QueryVariant::kDescendantOnly, true, true},
        SweepCase{25, QueryVariant::kHybrid, false, true}),
    SweepName);

// Same sweep against the dedicated engine knobs: every combination of
// sim algorithm x order strategy must produce the identical answer set.
TEST(RandomSweep, AllKnobCombinationsAgree) {
  Graph g = GeneratePowerLaw({.num_nodes = 90, .num_edges = 350,
                              .num_labels = 4, .seed = 31});
  GmEngine engine(g);
  PatternQuery q = GenerateRandomQuery({.num_nodes = 5, .num_edges = 7,
                                        .num_labels = 4,
                                        .variant = QueryVariant::kHybrid,
                                        .seed = 77});
  std::set<Occurrence> reference;
  bool first = true;
  for (SimAlgorithm sim :
       {SimAlgorithm::kBas, SimAlgorithm::kDag, SimAlgorithm::kDagMap}) {
    for (OrderStrategy order :
         {OrderStrategy::kJO, OrderStrategy::kRI, OrderStrategy::kBJ}) {
      for (ChildCheckMode check :
           {ChildCheckMode::kBinSearch, ChildCheckMode::kBitIter,
            ChildCheckMode::kBitBat}) {
        GmOptions opts;
        opts.sim_algorithm = sim;
        opts.order = order;
        opts.sim.child_check = check;
        auto tuples = engine.EvaluateCollect(q, opts);
        std::set<Occurrence> got(tuples.begin(), tuples.end());
        if (first) {
          reference = got;
          first = false;
        } else {
          ASSERT_EQ(got, reference)
              << SimAlgorithmName(sim) << '/' << OrderStrategyName(order)
              << '/' << ChildCheckModeName(check);
        }
      }
    }
  }
  EXPECT_EQ(reference, BruteForceAnswer(g, q));
}

}  // namespace
}  // namespace rigpm
