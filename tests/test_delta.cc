// Delta-log persistence tests (storage/delta_log.h): record round trips,
// the seeded checksum chain, crash recovery (torn tails replay their valid
// prefix; the writer truncates them), base-binding enforcement, replay
// equivalence with the in-memory IncrementalMatcher, and both snapshot IO
// modes.

#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "engine/incremental.h"
#include "graph/generators.h"
#include "query/pattern_parser.h"
#include "storage/delta_log.h"
#include "storage/snapshot.h"
#include "test_util.h"
#include "util/serde.h"

namespace rigpm {
namespace {

using rigpm::testing::PaperExample;

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/rigpm_delta_XXXXXX";
    dir_ = ::mkdtemp(tmpl);
  }
  ~TempDir() { std::filesystem::remove_all(dir_); }
  std::string Path(const std::string& name) const { return dir_ + "/" + name; }

 private:
  std::string dir_;
};

std::vector<uint8_t> SerializeGraph(const Graph& g) {
  ByteSink sink;
  g.Serialize(sink);
  return sink.data();
}

uint64_t FileSize(const std::string& path) {
  struct stat st{};
  EXPECT_EQ(::stat(path.c_str(), &st), 0);
  return static_cast<uint64_t>(st.st_size);
}

void TruncateFile(const std::string& path, uint64_t size) {
  ASSERT_EQ(::truncate(path.c_str(), static_cast<off_t>(size)), 0);
}

void FlipByte(const std::string& path, uint64_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open());
  f.seekg(static_cast<std::streamoff>(offset));
  char b = 0;
  f.read(&b, 1);
  b = static_cast<char>(b ^ 0x5a);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&b, 1);
}

constexpr uint64_t kBase = 0x1234abcd5678ef01ull;

/// Round-trip and rejection tests run under both IO modes — replay must be
/// identical whether the log is mapped or slurped.
class DeltaIoTest : public ::testing::TestWithParam<SnapshotIoMode> {};

INSTANTIATE_TEST_SUITE_P(IoModes, DeltaIoTest,
                         ::testing::Values(SnapshotIoMode::kMmap,
                                           SnapshotIoMode::kRead),
                         [](const auto& info) {
                           return info.param == SnapshotIoMode::kMmap
                                      ? "mmap"
                                      : "read";
                         });

TEST_P(DeltaIoTest, WriteThenReplayEqualsInMemoryGraph) {
  TempDir tmp;
  const std::string path = tmp.Path("g.delta");
  Graph base = PaperExample::MakeGraph();

  std::string error;
  auto writer = DeltaWriter::Open(path, kBase, 10, &error);
  ASSERT_NE(writer, nullptr) << error;
  std::vector<std::pair<NodeId, NodeId>> batch1 = {{0, 3}, {0, 7}};
  std::vector<std::pair<NodeId, NodeId>> batch2 = {{6, 9}};
  ASSERT_TRUE(writer->Append(batch1, &error)) << error;
  ASSERT_TRUE(writer->Append(batch2, &error)) << error;
  EXPECT_EQ(writer->record_count(), 2u);

  DeltaReader reader(path, GetParam());
  ASSERT_TRUE(reader.ok()) << reader.error();
  EXPECT_EQ(reader.base_checksum(), kBase);
  ReplayStats stats;
  auto merged = ReplayDelta(base, reader, &error, &stats);
  ASSERT_TRUE(merged.has_value()) << error;
  EXPECT_EQ(stats.records_applied, 2u);
  EXPECT_EQ(stats.edges_in_records, 3u);
  EXPECT_EQ(stats.last_seqno, 2u);
  EXPECT_FALSE(reader.truncated());

  std::vector<std::pair<NodeId, NodeId>> all = batch1;
  all.insert(all.end(), batch2.begin(), batch2.end());
  Graph expected = ApplyEdgesToGraph(base, all);
  EXPECT_EQ(SerializeGraph(*merged), SerializeGraph(expected));
  EXPECT_EQ(merged->NumEdges(), base.NumEdges() + 3);
}

TEST_P(DeltaIoTest, ReplayAfterSeqnoSkipsOldRecords) {
  TempDir tmp;
  const std::string path = tmp.Path("g.delta");
  Graph base = PaperExample::MakeGraph();
  std::string error;
  auto writer = DeltaWriter::Open(path, kBase, 10, &error);
  ASSERT_NE(writer, nullptr) << error;
  ASSERT_TRUE(writer->Append({{0, 3}}, &error));
  ASSERT_TRUE(writer->Append({{0, 7}}, &error));
  ASSERT_TRUE(writer->Append({{6, 9}}, &error));

  DeltaReader reader(path, GetParam());
  ReplayStats stats;
  auto merged = ReplayDelta(base, reader, &error, &stats,
                            /*after_seqno=*/2);
  ASSERT_TRUE(merged.has_value()) << error;
  EXPECT_EQ(stats.records_applied, 1u);
  EXPECT_EQ(stats.last_seqno, 3u);
  EXPECT_EQ(merged->NumEdges(), base.NumEdges() + 1);
}

TEST_P(DeltaIoTest, EmptyLogReplaysToTheBase) {
  TempDir tmp;
  const std::string path = tmp.Path("g.delta");
  Graph base = PaperExample::MakeGraph();
  std::string error;
  auto writer = DeltaWriter::Open(path, kBase, 10, &error);
  ASSERT_NE(writer, nullptr) << error;
  writer.reset();
  EXPECT_EQ(FileSize(path), 32u);  // header only

  DeltaReader reader(path, GetParam());
  ASSERT_TRUE(reader.ok()) << reader.error();
  ReplayStats stats;
  auto merged = ReplayDelta(base, reader, &error, &stats);
  ASSERT_TRUE(merged.has_value()) << error;
  EXPECT_EQ(stats.records_applied, 0u);
  EXPECT_EQ(SerializeGraph(*merged), SerializeGraph(base));
}

TEST_P(DeltaIoTest, MidRecordTruncationReplaysTheValidPrefix) {
  TempDir tmp;
  const std::string path = tmp.Path("g.delta");
  Graph base = PaperExample::MakeGraph();
  std::string error;
  auto writer = DeltaWriter::Open(path, kBase, 10, &error);
  ASSERT_NE(writer, nullptr) << error;
  ASSERT_TRUE(writer->Append({{0, 3}, {0, 7}}, &error));
  const uint64_t after_first = FileSize(path);
  ASSERT_TRUE(writer->Append({{6, 9}}, &error));
  writer.reset();

  // Cut into the middle of record 2 (a crashed append).
  TruncateFile(path, after_first + 5);

  DeltaReader reader(path, GetParam());
  ASSERT_TRUE(reader.ok()) << reader.error();
  DeltaRecord rec;
  ASSERT_TRUE(reader.Next(&rec));
  EXPECT_EQ(rec.seqno, 1u);
  EXPECT_EQ(rec.ops.size(), 2u);
  EXPECT_FALSE(reader.Next(&rec));
  EXPECT_TRUE(reader.truncated());
  EXPECT_TRUE(reader.tail_torn());  // a tear, not corruption
  EXPECT_FALSE(reader.tail_error().empty());

  // ReplayDelta applies record 1 and reports the truncation via the reader.
  DeltaReader replay_reader(path, GetParam());
  ReplayStats stats;
  auto merged = ReplayDelta(base, replay_reader, &error, &stats);
  ASSERT_TRUE(merged.has_value()) << error;
  EXPECT_EQ(stats.records_applied, 1u);
  EXPECT_TRUE(replay_reader.truncated());
  EXPECT_EQ(merged->NumEdges(), base.NumEdges() + 2);
}

TEST_P(DeltaIoTest, CorruptRecordEndsTheValidPrefix) {
  TempDir tmp;
  const std::string path = tmp.Path("g.delta");
  std::string error;
  auto writer = DeltaWriter::Open(path, kBase, 10, &error);
  ASSERT_NE(writer, nullptr) << error;
  ASSERT_TRUE(writer->Append({{0, 3}}, &error));
  const uint64_t after_first = FileSize(path);
  ASSERT_TRUE(writer->Append({{6, 9}}, &error));
  writer.reset();

  // Flip one byte inside record 2's edge list (past the 32-byte record
  // header): the BODY checksum no longer verifies, so iteration stops
  // after record 1. (The header-checksum path is covered by the writer's
  // CorruptAcknowledgedRecord test, which flips the header-checksum
  // field.)
  FlipByte(path, after_first + 32);

  DeltaReader reader(path, GetParam());
  ASSERT_TRUE(reader.ok()) << reader.error();
  DeltaRecord rec;
  EXPECT_TRUE(reader.Next(&rec));
  EXPECT_FALSE(reader.Next(&rec));
  EXPECT_TRUE(reader.truncated());
  EXPECT_FALSE(reader.tail_torn());  // full bytes present: corruption
  EXPECT_NE(reader.tail_error().find("checksum"), std::string::npos)
      << reader.tail_error();
}

TEST_P(DeltaIoTest, CorruptFirstRecordYieldsEmptyValidPrefix) {
  TempDir tmp;
  const std::string path = tmp.Path("g.delta");
  std::string error;
  auto writer = DeltaWriter::Open(path, kBase, 10, &error);
  ASSERT_NE(writer, nullptr) << error;
  ASSERT_TRUE(writer->Append({{0, 3}}, &error));
  writer.reset();
  FlipByte(path, 32 + 8);  // record 1's seqno field

  DeltaReader reader(path, GetParam());
  ASSERT_TRUE(reader.ok()) << reader.error();
  DeltaRecord rec;
  EXPECT_FALSE(reader.Next(&rec));
  EXPECT_TRUE(reader.truncated());
  EXPECT_EQ(reader.records_read(), 0u);
}

TEST_P(DeltaIoTest, RecordBoundToDifferentBaseBreaksTheChain) {
  TempDir tmp;
  const std::string path = tmp.Path("g.delta");
  std::string error;
  auto writer = DeltaWriter::Open(path, kBase, 10, &error);
  ASSERT_NE(writer, nullptr) << error;
  ASSERT_TRUE(writer->Append({{0, 3}}, &error));
  writer.reset();
  // Flip a byte of record 1's per-record base-checksum field.
  FlipByte(path, 32 + 2);

  DeltaReader reader(path, GetParam());
  ASSERT_TRUE(reader.ok()) << reader.error();
  DeltaRecord rec;
  EXPECT_FALSE(reader.Next(&rec));
  EXPECT_TRUE(reader.truncated());
  EXPECT_NE(reader.tail_error().find("different base"), std::string::npos)
      << reader.tail_error();
}

TEST_P(DeltaIoTest, OutOfRangeEndpointFailsReplayHard) {
  TempDir tmp;
  const std::string path = tmp.Path("g.delta");
  Graph base = PaperExample::MakeGraph();  // 10 nodes
  std::string error;
  {
    // The format layer itself refuses a record that could not replay
    // against the node count the log is bound to.
    auto writer = DeltaWriter::Open(path, kBase, 10, &error);
    ASSERT_NE(writer, nullptr) << error;
    EXPECT_FALSE(writer->Append({{0, 99}}, &error));
    EXPECT_NE(error.find("99"), std::string::npos) << error;
    EXPECT_EQ(writer->record_count(), 0u);
  }
  std::remove(path.c_str());
  // A log legitimately written for a BIGGER base (200 nodes) must fail
  // replay against a smaller graph loudly, not crash or truncate silently.
  auto writer = DeltaWriter::Open(path, kBase, 200, &error);
  ASSERT_NE(writer, nullptr) << error;
  ASSERT_TRUE(writer->Append({{0, 99}}, &error)) << error;
  writer.reset();

  DeltaReader reader(path, GetParam());
  EXPECT_EQ(reader.base_num_nodes(), 200u);
  ReplayStats stats;
  auto merged = ReplayDelta(base, reader, &error, &stats);
  EXPECT_FALSE(merged.has_value());
  EXPECT_NE(error.find("log does not match this base"), std::string::npos)
      << error;
}

// ------------------------------------------------------- writer semantics

TEST(DeltaWriter, ReopenContinuesTheChain) {
  TempDir tmp;
  const std::string path = tmp.Path("g.delta");
  std::string error;
  {
    auto writer = DeltaWriter::Open(path, kBase, 10, &error);
    ASSERT_NE(writer, nullptr) << error;
    ASSERT_TRUE(writer->Append({{0, 3}}, &error));
  }
  {
    auto writer = DeltaWriter::Open(path, kBase, 10, &error);
    ASSERT_NE(writer, nullptr) << error;
    EXPECT_EQ(writer->next_seqno(), 2u);
    ASSERT_TRUE(writer->Append({{0, 7}}, &error));
  }
  DeltaReader reader(path);
  DeltaRecord rec;
  EXPECT_TRUE(reader.Next(&rec));
  EXPECT_TRUE(reader.Next(&rec));
  EXPECT_EQ(rec.seqno, 2u);
  EXPECT_FALSE(reader.Next(&rec));
  EXPECT_FALSE(reader.truncated());
}

TEST(DeltaWriter, SecondConcurrentWriterIsRefused) {
  // Two live writers would both scan to the same chain position and
  // interleave same-seqno records; the flock makes the second Open fail
  // instead. Releasing the first writer frees the log.
  TempDir tmp;
  const std::string path = tmp.Path("g.delta");
  std::string error;
  auto first = DeltaWriter::Open(path, kBase, 10, &error);
  ASSERT_NE(first, nullptr) << error;
  auto second = DeltaWriter::Open(path, kBase, 10, &error);
  EXPECT_EQ(second, nullptr);
  EXPECT_NE(error.find("locked"), std::string::npos) << error;
  first.reset();
  auto third = DeltaWriter::Open(path, kBase, 10, &error);
  EXPECT_NE(third, nullptr) << error;
}

TEST(DeltaWriter, ReopenWithDifferentBaseIsRefused) {
  TempDir tmp;
  const std::string path = tmp.Path("g.delta");
  std::string error;
  {
    auto writer = DeltaWriter::Open(path, kBase, 10, &error);
    ASSERT_NE(writer, nullptr) << error;
    ASSERT_TRUE(writer->Append({{0, 3}}, &error));
  }
  auto writer = DeltaWriter::Open(path, kBase + 1, 10, &error);
  EXPECT_EQ(writer, nullptr);
  EXPECT_NE(error.find("different base"), std::string::npos) << error;
}

TEST(DeltaWriter, CorruptAcknowledgedRecordRefusesOpenInsteadOfTruncating) {
  // A full-size record that fails validation is disk corruption of
  // acknowledged data, not a crashed append — Open must refuse, not
  // quietly truncate every durable record after the corruption away.
  TempDir tmp;
  const std::string path = tmp.Path("g.delta");
  std::string error;
  uint64_t after_first = 0;
  {
    auto writer = DeltaWriter::Open(path, kBase, 10, &error);
    ASSERT_NE(writer, nullptr) << error;
    ASSERT_TRUE(writer->Append({{0, 3}}, &error));
    after_first = FileSize(path);
    ASSERT_TRUE(writer->Append({{6, 9}}, &error));
  }
  const uint64_t full_size = FileSize(path);
  FlipByte(path, after_first + 24);  // record 2's header-checksum field
  auto writer = DeltaWriter::Open(path, kBase, 10, &error);
  EXPECT_EQ(writer, nullptr);
  EXPECT_NE(error.find("corrupt"), std::string::npos) << error;
  EXPECT_EQ(FileSize(path), full_size);  // nothing was destroyed
}

TEST(DeltaWriter, ReopenTruncatesATornTailAndRecovers) {
  TempDir tmp;
  const std::string path = tmp.Path("g.delta");
  std::string error;
  uint64_t after_first = 0;
  {
    auto writer = DeltaWriter::Open(path, kBase, 10, &error);
    ASSERT_NE(writer, nullptr) << error;
    ASSERT_TRUE(writer->Append({{0, 3}}, &error));
    after_first = FileSize(path);
    ASSERT_TRUE(writer->Append({{6, 9}}, &error));
  }
  // Simulate a crash mid-append of record 2.
  TruncateFile(path, after_first + 7);
  {
    auto writer = DeltaWriter::Open(path, kBase, 10, &error);
    ASSERT_NE(writer, nullptr) << error;
    EXPECT_EQ(writer->next_seqno(), 2u);  // torn record 2 was dropped
    EXPECT_EQ(FileSize(path), after_first);
    ASSERT_TRUE(writer->Append({{1, 5}}, &error));
  }
  DeltaReader reader(path);
  DeltaRecord rec;
  ASSERT_TRUE(reader.Next(&rec));
  EXPECT_EQ(rec.ops, (std::vector<DeltaOp>{{0, 3, DeltaOpKind::kAdd}}));
  ASSERT_TRUE(reader.Next(&rec));
  EXPECT_EQ(rec.seqno, 2u);
  EXPECT_EQ(rec.ops, (std::vector<DeltaOp>{{1, 5, DeltaOpKind::kAdd}}));
  EXPECT_FALSE(reader.Next(&rec));
  EXPECT_FALSE(reader.truncated());
}

TEST(DeltaWriter, ShortNonDeltaFileIsRefusedNotClobbered) {
  // A mistyped --delta pointing at some small existing file must not be
  // "initialized" over: only truly empty files get a header. (A >=24-byte
  // non-delta file is already refused by the magic check.)
  TempDir tmp;
  const std::string path = tmp.Path("notes.txt");
  {
    std::ofstream out(path, std::ios::binary);
    out << "ten bytes!";
  }
  std::string error;
  auto writer = DeltaWriter::Open(path, kBase, 10, &error);
  EXPECT_EQ(writer, nullptr);
  EXPECT_NE(error.find("refusing"), std::string::npos) << error;
  std::ifstream in(path, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "ten bytes!");
}

TEST(DeltaReader, NonDeltaFileIsRejected) {
  TempDir tmp;
  // A real engine snapshot is not a delta log.
  const std::string snap = tmp.Path("g.snap");
  Graph g = PaperExample::MakeGraph();
  GmEngine engine(g);
  std::string error;
  ASSERT_TRUE(SaveEngineSnapshot(engine, snap, &error)) << error;
  DeltaReader reader(snap);
  EXPECT_FALSE(reader.ok());
  EXPECT_NE(reader.error().find("not a delta log"), std::string::npos)
      << reader.error();

  DeltaReader missing(tmp.Path("nope.delta"));
  EXPECT_FALSE(missing.ok());
}

// ---------------------------------------------- journaled IncrementalMatcher

TEST(DeltaJournal, JournaledBatchesReplayToTheMatcherGraph) {
  TempDir tmp;
  const std::string path = tmp.Path("g.delta");
  Graph base = PaperExample::MakeGraph();
  Graph base_copy = base;  // the matcher consumes its argument
  auto q = ParsePattern("(a:0)->(b:1)");
  ASSERT_TRUE(q.has_value());

  std::string error;
  auto writer = DeltaWriter::Open(path, kBase, 10, &error);
  ASSERT_NE(writer, nullptr) << error;
  IncrementalMatcher matcher(std::move(base), *q);
  matcher.AttachJournal(writer.get());

  ASSERT_TRUE(matcher.ApplyAndDiff({{0, 3}, {0, 7}}).has_value());
  // Duplicates and already-present edges are deduped before journaling, so
  // the record holds exactly the edges that changed the graph.
  ASSERT_TRUE(matcher.ApplyAndDiff({{6, 9}, {6, 9}, {0, 3}}).has_value());
  // An all-duplicate batch changes nothing and journals nothing.
  ASSERT_TRUE(matcher.ApplyAndDiff({{0, 3}}).has_value());
  EXPECT_EQ(writer->record_count(), 2u);

  // A rejected batch journals nothing either.
  EXPECT_FALSE(matcher.ApplyAndDiff({{0, 1234}}, &error).has_value());
  EXPECT_EQ(writer->record_count(), 2u);
  writer.reset();

  DeltaReader reader(path);
  ReplayStats stats;
  auto merged = ReplayDelta(base_copy, reader, &error, &stats);
  ASSERT_TRUE(merged.has_value()) << error;
  EXPECT_EQ(stats.records_applied, 2u);
  EXPECT_EQ(SerializeGraph(*merged),
            SerializeGraph(matcher.current_graph()));
}

// ------------------------------------------------- snapshot-bound lifecycle

TEST(DeltaLifecycle, SnapshotDeltaReplayMatchesDirectRebuild) {
  // The full workflow the serving tier uses: snapshot a graph, journal
  // updates against the snapshot's stored checksum, replay base+delta, and
  // get exactly the graph a cold rebuild with those edges produces —
  // including query answers.
  TempDir tmp;
  const std::string snap = tmp.Path("base.snap");
  const std::string log = tmp.Path("g.delta");
  Graph g = GeneratePowerLaw({.num_nodes = 120, .num_edges = 420,
                              .num_labels = 3, .seed = 11});
  GmEngine engine(g);
  std::string error;
  ASSERT_TRUE(SaveEngineSnapshot(engine, snap, &error)) << error;
  auto info = InspectSnapshot(snap, &error);
  ASSERT_TRUE(info.has_value()) << error;

  auto writer =
      DeltaWriter::Open(log, info->stored_checksum, g.NumNodes(), &error);
  ASSERT_NE(writer, nullptr) << error;
  std::vector<std::pair<NodeId, NodeId>> batch1 = {{0, 50}, {3, 99}};
  std::vector<std::pair<NodeId, NodeId>> batch2 = {{7, 101}, {50, 3}};
  ASSERT_TRUE(writer->Append(batch1, &error));
  ASSERT_TRUE(writer->Append(batch2, &error));
  writer.reset();

  auto warm = LoadEngineSnapshot(snap, {}, &error);
  ASSERT_TRUE(warm.has_value()) << error;
  DeltaReader reader(log);
  ASSERT_TRUE(reader.ok()) << reader.error();
  EXPECT_EQ(reader.base_checksum(), info->stored_checksum);
  auto merged = ReplayDelta(*warm->graph, reader, &error);
  ASSERT_TRUE(merged.has_value()) << error;

  std::vector<std::pair<NodeId, NodeId>> all = batch1;
  all.insert(all.end(), batch2.begin(), batch2.end());
  Graph direct = ApplyEdgesToGraph(g, all);
  EXPECT_EQ(SerializeGraph(*merged), SerializeGraph(direct));

  GmEngine merged_engine(*merged);
  GmEngine direct_engine(direct);
  PatternQuery q = PaperExample::MakeQuery();
  EXPECT_EQ(merged_engine.EvaluateCollect(q).size(),
            direct_engine.EvaluateCollect(q).size());
}

// ---------------------------------------------------------------------------
// Format v2 (ops) coverage: delete ops round-trip, the version gates between
// add-only and ops builds, and crash recovery repeated for flagged records.

TEST_P(DeltaIoTest, OpsRecordRoundTripsAddsAndDeletes) {
  TempDir tmp;
  const std::string path = tmp.Path("g.delta");
  Graph base = PaperExample::MakeGraph();

  std::string error;
  auto writer = DeltaWriter::Open(path, kBase, 10, &error);
  ASSERT_NE(writer, nullptr) << error;
  EXPECT_EQ(writer->format_version(), kDeltaFormatOps);
  // Delete two edges the paper-example graph really has, add one new one.
  std::vector<DeltaOp> ops = {{0, 3, DeltaOpKind::kAdd},
                              {1, 3, DeltaOpKind::kDelete},
                              {2, 5, DeltaOpKind::kDelete}};
  ASSERT_TRUE(writer->AppendOps(ops, &error)) << error;
  writer.reset();

  DeltaReader reader(path, GetParam());
  ASSERT_TRUE(reader.ok()) << reader.error();
  EXPECT_EQ(reader.format_version(), kDeltaFormatOps);
  DeltaRecord rec;
  ASSERT_TRUE(reader.Next(&rec));
  EXPECT_EQ(rec.ops, ops);
  EXPECT_EQ(rec.delete_count(), 2u);
  EXPECT_FALSE(reader.Next(&rec));
  EXPECT_FALSE(reader.truncated());

  DeltaReader replay_reader(path, GetParam());
  ReplayStats stats;
  auto merged = ReplayDelta(base, replay_reader, &error, &stats);
  ASSERT_TRUE(merged.has_value()) << error;
  EXPECT_EQ(stats.delete_ops, 2u);
  Graph expected = ApplyDeltaOps(base, ops);
  EXPECT_EQ(SerializeGraph(*merged), SerializeGraph(expected));
  EXPECT_EQ(merged->NumEdges(), base.NumEdges() - 1);
}

TEST_P(DeltaIoTest, TornTailWithDeleteOpsReplaysTheValidPrefix) {
  // The torn-tail recovery story must hold for flagged records too: their
  // body carries an extra op-kind byte array, so the truncation point lands
  // differently than for an add-only record of the same edge count.
  TempDir tmp;
  const std::string path = tmp.Path("g.delta");
  Graph base = PaperExample::MakeGraph();
  std::string error;
  auto writer = DeltaWriter::Open(path, kBase, 10, &error);
  ASSERT_NE(writer, nullptr) << error;
  std::vector<DeltaOp> rec1 = {{0, 3, DeltaOpKind::kAdd},
                               {1, 3, DeltaOpKind::kDelete}};
  std::vector<DeltaOp> rec2 = {{6, 9, DeltaOpKind::kAdd},
                               {2, 5, DeltaOpKind::kDelete}};
  ASSERT_TRUE(writer->AppendOps(rec1, &error)) << error;
  const uint64_t after_rec1 = FileSize(path);
  ASSERT_TRUE(writer->AppendOps(rec2, &error)) << error;
  writer.reset();

  // Tear record 2 inside its op-kind byte array (just before the trailing
  // checksum): everything but the last 9 bytes survives.
  TruncateFile(path, FileSize(path) - 9);
  DeltaReader reader(path, GetParam());
  ASSERT_TRUE(reader.ok()) << reader.error();
  ReplayStats stats;
  auto merged = ReplayDelta(base, reader, &error, &stats);
  ASSERT_TRUE(merged.has_value()) << error;
  EXPECT_EQ(stats.records_applied, 1u);
  EXPECT_EQ(stats.delete_ops, 1u);
  EXPECT_TRUE(reader.truncated());
  EXPECT_TRUE(reader.tail_torn());
  EXPECT_EQ(SerializeGraph(*merged),
            SerializeGraph(ApplyDeltaOps(base, rec1)));

  // Writer reopen truncates the torn flagged record and continues the
  // chain; the re-appended record must validate against record 1's
  // checksum, not the torn bytes'.
  writer = DeltaWriter::Open(path, kBase, 0, &error);
  ASSERT_NE(writer, nullptr) << error;
  EXPECT_EQ(FileSize(path), after_rec1);
  EXPECT_EQ(writer->next_seqno(), 2u);
  ASSERT_TRUE(writer->AppendOps(rec2, &error)) << error;
  writer.reset();

  DeltaReader reader2(path, GetParam());
  ASSERT_TRUE(reader2.ok()) << reader2.error();
  auto merged2 = ReplayDelta(base, reader2, &error, &stats);
  ASSERT_TRUE(merged2.has_value()) << error;
  EXPECT_EQ(stats.records_applied, 2u);
  EXPECT_FALSE(reader2.truncated());
  std::vector<DeltaOp> all = rec1;
  all.insert(all.end(), rec2.begin(), rec2.end());
  EXPECT_EQ(SerializeGraph(*merged2), SerializeGraph(ApplyDeltaOps(base, all)));
}

TEST(DeltaVersion, DeleteOpsRefusedOnAddOnlyLogWithVersionMessage) {
  TempDir tmp;
  const std::string path = tmp.Path("g.delta");
  std::string error;
  DeltaWriterOptions v1;
  v1.format_version = kDeltaFormatAddOnly;
  auto writer = DeltaWriter::Open(path, kBase, 10, &error, v1);
  ASSERT_NE(writer, nullptr) << error;
  EXPECT_EQ(writer->format_version(), kDeltaFormatAddOnly);
  // Adds still work on the old format, deletes fail with a VERSION message
  // (not a checksum one), and the failed append leaves the log appendable.
  ASSERT_TRUE(writer->Append({{0, 3}}, &error)) << error;
  std::vector<DeltaOp> del = {{0, 1, DeltaOpKind::kDelete}};
  EXPECT_FALSE(writer->AppendOps(del, &error));
  EXPECT_NE(error.find("cannot carry delete ops"), std::string::npos) << error;
  EXPECT_EQ(error.find("checksum"), std::string::npos) << error;
  ASSERT_TRUE(writer->Append({{0, 7}}, &error)) << error;
  EXPECT_EQ(writer->record_count(), 2u);
}

TEST(DeltaVersion, OldBuildRefusesNewLogWithVersionMessageNotChainError) {
  // A v1-era build (emulated via format_version) opening a version-4 log
  // must say "version", never report a checksum/chain failure.
  TempDir tmp;
  const std::string path = tmp.Path("g.delta");
  std::string error;
  auto writer = DeltaWriter::Open(path, kBase, 10, &error);
  ASSERT_NE(writer, nullptr) << error;
  ASSERT_TRUE(writer->AppendOps(
      std::vector<DeltaOp>{{0, 1, DeltaOpKind::kDelete}}, &error))
      << error;
  writer.reset();

  DeltaWriterOptions v1;
  v1.format_version = kDeltaFormatAddOnly;
  auto old_writer = DeltaWriter::Open(path, kBase, 0, &error, v1);
  EXPECT_EQ(old_writer, nullptr);
  EXPECT_NE(error.find("format version 4"), std::string::npos) << error;
  EXPECT_NE(error.find("supports up to"), std::string::npos) << error;
  EXPECT_EQ(error.find("checksum"), std::string::npos) << error;
}

TEST(DeltaVersion, NewBuildAppendsAddOnlyRecordsToOldLog) {
  // The converse direction stays compatible: a new build may keep
  // appending ADD-only records to a version-3 log (they are byte-identical
  // across versions), and the log stays readable as version 3.
  TempDir tmp;
  const std::string path = tmp.Path("g.delta");
  std::string error;
  DeltaWriterOptions v1;
  v1.format_version = kDeltaFormatAddOnly;
  auto writer = DeltaWriter::Open(path, kBase, 10, &error, v1);
  ASSERT_NE(writer, nullptr) << error;
  ASSERT_TRUE(writer->Append({{0, 3}}, &error)) << error;
  writer.reset();

  auto new_writer = DeltaWriter::Open(path, kBase, 0, &error);
  ASSERT_NE(new_writer, nullptr) << error;
  EXPECT_EQ(new_writer->format_version(), kDeltaFormatAddOnly);
  ASSERT_TRUE(new_writer->Append({{0, 7}}, &error)) << error;
  new_writer.reset();

  DeltaReader reader(path);
  ASSERT_TRUE(reader.ok()) << reader.error();
  EXPECT_EQ(reader.format_version(), kDeltaFormatAddOnly);
  DeltaRecord rec;
  ASSERT_TRUE(reader.Next(&rec));
  ASSERT_TRUE(reader.Next(&rec));
  EXPECT_EQ(rec.ops, (std::vector<DeltaOp>{{0, 7, DeltaOpKind::kAdd}}));
  EXPECT_FALSE(reader.Next(&rec));
  EXPECT_FALSE(reader.truncated());
}

TEST_P(DeltaIoTest, SeekToResumesAndValidatesTheTail) {
  // The O(tail) poll contract: a caller that stored (end_offset, seqno,
  // end_chain) resumes there and reads only new records; a bogus resume
  // point is refused up front.
  TempDir tmp;
  const std::string path = tmp.Path("g.delta");
  std::string error;
  auto writer = DeltaWriter::Open(path, kBase, 10, &error);
  ASSERT_NE(writer, nullptr) << error;
  ASSERT_TRUE(writer->AppendOps(
      std::vector<DeltaOp>{{0, 3, DeltaOpKind::kAdd}}, &error));
  ASSERT_TRUE(writer->AppendOps(
      std::vector<DeltaOp>{{0, 1, DeltaOpKind::kDelete}}, &error));

  DeltaReader full(path, GetParam());
  ASSERT_TRUE(full.ok()) << full.error();
  std::vector<DeltaOp> all_ops;
  ReplayStats full_stats;
  ASSERT_TRUE(CollectDeltaOps(full, 10, 0, &all_ops, &full_stats, &error))
      << error;
  EXPECT_EQ(full_stats.records_applied, 2u);
  EXPECT_EQ(full_stats.end_offset, FileSize(path));

  // Append one more record, then resume exactly past the applied prefix.
  ASSERT_TRUE(writer->AppendOps(
      std::vector<DeltaOp>{{6, 9, DeltaOpKind::kAdd}}, &error));
  DeltaReader tail(path, GetParam());
  ASSERT_TRUE(tail.ok()) << tail.error();
  ASSERT_TRUE(tail.SeekTo(full_stats.end_offset, full_stats.last_seqno,
                          full_stats.end_chain));
  std::vector<DeltaOp> tail_ops;
  ReplayStats tail_stats;
  ASSERT_TRUE(CollectDeltaOps(tail, 10, full_stats.last_seqno, &tail_ops,
                              &tail_stats, &error))
      << error;
  EXPECT_EQ(tail_stats.records_applied, 1u);
  EXPECT_EQ(tail_ops, (std::vector<DeltaOp>{{6, 9, DeltaOpKind::kAdd}}));
  EXPECT_EQ(tail_stats.end_offset, FileSize(path));
  EXPECT_FALSE(tail.truncated());

  // Out-of-bounds resume points are rejected: before the header, or past
  // the end of the file (e.g. the log shrank underneath the caller).
  DeltaReader bad(path, GetParam());
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(bad.SeekTo(kDeltaFileHeaderBytes - 1, 0, kBase));
  DeltaReader bad2(path, GetParam());
  ASSERT_TRUE(bad2.ok());
  EXPECT_FALSE(bad2.SeekTo(FileSize(path) + 1, 3, tail_stats.end_chain));

  // A WRONG chain value at a plausible offset surfaces as a corrupt tail,
  // not silently-wrong data: the next record's checksum is seeded by the
  // chain, so validation fails.
  DeltaReader wrong(path, GetParam());
  ASSERT_TRUE(wrong.ok());
  ASSERT_TRUE(wrong.SeekTo(full_stats.end_offset, full_stats.last_seqno,
                           full_stats.end_chain ^ 0xdeadbeefull));
  DeltaRecord rec;
  EXPECT_FALSE(wrong.Next(&rec));
  EXPECT_TRUE(wrong.truncated());
  EXPECT_FALSE(wrong.tail_torn());
}

}  // namespace
}  // namespace rigpm
