#include "test_util.h"

#include <functional>

namespace rigpm::testing {

bool SlowReaches(const Graph& g, NodeId u, NodeId v) {
  // Seed with u's successors so that u ≺ u requires an actual cycle.
  std::vector<uint8_t> seen(g.NumNodes(), 0);
  std::vector<NodeId> stack;
  for (NodeId w : g.OutNeighbors(u)) {
    if (w == v) return true;
    if (!seen[w]) {
      seen[w] = 1;
      stack.push_back(w);
    }
  }
  while (!stack.empty()) {
    NodeId x = stack.back();
    stack.pop_back();
    for (NodeId w : g.OutNeighbors(x)) {
      if (w == v) return true;
      if (!seen[w]) {
        seen[w] = 1;
        stack.push_back(w);
      }
    }
  }
  return false;
}

bool SlowReachesBounded(const Graph& g, NodeId u, NodeId v,
                        uint32_t max_hops) {
  // Level-by-level BFS from u, stopping after max_hops levels.
  std::vector<uint8_t> seen(g.NumNodes(), 0);
  std::vector<NodeId> frontier = {u};
  for (uint32_t depth = 0; depth < max_hops && !frontier.empty(); ++depth) {
    std::vector<NodeId> next;
    for (NodeId x : frontier) {
      for (NodeId w : g.OutNeighbors(x)) {
        if (w == v) return true;
        if (!seen[w]) {
          seen[w] = 1;
          next.push_back(w);
        }
      }
    }
    frontier = std::move(next);
  }
  return false;
}

std::set<std::vector<NodeId>> BruteForceAnswer(const Graph& g,
                                               const PatternQuery& q) {
  std::set<std::vector<NodeId>> answer;
  const uint32_t n = q.NumNodes();
  std::vector<NodeId> assign(n, kInvalidNode);

  std::function<void(uint32_t)> recurse = [&](uint32_t i) {
    if (i == n) {
      answer.insert(assign);
      return;
    }
    LabelId label = q.Label(i);
    if (label >= g.NumLabels()) return;
    for (NodeId v : g.LabelNodes(label)) {
      assign[i] = v;
      bool ok = true;
      // Check every edge whose endpoints are both assigned.
      for (const QueryEdge& e : q.Edges()) {
        if (e.from > i || e.to > i) continue;
        NodeId u = assign[e.from];
        NodeId w = assign[e.to];
        bool match;
        if (e.kind == EdgeKind::kChild) {
          match = g.HasEdge(u, w);
        } else if (e.max_hops > 0) {
          match = SlowReachesBounded(g, u, w, e.max_hops);
        } else {
          match = SlowReaches(g, u, w);
        }
        if (!match) {
          ok = false;
          break;
        }
      }
      if (ok) recurse(i + 1);
      assign[i] = kInvalidNode;
    }
  };
  recurse(0);
  return answer;
}

}  // namespace rigpm::testing
