// Tests for bounded descendant edges (paths of length <= k): semantics,
// parser/IO support, interaction with transitive reduction, and
// differential agreement of every engine.

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "baseline/jm_engine.h"
#include "baseline/tm_engine.h"
#include "baseline/wcoj_engine.h"
#include "engine/gm_engine.h"
#include "graph/generators.h"
#include "query/pattern_parser.h"
#include "query/query_generator.h"
#include "query/query_io.h"
#include "query/transitive_reduction.h"
#include "test_util.h"

namespace rigpm {
namespace {

using ::rigpm::testing::BruteForceAnswer;
using ::rigpm::testing::SlowReachesBounded;

// Path graph 0 -> 1 -> 2 -> 3 -> 4, all label 0.
Graph PathGraph() {
  return Graph::FromEdges({0, 0, 0, 0, 0}, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
}

PatternQuery BoundedPair(uint32_t max_hops) {
  return PatternQuery::FromParts(
      {0, 0}, {{0, 1, EdgeKind::kDescendant, max_hops}});
}

TEST(Bounded, HopSemanticsOnPath) {
  Graph g = PathGraph();
  GmEngine engine(g);
  // k = 1: only the 4 direct edges. k = 2: + 3 two-hop pairs. Unbounded: 10.
  EXPECT_EQ(engine.Evaluate(BoundedPair(1)).num_occurrences, 4u);
  EXPECT_EQ(engine.Evaluate(BoundedPair(2)).num_occurrences, 7u);
  EXPECT_EQ(engine.Evaluate(BoundedPair(4)).num_occurrences, 10u);
  EXPECT_EQ(engine.Evaluate(BoundedPair(0)).num_occurrences, 10u);
  // A bound beyond the diameter is the same as unbounded.
  EXPECT_EQ(engine.Evaluate(BoundedPair(99)).num_occurrences, 10u);
}

TEST(Bounded, BoundOneEqualsChildSemantics) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    Graph g = GeneratePowerLaw({.num_nodes = 80, .num_edges = 320,
                                .num_labels = 3, .seed = seed});
    GmEngine engine(g);
    PatternQuery child = GenerateRandomQuery(
        {.num_nodes = 4, .num_edges = 4, .num_labels = 3,
         .variant = QueryVariant::kChildOnly, .seed = seed + 50});
    // Retype every edge as a 1-bounded descendant edge.
    std::vector<QueryEdge> bounded_edges = child.Edges();
    for (QueryEdge& e : bounded_edges) {
      e.kind = EdgeKind::kDescendant;
      e.max_hops = 1;
    }
    PatternQuery bounded =
        PatternQuery::FromParts(child.Labels(), bounded_edges);
    auto a = engine.EvaluateCollect(child);
    auto b = engine.EvaluateCollect(bounded);
    EXPECT_EQ(std::set<Occurrence>(a.begin(), a.end()),
              std::set<Occurrence>(b.begin(), b.end()))
        << "seed " << seed;
  }
}

TEST(Bounded, BoundedReachesHelperAgreesWithReference) {
  Graph g = GeneratePowerLaw({.num_nodes = 60, .num_edges = 200,
                              .num_labels = 2, .seed = 5});
  for (NodeId u = 0; u < g.NumNodes(); u += 3) {
    for (NodeId v = 0; v < g.NumNodes(); v += 3) {
      for (uint32_t k : {1u, 2u, 3u}) {
        EXPECT_EQ(BoundedReaches(g, u, v, k), SlowReachesBounded(g, u, v, k))
            << u << "->" << v << " k=" << k;
      }
    }
  }
}

TEST(Bounded, BatchBfsHelpersHonorBound) {
  Graph g = PathGraph();
  Bitmap targets = {4};
  EXPECT_EQ(NodesReaching(g, targets, 1).ToVector(),
            (std::vector<NodeId>{3}));
  EXPECT_EQ(NodesReaching(g, targets, 2).ToVector(),
            (std::vector<NodeId>{2, 3}));
  Bitmap sources = {0};
  EXPECT_EQ(NodesReachableFrom(g, sources, 2).ToVector(),
            (std::vector<NodeId>{1, 2}));
}

TEST(Bounded, ParserSupportsBoundSyntax) {
  auto q = ParsePattern("(a:0)=3>(b:1)");
  ASSERT_TRUE(q.has_value());
  ASSERT_EQ(q->NumEdges(), 1u);
  EXPECT_EQ(q->Edge(0).kind, EdgeKind::kDescendant);
  EXPECT_EQ(q->Edge(0).max_hops, 3u);
  // Round trip through PatternToString.
  auto round = ParsePattern(PatternToString(*q));
  ASSERT_TRUE(round.has_value());
  EXPECT_EQ(*round, *q);
  // Malformed bound.
  EXPECT_FALSE(ParsePattern("(a:0)=3(b:1)").has_value());
}

TEST(Bounded, QueryIoRoundTrip) {
  PatternQuery q = PatternQuery::FromParts(
      {0, 1, 2},
      {{0, 1, EdgeKind::kChild},
       {1, 2, EdgeKind::kDescendant, 5}});
  std::string text = QueryToString(q);
  EXPECT_NE(text.find("d 5"), std::string::npos);
  auto parsed = ParseQuery(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, q);
}

TEST(Bounded, TransitiveReductionKeepsBoundedEdges) {
  // (a)->(b)->(c) plus a BOUNDED (a)=2>(c): the bound is a real constraint
  // (a path a->b->c of length 2 exists in Q, but on the data the two-step
  // path might be longer), so the edge must survive.
  PatternQuery q = PatternQuery::FromParts(
      {0, 1, 2},
      {{0, 1, EdgeKind::kChild},
       {1, 2, EdgeKind::kChild},
       {0, 2, EdgeKind::kDescendant, 2}});
  PatternQuery reduced = QueryTransitiveReduction(q);
  EXPECT_EQ(reduced.NumEdges(), 3u);
  // The unbounded version IS redundant.
  PatternQuery q2 = PatternQuery::FromParts(
      {0, 1, 2},
      {{0, 1, EdgeKind::kChild},
       {1, 2, EdgeKind::kChild},
       {0, 2, EdgeKind::kDescendant, 0}});
  EXPECT_EQ(QueryTransitiveReduction(q2).NumEdges(), 2u);
}

TEST(Bounded, BoundMattersSemantiically) {
  // a -> x -> y -> b: within 3 hops but not 2.
  Graph g = Graph::FromEdges({0, 2, 2, 1}, {{0, 1}, {1, 2}, {2, 3}});
  GmEngine engine(g);
  auto two = ParsePattern("(a:0)=2>(b:1)");
  auto three = ParsePattern("(a:0)=3>(b:1)");
  ASSERT_TRUE(two.has_value() && three.has_value());
  EXPECT_EQ(engine.Evaluate(*two).num_occurrences, 0u);
  EXPECT_EQ(engine.Evaluate(*three).num_occurrences, 1u);
}

TEST(Bounded, WcojReportsUnsupported) {
  Graph g = PathGraph();
  WcojEngine wcoj(g);
  wcoj.MaterializeClosure(1 << 24, nullptr);
  WcojResult r = wcoj.Evaluate(BoundedPair(2));
  EXPECT_EQ(r.status, EvalStatus::kUnsupported);
}

// Differential property: GM / JM / TM / brute force agree on random graphs
// with mixed bounded/unbounded/child edges.
class BoundedCrossEngineTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BoundedCrossEngineTest, EnginesAgree) {
  const uint64_t seed = GetParam();
  Graph g = GeneratePowerLaw({.num_nodes = 60, .num_edges = 220,
                              .num_labels = 3, .seed = seed});
  auto reach = BuildReachabilityIndex(g, ReachKind::kBfl);
  MatchContext ctx(g, *reach);

  // Random acyclic query; retype edges cyclically: child / bounded(2) /
  // unbounded descendant.
  PatternQuery base = GenerateRandomQuery({.num_nodes = 4, .num_edges = 5,
                                           .num_labels = 3,
                                           .variant = QueryVariant::kChildOnly,
                                           .seed = seed * 13 + 7});
  std::vector<QueryEdge> edges = base.Edges();
  for (size_t i = 0; i < edges.size(); ++i) {
    switch (i % 3) {
      case 0:
        break;  // keep child
      case 1:
        edges[i].kind = EdgeKind::kDescendant;
        edges[i].max_hops = 2;
        break;
      case 2:
        edges[i].kind = EdgeKind::kDescendant;
        edges[i].max_hops = 0;
        break;
    }
  }
  PatternQuery q = PatternQuery::FromParts(base.Labels(), edges);

  auto expected = BruteForceAnswer(g, q);
  GmEngine engine(g);
  auto gm = engine.EvaluateCollect(q);
  EXPECT_EQ(std::set<Occurrence>(gm.begin(), gm.end()), expected) << "GM";

  std::vector<Occurrence> jm_tuples;
  JmResult jm = JmEvaluate(ctx, q, JmOptions{}, [&](const Occurrence& t) {
    jm_tuples.push_back(t);
    return true;
  });
  ASSERT_EQ(jm.status, EvalStatus::kOk);
  EXPECT_EQ(std::set<Occurrence>(jm_tuples.begin(), jm_tuples.end()), expected)
      << "JM";

  std::vector<Occurrence> tm_tuples;
  TmResult tm = TmEvaluate(ctx, q, TmOptions{}, [&](const Occurrence& t) {
    tm_tuples.push_back(t);
    return true;
  });
  ASSERT_EQ(tm.status, EvalStatus::kOk);
  EXPECT_EQ(std::set<Occurrence>(tm_tuples.begin(), tm_tuples.end()), expected)
      << "TM";
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundedCrossEngineTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace rigpm
