// Unit tests for the staged query pipeline: phase chain structure, per-phase
// timing reporting, the empty-RIG shortcut, EvalContext reuse across
// queries, and the parallel verify stage of GraphDatabase.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "engine/eval_context.h"
#include "engine/gm_engine.h"
#include "engine/pipeline.h"
#include "graph/generators.h"
#include "graphdb/graph_database.h"
#include "query/query_generator.h"
#include "test_util.h"

namespace rigpm {
namespace {

using ::rigpm::testing::PaperExample;

std::vector<std::string> PhaseNames(const QueryPipeline& p) {
  std::vector<std::string> names;
  for (const auto& phase : p.phases()) names.push_back(phase->name());
  return names;
}

TEST(QueryPipeline, StandardChainHasThePaperPhases) {
  EXPECT_EQ(PhaseNames(QueryPipeline::StandardChain()),
            (std::vector<std::string>{"Reduce", "Prefilter", "Simulate",
                                      "BuildRig", "Order", "Enumerate"}));
  EXPECT_EQ(PhaseNames(QueryPipeline::MatchingChain()),
            (std::vector<std::string>{"Reduce", "Prefilter", "Simulate",
                                      "BuildRig"}));
}

TEST(QueryPipeline, PhaseTimingsReportedPerExecutedPhase) {
  Graph g = PaperExample::MakeGraph();
  GmEngine engine(g);
  GmResult r = engine.Evaluate(PaperExample::MakeQuery());
  ASSERT_EQ(r.phase_timings.size(), 6u);
  EXPECT_STREQ(r.phase_timings.front().name, "Reduce");
  EXPECT_STREQ(r.phase_timings.back().name, "Enumerate");
  for (const PhaseTiming& pt : r.phase_timings) EXPECT_GE(pt.ms, 0.0);
  EXPECT_EQ(r.num_occurrences, 4u);
}

TEST(QueryPipeline, EmptyRigShortcutStopsTheChain) {
  // No node carries label 9, so the candidate sets are empty and the chain
  // must stop at BuildRig without ordering or enumeration.
  Graph g = PaperExample::MakeGraph();
  GmEngine engine(g);
  PatternQuery q = PatternQuery::FromParts(
      {PaperExample::kLabelA, 9}, {{0, 1, EdgeKind::kChild}});
  GmResult r = engine.Evaluate(q);
  EXPECT_TRUE(r.empty_rig_shortcut);
  EXPECT_EQ(r.num_occurrences, 0u);
  ASSERT_EQ(r.phase_timings.size(), 4u);
  EXPECT_STREQ(r.phase_timings.back().name, "BuildRig");
  EXPECT_TRUE(r.order_used.empty());
}

TEST(EvalContext, ReusedAcrossQueriesGivesIdenticalAnswers) {
  Graph g = GeneratePowerLaw({.num_nodes = 60, .num_edges = 200,
                              .num_labels = 3, .seed = 9});
  GmEngine engine(g);
  std::vector<PatternQuery> queries;
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    queries.push_back(GenerateRandomQuery({.num_nodes = 4, .num_edges = 4,
                                           .num_labels = 3,
                                           .variant = QueryVariant::kHybrid,
                                           .seed = seed}));
  }

  EvalContext ctx = engine.MakeContext();
  uint64_t total = 0;
  for (const PatternQuery& q : queries) {
    // Fresh-context result == recycled-context result, query by query.
    uint64_t fresh = engine.Evaluate(q).num_occurrences;
    uint64_t reused = engine.Evaluate(ctx, q).num_occurrences;
    EXPECT_EQ(reused, fresh);
    total += reused;
  }
  EXPECT_EQ(ctx.queries_evaluated(), queries.size());
  EXPECT_EQ(ctx.occurrences_emitted(), total);
  EXPECT_FALSE(ctx.Summary().empty());
}

TEST(EvalContext, BuildRigOnlyMatchesPipelineRigStats) {
  Graph g = PaperExample::MakeGraph();
  GmEngine engine(g);
  GmResult rig_only;
  Rig rig = engine.BuildRigOnly(PaperExample::MakeQuery(), GmOptions{},
                                &rig_only);
  GmResult full = engine.Evaluate(PaperExample::MakeQuery());
  EXPECT_EQ(rig.TotalNodes(), full.rig_nodes);
  EXPECT_EQ(rig.TotalEdges(), full.rig_edges);
  EXPECT_EQ(rig_only.rig_nodes, full.rig_nodes);
  EXPECT_EQ(rig_only.rig_edges, full.rig_edges);
}

TEST(GraphDatabase, ParallelVerifyMatchesSequential) {
  GraphDatabase db;
  for (uint64_t seed = 0; seed < 12; ++seed) {
    db.Add(GeneratePowerLaw({.num_nodes = 30, .num_edges = 80,
                             .num_labels = 3, .seed = seed}),
           "g" + std::to_string(seed));
  }
  PatternQuery q = GenerateRandomQuery({.num_nodes = 3, .num_edges = 3,
                                        .num_labels = 3,
                                        .variant = QueryVariant::kHybrid,
                                        .seed = 77});
  GraphDatabase::SearchOptions seq;
  auto expected = db.Search(q, seq);
  for (uint32_t threads : {0u, 2u, 4u, 8u}) {
    GraphDatabase::SearchOptions par;
    par.num_threads = threads;
    GraphDatabase::SearchStats stats;
    auto got = db.Search(q, par, &stats);
    EXPECT_EQ(got, expected) << "threads=" << threads;
    EXPECT_EQ(stats.verified, stats.candidates_after_filter);
  }
}

}  // namespace
}  // namespace rigpm
