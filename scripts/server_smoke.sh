#!/usr/bin/env bash
# End-to-end smoke of the query daemon: dump a snapshot, start rigpm_serve
# on a Unix socket, run client queries against it, diff every count against
# direct `rigpm_cli` evaluation of the same snapshot, and verify the daemon
# shuts down cleanly (both via a client shutdown request and via SIGTERM).
#
# usage: scripts/server_smoke.sh BUILD_DIR
set -eu

BUILD_DIR=${1:?usage: server_smoke.sh BUILD_DIR}
WORK_DIR=$(mktemp -d)
trap 'kill "${SERVER_PID:-}" "${SERVER_PID_B:-}" 2>/dev/null || true; rm -rf "${WORK_DIR}"' EXIT

GRAPH=${WORK_DIR}/graph.txt
SNAP=${WORK_DIR}/engine.snap
SOCK=${WORK_DIR}/rigpm.sock

# The paper's running example graph (Fig. 2): known answers for the queries
# below.
cat > "${GRAPH}" <<'EOF'
t 10 13
v 0 0
v 1 0
v 2 0
v 3 1
v 4 1
v 5 1
v 6 1
v 7 2
v 8 2
v 9 2
e 0 6
e 1 3
e 2 5
e 1 7
e 1 8
e 2 7
e 2 9
e 3 7
e 3 8
e 4 7
e 4 9
e 5 3
e 5 9
EOF

QUERIES=(
  "(a:0)->(b:1), (a)->(c:2), (b)=>(c)"
  "(a:0)->(b:1)"
  "(a:0)=>(c:2)"
  "(b:1)=>(c:2)"
)

echo "== snapshot"
"${BUILD_DIR}/rigpm_cli" snapshot --graph "${GRAPH}" --out "${SNAP}"

echo "== start daemon"
"${BUILD_DIR}/rigpm_serve" --snapshot "${SNAP}" --socket "${SOCK}" \
  --workers 4 > "${WORK_DIR}/serve.log" 2>&1 &
SERVER_PID=$!

# Wait (bounded) for the daemon to answer pings.
for _ in $(seq 1 50); do
  if "${BUILD_DIR}/rigpm_cli" client --socket "${SOCK}" --ping \
       >/dev/null 2>&1; then
    break
  fi
  sleep 0.1
done
"${BUILD_DIR}/rigpm_cli" client --socket "${SOCK}" --ping

echo "== query daemon vs direct evaluation"
count_of() { grep -Eo '^[0-9]+ occurrence' <<<"$1" | grep -Eo '[0-9]+'; }
for q in "${QUERIES[@]}"; do
  served=$("${BUILD_DIR}/rigpm_cli" client --socket "${SOCK}" \
             --pattern "${q}" --print 0)
  direct=$("${BUILD_DIR}/rigpm_cli" --load-snapshot "${SNAP}" \
             --pattern "${q}" --print 0)
  served_n=$(count_of "${served}")
  direct_n=$(count_of "${direct}")
  echo "query '${q}': served=${served_n} direct=${direct_n}"
  if [ "${served_n}" != "${direct_n}" ] || [ -z "${served_n}" ]; then
    echo "FAIL: count mismatch" >&2
    exit 1
  fi
done

echo "== concurrent clients"
pids=()
for i in 1 2 3 4; do
  "${BUILD_DIR}/rigpm_cli" client --socket "${SOCK}" \
    --pattern "${QUERIES[0]}" --print 0 > "${WORK_DIR}/client_${i}.out" &
  pids+=($!)
done
for pid in "${pids[@]}"; do wait "${pid}"; done
for i in 1 2 3 4; do
  n=$(count_of "$(cat "${WORK_DIR}/client_${i}.out")")
  echo "concurrent client ${i}: ${n} occurrence(s)"
  [ "${n}" = "4" ] || { echo "FAIL: expected 4" >&2; exit 1; }
done

echo "== stats"
"${BUILD_DIR}/rigpm_cli" client --socket "${SOCK}" --stats

echo "== clean shutdown via client request"
"${BUILD_DIR}/rigpm_cli" client --socket "${SOCK}" --shutdown
code=0
wait "${SERVER_PID}" || code=$?
SERVER_PID=
[ "${code}" = "0" ] || { echo "FAIL: daemon exited ${code}" >&2; exit 1; }
grep -q "shutdown:" "${WORK_DIR}/serve.log" || {
  echo "FAIL: no shutdown summary in daemon log" >&2; exit 1; }

echo "== two daemons, one snapshot (shared mmap)"
# The mmap deployment pattern: N daemons map the same snapshot read-only
# MAP_SHARED and share one physical copy of the graph. Both must answer
# every query with identical counts.
SOCK_B=${WORK_DIR}/rigpm_b.sock
"${BUILD_DIR}/rigpm_serve" --snapshot "${SNAP}" --socket "${SOCK}" \
  --snapshot-io mmap --workers 2 > "${WORK_DIR}/serve_a.log" 2>&1 &
SERVER_PID=$!
"${BUILD_DIR}/rigpm_serve" --snapshot "${SNAP}" --socket "${SOCK_B}" \
  --snapshot-io mmap --workers 2 > "${WORK_DIR}/serve_b.log" 2>&1 &
SERVER_PID_B=$!
for s in "${SOCK}" "${SOCK_B}"; do
  for _ in $(seq 1 50); do
    if "${BUILD_DIR}/rigpm_cli" client --socket "${s}" --ping \
         >/dev/null 2>&1; then
      break
    fi
    sleep 0.1
  done
  "${BUILD_DIR}/rigpm_cli" client --socket "${s}" --ping
done
for q in "${QUERIES[@]}"; do
  a=$(count_of "$("${BUILD_DIR}/rigpm_cli" client --socket "${SOCK}" \
        --pattern "${q}" --print 0)")
  b=$(count_of "$("${BUILD_DIR}/rigpm_cli" client --socket "${SOCK_B}" \
        --pattern "${q}" --print 0)")
  echo "query '${q}': daemon A=${a} daemon B=${b}"
  if [ "${a}" != "${b}" ] || [ -z "${a}" ]; then
    echo "FAIL: daemons on one snapshot disagree" >&2
    exit 1
  fi
done
# Informational: per-daemon RSS — the second mapping of the same snapshot
# is physically shared, so B's graph pages cost ~nothing extra.
for pid in "${SERVER_PID}" "${SERVER_PID_B}"; do
  rss=$(grep -E '^VmRSS' "/proc/${pid}/status" 2>/dev/null || true)
  echo "daemon ${pid}: ${rss:-VmRSS unavailable}"
done
"${BUILD_DIR}/rigpm_cli" client --socket "${SOCK_B}" --shutdown
code=0
wait "${SERVER_PID_B}" || code=$?
SERVER_PID_B=
[ "${code}" = "0" ] || { echo "FAIL: daemon B exited ${code}" >&2; exit 1; }
"${BUILD_DIR}/rigpm_cli" client --socket "${SOCK}" --shutdown
code=0
wait "${SERVER_PID}" || code=$?
SERVER_PID=
[ "${code}" = "0" ] || { echo "FAIL: daemon A exited ${code}" >&2; exit 1; }

echo "== clean shutdown via SIGTERM"
"${BUILD_DIR}/rigpm_serve" --snapshot "${SNAP}" --socket "${SOCK}" \
  --workers 2 > "${WORK_DIR}/serve2.log" 2>&1 &
SERVER_PID=$!
for _ in $(seq 1 50); do
  if "${BUILD_DIR}/rigpm_cli" client --socket "${SOCK}" --ping \
       >/dev/null 2>&1; then
    break
  fi
  sleep 0.1
done
kill -TERM "${SERVER_PID}"
code=0
wait "${SERVER_PID}" || code=$?
SERVER_PID=
[ "${code}" = "0" ] || { echo "FAIL: daemon exited ${code} on SIGTERM" >&2; exit 1; }

echo "server smoke: OK"
