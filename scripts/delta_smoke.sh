#!/usr/bin/env bash
# End-to-end smoke of the delta-log refresh path: snapshot a graph, append
# two delta batches via the CLI, start a daemon armed with the log, send
# kRefresh after each batch, diff every served count against a cold rebuild
# of the merged graph (`rigpm_cli --load-snapshot ... --delta ...`), keep
# clients querying THROUGH the refresh (no round trip may fail), and
# require a clean shutdown. The daemon deliberately runs FEWER workers
# (2) than concurrent clients (4): the event loop multiplexes, so the
# old "size the pool above the client count" caveat must stay dead.
#
# usage: scripts/delta_smoke.sh BUILD_DIR
set -eu

BUILD_DIR=${1:?usage: delta_smoke.sh BUILD_DIR}
WORK_DIR=$(mktemp -d)
trap 'kill "${SERVER_PID:-}" 2>/dev/null || true; rm -rf "${WORK_DIR}"' EXIT

GRAPH=${WORK_DIR}/graph.txt
SNAP=${WORK_DIR}/base.snap
DELTA=${WORK_DIR}/graph.delta
SOCK=${WORK_DIR}/rigpm.sock

# The paper's running example graph (Fig. 2).
cat > "${GRAPH}" <<'EOF'
t 10 13
v 0 0
v 1 0
v 2 0
v 3 1
v 4 1
v 5 1
v 6 1
v 7 2
v 8 2
v 9 2
e 0 6
e 1 3
e 2 5
e 1 7
e 1 8
e 2 7
e 2 9
e 3 7
e 3 8
e 4 7
e 4 9
e 5 3
e 5 9
EOF

# Two update batches: batch 1 gives a0 a b-child and a c-child (new hybrid
# matches), batch 2 gives b3 a path to a c (more reachability matches).
cat > "${WORK_DIR}/batch1.txt" <<'EOF'
0 3
0 7
EOF
cat > "${WORK_DIR}/batch2.txt" <<'EOF'
6 9
EOF

QUERIES=(
  "(a:0)->(b:1), (a)->(c:2), (b)=>(c)"
  "(a:0)->(b:1)"
  "(a:0)=>(c:2)"
  "(b:1)=>(c:2)"
)

count_of() { grep -Eo '^[0-9]+ occurrence' <<<"$1" | grep -Eo '[0-9]+'; }

diff_served_vs_cold() {
  # Served counts must equal a cold rebuild of base + the records appended
  # so far ($1 = "with-delta" once the log exists).
  for q in "${QUERIES[@]}"; do
    served=$("${BUILD_DIR}/rigpm_cli" client --socket "${SOCK}" \
               --pattern "${q}" --print 0)
    if [ "$1" = "with-delta" ]; then
      direct=$("${BUILD_DIR}/rigpm_cli" --load-snapshot "${SNAP}" \
                 --delta "${DELTA}" --pattern "${q}" --print 0)
    else
      direct=$("${BUILD_DIR}/rigpm_cli" --load-snapshot "${SNAP}" \
                 --pattern "${q}" --print 0)
    fi
    served_n=$(count_of "${served}")
    direct_n=$(count_of "${direct}")
    echo "query '${q}': served=${served_n} cold=${direct_n}"
    if [ "${served_n}" != "${direct_n}" ] || [ -z "${served_n}" ]; then
      echo "FAIL: count mismatch" >&2
      exit 1
    fi
  done
}

echo "== snapshot"
"${BUILD_DIR}/rigpm_cli" snapshot --graph "${GRAPH}" --out "${SNAP}"

echo "== start daemon (delta-armed)"
"${BUILD_DIR}/rigpm_serve" --snapshot "${SNAP}" --delta "${DELTA}" \
  --socket "${SOCK}" --workers 2 > "${WORK_DIR}/serve.log" 2>&1 &
SERVER_PID=$!
for _ in $(seq 1 50); do
  if "${BUILD_DIR}/rigpm_cli" client --socket "${SOCK}" --ping \
       >/dev/null 2>&1; then
    break
  fi
  sleep 0.1
done
"${BUILD_DIR}/rigpm_cli" client --socket "${SOCK}" --ping

echo "== baseline counts (no delta yet)"
diff_served_vs_cold "no-delta"

echo "== append batch 1, refresh, re-diff"
"${BUILD_DIR}/rigpm_cli" delta append --base "${SNAP}" --delta "${DELTA}" \
  --edges "${WORK_DIR}/batch1.txt"
"${BUILD_DIR}/rigpm_cli" client --socket "${SOCK}" --refresh
diff_served_vs_cold "with-delta"

echo "== append batch 2; refresh WHILE clients query"
"${BUILD_DIR}/rigpm_cli" delta append --base "${SNAP}" --delta "${DELTA}" \
  --edges "${WORK_DIR}/batch2.txt"
pids=()
for i in 1 2 3 4; do
  (
    for _ in $(seq 1 10); do
      "${BUILD_DIR}/rigpm_cli" client --socket "${SOCK}" \
        --pattern "${QUERIES[0]}" --print 0 > /dev/null || exit 1
    done
  ) &
  pids+=($!)
done
"${BUILD_DIR}/rigpm_cli" client --socket "${SOCK}" --refresh
for pid in "${pids[@]}"; do
  wait "${pid}" || { echo "FAIL: client dropped during refresh" >&2; exit 1; }
done
echo "no client failed across the refresh"
diff_served_vs_cold "with-delta"

echo "== second refresh round is a no-op"
out=$("${BUILD_DIR}/rigpm_cli" client --socket "${SOCK}" --refresh)
echo "${out}"
grep -q "refresh: 0 record(s)" <<<"${out}" || {
  echo "FAIL: expected a caught-up refresh" >&2; exit 1; }

echo "== stats"
stats=$("${BUILD_DIR}/rigpm_cli" client --socket "${SOCK}" --stats)
echo "${stats}"
grep -q "refreshes: 2" <<<"${stats}" || {
  echo "FAIL: expected 2 refreshes in stats" >&2; exit 1; }
grep -qE ", 0 error" <<<"$(grep requests: <<<"${stats}")" || {
  echo "FAIL: daemon counted protocol errors" >&2; exit 1; }

echo "== delta inspect"
"${BUILD_DIR}/rigpm_cli" delta inspect --delta "${DELTA}"

echo "== clean shutdown"
"${BUILD_DIR}/rigpm_cli" client --socket "${SOCK}" --shutdown
code=0
wait "${SERVER_PID}" || code=$?
SERVER_PID=
[ "${code}" = "0" ] || { echo "FAIL: daemon exited ${code}" >&2; exit 1; }
grep -q "shutdown:" "${WORK_DIR}/serve.log" || {
  echo "FAIL: no shutdown summary in daemon log" >&2; exit 1; }

echo "delta smoke: OK"
