#!/usr/bin/env bash
# End-to-end smoke of the generation-keyed result cache: start a delta-armed
# daemon, replay the same queries (--repeat) so the second and later rounds
# hit, verify hits via --stats, check that a permuted declaration of the
# same pattern shares the cache entry, then append a delta batch and
# kRefresh — the new generation must start with an EMPTY cache (counters
# reset, counts equal a cold rebuild of base+delta, not the cached answer).
# Finally --cache-bytes 0 must serve identically with the cache off.
#
# usage: scripts/cache_smoke.sh BUILD_DIR
set -eu

BUILD_DIR=${1:?usage: cache_smoke.sh BUILD_DIR}
WORK_DIR=$(mktemp -d)
trap 'kill "${SERVER_PID:-}" 2>/dev/null || true; rm -rf "${WORK_DIR}"' EXIT

GRAPH=${WORK_DIR}/graph.txt
SNAP=${WORK_DIR}/base.snap
DELTA=${WORK_DIR}/graph.delta
SOCK=${WORK_DIR}/rigpm.sock

# The paper's running example graph (Fig. 2).
cat > "${GRAPH}" <<'EOF'
t 10 13
v 0 0
v 1 0
v 2 0
v 3 1
v 4 1
v 5 1
v 6 1
v 7 2
v 8 2
v 9 2
e 0 6
e 1 3
e 2 5
e 1 7
e 1 8
e 2 7
e 2 9
e 3 7
e 3 8
e 4 7
e 4 9
e 5 3
e 5 9
EOF

# Gives a0 a b-child and a c-child: the paper query's count changes, so a
# stale cache hit after the refresh would be caught red-handed.
cat > "${WORK_DIR}/batch1.txt" <<'EOF'
0 3
0 7
EOF

QUERY="(a:0)->(b:1), (a)->(c:2), (b)=>(c)"
# The same pattern with the clauses declared in a different order (node
# numbering permuted by first appearance) — must share one cache entry.
QUERY_PERMUTED="(b:1)=>(c:2), (x:0)->(c), (x)->(b)"

count_of() { grep -Eo '^[0-9]+ occurrence' <<<"$1" | grep -Eo '[0-9]+'; }
# Pulls one counter out of the "result cache: ..." stats line, e.g.
# cache_stat "$stats" 'miss\(es\)'.
cache_stat() {
  grep '^result cache:' <<<"$1" | grep -Eo "[0-9]+ ${2}" | grep -Eo '[0-9]+'
}

serve() {
  "${BUILD_DIR}/rigpm_serve" --snapshot "${SNAP}" --delta "${DELTA}" \
    --socket "${SOCK}" --workers 2 "$@" > "${WORK_DIR}/serve.log" 2>&1 &
  SERVER_PID=$!
  for _ in $(seq 1 50); do
    if "${BUILD_DIR}/rigpm_cli" client --socket "${SOCK}" --ping \
         >/dev/null 2>&1; then
      return
    fi
    sleep 0.1
  done
  echo "FAIL: daemon never answered ping" >&2
  exit 1
}

echo "== snapshot + start daemon"
"${BUILD_DIR}/rigpm_cli" snapshot --graph "${GRAPH}" --out "${SNAP}"
serve

echo "== warm the cache: 5 rounds of the same query on one connection"
out=$("${BUILD_DIR}/rigpm_cli" client --socket "${SOCK}" \
        --pattern "${QUERY}" --repeat 5 --print 0)
echo "${out}"
cold_n=$(count_of "${out}")
[ "${cold_n}" = "4" ] || { echo "FAIL: expected 4 occurrences" >&2; exit 1; }
grep -q "repeat: 5 round(s) completed" <<<"${out}" || {
  echo "FAIL: --repeat summary missing" >&2; exit 1; }

echo "== the permuted declaration must hit the same entry"
perm=$("${BUILD_DIR}/rigpm_cli" client --socket "${SOCK}" \
         --pattern "${QUERY_PERMUTED}" --print 0)
[ "$(count_of "${perm}")" = "4" ] || {
  echo "FAIL: permuted pattern served a different count" >&2; exit 1; }

echo "== stats: 1 miss, >= 5 hits (4 repeats + permuted twin)"
stats=$("${BUILD_DIR}/rigpm_cli" client --socket "${SOCK}" --stats)
grep "result cache" <<<"${stats}"
misses=$(cache_stat "${stats}" 'miss\(es\)')
hits=$(cache_stat "${stats}" 'hit\(s\)')
[ "${misses}" = "1" ] || { echo "FAIL: expected 1 miss" >&2; exit 1; }
[ "${hits}" -ge 5 ] || { echo "FAIL: expected >= 5 hits" >&2; exit 1; }
grep -qE 'flushes: [1-9][0-9]*' <<<"${stats}" || {
  echo "FAIL: no write flushes counted" >&2; exit 1; }

echo "== append a results-changing batch, refresh, re-query"
"${BUILD_DIR}/rigpm_cli" delta append --base "${SNAP}" --delta "${DELTA}" \
  --edges "${WORK_DIR}/batch1.txt"
"${BUILD_DIR}/rigpm_cli" client --socket "${SOCK}" --refresh
after=$("${BUILD_DIR}/rigpm_cli" client --socket "${SOCK}" \
          --pattern "${QUERY}" --repeat 3 --print 0)
after_n=$(count_of "${after}")
direct=$("${BUILD_DIR}/rigpm_cli" --load-snapshot "${SNAP}" \
           --delta "${DELTA}" --pattern "${QUERY}" --print 0)
direct_n=$(count_of "${direct}")
echo "served=${after_n} cold-rebuild=${direct_n} (pre-refresh was ${cold_n})"
[ "${after_n}" = "${direct_n}" ] || {
  echo "FAIL: post-refresh count does not match a cold rebuild" >&2; exit 1; }
[ "${after_n}" != "${cold_n}" ] || {
  echo "FAIL: batch was supposed to change the answer" >&2; exit 1; }

echo "== stats after refresh: generation swap reset the tenant counters"
stats2=$("${BUILD_DIR}/rigpm_cli" client --socket "${SOCK}" --stats)
grep "result cache" <<<"${stats2}"
misses2=$(cache_stat "${stats2}" 'miss\(es\)')
[ "${misses2}" = "1" ] || {
  echo "FAIL: fresh generation should show exactly 1 miss" >&2; exit 1; }
grep -qE ", 0 error" <<<"$(grep requests: <<<"${stats2}")" || {
  echo "FAIL: daemon counted protocol errors" >&2; exit 1; }

echo "== clean shutdown"
"${BUILD_DIR}/rigpm_cli" client --socket "${SOCK}" --shutdown
code=0
wait "${SERVER_PID}" || code=$?
SERVER_PID=
[ "${code}" = "0" ] || { echo "FAIL: daemon exited ${code}" >&2; exit 1; }

echo "== --cache-bytes 0 serves identically with the cache disabled"
serve --cache-bytes 0
# The fresh daemon starts from the base snapshot; replay the log first so
# it serves the same graph the cached run ended on.
"${BUILD_DIR}/rigpm_cli" client --socket "${SOCK}" --refresh
out0=$("${BUILD_DIR}/rigpm_cli" client --socket "${SOCK}" \
         --pattern "${QUERY}" --repeat 3 --print 0)
[ "$(count_of "${out0}")" = "${direct_n}" ] || {
  echo "FAIL: cache-off count differs" >&2; exit 1; }
stats0=$("${BUILD_DIR}/rigpm_cli" client --socket "${SOCK}" --stats)
grep -q "result cache: 0 hit(s), 0 miss(es)" <<<"${stats0}" || {
  echo "FAIL: disabled cache still counted traffic" >&2; exit 1; }
"${BUILD_DIR}/rigpm_cli" client --socket "${SOCK}" --shutdown
code=0
wait "${SERVER_PID}" || code=$?
SERVER_PID=
[ "${code}" = "0" ] || { echo "FAIL: daemon exited ${code}" >&2; exit 1; }

echo "cache smoke: OK"
