#!/usr/bin/env bash
# Maintenance smoke: a daemon with a maintenance thread under continuous
# add/delete churn from the CLI appender, with live clients querying the
# whole time. Asserts that (1) the background thread picks the records up
# and auto-compaction fires — the lineage head re-points the base and the
# active log shrinks back to a fresh generation, (2) served counts equal a
# cold rebuild of the CURRENT lineage's base+delta after the churn stops,
# and (3) not one client round trip fails across all the refreshes and
# compactions.
#
# usage: scripts/churn_smoke.sh BUILD_DIR
set -eu

BUILD_DIR=${1:?usage: churn_smoke.sh BUILD_DIR}
WORK_DIR=$(mktemp -d)
trap 'kill "${SERVER_PID:-}" 2>/dev/null || true; rm -rf "${WORK_DIR}"' EXIT

GRAPH=${WORK_DIR}/graph.txt
SNAP=${WORK_DIR}/base.snap
DELTA=${WORK_DIR}/graph.delta
SOCK=${WORK_DIR}/rigpm.sock

# The paper's running example graph (Fig. 2).
cat > "${GRAPH}" <<'EOF'
t 10 13
v 0 0
v 1 0
v 2 0
v 3 1
v 4 1
v 5 1
v 6 1
v 7 2
v 8 2
v 9 2
e 0 6
e 1 3
e 2 5
e 1 7
e 1 8
e 2 7
e 2 9
e 3 7
e 3 8
e 4 7
e 4 9
e 5 3
e 5 9
EOF

# Churn batches: grow then shrink the same region, with genuine deletes of
# base edges in the mix, so the log carries both op kinds every cycle.
cat > "${WORK_DIR}/grow.txt" <<'EOF'
+ 0 3
+ 0 7
+ 6 9
- 1 3
EOF
cat > "${WORK_DIR}/shrink.txt" <<'EOF'
- 0 3
- 0 7
- 6 9
+ 1 3
EOF

QUERIES=(
  "(a:0)->(b:1), (a)->(c:2), (b)=>(c)"
  "(a:0)->(b:1)"
  "(a:0)=>(c:2)"
)

count_of() { grep -Eo '^[0-9]+ occurrence' <<<"$1" | grep -Eo '[0-9]+'; }

echo "== snapshot"
"${BUILD_DIR}/rigpm_cli" snapshot --graph "${GRAPH}" --out "${SNAP}"

echo "== start daemon (maintenance thread: 50ms poll, compact at 5%)"
"${BUILD_DIR}/rigpm_serve" --snapshot "${SNAP}" --delta "${DELTA}" \
  --socket "${SOCK}" --workers 2 \
  --maintenance-interval-ms 50 --auto-compact-ratio 0.05 \
  > "${WORK_DIR}/serve.log" 2>&1 &
SERVER_PID=$!
for _ in $(seq 1 50); do
  if "${BUILD_DIR}/rigpm_cli" client --socket "${SOCK}" --ping \
       >/dev/null 2>&1; then
    break
  fi
  sleep 0.1
done
"${BUILD_DIR}/rigpm_cli" client --socket "${SOCK}" --ping

echo "== live clients querying through the churn"
pids=()
for i in 1 2 3; do
  (
    while [ ! -f "${WORK_DIR}/stop" ]; do
      "${BUILD_DIR}/rigpm_cli" client --socket "${SOCK}" \
        --pattern "${QUERIES[$((i % 3))]}" --print 0 > /dev/null || exit 1
    done
  ) &
  pids+=($!)
done

echo "== churn: alternating add/delete batches via the CLI appender"
# Each append follows the lineage head, so batches keep landing in the
# right log as the daemon compacts underneath the appender.
compactions=0
for round in $(seq 1 40); do
  if [ $((round % 2)) -eq 1 ]; then
    batch=${WORK_DIR}/grow.txt
  else
    batch=${WORK_DIR}/shrink.txt
  fi
  "${BUILD_DIR}/rigpm_cli" delta append --base "${SNAP}" \
    --delta "${DELTA}" --edges "${batch}" > /dev/null
  stats=$("${BUILD_DIR}/rigpm_cli" client --socket "${SOCK}" --stats)
  compactions=$(grep -Eo '[0-9]+ compaction' <<<"${stats}" |
    grep -Eo '[0-9]+')
  if [ "${compactions:-0}" -ge 2 ] && [ "${round}" -ge 10 ]; then
    break
  fi
  sleep 0.1
done
echo "churn stopped after ${round} round(s), ${compactions} compaction(s)"
if [ "${compactions:-0}" -lt 1 ]; then
  echo "FAIL: auto-compaction never fired" >&2
  exit 1
fi

echo "== stop churn; no client round trip may have failed"
touch "${WORK_DIR}/stop"
for pid in "${pids[@]}"; do
  wait "${pid}" || {
    echo "FAIL: a client round trip failed during churn" >&2; exit 1; }
done
echo "all clients survived every refresh and compaction"

echo "== quiesce: wait for the maintenance thread to drain and settle"
# With appends stopped, the thread refreshes the tail and compacts at most
# once more; after that the log is empty and the counters stop moving.
# Only then is the lineage stable enough to inspect from outside.
prev=""
for _ in $(seq 1 100); do
  stats=$("${BUILD_DIR}/rigpm_cli" client --socket "${SOCK}" --stats)
  now=$(grep maintenance: <<<"${stats}")
  if [ -n "${prev}" ] && [ "${now}" = "${prev}" ]; then
    break
  fi
  prev=${now}
  sleep 0.2
done
echo "${now}"

echo "== lineage re-pointed and the active log shrank"
HEAD=${SNAP}.head
[ -f "${HEAD}" ] || { echo "FAIL: no lineage head published" >&2; exit 1; }
cat "${HEAD}"
CUR_SNAP=$(grep '^snapshot ' "${HEAD}" | cut -d' ' -f2-)
CUR_DELTA=$(grep '^delta ' "${HEAD}" | cut -d' ' -f2-)
[ "${CUR_SNAP}" != "${SNAP}" ] || {
  echo "FAIL: head still points at generation 0" >&2; exit 1; }
[ -f "${CUR_SNAP}" ] || { echo "FAIL: ${CUR_SNAP} missing" >&2; exit 1; }
if [ -f "${DELTA}" ]; then
  echo "FAIL: generation-0 delta log survived compaction" >&2
  exit 1
fi
old_size=$(stat -c '%s' "${SNAP}")
new_log=$(stat -c '%s' "${CUR_DELTA}")
echo "active log: ${new_log} byte(s) (base snapshot ${old_size})"
if [ "${new_log}" -ge "${old_size}" ]; then
  echo "FAIL: compaction left the log as large as the base" >&2
  exit 1
fi

echo "== served counts equal a cold rebuild of the current lineage"
# One explicit refresh pins the daemon to the log tail before the diff
# (the maintenance tick may not have fired since the last append).
"${BUILD_DIR}/rigpm_cli" client --socket "${SOCK}" --refresh > /dev/null
for q in "${QUERIES[@]}"; do
  served=$("${BUILD_DIR}/rigpm_cli" client --socket "${SOCK}" \
             --pattern "${q}" --print 0)
  direct=$("${BUILD_DIR}/rigpm_cli" --load-snapshot "${CUR_SNAP}" \
             --delta "${CUR_DELTA}" --pattern "${q}" --print 0)
  served_n=$(count_of "${served}")
  direct_n=$(count_of "${direct}")
  echo "query '${q}': served=${served_n} cold=${direct_n}"
  if [ "${served_n}" != "${direct_n}" ] || [ -z "${served_n}" ]; then
    echo "FAIL: count mismatch" >&2
    exit 1
  fi
done

echo "== maintenance counters over the wire"
stats=$("${BUILD_DIR}/rigpm_cli" client --socket "${SOCK}" --stats)
grep maintenance: <<<"${stats}"
grep -qE 'maintenance: [1-9][0-9]* auto-refresh' <<<"${stats}" || {
  echo "FAIL: no auto-refreshes counted" >&2; exit 1; }
grep -qE '[1-9][0-9]* byte\(s\) reclaimed' <<<"${stats}" || {
  echo "FAIL: no bytes reclaimed counted" >&2; exit 1; }
grep -qE '[1-9][0-9]* delete\(s\) applied' <<<"${stats}" || {
  echo "FAIL: no delete ops counted" >&2; exit 1; }
grep -qE ', 0 error' <<<"$(grep requests: <<<"${stats}")" || {
  echo "FAIL: daemon counted protocol errors" >&2; exit 1; }

echo "== delta inspect shows the op histogram"
"${BUILD_DIR}/rigpm_cli" delta inspect --delta "${CUR_DELTA}"

echo "== clean shutdown"
"${BUILD_DIR}/rigpm_cli" client --socket "${SOCK}" --shutdown
code=0
wait "${SERVER_PID}" || code=$?
SERVER_PID=
[ "${code}" = "0" ] || { echo "FAIL: daemon exited ${code}" >&2; exit 1; }

echo "churn smoke: OK"
