#!/usr/bin/env bash
# C10K smoke of the event-loop server core: park 1000+ idle connections on
# the daemon (rigpm_cli client --idle-hold), then drive hot PIPELINED
# clients through a kRefresh engine swap, and diff every served count
# against a cold rebuild of the merged graph. The idle flood must not cost
# a single failed round trip — with only 2 workers, a thread-per-connection
# core would deadlock instantly; the epoll core just holds the fds.
#
# usage: scripts/c10k_smoke.sh BUILD_DIR [IDLE_CONNS]
set -eu

BUILD_DIR=${1:?usage: c10k_smoke.sh BUILD_DIR [IDLE_CONNS]}
IDLE_CONNS=${2:-1000}
WORK_DIR=$(mktemp -d)
trap 'kill "${SERVER_PID:-}" "${HOLD_PID:-}" 2>/dev/null || true; \
     rm -rf "${WORK_DIR}"' EXIT

# The flood needs an fd per connection on BOTH sides; lift the soft
# RLIMIT_NOFILE toward the hard cap (best effort — many CI hard caps are
# 1048576, but fall back to a smaller flood if the cap is low).
hard=$(ulimit -Hn)
if [ "${hard}" != "unlimited" ] && [ "${hard}" -lt $((IDLE_CONNS + 512)) ]; then
  IDLE_CONNS=$((hard - 512))
  echo "note: RLIMIT_NOFILE hard cap ${hard}; shrinking flood to ${IDLE_CONNS}"
fi
ulimit -Sn "$((IDLE_CONNS + 512))" 2>/dev/null ||
  ulimit -Sn "${hard}" 2>/dev/null || true
echo "fd limit: soft $(ulimit -Sn), hard ${hard}; flood ${IDLE_CONNS}"

GRAPH=${WORK_DIR}/graph.txt
SNAP=${WORK_DIR}/base.snap
DELTA=${WORK_DIR}/graph.delta
SOCK=${WORK_DIR}/rigpm.sock

# The paper's running example graph (Fig. 2).
cat > "${GRAPH}" <<'EOF'
t 10 13
v 0 0
v 1 0
v 2 0
v 3 1
v 4 1
v 5 1
v 6 1
v 7 2
v 8 2
v 9 2
e 0 6
e 1 3
e 2 5
e 1 7
e 1 8
e 2 7
e 2 9
e 3 7
e 3 8
e 4 7
e 4 9
e 5 3
e 5 9
EOF

# One update batch so the kRefresh mid-flood actually swaps an engine.
cat > "${WORK_DIR}/batch1.txt" <<'EOF'
0 3
0 7
EOF

QUERIES=(
  "(a:0)->(b:1), (a)->(c:2), (b)=>(c)"
  "(a:0)->(b:1)"
  "(a:0)=>(c:2)"
  "(b:1)=>(c:2)"
)

count_of() { grep -Eo '^[0-9]+ occurrence' <<<"$1" | grep -Eo '[0-9]+'; }

diff_served_vs_cold() {
  # Served counts (pipelined AND sequential) must equal a cold rebuild of
  # base + whatever the log holds ($1 = "with-delta" once it exists).
  for q in "${QUERIES[@]}"; do
    served=$("${BUILD_DIR}/rigpm_cli" client --socket "${SOCK}" \
               --pattern "${q}" --print 0 --pipeline 8 | tail -n 1)
    if [ "$1" = "with-delta" ]; then
      direct=$("${BUILD_DIR}/rigpm_cli" --load-snapshot "${SNAP}" \
                 --delta "${DELTA}" --pattern "${q}" --print 0)
    else
      direct=$("${BUILD_DIR}/rigpm_cli" --load-snapshot "${SNAP}" \
                 --pattern "${q}" --print 0)
    fi
    served_n=$(count_of "${served}")
    direct_n=$(count_of "${direct}")
    echo "query '${q}': served=${served_n} cold=${direct_n}"
    if [ "${served_n}" != "${direct_n}" ] || [ -z "${served_n}" ]; then
      echo "FAIL: count mismatch" >&2
      exit 1
    fi
  done
}

echo "== snapshot"
"${BUILD_DIR}/rigpm_cli" snapshot --graph "${GRAPH}" --out "${SNAP}"

echo "== start daemon (2 workers, delta-armed)"
"${BUILD_DIR}/rigpm_serve" --snapshot "${SNAP}" --delta "${DELTA}" \
  --socket "${SOCK}" --workers 2 > "${WORK_DIR}/serve.log" 2>&1 &
SERVER_PID=$!
for _ in $(seq 1 50); do
  if "${BUILD_DIR}/rigpm_cli" client --socket "${SOCK}" --ping \
       >/dev/null 2>&1; then
    break
  fi
  sleep 0.1
done
"${BUILD_DIR}/rigpm_cli" client --socket "${SOCK}" --ping

echo "== park ${IDLE_CONNS} idle connection(s)"
"${BUILD_DIR}/rigpm_cli" client --socket "${SOCK}" \
  --idle-hold "${IDLE_CONNS}" --hold-secs 600 \
  > "${WORK_DIR}/hold.log" 2>&1 &
HOLD_PID=$!
for _ in $(seq 1 100); do
  if grep -q "holding" "${WORK_DIR}/hold.log" 2>/dev/null; then break; fi
  kill -0 "${HOLD_PID}" 2>/dev/null || {
    echo "FAIL: idle holder died:" >&2; cat "${WORK_DIR}/hold.log" >&2
    exit 1; }
  sleep 0.1
done
grep -q "holding ${IDLE_CONNS} connection(s)" "${WORK_DIR}/hold.log" || {
  echo "FAIL: idle holder never reported" >&2
  cat "${WORK_DIR}/hold.log" >&2; exit 1; }

stats=$("${BUILD_DIR}/rigpm_cli" client --socket "${SOCK}" --stats)
echo "${stats}" | grep connections:
active=$(grep -Eo '[0-9]+ active' <<<"${stats}" | grep -Eo '[0-9]+')
[ "${active}" -ge "${IDLE_CONNS}" ] || {
  echo "FAIL: expected >= ${IDLE_CONNS} active connections, saw ${active}" >&2
  exit 1; }

echo "== hot queries through the flood (baseline counts)"
diff_served_vs_cold "no-delta"

echo "== refresh WHILE the flood is parked and pipelined clients query"
"${BUILD_DIR}/rigpm_cli" delta append --base "${SNAP}" --delta "${DELTA}" \
  --edges "${WORK_DIR}/batch1.txt"
pids=()
for i in 1 2 3 4; do
  (
    for _ in $(seq 1 5); do
      "${BUILD_DIR}/rigpm_cli" client --socket "${SOCK}" \
        --pattern "${QUERIES[0]}" --print 0 --pipeline 16 > /dev/null ||
        exit 1
    done
  ) &
  pids+=($!)
done
"${BUILD_DIR}/rigpm_cli" client --socket "${SOCK}" --refresh
for pid in "${pids[@]}"; do
  wait "${pid}" || {
    echo "FAIL: pipelined client dropped during refresh" >&2; exit 1; }
done
echo "no pipelined client failed across the refresh"
diff_served_vs_cold "with-delta"

echo "== stats after the storm"
stats=$("${BUILD_DIR}/rigpm_cli" client --socket "${SOCK}" --stats)
echo "${stats}"
grep -qE ", 0 error" <<<"$(grep requests: <<<"${stats}")" || {
  echo "FAIL: daemon counted protocol errors" >&2; exit 1; }
grep -q "accept-to-first-byte" <<<"${stats}" || {
  echo "FAIL: no accept latency in stats" >&2; exit 1; }

echo "== release the flood; daemon must reap the EOFs"
kill "${HOLD_PID}" 2>/dev/null || true
wait "${HOLD_PID}" 2>/dev/null || true
HOLD_PID=
for _ in $(seq 1 100); do
  stats=$("${BUILD_DIR}/rigpm_cli" client --socket "${SOCK}" --stats)
  active=$(grep -Eo '[0-9]+ active' <<<"${stats}" | grep -Eo '[0-9]+')
  if [ "${active}" -lt 10 ]; then break; fi
  sleep 0.1
done
echo "active connections after release: ${active}"
[ "${active}" -lt 10 ] || {
  echo "FAIL: daemon failed to reap the released flood" >&2; exit 1; }

echo "== clean shutdown"
"${BUILD_DIR}/rigpm_cli" client --socket "${SOCK}" --shutdown
code=0
wait "${SERVER_PID}" || code=$?
SERVER_PID=
[ "${code}" = "0" ] || { echo "FAIL: daemon exited ${code}" >&2; exit 1; }
grep -q "shutdown:" "${WORK_DIR}/serve.log" || {
  echo "FAIL: no shutdown summary in daemon log" >&2; exit 1; }

echo "c10k smoke: OK"
