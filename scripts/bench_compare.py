#!/usr/bin/env python3
"""Compare a fresh bench_smoke run against a committed baseline.

usage: bench_compare.py BASELINE.json CURRENT.json
           [--max-regress 0.25] [--min-abs-secs 1.0]

Both files are BENCH_*.json summaries written by scripts/bench_smoke.sh
(one record per bench: name, status, exit_code, seconds). The comparison
fails (exit 1) when:

  * any bench present in BOTH files has status != "ok" in CURRENT,
  * any bench present in the baseline is missing from CURRENT (a bench
    silently dropping out of the suite is a regression too), or
  * any bench slowed down by more than --max-regress (relative) AND more
    than --min-abs-secs (absolute). The absolute floor exists because CI
    runners are noisy and sub-second benches routinely jitter far beyond
    25% — a 0.05s -> 0.08s "regression" is measurement noise, a
    30s -> 40s one is not.

Benches only present in CURRENT (new in this PR) are reported but never
fail the comparison; they become part of the baseline when the next
BENCH_N.json is committed.
"""

import argparse
import json
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    benches = {}
    for rec in doc.get("benches", []):
        benches[rec["name"]] = rec
    if not benches:
        sys.exit(f"error: {path} contains no bench records")
    return doc, benches


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--max-regress", type=float, default=0.25,
                        help="relative slowdown threshold (default 0.25)")
    parser.add_argument("--min-abs-secs", type=float, default=1.0,
                        help="absolute slowdown floor in seconds "
                             "(default 1.0)")
    args = parser.parse_args()

    base_doc, base = load(args.baseline)
    cur_doc, cur = load(args.current)

    if base_doc.get("scale") != cur_doc.get("scale"):
        print(f"warning: scale differs (baseline {base_doc.get('scale')}, "
              f"current {cur_doc.get('scale')}) — timings are not "
              f"comparable", file=sys.stderr)

    # Timings only compare between runs with the SAME core count: the
    # parallel benches scale with it, so a 2-core runner against a 4-core
    # baseline reads as a uniform "regression" that no threshold can
    # tell from a real one. Status and presence are still checked.
    base_cores = base_doc.get("cores")
    cur_cores = cur_doc.get("cores")
    compare_timings = base_cores is not None and base_cores == cur_cores
    if not compare_timings:
        print(f"warning: core counts differ or are unrecorded (baseline "
              f"{base_cores}, current {cur_cores}) — only statuses are "
              f"compared, timings are skipped", file=sys.stderr)

    failures = []
    width = max(len(n) for n in set(base) | set(cur))
    print(f"{'bench':<{width}}  {'base(s)':>8}  {'now(s)':>8}  "
          f"{'delta':>7}  verdict")
    for name in sorted(set(base) | set(cur)):
        if name not in cur:
            failures.append(f"{name}: present in baseline but missing "
                            f"from the current run")
            print(f"{name:<{width}}  {base[name]['seconds']:>8}  "
                  f"{'-':>8}  {'-':>7}  MISSING")
            continue
        if name not in base:
            print(f"{name:<{width}}  {'-':>8}  "
                  f"{cur[name]['seconds']:>8}  {'-':>7}  new (ignored)")
            continue
        b, c = base[name], cur[name]
        if c.get("status") != "ok":
            failures.append(f"{name}: status {c.get('status')} "
                            f"(exit {c.get('exit_code')})")
            print(f"{name:<{width}}  {b['seconds']:>8}  {c['seconds']:>8}  "
                  f"{'-':>7}  {c.get('status').upper()}")
            continue
        if not compare_timings:
            print(f"{name:<{width}}  {b['seconds']:>8}  "
                  f"{c['seconds']:>8}  {'-':>7}  ok (cores differ)")
            continue
        bs, cs = float(b["seconds"]), float(c["seconds"])
        delta = cs - bs
        # A 0.00s baseline (sub-centisecond bench) must not disable the
        # check: any growth past the absolute floor is a regression there.
        rel = (delta / bs) if bs > 0 else float("inf")
        regressed = rel > args.max_regress and delta > args.min_abs_secs
        verdict = "REGRESSED" if regressed else "ok"
        rel_str = f"{rel * 100:+6.0f}%" if bs > 0 else "   n/a"
        if regressed:
            failures.append(f"{name}: {bs:.2f}s -> {cs:.2f}s "
                            f"(+{delta:.2f}s)")
        print(f"{name:<{width}}  {bs:>8.2f}  {cs:>8.2f}  "
              f"{rel_str}  {verdict}")

    if failures:
        print(f"\n{len(failures)} bench regression(s) vs {args.baseline}:",
              file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        sys.exit(1)
    print(f"\nno regressions vs {args.baseline} "
          f"(>{args.max_regress * 100:.0f}% and "
          f">{args.min_abs_secs}s slower)")


if __name__ == "__main__":
    main()
