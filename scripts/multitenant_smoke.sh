#!/usr/bin/env bash
# End-to-end smoke of the multi-tenant catalog: ONE daemon serving three
# graphs (two of them delta-armed) behind `--graph NAME=SNAP[:DELTA]` with
# an LRU cap BELOW the tenant count (--max-engines 2), so the concurrent
# scoped clients below churn evictions the whole time. Checks:
#   - capability ping (protocol revision 2, scoped + list-graphs bits),
#   - per-tenant counts diffed against cold rigpm_cli rebuilds of each
#     snapshot (+delta), for scoped AND unscoped-legacy clients,
#   - a tenant whose delta log existed before the daemon started (the lazy
#     open must replay it),
#   - per-tenant kRefresh applied to one tenant WHILE scoped clients flood
#     all three (no round trip may fail; other tenants' counts untouched),
#   - refresh rejections: caught-up no-op vs no-delta-configured,
#   - unknown graph ids answered with an error, not a dropped connection,
#   - catalog counters in --stats (3 registered, evictions > 0 under the
#     cap) and a clean shutdown.
#
# usage: scripts/multitenant_smoke.sh BUILD_DIR
set -eu

BUILD_DIR=${1:?usage: multitenant_smoke.sh BUILD_DIR}
WORK_DIR=$(mktemp -d)
trap 'kill "${SERVER_PID:-}" 2>/dev/null || true; rm -rf "${WORK_DIR}"' EXIT

SOCK=${WORK_DIR}/rigpm.sock
CLI=${BUILD_DIR}/rigpm_cli
SERVE=${BUILD_DIR}/rigpm_serve

# Tenant alpha: the paper's running example graph (Fig. 2).
cat > "${WORK_DIR}/alpha.txt" <<'EOF'
t 10 13
v 0 0
v 1 0
v 2 0
v 3 1
v 4 1
v 5 1
v 6 1
v 7 2
v 8 2
v 9 2
e 0 6
e 1 3
e 2 5
e 1 7
e 1 8
e 2 7
e 2 9
e 3 7
e 3 8
e 4 7
e 4 9
e 5 3
e 5 9
EOF

# Tenant beta: alpha plus two extra a0 edges — different counts, so a
# request routed to the wrong tenant cannot return the right number.
{ sed 's/^t 10 13$/t 10 15/' "${WORK_DIR}/alpha.txt"
  echo "e 0 3"; echo "e 0 7"; } > "${WORK_DIR}/beta.txt"

# Tenant gamma: alpha plus a b3->c2 edge (more reachability matches).
{ sed 's/^t 10 13$/t 10 14/' "${WORK_DIR}/alpha.txt"
  echo "e 6 9"; } > "${WORK_DIR}/gamma.txt"

QUERIES=(
  "(a:0)->(b:1), (a)->(c:2), (b)=>(c)"
  "(a:0)->(b:1)"
  "(b:1)=>(c:2)"
)

count_of() { grep -Eo '^[0-9]+ occurrence' <<<"$1" | grep -Eo '[0-9]+'; }

# diff_tenant NAME SNAP [DELTA]: every query's count through the scoped
# session must equal a cold rigpm_cli rebuild of that tenant's source.
diff_tenant() {
  local name=$1 snap=$2 delta=${3:-}
  for q in "${QUERIES[@]}"; do
    served=$("${CLI}" client --socket "${SOCK}" --graph "${name}" \
               --pattern "${q}" --print 0)
    if [ -n "${delta}" ]; then
      direct=$("${CLI}" --load-snapshot "${snap}" --delta "${delta}" \
                 --pattern "${q}" --print 0)
    else
      direct=$("${CLI}" --load-snapshot "${snap}" --pattern "${q}" \
                 --print 0)
    fi
    served_n=$(count_of "${served}")
    direct_n=$(count_of "${direct}")
    echo "tenant ${name} query '${q}': served=${served_n} cold=${direct_n}"
    if [ "${served_n}" != "${direct_n}" ] || [ -z "${served_n}" ]; then
      echo "FAIL: count mismatch for tenant ${name}" >&2
      exit 1
    fi
  done
}

echo "== snapshot the three tenants"
for t in alpha beta gamma; do
  "${CLI}" snapshot --graph "${WORK_DIR}/${t}.txt" \
    --out "${WORK_DIR}/${t}.snap"
done

echo "== pre-existing delta for beta (the lazy open must replay it)"
cat > "${WORK_DIR}/beta_batch.txt" <<'EOF'
6 9
EOF
"${CLI}" delta append --base "${WORK_DIR}/beta.snap" \
  --delta "${WORK_DIR}/beta.delta" --edges "${WORK_DIR}/beta_batch.txt"

echo "== start ONE daemon with three graphs, cap 2"
"${SERVE}" \
  --graph "alpha=${WORK_DIR}/alpha.snap:${WORK_DIR}/alpha.delta" \
  --graph "beta=${WORK_DIR}/beta.snap:${WORK_DIR}/beta.delta" \
  --graph "gamma=${WORK_DIR}/gamma.snap" \
  --max-engines 2 --socket "${SOCK}" --workers 2 \
  > "${WORK_DIR}/serve.log" 2>&1 &
SERVER_PID=$!
for _ in $(seq 1 50); do
  if "${CLI}" client --socket "${SOCK}" --ping >/dev/null 2>&1; then
    break
  fi
  sleep 0.1
done

echo "== capability ping"
pong=$("${CLI}" client --socket "${SOCK}" --ping)
echo "${pong}"
grep -q "protocol revision 2" <<<"${pong}" || {
  echo "FAIL: daemon does not advertise protocol revision 2" >&2; exit 1; }
grep -q "scoped" <<<"${pong}" || {
  echo "FAIL: scoped capability bit missing" >&2; exit 1; }

echo "== list graphs"
graphs=$("${CLI}" client --socket "${SOCK}" --list-graphs)
echo "${graphs}"
grep -q "3 registered" <<<"${graphs}" || {
  echo "FAIL: expected 3 registered graphs" >&2; exit 1; }
grep -q "default: alpha" <<<"${graphs}" || {
  echo "FAIL: expected alpha as the default graph" >&2; exit 1; }

echo "== per-tenant counts vs cold rebuilds (scoped sessions)"
diff_tenant alpha "${WORK_DIR}/alpha.snap"
diff_tenant beta "${WORK_DIR}/beta.snap" "${WORK_DIR}/beta.delta"
diff_tenant gamma "${WORK_DIR}/gamma.snap"

echo "== unscoped legacy client serves the default tenant (alpha)"
for q in "${QUERIES[@]}"; do
  legacy=$("${CLI}" client --socket "${SOCK}" --pattern "${q}" --print 0)
  direct=$("${CLI}" --load-snapshot "${WORK_DIR}/alpha.snap" \
             --pattern "${q}" --print 0)
  [ "$(count_of "${legacy}")" = "$(count_of "${direct}")" ] || {
    echo "FAIL: unscoped client diverged from the default tenant" >&2
    exit 1
  }
done

echo "== unknown graph id is an error, not a dead socket"
if out=$("${CLI}" client --socket "${SOCK}" --graph nope \
           --pattern "${QUERIES[0]}" --print 0 2>&1); then
  echo "FAIL: query for an unknown graph id succeeded" >&2; exit 1
fi
grep -q "unknown graph id" <<<"${out}" || {
  echo "FAIL: expected an unknown-graph-id error, got: ${out}" >&2
  exit 1
}

echo "== refresh alpha WHILE scoped clients flood all three tenants"
cat > "${WORK_DIR}/alpha_batch.txt" <<'EOF'
0 3
0 7
EOF
"${CLI}" delta append --base "${WORK_DIR}/alpha.snap" \
  --delta "${WORK_DIR}/alpha.delta" --edges "${WORK_DIR}/alpha_batch.txt"
pids=()
for t in alpha beta gamma; do
  (
    for _ in $(seq 1 10); do
      "${CLI}" client --socket "${SOCK}" --graph "${t}" \
        --pattern "${QUERIES[0]}" --print 0 > /dev/null || exit 1
    done
  ) &
  pids+=($!)
done
refresh_out=$("${CLI}" client --socket "${SOCK}" --graph alpha --refresh)
echo "${refresh_out}"
grep -q "refresh: 1 record(s)" <<<"${refresh_out}" || {
  echo "FAIL: expected 1 applied record for alpha" >&2; exit 1; }
for pid in "${pids[@]}"; do
  wait "${pid}" || {
    echo "FAIL: scoped client dropped during the refresh" >&2; exit 1; }
done
echo "no scoped client failed across the per-tenant refresh"

echo "== alpha serves base+delta; beta and gamma are untouched"
diff_tenant alpha "${WORK_DIR}/alpha.snap" "${WORK_DIR}/alpha.delta"
diff_tenant beta "${WORK_DIR}/beta.snap" "${WORK_DIR}/beta.delta"
diff_tenant gamma "${WORK_DIR}/gamma.snap"

echo "== refresh of a caught-up tenant is a no-op"
beta_refresh=$("${CLI}" client --socket "${SOCK}" --graph beta --refresh)
echo "${beta_refresh}"
grep -q "refresh: 0 record(s)" <<<"${beta_refresh}" || {
  echo "FAIL: expected a caught-up refresh for beta" >&2; exit 1; }

echo "== refresh of a delta-less tenant is rejected"
if out=$("${CLI}" client --socket "${SOCK}" --graph gamma --refresh 2>&1)
then
  echo "FAIL: refresh of gamma (no delta) succeeded" >&2; exit 1
fi
grep -q "delta" <<<"${out}" || {
  echo "FAIL: expected a no-delta-configured error, got: ${out}" >&2
  exit 1
}

echo "== catalog counters"
stats=$("${CLI}" client --socket "${SOCK}" --stats)
echo "${stats}"
grep -q "catalog: 3 graph(s)" <<<"${stats}" || {
  echo "FAIL: expected 3 graphs in the catalog stats" >&2; exit 1; }
evictions=$(grep -Eo '[0-9]+ eviction' <<<"${stats}" | grep -Eo '[0-9]+')
if [ -z "${evictions}" ] || [ "${evictions}" -lt 1 ]; then
  echo "FAIL: expected LRU evictions under --max-engines 2" >&2; exit 1
fi
echo "evictions under the cap: ${evictions}"

echo "== clean shutdown"
"${CLI}" client --socket "${SOCK}" --shutdown
code=0
wait "${SERVER_PID}" || code=$?
SERVER_PID=
[ "${code}" = "0" ] || { echo "FAIL: daemon exited ${code}" >&2; exit 1; }

echo "multitenant smoke: OK"
