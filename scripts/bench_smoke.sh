#!/usr/bin/env bash
# Smoke-runs every bench_* binary in its quick configuration and writes a
# BENCH_ci.json summary (one record per bench: status, exit code, wall
# seconds) so CI can track the perf trajectory per-PR.
#
# usage: scripts/bench_smoke.sh BUILD_DIR [OUT_JSON]
#
# Quick configuration:
#  * RIGPM_SCALE=0.02      -- tiny generated datasets (seconds, not minutes)
#  * RIGPM_LIMIT=20000     -- low per-query match cap
#  * RIGPM_TIMEOUT_MS=2000 -- short per-query budget for the baselines
#  * per-binary wall-clock timeout (TIMEOUT_SECS, default 300)
#  * Google-Benchmark binaries (bench_micro_*) run with a minimal min_time
set -u

BUILD_DIR=${1:?usage: bench_smoke.sh BUILD_DIR [OUT_JSON]}
OUT_JSON=${2:-${BUILD_DIR}/BENCH_ci.json}
TIMEOUT_SECS=${TIMEOUT_SECS:-300}
LOG_DIR=${BUILD_DIR}/bench_logs

export RIGPM_SCALE=${RIGPM_SCALE:-0.02}
export RIGPM_LIMIT=${RIGPM_LIMIT:-20000}
export RIGPM_TIMEOUT_MS=${RIGPM_TIMEOUT_MS:-2000}

mkdir -p "${LOG_DIR}"

benches=()
for bin in "${BUILD_DIR}"/bench_*; do
  [ -x "${bin}" ] && [ -f "${bin}" ] && benches+=("${bin}")
done
if [ ${#benches[@]} -eq 0 ]; then
  echo "no bench binaries found in ${BUILD_DIR}" >&2
  exit 1
fi

overall=0
{
  printf '{\n'
  printf '  "scale": %s,\n' "${RIGPM_SCALE}"
  printf '  "limit": %s,\n' "${RIGPM_LIMIT}"
  # Host metadata: parallel benches (bench_parallel_scale, bench_server)
  # scale with the core count, so comparisons are only meaningful between
  # runs on the same number of cores (scripts/bench_compare.py enforces
  # this).
  printf '  "cores": %s,\n' "$(nproc)"
  printf '  "host": {"os": "%s", "arch": "%s"},\n' \
    "$(uname -s)" "$(uname -m)"
  printf '  "benches": [\n'
  first=1
  for bin in "${benches[@]}"; do
    name=$(basename "${bin}")
    args=()
    case "${name}" in
      bench_micro_*) args=(--benchmark_min_time=0.01s) ;;
    esac
    start=$(date +%s.%N)
    timeout "${TIMEOUT_SECS}" "${bin}" "${args[@]+"${args[@]}"}" \
      >"${LOG_DIR}/${name}.log" 2>&1
    code=$?
    # Older Google Benchmark rejects the suffixed min_time; retry bare.
    if [ ${code} -ne 0 ] && [ "${#args[@]}" -gt 0 ]; then
      start=$(date +%s.%N)
      timeout "${TIMEOUT_SECS}" "${bin}" \
        >"${LOG_DIR}/${name}.log" 2>&1
      code=$?
    fi
    end=$(date +%s.%N)
    secs=$(awk -v a="${start}" -v b="${end}" 'BEGIN { printf "%.2f", b - a }')
    if [ ${code} -eq 124 ]; then
      status=timeout
    elif [ ${code} -eq 0 ]; then
      status=ok
    else
      status=fail
    fi
    [ ${code} -eq 0 ] || overall=1
    echo "${name}: ${status} (${secs}s)" >&2
    [ ${first} -eq 0 ] && printf ',\n'
    first=0
    printf '    {"name": "%s", "status": "%s", "exit_code": %d, "seconds": %s}' \
      "${name}" "${status}" "${code}" "${secs}"
  done
  printf '\n  ]\n}\n'
} >"${OUT_JSON}"

echo "wrote ${OUT_JSON}" >&2
exit ${overall}
