// Fig. 17: GM-JO and GM-RI vs the RapidMatch-style engine (RM = WCO joins
// with a topology-driven order) on large dense and sparse C-query sets over
// the Human graph. Expected shape: GM-JO wins on dense queries (cardinality
// information pays off), GM-RI wins on sparse ones; RM sits in between.

#include "bench_common.h"
#include "query/query_generator.h"

using namespace rigpm;
using namespace rigpm::bench;

namespace {

void RunSet(const Graph& g, const GmEngine& engine, const WcojEngine& rm,
            bool dense) {
  std::printf("\n-- %s query sets (mean time per size)\n",
              dense ? "dense" : "sparse");
  TablePrinter table({"Size", "GM-JO(ms)", "GM-RI(ms)", "RM(ms)", "#queries"});
  for (uint32_t size : {8u, 12u, 16u, 20u}) {
    double jo_ms = 0, ri_ms = 0, rm_ms = 0;
    int count = 0;
    for (uint32_t i = 0; i < 3; ++i) {
      ExtractedQueryOptions opts;
      opts.num_nodes = size;
      opts.variant = QueryVariant::kChildOnly;
      opts.seed = 1000 + size * 10 + i;
      opts.dense = dense;
      opts.max_attempts = 400;
      auto q = ExtractQueryFromGraph(g, opts);
      if (!q.has_value()) continue;
      ++count;
      GmOptions jo;
      jo.use_prefilter = false;
      jo.order = OrderStrategy::kJO;
      jo_ms += RunGm(engine, *q, jo).ms;
      GmOptions ri = jo;
      ri.order = OrderStrategy::kRI;
      ri_ms += RunGm(engine, *q, ri).ms;
      WcojOptions ropts;
      ropts.use_ri_order = true;
      rm_ms += RunWcoj(rm, *q, ropts).ms;
    }
    auto fmt = [&](double total) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.2f", count ? total / count : 0.0);
      return std::string(buf);
    };
    table.AddRow({std::to_string(size) + "N", fmt(jo_ms), fmt(ri_ms),
                  fmt(rm_ms), std::to_string(count)});
  }
  table.Print();
}

}  // namespace

int main() {
  PrintBenchHeader("Fig. 17 — GM-JO / GM-RI vs RM on Human (large C-queries)",
                   "scale=" + std::to_string(DatasetScaleFromEnv()));
  // RM treats graphs as undirected; store each edge both ways (§7.5).
  Graph g = Graph::MakeBidirected(MakeDatasetByName("hu"));
  std::printf("graph: %s\n", g.Summary().c_str());
  GmEngine engine(g);
  WcojEngine rm(g);
  RunSet(g, engine, rm, /*dense=*/true);
  RunSet(g, engine, rm, /*dense=*/false);
  return 0;
}
