// Fig. 13: size and construction time of the query-dependent summary graphs
// and the total query time, on ep H-queries:
//   GM   — pre-filter + double simulation + RIG,
//   GM-S — double simulation only,
//   GM-F — pre-filter only (no simulation),
//   TM   — the spanning tree's answer graph.
// Expected shape: GM/GM-S build the smallest graphs (sub-1% of the data
// graph), GM-F is ~10x larger, and the small RIG pays off in query time.

#include "bench_common.h"

using namespace rigpm;
using namespace rigpm::bench;

namespace {

struct VariantRow {
  std::string size_pct, build_s, total_s;
};

VariantRow RunVariant(const GmEngine& engine, const Graph& g,
                      const PatternQuery& q, bool prefilter, bool sim) {
  GmOptions opts;
  opts.use_prefilter = prefilter;
  opts.use_double_simulation = sim;
  opts.limit = MatchLimitFromEnv();
  GmResult r;
  double total_ms = TimeMs([&] { r = engine.Evaluate(q, opts); });
  double graph_size = static_cast<double>(g.NumNodes() + g.NumEdges());
  double pct = 100.0 * static_cast<double>(r.rig_nodes + r.rig_edges) /
               graph_size;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f%%", pct);
  return {buf,
          FormatSeconds(r.prefilter_ms + r.rig_select_ms + r.rig_expand_ms),
          FormatSeconds(total_ms)};
}

}  // namespace

int main() {
  PrintBenchHeader(
      "Fig. 13 — summary graph size / build / query time (ep, H-queries)",
      "scale=" + std::to_string(DatasetScaleFromEnv()));
  Graph g = MakeDatasetByName("ep");
  std::printf("graph: %s\n", g.Summary().c_str());
  GmEngine engine(g);
  auto reach = BuildReachabilityIndex(g, ReachKind::kBfl);
  MatchContext ctx(g, *reach);

  TablePrinter size_tab({"Query", "GM", "GM-S", "GM-F", "TM"});
  TablePrinter build_tab({"Query", "GM(s)", "GM-S(s)", "GM-F(s)", "TM(s)"});
  TablePrinter query_tab({"Query", "GM(s)", "GM-S(s)", "GM-F(s)", "TM(s)"});

  auto queries = TemplateWorkload(g, RepresentativeTemplateNames(),
                                  QueryVariant::kHybrid);
  const double graph_size = static_cast<double>(g.NumNodes() + g.NumEdges());
  for (const auto& nq : queries) {
    VariantRow gm = RunVariant(engine, g, nq.query, true, true);
    VariantRow gms = RunVariant(engine, g, nq.query, false, true);
    VariantRow gmf = RunVariant(engine, g, nq.query, true, false);

    TmOptions topts;
    topts.limit = MatchLimitFromEnv();
    topts.timeout_ms = TimeoutMsFromEnv();
    TmResult tm;
    double tm_total = TimeMs([&] { tm = TmEvaluate(ctx, nq.query, topts); });
    char tm_pct[32];
    std::snprintf(tm_pct, sizeof(tm_pct), "%.3f%%",
                  100.0 * static_cast<double>(tm.aux_graph_nodes +
                                              tm.aux_graph_edges) /
                      graph_size);
    std::string tm_build = (tm.status == EvalStatus::kOk)
                               ? FormatSeconds(tm.build_ms)
                               : EvalStatusName(tm.status);
    std::string tm_query = (tm.status == EvalStatus::kOk)
                               ? FormatSeconds(tm_total)
                               : EvalStatusName(tm.status);

    size_tab.AddRow({nq.name, gm.size_pct, gms.size_pct, gmf.size_pct, tm_pct});
    build_tab.AddRow({nq.name, gm.build_s, gms.build_s, gmf.build_s, tm_build});
    query_tab.AddRow({nq.name, gm.total_s, gms.total_s, gmf.total_s, tm_query});
  }
  std::printf("\n-- (a) summary graph size as %% of data graph size\n");
  size_tab.Print();
  std::printf("\n-- (b) construction time\n");
  build_tab.Print();
  std::printf("\n-- (c) total query time\n");
  query_tab.Print();
  return 0;
}
