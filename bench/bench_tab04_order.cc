// Table 4: effectiveness of the search ordering strategies on em and ep —
// GM with RI (topology only), JO (RIG cardinalities, the default) and BJ
// (exact DP left-deep plan). Expected shape: JO best overall, BJ close
// behind, RI noticeably worse on most H-queries.

#include "bench_common.h"

using namespace rigpm;
using namespace rigpm::bench;

int main() {
  PrintBenchHeader("Table 4 — search order strategies: GM-RI / GM-JO / GM-BJ",
                   "scale=" + std::to_string(DatasetScaleFromEnv()));
  TablePrinter table({"Dataset", "Query", "GM-RI(s)", "GM-JO(s)", "GM-BJ(s)"});
  for (const std::string& dataset : {"em", "ep"}) {
    Graph g = MakeDatasetByName(dataset);
    GmEngine engine(g);
    auto queries = TemplateWorkload(
        g, {"HQ2", "HQ3", "HQ4", "HQ15", "HQ18"}, QueryVariant::kHybrid);
    for (const auto& nq : queries) {
      std::vector<std::string> row = {dataset, nq.name};
      for (OrderStrategy s :
           {OrderStrategy::kRI, OrderStrategy::kJO, OrderStrategy::kBJ}) {
        GmOptions opts;
        opts.order = s;
        row.push_back(RunGm(engine, nq.query, opts).formatted);
      }
      table.AddRow(std::move(row));
    }
  }
  table.Print();
  return 0;
}
