// Maintenance costs (server/catalog.h RunMaintenance/Compact): what the
// daemon's background thread pays per tick, and what a compaction does to
// concurrent query latency.
//
// Part 1 — caught-up poll cost, the reason the poll is O(tail): a tenant
// whose log holds many already-applied records is polled two ways. A
// client kRefresh re-validates the whole chain from the header every time
// (by design — that scan is what diagnoses a rewritten log exactly), so
// its cost grows with the log. The maintenance poll answers the same
// "anything new?" question from one stat() against the stored
// applied-end offset — per-tick cost independent of log length. The table
// shows per-poll microseconds for both paths on the same log.
//
// Part 2 — compaction pause: a query thread hammers the catalog while the
// main thread runs append+compact cycles (snapshot re-dump, lineage
// republish, RCU re-point). Reported: compaction wall time and the p50/p99
// query latency during the compaction window vs an idle baseline — the RCU
// swap should leave the tail essentially untouched.
//
// Subject graph: "bs" scaled by RIGPM_SCALE, like every other bench.

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "query/pattern_parser.h"
#include "server/catalog.h"
#include "storage/delta_log.h"
#include "storage/lineage.h"
#include "storage/snapshot.h"

using namespace rigpm;
using namespace rigpm::bench;
using namespace rigpm::server;

namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() /
          (name + "." + std::to_string(::getpid())))
      .string();
}

double Pct(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  size_t rank = static_cast<size_t>(p * static_cast<double>(samples.size()));
  rank = std::min(rank, samples.size() - 1);
  std::nth_element(samples.begin(), samples.begin() + rank, samples.end());
  return samples[rank];
}

void RemoveAllGenerations(const std::string& snap, const std::string& delta) {
  for (uint64_t g = 1; g <= 16; ++g) {
    std::remove(GenerationPath(snap, g).c_str());
    std::remove(GenerationPath(delta, g).c_str());
  }
  std::remove(LineageHeadPath(snap).c_str());
  std::remove(snap.c_str());
  std::remove(delta.c_str());
}

}  // namespace

int main() {
  const double scale = DatasetScaleFromEnv();
  PrintBenchHeader("Maintenance — caught-up poll cost and compaction pause",
                   "scale=" + std::to_string(scale));

  const DatasetSpec& bs = DatasetByName("bs");
  Graph graph = MakeDataset(bs, scale);
  std::printf("graph: %s\n\n", graph.Summary().c_str());

  const std::string snap = TempPath("maint_base.snap");
  const std::string delta = TempPath("maint.delta");
  std::string error;
  {
    GmEngine cold(graph);
    if (!SaveEngineSnapshot(cold, snap, &error)) {
      std::fprintf(stderr, "snapshot failed: %s\n", error.c_str());
      return 1;
    }
  }
  auto info = InspectSnapshot(snap, &error);
  if (!info.has_value()) {
    std::fprintf(stderr, "inspect failed: %s\n", error.c_str());
    return 1;
  }

  // A log long enough that O(total log) vs O(tail) is visible: many small
  // already-applied records (each a mixed add/delete batch).
  constexpr int kRecords = 256;
  constexpr int kOpsPerRecord = 8;
  {
    auto writer =
        DeltaWriter::Open(delta, info->stored_checksum, graph.NumNodes(),
                          &error, {.fsync_each_append = false});
    if (writer == nullptr) {
      std::fprintf(stderr, "writer open failed: %s\n", error.c_str());
      return 1;
    }
    uint64_t next = 0;
    for (int r = 0; r < kRecords; ++r) {
      std::vector<DeltaOp> ops;
      for (int i = 0; i < kOpsPerRecord; ++i) {
        NodeId u = static_cast<NodeId>(next++ % graph.NumNodes());
        auto nbrs = graph.OutNeighbors(u);
        if (i % 2 == 1 && !nbrs.empty()) {
          ops.push_back({u, nbrs[0], DeltaOpKind::kDelete});
        } else {
          ops.push_back(
              {u, static_cast<NodeId>((u + 1) % graph.NumNodes()),
               DeltaOpKind::kAdd});
        }
      }
      if (!writer->AppendOps(ops, &error)) {
        std::fprintf(stderr, "append failed: %s\n", error.c_str());
        return 1;
      }
    }
  }

  EngineCatalog catalog;
  EngineSource source;
  source.snapshot_path = snap;
  source.delta_path = delta;
  if (!catalog.Register("g", source, &error)) {
    std::fprintf(stderr, "register failed: %s\n", error.c_str());
    return 1;
  }
  if (catalog.Acquire("g", &error) == nullptr) {  // replay all records
    std::fprintf(stderr, "open failed: %s\n", error.c_str());
    return 1;
  }
  catalog.SetMaintenancePolicy({.auto_compact_ratio = 0.0,
                                .interval_ms = 1});

  // ----- part 1: caught-up poll, full-chain kRefresh vs O(tail) stat
  constexpr int kPolls = 200;
  double full_ms = TimeMs([&] {
    for (int i = 0; i < kPolls; ++i) {
      CatalogRefreshResult r = catalog.Refresh("g");
      if (!r.ok) {
        std::fprintf(stderr, "refresh failed: %s\n", r.error.c_str());
        std::exit(1);
      }
    }
  });
  double fast_ms = TimeMs([&] {
    for (int i = 0; i < kPolls; ++i) catalog.RunMaintenance();
  });

  TablePrinter poll({"caught-up poll over " + std::to_string(kRecords) +
                         " applied records",
                     "per poll(us)"});
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f", full_ms * 1000.0 / kPolls);
  poll.AddRow({"client kRefresh (full-chain re-validate)", buf});
  std::snprintf(buf, sizeof(buf), "%.1f", fast_ms * 1000.0 / kPolls);
  poll.AddRow({"maintenance tick (stat vs applied end offset)", buf});
  poll.Print();
  std::printf("\n");

  // ----- part 2: compaction pause under concurrent queries
  const std::string probe = "(a:0)->(b:1)";
  auto q = ParsePattern(probe);
  GmOptions qopts;
  qopts.limit = 1000;  // small fixed probe: latency, not throughput

  std::atomic<bool> stop{false};
  std::atomic<bool> compacting{false};
  std::vector<double> idle_lat, pause_lat;
  std::thread prober([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      bool during = compacting.load(std::memory_order_relaxed);
      std::string perr;
      double ms = TimeMs([&] {
        auto state = catalog.Acquire("g", &perr);
        if (state == nullptr) {
          std::fprintf(stderr, "acquire failed: %s\n", perr.c_str());
          std::exit(1);
        }
        (void)state->engine->EvaluateCollect(*q, qopts).size();
      });
      (during ? pause_lat : idle_lat).push_back(ms);
    }
  });

  // Idle baseline, then append+compact cycles.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  constexpr int kCycles = 4;
  std::vector<double> compact_ms;
  for (int cycle = 0; cycle < kCycles; ++cycle) {
    Lineage lineage;
    if (!ResolveLineage(snap, delta, &lineage, &error)) {
      std::fprintf(stderr, "resolve failed: %s\n", error.c_str());
      return 1;
    }
    auto gen_info = InspectSnapshot(lineage.snapshot_path, &error);
    auto writer = DeltaWriter::Open(lineage.delta_path,
                                    gen_info->stored_checksum,
                                    graph.NumNodes(), &error,
                                    {.fsync_each_append = false});
    if (writer == nullptr) {
      std::fprintf(stderr, "reopen failed: %s\n", error.c_str());
      return 1;
    }
    std::vector<DeltaOp> ops = {
        {static_cast<NodeId>(cycle), static_cast<NodeId>(cycle + 2),
         DeltaOpKind::kAdd}};
    if (!writer->AppendOps(ops, &error)) {
      std::fprintf(stderr, "append failed: %s\n", error.c_str());
      return 1;
    }
    writer.reset();  // release the flock or the compaction politely skips

    compacting.store(true, std::memory_order_relaxed);
    double ms = TimeMs([&] {
      CatalogCompactionResult c = catalog.Compact("g");
      if (!c.ok || c.skipped) {
        std::fprintf(stderr, "compact failed: %s%s\n", c.error.c_str(),
                     c.skipped ? " (skipped)" : "");
        std::exit(1);
      }
    });
    compacting.store(false, std::memory_order_relaxed);
    compact_ms.push_back(ms);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true);
  prober.join();

  MaintenanceStats ms_stats = catalog.maintenance_stats();
  TablePrinter pause({"compaction under load", "value"});
  std::snprintf(buf, sizeof(buf), "%.1f", Pct(compact_ms, 0.5));
  pause.AddRow({"compaction wall p50 (ms)", buf});
  std::snprintf(buf, sizeof(buf), "%.1f",
                *std::max_element(compact_ms.begin(), compact_ms.end()));
  pause.AddRow({"compaction wall max (ms)", buf});
  std::snprintf(buf, sizeof(buf), "%.2f / %.2f", Pct(idle_lat, 0.5),
                Pct(idle_lat, 0.99));
  pause.AddRow({"query p50/p99 idle (ms)", buf});
  std::snprintf(buf, sizeof(buf), "%.2f / %.2f", Pct(pause_lat, 0.5),
                Pct(pause_lat, 0.99));
  pause.AddRow({"query p50/p99 during compaction (ms)", buf});
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(ms_stats.bytes_reclaimed));
  pause.AddRow({"bytes reclaimed over " + std::to_string(kCycles) +
                    " compactions",
                buf});
  pause.Print();
  std::printf("\nqueries sampled: %zu idle, %zu during compaction\n",
              idle_lat.size(), pause_lat.size());

  RemoveAllGenerations(snap, delta);
  return 0;
}
