// Fig. 8: H-query evaluation time of GM, TM and JM.
//  (a)/(b): template instances of the acyclic/cyclic/clique/combo classes on
//           em and ep;
//  (c)-(e): random (extracted) hybrid queries of growing size on hp, yt, hu.
// Expected shape: GM solves everything; TM/JM lag by orders of magnitude and
// fail (TO/OM) on the heavy clique/combo queries and the largest sizes.

#include "bench_common.h"

using namespace rigpm;
using namespace rigpm::bench;

namespace {

void TemplatePart(const std::string& dataset) {
  Graph g = MakeDatasetByName(dataset);
  std::printf("\n-- %s: %s\n", dataset.c_str(), g.Summary().c_str());
  GmEngine engine(g);
  auto reach = BuildReachabilityIndex(g, ReachKind::kBfl);
  MatchContext ctx(g, *reach);

  TablePrinter table(
      {"Class", "Query", "GM(s)", "TM(s)", "JM(s)", "GM matches"});
  auto queries = TemplateWorkload(g, RepresentativeTemplateNames(),
                                  QueryVariant::kHybrid);
  for (const auto& nq : queries) {
    auto gm = RunGm(engine, nq.query);
    auto tm = RunTm(ctx, nq.query);
    auto jm = RunJm(ctx, nq.query);
    table.AddRow({PatternClassName(TemplateByName(nq.name).cls), nq.name,
                  gm.formatted, tm.formatted, jm.formatted,
                  std::to_string(gm.matches)});
  }
  table.Print();
}

void ExtractedPart(const std::string& dataset,
                   const std::vector<uint32_t>& sizes) {
  Graph g = MakeDatasetByName(dataset);
  std::printf("\n-- %s (random H-queries): %s\n", dataset.c_str(),
              g.Summary().c_str());
  GmEngine engine(g);
  auto reach = BuildReachabilityIndex(g, ReachKind::kBfl);
  MatchContext ctx(g, *reach);

  TablePrinter table({"Query", "GM(s)", "TM(s)", "JM(s)", "GM matches"});
  auto queries = ExtractedWorkload(g, sizes, QueryVariant::kHybrid);
  for (const auto& nq : queries) {
    auto gm = RunGm(engine, nq.query);
    auto tm = RunTm(ctx, nq.query);
    auto jm = RunJm(ctx, nq.query);
    table.AddRow({nq.name, gm.formatted, tm.formatted, jm.formatted,
                  std::to_string(gm.matches)});
  }
  table.Print();
}

}  // namespace

int main() {
  PrintBenchHeader("Fig. 8 — H-query evaluation time: GM vs TM vs JM",
                   "limit=" + std::to_string(MatchLimitFromEnv()) +
                       " timeout=" + FormatSeconds(TimeoutMsFromEnv()) + "s" +
                       " scale=" + std::to_string(DatasetScaleFromEnv()));
  TemplatePart("em");
  TemplatePart("ep");
  ExtractedPart("hp", {4, 8, 16, 24, 32});
  ExtractedPart("yt", {4, 8, 16, 24, 32});
  ExtractedPart("hu", {4, 8, 12, 16, 20});
  return 0;
}
