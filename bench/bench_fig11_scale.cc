// Fig. 11: elapsed time of H-queries HQ8 and HQ12 on increasingly larger
// subsets of the DBLP graph (50k..300k nodes at paper scale). Expected
// shape: all engines grow with graph size; GM scales smoothly while TM and
// JM blow up (timeouts / out-of-memory) well before the largest subset.

#include "bench_common.h"

using namespace rigpm;
using namespace rigpm::bench;

int main() {
  PrintBenchHeader("Fig. 11 — H-query time vs data size (DBLP subsets)",
                   "scale=" + std::to_string(DatasetScaleFromEnv()));
  const DatasetSpec& db = DatasetByName("db");
  const double scale = DatasetScaleFromEnv();

  for (const std::string& qname : {"HQ8", "HQ12"}) {
    std::printf("\n-- %s\n", qname.c_str());
    TablePrinter table({"#nodes", "GM(s)", "TM(s)", "JM(s)"});
    for (uint32_t base_nodes : {50'000u, 100'000u, 150'000u, 200'000u,
                                250'000u, 300'000u}) {
      uint32_t nodes = static_cast<uint32_t>(base_nodes * scale);
      Graph g = MakeDatasetWithNodes(db, nodes);
      GmEngine engine(g);
      auto reach = BuildReachabilityIndex(g, ReachKind::kBfl);
      MatchContext ctx(g, *reach);
      auto queries =
          TemplateWorkload(g, {qname}, QueryVariant::kHybrid, /*seed=*/17);
      const PatternQuery& q = queries.front().query;
      auto gm = RunGm(engine, q);
      auto tm = RunTm(ctx, q);
      auto jm = RunJm(ctx, q);
      table.AddRow({std::to_string(nodes), gm.formatted, tm.formatted,
                    jm.formatted});
    }
    table.Print();
  }
  return 0;
}
