// Cold-start vs warm-start serving cost (the persistence subsystem,
// storage/snapshot.h).
//
// Cold start is what every process start paid before snapshots existed:
// parse the text graph, then rebuild the BFL reachability index, the
// condensation, and the interval labels from scratch. Warm start streams the
// same structures back from a versioned binary snapshot, so restart cost is
// I/O-bound instead of recompute-bound. The bench reports both paths
// stage-by-stage on the largest generated bench graph (the fig11-scale DBLP
// analogue) and cross-checks that the warm engine returns exactly the same
// occurrence counts as the cold one.
//
// The subject is "bs" — the largest generated bench graph (685k nodes,
// 7.6M edges at scale 1, the BerkStan analogue): text parse cost scales
// with the edge count (one line per edge) while binary load is
// memcpy-bound, so this is exactly the shape where restarts hurt most.
//
// The second table isolates the two warm-start IO modes in forked child
// processes (so each child's VmHWM reflects only its own load): `read`
// slurps the payload into private memory and decodes by copying — peak RSS
// ~2x payload — while `mmap` checksums the mapping in place and decodes
// into borrowed views — peak RSS ~1x payload, all of it page-cache-backed
// and shared with any other process mapping the same snapshot.
//
// Knobs: RIGPM_SCALE scales the graph (default 0.1; CI smoke uses less).

#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <optional>
#include <string>

#include <algorithm>

#include "bench_common.h"
#include "graph/graph_io.h"
#include "query/pattern_parser.h"
#include "reach/bfl_index.h"
#include "storage/snapshot.h"
#include "util/serde.h"

using namespace rigpm;
using namespace rigpm::bench;

namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

double FileMb(const std::string& path) {
  std::error_code ec;
  auto size = std::filesystem::file_size(path, ec);
  return ec ? 0.0 : static_cast<double>(size) / (1024.0 * 1024.0);
}

// The v2 twin of SaveEngineSnapshot: identical payload structure, but run
// containers are materialized as array/bitset (encode_runs=false) and the
// header says version 2 — the exact bytes a pre-run-container build would
// have written. The memory/latency frontier table compares against this.
bool SaveEngineSnapshotV2(const GmEngine& engine, const std::string& path,
                          std::string* error) {
  const auto* bfl = dynamic_cast<const BflIndex*>(&engine.reach());
  if (bfl == nullptr) {
    *error = "engine is not BFL-backed";
    return false;
  }
  ByteSink sink(/*pad_arrays=*/true, /*encode_runs=*/false);
  engine.graph().Serialize(sink);
  bfl->Serialize(sink);
  return WriteSnapshotFile(path, SnapshotKind::kEngine, sink, error,
                           /*version=*/2);
}

// What one forked warm-start child reports back through its pipe.
struct WarmStartReport {
  int ok = 0;
  double load_ms = 0.0;
  double first_query_ms = 0.0;
  double p50_query_ms = 0.0;  // median of kQueryReps repeats after the first
  uint64_t count = 0;
  long vm_hwm_kb = -1;  // peak RSS
  long vm_rss_kb = -1;  // RSS after load + first query
};

constexpr int kQueryReps = 9;

// Runs one warm start in a fork so VmHWM measures just that load path, not
// the cold build / other mode that already ran in this process.
WarmStartReport MeasureWarmStart(const std::string& snap_path,
                                 SnapshotIoMode mode,
                                 const std::string& pattern) {
  int fds[2];
  WarmStartReport report;
  if (::pipe(fds) != 0) return report;
  pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    return report;
  }
  if (pid == 0) {
    ::close(fds[0]);
    WarmStartReport r;
    std::string error;
    std::optional<WarmEngine> warm;
    r.load_ms =
        TimeMs([&] {
          warm = LoadEngineSnapshot(snap_path, {.io_mode = mode}, &error);
        });
    if (warm.has_value()) {
      auto q = ParsePattern(pattern, &error);
      if (q.has_value()) {
        GmOptions opts;
        opts.limit = 100000;
        GmResult res;
        r.first_query_ms =
            TimeMs([&] { res = warm->engine->Evaluate(*q, opts); });
        r.count = res.num_occurrences;
        double reps[kQueryReps];
        for (int i = 0; i < kQueryReps; ++i) {
          reps[i] = TimeMs([&] { res = warm->engine->Evaluate(*q, opts); });
        }
        std::sort(reps, reps + kQueryReps);
        r.p50_query_ms = reps[kQueryReps / 2];
        r.vm_hwm_kb = ReadProcStatusKb("VmHWM");
        r.vm_rss_kb = ReadProcStatusKb("VmRSS");
        r.ok = 1;
      }
    }
    ssize_t written = ::write(fds[1], &r, sizeof(r));
    ::close(fds[1]);
    ::_exit(written == sizeof(r) && r.ok ? 0 : 1);
  }
  ::close(fds[1]);
  ssize_t got = ::read(fds[0], &report, sizeof(report));
  ::close(fds[0]);
  int status = 0;
  ::waitpid(pid, &status, 0);
  if (got != sizeof(report)) report.ok = 0;
  return report;
}

std::string FormatMb(long kb) {
  if (kb < 0) return "n/a";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", kb / 1024.0);
  return buf;
}

}  // namespace

int main() {
  const double scale = DatasetScaleFromEnv();
  PrintBenchHeader("Snapshot — cold start (text parse + index build) vs "
                   "warm start (binary load)",
                   "scale=" + std::to_string(scale));

  const DatasetSpec& bs = DatasetByName("bs");
  Graph g = MakeDataset(bs, scale);
  std::printf("graph: %s\n\n", g.Summary().c_str());

  const std::string text_path = TempPath("rigpm_bench_graph.txt");
  const std::string snap_path = TempPath("rigpm_bench_engine.snap");
  std::string error;
  if (!WriteGraphFile(g, text_path, &error)) {
    std::fprintf(stderr, "cannot write text graph: %s\n", error.c_str());
    return 1;
  }

  // --- Cold start: the pre-snapshot restart path.
  std::optional<Graph> cold_graph;
  double parse_ms = TimeMs([&] { cold_graph = ReadGraphFile(text_path); });
  if (!cold_graph.has_value()) {
    std::fprintf(stderr, "cold parse failed\n");
    return 1;
  }
  std::optional<GmEngine> cold_engine;
  double build_ms = TimeMs([&] { cold_engine.emplace(*cold_graph); });
  const double cold_ms = parse_ms + build_ms;

  // --- Snapshot save (one-time cost, amortized over every later restart).
  double save_ms = TimeMs([&] {
    if (!SaveEngineSnapshot(*cold_engine, snap_path, &error)) {
      std::fprintf(stderr, "snapshot save failed: %s\n", error.c_str());
      std::exit(1);
    }
  });

  // --- Warm start: deserialize graph + pre-built index.
  std::optional<WarmEngine> warm;
  double load_ms =
      TimeMs([&] { warm = LoadEngineSnapshot(snap_path, {}, &error); });
  if (!warm.has_value()) {
    std::fprintf(stderr, "snapshot load failed: %s\n", error.c_str());
    return 1;
  }

  TablePrinter table({"stage", "time(s)", "file(MB)"});
  char mb[32];
  std::snprintf(mb, sizeof(mb), "%.1f", FileMb(text_path));
  table.AddRow({"cold: parse text graph", FormatSeconds(parse_ms), mb});
  table.AddRow({"cold: build BFL + intervals", FormatSeconds(build_ms), ""});
  table.AddRow({"cold: total", FormatSeconds(cold_ms), ""});
  std::snprintf(mb, sizeof(mb), "%.1f", FileMb(snap_path));
  table.AddRow({"snapshot save (one-time)", FormatSeconds(save_ms), mb});
  table.AddRow({"warm: load snapshot", FormatSeconds(load_ms), ""});
  table.Print();
  std::printf("\nwarm-start speedup: %.1fx (cold %.0f ms -> warm %.0f ms)\n",
              load_ms > 0 ? cold_ms / load_ms : 0.0, cold_ms, load_ms);

  // --- Warm-start IO mode comparison: slurp (read) vs zero-copy (mmap),
  // each in its own fork so peak RSS is attributable. First-query latency
  // is reported because mmap defers page faults: the load gets cheaper, the
  // first touches pay for the pages actually used.
  std::printf("\nwarm-start IO modes (each in a fork; first query = "
              "\"(a:0)->(b:1)\", limit 100k):\n");
  const std::string probe_pattern = "(a:0)->(b:1)";
  WarmStartReport slurp =
      MeasureWarmStart(snap_path, SnapshotIoMode::kRead, probe_pattern);
  WarmStartReport mapped =
      MeasureWarmStart(snap_path, SnapshotIoMode::kMmap, probe_pattern);
  bool modes_ok = slurp.ok != 0 && mapped.ok != 0;
  if (!modes_ok) {
    std::fprintf(stderr, "FAIL: warm-start child did not report\n");
  } else {
    TablePrinter io_table(
        {"mode", "load(s)", "first-query(s)", "count", "peakRSS(MB)",
         "RSS(MB)"});
    char count_buf[32];
    std::snprintf(count_buf, sizeof(count_buf), "%llu",
                  static_cast<unsigned long long>(slurp.count));
    io_table.AddRow({"read (slurp+copy)", FormatSeconds(slurp.load_ms),
                     FormatSeconds(slurp.first_query_ms), count_buf,
                     FormatMb(slurp.vm_hwm_kb), FormatMb(slurp.vm_rss_kb)});
    std::snprintf(count_buf, sizeof(count_buf), "%llu",
                  static_cast<unsigned long long>(mapped.count));
    io_table.AddRow({"mmap (zero-copy)", FormatSeconds(mapped.load_ms),
                     FormatSeconds(mapped.first_query_ms), count_buf,
                     FormatMb(mapped.vm_hwm_kb), FormatMb(mapped.vm_rss_kb)});
    io_table.Print();
    if (slurp.count != mapped.count) {
      std::fprintf(stderr, "FAIL: mmap count %llu != slurp count %llu\n",
                   static_cast<unsigned long long>(mapped.count),
                   static_cast<unsigned long long>(slurp.count));
      modes_ok = false;
    } else if (slurp.vm_hwm_kb > 0 && mapped.vm_hwm_kb > 0) {
      std::printf("peak RSS: mmap %s MB vs slurp %s MB (%+.1f MB; mapped "
                  "pages are page-cache-backed and shared across daemons)\n",
                  FormatMb(mapped.vm_hwm_kb).c_str(),
                  FormatMb(slurp.vm_hwm_kb).c_str(),
                  (mapped.vm_hwm_kb - slurp.vm_hwm_kb) / 1024.0);
    }
  }

  // --- Memory/latency frontier: v2 (array/bitset only) vs v3 (native run
  // containers + lazy decode) snapshots of the same engine, each warm-started
  // in its own fork under both IO modes. The v3 file must never be larger
  // than its v2 twin (run encoding only replaces a container when strictly
  // smaller), and under mmap the borrowed-encoded containers must show up as
  // lower resident memory — a nonzero exit here fails bench-smoke CI.
  const std::string snap_v2_path = TempPath("rigpm_bench_engine_v2.snap");
  bool frontier_ok = true;
  if (!SaveEngineSnapshotV2(*cold_engine, snap_v2_path, &error)) {
    std::fprintf(stderr, "FAIL: v2 snapshot save failed: %s\n", error.c_str());
    frontier_ok = false;
  } else {
    const double v2_mb = FileMb(snap_v2_path);
    const double v3_mb = FileMb(snap_path);
    std::printf("\nmemory/query frontier — snapshot v2 (pre-run-container "
                "format) vs v3 (p50 over %d reps of the probe query):\n",
                kQueryReps);
    TablePrinter frontier({"format/mode", "file(MB)", "load(s)",
                           "p50-query(s)", "count", "peakRSS(MB)", "RSS(MB)"});
    struct Cell {
      const char* name;
      const std::string* path;
      SnapshotIoMode mode;
      WarmStartReport report;
    };
    Cell cells[] = {
        {"v2 / read", &snap_v2_path, SnapshotIoMode::kRead, {}},
        {"v2 / mmap", &snap_v2_path, SnapshotIoMode::kMmap, {}},
        {"v3 / read", &snap_path, SnapshotIoMode::kRead, {}},
        {"v3 / mmap", &snap_path, SnapshotIoMode::kMmap, {}},
    };
    for (Cell& c : cells) {
      c.report = MeasureWarmStart(*c.path, c.mode, probe_pattern);
      if (!c.report.ok) {
        std::fprintf(stderr, "FAIL: %s warm start did not report\n", c.name);
        frontier_ok = false;
        continue;
      }
      char count_buf[32], file_buf[32];
      std::snprintf(count_buf, sizeof(count_buf), "%llu",
                    static_cast<unsigned long long>(c.report.count));
      std::snprintf(file_buf, sizeof(file_buf), "%.1f",
                    c.path == &snap_v2_path ? v2_mb : v3_mb);
      frontier.AddRow({c.name, file_buf, FormatSeconds(c.report.load_ms),
                       FormatSeconds(c.report.p50_query_ms), count_buf,
                       FormatMb(c.report.vm_hwm_kb),
                       FormatMb(c.report.vm_rss_kb)});
      if (c.report.count != cells[0].report.count) {
        std::fprintf(stderr,
                     "FAIL: %s count %llu != v2/read count %llu\n", c.name,
                     static_cast<unsigned long long>(c.report.count),
                     static_cast<unsigned long long>(cells[0].report.count));
        frontier_ok = false;
      }
    }
    frontier.Print();
    if (v3_mb > v2_mb) {
      std::fprintf(stderr,
                   "FAIL: v3 snapshot (%.2f MB) larger than v2 (%.2f MB)\n",
                   v3_mb, v2_mb);
      frontier_ok = false;
    } else {
      std::printf("snapshot bytes: v3 %.1f MB vs v2 %.1f MB (%.1f%% of v2)\n",
                  v3_mb, v2_mb, v2_mb > 0 ? 100.0 * v3_mb / v2_mb : 0.0);
    }
    const WarmStartReport& v2m = cells[1].report;
    const WarmStartReport& v3m = cells[3].report;
    if (v2m.ok && v3m.ok && v2m.vm_rss_kb > 0 && v3m.vm_rss_kb > 0) {
      std::printf("post-load RSS (mmap): v3 %s MB vs v2 %s MB (%+.1f MB)\n",
                  FormatMb(v3m.vm_rss_kb).c_str(),
                  FormatMb(v2m.vm_rss_kb).c_str(),
                  (v3m.vm_rss_kb - v2m.vm_rss_kb) / 1024.0);
    }
  }
  std::remove(snap_v2_path.c_str());

  // --- Equivalence spot check: same counts from both engines. Skipped at
  // large scales: with bs's 5-label alphabet the simulation/RIG cost of the
  // template queries explodes with graph size (hours of CPU, identically on
  // both engines), and round-trip equivalence is already covered
  // exhaustively by tests/test_snapshot.cc.
  bool all_equal = true;
  if (scale <= 0.25) {
    auto workload = TemplateWorkload(g, {"HQ0", "HQ8"}, QueryVariant::kHybrid,
                                     /*seed=*/17);
    for (const NamedQuery& nq : workload) {
      RunOutcome cold_run = RunGm(*cold_engine, nq.query);
      RunOutcome warm_run = RunGm(*warm->engine, nq.query);
      std::printf("%s: cold %llu, warm %llu occurrence(s)\n", nq.name.c_str(),
                  static_cast<unsigned long long>(cold_run.matches),
                  static_cast<unsigned long long>(warm_run.matches));
      all_equal = all_equal && cold_run.matches == warm_run.matches;
    }
  } else {
    std::printf("equivalence spot check skipped at scale %.2f "
                "(covered by test_snapshot)\n", scale);
  }
  std::remove(text_path.c_str());
  std::remove(snap_path.c_str());
  if (!all_equal) {
    std::fprintf(stderr, "FAIL: warm engine diverged from cold engine\n");
    return 1;
  }
  return modes_ok && frontier_ok ? 0 : 1;
}
