// Cold-start vs warm-start serving cost (the persistence subsystem,
// storage/snapshot.h).
//
// Cold start is what every process start paid before snapshots existed:
// parse the text graph, then rebuild the BFL reachability index, the
// condensation, and the interval labels from scratch. Warm start streams the
// same structures back from a versioned binary snapshot, so restart cost is
// I/O-bound instead of recompute-bound. The bench reports both paths
// stage-by-stage on the largest generated bench graph (the fig11-scale DBLP
// analogue) and cross-checks that the warm engine returns exactly the same
// occurrence counts as the cold one.
//
// The subject is "bs" — the largest generated bench graph (685k nodes,
// 7.6M edges at scale 1, the BerkStan analogue): text parse cost scales
// with the edge count (one line per edge) while binary load is
// memcpy-bound, so this is exactly the shape where restarts hurt most.
//
// Knobs: RIGPM_SCALE scales the graph (default 0.1; CI smoke uses less).

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <optional>
#include <string>

#include "bench_common.h"
#include "graph/graph_io.h"
#include "storage/snapshot.h"

using namespace rigpm;
using namespace rigpm::bench;

namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

double FileMb(const std::string& path) {
  std::error_code ec;
  auto size = std::filesystem::file_size(path, ec);
  return ec ? 0.0 : static_cast<double>(size) / (1024.0 * 1024.0);
}

}  // namespace

int main() {
  const double scale = DatasetScaleFromEnv();
  PrintBenchHeader("Snapshot — cold start (text parse + index build) vs "
                   "warm start (binary load)",
                   "scale=" + std::to_string(scale));

  const DatasetSpec& bs = DatasetByName("bs");
  Graph g = MakeDataset(bs, scale);
  std::printf("graph: %s\n\n", g.Summary().c_str());

  const std::string text_path = TempPath("rigpm_bench_graph.txt");
  const std::string snap_path = TempPath("rigpm_bench_engine.snap");
  std::string error;
  if (!WriteGraphFile(g, text_path, &error)) {
    std::fprintf(stderr, "cannot write text graph: %s\n", error.c_str());
    return 1;
  }

  // --- Cold start: the pre-snapshot restart path.
  std::optional<Graph> cold_graph;
  double parse_ms = TimeMs([&] { cold_graph = ReadGraphFile(text_path); });
  if (!cold_graph.has_value()) {
    std::fprintf(stderr, "cold parse failed\n");
    return 1;
  }
  std::optional<GmEngine> cold_engine;
  double build_ms = TimeMs([&] { cold_engine.emplace(*cold_graph); });
  const double cold_ms = parse_ms + build_ms;

  // --- Snapshot save (one-time cost, amortized over every later restart).
  double save_ms = TimeMs([&] {
    if (!SaveEngineSnapshot(*cold_engine, snap_path, &error)) {
      std::fprintf(stderr, "snapshot save failed: %s\n", error.c_str());
      std::exit(1);
    }
  });

  // --- Warm start: deserialize graph + pre-built index.
  std::optional<WarmEngine> warm;
  double load_ms = TimeMs([&] { warm = LoadEngineSnapshot(snap_path, &error); });
  if (!warm.has_value()) {
    std::fprintf(stderr, "snapshot load failed: %s\n", error.c_str());
    return 1;
  }

  TablePrinter table({"stage", "time(s)", "file(MB)"});
  char mb[32];
  std::snprintf(mb, sizeof(mb), "%.1f", FileMb(text_path));
  table.AddRow({"cold: parse text graph", FormatSeconds(parse_ms), mb});
  table.AddRow({"cold: build BFL + intervals", FormatSeconds(build_ms), ""});
  table.AddRow({"cold: total", FormatSeconds(cold_ms), ""});
  std::snprintf(mb, sizeof(mb), "%.1f", FileMb(snap_path));
  table.AddRow({"snapshot save (one-time)", FormatSeconds(save_ms), mb});
  table.AddRow({"warm: load snapshot", FormatSeconds(load_ms), ""});
  table.Print();
  std::printf("\nwarm-start speedup: %.1fx (cold %.0f ms -> warm %.0f ms)\n",
              load_ms > 0 ? cold_ms / load_ms : 0.0, cold_ms, load_ms);

  // --- Equivalence spot check: same counts from both engines. Skipped at
  // large scales: with bs's 5-label alphabet the simulation/RIG cost of the
  // template queries explodes with graph size (hours of CPU, identically on
  // both engines), and round-trip equivalence is already covered
  // exhaustively by tests/test_snapshot.cc.
  bool all_equal = true;
  if (scale <= 0.25) {
    auto workload = TemplateWorkload(g, {"HQ0", "HQ8"}, QueryVariant::kHybrid,
                                     /*seed=*/17);
    for (const NamedQuery& nq : workload) {
      RunOutcome cold_run = RunGm(*cold_engine, nq.query);
      RunOutcome warm_run = RunGm(*warm->engine, nq.query);
      std::printf("%s: cold %llu, warm %llu occurrence(s)\n", nq.name.c_str(),
                  static_cast<unsigned long long>(cold_run.matches),
                  static_cast<unsigned long long>(warm_run.matches));
      all_equal = all_equal && cold_run.matches == warm_run.matches;
    }
  } else {
    std::printf("equivalence spot check skipped at scale %.2f "
                "(covered by test_snapshot)\n", scale);
  }
  std::remove(text_path.c_str());
  std::remove(snap_path.c_str());
  if (!all_equal) {
    std::fprintf(stderr, "FAIL: warm engine diverged from cold engine\n");
    return 1;
  }
  return 0;
}
