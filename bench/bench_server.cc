// Protocol overhead of the query daemon (server/server.h): end-to-end RPS
// through the Unix-socket frame protocol vs the same workload evaluated
// in-process.
//
// Setup: one engine over a generated bench graph serves (a) directly via
// EvaluateBatch and per-worker contexts — the in-process ceiling — and
// (b) through a QueryServer on a Unix-domain socket with K concurrent
// clients issuing one query per request. Both run the identical query list,
// and the bench cross-checks that every served count equals the in-process
// count (a daemon that is fast but wrong would be worthless).
//
// The gap between (a) and (b) is pure serving overhead: framing, syscalls,
// scheduling — the price of the RDBMS-style "load once, serve repeatedly"
// deployment the snapshot subsystem enables.
//
// A third phase stresses the event-loop core the way the C10K problem
// does: a thousand-plus idle connections parked on the daemon while the
// hot clients pipeline their requests (many in flight per connection)
// and a churn thread opens/closes connections the whole time. The idle
// flood must not cost a single failed round trip, and the accept-to-
// first-byte percentiles under churn come from the server's own stats.
//
// A cache phase replays a Zipfian repeat-heavy workload against a
// delta-armed daemon: a cold pass first-touches every distinct template
// instantiation, a hot pass re-draws them Zipfian so nearly every request
// is a result-cache hit, and a final flood keeps querying while a live
// kRefresh swaps the generation underneath — zero failed round trips
// allowed, and every count must match the old or the new oracle.
//
// A fourth phase measures the multi-tenant catalog: the same daemon core
// serving three distinct graphs from snapshots behind scoped sessions,
// with an LRU cap below the tenant count (so every request may evict),
// a delta-armed default tenant refreshed over the wire, and one legacy
// unscoped client riding along. It reports per-tenant RPS plus the
// catalog's hit/miss/evict counters, and every served count is verified
// against per-tenant in-process evaluation.
//
// Knobs: RIGPM_SCALE scales the graph; RIGPM_SERVER_CLIENTS (default 4)
// sets the concurrent client count; RIGPM_IDLE_CONNS (default 1000)
// sizes the idle flood (0 skips the C10K phase); RIGPM_MULTITENANT=0
// skips the multi-tenant phase.

#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <random>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "query/pattern_parser.h"
#include "server/catalog.h"
#include "server/client.h"
#include "server/server.h"
#include "storage/delta_log.h"
#include "storage/snapshot.h"

using namespace rigpm;
using namespace rigpm::bench;

namespace {

uint32_t ClientsFromEnv() {
  const char* raw = std::getenv("RIGPM_SERVER_CLIENTS");
  if (raw == nullptr) return 4;
  long v = std::strtol(raw, nullptr, 10);
  return v > 0 ? static_cast<uint32_t>(v) : 4;
}

uint32_t IdleConnsFromEnv() {
  const char* raw = std::getenv("RIGPM_IDLE_CONNS");
  if (raw == nullptr) return 1000;
  long v = std::strtol(raw, nullptr, 10);
  return v >= 0 ? static_cast<uint32_t>(v) : 1000;
}

// Lifts the soft RLIMIT_NOFILE toward the hard cap so the idle flood
// (plus the server's own fds) fits. Best effort: if the hard cap is
// still too small the connect loop reports it.
void RaiseNofileLimit(uint64_t want) {
  rlimit lim{};
  if (getrlimit(RLIMIT_NOFILE, &lim) != 0) return;
  if (lim.rlim_cur >= want) return;
  rlimit raised = lim;
  raised.rlim_cur = lim.rlim_max == RLIM_INFINITY
                        ? want
                        : std::min<rlim_t>(lim.rlim_max, want);
  setrlimit(RLIMIT_NOFILE, &raised);
}

}  // namespace

int main() {
  const double scale = DatasetScaleFromEnv();
  const uint32_t num_clients = ClientsFromEnv();
  PrintBenchHeader("Server — socket serving vs in-process evaluation",
                   "scale=" + std::to_string(scale) +
                       " clients=" + std::to_string(num_clients));

  const DatasetSpec& spec = DatasetByName("yt");
  Graph g = MakeDataset(spec, scale);
  std::printf("graph: %s\n\n", g.Summary().c_str());
  GmEngine engine(g);

  // Workload: the template queries the paper serves, repeated so each
  // client has a few dozen requests — enough round trips for the protocol
  // cost to dominate noise.
  auto workload = TemplateWorkload(g, RepresentativeTemplateNames(),
                                   QueryVariant::kHybrid, /*seed=*/17);
  std::vector<PatternQuery> queries;
  std::vector<std::string> query_texts;
  constexpr int kRepeats = 8;
  for (int r = 0; r < kRepeats; ++r) {
    for (const NamedQuery& nq : workload) {
      queries.push_back(nq.query);
      query_texts.push_back(PatternToString(nq.query));
    }
  }
  GmOptions opts;
  opts.limit = MatchLimitFromEnv();

  // --- (a) In-process ceiling: EvaluateBatch with as many workers as the
  // server will have clients.
  GmOptions batch_opts = opts;
  batch_opts.num_threads = num_clients;
  std::vector<GmResult> direct;
  double direct_ms = TimeMs([&] {
    direct = engine.EvaluateBatch(
        std::span<const PatternQuery>(queries), batch_opts);
  });

  // --- (b) Through the daemon: K clients, one connection each, splitting
  // the same query list round-robin.
  server::ServerConfig config;
  config.unix_path = (std::filesystem::temp_directory_path() /
                      ("rigpm_bench_server_" + std::to_string(::getpid()) +
                       ".sock"))
                         .string();
  config.num_workers = num_clients;
  server::QueryServer server(engine, config);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "cannot start server: %s\n", error.c_str());
    return 1;
  }

  std::atomic<uint64_t> mismatches{0};
  std::atomic<uint64_t> transport_failures{0};
  double served_ms = TimeMs([&] {
    std::vector<std::thread> clients;
    clients.reserve(num_clients);
    for (uint32_t c = 0; c < num_clients; ++c) {
      clients.emplace_back([&, c] {
        server::QueryClient client;
        std::string cerr;
        if (!client.ConnectUnix(config.unix_path, &cerr)) {
          ++transport_failures;
          return;
        }
        for (size_t i = c; i < query_texts.size(); i += num_clients) {
          server::QueryRequest req;
          req.patterns = {query_texts[i]};
          req.limit = opts.limit;
          auto resp = client.Query(req, &cerr);
          if (!resp.has_value() ||
              resp->status != server::StatusCode::kOk ||
              resp->results.size() != 1) {
            ++transport_failures;
            continue;
          }
          if (resp->results[0].num_occurrences !=
              direct[i].num_occurrences) {
            ++mismatches;
          }
        }
      });
    }
    for (std::thread& t : clients) t.join();
  });

  // --- (c) C10K: the identical workload again, but every client pipelines
  // its slice (kPipelineWindow tagged requests in flight per connection)
  // while `idle_conns` connections sit parked on the daemon doing nothing
  // and a churn thread opens/closes short-lived connections throughout.
  const uint32_t idle_conns = IdleConnsFromEnv();
  double c10k_ms = 0.0;
  uint64_t churn_accepts = 0;
  server::ServerStats c10k_stats{};
  std::atomic<uint64_t> c10k_failures{0};
  std::atomic<uint64_t> c10k_mismatches{0};
  if (idle_conns > 0) {
    RaiseNofileLimit(static_cast<uint64_t>(idle_conns) + 512);
    std::vector<server::QueryClient> idle;
    idle.reserve(idle_conns);
    for (uint32_t i = 0; i < idle_conns; ++i) {
      server::QueryClient holder;
      std::string herr;
      if (!holder.ConnectUnix(config.unix_path, &herr)) {
        std::fprintf(stderr, "idle connect %u/%u failed: %s\n", i + 1,
                     idle_conns, herr.c_str());
        return 1;
      }
      idle.push_back(std::move(holder));
    }

    std::atomic<bool> churn_stop{false};
    std::atomic<uint64_t> churned{0};
    std::thread churner([&] {
      // Accept churn: each iteration is a fresh connection, one ping, and
      // a close — so the accept-to-first-byte percentiles below measure
      // accepts that happen WHILE the loop juggles 1000+ parked fds and
      // the pipelined hot path.
      while (!churn_stop.load(std::memory_order_relaxed)) {
        server::QueryClient c;
        std::string cerr2;
        if (!c.ConnectUnix(config.unix_path, &cerr2) || !c.Ping(&cerr2)) {
          ++c10k_failures;
          return;
        }
        ++churned;
      }
    });

    constexpr size_t kPipelineWindow = 16;
    c10k_ms = TimeMs([&] {
      std::vector<std::thread> hot;
      hot.reserve(num_clients);
      for (uint32_t c = 0; c < num_clients; ++c) {
        hot.emplace_back([&, c] {
          server::QueryClient client;
          std::string cerr2;
          if (!client.ConnectUnix(config.unix_path, &cerr2)) {
            ++c10k_failures;
            return;
          }
          std::vector<size_t> slice;
          for (size_t i = c; i < query_texts.size(); i += num_clients) {
            slice.push_back(i);
          }
          for (size_t start = 0; start < slice.size();
               start += kPipelineWindow) {
            size_t end = std::min(slice.size(), start + kPipelineWindow);
            std::vector<server::QueryRequest> reqs;
            reqs.reserve(end - start);
            for (size_t k = start; k < end; ++k) {
              server::QueryRequest req;
              req.patterns = {query_texts[slice[k]]};
              req.limit = opts.limit;
              reqs.push_back(std::move(req));
            }
            auto resps = client.QueryPipelined(reqs, &cerr2);
            if (!resps.has_value()) {
              c10k_failures += end - start;
              return;
            }
            for (size_t k = start; k < end; ++k) {
              const server::QueryResponse& r = (*resps)[k - start];
              if (r.status != server::StatusCode::kOk ||
                  r.results.size() != 1) {
                ++c10k_failures;
              } else if (r.results[0].num_occurrences !=
                         direct[slice[k]].num_occurrences) {
                ++c10k_mismatches;
              }
            }
          }
        });
      }
      for (std::thread& t : hot) t.join();
    });
    churn_stop.store(true);
    churner.join();
    churn_accepts = churned.load();
    c10k_stats = server.Snapshot();
  }
  server.Stop();

  // --- (d) Result cache: Zipfian repeat traffic against a delta-armed
  // daemon. Unique keys come from re-instantiating the template workload
  // under many seeds so the cold pass has enough first-touches to time.
  std::vector<std::string> rc_texts;
  for (uint64_t seed = 100; seed < 108; ++seed) {
    auto w = TemplateWorkload(g, RepresentativeTemplateNames(),
                              QueryVariant::kHybrid, seed);
    for (const NamedQuery& nq : w) {
      rc_texts.push_back(PatternToString(nq.query));
    }
  }
  std::vector<PatternQuery> rc_queries;
  for (const std::string& text : rc_texts) {
    rc_queries.push_back(*ParsePattern(text));
  }
  std::vector<GmResult> rc_direct = engine.EvaluateBatch(
      std::span<const PatternQuery>(rc_queries), batch_opts);

  const std::string rc_snap = config.unix_path + ".rc.snap";
  const std::string rc_delta = config.unix_path + ".rc.delta";
  if (!SaveEngineSnapshot(engine, rc_snap, &error)) {
    std::fprintf(stderr, "cannot save cache snapshot: %s\n", error.c_str());
    return 1;
  }
  auto rc_info = InspectSnapshot(rc_snap, &error);
  if (!rc_info.has_value()) {
    std::fprintf(stderr, "cannot inspect cache snapshot: %s\n",
                 error.c_str());
    return 1;
  }
  server::ServerConfig rc_config;
  rc_config.unix_path = config.unix_path + ".rc";
  rc_config.num_workers = num_clients;
  rc_config.delta_path = rc_delta;
  rc_config.base_checksum = rc_info->stored_checksum;
  server::QueryServer rc_server(engine, rc_config);
  if (!rc_server.Start(&error)) {
    std::fprintf(stderr, "cannot start cache server: %s\n", error.c_str());
    return 1;
  }

  std::atomic<uint64_t> rc_failures{0};
  std::atomic<uint64_t> rc_mismatches{0};
  constexpr size_t kRcWindow = 16;
  // One pipelined pass over a request-index list, verifying each count
  // against the matching oracle slot.
  auto rc_run = [&](const std::vector<size_t>& picks,
                    const std::vector<GmResult>& oracle) {
    std::vector<std::thread> threads;
    threads.reserve(num_clients);
    for (uint32_t c = 0; c < num_clients; ++c) {
      threads.emplace_back([&, c] {
        server::QueryClient client;
        std::string cerr;
        if (!client.ConnectUnix(rc_config.unix_path, &cerr)) {
          ++rc_failures;
          return;
        }
        std::vector<size_t> slice;
        for (size_t i = c; i < picks.size(); i += num_clients) {
          slice.push_back(picks[i]);
        }
        for (size_t start = 0; start < slice.size(); start += kRcWindow) {
          size_t end = std::min(slice.size(), start + kRcWindow);
          std::vector<server::QueryRequest> reqs;
          reqs.reserve(end - start);
          for (size_t k = start; k < end; ++k) {
            server::QueryRequest req;
            req.patterns = {rc_texts[slice[k]]};
            req.limit = opts.limit;
            reqs.push_back(std::move(req));
          }
          auto resps = client.QueryPipelined(reqs, &cerr);
          if (!resps.has_value()) {
            rc_failures += end - start;
            return;
          }
          for (size_t k = start; k < end; ++k) {
            const server::QueryResponse& r = (*resps)[k - start];
            if (r.status != server::StatusCode::kOk ||
                r.results.size() != 1) {
              ++rc_failures;
            } else if (r.results[0].num_occurrences !=
                       oracle[slice[k]].num_occurrences) {
              ++rc_mismatches;
            }
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
  };

  // Cold pass: every distinct query exactly once — all misses.
  std::vector<size_t> cold_picks(rc_texts.size());
  for (size_t i = 0; i < cold_picks.size(); ++i) cold_picks[i] = i;
  double rc_cold_ms = TimeMs([&] { rc_run(cold_picks, rc_direct); });

  // Hot pass: many Zipfian draws over the now-resident keys. The skew is
  // cosmetic — after the cold pass EVERY draw is a hit; it just shapes
  // the LRU traffic the way repeat-heavy dashboards do.
  std::vector<double> zipf_w(rc_texts.size());
  for (size_t i = 0; i < zipf_w.size(); ++i) zipf_w[i] = 1.0 / (i + 1.0);
  std::mt19937 rc_rng(7);
  std::discrete_distribution<size_t> zipf(zipf_w.begin(), zipf_w.end());
  std::vector<size_t> hot_picks(rc_texts.size() * 24);
  for (size_t& p : hot_picks) p = zipf(rc_rng);
  double rc_hot_ms = TimeMs([&] { rc_run(hot_picks, rc_direct); });
  server::ServerStats rc_warm_stats = rc_server.Snapshot();

  // Invalidation flood: append + kRefresh while clients keep drawing.
  // Counts may legally come from either generation; nothing may fail.
  std::vector<std::pair<NodeId, NodeId>> rc_batch;
  for (size_t i = 0; i < 8; ++i) {
    rc_batch.emplace_back(static_cast<NodeId>((i * 7919u + 5) % g.NumNodes()),
                          static_cast<NodeId>((i * 104729u + 13) %
                                              g.NumNodes()));
  }
  Graph rc_merged = ApplyEdgesToGraph(g, rc_batch);
  GmEngine rc_engine2(rc_merged);
  std::vector<GmResult> rc_direct2 = rc_engine2.EvaluateBatch(
      std::span<const PatternQuery>(rc_queries), batch_opts);
  {
    auto writer = DeltaWriter::Open(rc_delta, rc_info->stored_checksum,
                                    g.NumNodes(), &error);
    if (writer == nullptr || !writer->Append(rc_batch, &error)) {
      std::fprintf(stderr, "cannot write cache delta: %s\n", error.c_str());
      return 1;
    }
  }
  std::atomic<uint64_t> rc_refresh_failures{0};
  {
    std::vector<std::thread> flood;
    flood.reserve(num_clients);
    std::atomic<bool> go{false};
    for (uint32_t c = 0; c < num_clients; ++c) {
      flood.emplace_back([&, c] {
        server::QueryClient client;
        std::string cerr;
        if (!client.ConnectUnix(rc_config.unix_path, &cerr)) {
          ++rc_refresh_failures;
          return;
        }
        std::mt19937 rng(100 + c);
        std::discrete_distribution<size_t> draw(zipf_w.begin(),
                                                zipf_w.end());
        while (!go.load(std::memory_order_relaxed)) {
          const size_t pick = draw(rng);
          server::QueryRequest req;
          req.patterns = {rc_texts[pick]};
          req.limit = opts.limit;
          auto resp = client.Query(req, &cerr);
          if (!resp.has_value() ||
              resp->status != server::StatusCode::kOk ||
              resp->results.size() != 1) {
            ++rc_refresh_failures;
            return;
          }
          const uint64_t got = resp->results[0].num_occurrences;
          if (got != rc_direct[pick].num_occurrences &&
              got != rc_direct2[pick].num_occurrences) {
            ++rc_mismatches;
          }
        }
      });
    }
    server::QueryClient admin;
    std::string aerr;
    if (!admin.ConnectUnix(rc_config.unix_path, &aerr)) {
      std::fprintf(stderr, "cache admin connect failed: %s\n", aerr.c_str());
      return 1;
    }
    auto refreshed = admin.Refresh(&aerr);
    if (!refreshed.has_value() ||
        refreshed->status != server::StatusCode::kOk) {
      ++rc_refresh_failures;
    }
    go.store(true);
    for (std::thread& t : flood) t.join();
    // Post-swap steady state: the whole key set must now answer from the
    // NEW generation (a stale hit would still show an old count).
    rc_run(cold_picks, rc_direct2);
  }
  server::ServerStats rc_stats = rc_server.Snapshot();
  rc_server.Stop();
  std::remove(rc_snap.c_str());
  std::remove(rc_delta.c_str());

  // --- (e) Multi-tenant catalog: three snapshot tenants behind one daemon,
  // an LRU cap of 2 (below the tenant count, so the scoped flood churns
  // evictions), scoped clients pinned per tenant plus one legacy unscoped
  // client on the default, and a per-tenant refresh over the wire.
  const char* mt_env = std::getenv("RIGPM_MULTITENANT");
  const bool run_multitenant = mt_env == nullptr || std::strtol(
      mt_env, nullptr, 10) != 0;
  double mt_ms = 0.0;
  std::atomic<uint64_t> mt_failures{0};
  std::atomic<uint64_t> mt_mismatches{0};
  uint64_t mt_tenant_queries[3] = {0, 0, 0};
  uint64_t mt_legacy_queries = 0;
  server::StatsResponse mt_stats;
  uint64_t mt_refresh_records = 0;
  if (run_multitenant) {
    // Tenants: the bench graph itself plus two structural variants with
    // deterministic extra edges — distinct graphs, distinct counts, so a
    // misrouted request cannot return the right number by accident.
    auto variant_edges = [&](uint32_t salt, size_t count) {
      std::vector<std::pair<NodeId, NodeId>> edges;
      edges.reserve(count);
      const NodeId n_nodes = g.NumNodes();
      for (size_t i = 0; i < count; ++i) {
        edges.emplace_back(
            static_cast<NodeId>((i * 7919u + salt) % n_nodes),
            static_cast<NodeId>((i * 104729u + salt * 31u + 1) % n_nodes));
      }
      return edges;
    };
    // The default tenant serves base+delta: its log carries `t0_batch`
    // before the daemon opens it, so the lazy open replays the log and the
    // in-process oracle below must use the merged graph.
    const auto t0_batch = variant_edges(3, 4);
    Graph g0m = ApplyEdgesToGraph(g, t0_batch);
    Graph g1 = ApplyEdgesToGraph(g, variant_edges(101, 16));
    Graph g2 = ApplyEdgesToGraph(g, variant_edges(977, 16));
    GmEngine e0m(g0m), e1(g1), e2(g2);
    std::vector<GmResult> mt_direct[3];
    const GmEngine* tenant_engines[3] = {&e0m, &e1, &e2};
    for (int t = 0; t < 3; ++t) {
      mt_direct[t] = tenant_engines[t]->EvaluateBatch(
          std::span<const PatternQuery>(queries), batch_opts);
    }

    const std::string dir =
        (std::filesystem::temp_directory_path() /
         ("rigpm_bench_mt_" + std::to_string(::getpid())))
            .string();
    const std::string snaps[3] = {dir + "_0.snap", dir + "_1.snap",
                                  dir + "_2.snap"};
    const std::string t0_delta = dir + "_0.delta";
    const GmEngine* base_engines[3] = {&engine, &e1, &e2};
    for (int t = 0; t < 3; ++t) {
      if (!SaveEngineSnapshot(*base_engines[t], snaps[t], &error)) {
        std::fprintf(stderr, "cannot save tenant snapshot: %s\n",
                     error.c_str());
        return 1;
      }
    }
    auto info0 = InspectSnapshot(snaps[0], &error);
    if (!info0.has_value()) {
      std::fprintf(stderr, "cannot inspect tenant snapshot: %s\n",
                   error.c_str());
      return 1;
    }
    {
      auto writer = DeltaWriter::Open(t0_delta, info0->stored_checksum,
                                      g.NumNodes(), &error);
      if (writer == nullptr || !writer->Append(t0_batch, &error)) {
        std::fprintf(stderr, "cannot write tenant delta: %s\n",
                     error.c_str());
        return 1;
      }
    }

    const char* tenant_ids[3] = {"t0", "t1", "t2"};
    auto catalog = std::make_shared<server::EngineCatalog>(
        /*max_engines=*/2);
    for (int t = 0; t < 3; ++t) {
      server::EngineSource source;
      source.snapshot_path = snaps[t];
      if (t == 0) source.delta_path = t0_delta;
      if (!catalog->Register(tenant_ids[t], source, &error)) {
        std::fprintf(stderr, "cannot register tenant: %s\n", error.c_str());
        return 1;
      }
    }
    server::ServerConfig mt_config;
    mt_config.unix_path = config.unix_path + ".mt";
    mt_config.num_workers = num_clients;
    server::QueryServer mt_server(catalog, mt_config);
    if (!mt_server.Start(&error)) {
      std::fprintf(stderr, "cannot start multi-tenant server: %s\n",
                   error.c_str());
      return 1;
    }

    std::atomic<uint64_t> per_tenant[3]{};
    std::atomic<uint64_t> legacy_served{0};
    mt_ms = TimeMs([&] {
      std::vector<std::thread> scoped;
      for (uint32_t c = 0; c < num_clients; ++c) {
        scoped.emplace_back([&, c] {
          const int tenant = static_cast<int>(c % 3);
          server::QueryClient client;
          std::string cerr;
          if (!client.ConnectUnix(mt_config.unix_path, &cerr)) {
            ++mt_failures;
            return;
          }
          client.SetGraph(tenant_ids[tenant]);
          for (size_t i = c; i < query_texts.size(); i += num_clients) {
            server::QueryRequest req;
            req.patterns = {query_texts[i]};
            req.limit = opts.limit;
            auto resp = client.Query(req, &cerr);
            if (!resp.has_value() ||
                resp->status != server::StatusCode::kOk ||
                resp->results.size() != 1) {
              ++mt_failures;
              continue;
            }
            per_tenant[tenant].fetch_add(1, std::memory_order_relaxed);
            if (resp->results[0].num_occurrences !=
                mt_direct[tenant][i].num_occurrences) {
              ++mt_mismatches;
            }
          }
        });
      }
      // The legacy rider: no envelope at all, served from the default
      // tenant (t0, base+delta) like any pre-v2 client would be.
      scoped.emplace_back([&] {
        server::QueryClient client;
        std::string cerr;
        if (!client.ConnectUnix(mt_config.unix_path, &cerr)) {
          ++mt_failures;
          return;
        }
        for (size_t i = 0; i < query_texts.size(); i += 8) {
          server::QueryRequest req;
          req.patterns = {query_texts[i]};
          req.limit = opts.limit;
          auto resp = client.Query(req, &cerr);
          if (!resp.has_value() ||
              resp->status != server::StatusCode::kOk ||
              resp->results.size() != 1) {
            ++mt_failures;
            continue;
          }
          legacy_served.fetch_add(1, std::memory_order_relaxed);
          if (resp->results[0].num_occurrences !=
              mt_direct[0][i].num_occurrences) {
            ++mt_mismatches;
          }
        }
      });
      for (std::thread& t : scoped) t.join();
    });
    for (int t = 0; t < 3; ++t) mt_tenant_queries[t] = per_tenant[t].load();
    mt_legacy_queries = legacy_served.load();

    // Per-tenant refresh over the wire: grow t0's log and replay it live.
    {
      auto writer = DeltaWriter::Open(t0_delta, info0->stored_checksum,
                                      g.NumNodes(), &error);
      if (writer == nullptr ||
          !writer->Append(variant_edges(7, 2), &error)) {
        std::fprintf(stderr, "cannot grow tenant delta: %s\n",
                     error.c_str());
        return 1;
      }
    }
    server::QueryClient admin;
    std::string aerr;
    if (!admin.ConnectUnix(mt_config.unix_path, &aerr)) {
      std::fprintf(stderr, "admin connect failed: %s\n", aerr.c_str());
      return 1;
    }
    admin.SetGraph("t0");
    auto refreshed = admin.Refresh(&aerr);
    if (!refreshed.has_value() ||
        refreshed->status != server::StatusCode::kOk) {
      ++mt_failures;
    } else {
      mt_refresh_records = refreshed->records_applied;
    }
    auto wire_stats = admin.Stats(&aerr);
    if (wire_stats.has_value()) {
      mt_stats = *wire_stats;
    } else {
      ++mt_failures;
    }
    mt_server.Stop();
    for (const std::string& path : snaps) std::remove(path.c_str());
    std::remove(t0_delta.c_str());
  }

  const double n = static_cast<double>(queries.size());
  const double direct_rps = n / (direct_ms / 1000.0);
  const double served_rps = n / (served_ms / 1000.0);
  TablePrinter table({"path", "queries", "time(s)", "RPS"});
  char buf[3][32];
  std::snprintf(buf[0], sizeof(buf[0]), "%zu", queries.size());
  std::snprintf(buf[1], sizeof(buf[1]), "%.0f", direct_rps);
  table.AddRow({"in-process EvaluateBatch", buf[0], FormatSeconds(direct_ms),
                buf[1]});
  std::snprintf(buf[2], sizeof(buf[2]), "%.0f", served_rps);
  table.AddRow({"daemon (unix socket)", buf[0], FormatSeconds(served_ms),
                buf[2]});
  if (idle_conns > 0) {
    const double c10k_rps = n / (c10k_ms / 1000.0);
    char crow[2][32];
    std::snprintf(crow[0], sizeof(crow[0]), "%zu", queries.size());
    std::snprintf(crow[1], sizeof(crow[1]), "%.0f", c10k_rps);
    table.AddRow({"daemon pipelined + idle flood", crow[0],
                  FormatSeconds(c10k_ms), crow[1]});
  }
  table.Print();
  std::printf("\nprotocol overhead: %.1f%% RPS (%.3f ms per request)\n",
              direct_rps > 0 ? 100.0 * (1.0 - served_rps / direct_rps) : 0.0,
              (served_ms - direct_ms) / n);
  if (idle_conns > 0) {
    std::printf("c10k: %u idle connection(s) parked, %llu churn accept(s); "
                "accept-to-first-byte p50 %.2f ms, p99 %.2f ms\n",
                idle_conns,
                static_cast<unsigned long long>(churn_accepts),
                c10k_stats.accept_p50_ms, c10k_stats.accept_p99_ms);
    std::printf("c10k flushes: %llu (%llu frame(s) flushed — >1 per flush "
                "means the gather writes coalesced)\n",
                static_cast<unsigned long long>(c10k_stats.flushes),
                static_cast<unsigned long long>(c10k_stats.frames_flushed));
  }

  {
    const double rc_cold_rps =
        rc_texts.size() / (rc_cold_ms / 1000.0);
    const double rc_hot_rps = hot_picks.size() / (rc_hot_ms / 1000.0);
    std::printf("\nresult cache phase (%zu distinct queries, Zipfian "
                "repeats):\n", rc_texts.size());
    TablePrinter rc_table({"pass", "requests", "time(s)", "RPS"});
    char rc_buf[4][32];
    std::snprintf(rc_buf[0], sizeof(rc_buf[0]), "%zu", rc_texts.size());
    std::snprintf(rc_buf[1], sizeof(rc_buf[1]), "%.0f", rc_cold_rps);
    rc_table.AddRow({"cold (all misses)", rc_buf[0],
                     FormatSeconds(rc_cold_ms), rc_buf[1]});
    std::snprintf(rc_buf[2], sizeof(rc_buf[2]), "%zu", hot_picks.size());
    std::snprintf(rc_buf[3], sizeof(rc_buf[3]), "%.0f", rc_hot_rps);
    rc_table.AddRow({"hot (cache hits)", rc_buf[2],
                     FormatSeconds(rc_hot_ms), rc_buf[3]});
    rc_table.Print();
    std::printf("cache speedup: %.1fx hit RPS over cold; warm pass: "
                "%llu hit(s), %llu miss(es)\n",
                rc_cold_rps > 0 ? rc_hot_rps / rc_cold_rps : 0.0,
                static_cast<unsigned long long>(rc_warm_stats.cache.hits),
                static_cast<unsigned long long>(rc_warm_stats.cache.misses));
    std::printf("live refresh: generation swapped mid-flood with %llu "
                "failed round trip(s); final counts match the new graph "
                "(%llu total hit(s), %llu miss(es), %llu entry(ies), "
                "%.1f MB cached)\n",
                static_cast<unsigned long long>(rc_refresh_failures.load()),
                static_cast<unsigned long long>(rc_stats.cache.hits),
                static_cast<unsigned long long>(rc_stats.cache.misses),
                static_cast<unsigned long long>(rc_stats.cache.entries),
                rc_stats.cache.bytes_used / (1024.0 * 1024.0));
  }

  if (run_multitenant) {
    std::printf("\nmulti-tenant phase (3 snapshot tenants, max-engines 2, "
                "%.3f s):\n", mt_ms / 1000.0);
    TablePrinter mt_table({"tenant", "queries", "RPS"});
    const char* mt_rows[4] = {"t0 (scoped, base+delta)", "t1 (scoped)",
                              "t2 (scoped)", "legacy unscoped -> t0"};
    const uint64_t mt_counts[4] = {mt_tenant_queries[0], mt_tenant_queries[1],
                                   mt_tenant_queries[2], mt_legacy_queries};
    for (int t = 0; t < 4; ++t) {
      char qbuf[32], rbuf[32];
      std::snprintf(qbuf, sizeof(qbuf), "%llu",
                    static_cast<unsigned long long>(mt_counts[t]));
      std::snprintf(rbuf, sizeof(rbuf), "%.0f",
                    mt_ms > 0 ? mt_counts[t] / (mt_ms / 1000.0) : 0.0);
      mt_table.AddRow({mt_rows[t], qbuf, rbuf});
    }
    mt_table.Print();
    std::printf("catalog: %llu graph(s), %llu resident, %llu hit(s), "
                "%llu miss(es), %llu eviction(s); refresh applied %llu "
                "record(s) to t0\n",
                static_cast<unsigned long long>(mt_stats.graphs_registered),
                static_cast<unsigned long long>(mt_stats.graphs_resident),
                static_cast<unsigned long long>(mt_stats.catalog_hits),
                static_cast<unsigned long long>(mt_stats.catalog_misses),
                static_cast<unsigned long long>(mt_stats.catalog_evictions),
                static_cast<unsigned long long>(mt_refresh_records));
  }

  // Daemon memory footprint. This bench builds its engine in-process (cold),
  // so the whole graph is private heap; a production daemon loading the same
  // graph via an mmap snapshot keeps the bulk data in a MAP_SHARED mapping
  // instead, so N daemons on one snapshot hold ~N x (RSS - graph) + 1 x
  // graph physical memory (bench_snapshot measures the per-process delta).
  const long rss_kb = ReadProcStatusKb("VmRSS");
  const long hwm_kb = ReadProcStatusKb("VmHWM");
  if (rss_kb >= 0) {
    std::printf("daemon RSS: %.1f MB (peak %.1f MB); graph+index heap "
                "%.1f MB of that\n",
                rss_kb / 1024.0, hwm_kb / 1024.0,
                (g.OwnedHeapBytes() + engine.reach().MemoryBytes()) /
                    (1024.0 * 1024.0));
  }

  if (transport_failures.load() != 0 || mismatches.load() != 0 ||
      c10k_failures.load() != 0 || c10k_mismatches.load() != 0 ||
      rc_failures.load() != 0 || rc_mismatches.load() != 0 ||
      rc_refresh_failures.load() != 0 ||
      mt_failures.load() != 0 || mt_mismatches.load() != 0) {
    std::fprintf(stderr,
                 "FAIL: %llu transport failure(s), %llu count mismatch(es), "
                 "%llu c10k failure(s), %llu c10k mismatch(es), "
                 "%llu cache failure(s), %llu cache mismatch(es), "
                 "%llu refresh-flood failure(s), "
                 "%llu multi-tenant failure(s), %llu multi-tenant "
                 "mismatch(es)\n",
                 static_cast<unsigned long long>(transport_failures.load()),
                 static_cast<unsigned long long>(mismatches.load()),
                 static_cast<unsigned long long>(c10k_failures.load()),
                 static_cast<unsigned long long>(c10k_mismatches.load()),
                 static_cast<unsigned long long>(rc_failures.load()),
                 static_cast<unsigned long long>(rc_mismatches.load()),
                 static_cast<unsigned long long>(
                     rc_refresh_failures.load()),
                 static_cast<unsigned long long>(mt_failures.load()),
                 static_cast<unsigned long long>(mt_mismatches.load()));
    return 1;
  }
  std::printf("served counts identical to in-process evaluation "
              "(%zu queries%s%s)\n", queries.size(),
              idle_conns > 0 ? ", sequential and pipelined" : "",
              run_multitenant ? ", single- and multi-tenant" : "");
  return 0;
}
