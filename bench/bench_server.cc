// Protocol overhead of the query daemon (server/server.h): end-to-end RPS
// through the Unix-socket frame protocol vs the same workload evaluated
// in-process.
//
// Setup: one engine over a generated bench graph serves (a) directly via
// EvaluateBatch and per-worker contexts — the in-process ceiling — and
// (b) through a QueryServer on a Unix-domain socket with K concurrent
// clients issuing one query per request. Both run the identical query list,
// and the bench cross-checks that every served count equals the in-process
// count (a daemon that is fast but wrong would be worthless).
//
// The gap between (a) and (b) is pure serving overhead: framing, syscalls,
// scheduling — the price of the RDBMS-style "load once, serve repeatedly"
// deployment the snapshot subsystem enables.
//
// A third phase stresses the event-loop core the way the C10K problem
// does: a thousand-plus idle connections parked on the daemon while the
// hot clients pipeline their requests (many in flight per connection)
// and a churn thread opens/closes connections the whole time. The idle
// flood must not cost a single failed round trip, and the accept-to-
// first-byte percentiles under churn come from the server's own stats.
//
// Knobs: RIGPM_SCALE scales the graph; RIGPM_SERVER_CLIENTS (default 4)
// sets the concurrent client count; RIGPM_IDLE_CONNS (default 1000)
// sizes the idle flood (0 skips the C10K phase).

#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "query/pattern_parser.h"
#include "server/client.h"
#include "server/server.h"

using namespace rigpm;
using namespace rigpm::bench;

namespace {

uint32_t ClientsFromEnv() {
  const char* raw = std::getenv("RIGPM_SERVER_CLIENTS");
  if (raw == nullptr) return 4;
  long v = std::strtol(raw, nullptr, 10);
  return v > 0 ? static_cast<uint32_t>(v) : 4;
}

uint32_t IdleConnsFromEnv() {
  const char* raw = std::getenv("RIGPM_IDLE_CONNS");
  if (raw == nullptr) return 1000;
  long v = std::strtol(raw, nullptr, 10);
  return v >= 0 ? static_cast<uint32_t>(v) : 1000;
}

// Lifts the soft RLIMIT_NOFILE toward the hard cap so the idle flood
// (plus the server's own fds) fits. Best effort: if the hard cap is
// still too small the connect loop reports it.
void RaiseNofileLimit(uint64_t want) {
  rlimit lim{};
  if (getrlimit(RLIMIT_NOFILE, &lim) != 0) return;
  if (lim.rlim_cur >= want) return;
  rlimit raised = lim;
  raised.rlim_cur = lim.rlim_max == RLIM_INFINITY
                        ? want
                        : std::min<rlim_t>(lim.rlim_max, want);
  setrlimit(RLIMIT_NOFILE, &raised);
}

}  // namespace

int main() {
  const double scale = DatasetScaleFromEnv();
  const uint32_t num_clients = ClientsFromEnv();
  PrintBenchHeader("Server — socket serving vs in-process evaluation",
                   "scale=" + std::to_string(scale) +
                       " clients=" + std::to_string(num_clients));

  const DatasetSpec& spec = DatasetByName("yt");
  Graph g = MakeDataset(spec, scale);
  std::printf("graph: %s\n\n", g.Summary().c_str());
  GmEngine engine(g);

  // Workload: the template queries the paper serves, repeated so each
  // client has a few dozen requests — enough round trips for the protocol
  // cost to dominate noise.
  auto workload = TemplateWorkload(g, RepresentativeTemplateNames(),
                                   QueryVariant::kHybrid, /*seed=*/17);
  std::vector<PatternQuery> queries;
  std::vector<std::string> query_texts;
  constexpr int kRepeats = 8;
  for (int r = 0; r < kRepeats; ++r) {
    for (const NamedQuery& nq : workload) {
      queries.push_back(nq.query);
      query_texts.push_back(PatternToString(nq.query));
    }
  }
  GmOptions opts;
  opts.limit = MatchLimitFromEnv();

  // --- (a) In-process ceiling: EvaluateBatch with as many workers as the
  // server will have clients.
  GmOptions batch_opts = opts;
  batch_opts.num_threads = num_clients;
  std::vector<GmResult> direct;
  double direct_ms = TimeMs([&] {
    direct = engine.EvaluateBatch(
        std::span<const PatternQuery>(queries), batch_opts);
  });

  // --- (b) Through the daemon: K clients, one connection each, splitting
  // the same query list round-robin.
  server::ServerConfig config;
  config.unix_path = (std::filesystem::temp_directory_path() /
                      ("rigpm_bench_server_" + std::to_string(::getpid()) +
                       ".sock"))
                         .string();
  config.num_workers = num_clients;
  server::QueryServer server(engine, config);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "cannot start server: %s\n", error.c_str());
    return 1;
  }

  std::atomic<uint64_t> mismatches{0};
  std::atomic<uint64_t> transport_failures{0};
  double served_ms = TimeMs([&] {
    std::vector<std::thread> clients;
    clients.reserve(num_clients);
    for (uint32_t c = 0; c < num_clients; ++c) {
      clients.emplace_back([&, c] {
        server::QueryClient client;
        std::string cerr;
        if (!client.ConnectUnix(config.unix_path, &cerr)) {
          ++transport_failures;
          return;
        }
        for (size_t i = c; i < query_texts.size(); i += num_clients) {
          server::QueryRequest req;
          req.patterns = {query_texts[i]};
          req.limit = opts.limit;
          auto resp = client.Query(req, &cerr);
          if (!resp.has_value() ||
              resp->status != server::StatusCode::kOk ||
              resp->results.size() != 1) {
            ++transport_failures;
            continue;
          }
          if (resp->results[0].num_occurrences !=
              direct[i].num_occurrences) {
            ++mismatches;
          }
        }
      });
    }
    for (std::thread& t : clients) t.join();
  });

  // --- (c) C10K: the identical workload again, but every client pipelines
  // its slice (kPipelineWindow tagged requests in flight per connection)
  // while `idle_conns` connections sit parked on the daemon doing nothing
  // and a churn thread opens/closes short-lived connections throughout.
  const uint32_t idle_conns = IdleConnsFromEnv();
  double c10k_ms = 0.0;
  uint64_t churn_accepts = 0;
  server::ServerStats c10k_stats{};
  std::atomic<uint64_t> c10k_failures{0};
  std::atomic<uint64_t> c10k_mismatches{0};
  if (idle_conns > 0) {
    RaiseNofileLimit(static_cast<uint64_t>(idle_conns) + 512);
    std::vector<server::QueryClient> idle;
    idle.reserve(idle_conns);
    for (uint32_t i = 0; i < idle_conns; ++i) {
      server::QueryClient holder;
      std::string herr;
      if (!holder.ConnectUnix(config.unix_path, &herr)) {
        std::fprintf(stderr, "idle connect %u/%u failed: %s\n", i + 1,
                     idle_conns, herr.c_str());
        return 1;
      }
      idle.push_back(std::move(holder));
    }

    std::atomic<bool> churn_stop{false};
    std::atomic<uint64_t> churned{0};
    std::thread churner([&] {
      // Accept churn: each iteration is a fresh connection, one ping, and
      // a close — so the accept-to-first-byte percentiles below measure
      // accepts that happen WHILE the loop juggles 1000+ parked fds and
      // the pipelined hot path.
      while (!churn_stop.load(std::memory_order_relaxed)) {
        server::QueryClient c;
        std::string cerr2;
        if (!c.ConnectUnix(config.unix_path, &cerr2) || !c.Ping(&cerr2)) {
          ++c10k_failures;
          return;
        }
        ++churned;
      }
    });

    constexpr size_t kPipelineWindow = 16;
    c10k_ms = TimeMs([&] {
      std::vector<std::thread> hot;
      hot.reserve(num_clients);
      for (uint32_t c = 0; c < num_clients; ++c) {
        hot.emplace_back([&, c] {
          server::QueryClient client;
          std::string cerr2;
          if (!client.ConnectUnix(config.unix_path, &cerr2)) {
            ++c10k_failures;
            return;
          }
          std::vector<size_t> slice;
          for (size_t i = c; i < query_texts.size(); i += num_clients) {
            slice.push_back(i);
          }
          for (size_t start = 0; start < slice.size();
               start += kPipelineWindow) {
            size_t end = std::min(slice.size(), start + kPipelineWindow);
            std::vector<server::QueryRequest> reqs;
            reqs.reserve(end - start);
            for (size_t k = start; k < end; ++k) {
              server::QueryRequest req;
              req.patterns = {query_texts[slice[k]]};
              req.limit = opts.limit;
              reqs.push_back(std::move(req));
            }
            auto resps = client.QueryPipelined(reqs, &cerr2);
            if (!resps.has_value()) {
              c10k_failures += end - start;
              return;
            }
            for (size_t k = start; k < end; ++k) {
              const server::QueryResponse& r = (*resps)[k - start];
              if (r.status != server::StatusCode::kOk ||
                  r.results.size() != 1) {
                ++c10k_failures;
              } else if (r.results[0].num_occurrences !=
                         direct[slice[k]].num_occurrences) {
                ++c10k_mismatches;
              }
            }
          }
        });
      }
      for (std::thread& t : hot) t.join();
    });
    churn_stop.store(true);
    churner.join();
    churn_accepts = churned.load();
    c10k_stats = server.Snapshot();
  }
  server.Stop();

  const double n = static_cast<double>(queries.size());
  const double direct_rps = n / (direct_ms / 1000.0);
  const double served_rps = n / (served_ms / 1000.0);
  TablePrinter table({"path", "queries", "time(s)", "RPS"});
  char buf[3][32];
  std::snprintf(buf[0], sizeof(buf[0]), "%zu", queries.size());
  std::snprintf(buf[1], sizeof(buf[1]), "%.0f", direct_rps);
  table.AddRow({"in-process EvaluateBatch", buf[0], FormatSeconds(direct_ms),
                buf[1]});
  std::snprintf(buf[2], sizeof(buf[2]), "%.0f", served_rps);
  table.AddRow({"daemon (unix socket)", buf[0], FormatSeconds(served_ms),
                buf[2]});
  if (idle_conns > 0) {
    const double c10k_rps = n / (c10k_ms / 1000.0);
    char crow[2][32];
    std::snprintf(crow[0], sizeof(crow[0]), "%zu", queries.size());
    std::snprintf(crow[1], sizeof(crow[1]), "%.0f", c10k_rps);
    table.AddRow({"daemon pipelined + idle flood", crow[0],
                  FormatSeconds(c10k_ms), crow[1]});
  }
  table.Print();
  std::printf("\nprotocol overhead: %.1f%% RPS (%.3f ms per request)\n",
              direct_rps > 0 ? 100.0 * (1.0 - served_rps / direct_rps) : 0.0,
              (served_ms - direct_ms) / n);
  if (idle_conns > 0) {
    std::printf("c10k: %u idle connection(s) parked, %llu churn accept(s); "
                "accept-to-first-byte p50 %.2f ms, p99 %.2f ms\n",
                idle_conns,
                static_cast<unsigned long long>(churn_accepts),
                c10k_stats.accept_p50_ms, c10k_stats.accept_p99_ms);
  }

  // Daemon memory footprint. This bench builds its engine in-process (cold),
  // so the whole graph is private heap; a production daemon loading the same
  // graph via an mmap snapshot keeps the bulk data in a MAP_SHARED mapping
  // instead, so N daemons on one snapshot hold ~N x (RSS - graph) + 1 x
  // graph physical memory (bench_snapshot measures the per-process delta).
  const long rss_kb = ReadProcStatusKb("VmRSS");
  const long hwm_kb = ReadProcStatusKb("VmHWM");
  if (rss_kb >= 0) {
    std::printf("daemon RSS: %.1f MB (peak %.1f MB); graph+index heap "
                "%.1f MB of that\n",
                rss_kb / 1024.0, hwm_kb / 1024.0,
                (g.OwnedHeapBytes() + engine.reach().MemoryBytes()) /
                    (1024.0 * 1024.0));
  }

  if (transport_failures.load() != 0 || mismatches.load() != 0 ||
      c10k_failures.load() != 0 || c10k_mismatches.load() != 0) {
    std::fprintf(stderr,
                 "FAIL: %llu transport failure(s), %llu count mismatch(es), "
                 "%llu c10k failure(s), %llu c10k mismatch(es)\n",
                 static_cast<unsigned long long>(transport_failures.load()),
                 static_cast<unsigned long long>(mismatches.load()),
                 static_cast<unsigned long long>(c10k_failures.load()),
                 static_cast<unsigned long long>(c10k_mismatches.load()));
    return 1;
  }
  std::printf("served counts identical to in-process evaluation "
              "(%zu queries%s)\n", queries.size(),
              idle_conns > 0 ? ", sequential and pipelined" : "");
  return 0;
}
