// Fig. 10: elapsed time of H-queries (HQ2, HQ4, HQ7, HQ18) on versions of
// the em graph with 5 / 10 / 15 / 20 labels (size fixed). Expected shape:
// all algorithms slow down as labels decrease (bigger inverted lists), with
// the steepest growth near 5; GM stays fastest throughout, TM times out on
// the heavy patterns, JM runs out of memory on HQ18.

#include "bench_common.h"

using namespace rigpm;
using namespace rigpm::bench;

int main() {
  PrintBenchHeader("Fig. 10 — H-query time vs number of data labels (em)",
                   "scale=" + std::to_string(DatasetScaleFromEnv()));
  const DatasetSpec& em = DatasetByName("em");
  const double scale = DatasetScaleFromEnv();

  for (const std::string& qname : {"HQ2", "HQ4", "HQ7", "HQ18"}) {
    std::printf("\n-- %s\n", qname.c_str());
    TablePrinter table({"#labels", "GM(s)", "TM(s)", "JM(s)"});
    for (uint32_t labels : {5u, 10u, 15u, 20u}) {
      Graph g = MakeDatasetWithLabels(em, scale, labels);
      GmEngine engine(g);
      auto reach = BuildReachabilityIndex(g, ReachKind::kBfl);
      MatchContext ctx(g, *reach);
      auto queries =
          TemplateWorkload(g, {qname}, QueryVariant::kHybrid, /*seed=*/11);
      const PatternQuery& q = queries.front().query;
      auto gm = RunGm(engine, q);
      auto tm = RunTm(ctx, q);
      auto jm = RunJm(ctx, q);
      table.AddRow({std::to_string(labels), gm.formatted, tm.formatted,
                    jm.formatted});
    }
    table.Print();
  }
  return 0;
}
