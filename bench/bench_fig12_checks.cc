// Fig. 12: effectiveness of the framework's low-level techniques on em.
//  (a) child-constraint checking: binSearch vs bitIter vs bitBat, measured
//      on C-queries (the check dominates the matching phase there);
//  (b) double-simulation construction: Gra (FBSimBas) vs Dag (FBSim) vs
//      DagMap (FBSim + change flags + batch ops), measured on H-queries.
// Expected shape: bitBat >> bitIter >> binSearch; DagMap fastest, Gra
// slowest.

#include "bench_common.h"
#include "sim/fbsim.h"

using namespace rigpm;
using namespace rigpm::bench;

int main() {
  PrintBenchHeader(
      "Fig. 12 — child-constraint checking & simulation build (em)",
      "scale=" + std::to_string(DatasetScaleFromEnv()));
  Graph g = MakeDatasetByName("em");
  std::printf("graph: %s\n", g.Summary().c_str());
  GmEngine engine(g);
  auto reach = BuildReachabilityIndex(g, ReachKind::kBfl);
  MatchContext ctx(g, *reach);

  // --- (a) Child-constraint check modes, C-queries, matching time.
  std::printf(
      "\n-- (a) child-constraint check modes (C-queries, matching time)\n");
  {
    TablePrinter table({"Query", "binSearch(s)", "bitIter(s)", "bitBat(s)"});
    auto queries = TemplateWorkload(g, RepresentativeTemplateNames(),
                                    QueryVariant::kChildOnly);
    for (const auto& nq : queries) {
      std::vector<std::string> row = {nq.name};
      for (ChildCheckMode mode :
           {ChildCheckMode::kBinSearch, ChildCheckMode::kBitIter,
            ChildCheckMode::kBitBat}) {
        GmOptions opts;
        opts.use_prefilter = false;
        opts.sim.child_check = mode;
        opts.limit = 1;  // isolate the matching (checking) phase
        GmResult r;
        double ms = TimeMs([&] { r = engine.Evaluate(nq.query, opts); });
        (void)ms;
        row.push_back(FormatSeconds(r.MatchingMs()));
      }
      table.AddRow(std::move(row));
    }
    table.Print();
  }

  // --- (b) Simulation-relation construction algorithms, H-queries.
  std::printf(
      "\n-- (b) simulation construction: Gra vs Dag vs DagMap "
      "(H-queries)\n");
  {
    TablePrinter table({"Query", "Gra(s)", "Dag(s)", "DagMap(s)"});
    auto queries = TemplateWorkload(g, RepresentativeTemplateNames(),
                                    QueryVariant::kHybrid);
    for (const auto& nq : queries) {
      std::vector<std::string> row = {nq.name};
      for (SimAlgorithm alg :
           {SimAlgorithm::kBas, SimAlgorithm::kDag, SimAlgorithm::kDagMap}) {
        double ms = TimeMs([&] {
          SimOptions sopts;
          sopts.max_passes = 3;
          ComputeDoubleSimulation(ctx, nq.query, alg, sopts);
        });
        row.push_back(FormatSeconds(ms));
      }
      table.AddRow(std::move(row));
    }
    table.Print();
  }
  return 0;
}
