// Table 5: GM vs the EmptyHeaded-style engine (EH = WCO joins + expensive
// precomputation; EH-probe = the same without charging the precomputation)
// and the Neo4j-style engine (binary joins, no pre-filtering) on C-queries
// over em and ep. Expected shape: GM fastest across the board; EH pays its
// precomputation; Neo4j falls behind on the cyclic/clique patterns.

#include "bench_common.h"
#include "baseline/catalog.h"

using namespace rigpm;
using namespace rigpm::bench;

int main() {
  PrintBenchHeader("Table 5 — GM vs EH / EH-probe / Neo4j on C-queries",
                   "scale=" + std::to_string(DatasetScaleFromEnv()));
  TablePrinter table(
      {"Dataset", "Query", "EH-probe(s)", "EH(s)", "Neo4j(s)", "GM(s)"});
  for (const std::string& dataset : {"em", "ep"}) {
    Graph g = MakeDatasetByName(dataset);
    GmEngine engine(g);
    auto reach = BuildReachabilityIndex(g, ReachKind::kBfl);
    MatchContext ctx(g, *reach);
    WcojEngine eh(g);
    // EH's per-query precomputation cost model: one catalog pass.
    CatalogResult pre = BuildCatalog(g, 2'000'000);

    auto queries = TemplateWorkload(g, RepresentativeTemplateNames(),
                                    QueryVariant::kChildOnly);
    for (const auto& nq : queries) {
      auto eh_probe = RunWcoj(eh, nq.query);
      std::string eh_total =
          (pre.status == EvalStatus::kOk && eh_probe.status == EvalStatus::kOk)
              ? FormatSeconds(pre.build_ms + eh_probe.ms)
              : EvalStatusName(pre.status == EvalStatus::kOk ? eh_probe.status
                                                             : pre.status);
      // Neo4j stand-in: Selinger-style binary joins without pre-filtering.
      JmOptions neo;
      neo.use_prefilter = false;
      auto neo4j = RunJm(ctx, nq.query, neo);
      GmOptions gopts;
      gopts.use_prefilter = false;
      auto gm = RunGm(engine, nq.query, gopts);
      table.AddRow({dataset, "C" + nq.name.substr(1), eh_probe.formatted,
                    eh_total, neo4j.formatted, gm.formatted});
    }
  }
  table.Print();
  return 0;
}
