// Parallel scaling of the staged pipeline (the Section 6 future-work sketch
// made real): elapsed time and speedup vs worker count, on the fig11-scale
// workload (DBLP subsets, H-queries).
//
// Two modes of parallelism are measured:
//  * single-query — GmOptions::num_threads routes the Enumerate phase
//    through the partitioned parallel MJoin (matching stays sequential, so
//    the achievable speedup is bounded by the enumeration share, Amdahl);
//  * batch — GmEngine::EvaluateBatch spreads independent queries across
//    workers, one reusable EvalContext each (whole evaluations scale).
//
// Expected shape: >1.5x at 4 threads for both modes on enumeration-heavy
// queries; batch mode scales closer to linearly because nothing is serial.

#include <thread>

#include "bench_common.h"

using namespace rigpm;
using namespace rigpm::bench;

namespace {

std::string Ratio(double base_ms, double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx", ms > 0 ? base_ms / ms : 0.0);
  return buf;
}

}  // namespace

int main() {
  PrintBenchHeader("Parallel scale — time & speedup vs worker count",
                   "scale=" + std::to_string(DatasetScaleFromEnv()) +
                       " hw_threads=" +
                       std::to_string(std::thread::hardware_concurrency()));
  const DatasetSpec& db = DatasetByName("db");
  const double scale = DatasetScaleFromEnv();
  Graph g = MakeDatasetWithNodes(
      db, static_cast<uint32_t>(300'000 * scale));
  GmEngine engine(g);
  const std::vector<uint32_t> thread_counts = {1, 2, 4, 8};

  // --- Single-query enumeration scaling.
  for (const std::string& qname : {"HQ8", "HQ12"}) {
    auto queries =
        TemplateWorkload(g, {qname}, QueryVariant::kHybrid, /*seed=*/17);
    const PatternQuery& q = queries.front().query;

    std::printf("\n-- %s, single query (parallel enumeration)\n",
                qname.c_str());
    TablePrinter table({"threads", "time(s)", "enumerate(s)", "speedup",
                        "matches"});
    double base_ms = 0.0;
    for (uint32_t threads : thread_counts) {
      GmOptions opts;
      opts.limit = MatchLimitFromEnv();
      opts.num_threads = threads;
      GmResult r;
      double ms = TimeMs([&] { r = engine.Evaluate(q, opts); });
      if (threads == 1) base_ms = ms;
      table.AddRow({std::to_string(threads), FormatSeconds(ms),
                    FormatSeconds(r.enumerate_ms), Ratio(base_ms, ms),
                    std::to_string(r.num_occurrences)});
    }
    table.Print();
  }

  // --- Batch serving scaling: the representative template mix, every query
  // independent, workers pulling from the shared batch queue.
  {
    auto named = TemplateWorkload(g, RepresentativeTemplateNames(),
                                  QueryVariant::kHybrid, /*seed=*/17);
    std::vector<PatternQuery> batch;
    for (const NamedQuery& nq : named) batch.push_back(nq.query);
    // Replicate the mix so the batch comfortably outnumbers the workers.
    const size_t base = batch.size();
    for (int copy = 0; copy < 3; ++copy) {
      for (size_t i = 0; i < base; ++i) batch.push_back(batch[i]);
    }

    std::printf("\n-- batch of %zu queries (EvaluateBatch)\n", batch.size());
    TablePrinter table(
        {"threads", "wall(s)", "speedup", "queries/s", "matches"});
    double base_ms = 0.0;
    for (uint32_t threads : thread_counts) {
      GmOptions opts;
      opts.limit = MatchLimitFromEnv();
      opts.num_threads = threads;
      std::vector<GmResult> results;
      double ms = TimeMs([&] { results = engine.EvaluateBatch(batch, opts); });
      if (threads == 1) base_ms = ms;
      uint64_t matches = 0;
      for (const GmResult& r : results) matches += r.num_occurrences;
      char qps[32];
      std::snprintf(qps, sizeof(qps), "%.1f", batch.size() * 1000.0 / ms);
      table.AddRow({std::to_string(threads), FormatSeconds(ms),
                    Ratio(base_ms, ms), qps, std::to_string(matches)});
    }
    table.Print();
  }
  return 0;
}
