// Refresh latency: full snapshot re-dump + reload vs delta-log replay
// (storage/delta_log.h), on the largest generated bench graph.
//
// The scenario is the ROADMAP's "incremental snapshot deltas" item: a
// served graph receives a batch of new edges and the serving tier must
// start answering with them. Before this PR the only path was a full
// re-dump — rebuild the engine over the merged graph, write the whole
// snapshot, restart/reload the daemon. With the delta log the updater
// appends one small checksummed record and the daemon replays it in place
// (kRefresh), paying only the delta IO plus the index rebuild it would
// have needed anyway. The first table times both pipelines stage by stage
// and cross-checks that they serve identical counts.
//
// The second part measures refresh-under-load on a real QueryServer: 4
// clients hammer a fixed pattern over a Unix socket while the main thread
// appends a batch and sends kRefresh; reported are per-phase p50/p99
// client latencies (before / during+after the swap), the refresh duration,
// and the requirement that not one round trip fails — the RCU engine swap
// must be invisible to clients.
//
// Subject graph: "bs" (the BerkStan analogue, the largest registry entry),
// scaled by RIGPM_SCALE like every other bench.

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "query/pattern_parser.h"
#include "server/client.h"
#include "server/server.h"
#include "storage/delta_log.h"
#include "storage/snapshot.h"

using namespace rigpm;
using namespace rigpm::bench;

namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() /
          (name + "." + std::to_string(::getpid())))
      .string();
}

double FileMb(const std::string& path) {
  std::error_code ec;
  auto size = std::filesystem::file_size(path, ec);
  return ec ? 0.0 : static_cast<double>(size) / (1024.0 * 1024.0);
}

/// Percentile over a sample copy (nearest-rank).
double Pct(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  size_t rank = static_cast<size_t>(p * static_cast<double>(samples.size()));
  rank = std::min(rank, samples.size() - 1);
  std::nth_element(samples.begin(), samples.begin() + rank, samples.end());
  return samples[rank];
}

}  // namespace

int main() {
  const double scale = DatasetScaleFromEnv();
  PrintBenchHeader("Delta refresh — full snapshot re-dump vs delta-log "
                   "replay",
                   "scale=" + std::to_string(scale));

  const DatasetSpec& bs = DatasetByName("bs");
  Graph full = MakeDataset(bs, scale);
  std::printf("graph: %s\n\n", full.Summary().c_str());

  // Hold the last ~0.2% of edges out of the base; they arrive later as two
  // delta batches (the incremental workload).
  std::vector<LabelId> labels(full.NumNodes());
  for (NodeId v = 0; v < full.NumNodes(); ++v) labels[v] = full.Label(v);
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(full.NumEdges());
  for (NodeId v = 0; v < full.NumNodes(); ++v) {
    for (NodeId w : full.OutNeighbors(v)) edges.emplace_back(v, w);
  }
  const size_t held_out =
      std::max<size_t>(2, static_cast<size_t>(edges.size() / 500));
  std::vector<std::pair<NodeId, NodeId>> delta_edges(edges.end() - held_out,
                                                     edges.end());
  edges.resize(edges.size() - held_out);
  Graph base = Graph::FromEdges(labels, std::move(edges));
  std::printf("base: %llu edge(s); arriving later: %zu edge(s) in 2 "
              "batches\n\n",
              static_cast<unsigned long long>(base.NumEdges()), held_out);

  const std::string base_snap = TempPath("rigpm_bench_base.snap");
  const std::string full_snap = TempPath("rigpm_bench_full.snap");
  const std::string delta_log = TempPath("rigpm_bench_graph.delta");
  std::string error;
  GmEngine base_engine(base);
  if (!SaveEngineSnapshot(base_engine, base_snap, &error)) {
    std::fprintf(stderr, "cannot write base snapshot: %s\n", error.c_str());
    return 1;
  }
  auto info = InspectSnapshot(base_snap, &error);
  if (!info.has_value()) {
    std::fprintf(stderr, "cannot inspect base snapshot: %s\n",
                 error.c_str());
    return 1;
  }

  // --- Path A: full re-dump. The updater rebuilds the engine over the
  // merged graph, dumps a complete snapshot, and the daemon reloads it.
  std::optional<Graph> merged_a;
  double apply_a_ms =
      TimeMs([&] { merged_a = ApplyEdgesToGraph(base, delta_edges); });
  std::optional<GmEngine> engine_a;
  double index_a_ms = TimeMs([&] { engine_a.emplace(*merged_a); });
  double dump_ms = TimeMs([&] {
    if (!SaveEngineSnapshot(*engine_a, full_snap, &error)) {
      std::fprintf(stderr, "cannot write full snapshot: %s\n",
                   error.c_str());
      std::exit(1);
    }
  });
  std::optional<WarmEngine> reloaded;
  double reload_ms =
      TimeMs([&] { reloaded = LoadEngineSnapshot(full_snap, {}, &error); });
  if (!reloaded.has_value()) {
    std::fprintf(stderr, "cannot reload full snapshot: %s\n", error.c_str());
    return 1;
  }
  const double full_total =
      apply_a_ms + index_a_ms + dump_ms + reload_ms;

  // --- Path B: delta log. The updater appends two fsynced records; the
  // daemon replays them over its in-memory base and rebuilds the index.
  double append_ms = TimeMs([&] {
    auto writer = DeltaWriter::Open(delta_log, info->stored_checksum,
                                    base.NumNodes(), &error);
    if (writer == nullptr ||
        !writer->Append(std::span<const std::pair<NodeId, NodeId>>(
                            delta_edges.data(), held_out / 2),
                        &error) ||
        !writer->Append(std::span<const std::pair<NodeId, NodeId>>(
                            delta_edges.data() + held_out / 2,
                            held_out - held_out / 2),
                        &error)) {
      std::fprintf(stderr, "delta append failed: %s\n", error.c_str());
      std::exit(1);
    }
  });
  std::optional<Graph> merged_b;
  double replay_ms = TimeMs([&] {
    DeltaReader reader(delta_log);
    merged_b = ReplayDelta(base, reader, &error);
    if (!merged_b.has_value()) {
      std::fprintf(stderr, "delta replay failed: %s\n", error.c_str());
      std::exit(1);
    }
  });
  std::optional<GmEngine> engine_b;
  double index_b_ms = TimeMs([&] { engine_b.emplace(*merged_b); });
  const double delta_total = append_ms + replay_ms + index_b_ms;

  // Correctness: both refreshed engines serve identical counts.
  const std::string probe = "(a:0)->(b:1)";
  auto q = ParsePattern(probe);
  GmOptions qopts;
  qopts.limit = MatchLimitFromEnv();
  uint64_t count_a = reloaded->engine->EvaluateCollect(*q, qopts).size();
  uint64_t count_b = engine_b->EvaluateCollect(*q, qopts).size();
  if (count_a != count_b) {
    std::fprintf(stderr, "FAIL: re-dump served %llu but delta served %llu\n",
                 static_cast<unsigned long long>(count_a),
                 static_cast<unsigned long long>(count_b));
    return 1;
  }

  TablePrinter table({"stage", "re-dump(s)", "delta(s)", "file(MB)"});
  char mb[32];
  table.AddRow({"apply edges in memory", FormatSeconds(apply_a_ms),
                "(in replay)", ""});
  table.AddRow({"rebuild BFL + intervals", FormatSeconds(index_a_ms),
                FormatSeconds(index_b_ms), ""});
  std::snprintf(mb, sizeof(mb), "%.1f", FileMb(full_snap));
  table.AddRow({"dump full snapshot", FormatSeconds(dump_ms), "-", mb});
  table.AddRow({"reload full snapshot", FormatSeconds(reload_ms), "-", ""});
  std::snprintf(mb, sizeof(mb), "%.3f", FileMb(delta_log));
  table.AddRow({"append delta (fsync x2)", "-", FormatSeconds(append_ms),
                mb});
  table.AddRow({"replay delta", "-", FormatSeconds(replay_ms), ""});
  table.AddRow({"TOTAL refresh", FormatSeconds(full_total),
                FormatSeconds(delta_total), ""});
  table.Print();
  std::printf("\nverify: both paths serve %llu occurrence(s) of \"%s\"\n",
              static_cast<unsigned long long>(count_a), probe.c_str());
  std::printf("delta refresh speedup: %.1fx (%.0f ms -> %.0f ms)%s\n\n",
              delta_total > 0 ? full_total / delta_total : 0.0, full_total,
              delta_total,
              delta_total < full_total ? "" : "  ** NOT FASTER **");

  // ------------------------------------------------ refresh under load
  // A real daemon on a Unix socket: 4 clients in a query loop while the
  // log gains a batch and a kRefresh lands. No round trip may fail.
  std::printf("refresh under load (4 clients, Unix socket):\n");
  std::remove(delta_log.c_str());
  auto warm = LoadEngineSnapshot(base_snap, {}, &error);
  if (!warm.has_value()) {
    std::fprintf(stderr, "cannot reload base snapshot: %s\n", error.c_str());
    return 1;
  }
  constexpr int kClients = 4;
  server::ServerConfig config;
  config.unix_path = TempPath("rigpm_bench_delta.sock");
  // FEWER workers than steady clients, on purpose: the event loop
  // multiplexes every connection over the pool, so the refresher gets
  // served promptly even with all workers oversubscribed.
  config.num_workers = 2;
  config.delta_path = delta_log;
  config.base_checksum = info->stored_checksum;
  server::QueryServer server(*warm->engine, config);
  if (!server.Start(&error)) {
    std::fprintf(stderr, "cannot start server: %s\n", error.c_str());
    return 1;
  }

  std::atomic<bool> stop{false};
  std::atomic<bool> refreshed{false};
  std::atomic<int> failures{0};
  std::vector<double> samples_before, samples_after;
  std::mutex samples_mu;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      server::QueryClient client;
      std::string cerr;
      if (!client.ConnectUnix(config.unix_path, &cerr)) {
        ++failures;
        return;
      }
      server::QueryRequest req;
      req.patterns = {probe};
      req.limit = 2000;  // bound each round trip
      while (!stop.load(std::memory_order_relaxed)) {
        std::optional<server::QueryResponse> resp;
        double ms = TimeMs([&] { resp = client.Query(req, &cerr); });
        if (!resp.has_value() ||
            resp->status != server::StatusCode::kOk) {
          ++failures;
          return;
        }
        {
          std::lock_guard<std::mutex> lock(samples_mu);
          (refreshed.load() ? samples_after : samples_before).push_back(ms);
        }
        // Paced load, not a saturation test: on small CI boxes 4 flat-out
        // clients would starve the refresh of its one core and the p99
        // would measure queueing, not the engine swap.
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  {
    auto writer = DeltaWriter::Open(delta_log, info->stored_checksum,
                                    base.NumNodes(), &error);
    if (writer == nullptr || !writer->Append(delta_edges, &error)) {
      std::fprintf(stderr, "delta append failed: %s\n", error.c_str());
      return 1;
    }
  }
  server::QueryClient refresher;
  double refresh_ms = 0.0;
  if (!refresher.ConnectUnix(config.unix_path, &error)) {
    std::fprintf(stderr, "cannot connect refresher: %s\n", error.c_str());
    return 1;
  }
  std::optional<server::RefreshResponse> rresp;
  refresh_ms = TimeMs([&] { rresp = refresher.Refresh(&error); });
  refreshed.store(true);
  if (!rresp.has_value() || rresp->status != server::StatusCode::kOk) {
    std::fprintf(stderr, "refresh failed: %s\n",
                 rresp.has_value() ? rresp->error.c_str() : error.c_str());
    return 1;
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  stop.store(true);
  for (std::thread& t : clients) t.join();
  server.Stop();
  std::remove(base_snap.c_str());
  std::remove(full_snap.c_str());
  std::remove(delta_log.c_str());

  if (failures.load() != 0) {
    std::fprintf(stderr, "FAIL: %d client round trip(s) failed during "
                 "refresh\n", failures.load());
    return 1;
  }
  TablePrinter load_table(
      {"phase", "queries", "p50(ms)", "p99(ms)"});
  char p50[32], p99[32], n[32];
  std::snprintf(n, sizeof(n), "%zu", samples_before.size());
  std::snprintf(p50, sizeof(p50), "%.2f", Pct(samples_before, 0.50));
  std::snprintf(p99, sizeof(p99), "%.2f", Pct(samples_before, 0.99));
  load_table.AddRow({"before refresh", n, p50, p99});
  std::snprintf(n, sizeof(n), "%zu", samples_after.size());
  std::snprintf(p50, sizeof(p50), "%.2f", Pct(samples_after, 0.50));
  std::snprintf(p99, sizeof(p99), "%.2f", Pct(samples_after, 0.99));
  load_table.AddRow({"during/after refresh", n, p50, p99});
  load_table.Print();
  std::printf("\nrefresh: %llu record(s), %llu edge(s) in %.1f ms "
              "(engine swap; 0 failed round trips)\n",
              static_cast<unsigned long long>(rresp->records_applied),
              static_cast<unsigned long long>(rresp->edges_in_records),
              refresh_ms);
  return 0;
}
