// Microbenchmarks (google-benchmark) for the reachability indexes: build
// cost and per-query cost of BFL vs BFS vs the full transitive closure.

#include <benchmark/benchmark.h>

#include <random>

#include "graph/generators.h"
#include "reach/reachability.h"

namespace {

using namespace rigpm;

Graph MakeGraph(uint32_t nodes) {
  return GeneratePowerLaw({.num_nodes = nodes,
                           .num_edges = static_cast<uint64_t>(nodes) * 4,
                           .num_labels = 10,
                           .seed = 99});
}

void BM_BuildIndex(benchmark::State& state) {
  Graph g = MakeGraph(static_cast<uint32_t>(state.range(0)));
  ReachKind kind = static_cast<ReachKind>(state.range(1));
  for (auto _ : state) {
    auto idx = BuildReachabilityIndex(g, kind);
    benchmark::DoNotOptimize(idx.get());
  }
  state.SetLabel(ReachKindName(kind));
}
BENCHMARK(BM_BuildIndex)
    ->Args({2000, static_cast<int>(ReachKind::kBfs)})
    ->Args({2000, static_cast<int>(ReachKind::kBfl)})
    ->Args({2000, static_cast<int>(ReachKind::kTransitiveClosure)})
    ->Args({20000, static_cast<int>(ReachKind::kBfs)})
    ->Args({20000, static_cast<int>(ReachKind::kBfl)})
    ->Args({20000, static_cast<int>(ReachKind::kTransitiveClosure)});

void BM_QueryIndex(benchmark::State& state) {
  Graph g = MakeGraph(static_cast<uint32_t>(state.range(0)));
  ReachKind kind = static_cast<ReachKind>(state.range(1));
  auto idx = BuildReachabilityIndex(g, kind);
  std::mt19937_64 rng(3);
  std::uniform_int_distribution<uint32_t> dist(0, g.NumNodes() - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(idx->Reaches(dist(rng), dist(rng)));
  }
  state.SetLabel(idx->Name());
}
BENCHMARK(BM_QueryIndex)
    ->Args({20000, static_cast<int>(ReachKind::kBfs)})
    ->Args({20000, static_cast<int>(ReachKind::kBfl)})
    ->Args({20000, static_cast<int>(ReachKind::kTransitiveClosure)});

}  // namespace

BENCHMARK_MAIN();
