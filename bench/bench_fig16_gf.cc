// Fig. 16: comparison of GM with the GraphflowDB-style engine (GF) on
// C-queries.
//  (a) catalog building time per dataset (GF's precomputation); OM marks the
//      entry-budget blowups the paper hit on em/ep/hp;
//  (b) query time GM vs GF on representative C-queries. Expected shape: GF
//      can win on graphs with very few labels (am/bs/go shapes); GM wins —
//      by orders of magnitude — when the label alphabet is larger (hu/yt).

#include "bench_common.h"
#include "baseline/catalog.h"

using namespace rigpm;
using namespace rigpm::bench;

int main() {
  PrintBenchHeader("Fig. 16 — GM vs GF (WCO-join engine with catalog)",
                   "scale=" + std::to_string(DatasetScaleFromEnv()));

  // --- (a) Catalog build cost. Budget mirrors the paper's memory ceiling.
  const uint64_t kCatalogBudget = 2'000'000;
  std::printf("\n-- (a) GF catalog building time\n");
  TablePrinter cat_tab({"Dataset", "Catalog(s)", "Entries / status"});
  for (const std::string& name : {"em", "ep", "hp", "yt", "hu", "bs", "go",
                                  "am"}) {
    Graph g = MakeDatasetByName(name);
    CatalogResult r = BuildCatalog(g, kCatalogBudget);
    cat_tab.AddRow({name,
                    r.status == EvalStatus::kOk ? FormatSeconds(r.build_ms)
                                                : EvalStatusName(r.status),
                    r.status == EvalStatus::kOk ? std::to_string(r.entries)
                                                : "OM"});
  }
  cat_tab.Print();

  // --- (b) C-query evaluation, GM vs GF.
  std::printf("\n-- (b) C-query time, GM vs GF\n");
  TablePrinter q_tab({"Dataset", "Query", "GM(s)", "GF(s)"});
  for (const std::string& name : {"am", "bs", "go", "hu", "yt"}) {
    Graph g = MakeDatasetByName(name);
    GmEngine engine(g);
    WcojEngine gf(g);
    // On the label-rich biology graphs, template instances are frequently
    // empty; use extracted queries (guaranteed matches) there instead, as
    // the paper's biology workloads do.
    std::vector<NamedQuery> queries;
    if (name == "hu" || name == "yt") {
      queries = ExtractedWorkload(g, {6, 8, 10}, QueryVariant::kChildOnly);
    } else {
      queries = TemplateWorkload(g, {"HQ17", "HQ19", "HQ16"},
                                 QueryVariant::kChildOnly);
    }
    for (const auto& nq : queries) {
      GmOptions gopts;
      gopts.use_prefilter = false;
      auto gm = RunGm(engine, nq.query, gopts);
      auto gf_run = RunWcoj(gf, nq.query);
      std::string label = (nq.name[0] == 'H') ? "C" + nq.name.substr(1)
                                              : nq.name;
      q_tab.AddRow({name, label, gm.formatted, gf_run.formatted});
    }
  }
  q_tab.Print();
  return 0;
}
