// Ablation benches for the design choices DESIGN.md calls out (beyond the
// paper's own figures):
//  (a) early expansion termination on/off (the §4.5 interval-label cutoff),
//  (b) simulation pass budget N = 1 / 3 (paper) / exact fixpoint,
//  (c) batch BFS reachability pruning vs per-pair probes,
//  (d) parallel MJoin speedup over the sequential enumerator.

#include "bench_common.h"
#include "enumerate/mjoin_parallel.h"
#include "order/search_order.h"
#include "query/transitive_reduction.h"

using namespace rigpm;
using namespace rigpm::bench;

int main() {
  PrintBenchHeader("Ablations — early termination / pass budget / batch "
                   "reachability / parallel MJoin",
                   "scale=" + std::to_string(DatasetScaleFromEnv()));
  Graph g = MakeDatasetByName("ep");
  std::printf("graph: %s\n", g.Summary().c_str());
  GmEngine engine(g);
  auto queries = TemplateWorkload(g, {"HQ3", "HQ8", "HQ12", "HQ16"},
                                  QueryVariant::kHybrid);

  // --- (a) Early expansion termination.
  std::printf("\n-- (a) early expansion termination (matching time)\n");
  {
    TablePrinter table({"Query", "on(s)", "off(s)"});
    for (const auto& nq : queries) {
      GmOptions on;
      on.limit = 1;
      GmOptions off = on;
      off.early_termination = false;
      GmResult r_on, r_off;
      engine.Evaluate(nq.query, on, nullptr);
      r_on = engine.Evaluate(nq.query, on);
      r_off = engine.Evaluate(nq.query, off);
      table.AddRow({nq.name, FormatSeconds(r_on.MatchingMs()),
                    FormatSeconds(r_off.MatchingMs())});
    }
    table.Print();
  }

  // --- (b) Simulation pass budget.
  std::printf("\n-- (b) simulation pass budget (RIG size, total time)\n");
  {
    TablePrinter table({"Query", "N=1 RIG", "N=3 RIG", "exact RIG", "N=1(s)",
                        "N=3(s)", "exact(s)"});
    for (const auto& nq : queries) {
      std::vector<std::string> sizes, times;
      for (int passes : {1, 3, 0}) {
        GmOptions opts;
        opts.sim.max_passes = passes;
        opts.limit = MatchLimitFromEnv();
        GmResult r;
        double ms = TimeMs([&] { r = engine.Evaluate(nq.query, opts); });
        sizes.push_back(std::to_string(r.rig_nodes + r.rig_edges));
        times.push_back(FormatSeconds(ms));
      }
      table.AddRow({nq.name, sizes[0], sizes[1], sizes[2], times[0], times[1],
                    times[2]});
    }
    table.Print();
  }

  // --- (c) Batch BFS reachability pruning vs per-pair probes.
  std::printf(
      "\n-- (c) descendant-edge pruning: batch BFS vs per-pair "
      "(matching time)\n");
  {
    TablePrinter table({"Query", "batch(s)", "per-pair(s)"});
    for (const auto& nq : queries) {
      GmOptions batch;
      batch.limit = 1;
      GmOptions pairwise = batch;
      pairwise.sim.batch_reachability = false;
      GmResult r_b = engine.Evaluate(nq.query, batch);
      GmResult r_p = engine.Evaluate(nq.query, pairwise);
      table.AddRow({nq.name, FormatSeconds(r_b.MatchingMs()),
                    FormatSeconds(r_p.MatchingMs())});
    }
    table.Print();
  }

  // --- (d) Parallel MJoin.
  std::printf("\n-- (d) parallel MJoin speedup (enumeration only)\n");
  {
    TablePrinter table(
        {"Query", "matches", "1 thread(s)", "2(s)", "4(s)", "8(s)"});
    for (const auto& nq : queries) {
      PatternQuery reduced = QueryTransitiveReduction(nq.query);
      GmResult rr;
      Rig rig = engine.BuildRigOnly(nq.query, GmOptions{}, &rr);
      if (rig.AnyEmpty()) continue;
      auto order = ComputeSearchOrder(reduced, rig, OrderStrategy::kJO);
      std::vector<std::string> row = {nq.name};
      uint64_t matches = 0;
      for (uint32_t threads : {1u, 2u, 4u, 8u}) {
        ParallelMJoinOptions popts;
        popts.num_threads = threads;
        popts.limit = MatchLimitFromEnv();
        uint64_t n = 0;
        double ms = TimeMs(
            [&] { n = MJoinParallelCount(reduced, rig, order, popts); });
        matches = n;
        row.push_back(FormatSeconds(ms));
      }
      row.insert(row.begin() + 1, std::to_string(matches));
      table.AddRow(std::move(row));
    }
    table.Print();
  }
  return 0;
}
