// Table 3: large D-queries (descendant-only) on hu, hp and yt. For each
// algorithm: how many queries time out, run out of memory, are solved, and
// the average time of the solved ones. Expected shape: GM solves all ten;
// JM solves only the small ones (OM dominates); TM solves more than JM but
// is much slower.

#include "bench_common.h"

using namespace rigpm;
using namespace rigpm::bench;

int main() {
  PrintBenchHeader("Table 3 — large D-queries: solved counts and times",
                   "scale=" + std::to_string(DatasetScaleFromEnv()));

  TablePrinter table({"Dataset", "Alg.", "Timeout", "OutOfMem", "Solved",
                      "Avg time solved (s)"});
  for (const std::string& dataset : {"hu", "hp", "yt"}) {
    Graph g = MakeDatasetByName(dataset);
    GmEngine engine(g);
    auto reach = BuildReachabilityIndex(g, ReachKind::kBfl);
    MatchContext ctx(g, *reach);
    auto queries = ExtractedWorkload(g, {4, 6, 8, 10, 12, 14, 16, 20, 24, 28},
                                     QueryVariant::kDescendantOnly);

    struct Tally {
      int to = 0, om = 0, solved = 0;
      double total_ms = 0;
    } jm_t, tm_t, gm_t;
    auto account = [](Tally* t, const RunOutcome& o) {
      if (o.status == EvalStatus::kOk) {
        ++t->solved;
        t->total_ms += o.ms;
      } else if (o.status == EvalStatus::kTimeout) {
        ++t->to;
      } else {
        ++t->om;
      }
    };
    for (const auto& nq : queries) {
      account(&jm_t, RunJm(ctx, nq.query));
      account(&tm_t, RunTm(ctx, nq.query));
      account(&gm_t, RunGm(engine, nq.query));
    }
    auto emit = [&](const char* name, const Tally& t) {
      table.AddRow({dataset, name, std::to_string(t.to), std::to_string(t.om),
                    std::to_string(t.solved),
                    t.solved ? FormatSeconds(t.total_ms / t.solved) : "-"});
    };
    emit("JM", jm_t);
    emit("TM", tm_t);
    emit("GM", gm_t);
  }
  table.Print();
  return 0;
}
