// Microbenchmarks (google-benchmark) for the compressed-bitmap substrate —
// the operations Section 6 identifies as the hot path of BuildRIG and MJoin.

#include <benchmark/benchmark.h>

#include <random>
#include <vector>

#include "bitmap/bitmap.h"

namespace {

using rigpm::Bitmap;

Bitmap RandomBitmap(uint32_t universe, uint32_t count, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<uint32_t> dist(0, universe - 1);
  Bitmap b;
  for (uint32_t i = 0; i < count; ++i) b.Add(dist(rng));
  return b;
}

void BM_BitmapAnd(benchmark::State& state) {
  const uint32_t universe = 1u << 20;
  const uint32_t count = static_cast<uint32_t>(state.range(0));
  Bitmap a = RandomBitmap(universe, count, 1);
  Bitmap b = RandomBitmap(universe, count, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Bitmap::And(a, b));
  }
}
BENCHMARK(BM_BitmapAnd)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_BitmapIntersectsEarlyExit(benchmark::State& state) {
  const uint32_t universe = 1u << 20;
  Bitmap a = RandomBitmap(universe, static_cast<uint32_t>(state.range(0)), 3);
  Bitmap b = RandomBitmap(universe, static_cast<uint32_t>(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Intersects(b));
  }
}
BENCHMARK(BM_BitmapIntersectsEarlyExit)->Arg(1 << 10)->Arg(1 << 16);

void BM_BitmapAndMany(benchmark::State& state) {
  const uint32_t universe = 1u << 20;
  std::vector<Bitmap> bitmaps;
  for (int i = 0; i < state.range(0); ++i) {
    bitmaps.push_back(RandomBitmap(universe, 1u << 14, 10 + i));
  }
  std::vector<const Bitmap*> ptrs;
  for (auto& b : bitmaps) ptrs.push_back(&b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Bitmap::AndMany(ptrs));
  }
}
BENCHMARK(BM_BitmapAndMany)->Arg(2)->Arg(4)->Arg(8);

void BM_BitmapOrMany(benchmark::State& state) {
  const uint32_t universe = 1u << 20;
  std::vector<Bitmap> bitmaps;
  for (int i = 0; i < state.range(0); ++i) {
    bitmaps.push_back(RandomBitmap(universe, 1u << 12, 20 + i));
  }
  std::vector<const Bitmap*> ptrs;
  for (auto& b : bitmaps) ptrs.push_back(&b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Bitmap::OrMany(ptrs));
  }
}
BENCHMARK(BM_BitmapOrMany)->Arg(4)->Arg(16)->Arg(64);

void BM_BitmapForEach(benchmark::State& state) {
  Bitmap b = RandomBitmap(1u << 20, 1u << 16, 5);
  for (auto _ : state) {
    uint64_t sum = 0;
    b.ForEach([&sum](uint32_t v) { sum += v; });
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_BitmapForEach);

void BM_BitmapContains(benchmark::State& state) {
  Bitmap b = RandomBitmap(1u << 20, 1u << 16, 6);
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<uint32_t> dist(0, (1u << 20) - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(b.Contains(dist(rng)));
  }
}
BENCHMARK(BM_BitmapContains);

}  // namespace

BENCHMARK_MAIN();
