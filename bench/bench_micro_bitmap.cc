// Microbenchmarks (google-benchmark) for the compressed-bitmap substrate —
// the operations Section 6 identifies as the hot path of BuildRIG and MJoin.

#include <benchmark/benchmark.h>

#include <random>
#include <vector>

#include "bitmap/bitmap.h"

namespace {

using rigpm::Bitmap;

Bitmap RandomBitmap(uint32_t universe, uint32_t count, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<uint32_t> dist(0, universe - 1);
  Bitmap b;
  for (uint32_t i = 0; i < count; ++i) b.Add(dist(rng));
  return b;
}

void BM_BitmapAnd(benchmark::State& state) {
  const uint32_t universe = 1u << 20;
  const uint32_t count = static_cast<uint32_t>(state.range(0));
  Bitmap a = RandomBitmap(universe, count, 1);
  Bitmap b = RandomBitmap(universe, count, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Bitmap::And(a, b));
  }
}
BENCHMARK(BM_BitmapAnd)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_BitmapIntersectsEarlyExit(benchmark::State& state) {
  const uint32_t universe = 1u << 20;
  Bitmap a = RandomBitmap(universe, static_cast<uint32_t>(state.range(0)), 3);
  Bitmap b = RandomBitmap(universe, static_cast<uint32_t>(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Intersects(b));
  }
}
BENCHMARK(BM_BitmapIntersectsEarlyExit)->Arg(1 << 10)->Arg(1 << 16);

void BM_BitmapAndMany(benchmark::State& state) {
  const uint32_t universe = 1u << 20;
  std::vector<Bitmap> bitmaps;
  for (int i = 0; i < state.range(0); ++i) {
    bitmaps.push_back(RandomBitmap(universe, 1u << 14, 10 + i));
  }
  std::vector<const Bitmap*> ptrs;
  for (auto& b : bitmaps) ptrs.push_back(&b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Bitmap::AndMany(ptrs));
  }
}
BENCHMARK(BM_BitmapAndMany)->Arg(2)->Arg(4)->Arg(8);

void BM_BitmapOrMany(benchmark::State& state) {
  const uint32_t universe = 1u << 20;
  std::vector<Bitmap> bitmaps;
  for (int i = 0; i < state.range(0); ++i) {
    bitmaps.push_back(RandomBitmap(universe, 1u << 12, 20 + i));
  }
  std::vector<const Bitmap*> ptrs;
  for (auto& b : bitmaps) ptrs.push_back(&b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Bitmap::OrMany(ptrs));
  }
}
BENCHMARK(BM_BitmapOrMany)->Arg(4)->Arg(16)->Arg(64);

// --- Per-container-type kernels ---------------------------------------------
//
// Shaped inputs that settle into one specific container kind per 64K chunk,
// so each benchmark pins one cell of the container-pair kernel matrix
// (array / bitset / run x And / Or / AndNot / ForEach). 16 chunks each:
//  * array  — ~3000 scattered values per chunk (sparse, stays array);
//  * bitset — ~20000 scattered values per chunk (dense and unclustered:
//             runs would cost ~4x the 8 KiB bitset);
//  * run    — 40 clusters of 800 consecutive values per chunk (160 B of
//             runs vs 8 KiB decoded).

enum class Shape { kArray, kBitset, kRun };

rigpm::Bitmap ShapedBitmap(Shape shape, uint64_t seed) {
  constexpr uint32_t kChunks = 16;
  std::mt19937_64 rng(seed);
  std::vector<uint32_t> values;
  for (uint32_t chunk = 0; chunk < kChunks; ++chunk) {
    const uint32_t base = chunk << 16;
    std::uniform_int_distribution<uint32_t> dist(0, 0xFFFF);
    switch (shape) {
      case Shape::kArray:
        for (int i = 0; i < 3000; ++i) values.push_back(base + dist(rng));
        break;
      case Shape::kBitset:
        for (int i = 0; i < 20000; ++i) values.push_back(base + dist(rng));
        break;
      case Shape::kRun:
        for (int r = 0; r < 40; ++r) {
          uint32_t start = dist(rng) % (0x10000 - 800);
          for (uint32_t v = 0; v < 800; ++v) {
            values.push_back(base + start + v);
          }
        }
        break;
    }
  }
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return rigpm::Bitmap::FromSorted(values);
}

enum class PairOp { kAnd, kOr, kAndNot };

void BM_ContainerPair(benchmark::State& state, Shape sa, Shape sb, PairOp op) {
  Bitmap a = ShapedBitmap(sa, 101);
  Bitmap b = ShapedBitmap(sb, 202);
  for (auto _ : state) {
    switch (op) {
      case PairOp::kAnd:
        benchmark::DoNotOptimize(Bitmap::And(a, b));
        break;
      case PairOp::kOr:
        benchmark::DoNotOptimize(Bitmap::Or(a, b));
        break;
      case PairOp::kAndNot:
        benchmark::DoNotOptimize(Bitmap::AndNot(a, b));
        break;
    }
  }
}

#define RIGPM_PAIR_BENCH(op_name, op)                                       \
  BENCHMARK_CAPTURE(BM_ContainerPair, op_name##_array_array, Shape::kArray, \
                    Shape::kArray, op);                                     \
  BENCHMARK_CAPTURE(BM_ContainerPair, op_name##_array_bitset, Shape::kArray,\
                    Shape::kBitset, op);                                    \
  BENCHMARK_CAPTURE(BM_ContainerPair, op_name##_array_run, Shape::kArray,   \
                    Shape::kRun, op);                                       \
  BENCHMARK_CAPTURE(BM_ContainerPair, op_name##_bitset_array,               \
                    Shape::kBitset, Shape::kArray, op);                     \
  BENCHMARK_CAPTURE(BM_ContainerPair, op_name##_bitset_bitset,              \
                    Shape::kBitset, Shape::kBitset, op);                    \
  BENCHMARK_CAPTURE(BM_ContainerPair, op_name##_bitset_run, Shape::kBitset, \
                    Shape::kRun, op);                                       \
  BENCHMARK_CAPTURE(BM_ContainerPair, op_name##_run_array, Shape::kRun,     \
                    Shape::kArray, op);                                     \
  BENCHMARK_CAPTURE(BM_ContainerPair, op_name##_run_bitset, Shape::kRun,    \
                    Shape::kBitset, op);                                    \
  BENCHMARK_CAPTURE(BM_ContainerPair, op_name##_run_run, Shape::kRun,       \
                    Shape::kRun, op)

RIGPM_PAIR_BENCH(and, PairOp::kAnd);
RIGPM_PAIR_BENCH(or, PairOp::kOr);
RIGPM_PAIR_BENCH(andnot, PairOp::kAndNot);

#undef RIGPM_PAIR_BENCH

void BM_ContainerForEach(benchmark::State& state, Shape shape) {
  Bitmap b = ShapedBitmap(shape, 303);
  for (auto _ : state) {
    uint64_t sum = 0;
    b.ForEach([&sum](uint32_t v) { sum += v; });
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK_CAPTURE(BM_ContainerForEach, array, Shape::kArray);
BENCHMARK_CAPTURE(BM_ContainerForEach, bitset, Shape::kBitset);
BENCHMARK_CAPTURE(BM_ContainerForEach, run, Shape::kRun);

void BM_BitmapForEach(benchmark::State& state) {
  Bitmap b = RandomBitmap(1u << 20, 1u << 16, 5);
  for (auto _ : state) {
    uint64_t sum = 0;
    b.ForEach([&sum](uint32_t v) { sum += v; });
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_BitmapForEach);

void BM_BitmapContains(benchmark::State& state) {
  Bitmap b = RandomBitmap(1u << 20, 1u << 16, 6);
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<uint32_t> dist(0, (1u << 20) - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(b.Contains(dist(rng)));
  }
}
BENCHMARK(BM_BitmapContains);

}  // namespace

BENCHMARK_MAIN();
