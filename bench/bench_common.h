#ifndef RIGPM_BENCH_BENCH_COMMON_H_
#define RIGPM_BENCH_BENCH_COMMON_H_

// Shared plumbing for the per-figure bench binaries: run one query through
// GM / JM / TM / WCOJ with the environment-configured limit and timeout, and
// format the outcome the way the paper's tables do (seconds, or "OM"/"TO").

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "baseline/iso_engine.h"
#include "baseline/jm_engine.h"
#include "baseline/tm_engine.h"
#include "baseline/wcoj_engine.h"
#include "bench_util/datasets.h"
#include "bench_util/harness.h"
#include "bench_util/table_printer.h"
#include "bench_util/workloads.h"
#include "engine/gm_engine.h"

namespace rigpm::bench {

struct RunOutcome {
  std::string formatted;  // seconds or failure marker
  uint64_t matches = 0;
  double ms = 0.0;
  EvalStatus status = EvalStatus::kOk;
};

inline RunOutcome RunGm(const GmEngine& engine, const PatternQuery& q,
                        GmOptions opts = {}) {
  opts.limit = MatchLimitFromEnv();
  RunOutcome out;
  GmResult r;
  out.ms = TimeMs([&] { r = engine.Evaluate(q, opts); });
  out.matches = r.num_occurrences;
  out.formatted = FormatSeconds(out.ms);
  return out;
}

inline RunOutcome RunJm(const MatchContext& ctx, const PatternQuery& q,
                        JmOptions opts = {}) {
  opts.limit = MatchLimitFromEnv();
  opts.timeout_ms = TimeoutMsFromEnv();
  RunOutcome out;
  JmResult r;
  out.ms = TimeMs([&] { r = JmEvaluate(ctx, q, opts); });
  out.matches = r.num_occurrences;
  out.status = r.status;
  out.formatted = (r.status == EvalStatus::kOk) ? FormatSeconds(out.ms)
                                                : EvalStatusName(r.status);
  return out;
}

inline RunOutcome RunTm(const MatchContext& ctx, const PatternQuery& q,
                        TmOptions opts = {}) {
  opts.limit = MatchLimitFromEnv();
  opts.timeout_ms = TimeoutMsFromEnv();
  RunOutcome out;
  TmResult r;
  out.ms = TimeMs([&] { r = TmEvaluate(ctx, q, opts); });
  out.matches = r.num_occurrences;
  out.status = r.status;
  out.formatted = (r.status == EvalStatus::kOk) ? FormatSeconds(out.ms)
                                                : EvalStatusName(r.status);
  return out;
}

inline RunOutcome RunIso(const Graph& g, const PatternQuery& q,
                         IsoOptions opts = {}) {
  opts.limit = MatchLimitFromEnv();
  opts.timeout_ms = TimeoutMsFromEnv();
  RunOutcome out;
  IsoResult r;
  out.ms = TimeMs([&] { r = IsoEvaluate(g, q, opts); });
  out.matches = r.num_embeddings;
  out.status = r.status;
  out.formatted = (r.status == EvalStatus::kOk) ? FormatSeconds(out.ms)
                                                : EvalStatusName(r.status);
  return out;
}

inline RunOutcome RunWcoj(const WcojEngine& engine, const PatternQuery& q,
                          WcojOptions opts = {}) {
  opts.limit = MatchLimitFromEnv();
  opts.timeout_ms = TimeoutMsFromEnv();
  RunOutcome out;
  WcojResult r;
  out.ms = TimeMs([&] { r = engine.Evaluate(q, opts); });
  out.matches = r.num_occurrences;
  out.status = r.status;
  out.formatted = (r.status == EvalStatus::kOk) ? FormatSeconds(out.ms)
                                                : EvalStatusName(r.status);
  return out;
}

/// Reads a kB-valued field ("VmHWM", "VmRSS", ...) from /proc/self/status.
/// Returns -1 when unavailable (non-Linux). VmHWM is the peak resident set
/// — the number the mmap-vs-slurp warm-start comparison is about.
inline long ReadProcStatusKb(const char* field) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return -1;
  char line[256];
  long value = -1;
  const size_t field_len = std::strlen(field);
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, field, field_len) == 0 &&
        line[field_len] == ':') {
      value = std::strtol(line + field_len + 1, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return value;
}

}  // namespace rigpm::bench

#endif  // RIGPM_BENCH_BENCH_COMMON_H_
