// Fig. 18: reachability (D-)queries on Email fragments.
//  (a) precomputation cost: BFL (GM's index) vs the full transitive closure
//      (what GF needs to run reachability queries) vs the GF catalog, as
//      the fragment grows. Expected shape: BFL stays near zero; TC grows
//      superlinearly; the catalog blows up with the label count.
//  (b) query time on 1k-node fragments with 5..20 labels: GM vs GF (with
//      materialized closure; build time NOT charged, as in the paper) vs
//      the Neo4j-style engine (binary joins, index-free reachability).

#include "bench_common.h"
#include "baseline/catalog.h"
#include "reach/transitive_closure.h"

using namespace rigpm;
using namespace rigpm::bench;

int main() {
  PrintBenchHeader("Fig. 18 — reachability graph pattern queries (Email)",
                   "limit=" + std::to_string(MatchLimitFromEnv()));
  const DatasetSpec& em = DatasetByName("em");

  // --- (a) Index construction costs.
  std::printf(
      "\n-- (a) BFL vs transitive closure (TC) vs catalog (CAT) build\n");
  TablePrinter build_tab({"#labels", "#nodes", "BFL(s)", "TC(s)", "CAT(s)"});
  struct Config {
    uint32_t labels, nodes;
  };
  for (Config c : {Config{5, 1000}, Config{10, 1000}, Config{15, 1000},
                   Config{20, 1000}, Config{20, 2000}, Config{20, 3000},
                   Config{20, 5000}}) {
    DatasetSpec spec = em;
    spec.num_labels = c.labels;
    Graph g = MakeDatasetWithNodes(spec, c.nodes);
    double bfl_ms = TimeMs([&] {
      auto idx = BuildReachabilityIndex(g, ReachKind::kBfl);
      (void)idx;
    });
    WcojEngine gf(g);
    double tc_ms = 0.0;
    EvalStatus tc_status =
        gf.MaterializeClosure(/*max_bytes=*/512u << 20, &tc_ms);
    CatalogResult cat = BuildCatalog(g, 2'000'000);
    build_tab.AddRow(
        {std::to_string(c.labels), std::to_string(c.nodes),
         FormatSeconds(bfl_ms),
         tc_status == EvalStatus::kOk ? FormatSeconds(tc_ms)
                                      : EvalStatusName(tc_status),
         cat.status == EvalStatus::kOk ? FormatSeconds(cat.build_ms)
                                       : EvalStatusName(cat.status)});
  }
  build_tab.Print();

  // --- (b) D-query time on 1k-node fragments with varying labels.
  std::printf("\n-- (b) D-query time on 1k-node Email fragments\n");
  TablePrinter q_tab({"Query", "Alg.", "#lbs=5", "#lbs=10", "#lbs=15",
                      "#lbs=20"});
  for (const std::string& name : {"DQ4", "DQ15", "DQ16"}) {
    std::string tpl = "HQ" + name.substr(2);
    std::vector<std::string> neo_row = {name, "Neo4j"};
    std::vector<std::string> gf_row = {name, "GF"};
    std::vector<std::string> gm_row = {name, "GM"};
    for (uint32_t labels : {5u, 10u, 15u, 20u}) {
      DatasetSpec spec = em;
      spec.num_labels = labels;
      Graph g = MakeDatasetWithNodes(spec, 1000);
      GmEngine engine(g);
      // Neo4j stand-in: binary joins, BFS (index-free) reachability.
      auto bfs = BuildReachabilityIndex(g, ReachKind::kBfs);
      MatchContext neo_ctx(g, *bfs);
      WcojEngine gf(g);
      gf.MaterializeClosure(512u << 20, nullptr);

      auto queries =
          TemplateWorkload(g, {tpl}, QueryVariant::kDescendantOnly, 23);
      const PatternQuery& q = queries.front().query;
      JmOptions neo;
      neo.use_prefilter = false;
      neo_row.push_back(RunJm(neo_ctx, q, neo).formatted);
      gf_row.push_back(RunWcoj(gf, q).formatted);
      gm_row.push_back(RunGm(engine, q).formatted);
    }
    q_tab.AddRow(std::move(neo_row));
    q_tab.AddRow(std::move(gf_row));
    q_tab.AddRow(std::move(gm_row));
  }
  q_tab.Print();
  return 0;
}
