// Table 6: H-queries on an em fragment — GM vs the Neo4j-style engine
// (binary joins + index-free reachability, the only system configuration
// that can evaluate hybrid queries at all). Expected shape: GM faster on
// every query, often by 3-4 orders of magnitude, with Neo4j timing out on
// the heavy patterns.

#include "bench_common.h"

using namespace rigpm;
using namespace rigpm::bench;

int main() {
  PrintBenchHeader("Table 6 — H-queries: GM vs Neo4j-style binary joins (em)",
                   "scale=" + std::to_string(DatasetScaleFromEnv()));
  const DatasetSpec& em = DatasetByName("em");
  // The paper uses a 30K-node fragment; apply the env scale.
  uint32_t nodes = std::max<uint32_t>(
      1000, static_cast<uint32_t>(30'000 * DatasetScaleFromEnv() * 10));
  Graph g = MakeDatasetWithNodes(em, nodes);
  std::printf("fragment: %s\n", g.Summary().c_str());
  GmEngine engine(g);
  auto bfs = BuildReachabilityIndex(g, ReachKind::kBfs);
  MatchContext neo_ctx(g, *bfs);

  TablePrinter table({"Class", "Query", "Neo4j(s)", "GM(s)"});
  auto queries = TemplateWorkload(g, RepresentativeTemplateNames(),
                                  QueryVariant::kHybrid);
  for (const auto& nq : queries) {
    JmOptions neo;
    neo.use_prefilter = false;
    auto neo4j = RunJm(neo_ctx, nq.query, neo);
    auto gm = RunGm(engine, nq.query);
    table.AddRow({PatternClassName(TemplateByName(nq.name).cls), nq.name,
                  neo4j.formatted, gm.formatted});
  }
  table.Print();
  return 0;
}
