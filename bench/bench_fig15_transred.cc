// Fig. 15: effectiveness of query transitive reduction. D-query inputs are
// deliberately bloated with their implied (transitive) reachability edges;
// GM evaluates the reduced form, GM-NR evaluates the bloated form, TM gets
// the reduced form for reference. Expected shape: GM beats GM-NR by a large
// factor (each redundant descendant edge costs edge-to-path matching).

#include "bench_common.h"
#include "query/transitive_reduction.h"

using namespace rigpm;
using namespace rigpm::bench;

int main() {
  PrintBenchHeader(
      "Fig. 15 — D-query time with / without transitive reduction",
      "scale=" + std::to_string(DatasetScaleFromEnv()));
  for (const std::string& dataset : {"em", "ep"}) {
    Graph g = MakeDatasetByName(dataset);
    std::printf("\n-- %s: %s\n", dataset.c_str(), g.Summary().c_str());
    GmEngine engine(g);
    auto reach = BuildReachabilityIndex(g, ReachKind::kBfl);
    MatchContext ctx(g, *reach);

    TablePrinter table({"Query", "#edges bloated", "#edges reduced", "GM(s)",
                        "GM-NR(s)", "TM(s)"});
    for (const std::string& name : {"DQ12", "DQ14", "DQ15", "DQ16", "DQ18"}) {
      // D-variant of the corresponding H-template, bloated to its closure.
      std::string tpl = "HQ" + name.substr(2);
      auto queries =
          TemplateWorkload(g, {tpl}, QueryVariant::kDescendantOnly, 19);
      PatternQuery bloated = QueryTransitiveClosure(queries.front().query);
      PatternQuery reduced = QueryTransitiveReduction(bloated);

      GmOptions with_red;  // default: reduction on (input is bloated)
      auto gm = RunGm(engine, bloated, with_red);
      GmOptions no_red;
      no_red.use_transitive_reduction = false;
      auto gm_nr = RunGm(engine, bloated, no_red);
      auto tm = RunTm(ctx, reduced);
      table.AddRow({name, std::to_string(bloated.NumEdges()),
                    std::to_string(reduced.NumEdges()), gm.formatted,
                    gm_nr.formatted, tm.formatted});
    }
    table.Print();
  }
  return 0;
}
