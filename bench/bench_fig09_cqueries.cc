// Fig. 9: C-query (child-edge-only) evaluation time of GM, TM, JM and ISO on
// ep, bs and hu. Expected shape: GM solves everything; JM is competitive on
// ep but fails on the denser graphs; ISO is sometimes faster (injectivity
// prunes harder) but fails on dense/low-label inputs.

#include "bench_common.h"

using namespace rigpm;
using namespace rigpm::bench;

namespace {

void TemplatePart(const std::string& dataset) {
  Graph g = MakeDatasetByName(dataset);
  std::printf("\n-- %s: %s\n", dataset.c_str(), g.Summary().c_str());
  GmEngine engine(g);
  auto reach = BuildReachabilityIndex(g, ReachKind::kBfl);
  MatchContext ctx(g, *reach);

  TablePrinter table({"Query", "GM(s)", "TM(s)", "JM(s)", "ISO(s)"});
  auto queries = TemplateWorkload(g, RepresentativeTemplateNames(),
                                  QueryVariant::kChildOnly);
  for (const auto& nq : queries) {
    // The paper does not apply pre-filtering for GM on C-queries (it is not
    // beneficial there).
    GmOptions gopts;
    gopts.use_prefilter = false;
    auto gm = RunGm(engine, nq.query, gopts);
    auto tm = RunTm(ctx, nq.query);
    auto jm = RunJm(ctx, nq.query);
    auto iso = RunIso(g, nq.query);
    table.AddRow(
        {nq.name, gm.formatted, tm.formatted, jm.formatted, iso.formatted});
  }
  table.Print();
}

void ExtractedPart(const std::string& dataset,
                   const std::vector<uint32_t>& sizes) {
  Graph g = MakeDatasetByName(dataset);
  std::printf("\n-- %s (random C-queries): %s\n", dataset.c_str(),
              g.Summary().c_str());
  GmEngine engine(g);
  auto reach = BuildReachabilityIndex(g, ReachKind::kBfl);
  MatchContext ctx(g, *reach);

  TablePrinter table({"Query", "GM(s)", "TM(s)", "JM(s)", "ISO(s)"});
  for (const auto& nq : ExtractedWorkload(g, sizes, QueryVariant::kChildOnly)) {
    GmOptions gopts;
    gopts.use_prefilter = false;
    auto gm = RunGm(engine, nq.query, gopts);
    auto tm = RunTm(ctx, nq.query);
    auto jm = RunJm(ctx, nq.query);
    auto iso = RunIso(g, nq.query);
    table.AddRow(
        {nq.name, gm.formatted, tm.formatted, jm.formatted, iso.formatted});
  }
  table.Print();
}

}  // namespace

int main() {
  PrintBenchHeader("Fig. 9 — C-query evaluation time: GM vs TM vs JM vs ISO",
                   "scale=" + std::to_string(DatasetScaleFromEnv()));
  TemplatePart("ep");
  TemplatePart("bs");
  ExtractedPart("hu", {4, 8, 12, 16, 20});
  return 0;
}
