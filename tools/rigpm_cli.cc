// rigpm_cli — evaluate hybrid graph pattern queries from the command line.
//
//   rigpm_cli --graph G.txt --pattern "(a:0)->(b:1), (b)=>(c:2)" [flags]
//   rigpm_cli --graph G.txt --query Q.txt --engine jm --limit 100
//   rigpm_cli --graph G.txt --batch QUERIES.txt --threads 8
//   rigpm_cli snapshot --graph G.txt --out G.snap
//   rigpm_cli snapshot --inspect G.snap
//   rigpm_cli --load-snapshot G.snap --pattern "(a:0)->(b:1)"
//   rigpm_cli delta append --base G.snap --delta G.delta --edges E.txt
//   rigpm_cli delta replay --base G.snap --delta G.delta --out G2.snap
//   rigpm_cli --load-snapshot G.snap --delta G.delta --pattern "..."
//   rigpm_cli serve --snapshot G.snap --socket /tmp/rigpm.sock
//   rigpm_cli client --socket /tmp/rigpm.sock --pattern "(a:0)->(b:1)"
//
// Subcommands:
//   snapshot          parse --graph, build the BFL engine, and persist both
//                     to --out as a binary snapshot (storage/snapshot.h);
//                     later runs warm-start from it via --load-snapshot.
//                     With --inspect FILE, print the container header of an
//                     existing snapshot (version, kind, payload size,
//                     checksum, alignment) without decoding the payload
//   delta             append-only edge updates over a base snapshot
//                     (storage/delta_log.h):
//                       append  --base S --delta D --edges FILE
//                               journal one edge batch (lines "u v") as a
//                               checksummed record; creates D on first use
//                       inspect --delta D
//                               header + per-record summary + chain validity
//                       replay  --base S --delta D [--out S2]
//                               rebuild base+delta; with --out, write the
//                               merged engine snapshot (compaction — the new
//                               snapshot starts a fresh delta lineage)
//   serve             run the query daemon in-process (same flags as the
//                     standalone rigpm_serve binary; server/tool_main.h);
//                     --delta FILE arms the kRefresh live-refresh path
//   client            talk to a running daemon: queries, stats, ping,
//                     refresh, shutdown (server/tool_main.h)
//
// Flags:
//   --graph FILE      data graph in the text format of graph_io.h
//   --load-snapshot F warm start: load graph + pre-built reachability index
//                     from a binary engine snapshot instead of --graph
//   --delta FILE      with --load-snapshot: replay the delta log over the
//                     base before evaluating (queries then see base+delta;
//                     the reachability index is rebuilt over the merged
//                     graph)
//   --snapshot-io M   how to load snapshots: mmap (default; zero-copy, the
//                     mapping is shared across processes) or read (stream
//                     into private memory). Also settable process-wide via
//                     the RIGPM_SNAPSHOT_IO environment variable
//   --out FILE        snapshot output path (snapshot subcommand)
//   --query FILE      query in the text format of query_io.h
//   --pattern STR     query in the inline syntax of pattern_parser.h
//   --batch FILE      batch mode: one inline pattern per line ('#' comments
//                     and blank lines skipped), served with EvaluateBatch
//   --engine NAME     gm (default) | gm-par | jm | tm
//   --order NAME      jo (default) | ri | bj           (gm engines)
//   --threads N       worker count: enumeration workers for gm/gm-par,
//                     batch workers for --batch (1 = sequential, 0 =
//                     hardware concurrency; default 1, except gm-par
//                     which keeps its historical default of 0)
//   --limit N         stop after N occurrences (default: all)
//   --print N         print the first N occurrences (default 10)
//   --stats           print per-phase statistics

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "baseline/jm_engine.h"
#include "baseline/tm_engine.h"
#include "engine/gm_engine.h"
#include "enumerate/mjoin_parallel.h"
#include "graph/graph_io.h"
#include "query/pattern_parser.h"
#include "query/query_io.h"
#include "query/transitive_reduction.h"
#include "server/tool_main.h"
#include "storage/delta_log.h"
#include "storage/lineage.h"
#include "storage/snapshot.h"

namespace {

using namespace rigpm;

struct CliArgs {
  std::string graph_path;
  std::string snapshot_path;  // --load-snapshot
  std::string delta_path;     // --delta (overlay for --load-snapshot)
  std::string out_path;       // snapshot subcommand --out
  std::string inspect_path;   // snapshot subcommand --inspect
  SnapshotIoMode io_mode = DefaultSnapshotIoMode();  // --snapshot-io
  std::string query_path;
  std::string pattern;
  std::string batch_path;
  std::string engine = "gm";
  std::string order = "jo";
  uint32_t threads = 1;
  bool threads_set = false;  // gm-par defaults to hardware when unset
  uint64_t limit = std::numeric_limits<uint64_t>::max();
  uint64_t print = 10;
  bool stats = false;
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--graph FILE | --load-snapshot FILE)\n"
               "          (--query FILE | --pattern STR | --batch FILE)\n"
               "          [--engine gm|gm-par|jm|tm] [--order jo|ri|bj]\n"
               "          [--threads N] [--limit N] [--print N] [--stats]\n"
               "          [--snapshot-io mmap|read]\n"
               "       %s snapshot (--graph FILE --out FILE "
               "| --inspect FILE)\n"
               "       %s delta (append|inspect|replay) ...\n"
               "       %s serve ...   (see serve --help)\n"
               "       %s client ...  (see client --help)\n",
               argv0, argv0, argv0, argv0, argv0);
  return 2;
}

bool ParseArgs(int argc, char** argv, int first, CliArgs* out) {
  for (int i = first; i < argc; ++i) {
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--graph") == 0) {
      const char* v = need_value("--graph");
      if (v == nullptr) return false;
      out->graph_path = v;
    } else if (std::strcmp(argv[i], "--load-snapshot") == 0) {
      const char* v = need_value("--load-snapshot");
      if (v == nullptr) return false;
      out->snapshot_path = v;
    } else if (std::strcmp(argv[i], "--delta") == 0) {
      const char* v = need_value("--delta");
      if (v == nullptr) return false;
      out->delta_path = v;
    } else if (std::strcmp(argv[i], "--out") == 0) {
      const char* v = need_value("--out");
      if (v == nullptr) return false;
      out->out_path = v;
    } else if (std::strcmp(argv[i], "--inspect") == 0) {
      const char* v = need_value("--inspect");
      if (v == nullptr) return false;
      out->inspect_path = v;
    } else if (std::strcmp(argv[i], "--snapshot-io") == 0) {
      const char* v = need_value("--snapshot-io");
      if (v == nullptr) return false;
      if (!ParseSnapshotIoMode(v, &out->io_mode)) {
        std::fprintf(stderr, "--snapshot-io must be mmap or read (got %s)\n",
                     v);
        return false;
      }
    } else if (std::strcmp(argv[i], "--query") == 0) {
      const char* v = need_value("--query");
      if (v == nullptr) return false;
      out->query_path = v;
    } else if (std::strcmp(argv[i], "--pattern") == 0) {
      const char* v = need_value("--pattern");
      if (v == nullptr) return false;
      out->pattern = v;
    } else if (std::strcmp(argv[i], "--batch") == 0) {
      const char* v = need_value("--batch");
      if (v == nullptr) return false;
      out->batch_path = v;
    } else if (std::strcmp(argv[i], "--engine") == 0) {
      const char* v = need_value("--engine");
      if (v == nullptr) return false;
      out->engine = v;
    } else if (std::strcmp(argv[i], "--order") == 0) {
      const char* v = need_value("--order");
      if (v == nullptr) return false;
      out->order = v;
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      const char* v = need_value("--threads");
      if (v == nullptr) return false;
      out->threads = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
      out->threads_set = true;
    } else if (std::strcmp(argv[i], "--limit") == 0) {
      const char* v = need_value("--limit");
      if (v == nullptr) return false;
      out->limit = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(argv[i], "--print") == 0) {
      const char* v = need_value("--print");
      if (v == nullptr) return false;
      out->print = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      out->stats = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return false;
    }
  }
  return true;
}

// Required flags for the default (evaluate) mode; the snapshot subcommand
// checks its own.
bool HasEvalInputs(const CliArgs& args) {
  if (!args.graph_path.empty() && !args.snapshot_path.empty()) {
    std::fprintf(stderr,
                 "--graph and --load-snapshot are mutually exclusive\n");
    return false;
  }
  return (!args.graph_path.empty() || !args.snapshot_path.empty()) &&
         (!args.query_path.empty() || !args.pattern.empty() ||
          !args.batch_path.empty());
}

void PrintOccurrence(const Occurrence& t) {
  std::printf("(");
  for (size_t i = 0; i < t.size(); ++i) {
    std::printf(i ? " %u" : "%u", t[i]);
  }
  std::printf(")\n");
}

const char* SnapshotKindName(uint32_t kind_value) {
  switch (static_cast<SnapshotKind>(kind_value)) {
    case SnapshotKind::kGraph:
      return "graph";
    case SnapshotKind::kEngine:
      return "engine";
    case SnapshotKind::kGraphDatabase:
      return "graph-database";
    case SnapshotKind::kDelta:
      return "delta-log";
  }
  return "unknown";
}

void PrintSectionStats(const char* name, const BitmapContainerStats& s) {
  std::printf("  %-8s %5llu array  %5llu bitset  %5llu run  (%llu borrowed)"
              "  encoded %llu B / decoded %llu B\n",
              name, static_cast<unsigned long long>(s.array_containers),
              static_cast<unsigned long long>(s.bitset_containers),
              static_cast<unsigned long long>(s.run_containers),
              static_cast<unsigned long long>(s.borrowed_containers),
              static_cast<unsigned long long>(s.encoded_bytes),
              static_cast<unsigned long long>(s.expanded_bytes));
}

// Deep view for graph-bearing snapshots: decode the graph part and report
// the per-section bitmap container census (array/bitset/run counts and the
// encoded-vs-decoded byte footprint that lazy decode preserves). Purely
// additive diagnostics — a payload that fails to decode only prints a note,
// because inspect's primary job is debugging files that do NOT load.
void TryInspectContainers(const std::string& path, const SnapshotInfo& info) {
  SnapshotKind kind = static_cast<SnapshotKind>(info.kind_value);
  if (kind != SnapshotKind::kGraph && kind != SnapshotKind::kEngine) return;
  SnapshotReader reader(path, kind);
  if (!reader.ok()) {
    std::printf("containers: unavailable (%s)\n", reader.error().c_str());
    return;
  }
  Graph g = Graph::Deserialize(reader.source());
  if (!reader.source().ok()) {
    std::printf("containers: unavailable (%s)\n",
                reader.source().error().c_str());
    return;
  }
  BitmapContainerStats fwd = g.SectionStats(Graph::BitmapSection::kForward);
  BitmapContainerStats bwd = g.SectionStats(Graph::BitmapSection::kBackward);
  BitmapContainerStats lab = g.SectionStats(Graph::BitmapSection::kLabels);
  std::printf("containers (graph part):\n");
  PrintSectionStats("fwd", fwd);
  PrintSectionStats("bwd", bwd);
  PrintSectionStats("labels", lab);
  BitmapContainerStats total = fwd;
  total.Accumulate(bwd);
  total.Accumulate(lab);
  PrintSectionStats("total", total);
  if (total.expanded_bytes > 0) {
    std::printf("  bitmap payload compression: %.1f%% of decoded size\n",
                100.0 * static_cast<double>(total.encoded_bytes) /
                    static_cast<double>(total.expanded_bytes));
  }
}

// snapshot --inspect: header fields always (payload never needs to decode);
// for graph-bearing kinds, a best-effort container census on top.
int RunInspect(const std::string& path) {
  std::string error;
  auto info = InspectSnapshot(path, &error);
  if (!info.has_value()) {
    std::fprintf(stderr, "cannot inspect %s: %s\n", path.c_str(),
                 error.c_str());
    return 1;
  }
  std::printf("snapshot:  %s\n", path.c_str());
  std::printf("version:   %u%s\n", info->version,
              info->version == kSnapshotVersion ? " (current)" : "");
  std::printf("kind:      %u (%s)\n", info->kind_value,
              SnapshotKindName(info->kind_value));
  if (info->kind_value == static_cast<uint32_t>(SnapshotKind::kDelta)) {
    // Delta logs have no single payload/footer; the u64 slot is the base
    // binding. Per-record detail: `rigpm_cli delta inspect`.
    std::printf("records:   %llu byte(s) of per-record-checksummed data\n",
                static_cast<unsigned long long>(info->payload_size));
    std::printf("base:      %016llx (stored checksum of the base snapshot)\n",
                static_cast<unsigned long long>(info->stored_checksum));
    std::printf("file:      %llu byte(s)\n",
                static_cast<unsigned long long>(info->file_size));
    return 0;
  }
  std::printf("payload:   %llu byte(s)\n",
              static_cast<unsigned long long>(info->payload_size));
  std::printf("file:      %llu byte(s) (24-byte header + payload + 8-byte "
              "checksum)\n",
              static_cast<unsigned long long>(info->file_size));
  std::printf("checksum:  %016llx (stored; not re-verified by inspect)\n",
              static_cast<unsigned long long>(info->stored_checksum));
  std::printf("alignment: %s\n",
              info->aligned ? "8-byte padded arrays (zero-copy mmap load)"
                            : "unpadded v1 arrays (loads copy out)");
  std::printf("runs:      %s\n",
              info->run_encoded
                  ? "native run containers (v3; lazy-decoded from mmap)"
                  : "pre-v3 (array/bitset containers only)");
  TryInspectContainers(path, *info);
  return 0;
}

// snapshot subcommand: parse the text graph, build the BFL engine once, and
// persist both so later runs skip the parse and the index build entirely.
int RunSnapshot(const CliArgs& args) {
  if (!args.inspect_path.empty()) {
    return RunInspect(args.inspect_path);
  }
  if (args.graph_path.empty() || args.out_path.empty()) {
    std::fprintf(stderr,
                 "snapshot needs --graph FILE and --out FILE "
                 "(or --inspect FILE)\n");
    return 2;
  }
  std::string error;
  auto t0 = std::chrono::steady_clock::now();
  auto graph = ReadGraphFile(args.graph_path, &error);
  if (!graph.has_value()) {
    std::fprintf(stderr, "cannot read graph: %s\n", error.c_str());
    return 1;
  }
  double parse_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  GmEngine engine(*graph);
  if (!SaveEngineSnapshot(engine, args.out_path, &error)) {
    std::fprintf(stderr, "cannot write snapshot: %s\n", error.c_str());
    return 1;
  }
  std::printf("graph: %s\n", graph->Summary().c_str());
  std::printf("snapshot written to %s (parse %.2f ms, index build %.2f ms "
              "— both skipped on --load-snapshot)\n",
              args.out_path.c_str(), parse_ms, engine.reach_build_ms());
  return 0;
}

// ------------------------------------------------------ delta subcommand

int DeltaUsage() {
  std::fprintf(
      stderr,
      "usage: delta append  --base SNAP --delta FILE --edges FILE\n"
      "                     [--format-version 3|4]\n"
      "       delta inspect --delta FILE\n"
      "       delta replay  --base SNAP --delta FILE [--out SNAP2]\n"
      "       (all verbs accept --snapshot-io mmap|read)\n"
      "  edge files: one op per line — 'src dst' or '+ src dst' adds the\n"
      "  edge, '- src dst' deletes it ('#' comments, blank lines skipped).\n"
      "  Delete ops need a format-version 4 log (the default for new\n"
      "  logs); --format-version 3 creates/append-checks the old add-only\n"
      "  format. append follows the snapshot's compaction lineage\n"
      "  (<SNAP>.head) when the daemon has compacted the pair.\n");
  return 2;
}

// Loads the graph part of a base snapshot (graph or engine kind) and
// reports its stored payload checksum — the value delta logs bind to. The
// delta workflow needs only the graph (endpoint validation and replay), so
// for engine snapshots the BFL index that follows it is never decoded —
// `delta append` against a big base costs one graph decode, not a full
// engine load.
std::optional<Graph> LoadBaseGraph(const std::string& path,
                                   SnapshotIoMode mode, uint64_t* checksum,
                                   std::string* error) {
  // The kind probe is a separate (header-only) read, but the reported
  // checksum comes from the SAME reader that decodes the graph: a
  // concurrent rename-replace between the two opens can only produce a
  // kind-mismatch error, never a checksum bound to one file and a graph
  // from another.
  auto info = InspectSnapshot(path, error);
  if (!info.has_value()) return std::nullopt;
  const bool is_graph =
      info->kind_value == static_cast<uint32_t>(SnapshotKind::kGraph);
  const bool is_engine =
      info->kind_value == static_cast<uint32_t>(SnapshotKind::kEngine);
  if (!is_graph && !is_engine) {
    *error =
        std::string("base must be a graph or engine snapshot (file is ") +
        SnapshotKindName(info->kind_value) + ")";
    return std::nullopt;
  }
  SnapshotReader reader(
      path, is_graph ? SnapshotKind::kGraph : SnapshotKind::kEngine, mode);
  if (!reader.ok()) {
    *error = reader.error();
    return std::nullopt;
  }
  Graph g = Graph::Deserialize(reader.source());
  // Graph snapshots must be fully consumed; engine snapshots legitimately
  // have the (skipped) index payload remaining — check the decode only.
  if (is_graph ? !reader.Finish() : !reader.source().ok()) {
    *error = is_graph ? reader.error() : reader.source().error();
    return std::nullopt;
  }
  *checksum = reader.stored_checksum();
  return g;
}

// Op batch file: one op per line — "src dst" or "+ src dst" adds the
// edge, "- src dst" deletes it; '#' comments and blank lines skipped.
bool ReadOpFile(const std::string& path, std::vector<DeltaOp>* out,
                std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open edge file " + path;
    return false;
  }
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    DeltaOpKind kind = DeltaOpKind::kAdd;
    const char* text = line.c_str() + first;
    if (*text == '+' || *text == '-') {
      if (*text == '-') kind = DeltaOpKind::kDelete;
      ++text;
    }
    unsigned long long src = 0, dst = 0;
    if (std::sscanf(text, "%llu %llu", &src, &dst) != 2 ||
        src > std::numeric_limits<NodeId>::max() ||
        dst > std::numeric_limits<NodeId>::max()) {
      *error = "edge file line " + std::to_string(line_no) +
               " is not '[+|-] src dst'";
      return false;
    }
    out->push_back(DeltaOp{static_cast<NodeId>(src),
                           static_cast<NodeId>(dst), kind});
  }
  return true;
}

int RunDelta(int argc, char** argv) {
  if (argc < 3) return DeltaUsage();
  const std::string verb = argv[2];
  std::string base_path, delta_path, edges_path, out_path;
  SnapshotIoMode io_mode = DefaultSnapshotIoMode();
  uint32_t format_version = kDeltaFormatOps;
  for (int i = 3; i < argc; ++i) {
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    const char* v;
    if (std::strcmp(argv[i], "--base") == 0) {
      if ((v = need_value("--base")) == nullptr) return DeltaUsage();
      base_path = v;
    } else if (std::strcmp(argv[i], "--delta") == 0) {
      if ((v = need_value("--delta")) == nullptr) return DeltaUsage();
      delta_path = v;
    } else if (std::strcmp(argv[i], "--edges") == 0) {
      if ((v = need_value("--edges")) == nullptr) return DeltaUsage();
      edges_path = v;
    } else if (std::strcmp(argv[i], "--out") == 0) {
      if ((v = need_value("--out")) == nullptr) return DeltaUsage();
      out_path = v;
    } else if (std::strcmp(argv[i], "--snapshot-io") == 0) {
      if ((v = need_value("--snapshot-io")) == nullptr) return DeltaUsage();
      if (!ParseSnapshotIoMode(v, &io_mode)) {
        std::fprintf(stderr, "--snapshot-io must be mmap or read\n");
        return DeltaUsage();
      }
    } else if (std::strcmp(argv[i], "--format-version") == 0) {
      if ((v = need_value("--format-version")) == nullptr) return DeltaUsage();
      format_version = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
      if (format_version != kDeltaFormatAddOnly &&
          format_version != kDeltaFormatOps) {
        std::fprintf(stderr, "--format-version must be %u or %u\n",
                     kDeltaFormatAddOnly, kDeltaFormatOps);
        return DeltaUsage();
      }
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return DeltaUsage();
    }
  }
  std::string error;

  if (verb == "append") {
    if (base_path.empty() || delta_path.empty() || edges_path.empty()) {
      return DeltaUsage();
    }
    std::vector<DeltaOp> ops;
    if (!ReadOpFile(edges_path, &ops, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    // The daemon's auto-compaction re-points the (snapshot, delta) pair at
    // a new generation through the <SNAP>.head lineage file — follow it,
    // and RE-resolve after taking the writer flock: a compaction that
    // committed between our resolve and our lock would otherwise get this
    // append written into a log it already folded in and unlinked (the
    // flock pins an inode, not the path). A lock held by the compactor (or
    // another appender) is transient — retry briefly before giving up.
    constexpr int kMaxAttempts = 10;
    for (int attempt = 0;; ++attempt) {
      Lineage lineage;
      if (!ResolveLineage(base_path, delta_path, &lineage, &error)) {
        std::fprintf(stderr, "cannot resolve lineage: %s\n", error.c_str());
        return 1;
      }
      // Appending to an EXISTING log needs only a header-read of the base
      // (the cross-check against the log's own binding); the base GRAPH is
      // decoded only when the log must be created — its header then
      // records the node count, so every later append is O(batch) + the
      // log scan, never O(base). On creation both the checksum and the
      // node count come from the one read that decoded the graph, so a
      // concurrent rename-replace of the base cannot bind mismatched
      // values.
      auto info = InspectSnapshot(lineage.snapshot_path, &error);
      if (!info.has_value()) {
        std::fprintf(stderr, "cannot inspect base: %s\n", error.c_str());
        return 1;
      }
      uint64_t bind_checksum = info->stored_checksum;
      uint32_t base_nodes = 0;
      std::error_code ec;
      const bool log_has_header =
          std::filesystem::exists(lineage.delta_path, ec) &&
          std::filesystem::file_size(lineage.delta_path, ec) > 0;
      if (!log_has_header) {
        // Missing OR zero-length (a crashed first creation): Open will
        // (re)initialize the header, which needs the base's node count.
        auto base = LoadBaseGraph(lineage.snapshot_path, io_mode,
                                  &bind_checksum, &error);
        if (!base.has_value()) {
          std::fprintf(stderr, "cannot load base: %s\n", error.c_str());
          return 1;
        }
        base_nodes = base->NumNodes();
      }
      DeltaWriterOptions options;
      options.format_version = format_version;
      auto writer = DeltaWriter::Open(lineage.delta_path, bind_checksum,
                                      base_nodes, &error, options);
      if (writer == nullptr) {
        if (error.find("locked by another delta writer") !=
                std::string::npos &&
            attempt + 1 < kMaxAttempts) {
          std::this_thread::sleep_for(std::chrono::milliseconds(50));
          continue;
        }
        std::fprintf(stderr, "cannot open delta log: %s\n", error.c_str());
        return 1;
      }
      // Lock held — now make sure the lineage did not move underneath us.
      Lineage recheck;
      if (!ResolveLineage(base_path, delta_path, &recheck, &error)) {
        std::fprintf(stderr, "cannot re-resolve lineage: %s\n",
                     error.c_str());
        return 1;
      }
      if (recheck.delta_path != lineage.delta_path) {
        writer.reset();  // stale generation: drop the lock and chase it
        continue;
      }
      // The precondition journaled records rely on: every endpoint exists
      // in the base (AppendOps enforces it too; checking first gives the
      // clearer message without a half-advanced writer).
      if (!ValidateOpEndpoints(ops, writer->base_num_nodes(), &error)) {
        std::fprintf(stderr,
                     "%s — refusing to journal an unreplayable record\n",
                     error.c_str());
        return 1;
      }
      if (!writer->AppendOps(ops, &error)) {
        std::fprintf(stderr, "append failed: %s\n", error.c_str());
        return 1;
      }
      uint64_t deletes = 0;
      for (const DeltaOp& op : ops) {
        if (op.kind == DeltaOpKind::kDelete) ++deletes;
      }
      std::printf("appended record %llu (%zu op(s), %llu delete(s)) to %s\n",
                  static_cast<unsigned long long>(writer->record_count()),
                  ops.size(), static_cast<unsigned long long>(deletes),
                  lineage.delta_path.c_str());
      return 0;
    }
  }

  if (verb == "inspect") {
    if (delta_path.empty()) return DeltaUsage();
    DeltaReader reader(delta_path, io_mode);
    if (!reader.ok()) {
      std::fprintf(stderr, "cannot inspect %s: %s\n", delta_path.c_str(),
                   reader.error().c_str());
      return 1;
    }
    std::printf("delta log: %s (format version %u%s)\n", delta_path.c_str(),
                reader.format_version(),
                reader.format_version() >= kDeltaFormatOps
                    ? ", add/delete ops"
                    : ", add-only");
    std::printf("base:      %016llx (stored checksum of the base snapshot), "
                "%u node(s)\n",
                static_cast<unsigned long long>(reader.base_checksum()),
                reader.base_num_nodes());
    DeltaRecord rec;
    uint64_t total_adds = 0;
    uint64_t total_deletes = 0;
    while (reader.Next(&rec)) {
      const uint64_t deletes = rec.delete_count();
      const uint64_t adds = rec.ops.size() - deletes;
      std::printf("record %llu: %zu op(s) (%llu add(s), %llu delete(s))\n",
                  static_cast<unsigned long long>(rec.seqno), rec.ops.size(),
                  static_cast<unsigned long long>(adds),
                  static_cast<unsigned long long>(deletes));
      total_adds += adds;
      total_deletes += deletes;
    }
    std::printf("records:   %llu (%llu op(s) total: %llu add(s), "
                "%llu delete(s))\n",
                static_cast<unsigned long long>(reader.records_read()),
                static_cast<unsigned long long>(total_adds + total_deletes),
                static_cast<unsigned long long>(total_adds),
                static_cast<unsigned long long>(total_deletes));
    if (!reader.truncated()) {
      std::printf("chain:     valid\n");
      return 0;
    }
    if (reader.tail_torn()) {
      std::printf("chain:     TORN TAIL after record %llu (%s) — a crashed, "
                  "never-acknowledged append; the valid prefix is complete "
                  "and the next append recovers the file\n",
                  static_cast<unsigned long long>(reader.records_read()),
                  reader.tail_error().c_str());
      return 0;
    }
    std::printf("chain:     CORRUPT after record %llu (%s) — acknowledged "
                "data is damaged; records past this point are NOT "
                "recoverable from this file\n",
                static_cast<unsigned long long>(reader.records_read()),
                reader.tail_error().c_str());
    return 1;
  }

  if (verb == "replay") {
    if (base_path.empty() || delta_path.empty()) return DeltaUsage();
    uint64_t base_checksum = 0;
    auto base = LoadBaseGraph(base_path, io_mode, &base_checksum, &error);
    if (!base.has_value()) {
      std::fprintf(stderr, "cannot load base: %s\n", error.c_str());
      return 1;
    }
    DeltaReader reader(delta_path, io_mode);
    if (!reader.ok()) {
      std::fprintf(stderr, "cannot read delta log: %s\n",
                   reader.error().c_str());
      return 1;
    }
    if (reader.base_checksum() != base_checksum) {
      std::fprintf(stderr,
                   "delta log is bound to base %016llx, but %s has "
                   "checksum %016llx\n",
                   static_cast<unsigned long long>(reader.base_checksum()),
                   base_path.c_str(),
                   static_cast<unsigned long long>(base_checksum));
      return 1;
    }
    ReplayStats stats;
    auto merged = ReplayDelta(*base, reader, &error, &stats);
    if (!merged.has_value()) {
      std::fprintf(stderr, "replay failed: %s\n", error.c_str());
      return 1;
    }
    if (reader.truncated() && !reader.tail_torn()) {
      // Mid-log corruption of acknowledged data: the valid prefix is NOT
      // everything that was journaled. Producing output (or worse, a
      // compacted snapshot the operator then treats as complete) would
      // silently lose the rest — refuse.
      std::fprintf(stderr,
                   "replay refused: %s is corrupt after record %llu (%s); "
                   "acknowledged records past that point cannot be "
                   "recovered from this file\n",
                   delta_path.c_str(),
                   static_cast<unsigned long long>(reader.records_read()),
                   reader.tail_error().c_str());
      return 1;
    }
    std::printf("base:   %s\n", base->Summary().c_str());
    std::printf("replay: %llu record(s), %llu op(s) (%llu delete(s))%s\n",
                static_cast<unsigned long long>(stats.records_applied),
                static_cast<unsigned long long>(stats.edges_in_records),
                static_cast<unsigned long long>(stats.delete_ops),
                reader.truncated()
                    ? " (torn, never-acknowledged tail skipped)"
                    : "");
    std::printf("merged: %s\n", merged->Summary().c_str());
    if (!out_path.empty()) {
      // Compaction-by-resnapshot: the merged graph becomes a new base with
      // its own checksum; existing delta logs do NOT apply to it — start a
      // fresh log bound to the new snapshot.
      GmEngine engine(*merged);
      if (!SaveEngineSnapshot(engine, out_path, &error)) {
        std::fprintf(stderr, "cannot write snapshot: %s\n", error.c_str());
        return 1;
      }
      std::printf("compacted snapshot written to %s (index build %.2f ms; "
                  "start a new delta log against it)\n",
                  out_path.c_str(), engine.reach_build_ms());
    }
    return 0;
  }

  std::fprintf(stderr, "unknown delta verb %s\n", verb.c_str());
  return DeltaUsage();
}

// Batch mode: every line of the file is an inline pattern; the whole batch
// is served through GmEngine::EvaluateBatch with --threads workers.
int RunBatch(const Graph& graph, GmEngine* warm_engine, const CliArgs& args) {
  if (args.engine != "gm") {
    std::fprintf(stderr, "--batch only supports --engine gm (got %s)\n",
                 args.engine.c_str());
    return 2;
  }
  std::ifstream in(args.batch_path);
  if (!in) {
    std::fprintf(stderr, "cannot open batch file %s\n",
                 args.batch_path.c_str());
    return 1;
  }
  std::vector<PatternQuery> queries;
  std::string line, error;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    auto q = ParsePattern(line, &error);
    if (!q.has_value()) {
      std::fprintf(stderr, "batch line %zu: cannot parse pattern: %s\n",
                   line_no, error.c_str());
      return 1;
    }
    if (!q->IsConnected()) {
      std::fprintf(stderr, "batch line %zu: query must be connected\n",
                   line_no);
      return 1;
    }
    queries.push_back(std::move(*q));
  }
  if (queries.empty()) {
    std::fprintf(stderr, "batch file has no queries\n");
    return 1;
  }

  std::optional<GmEngine> cold_engine;
  if (warm_engine == nullptr) cold_engine.emplace(graph);
  GmEngine& engine = warm_engine != nullptr ? *warm_engine : *cold_engine;
  GmOptions opts;
  opts.limit = args.limit;
  if (args.order == "ri") opts.order = OrderStrategy::kRI;
  if (args.order == "bj") opts.order = OrderStrategy::kBJ;
  opts.num_threads = args.threads;

  auto t0 = std::chrono::steady_clock::now();
  std::vector<GmResult> results = engine.EvaluateBatch(queries, opts);
  double batch_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();

  uint64_t total = 0;
  double serial_ms = 0.0;
  for (size_t i = 0; i < results.size(); ++i) {
    total += results[i].num_occurrences;
    serial_ms += results[i].TotalMs();
    std::printf("query %zu: %llu occurrence(s)%s", i,
                static_cast<unsigned long long>(results[i].num_occurrences),
                results[i].hit_limit ? " (limit reached)" : "");
    if (args.stats) {
      std::printf("  [matching %.2f ms, enumerate %.2f ms]",
                  results[i].MatchingMs(), results[i].enumerate_ms);
    }
    std::printf("\n");
  }
  std::printf("batch: %zu query(ies), %llu occurrence(s) in %.2f ms wall "
              "(%.2f ms summed per-query work)\n",
              queries.size(), static_cast<unsigned long long>(total),
              batch_ms, serial_ms);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args;
  if (argc > 1 && std::strcmp(argv[1], "snapshot") == 0) {
    if (!ParseArgs(argc, argv, 2, &args)) return Usage(argv[0]);
    return RunSnapshot(args);
  }
  if (argc > 1 && std::strcmp(argv[1], "delta") == 0) {
    return RunDelta(argc, argv);
  }
  if (argc > 1 && std::strcmp(argv[1], "serve") == 0) {
    return server::ServeToolMain(argc, argv, 2);
  }
  if (argc > 1 && std::strcmp(argv[1], "client") == 0) {
    return server::ClientToolMain(argc, argv, 2);
  }
  if (!ParseArgs(argc, argv, 1, &args) || !HasEvalInputs(args)) {
    return Usage(argv[0]);
  }

  std::string error;
  std::optional<Graph> parsed_graph;
  WarmEngine warm;
  const Graph* graph = nullptr;
  if (!args.snapshot_path.empty()) {
    // The overlay (when --delta is given) lives in LoadEngineSnapshot now:
    // records replay over the base and the index is rebuilt over the merged
    // graph — the cold-rebuild twin of the daemon's kRefresh path.
    auto loaded = LoadEngineSnapshot(
        args.snapshot_path,
        {.io_mode = args.io_mode, .delta_path = args.delta_path}, &error);
    if (!loaded.has_value()) {
      std::fprintf(stderr, "cannot load snapshot: %s\n", error.c_str());
      return 1;
    }
    warm = std::move(*loaded);
    graph = warm.graph.get();
    std::printf("snapshot: %s (warm start via %s, index build skipped)\n",
                args.snapshot_path.c_str(),
                args.io_mode == SnapshotIoMode::kMmap ? "mmap" : "read");
    if (!args.delta_path.empty()) {
      if (warm.applied_seqno == 0) {
        // Empty (or fully-compacted-away) log: the snapshot's prebuilt
        // index is already exactly right — the warm start stayed warm.
        std::printf("delta: %s (no records to replay)\n",
                    args.delta_path.c_str());
      } else {
        std::printf("delta: %s (replayed through seqno %llu; "
                    "index rebuilt in %.2f ms)\n",
                    args.delta_path.c_str(),
                    static_cast<unsigned long long>(warm.applied_seqno),
                    warm.engine->reach_build_ms());
      }
    }
  } else {
    if (!args.delta_path.empty()) {
      std::fprintf(stderr, "--delta requires --load-snapshot\n");
      return 1;
    }
    parsed_graph = ReadGraphFile(args.graph_path, &error);
    if (!parsed_graph.has_value()) {
      std::fprintf(stderr, "cannot read graph: %s\n", error.c_str());
      return 1;
    }
    graph = &*parsed_graph;
  }
  std::printf("graph: %s\n", graph->Summary().c_str());

  if (!args.batch_path.empty()) {
    return RunBatch(*graph, warm.engine.get(), args);
  }

  std::optional<PatternQuery> query;
  if (!args.pattern.empty()) {
    query = ParsePattern(args.pattern, &error);
  } else {
    std::ifstream in(args.query_path);
    if (!in) {
      std::fprintf(stderr, "cannot open query file\n");
      return 1;
    }
    query = ReadQuery(in, &error);
  }
  if (!query.has_value()) {
    std::fprintf(stderr, "cannot parse query: %s\n", error.c_str());
    return 1;
  }
  if (!query->IsConnected()) {
    std::fprintf(stderr, "query must be connected\n");
    return 1;
  }
  std::printf("query: %s  [%s]\n", query->Summary().c_str(),
              PatternToString(*query).c_str());

  uint64_t printed = 0;
  OccurrenceSink sink = [&](const Occurrence& t) {
    if (printed < args.print) {
      PrintOccurrence(t);
      ++printed;
    }
    return true;
  };

  if (args.engine == "gm" || args.engine == "gm-par") {
    std::optional<GmEngine> cold_engine;
    if (warm.engine == nullptr) cold_engine.emplace(*graph);
    GmEngine& engine = warm.engine != nullptr ? *warm.engine : *cold_engine;
    GmOptions opts;
    opts.limit = args.limit;
    if (args.order == "ri") opts.order = OrderStrategy::kRI;
    if (args.order == "bj") opts.order = OrderStrategy::kBJ;
    if (args.engine == "gm") {
      opts.num_threads = args.threads;
      OccurrenceSink gm_sink = sink;
      std::mutex sink_mu;
      if (opts.num_threads != 1) {
        // Parallel enumeration calls the sink concurrently; serialize the
        // printing.
        gm_sink = [&](const Occurrence& t) {
          std::lock_guard<std::mutex> lock(sink_mu);
          return sink(t);
        };
      }
      GmResult r = engine.Evaluate(*query, opts, gm_sink);
      std::printf("%llu occurrence(s)%s\n",
                  static_cast<unsigned long long>(r.num_occurrences),
                  r.hit_limit ? " (limit reached)" : "");
      if (args.stats) {
        std::printf("reach index build: %.2f ms\n", engine.reach_build_ms());
        std::printf("pipeline:");
        for (const PhaseTiming& pt : r.phase_timings) {
          std::printf(" %s %.2f ms |", pt.name, pt.ms);
        }
        std::printf(" total %.2f ms\n", r.TotalMs());
        std::printf("RIG: %llu nodes, %llu edges (%zu bytes)\n",
                    static_cast<unsigned long long>(r.rig_nodes),
                    static_cast<unsigned long long>(r.rig_edges),
                    r.rig_memory_bytes);
      }
    } else {
      // Parallel enumeration over a shared RIG.
      GmResult rig_result;
      PatternQuery reduced = QueryTransitiveReduction(*query);
      Rig rig = engine.BuildRigOnly(*query, opts, &rig_result);
      auto order = ComputeSearchOrder(reduced, rig, opts.order);
      ParallelMJoinOptions popts;
      popts.num_threads = args.threads_set ? args.threads : 0;
      popts.limit = args.limit;
      // The printing sink is not thread-safe; count only and reprint a few
      // sequentially if requested.
      MJoinStats stats;
      uint64_t n = MJoinParallelCount(reduced, rig, order, popts, &stats);
      std::printf("%llu occurrence(s) [parallel]\n",
                  static_cast<unsigned long long>(n));
      if (args.print > 0) {
        MJoinOptions seq;
        seq.limit = args.print;
        auto few = MJoinCollect(reduced, rig, order, seq);
        for (const auto& t : few) PrintOccurrence(t);
      }
      if (args.stats) {
        std::printf("intersections=%llu candidates=%llu\n",
                    static_cast<unsigned long long>(stats.intersections),
                    static_cast<unsigned long long>(stats.candidates_scanned));
      }
    }
  } else if (args.engine == "jm" || args.engine == "tm") {
    auto reach = BuildReachabilityIndex(*graph, ReachKind::kBfl);
    MatchContext ctx(*graph, *reach);
    if (args.engine == "jm") {
      JmOptions opts;
      opts.limit = args.limit;
      JmResult r = JmEvaluate(ctx, *query, opts, sink);
      std::printf("%llu occurrence(s), status=%s\n",
                  static_cast<unsigned long long>(r.num_occurrences),
                  EvalStatusName(r.status));
      if (args.stats) {
        std::printf("relations %.2f ms | plan %.2f ms (%llu plans) | joins "
                    "%.2f ms | peak intermediate %llu\n",
                    r.relations_ms, r.plan_ms,
                    static_cast<unsigned long long>(r.plans_considered),
                    r.join_ms,
                    static_cast<unsigned long long>(r.max_intermediate_size));
      }
    } else {
      TmOptions opts;
      opts.limit = args.limit;
      TmResult r = TmEvaluate(ctx, *query, opts, sink);
      std::printf("%llu occurrence(s), status=%s\n",
                  static_cast<unsigned long long>(r.num_occurrences),
                  EvalStatusName(r.status));
      if (args.stats) {
        std::printf("tree solutions %llu | answer graph %llu+%llu | build "
                    "%.2f ms | enumerate %.2f ms\n",
                    static_cast<unsigned long long>(r.tree_solutions),
                    static_cast<unsigned long long>(r.aux_graph_nodes),
                    static_cast<unsigned long long>(r.aux_graph_edges),
                    r.build_ms, r.enumerate_ms);
      }
    }
  } else {
    std::fprintf(stderr, "unknown engine %s\n", args.engine.c_str());
    return 2;
  }
  return 0;
}
