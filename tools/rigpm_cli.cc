// rigpm_cli — evaluate hybrid graph pattern queries from the command line.
//
//   rigpm_cli --graph G.txt --pattern "(a:0)->(b:1), (b)=>(c:2)" [flags]
//   rigpm_cli --graph G.txt --query Q.txt --engine jm --limit 100
//
// Flags:
//   --graph FILE      data graph in the text format of graph_io.h (required)
//   --query FILE      query in the text format of query_io.h
//   --pattern STR     query in the inline syntax of pattern_parser.h
//   --engine NAME     gm (default) | gm-par | jm | tm
//   --order NAME      jo (default) | ri | bj           (gm engines)
//   --threads N       worker count for gm-par (0 = hardware)
//   --limit N         stop after N occurrences (default: all)
//   --print N         print the first N occurrences (default 10)
//   --stats           print per-phase statistics

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "baseline/jm_engine.h"
#include "baseline/tm_engine.h"
#include "engine/gm_engine.h"
#include "enumerate/mjoin_parallel.h"
#include "graph/graph_io.h"
#include "query/pattern_parser.h"
#include "query/query_io.h"
#include "query/transitive_reduction.h"

namespace {

using namespace rigpm;

struct CliArgs {
  std::string graph_path;
  std::string query_path;
  std::string pattern;
  std::string engine = "gm";
  std::string order = "jo";
  uint32_t threads = 0;
  uint64_t limit = std::numeric_limits<uint64_t>::max();
  uint64_t print = 10;
  bool stats = false;
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --graph FILE (--query FILE | --pattern STR)\n"
               "          [--engine gm|gm-par|jm|tm] [--order jo|ri|bj]\n"
               "          [--threads N] [--limit N] [--print N] [--stats]\n",
               argv0);
  return 2;
}

bool ParseArgs(int argc, char** argv, CliArgs* out) {
  for (int i = 1; i < argc; ++i) {
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--graph") == 0) {
      const char* v = need_value("--graph");
      if (v == nullptr) return false;
      out->graph_path = v;
    } else if (std::strcmp(argv[i], "--query") == 0) {
      const char* v = need_value("--query");
      if (v == nullptr) return false;
      out->query_path = v;
    } else if (std::strcmp(argv[i], "--pattern") == 0) {
      const char* v = need_value("--pattern");
      if (v == nullptr) return false;
      out->pattern = v;
    } else if (std::strcmp(argv[i], "--engine") == 0) {
      const char* v = need_value("--engine");
      if (v == nullptr) return false;
      out->engine = v;
    } else if (std::strcmp(argv[i], "--order") == 0) {
      const char* v = need_value("--order");
      if (v == nullptr) return false;
      out->order = v;
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      const char* v = need_value("--threads");
      if (v == nullptr) return false;
      out->threads = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (std::strcmp(argv[i], "--limit") == 0) {
      const char* v = need_value("--limit");
      if (v == nullptr) return false;
      out->limit = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(argv[i], "--print") == 0) {
      const char* v = need_value("--print");
      if (v == nullptr) return false;
      out->print = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      out->stats = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return false;
    }
  }
  return !out->graph_path.empty() &&
         (!out->query_path.empty() || !out->pattern.empty());
}

void PrintOccurrence(const Occurrence& t) {
  std::printf("(");
  for (size_t i = 0; i < t.size(); ++i) {
    std::printf(i ? " %u" : "%u", t[i]);
  }
  std::printf(")\n");
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args;
  if (!ParseArgs(argc, argv, &args)) return Usage(argv[0]);

  std::string error;
  auto graph = ReadGraphFile(args.graph_path, &error);
  if (!graph.has_value()) {
    std::fprintf(stderr, "cannot read graph: %s\n", error.c_str());
    return 1;
  }
  std::printf("graph: %s\n", graph->Summary().c_str());

  std::optional<PatternQuery> query;
  if (!args.pattern.empty()) {
    query = ParsePattern(args.pattern, &error);
  } else {
    std::ifstream in(args.query_path);
    if (!in) {
      std::fprintf(stderr, "cannot open query file\n");
      return 1;
    }
    query = ReadQuery(in, &error);
  }
  if (!query.has_value()) {
    std::fprintf(stderr, "cannot parse query: %s\n", error.c_str());
    return 1;
  }
  if (!query->IsConnected()) {
    std::fprintf(stderr, "query must be connected\n");
    return 1;
  }
  std::printf("query: %s  [%s]\n", query->Summary().c_str(),
              PatternToString(*query).c_str());

  uint64_t printed = 0;
  OccurrenceSink sink = [&](const Occurrence& t) {
    if (printed < args.print) {
      PrintOccurrence(t);
      ++printed;
    }
    return true;
  };

  if (args.engine == "gm" || args.engine == "gm-par") {
    GmEngine engine(*graph);
    GmOptions opts;
    opts.limit = args.limit;
    if (args.order == "ri") opts.order = OrderStrategy::kRI;
    if (args.order == "bj") opts.order = OrderStrategy::kBJ;
    if (args.engine == "gm") {
      GmResult r = engine.Evaluate(*query, opts, sink);
      std::printf("%llu occurrence(s)%s\n",
                  static_cast<unsigned long long>(r.num_occurrences),
                  r.hit_limit ? " (limit reached)" : "");
      if (args.stats) {
        std::printf("reach index build: %.2f ms\n", engine.reach_build_ms());
        std::printf("reduction %.2f ms | prefilter %.2f ms | RIG select %.2f "
                    "ms | RIG expand %.2f ms | order %.2f ms | enumerate "
                    "%.2f ms\n",
                    r.reduction_ms, r.prefilter_ms, r.rig_select_ms,
                    r.rig_expand_ms, r.order_ms, r.enumerate_ms);
        std::printf("RIG: %llu nodes, %llu edges (%zu bytes)\n",
                    static_cast<unsigned long long>(r.rig_nodes),
                    static_cast<unsigned long long>(r.rig_edges),
                    r.rig_memory_bytes);
      }
    } else {
      // Parallel enumeration over a shared RIG.
      GmResult rig_result;
      PatternQuery reduced = QueryTransitiveReduction(*query);
      Rig rig = engine.BuildRigOnly(*query, opts, &rig_result);
      auto order = ComputeSearchOrder(reduced, rig, opts.order);
      ParallelMJoinOptions popts;
      popts.num_threads = args.threads;
      popts.limit = args.limit;
      // The printing sink is not thread-safe; count only and reprint a few
      // sequentially if requested.
      MJoinStats stats;
      uint64_t n = MJoinParallelCount(reduced, rig, order, popts, &stats);
      std::printf("%llu occurrence(s) [parallel]\n",
                  static_cast<unsigned long long>(n));
      if (args.print > 0) {
        MJoinOptions seq;
        seq.limit = args.print;
        auto few = MJoinCollect(reduced, rig, order, seq);
        for (const auto& t : few) PrintOccurrence(t);
      }
      if (args.stats) {
        std::printf("intersections=%llu candidates=%llu\n",
                    static_cast<unsigned long long>(stats.intersections),
                    static_cast<unsigned long long>(stats.candidates_scanned));
      }
    }
  } else if (args.engine == "jm" || args.engine == "tm") {
    auto reach = BuildReachabilityIndex(*graph, ReachKind::kBfl);
    MatchContext ctx(*graph, *reach);
    if (args.engine == "jm") {
      JmOptions opts;
      opts.limit = args.limit;
      JmResult r = JmEvaluate(ctx, *query, opts, sink);
      std::printf("%llu occurrence(s), status=%s\n",
                  static_cast<unsigned long long>(r.num_occurrences),
                  EvalStatusName(r.status));
      if (args.stats) {
        std::printf("relations %.2f ms | plan %.2f ms (%llu plans) | joins "
                    "%.2f ms | peak intermediate %llu\n",
                    r.relations_ms, r.plan_ms,
                    static_cast<unsigned long long>(r.plans_considered),
                    r.join_ms,
                    static_cast<unsigned long long>(r.max_intermediate_size));
      }
    } else {
      TmOptions opts;
      opts.limit = args.limit;
      TmResult r = TmEvaluate(ctx, *query, opts, sink);
      std::printf("%llu occurrence(s), status=%s\n",
                  static_cast<unsigned long long>(r.num_occurrences),
                  EvalStatusName(r.status));
      if (args.stats) {
        std::printf("tree solutions %llu | answer graph %llu+%llu | build "
                    "%.2f ms | enumerate %.2f ms\n",
                    static_cast<unsigned long long>(r.tree_solutions),
                    static_cast<unsigned long long>(r.aux_graph_nodes),
                    static_cast<unsigned long long>(r.aux_graph_edges),
                    r.build_ms, r.enumerate_ms);
      }
    }
  } else {
    std::fprintf(stderr, "unknown engine %s\n", args.engine.c_str());
    return 2;
  }
  return 0;
}
