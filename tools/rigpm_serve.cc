// rigpm_serve — snapshot-backed query daemon.
//
// Loads a graph + pre-built reachability index once (ideally from a binary
// engine snapshot, see storage/snapshot.h and `rigpm_cli snapshot`) and
// serves pattern queries over a Unix-domain or TCP socket until SIGINT,
// SIGTERM, or a client shutdown request. Protocol: server/protocol.h;
// scripted access: `rigpm_cli client`.
//
//   rigpm_serve --snapshot G.snap --socket /tmp/rigpm.sock --workers 4
//   rigpm_serve --graph G.txt --port 7771
//   rigpm_serve --snapshot G.snap --delta G.delta --socket /tmp/rigpm.sock
//
// With --delta, a client `--refresh` replays the delta log's new records
// (storage/delta_log.h) and swaps the refreshed engine in live — no
// restart, no dropped connections.
//
// Flags are shared with `rigpm_cli serve` (src/server/tool_main.h).

#include "server/tool_main.h"

int main(int argc, char** argv) {
  return rigpm::server::ServeToolMain(argc, argv, 1);
}
