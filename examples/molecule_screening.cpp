// Substructure screening over a database of small graphs — the subgraph
// searching application of the paper's related work (Section 8), in a
// cheminformatics dress: screen a library of synthetic "molecules" for a
// functional-group pattern, with both homomorphic and isomorphic semantics.

#include <cstdio>
#include <random>

#include "graph/generators.h"
#include "graphdb/graph_database.h"
#include "query/pattern_parser.h"

int main() {
  using namespace rigpm;

  // Labels: 0=C, 1=O, 2=N, 3=S. Build a library of small random molecules.
  GraphDatabase db;
  std::mt19937_64 rng(2023);
  for (uint32_t i = 0; i < 400; ++i) {
    GeneratorOptions opts;
    std::uniform_int_distribution<uint32_t> size(6, 18);
    opts.num_nodes = size(rng);
    opts.num_edges = opts.num_nodes + opts.num_nodes / 2;
    opts.num_labels = 4;
    opts.label_zipf = 1.0;  // carbon-dominated, like real molecules
    opts.seed = rng();
    db.Add(GenerateErdosRenyi(opts), "mol" + std::to_string(i));
  }
  std::printf("library: %zu molecules\n", db.Size());

  // Functional-group pattern: a carbon bonded to an oxygen AND connected
  // (through any chain) to a nitrogen that is directly bonded to a sulfur.
  auto pattern = ParsePattern("(c:0)->(o:1), (c)=>(n:2), (n)->(s:3)");
  if (!pattern.has_value()) {
    std::fprintf(stderr, "bad pattern\n");
    return 1;
  }

  GraphDatabase::SearchStats stats;
  auto hom_hits = db.Search(*pattern, {.isomorphic = false}, &stats);
  std::printf("homomorphic screen: %zu hit(s); filter kept %zu of %zu "
              "members\n",
              hom_hits.size(), stats.candidates_after_filter, db.Size());
  for (size_t i = 0; i < hom_hits.size() && i < 5; ++i) {
    std::printf("  %s (%s)\n", db.Name(hom_hits[i]).c_str(),
                db.MemberGraph(hom_hits[i]).Summary().c_str());
  }

  // Isomorphic semantics require child-only patterns (an injective match of
  // a reachability edge is not a subgraph): screen for a C-O-C bridge.
  auto bridge = ParsePattern("(c1:0)->(o:1), (c2:0)->(o)");
  GraphDatabase::SearchStats iso_stats;
  auto iso_hits = db.Search(*bridge, {.isomorphic = true}, &iso_stats);
  auto hom_bridge_hits = db.Search(*bridge, {.isomorphic = false});
  std::printf("C-O-C bridge: %zu isomorphic hit(s) vs %zu homomorphic "
              "hit(s)\n",
              iso_hits.size(), hom_bridge_hits.size());
  std::printf("(homomorphisms may fold the two carbons onto one atom, so "
              "the homomorphic count is an upper bound)\n");
  return 0;
}
