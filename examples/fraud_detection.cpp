// Money-laundering pattern search — the scenario of Fig. 1(e): individuals
// performing a pattern of direct and indirect money transfers between legal
// and illegal accounts.
//
// Pattern (hybrid):
//   Person --c--> LegalAccount ==d==> IllegalAccount --c--> Person'
//   LegalAccount --c--> Shell ==d==> IllegalAccount
//
// i.e. money leaves a person's legal account toward an illegal account both
// through an arbitrary chain of transfers AND through a shell company in one
// hop — the reinforcement that flags structuring. The example streams
// matches through a callback instead of materializing them.

#include <cstdio>
#include <random>

#include "engine/gm_engine.h"
#include "graph/graph_builder.h"

namespace {

using namespace rigpm;

constexpr LabelId kPerson = 0;
constexpr LabelId kLegalAccount = 1;
constexpr LabelId kIllegalAccount = 2;
constexpr LabelId kShellCompany = 3;

Graph MakeTransferGraph(uint32_t people, uint32_t accounts, uint64_t seed) {
  std::mt19937_64 rng(seed);
  GraphBuilder b;
  std::vector<NodeId> persons, legal, illegal, shells;
  for (uint32_t i = 0; i < people; ++i) persons.push_back(b.AddNode(kPerson));
  for (uint32_t i = 0; i < accounts; ++i) {
    legal.push_back(b.AddNode(kLegalAccount));
  }
  for (uint32_t i = 0; i < accounts / 4; ++i) {
    illegal.push_back(b.AddNode(kIllegalAccount));
  }
  for (uint32_t i = 0; i < accounts / 8; ++i) {
    shells.push_back(b.AddNode(kShellCompany));
  }

  auto pick = [&rng](const std::vector<NodeId>& v) {
    std::uniform_int_distribution<size_t> d(0, v.size() - 1);
    return v[d(rng)];
  };
  // Ownership: persons own legal accounts; some persons cash out of illegal
  // accounts.
  for (NodeId a : legal) b.AddEdge(pick(persons), a);
  for (NodeId a : illegal) b.AddEdge(a, pick(persons));
  // Transfers: legal -> legal chains, legal -> shell, shell -> illegal,
  // legal -> illegal (rare), illegal -> illegal.
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  for (uint32_t i = 0; i < accounts * 4; ++i) {
    double c = coin(rng);
    if (c < 0.55) {
      b.AddEdge(pick(legal), pick(legal));
    } else if (c < 0.70) {
      b.AddEdge(pick(legal), pick(shells));
    } else if (c < 0.85) {
      b.AddEdge(pick(shells), pick(illegal));
    } else if (c < 0.90) {
      b.AddEdge(pick(legal), pick(illegal));
    } else {
      b.AddEdge(pick(illegal), pick(illegal));
    }
  }
  return std::move(b).Build();
}

}  // namespace

int main() {
  Graph g = MakeTransferGraph(/*people=*/400, /*accounts=*/2000, /*seed=*/7);
  std::printf("transfer graph: %s\n", g.Summary().c_str());

  // Query nodes: 0=Person, 1=LegalAccount, 2=Shell, 3=IllegalAccount,
  // 4=Person'.
  PatternQuery q = PatternQuery::FromParts(
      {kPerson, kLegalAccount, kShellCompany, kIllegalAccount, kPerson},
      {{0, 1, EdgeKind::kChild},       // person owns the legal account
       {1, 3, EdgeKind::kDescendant},  // chained transfers to illegal acct
       {1, 2, EdgeKind::kChild},       // direct payment to a shell company
       {2, 3, EdgeKind::kDescendant},  // shell funnels onward
       {3, 4, EdgeKind::kChild}});     // someone cashes out

  GmEngine engine(g);
  GmOptions opts;
  opts.limit = 50;  // investigators triage the first few alerts

  uint64_t alerts = 0;
  GmResult stats = engine.Evaluate(q, opts, [&alerts](const Occurrence& t) {
    if (alerts < 5) {
      std::printf("  ALERT: person %u -> account %u -> shell %u => illegal "
                  "%u -> person %u\n",
                  t[0], t[1], t[2], t[3], t[4]);
    }
    ++alerts;
    return true;
  });

  std::printf("%llu suspicious flows (capped at %llu); matching %.2f ms, "
              "enumeration %.2f ms; empty-RIG shortcut: %s\n",
              static_cast<unsigned long long>(stats.num_occurrences),
              static_cast<unsigned long long>(opts.limit), stats.MatchingMs(),
              stats.enumerate_ms, stats.empty_rig_shortcut ? "yes" : "no");
  return 0;
}
