// Quickstart: build a small data graph, write a hybrid pattern query, and
// evaluate it with the GM engine.
//
//   cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "engine/gm_engine.h"
#include "graph/graph_builder.h"
#include "query/query_io.h"

int main() {
  using namespace rigpm;

  // --- 1. Build a data graph. Labels are small integers; here:
  //        0 = user, 1 = post, 2 = topic.
  GraphBuilder builder;
  NodeId alice = builder.AddNode(0);
  NodeId bob = builder.AddNode(0);
  NodeId post1 = builder.AddNode(1);
  NodeId post2 = builder.AddNode(1);
  NodeId post3 = builder.AddNode(1);
  NodeId databases = builder.AddNode(2);

  builder.AddEdge(alice, post1);     // alice wrote post1
  builder.AddEdge(bob, post2);       // bob wrote post2
  builder.AddEdge(bob, post3);       // bob wrote post3
  builder.AddEdge(post1, post2);     // post1 links to post2
  builder.AddEdge(post2, post3);     // post2 links to post3
  builder.AddEdge(post3, databases); // post3 is tagged 'databases'
  Graph graph = std::move(builder).Build();
  std::printf("data graph: %s\n", graph.Summary().c_str());

  // --- 2. Write a hybrid pattern query. The text format uses 'c' for child
  //        (direct) edges and 'd' for descendant (reachability) edges:
  //        find users whose post reaches (directly or transitively) a post
  //        that is directly tagged with a topic.
  auto query = ParseQuery(
      "q 4\n"
      "v 0 0\n"   // U : user
      "v 1 1\n"   // P : post
      "v 2 1\n"   // Q : post
      "e 0 1 c\n" // U -> P   (wrote)
      "v 3 2\n"   // T : topic
      "e 1 2 d\n" // P => Q   (reaches through links)
      "e 2 3 c\n" // Q -> T   (tagged)
  );
  if (!query.has_value()) {
    std::fprintf(stderr, "failed to parse query\n");
    return 1;
  }
  std::printf("query: %s\n", query->Summary().c_str());

  // --- 3. Evaluate. The engine builds the reachability index (BFL), runs
  //        double simulation, assembles the runtime index graph, and
  //        enumerates occurrences with MJoin.
  GmEngine engine(graph);
  GmResult stats;
  auto occurrences = engine.EvaluateCollect(*query, GmOptions{}, &stats);

  std::printf("found %llu occurrence(s); RIG had %llu nodes / %llu edges; "
              "matching %.3f ms, enumeration %.3f ms\n",
              static_cast<unsigned long long>(stats.num_occurrences),
              static_cast<unsigned long long>(stats.rig_nodes),
              static_cast<unsigned long long>(stats.rig_edges),
              stats.MatchingMs(), stats.enumerate_ms);
  for (const Occurrence& t : occurrences) {
    std::printf("  U=%u P=%u Q=%u T=%u\n", t[0], t[1], t[2], t[3]);
  }
  return 0;
}
