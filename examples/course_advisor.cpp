// University-graph query — the scenario of Fig. 1(b): find students who TA a
// course whose (transitive) prerequisite is taught by the professor who
// advises that same student. Demonstrates a cyclic hybrid pattern and the
// ablation switches (pre-filter / double simulation / search orders).

#include <cstdio>
#include <random>

#include "engine/gm_engine.h"
#include "graph/graph_builder.h"

namespace {

using namespace rigpm;

constexpr LabelId kStudent = 0;
constexpr LabelId kCourse = 1;
constexpr LabelId kProfessor = 2;

Graph MakeUniversity(uint32_t students, uint32_t courses, uint32_t profs,
                     uint64_t seed) {
  std::mt19937_64 rng(seed);
  GraphBuilder b;
  std::vector<NodeId> S, C, P;
  for (uint32_t i = 0; i < students; ++i) S.push_back(b.AddNode(kStudent));
  for (uint32_t i = 0; i < courses; ++i) C.push_back(b.AddNode(kCourse));
  for (uint32_t i = 0; i < profs; ++i) P.push_back(b.AddNode(kProfessor));
  auto pick = [&rng](const std::vector<NodeId>& v) {
    std::uniform_int_distribution<size_t> d(0, v.size() - 1);
    return v[d(rng)];
  };
  // Prerequisite DAG over courses (course i requires some earlier course).
  std::uniform_int_distribution<int> npre(0, 2);
  for (uint32_t i = 1; i < courses; ++i) {
    int k = npre(rng);
    std::uniform_int_distribution<uint32_t> earlier(0, i - 1);
    for (int j = 0; j < k; ++j) b.AddEdge(C[i], C[earlier(rng)]);
  }
  // TA-ships, teaching and advising.
  for (uint32_t i = 0; i < students; ++i) {
    b.AddEdge(S[i], C[pick(C) % courses]);                 // student TAs a course
    b.AddEdge(P[pick(P) % profs], S[i]);                   // professor advises
  }
  for (uint32_t i = 0; i < courses; ++i) {
    b.AddEdge(P[pick(P) % profs], C[i]);                   // professor teaches
  }
  return std::move(b).Build();
}

}  // namespace

int main() {
  Graph g = MakeUniversity(/*students=*/800, /*courses=*/300, /*profs=*/60,
                           /*seed=*/42);
  std::printf("university graph: %s\n", g.Summary().c_str());

  // Query nodes: 0=Student, 1=Course (TA'd), 2=Course (prereq), 3=Professor.
  // The pattern is an undirected cycle: S -> C1 => C2 <- P -> S.
  PatternQuery q = PatternQuery::FromParts(
      {kStudent, kCourse, kCourse, kProfessor},
      {{0, 1, EdgeKind::kChild},       // student TAs course C1
       {1, 2, EdgeKind::kDescendant},  // C1's transitive prerequisite C2
       {3, 2, EdgeKind::kChild},       // professor teaches C2
       {3, 0, EdgeKind::kChild}});     // and advises the student

  GmEngine engine(g);

  // Full GM.
  GmResult gm;
  auto matches = engine.EvaluateCollect(q, GmOptions{}, &gm);
  std::printf("GM     : %llu matches, RIG %llu+%llu, %.2f ms\n",
              static_cast<unsigned long long>(gm.num_occurrences),
              static_cast<unsigned long long>(gm.rig_nodes),
              static_cast<unsigned long long>(gm.rig_edges), gm.TotalMs());
  for (size_t i = 0; i < matches.size() && i < 3; ++i) {
    std::printf("  student %u TAs course %u; prereq %u taught by advisor %u\n",
                matches[i][0], matches[i][1], matches[i][2], matches[i][3]);
  }

  // Ablations: how much work does each GM ingredient save?
  auto report = [&](const char* name, GmOptions opts) {
    GmResult r;
    engine.EvaluateCollect(q, opts, &r);
    std::printf("%-7s: %llu matches, RIG %llu+%llu, %.2f ms\n", name,
                static_cast<unsigned long long>(r.num_occurrences),
                static_cast<unsigned long long>(r.rig_nodes),
                static_cast<unsigned long long>(r.rig_edges), r.TotalMs());
  };
  GmOptions no_sim;
  no_sim.use_double_simulation = false;
  report("GM-F", no_sim);
  GmOptions no_pre;
  no_pre.use_prefilter = false;
  report("GM-S", no_pre);
  GmOptions ri;
  ri.order = OrderStrategy::kRI;
  report("GM-RI", ri);
  GmOptions bj;
  bj.order = OrderStrategy::kBJ;
  report("GM-BJ", bj);
  return 0;
}
