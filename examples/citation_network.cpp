// Citation-network analysis — the scenario of Fig. 1(a) in the paper:
// "find authors who have a VLDB paper that directly or indirectly cites an
// ICDE paper by the same author".
//
// The example synthesizes a citation network (authors -> papers labeled by
// venue; papers cite papers), then evaluates the hybrid pattern
//
//      Author --c--> VLDB-paper ==d==> ICDE-paper <--c-- Author
//      (the two Author nodes are the same query node, closing the cycle)
//
// and compares GM against the join-based baseline on the same input.

#include <cstdio>
#include <random>

#include "baseline/jm_engine.h"
#include "engine/gm_engine.h"
#include "graph/graph_builder.h"

namespace {

using namespace rigpm;

constexpr LabelId kAuthor = 0;
constexpr LabelId kVldbPaper = 1;
constexpr LabelId kIcdePaper = 2;
constexpr LabelId kOtherPaper = 3;

Graph MakeCitationNetwork(uint32_t num_authors, uint32_t num_papers,
                          uint64_t seed) {
  std::mt19937_64 rng(seed);
  GraphBuilder b;
  std::vector<NodeId> authors, papers;
  for (uint32_t i = 0; i < num_authors; ++i) {
    authors.push_back(b.AddNode(kAuthor));
  }
  std::uniform_int_distribution<int> venue(0, 9);
  for (uint32_t i = 0; i < num_papers; ++i) {
    int v = venue(rng);
    LabelId label = v < 2 ? kVldbPaper : (v < 4 ? kIcdePaper : kOtherPaper);
    papers.push_back(b.AddNode(label));
  }
  // Authorship: every paper has 1-3 authors.
  std::uniform_int_distribution<uint32_t> author_pick(0, num_authors - 1);
  std::uniform_int_distribution<int> nauth(1, 3);
  for (NodeId p : papers) {
    int k = nauth(rng);
    for (int i = 0; i < k; ++i) b.AddEdge(authors[author_pick(rng)], p);
  }
  // Citations: papers cite earlier papers (acyclic), ~4 each.
  std::uniform_int_distribution<int> ncite(1, 6);
  for (uint32_t i = 1; i < num_papers; ++i) {
    int k = ncite(rng);
    std::uniform_int_distribution<uint32_t> cite_pick(0, i - 1);
    for (int c = 0; c < k; ++c) b.AddEdge(papers[i], papers[cite_pick(rng)]);
  }
  return std::move(b).Build();
}

}  // namespace

int main() {
  Graph g = MakeCitationNetwork(/*num_authors=*/300, /*num_papers=*/3000,
                                /*seed=*/2023);
  std::printf("citation network: %s\n", g.Summary().c_str());

  // Query node ids: 0 = Author, 1 = VLDB paper, 2 = ICDE paper.
  PatternQuery q = PatternQuery::FromParts(
      {kAuthor, kVldbPaper, kIcdePaper},
      {{0, 1, EdgeKind::kChild},        // author wrote the VLDB paper
       {1, 2, EdgeKind::kDescendant},   // which (transitively) cites
       {0, 2, EdgeKind::kChild}});      // an ICDE paper by the same author

  GmEngine engine(g);
  GmResult stats;
  auto results = engine.EvaluateCollect(q, GmOptions{}, &stats);
  std::printf(
      "GM: %llu matches in %.2f ms (matching %.2f ms + enumeration %.2f ms); "
      "RIG %llu nodes / %llu edges\n",
      static_cast<unsigned long long>(stats.num_occurrences), stats.TotalMs(),
      stats.MatchingMs(), stats.enumerate_ms,
      static_cast<unsigned long long>(stats.rig_nodes),
      static_cast<unsigned long long>(stats.rig_edges));

  for (size_t i = 0; i < results.size() && i < 5; ++i) {
    std::printf("  author %u: VLDB paper %u transitively cites their ICDE "
                "paper %u\n",
                results[i][0], results[i][1], results[i][2]);
  }

  // Same query through the join-based baseline, for comparison.
  auto reach = BuildReachabilityIndex(g, ReachKind::kBfl);
  MatchContext ctx(g, *reach);
  JmResult jm = JmEvaluate(ctx, q);
  std::printf("JM: %llu matches in %.2f ms (peak intermediate %llu tuples)\n",
              static_cast<unsigned long long>(jm.num_occurrences),
              jm.TotalMs(),
              static_cast<unsigned long long>(jm.max_intermediate_size));
  if (jm.num_occurrences != stats.num_occurrences) {
    std::fprintf(stderr, "engines disagree!\n");
    return 1;
  }
  return 0;
}
