#ifndef RIGPM_SERVER_CATALOG_H_
#define RIGPM_SERVER_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/gm_engine.h"
#include "graph/graph.h"
#include "server/result_cache.h"
#include "storage/lineage.h"
#include "storage/snapshot_io.h"

namespace rigpm::server {

/// One immutable served unit — the RCU payload behind every query. A
/// refresh (or a catalog reopen) publishes a new instance; queries in
/// flight pin the old one via shared_ptr until they return, so nothing
/// blocks and no engine is destroyed under a running evaluation.
struct EngineState {
  std::shared_ptr<const Graph> graph;      // null when the engine aliases a
                                           // caller-owned graph (AdoptEngine)
  std::shared_ptr<const GmEngine> engine;  // never null
  uint64_t applied_seqno = 0;
  /// Chain checksum of the delta record at applied_seqno (0 before any
  /// replay). The next refresh verifies the log still carries this exact
  /// prefix — resuming by seqno alone would silently skip a log that was
  /// truncated and rewritten with reused sequence numbers.
  uint64_t applied_chain = 0;
  /// Stored payload checksum of the base snapshot this engine descends
  /// from (0 for adopted engines with no snapshot identity). Refreshes
  /// reject a delta log bound to a different base.
  uint64_t base_checksum = 0;
  /// Byte offset just past the last applied log record (0 = unknown, e.g.
  /// an adopted engine before its first refresh). The refresh poll's fast
  /// path: when the log's on-disk size equals this, the tenant is caught
  /// up without reading a byte, and when it is larger the reader seeks
  /// straight here and validates only the tail — never O(total log).
  uint64_t applied_end_offset = 0;
  /// Query-result cache for THIS generation (null when caching is off).
  /// Living on the state means invalidation is the RCU swap itself: a
  /// refresh publishes a successor with a fresh empty cache, in-flight
  /// hits on the old generation stay consistent with the engine they were
  /// computed on, and evicting the tenant drops the cache with it.
  std::shared_ptr<ResultCache> cache;
};

/// Where a tenant's engine comes from: a snapshot on disk, optionally with
/// a delta log replayed over it. The catalog opens the source lazily on
/// first request and can reopen it after an eviction — which is why the
/// source, not the engine, is what registration hands over.
struct EngineSource {
  std::string snapshot_path;
  /// Optional delta log (storage/delta_log.h). Non-empty enables per-tenant
  /// kRefresh; a lazy open replays the ENTIRE current log so an evicted-
  /// and-reopened tenant serves exactly what it served before eviction,
  /// never a time-traveled base.
  std::string delta_path;
  SnapshotIoMode io_mode = DefaultSnapshotIoMode();
  /// kRead by default: a live log can be tail-truncated in place by a
  /// recovering writer, which would SIGBUS an mmap reader (server.h).
  SnapshotIoMode delta_io = SnapshotIoMode::kRead;
};

/// Per-tenant row of ListGraphs / the stats tail.
struct TenantInfo {
  std::string id;
  bool resident = false;     // engine currently open in the catalog
  bool refreshable = false;  // has a delta source
  uint64_t applied_seqno = 0;
  uint64_t queries = 0;  // queries served for this tenant since start
  /// Result-cache counters of the CURRENT generation (all zero when the
  /// tenant is non-resident or caching is off). Reset by design at every
  /// refresh — the cache is generation-scoped.
  ResultCacheStats cache;
};

/// Point-in-time catalog counters.
struct CatalogStats {
  uint64_t registered = 0;
  uint64_t resident = 0;
  uint64_t hits = 0;       // Acquire found the engine open
  uint64_t misses = 0;     // Acquire had to open (or reopen) the source
  uint64_t evictions = 0;  // resident engines dropped by the LRU cap
};

/// What a per-tenant refresh did (the server translates this into a
/// RefreshResponse; the catalog itself stays protocol-free).
struct CatalogRefreshResult {
  bool ok = false;
  /// On failure: true for client-addressable mistakes (unknown tenant, no
  /// delta configured, wrong base, rewritten prefix), false for I/O or
  /// corruption trouble the client cannot fix.
  bool bad_request = false;
  std::string error;
  uint64_t records_applied = 0;
  uint64_t edges_in_records = 0;  // ops in applied records
  uint64_t delete_ops = 0;        // of which deletes
  uint64_t last_seqno = 0;
  uint64_t num_nodes = 0;
  uint64_t num_edges = 0;
  bool log_truncated = false;
};

/// When the daemon maintains its tenants on its own (git `gc --auto`
/// style): thresholds for background refresh and auto-compaction.
struct MaintenancePolicy {
  /// Compact a tenant when its delta log's on-disk bytes exceed this
  /// fraction of its base snapshot's (replaying most of the graph again on
  /// every open is when a re-snapshot pays for itself). 0 disables
  /// auto-compaction.
  double auto_compact_ratio = 0.0;
  /// Poll period of the daemon's maintenance thread; 0 = no thread. The
  /// thread belongs to QueryServer — the catalog only stores the policy
  /// and exposes RunMaintenance() for it (and for tests) to call.
  uint32_t interval_ms = 0;
};

/// Lifetime maintenance counters (the wire stats tail).
struct MaintenanceStats {
  uint64_t auto_refreshes = 0;    // background polls that applied records
  uint64_t auto_compactions = 0;  // compactions the policy triggered
  uint64_t bytes_reclaimed = 0;   // old generations' bytes unlinked
  uint64_t deletes_applied = 0;   // delete ops applied by any refresh
};

/// What one compaction did.
struct CatalogCompactionResult {
  bool ok = false;
  /// ok && skipped: nothing wrong, but compaction could not run right now
  /// — an external appender holds the log's flock, or no log exists yet.
  bool skipped = false;
  std::string error;
  uint64_t generation = 0;
  uint64_t bytes_reclaimed = 0;
  std::string snapshot_path;  // the new generation's files
  std::string delta_path;
};

/// The daemon-level lookup facade of the multi-tenant ROADMAP item: many
/// engines behind one id-keyed catalog, the way an object store puts many
/// packs behind one lookup interface. Tenants are registered up front
/// (id -> EngineSource); engines are opened lazily on first Acquire, held
/// behind the RCU EngineState, and — when a max_engines cap is set —
/// evicted least-recently-used. Eviction only drops the catalog's
/// reference: requests in flight keep their shared_ptr pins, so a victim
/// engine finishes its queries and is freed when the last pin drops.
///
/// Locking: the catalog mutex guards the id map and the LRU clock and is
/// never held across an open or a replay. Each entry carries two mutexes —
/// a brief `state_mu` around the published-state pointer, and a long
/// `open_mu` serializing that tenant's opens and refreshes. Acquire on a
/// resident tenant touches only the brief locks, so queries never wait on
/// another tenant's cold open or on a refresh in progress.
class EngineCatalog {
 public:
  /// max_engines caps RESIDENT engines (0 = unlimited). Adopted engines
  /// are pinned residents: they have no source to reopen from and are
  /// never evicted (nor do they count against the cap).
  explicit EngineCatalog(uint32_t max_engines = 0);

  EngineCatalog(const EngineCatalog&) = delete;
  EngineCatalog& operator=(const EngineCatalog&) = delete;

  /// Adds a tenant served from a snapshot source. The first tenant
  /// registered (or adopted) becomes the default for unaddressed requests.
  /// Fails on a duplicate id or an empty snapshot path.
  bool Register(const std::string& id, EngineSource source,
                std::string* error = nullptr);

  /// Adds a tenant around a caller-owned engine (which must outlive the
  /// catalog) — the single-tenant legacy path. `source.snapshot_path` stays
  /// empty; a non-empty `source.delta_path` makes the tenant refreshable,
  /// with `base_checksum` binding the log to the engine's base snapshot
  /// (0 skips the check).
  bool AdoptEngine(const std::string& id, const GmEngine& engine,
                   EngineSource source = {}, uint64_t base_checksum = 0,
                   std::string* error = nullptr);

  /// Resolves an id ("" = default tenant) to its served state, opening the
  /// source on first use. Returns null (and fills *error) for an unknown
  /// id or a failed open. The returned shared_ptr is the caller's pin:
  /// eviction or refresh never invalidates it.
  std::shared_ptr<const EngineState> Acquire(const std::string& id,
                                             std::string* error = nullptr);

  /// Replays the tenant's delta log records past the applied prefix and
  /// publishes the merged engine — PR 5's kRefresh, scoped to one tenant;
  /// every other tenant's engine is untouched. A refresh of a non-resident
  /// tenant opens the base snapshot first and then replays the whole log,
  /// so its response reports exact record counts. Per-tenant serialized:
  /// concurrent refreshes of the SAME tenant queue, the second finding the
  /// log already applied; refreshes of different tenants run concurrently.
  CatalogRefreshResult Refresh(const std::string& id);

  /// Folds the tenant's delta log into a new base snapshot generation and
  /// re-points serving at it — the delta-log answer to `git gc`:
  ///   1. flock the current log (fences external appenders; a held lock
  ///      means a live appender, and the compaction politely skips),
  ///   2. drain the log tail into the served engine (a refresh),
  ///   3. write generation N+1 files — `<snapshot>.gN+1` (SaveEngineSnapshot
  ///      of the served engine) and `<delta>.gN+1` (a fresh empty log bound
  ///      to the new base checksum),
  ///   4. publish the `<snapshot>.head` lineage pointer (THE atomic commit:
  ///      a crash anywhere before this leaves the old lineage fully
  ///      intact, and stale generation files are swept by the next run),
  ///   5. republish the tenant's EngineState with the new storage identity
  ///      (same graph/engine/cache — the data did not change, so in-flight
  ///      queries and cached results stay valid) and unlink the old
  ///      generation's files.
  /// Requires a registered snapshot + delta source. Caller-facing (tests,
  /// future admin RPC); RunMaintenance calls it when the policy trips.
  CatalogCompactionResult Compact(const std::string& id);

  void SetMaintenancePolicy(const MaintenancePolicy& policy);
  MaintenancePolicy maintenance_policy() const;
  MaintenanceStats maintenance_stats() const;

  /// One background maintenance pass over every refreshable RESIDENT
  /// tenant (cold tenants catch up in their lazy open): an O(1) log-size
  /// poll per tenant, a tail refresh for the ones that grew, and — when
  /// the policy's ratio trips — a compaction. Returns how many tenants it
  /// acted on. The server's maintenance thread calls this every
  /// `interval_ms`; tests call it directly for determinism.
  uint32_t RunMaintenance();

  /// Attributes `n` served queries to the tenant ("" = default).
  void CountQuery(const std::string& id, uint64_t n = 1);

  /// Every tenant, sorted by id.
  std::vector<TenantInfo> List() const;

  CatalogStats Stats() const;

  bool Has(const std::string& id) const;

  /// True when at least one tenant has a delta source — the server's
  /// "workers must drop idle engine pins" volatility signal, and the ping
  /// capability bit for refresh.
  bool any_refreshable() const;

  uint32_t max_engines() const { return max_engines_; }

  /// Per-tenant result-cache byte budget attached to engines opened (or
  /// refreshed) from now on; 0 disables caching for them. Configure before
  /// serving starts — already-resident generations keep the cache they
  /// were built with.
  void set_cache_bytes(uint64_t bytes) {
    cache_bytes_.store(bytes, std::memory_order_relaxed);
  }
  uint64_t cache_bytes() const {
    return cache_bytes_.load(std::memory_order_relaxed);
  }

  /// Id serving unaddressed (legacy) requests; "" while nothing is
  /// registered. The first registration sets it; SetDefault overrides.
  std::string default_id() const;
  bool SetDefault(const std::string& id);

 private:
  struct Entry {
    std::string id;
    EngineSource source;
    bool adopted = false;
    std::atomic<uint64_t> queries{0};
    uint64_t last_used = 0;  // catalog LRU clock; guarded by catalog mu_

    /// Serializes this tenant's opens and refreshes (held across the whole
    /// load/replay). Never acquired while holding mu_ or state_mu.
    std::mutex open_mu;
    /// Brief guard around the published state pointer only.
    mutable std::mutex state_mu;
    std::shared_ptr<const EngineState> state;  // null = not resident

    /// Current storage lineage (which generation's files to open); guarded
    /// by open_mu. `source` keeps the CONFIGURED paths — the head file is
    /// named after source.snapshot_path and resolved lazily on first open,
    /// then kept current in memory by Compact (the daemon is the only
    /// compactor of a live tenant; external appenders follow the head).
    Lineage lineage;
    bool lineage_resolved = false;
  };

  /// "" resolves to the default id. Bumps the LRU clock on hit.
  std::shared_ptr<Entry> FindAndTouch(const std::string& id);
  std::shared_ptr<Entry> Find(const std::string& id) const;
  std::shared_ptr<const EngineState> StateOf(const Entry& e) const;
  /// A fresh generation-scoped cache, or null when cache_bytes() is 0.
  std::shared_ptr<ResultCache> MakeCache() const;
  /// Opens e.source (full delta replay included). Caller holds e.open_mu.
  std::shared_ptr<const EngineState> Open(Entry& e, std::string* error);
  /// Resolves e.lineage from the head file on first use. Holds e.open_mu.
  bool ResolveEntryLineage(Entry& e, std::string* error);
  /// Refresh/Compact cores; caller holds e.open_mu. With `fast_tail` (the
  /// maintenance poll) the refresh trusts applied_end_offset: equal log
  /// size means caught up, a larger log is read from the seek point only.
  /// Without it (client kRefresh, compaction drain) the whole chain is
  /// re-validated from the header, which is what detects a log that was
  /// rewritten in place with reused seqnos.
  CatalogRefreshResult RefreshLocked(Entry& e, bool fast_tail = false);
  CatalogCompactionResult CompactLocked(Entry& e);
  /// Evicts least-recently-used evictable residents until the cap holds;
  /// `keep` (the entry just touched) is never the victim.
  void EnforceCap(const Entry* keep);

  const uint32_t max_engines_;

  mutable std::mutex mu_;  // entries_ map, LRU clock, default id
  std::unordered_map<std::string, std::shared_ptr<Entry>> entries_;
  uint64_t clock_ = 0;
  std::string default_id_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> cache_bytes_{kDefaultResultCacheBytes};

  MaintenancePolicy policy_;  // guarded by mu_
  std::atomic<uint64_t> auto_refreshes_{0};
  std::atomic<uint64_t> auto_compactions_{0};
  std::atomic<uint64_t> bytes_reclaimed_{0};
  std::atomic<uint64_t> deletes_applied_{0};
};

}  // namespace rigpm::server

#endif  // RIGPM_SERVER_CATALOG_H_
