#ifndef RIGPM_SERVER_RESULT_CACHE_H_
#define RIGPM_SERVER_RESULT_CACHE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "server/protocol.h"

namespace rigpm::server {

/// Default byte budget of a tenant's result cache (--cache-bytes).
inline constexpr uint64_t kDefaultResultCacheBytes = 64ull << 20;

/// Point-in-time counters of one ResultCache (per-tenant; the server sums
/// them into the global stats tail).
struct ResultCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;    // cold computes (one per singleflight group)
  uint64_t inserts = 0;
  uint64_t evictions = 0;
  uint64_t singleflight_waits = 0;  // requests that joined a miss in flight
  uint64_t bytes_used = 0;
  uint64_t entries = 0;
};

/// Memory-bounded query-result cache, one instance per EngineState
/// generation (server/catalog.h): a refresh or eviction publishes a new
/// state — and with it a fresh empty cache — so invalidation is the RCU
/// swap itself, with no epoch counter for a hit to race against.
///
/// Keys are exact canonical byte strings (PatternQuery::CanonicalEncoding
/// plus the result-relevant options; see QueryServer::HandleQuery), never
/// bare hashes: a hash collision here would silently serve the wrong
/// result, so the full key is compared on every probe. Values are shared
/// immutable responses — a hit hands back the same QueryResponse object
/// that was inserted, serialized fresh per connection.
///
/// Sharded LRU under a byte budget: each shard owns 1/num_shards of the
/// budget, its own lock, its own LRU list, and its own singleflight map —
/// N concurrent identical cold queries compute once (the leader evaluates
/// outside every lock; waiters block on the flight's condvar and share the
/// result). The 64-deep pipelines the epoll core admits make this the
/// difference between one evaluation and sixty-four.
class ResultCache {
 public:
  using Value = std::shared_ptr<const QueryResponse>;

  explicit ResultCache(uint64_t max_bytes, uint32_t num_shards = 8);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Probe without computing: returns the cached value (counting a hit and
  /// bumping LRU recency) or null. Does NOT count a miss — use it where the
  /// caller wants to skip work that GetOrCompute's compute callback would
  /// need (e.g. template instantiation) and will follow up with
  /// GetOrCompute on the same key when cold.
  Value Lookup(const std::string& key);

  /// The cache transaction: a hit returns the cached value; a miss runs
  /// `compute` ONCE across all concurrent callers of the same key (leader
  /// computes with no cache lock held, waiters block and share), inserts
  /// the result under the byte budget (evicting LRU entries to fit;
  /// oversized results are returned but never stored), and returns it.
  /// A null or throwing compute is propagated to every waiter of the
  /// flight and nothing is cached.
  Value GetOrCompute(const std::string& key,
                     const std::function<Value()>& compute);

  ResultCacheStats Stats() const;

  uint64_t max_bytes() const { return max_bytes_; }

 private:
  struct Entry {
    std::string key;
    Value value;
    uint64_t bytes = 0;
  };

  /// One in-flight cold compute; concurrent requests for the same key park
  /// on `cv` until the leader publishes.
  struct Flight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Value value;
  };

  struct Shard {
    std::mutex mu;
    std::list<Entry> lru;  // front = most recent
    std::unordered_map<std::string, std::list<Entry>::iterator> map;
    std::unordered_map<std::string, std::shared_ptr<Flight>> flights;
    uint64_t bytes = 0;
  };

  Shard& ShardFor(const std::string& key);
  /// Inserts under the shard budget (caller must NOT hold the shard lock).
  void Insert(Shard& shard, const std::string& key, const Value& value);
  static uint64_t EntryBytes(const std::string& key, const Value& value);

  const uint64_t max_bytes_;
  const uint32_t num_shards_;
  const uint64_t shard_budget_;
  std::unique_ptr<Shard[]> shards_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> inserts_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> singleflight_waits_{0};
};

}  // namespace rigpm::server

#endif  // RIGPM_SERVER_RESULT_CACHE_H_
