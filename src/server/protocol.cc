#include "server/protocol.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstring>
#include <limits>

namespace rigpm::server {

namespace {

constexpr int kPollSliceMs = 100;

void WriteF64(ByteSink& sink, double v) {
  sink.WriteU64(std::bit_cast<uint64_t>(v));
}

double ReadF64(ByteSource& src) {
  return std::bit_cast<double>(src.ReadU64());
}

void WriteBool(ByteSink& sink, bool v) { sink.WriteU8(v ? 1 : 0); }

bool ReadBool(ByteSource& src) { return src.ReadU8() != 0; }

/// Reads exactly n bytes; distinguishes a clean EOF before the first byte
/// (frame boundary) from a mid-buffer disconnect.
FrameReadStatus ReadExact(int fd, uint8_t* buf, size_t n, std::string* error,
                          const std::atomic<bool>* stop) {
  size_t got = 0;
  while (got < n) {
    if (stop != nullptr && stop->load(std::memory_order_relaxed)) {
      return FrameReadStatus::kStopped;
    }
    pollfd pfd{fd, POLLIN, 0};
    int ready = ::poll(&pfd, 1, kPollSliceMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr) *error = std::strerror(errno);
      return FrameReadStatus::kError;
    }
    if (ready == 0) continue;  // timeout slice; re-check the stop flag
    ssize_t r = ::recv(fd, buf + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      if (error != nullptr) *error = std::strerror(errno);
      return FrameReadStatus::kError;
    }
    if (r == 0) {
      if (got == 0) return FrameReadStatus::kEof;
      if (error != nullptr) *error = "peer disconnected mid-frame";
      return FrameReadStatus::kError;
    }
    got += static_cast<size_t>(r);
  }
  return FrameReadStatus::kOk;
}

}  // namespace

const char* StatusCodeName(StatusCode s) {
  switch (s) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kParseError: return "parse error";
    case StatusCode::kBadRequest: return "bad request";
    case StatusCode::kShuttingDown: return "shutting down";
    case StatusCode::kInternalError: return "internal error";
  }
  return "unknown";
}

// ----------------------------------------------------------- QueryRequest

void QueryRequest::Serialize(ByteSink& sink) const {
  sink.WriteU32(static_cast<uint32_t>(MessageType::kQueryRequest));
  sink.WriteU32(static_cast<uint32_t>(patterns.size()));
  for (const std::string& p : patterns) sink.WriteString(p);
  sink.WriteString(template_name);
  sink.WriteU64(template_seed);
  sink.WriteU64(limit);
  sink.WriteU32(num_threads);
  WriteBool(sink, use_transitive_reduction);
  WriteBool(sink, use_prefilter);
  WriteBool(sink, use_double_simulation);
  sink.WriteU32(max_return_tuples);
}

QueryRequest QueryRequest::Deserialize(ByteSource& src) {
  QueryRequest req;
  uint32_t num_patterns = src.ReadU32();
  // Each pattern costs at least a u64 length on the wire, so a sane count
  // is bounded by the remaining bytes; reject before reserving anything.
  if (num_patterns > src.remaining() / sizeof(uint64_t)) {
    src.Fail("pattern count exceeds request size");
    return req;
  }
  req.patterns.reserve(num_patterns);
  for (uint32_t i = 0; i < num_patterns && src.ok(); ++i) {
    req.patterns.push_back(src.ReadString());
  }
  req.template_name = src.ReadString();
  req.template_seed = src.ReadU64();
  req.limit = src.ReadU64();
  req.num_threads = src.ReadU32();
  req.use_transitive_reduction = ReadBool(src);
  req.use_prefilter = ReadBool(src);
  req.use_double_simulation = ReadBool(src);
  req.max_return_tuples = src.ReadU32();
  return req;
}

// ---------------------------------------------------------- QueryResponse

uint64_t QueryResponse::TotalOccurrences() const {
  uint64_t total = 0;
  for (const QueryResultWire& r : results) total += r.num_occurrences;
  return total;
}

void QueryResponse::Serialize(ByteSink& sink) const {
  sink.WriteU32(static_cast<uint32_t>(MessageType::kQueryResponse));
  sink.WriteU32(static_cast<uint32_t>(status));
  sink.WriteString(error);
  sink.WriteU32(static_cast<uint32_t>(results.size()));
  for (const QueryResultWire& r : results) {
    sink.WriteU64(r.num_occurrences);
    WriteBool(sink, r.hit_limit);
    WriteF64(sink, r.matching_ms);
    WriteF64(sink, r.enumerate_ms);
    sink.WriteU32(static_cast<uint32_t>(r.phase_timings.size()));
    for (const PhaseTimingWire& pt : r.phase_timings) {
      sink.WriteString(pt.name);
      WriteF64(sink, pt.ms);
    }
  }
  sink.WriteU32(tuple_arity);
  sink.WriteVec(tuples);
}

QueryResponse QueryResponse::Deserialize(ByteSource& src) {
  QueryResponse resp;
  resp.status = static_cast<StatusCode>(src.ReadU32());
  resp.error = src.ReadString();
  uint32_t num_results = src.ReadU32();
  if (num_results > src.remaining() / sizeof(uint64_t)) {
    src.Fail("result count exceeds response size");
    return resp;
  }
  resp.results.resize(num_results);
  for (QueryResultWire& r : resp.results) {
    if (!src.ok()) break;
    r.num_occurrences = src.ReadU64();
    r.hit_limit = ReadBool(src);
    r.matching_ms = ReadF64(src);
    r.enumerate_ms = ReadF64(src);
    uint32_t num_phases = src.ReadU32();
    if (num_phases > src.remaining() / sizeof(uint64_t)) {
      src.Fail("phase count exceeds response size");
      return resp;
    }
    r.phase_timings.resize(num_phases);
    for (PhaseTimingWire& pt : r.phase_timings) {
      pt.name = src.ReadString();
      pt.ms = ReadF64(src);
    }
  }
  resp.tuple_arity = src.ReadU32();
  src.ReadVec(&resp.tuples);
  if (resp.tuple_arity != 0 &&
      resp.tuples.size() % resp.tuple_arity != 0) {
    src.Fail("tuple payload is not a multiple of the arity");
  }
  return resp;
}

// ---------------------------------------------------------- StatsResponse

void StatsResponse::Serialize(ByteSink& sink) const {
  sink.WriteU32(static_cast<uint32_t>(MessageType::kStatsResponse));
  sink.WriteU64(uptime_ms);
  sink.WriteU64(connections_accepted);
  sink.WriteU64(active_connections);
  sink.WriteU64(requests_served);
  sink.WriteU64(queries_served);
  sink.WriteU64(errors);
  sink.WriteU64(occurrences_emitted);
  WriteF64(sink, latency_p50_ms);
  WriteF64(sink, latency_p99_ms);
  // Appended last: a reader built before these fields existed still parses
  // every earlier field correctly (the wire format carries no version).
  sink.WriteU64(refreshes);
  sink.WriteU64(dispatch_depth);
  WriteF64(sink, accept_p50_ms);
  WriteF64(sink, accept_p99_ms);
  // Engine-catalog fields, appended by the multi-tenant core (revision 2).
  sink.WriteU64(graphs_registered);
  sink.WriteU64(graphs_resident);
  sink.WriteU64(catalog_hits);
  sink.WriteU64(catalog_misses);
  sink.WriteU64(catalog_evictions);
  sink.WriteU32(static_cast<uint32_t>(tenants.size()));
  for (const GraphInfoWire& t : tenants) t.Serialize(sink);
  // Result-cache + write-coalescing fields, appended after the tenant list
  // (extending GraphInfoWire itself would desynchronize older readers
  // mid-stream; a new appended section is merely absent for them).
  sink.WriteU64(cache_hits);
  sink.WriteU64(cache_misses);
  sink.WriteU64(cache_inserts);
  sink.WriteU64(cache_evictions);
  sink.WriteU64(cache_singleflight_waits);
  sink.WriteU64(cache_bytes_used);
  sink.WriteU64(cache_entries);
  sink.WriteU64(flushes);
  sink.WriteU64(frames_flushed);
  sink.WriteU32(static_cast<uint32_t>(tenant_caches.size()));
  for (const TenantCacheWire& t : tenant_caches) t.Serialize(sink);
  sink.WriteU64(auto_refreshes);
  sink.WriteU64(auto_compactions);
  sink.WriteU64(maintenance_bytes_reclaimed);
  sink.WriteU64(deletes_applied);
}

StatsResponse StatsResponse::Deserialize(ByteSource& src) {
  StatsResponse s;
  s.uptime_ms = src.ReadU64();
  s.connections_accepted = src.ReadU64();
  s.active_connections = src.ReadU64();
  s.requests_served = src.ReadU64();
  s.queries_served = src.ReadU64();
  s.errors = src.ReadU64();
  s.occurrences_emitted = src.ReadU64();
  s.latency_p50_ms = ReadF64(src);
  s.latency_p99_ms = ReadF64(src);
  // Appended after the original fields; absent from pre-refresh daemons.
  // Tolerating the short payload keeps a new client's --stats working
  // against a still-running old daemon (they are long-lived on purpose).
  s.refreshes = src.remaining() >= sizeof(uint64_t) ? src.ReadU64() : 0;
  // Event-loop fields, appended by the epoll core (one release later).
  s.dispatch_depth = src.remaining() >= sizeof(uint64_t) ? src.ReadU64() : 0;
  s.accept_p50_ms = src.remaining() >= sizeof(uint64_t) ? ReadF64(src) : 0.0;
  s.accept_p99_ms = src.remaining() >= sizeof(uint64_t) ? ReadF64(src) : 0.0;
  // Engine-catalog fields, appended by the multi-tenant core. The tenant
  // list is guarded by its count field: a pre-catalog daemon's payload
  // simply ends here and the list stays empty.
  s.graphs_registered = src.remaining() >= sizeof(uint64_t) ? src.ReadU64() : 0;
  s.graphs_resident = src.remaining() >= sizeof(uint64_t) ? src.ReadU64() : 0;
  s.catalog_hits = src.remaining() >= sizeof(uint64_t) ? src.ReadU64() : 0;
  s.catalog_misses = src.remaining() >= sizeof(uint64_t) ? src.ReadU64() : 0;
  s.catalog_evictions = src.remaining() >= sizeof(uint64_t) ? src.ReadU64() : 0;
  if (src.remaining() >= sizeof(uint32_t)) {
    uint32_t num_tenants = src.ReadU32();
    if (num_tenants > src.remaining() / sizeof(uint64_t)) {
      src.Fail("tenant count exceeds response size");
      return s;
    }
    s.tenants.resize(num_tenants);
    for (GraphInfoWire& t : s.tenants) {
      if (!src.ok()) break;
      t = GraphInfoWire::Deserialize(src);
    }
  }
  // Result-cache + write-coalescing fields, appended one release later.
  s.cache_hits = src.remaining() >= sizeof(uint64_t) ? src.ReadU64() : 0;
  s.cache_misses = src.remaining() >= sizeof(uint64_t) ? src.ReadU64() : 0;
  s.cache_inserts = src.remaining() >= sizeof(uint64_t) ? src.ReadU64() : 0;
  s.cache_evictions = src.remaining() >= sizeof(uint64_t) ? src.ReadU64() : 0;
  s.cache_singleflight_waits =
      src.remaining() >= sizeof(uint64_t) ? src.ReadU64() : 0;
  s.cache_bytes_used = src.remaining() >= sizeof(uint64_t) ? src.ReadU64() : 0;
  s.cache_entries = src.remaining() >= sizeof(uint64_t) ? src.ReadU64() : 0;
  s.flushes = src.remaining() >= sizeof(uint64_t) ? src.ReadU64() : 0;
  s.frames_flushed = src.remaining() >= sizeof(uint64_t) ? src.ReadU64() : 0;
  if (src.remaining() >= sizeof(uint32_t)) {
    uint32_t num_caches = src.ReadU32();
    if (num_caches > src.remaining() / sizeof(uint64_t)) {
      src.Fail("tenant cache count exceeds response size");
      return s;
    }
    s.tenant_caches.resize(num_caches);
    for (TenantCacheWire& t : s.tenant_caches) {
      if (!src.ok()) break;
      t = TenantCacheWire::Deserialize(src);
    }
  }
  s.auto_refreshes =
      src.remaining() >= sizeof(uint64_t) ? src.ReadU64() : 0;
  s.auto_compactions =
      src.remaining() >= sizeof(uint64_t) ? src.ReadU64() : 0;
  s.maintenance_bytes_reclaimed =
      src.remaining() >= sizeof(uint64_t) ? src.ReadU64() : 0;
  s.deletes_applied =
      src.remaining() >= sizeof(uint64_t) ? src.ReadU64() : 0;
  return s;
}

// ----------------------------------------------------------- catalog wire

void GraphInfoWire::Serialize(ByteSink& sink) const {
  sink.WriteString(id);
  WriteBool(sink, resident);
  WriteBool(sink, refreshable);
  sink.WriteU64(applied_seqno);
  sink.WriteU64(queries);
}

GraphInfoWire GraphInfoWire::Deserialize(ByteSource& src) {
  GraphInfoWire g;
  g.id = src.ReadString();
  g.resident = ReadBool(src);
  g.refreshable = ReadBool(src);
  g.applied_seqno = src.ReadU64();
  g.queries = src.ReadU64();
  return g;
}

void TenantCacheWire::Serialize(ByteSink& sink) const {
  sink.WriteString(id);
  sink.WriteU64(hits);
  sink.WriteU64(misses);
  sink.WriteU64(inserts);
  sink.WriteU64(evictions);
  sink.WriteU64(singleflight_waits);
  sink.WriteU64(bytes_used);
  sink.WriteU64(entries);
}

TenantCacheWire TenantCacheWire::Deserialize(ByteSource& src) {
  TenantCacheWire t;
  t.id = src.ReadString();
  t.hits = src.ReadU64();
  t.misses = src.ReadU64();
  t.inserts = src.ReadU64();
  t.evictions = src.ReadU64();
  t.singleflight_waits = src.ReadU64();
  t.bytes_used = src.ReadU64();
  t.entries = src.ReadU64();
  return t;
}

void ListGraphsResponse::Serialize(ByteSink& sink) const {
  sink.WriteU32(static_cast<uint32_t>(MessageType::kListGraphsResponse));
  sink.WriteU32(static_cast<uint32_t>(status));
  sink.WriteString(error);
  sink.WriteString(default_id);
  sink.WriteU32(static_cast<uint32_t>(graphs.size()));
  for (const GraphInfoWire& g : graphs) g.Serialize(sink);
}

ListGraphsResponse ListGraphsResponse::Deserialize(ByteSource& src) {
  ListGraphsResponse resp;
  resp.status = static_cast<StatusCode>(src.ReadU32());
  resp.error = src.ReadString();
  resp.default_id = src.ReadString();
  uint32_t num_graphs = src.ReadU32();
  if (num_graphs > src.remaining() / sizeof(uint64_t)) {
    src.Fail("graph count exceeds response size");
    return resp;
  }
  resp.graphs.resize(num_graphs);
  for (GraphInfoWire& g : resp.graphs) {
    if (!src.ok()) break;
    g = GraphInfoWire::Deserialize(src);
  }
  return resp;
}

// -------------------------------------------------------- RefreshResponse

void RefreshResponse::Serialize(ByteSink& sink) const {
  sink.WriteU32(static_cast<uint32_t>(MessageType::kRefreshResponse));
  sink.WriteU32(static_cast<uint32_t>(status));
  sink.WriteString(error);
  sink.WriteU64(records_applied);
  sink.WriteU64(edges_in_records);
  sink.WriteU64(last_seqno);
  sink.WriteU64(num_nodes);
  sink.WriteU64(num_edges);
  WriteBool(sink, log_truncated);
  WriteF64(sink, refresh_ms);
}

RefreshResponse RefreshResponse::Deserialize(ByteSource& src) {
  RefreshResponse r;
  r.status = static_cast<StatusCode>(src.ReadU32());
  r.error = src.ReadString();
  r.records_applied = src.ReadU64();
  r.edges_in_records = src.ReadU64();
  r.last_seqno = src.ReadU64();
  r.num_nodes = src.ReadU64();
  r.num_edges = src.ReadU64();
  r.log_truncated = ReadBool(src);
  r.refresh_ms = ReadF64(src);
  return r;
}

// ------------------------------------------------------------- frame I/O

FrameReadStatus ReadFrame(int fd, uint32_t max_bytes,
                          std::vector<uint8_t>* out, std::string* error,
                          const std::atomic<bool>* stop) {
  uint8_t len_bytes[sizeof(uint32_t)];
  FrameReadStatus st =
      ReadExact(fd, len_bytes, sizeof(len_bytes), error, stop);
  if (st != FrameReadStatus::kOk) return st;
  uint32_t len = 0;
  std::memcpy(&len, len_bytes, sizeof(len));
  if (len > max_bytes) {
    if (error != nullptr) {
      *error = "frame of " + std::to_string(len) +
               " bytes exceeds the limit of " + std::to_string(max_bytes);
    }
    return FrameReadStatus::kOversize;
  }
  out->resize(len);
  return ReadExact(fd, out->data(), len, error, stop);
}

bool WriteFrame(int fd, const ByteSink& payload, std::string* error) {
  if (payload.size() > std::numeric_limits<uint32_t>::max()) {
    // A u32 length prefix cannot represent this; truncating it would emit
    // a corrupt frame and desynchronize the stream.
    if (error != nullptr) {
      *error = "payload of " + std::to_string(payload.size()) +
               " bytes does not fit a u32 length prefix";
    }
    return false;
  }
  // Gather the 4-byte prefix and the payload into one sendmsg: no copy of
  // a possibly-multi-MB payload, and one packet instead of a write-write
  // sequence (which Nagle + delayed ACK would penalize on TCP).
  uint32_t len = static_cast<uint32_t>(payload.size());
  iovec iov[2];
  iov[0].iov_base = &len;
  iov[0].iov_len = sizeof(len);
  iov[1].iov_base =
      const_cast<uint8_t*>(payload.data().data());  // sendmsg won't write
  iov[1].iov_len = payload.size();
  msghdr msg{};
  msg.msg_iov = iov;
  msg.msg_iovlen = 2;
  while (msg.msg_iovlen > 0) {
    ssize_t r = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr) *error = std::strerror(errno);
      return false;
    }
    // Drop fully-sent iovec entries, advance into a partially-sent one.
    auto done = static_cast<size_t>(r);
    while (msg.msg_iovlen > 0 && done >= msg.msg_iov[0].iov_len) {
      done -= msg.msg_iov[0].iov_len;
      ++msg.msg_iov;
      --msg.msg_iovlen;
    }
    if (msg.msg_iovlen > 0 && done > 0) {
      msg.msg_iov[0].iov_base =
          static_cast<uint8_t*>(msg.msg_iov[0].iov_base) + done;
      msg.msg_iov[0].iov_len -= done;
    }
  }
  return true;
}

MessageType ReadMessageType(ByteSource& src) {
  uint32_t raw = src.ReadU32();
  if (!src.ok()) return static_cast<MessageType>(0);
  return static_cast<MessageType>(raw);
}

ByteSink MakeErrorResponse(StatusCode status, const std::string& message) {
  ByteSink sink;
  sink.WriteU32(static_cast<uint32_t>(MessageType::kErrorResponse));
  sink.WriteU32(static_cast<uint32_t>(status));
  sink.WriteString(message);
  return sink;
}

ByteSink WrapTagged(MessageType envelope, uint64_t request_id,
                    const ByteSink& inner) {
  ByteSink sink;
  sink.WriteU32(static_cast<uint32_t>(envelope));
  sink.WriteU64(request_id);
  sink.WriteRaw(inner.data().data(), inner.size());
  return sink;
}

uint64_t ReadTaggedId(ByteSource& src) { return src.ReadU64(); }

ByteSink WrapScoped(const std::string& graph_id, const ByteSink& inner) {
  ByteSink sink;
  sink.WriteU32(static_cast<uint32_t>(MessageType::kScopedRequest));
  sink.WriteString(graph_id);
  sink.WriteRaw(inner.data().data(), inner.size());
  return sink;
}

std::string ReadScopedId(ByteSource& src) { return src.ReadString(); }

ByteSink MakePingResponse(const ServerCapabilities& caps) {
  ByteSink sink;
  sink.WriteU32(static_cast<uint32_t>(MessageType::kPingResponse));
  sink.WriteU32(caps.revision);
  sink.WriteU32(caps.capabilities);
  return sink;
}

ServerCapabilities ParsePingResponse(ByteSource& src) {
  ServerCapabilities caps;  // revision-1 defaults for a bare pong
  if (src.remaining() >= 2 * sizeof(uint32_t)) {
    caps.revision = src.ReadU32();
    caps.capabilities = src.ReadU32();
  }
  return caps;
}

}  // namespace rigpm::server
