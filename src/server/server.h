#ifndef RIGPM_SERVER_SERVER_H_
#define RIGPM_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "engine/gm_engine.h"
#include "server/catalog.h"
#include "server/protocol.h"
#include "storage/snapshot_io.h"

namespace rigpm::server {

/// Where and how the daemon listens. Exactly one transport is used: a
/// Unix-domain socket when `unix_path` is set, else TCP on `host:port`
/// (port 0 binds an ephemeral port, readable from QueryServer::port()).
struct ServerConfig {
  std::string unix_path;
  std::string host = "127.0.0.1";
  uint16_t port = 0;

  /// Worker pool size (0 = hardware concurrency). Workers evaluate parsed
  /// requests; they never own a connection, so any number of clients can
  /// share a small pool.
  uint32_t num_workers = 4;

  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;

  /// Hard server-side cap on occurrence tuples echoed per response,
  /// regardless of what the request asks for.
  uint32_t max_return_tuples = 100000;

  /// Per-tenant result-cache byte budget (server/result_cache.h); 0
  /// disables caching. Applies to the legacy single-tenant constructor —
  /// catalog-constructed servers configure the budget on the catalog
  /// (set_cache_bytes) before registering tenants.
  uint64_t cache_bytes = kDefaultResultCacheBytes;

  /// Honor kShutdownRequest frames (handy for scripted smoke tests; a
  /// deployment that only trusts signals can turn it off).
  bool allow_remote_shutdown = true;

  /// Per-connection cap on tagged requests in flight at once; frames past
  /// the cap wait in the connection's ready queue (the client is never
  /// errored, just back-pressured via paused reads).
  uint32_t max_pipeline = 64;

  /// Open-connection ceiling (0 = unlimited). Accepts past the cap are
  /// closed immediately — cheaper than letting an fd flood exhaust the
  /// process's descriptor table.
  uint32_t max_connections = 0;

  /// Close connections with no in-flight work and no bytes received for
  /// this long (0 = never). The idle-connection knob: thousands of idle
  /// sockets cost only memory under the event loop, but a deployment can
  /// still bound them.
  uint32_t idle_timeout_ms = 0;

  /// Delta-log refresh source (storage/delta_log.h) for the single-tenant
  /// legacy constructor — it becomes the adopted tenant's EngineSource.
  /// When set, a kRefreshRequest replays the log's new records over the
  /// served graph and swaps the refreshed engine in without a restart.
  /// Empty disables refresh (kRefreshRequest then draws an error
  /// response). Catalog-constructed servers configure delta sources per
  /// tenant in the catalog instead.
  std::string delta_path;

  /// Stored payload checksum of the base snapshot the engine was loaded
  /// from (SnapshotInfo::stored_checksum). When nonzero, a refresh rejects
  /// a delta log bound to a different base; 0 skips the check (engines not
  /// loaded from a snapshot have no checksum to bind to).
  uint64_t base_checksum = 0;

  /// IO mode for reading the delta log on refresh. Defaults to the
  /// streaming read (NOT the snapshot default of mmap): a recovering
  /// DeltaWriter may ftruncate a torn tail concurrently, and shrinking a
  /// file under a live mapping raises SIGBUS in the reader — a slurped
  /// copy of a small log cannot be yanked away mid-replay.
  SnapshotIoMode delta_io = SnapshotIoMode::kRead;

  /// Maintenance-thread poll period (catalog.h MaintenancePolicy); 0 = no
  /// thread. Each tick polls every refreshable resident tenant's log tail
  /// (an O(1) size check per tenant) and applies new records without any
  /// client sending kRefresh.
  uint32_t maintenance_interval_ms = 0;

  /// Auto-compaction threshold: re-snapshot a tenant when its delta log
  /// outgrows this fraction of its base snapshot. 0 disables. Takes effect
  /// only with a maintenance thread (maintenance_interval_ms > 0).
  double auto_compact_ratio = 0.0;
};

/// Point-in-time serving counters (also what a kStatsRequest returns).
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t active_connections = 0;  // connections currently open
  uint64_t requests_served = 0;
  uint64_t queries_served = 0;
  uint64_t errors = 0;
  uint64_t occurrences_emitted = 0;
  uint64_t refreshes = 0;
  uint64_t dispatch_depth = 0;  // parsed requests waiting for a worker
  uint64_t flushes = 0;         // sendmsg gather calls that moved bytes
  uint64_t frames_flushed = 0;  // whole response frames those calls retired
  /// Catalog maintenance counters (all zero without a maintenance thread).
  uint64_t auto_refreshes = 0;
  uint64_t auto_compactions = 0;
  uint64_t maintenance_bytes_reclaimed = 0;
  uint64_t deletes_applied = 0;
  /// Result-cache totals summed over every resident tenant's current
  /// generation (zero when caching is off).
  ResultCacheStats cache;
  double latency_p50_ms = 0.0;
  double latency_p99_ms = 0.0;
  double accept_p50_ms = 0.0;  // accept() to first response byte
  double accept_p99_ms = 0.0;
  double uptime_ms = 0.0;
};

/// The long-lived serving core the ROADMAP's daemon-mode item asks for: one
/// process serves pattern queries over the frame protocol of
/// server/protocol.h, from one or many graphs behind an EngineCatalog
/// (server/catalog.h).
///
/// Multi-tenancy: every request resolves a graph id — the kScopedRequest
/// envelope names one explicitly; an unscoped request goes to the catalog's
/// default tenant, which is how every pre-v2 client keeps working against a
/// multi-graph daemon. Workers pin engines per tenant; the catalog opens
/// sources lazily and (with a max_engines cap) evicts least-recently-used,
/// never under an in-flight query.
///
/// Threading: one event-loop thread owns every socket — it accepts, does
/// non-blocking frame reassembly per connection (epoll, level-triggered
/// with EPOLLONESHOT re-arm), and flushes per-connection write queues.
/// Complete requests are handed to a fixed worker pool over a dispatch
/// queue; each worker owns a reusable EvalContext (the same per-worker-
/// scratch design as GmEngine::EvaluateBatch), so per-query results are
/// identical to in-process evaluation; multi-pattern requests go through
/// EvaluateBatch. Workers never touch sockets: a finished response is
/// queued on its connection and the loop is woken over an eventfd, which
/// keeps every fd single-writer and lets thousands of idle or slow
/// connections coexist with a handful of workers.
///
/// Pipelining: a kTaggedRequest envelope carries a client-chosen request
/// id; up to max_pipeline tagged requests per connection run concurrently
/// and complete in any order. Untagged frames keep the original semantics
/// — served one at a time, in order.
///
/// Live refresh: every served engine lives behind a shared_ptr<EngineState>
/// that workers re-acquire per request (RCU-style). A kRefreshRequest
/// replays the addressed tenant's delta log records, rebuilds the
/// reachability index over the merged graph, and publishes the new state —
/// per tenant, every other graph untouched; queries already running keep
/// their reference to the old engine until they finish, so nothing blocks
/// and no connection drops. The old state is freed when its last in-flight
/// query completes.
///
/// Shutdown: Stop() (or a kShutdownRequest, or the daemon's SIGINT/SIGTERM
/// handler calling RequestStop()) stops accepting, lets dispatched requests
/// finish, flushes their responses (a shutdown ACK reaches its client),
/// closes every connection, and joins all threads.
class QueryServer {
 public:
  /// Multi-tenant form: serves every graph registered in `catalog`
  /// (non-null; register tenants before Start so clients never race the
  /// catalog setup). The catalog may be shared with other readers.
  QueryServer(std::shared_ptr<EngineCatalog> catalog, ServerConfig config);

  /// Single-tenant legacy form: adopts `engine` (which must outlive the
  /// server) as the catalog's sole tenant, "default". When
  /// config.delta_path is set, refreshes build *owned* successor engines
  /// internally; the caller's engine only serves until the first refresh.
  QueryServer(const GmEngine& engine, ServerConfig config);
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Binds, listens, and spawns the event-loop and worker threads.
  bool Start(std::string* error);

  /// Bound TCP port (after Start; 0 for Unix-domain servers).
  uint16_t port() const { return bound_port_; }

  /// Human-readable listening address ("unix:/path" or "host:port").
  std::string endpoint() const;

  bool running() const { return running_.load(); }

  /// Asynchronous stop signal — safe from any worker or from the daemon's
  /// signal-watching loop. Wait()/Stop() complete the shutdown.
  void RequestStop();
  bool stop_requested() const { return stop_.load(); }

  /// Blocks until a stop is requested, then tears down (idempotent).
  void Wait();

  /// Synchronous shutdown: RequestStop + drain + join. Idempotent.
  void Stop();

  ServerStats Snapshot() const;

  /// The catalog behind the daemon — register/inspect tenants through it.
  EngineCatalog& catalog() { return *catalog_; }
  const EngineCatalog& catalog() const { return *catalog_; }

  /// Delta-log sequence number the default tenant's engine includes (0
  /// before any refresh). Test/diagnostic hook.
  uint64_t applied_seqno() const;

 private:
  /// A worker's pin on one tenant: the acquired state plus the EvalContext
  /// built against it. Sync re-acquires and rebuilds the context when the
  /// catalog published a newer state (refresh) since the last request.
  struct TenantSlot {
    std::shared_ptr<const EngineState> state;
    std::optional<EvalContext> ctx;
  };

  /// A worker's view of the served engines, one slot per tenant it has
  /// touched. Cleared between requests on volatile catalogs (refreshable
  /// or capped) so idle workers hold no superseded or evicted engines.
  struct WorkerEngine {
    std::unordered_map<std::string, TenantSlot> slots;
  };

  /// Per-connection state machine. The event loop owns the fd and all
  /// read-side fields; `mu` guards only what workers also touch (the write
  /// queue and in-flight accounting).
  struct Connection {
    int fd = -1;
    std::chrono::steady_clock::time_point accept_time;
    std::chrono::steady_clock::time_point last_activity;

    // --- event-loop-only (no lock) ---
    std::vector<uint8_t> rbuf;  // unparsed bytes; rpos = consumed prefix
    size_t rpos = 0;
    std::deque<std::vector<uint8_t>> ready;  // parsed frames, not dispatched
    bool first_byte_recorded = false;
    bool in_epoll = false;
    bool poisoned = false;  // oversize length prefix; stop reading/parsing
    bool eof = false;       // clean FIN; reap once quiesced
    bool io_dead = false;   // hard read error; close on next settle

    // --- shared with workers ---
    std::mutex mu;
    std::deque<std::vector<uint8_t>> wq;  // framed responses (length
                                          // prefix included)
    size_t wq_front_off = 0;              // sent bytes of wq.front()
    size_t wq_bytes = 0;
    uint32_t inflight = 0;           // dispatched, not yet completed
    bool untagged_inflight = false;  // serializes untagged requests
    bool close_after_flush = false;
    bool closed = false;  // loop closed the fd; completions are dropped
  };

  /// One parsed request frame on its way to a worker.
  struct WorkItem {
    std::shared_ptr<Connection> conn;
    std::vector<uint8_t> frame;  // payload (u32 type + body)
  };

  void EventLoop();
  void WorkerLoop(size_t worker_index);
  /// Maintenance thread body: RunMaintenance() on the catalog every
  /// config_.maintenance_interval_ms until stop (cv-interruptible sleep).
  void MaintenanceLoop();

  // Event-loop internals (called only from the loop thread).
  void AcceptNewConnections();
  void HandleReadable(const std::shared_ptr<Connection>& conn);
  void ParseFrames(const std::shared_ptr<Connection>& conn);
  void PumpDispatch(const std::shared_ptr<Connection>& conn);
  /// Flushes as much of the write queue as the socket accepts. Returns
  /// false when the connection must close (error, or drained after
  /// close_after_flush).
  bool FlushWrites(const std::shared_ptr<Connection>& conn);
  /// Post-event/post-completion settling: flush, dispatch newly unblocked
  /// frames, reap a quiesced connection, re-arm epoll interest. Returns
  /// false when the connection was closed.
  bool SettleConnection(const std::shared_ptr<Connection>& conn);
  void UpdateInterest(const std::shared_ptr<Connection>& conn);
  void CloseConnection(const std::shared_ptr<Connection>& conn);
  void CloseIdleConnections();
  bool Drained();

  /// Worker side: evaluates one parsed frame and queues the response.
  void ProcessItem(WorkItem item, WorkerEngine& we);
  void FinishRequest(const std::shared_ptr<Connection>& conn,
                     std::vector<uint8_t> framed_response, bool was_untagged,
                     bool close_after);
  void WakeLoop();

  /// Resolves graph_id ("" = default) through the catalog into the
  /// worker's slot for that tenant, re-pinning when the published state
  /// changed. Returns null with *error filled (and *bad_request set for an
  /// unknown id) when the tenant cannot be served.
  TenantSlot* SyncWorkerEngine(WorkerEngine& we, const std::string& graph_id,
                               std::string* error, bool* bad_request);

  /// Evaluates one query request on the tenant's pinned engine; returns
  /// the response payload.
  ByteSink HandleQuery(const QueryRequest& req, const std::string& graph_id,
                       TenantSlot& slot);
  ByteSink HandleStats() const;
  /// Replays the tenant's new delta records and swaps its engine
  /// (per-tenant serialized inside the catalog).
  ByteSink HandleRefresh(const std::string& graph_id);
  ByteSink HandleListGraphs() const;

  void RecordLatency(double ms);
  void RecordAcceptLatency(double ms);

  ServerConfig config_;

  /// The served engines. Workers acquire per request; refresh and eviction
  /// publish through it. Never null.
  std::shared_ptr<EngineCatalog> catalog_;
  /// Snapshot of "can an engine be superseded or evicted" taken at Start;
  /// tells workers to drop their pins between requests.
  bool engines_volatile_ = false;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: workers wake the loop for completions
  uint16_t bound_port_ = 0;
  /// True only when THIS instance bound config_.unix_path; Stop() must not
  /// unlink a path it never owned (e.g. after Start() lost it to a live
  /// daemon), or destroying the failed server would unlink the live one.
  bool bound_unix_ = false;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};

  std::thread loop_thread_;
  std::vector<std::thread> workers_;

  // Maintenance thread (spawned only when maintenance_interval_ms > 0).
  std::thread maintenance_thread_;
  std::mutex maint_mu_;
  std::condition_variable maint_cv_;

  // Connections, keyed by fd. Loop-owned; Snapshot() reads counters from
  // stats_mu_ instead of touching this map.
  std::unordered_map<int, std::shared_ptr<Connection>> conns_;

  // Parsed requests waiting for a worker.
  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<WorkItem> dispatch_q_;

  // Connections with fresh completions, for the loop to flush/re-arm.
  std::mutex compl_mu_;
  std::vector<std::shared_ptr<Connection>> completions_;

  std::atomic<uint64_t> inflight_total_{0};  // dispatched, not completed

  std::chrono::steady_clock::time_point start_time_;

  // Serving counters; the latency rings keep the most recent samples for
  // the percentile estimates.
  mutable std::mutex stats_mu_;
  uint64_t connections_accepted_ = 0;
  uint64_t active_connections_ = 0;
  uint64_t requests_served_ = 0;
  uint64_t queries_served_ = 0;
  uint64_t errors_ = 0;
  uint64_t occurrences_emitted_ = 0;
  uint64_t refreshes_ = 0;
  uint64_t flushes_ = 0;
  uint64_t frames_flushed_ = 0;
  std::vector<double> latency_ring_;
  size_t latency_next_ = 0;
  bool latency_wrapped_ = false;
  std::vector<double> accept_ring_;
  size_t accept_next_ = 0;
  bool accept_wrapped_ = false;
};

}  // namespace rigpm::server

#endif  // RIGPM_SERVER_SERVER_H_
