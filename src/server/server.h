#ifndef RIGPM_SERVER_SERVER_H_
#define RIGPM_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/gm_engine.h"
#include "server/protocol.h"

namespace rigpm::server {

/// Where and how the daemon listens. Exactly one transport is used: a
/// Unix-domain socket when `unix_path` is set, else TCP on `host:port`
/// (port 0 binds an ephemeral port, readable from QueryServer::port()).
struct ServerConfig {
  std::string unix_path;
  std::string host = "127.0.0.1";
  uint16_t port = 0;

  /// Worker pool size (0 = hardware concurrency). Each worker owns one
  /// EvalContext and serves one connection at a time.
  uint32_t num_workers = 4;

  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;

  /// Hard server-side cap on occurrence tuples echoed per response,
  /// regardless of what the request asks for.
  uint32_t max_return_tuples = 100000;

  /// Honor kShutdownRequest frames (handy for scripted smoke tests; a
  /// deployment that only trusts signals can turn it off).
  bool allow_remote_shutdown = true;
};

/// Point-in-time serving counters (also what a kStatsRequest returns).
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t active_connections = 0;
  uint64_t requests_served = 0;
  uint64_t queries_served = 0;
  uint64_t errors = 0;
  uint64_t occurrences_emitted = 0;
  double latency_p50_ms = 0.0;
  double latency_p99_ms = 0.0;
  double uptime_ms = 0.0;
};

/// The long-lived serving core the ROADMAP's daemon-mode item asks for: one
/// process loads an engine (typically warm-started from a snapshot,
/// storage/snapshot.h) and answers pattern queries over the frame protocol
/// of server/protocol.h.
///
/// Threading: one acceptor thread hands accepted sockets to a fixed worker
/// pool over a queue. Each worker owns a reusable EvalContext (the same
/// per-worker-scratch design as GmEngine::EvaluateBatch) and serves its
/// connection request-by-request, so per-query results are identical to
/// in-process evaluation; multi-pattern requests go through EvaluateBatch.
///
/// Shutdown: Stop() (or a kShutdownRequest, or the daemon's SIGINT/SIGTERM
/// handler calling RequestStop()) stops accepting, lets in-flight requests
/// finish, closes queued-but-unserved connections, and joins all threads.
class QueryServer {
 public:
  /// The engine (and the graph it references) must outlive the server.
  QueryServer(const GmEngine& engine, ServerConfig config);
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Binds, listens, and spawns the acceptor and worker threads.
  bool Start(std::string* error);

  /// Bound TCP port (after Start; 0 for Unix-domain servers).
  uint16_t port() const { return bound_port_; }

  /// Human-readable listening address ("unix:/path" or "host:port").
  std::string endpoint() const;

  bool running() const { return running_.load(); }

  /// Asynchronous stop signal — safe from any worker or from the daemon's
  /// signal-watching loop. Wait()/Stop() complete the shutdown.
  void RequestStop();
  bool stop_requested() const { return stop_.load(); }

  /// Blocks until a stop is requested, then tears down (idempotent).
  void Wait();

  /// Synchronous shutdown: RequestStop + drain + join. Idempotent.
  void Stop();

  ServerStats Snapshot() const;

 private:
  void AcceptLoop();
  void WorkerLoop(size_t worker_index);
  void ServeConnection(int fd, EvalContext& ctx);

  /// Evaluates one query request; returns the response payload.
  ByteSink HandleQuery(const QueryRequest& req, EvalContext& ctx);
  ByteSink HandleStats() const;

  void RecordLatency(double ms);

  const GmEngine& engine_;
  ServerConfig config_;

  int listen_fd_ = -1;
  uint16_t bound_port_ = 0;
  /// True only when THIS instance bound config_.unix_path; Stop() must not
  /// unlink a path it never owned (e.g. after Start() lost it to a live
  /// daemon), or destroying the failed server would unlink the live one.
  bool bound_unix_ = false;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};

  std::thread acceptor_;
  std::vector<std::thread> workers_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_fds_;

  std::chrono::steady_clock::time_point start_time_;

  // Serving counters; the latency ring keeps the most recent samples for
  // the percentile estimates.
  mutable std::mutex stats_mu_;
  uint64_t connections_accepted_ = 0;
  uint64_t active_connections_ = 0;
  uint64_t requests_served_ = 0;
  uint64_t queries_served_ = 0;
  uint64_t errors_ = 0;
  uint64_t occurrences_emitted_ = 0;
  std::vector<double> latency_ring_;
  size_t latency_next_ = 0;
  bool latency_wrapped_ = false;
};

}  // namespace rigpm::server

#endif  // RIGPM_SERVER_SERVER_H_
