#include "server/result_cache.h"

#include <algorithm>
#include <utility>

#include "util/serde.h"

namespace rigpm::server {

ResultCache::ResultCache(uint64_t max_bytes, uint32_t num_shards)
    : max_bytes_(max_bytes),
      num_shards_(std::max(1u, num_shards)),
      shard_budget_(max_bytes_ / std::max(1u, num_shards)),
      shards_(new Shard[std::max(1u, num_shards)]) {}

ResultCache::Shard& ResultCache::ShardFor(const std::string& key) {
  // Seeded away from CanonicalFingerprint so shard choice and any
  // key-embedded digests stay independent.
  uint64_t h = Checksum64(key.data(), key.size(), 0x082efa98ec4e6c89ull);
  return shards_[h % num_shards_];
}

uint64_t ResultCache::EntryBytes(const std::string& key, const Value& value) {
  // Accounting approximation: the dominant payloads (key bytes, echoed
  // tuples, per-query result rows) plus a fixed overhead for the list and
  // map nodes. Phase-timing strings are small and bounded; close enough
  // for a budget knob.
  uint64_t bytes = sizeof(Entry) + 2 * key.size() + 128;
  bytes += value->error.size();
  bytes += value->tuples.size() * sizeof(NodeId);
  for (const QueryResultWire& r : value->results) {
    bytes += sizeof(QueryResultWire);
    for (const PhaseTimingWire& t : r.phase_timings) {
      bytes += sizeof(PhaseTimingWire) + t.name.size();
    }
  }
  return bytes;
}

ResultCache::Value ResultCache::Lookup(const std::string& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) return nullptr;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->value;
}

void ResultCache::Insert(Shard& shard, const std::string& key,
                         const Value& value) {
  const uint64_t bytes = EntryBytes(key, value);
  if (bytes > shard_budget_) return;  // never evict the whole shard for one
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.map.find(key) != shard.map.end()) return;  // raced: keep first
  while (shard.bytes + bytes > shard_budget_ && !shard.lru.empty()) {
    Entry& victim = shard.lru.back();
    shard.bytes -= victim.bytes;
    shard.map.erase(victim.key);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  shard.lru.push_front(Entry{key, value, bytes});
  shard.map.emplace(key, shard.lru.begin());
  shard.bytes += bytes;
  inserts_.fetch_add(1, std::memory_order_relaxed);
}

ResultCache::Value ResultCache::GetOrCompute(
    const std::string& key, const std::function<Value()>& compute) {
  Shard& shard = ShardFor(key);
  std::shared_ptr<Flight> flight;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second->value;
    }
    auto fit = shard.flights.find(key);
    if (fit != shard.flights.end()) {
      flight = fit->second;
    } else {
      flight = std::make_shared<Flight>();
      shard.flights.emplace(key, flight);
      leader = true;
    }
  }

  if (!leader) {
    singleflight_waits_.fetch_add(1, std::memory_order_relaxed);
    std::unique_lock<std::mutex> lock(flight->mu);
    flight->cv.wait(lock, [&] { return flight->done; });
    return flight->value;
  }

  // Leader: evaluate with no cache lock held, publish to waiters, insert.
  // The flight is removed before publishing so a failed compute (null or
  // throw) lets the next request retry cold instead of caching the failure.
  misses_.fetch_add(1, std::memory_order_relaxed);
  Value value;
  try {
    value = compute();
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.flights.erase(key);
    }
    {
      std::lock_guard<std::mutex> lock(flight->mu);
      flight->done = true;  // value stays null: waiters see the failure
    }
    flight->cv.notify_all();
    throw;
  }
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.flights.erase(key);
  }
  if (value != nullptr) Insert(shard, key, value);
  {
    std::lock_guard<std::mutex> lock(flight->mu);
    flight->value = value;
    flight->done = true;
  }
  flight->cv.notify_all();
  return value;
}

ResultCacheStats ResultCache::Stats() const {
  ResultCacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.inserts = inserts_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.singleflight_waits =
      singleflight_waits_.load(std::memory_order_relaxed);
  for (uint32_t s = 0; s < num_shards_; ++s) {
    std::lock_guard<std::mutex> lock(shards_[s].mu);
    stats.bytes_used += shards_[s].bytes;
    stats.entries += shards_[s].lru.size();
  }
  return stats;
}

}  // namespace rigpm::server
