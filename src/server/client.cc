#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <unordered_map>
#include <vector>

namespace rigpm::server {

namespace {

void SetError(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
}

/// Decodes an error-response payload into `status` + `message`. Returns
/// false if the payload is not an error response.
bool DecodeErrorResponse(ByteSource& src, StatusCode* status,
                         std::string* message) {
  *status = static_cast<StatusCode>(src.ReadU32());
  *message = src.ReadString();
  return src.ok();
}

/// Decodes a query (or error) response payload starting at its message
/// type; shared by the blocking and pipelined paths.
std::optional<QueryResponse> DecodeQueryPayload(ByteSource& src,
                                                std::string* error) {
  MessageType type = ReadMessageType(src);
  if (type == MessageType::kErrorResponse) {
    QueryResponse resp;
    StatusCode status;
    std::string message;
    if (!DecodeErrorResponse(src, &status, &message)) {
      SetError(error, "malformed error response");
      return std::nullopt;
    }
    resp.status = status;
    resp.error = std::move(message);
    return resp;
  }
  if (type != MessageType::kQueryResponse) {
    SetError(error, "unexpected response type");
    return std::nullopt;
  }
  QueryResponse resp = QueryResponse::Deserialize(src);
  if (!src.ok()) {
    SetError(error, "malformed query response: " + src.error());
    return std::nullopt;
  }
  return resp;
}

}  // namespace

QueryClient::~QueryClient() { Close(); }

void QueryClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool QueryClient::ConnectUnix(const std::string& path, std::string* error) {
  Close();
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    SetError(error, std::strerror(errno));
    return false;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    SetError(error, "unix socket path too long: " + path);
    Close();
    return false;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    SetError(error, "connect " + path + ": " + std::strerror(errno));
    Close();
    return false;
  }
  return true;
}

bool QueryClient::ConnectTcp(const std::string& host, uint16_t port,
                             std::string* error) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    SetError(error, std::strerror(errno));
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    SetError(error, "cannot parse host address " + host);
    Close();
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    SetError(error,
             "connect " + host + ":" + std::to_string(port) + ": " +
                 std::strerror(errno));
    Close();
    return false;
  }
  return true;
}

bool QueryClient::ReadResponseFrame(std::vector<uint8_t>* payload,
                                    std::string* error) {
  FrameReadStatus st = ReadFrame(fd_, max_frame_bytes, payload, error);
  if (st == FrameReadStatus::kOk) return true;
  if (st == FrameReadStatus::kEof) {
    SetError(error, "server closed the connection");
  }
  // EOF, oversize, or a socket error: the stream is dead or byte-
  // desynchronized (an oversize response's payload is still unread), so
  // reusing the connection would read garbage. Drop it; the caller can
  // reconnect.
  Close();
  return false;
}

bool QueryClient::RoundTrip(const ByteSink& request,
                            std::vector<uint8_t>* payload,
                            std::string* error) {
  if (fd_ < 0) {
    SetError(error, "not connected");
    return false;
  }
  if (!WriteFrame(fd_, request, error)) {
    Close();
    return false;
  }
  return ReadResponseFrame(payload, error);
}

ByteSink QueryClient::Addressed(const ByteSink& inner) const {
  if (graph_.empty()) return inner;
  return WrapScoped(graph_, inner);
}

std::optional<QueryResponse> QueryClient::Query(const QueryRequest& request,
                                                std::string* error) {
  ByteSink sink;
  request.Serialize(sink);
  std::vector<uint8_t> payload;
  if (!RoundTrip(Addressed(sink), &payload, error)) return std::nullopt;

  ByteSource src(payload.data(), payload.size());
  return DecodeQueryPayload(src, error);
}

std::optional<uint64_t> QueryClient::SendTagged(const QueryRequest& request,
                                                std::string* error) {
  if (fd_ < 0) {
    SetError(error, "not connected");
    return std::nullopt;
  }
  uint64_t id = next_request_id_++;
  ByteSink inner;
  request.Serialize(inner);
  // Tagging outermost, addressing inside — the order the server's event
  // loop peeks and the workers unwrap.
  ByteSink frame =
      WrapTagged(MessageType::kTaggedRequest, id, Addressed(inner));
  if (!WriteFrame(fd_, frame, error)) {
    Close();
    return std::nullopt;
  }
  return id;
}

std::optional<QueryClient::TaggedQueryResponse> QueryClient::ReceiveTagged(
    std::string* error) {
  if (fd_ < 0) {
    SetError(error, "not connected");
    return std::nullopt;
  }
  std::vector<uint8_t> payload;
  if (!ReadResponseFrame(&payload, error)) return std::nullopt;
  ByteSource src(payload.data(), payload.size());
  if (ReadMessageType(src) != MessageType::kTaggedResponse) {
    SetError(error, "expected a tagged response");
    return std::nullopt;
  }
  TaggedQueryResponse out;
  out.request_id = ReadTaggedId(src);
  if (!src.ok()) {
    SetError(error, "malformed tagged response");
    return std::nullopt;
  }
  auto resp = DecodeQueryPayload(src, error);
  if (!resp.has_value()) return std::nullopt;
  out.response = std::move(*resp);
  return out;
}

std::optional<std::vector<QueryResponse>> QueryClient::QueryPipelined(
    const std::vector<QueryRequest>& requests, std::string* error) {
  std::vector<uint64_t> ids;
  ids.reserve(requests.size());
  for (const QueryRequest& req : requests) {
    auto id = SendTagged(req, error);
    if (!id.has_value()) return std::nullopt;
    ids.push_back(*id);
  }
  // Collect in completion order, return in request order.
  std::unordered_map<uint64_t, QueryResponse> by_id;
  by_id.reserve(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    auto tagged = ReceiveTagged(error);
    if (!tagged.has_value()) return std::nullopt;
    if (!by_id.emplace(tagged->request_id, std::move(tagged->response))
             .second) {
      SetError(error, "duplicate response id " +
                          std::to_string(tagged->request_id));
      Close();
      return std::nullopt;
    }
  }
  std::vector<QueryResponse> ordered;
  ordered.reserve(ids.size());
  for (uint64_t id : ids) {
    auto it = by_id.find(id);
    if (it == by_id.end()) {
      SetError(error, "response id " + std::to_string(id) + " never arrived");
      Close();
      return std::nullopt;
    }
    ordered.push_back(std::move(it->second));
  }
  return ordered;
}

std::optional<StatsResponse> QueryClient::Stats(std::string* error) {
  ByteSink sink;
  sink.WriteU32(static_cast<uint32_t>(MessageType::kStatsRequest));
  std::vector<uint8_t> payload;
  if (!RoundTrip(sink, &payload, error)) return std::nullopt;

  ByteSource src(payload.data(), payload.size());
  if (ReadMessageType(src) != MessageType::kStatsResponse) {
    SetError(error, "unexpected response type");
    return std::nullopt;
  }
  StatsResponse resp = StatsResponse::Deserialize(src);
  if (!src.ok()) {
    SetError(error, "malformed stats response: " + src.error());
    return std::nullopt;
  }
  return resp;
}

std::optional<RefreshResponse> QueryClient::Refresh(std::string* error) {
  ByteSink sink;
  sink.WriteU32(static_cast<uint32_t>(MessageType::kRefreshRequest));
  std::vector<uint8_t> payload;
  if (!RoundTrip(Addressed(sink), &payload, error)) return std::nullopt;

  ByteSource src(payload.data(), payload.size());
  MessageType type = ReadMessageType(src);
  if (type == MessageType::kErrorResponse) {
    RefreshResponse resp;
    if (!DecodeErrorResponse(src, &resp.status, &resp.error)) {
      SetError(error, "malformed error response");
      return std::nullopt;
    }
    return resp;
  }
  if (type != MessageType::kRefreshResponse) {
    SetError(error, "unexpected response type");
    return std::nullopt;
  }
  RefreshResponse resp = RefreshResponse::Deserialize(src);
  if (!src.ok()) {
    SetError(error, "malformed refresh response: " + src.error());
    return std::nullopt;
  }
  return resp;
}

bool QueryClient::Ping(std::string* error) {
  ByteSink sink;
  sink.WriteU32(static_cast<uint32_t>(MessageType::kPingRequest));
  std::vector<uint8_t> payload;
  if (!RoundTrip(sink, &payload, error)) return false;
  ByteSource src(payload.data(), payload.size());
  if (ReadMessageType(src) != MessageType::kPingResponse) {
    SetError(error, "unexpected response type");
    return false;
  }
  return true;
}

std::optional<ServerCapabilities> QueryClient::Capabilities(
    std::string* error) {
  ByteSink sink;
  sink.WriteU32(static_cast<uint32_t>(MessageType::kPingRequest));
  std::vector<uint8_t> payload;
  if (!RoundTrip(sink, &payload, error)) return std::nullopt;
  ByteSource src(payload.data(), payload.size());
  if (ReadMessageType(src) != MessageType::kPingResponse) {
    SetError(error, "unexpected response type");
    return std::nullopt;
  }
  return ParsePingResponse(src);
}

std::optional<ListGraphsResponse> QueryClient::ListGraphs(std::string* error) {
  ByteSink sink;
  sink.WriteU32(static_cast<uint32_t>(MessageType::kListGraphsRequest));
  std::vector<uint8_t> payload;
  if (!RoundTrip(sink, &payload, error)) return std::nullopt;
  ByteSource src(payload.data(), payload.size());
  MessageType type = ReadMessageType(src);
  if (type == MessageType::kErrorResponse) {
    // A pre-v2 daemon answers "unknown request type 8".
    ListGraphsResponse resp;
    if (!DecodeErrorResponse(src, &resp.status, &resp.error)) {
      SetError(error, "malformed error response");
      return std::nullopt;
    }
    return resp;
  }
  if (type != MessageType::kListGraphsResponse) {
    SetError(error, "unexpected response type");
    return std::nullopt;
  }
  ListGraphsResponse resp = ListGraphsResponse::Deserialize(src);
  if (!src.ok()) {
    SetError(error, "malformed list-graphs response: " + src.error());
    return std::nullopt;
  }
  return resp;
}

bool QueryClient::Shutdown(std::string* error) {
  ByteSink sink;
  sink.WriteU32(static_cast<uint32_t>(MessageType::kShutdownRequest));
  std::vector<uint8_t> payload;
  if (!RoundTrip(sink, &payload, error)) return false;
  ByteSource src(payload.data(), payload.size());
  MessageType type = ReadMessageType(src);
  if (type == MessageType::kErrorResponse) {
    StatusCode status;
    std::string message;
    if (DecodeErrorResponse(src, &status, &message)) {
      SetError(error, message);
    }
    return false;
  }
  return type == MessageType::kShutdownResponse;
}

}  // namespace rigpm::server
