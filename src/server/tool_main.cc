#include "server/tool_main.h"

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "graph/graph_io.h"
#include "server/client.h"
#include "server/server.h"
#include "storage/lineage.h"
#include "storage/snapshot.h"

namespace rigpm::server {

namespace {

// SIGINT/SIGTERM just raise a flag; the serve main loop notices within its
// sleep slice and drives the graceful QueryServer::Stop() itself (nothing
// async-signal-unsafe happens in the handler).
volatile std::sig_atomic_t g_signal_stop = 0;

void OnStopSignal(int /*signum*/) { g_signal_stop = 1; }

const char* NeedValue(int argc, char** argv, int* i, const char* flag) {
  if (*i + 1 >= argc) {
    std::fprintf(stderr, "%s needs a value\n", flag);
    return nullptr;
  }
  return argv[++(*i)];
}

int ServeUsage() {
  std::fprintf(
      stderr,
      "usage: serve (--snapshot FILE | --graph FILE | --graph "
      "NAME=SNAP[:DELTA] ...)\n"
      "             (--socket PATH | --port N [--host ADDR])\n"
      "             [--delta FILE] [--max-engines N] [--workers N]\n"
      "             [--max-tuples N] [--max-conns N] [--idle-timeout-ms N]\n"
      "             [--no-remote-shutdown] [--snapshot-io mmap|read]\n"
      "             [--cache-bytes N] [--maintenance-interval-ms N]\n"
      "             [--auto-compact-ratio R]\n"
      "  --graph NAME=SNAP[:DELTA] registers one tenant of a multi-graph\n"
      "  daemon (repeatable; the first becomes the default unless\n"
      "  --snapshot/--graph FILE provides one); --max-engines caps resident\n"
      "  engines, evicting least-recently-used (0 = unlimited);\n"
      "  --cache-bytes budgets each tenant's query-result cache\n"
      "  (default 64 MiB, 0 disables).\n"
      "  --maintenance-interval-ms N polls every refreshable tenant's delta\n"
      "  log every N ms and applies new records without client refreshes\n"
      "  (0 = off); --auto-compact-ratio R additionally folds a tenant's\n"
      "  log into a fresh snapshot generation once the log exceeds R x the\n"
      "  base snapshot's size (e.g. 0.5; 0 = off).\n");
  return 2;
}

int ClientUsage() {
  std::fprintf(
      stderr,
      "usage: client (--socket PATH | --host ADDR --port N)\n"
      "              (--pattern STR | --batch FILE | --template NAME\n"
      "               | --stats | --ping | --refresh | --shutdown\n"
      "               | --list-graphs | --idle-hold N [--hold-secs S])\n"
      "              [--graph NAME] [--seed N] [--limit N] [--threads N]\n"
      "              [--tuples N] [--print N] [--pipeline N] [--repeat N]\n"
      "  --repeat re-issues the same query N times on one connection\n"
      "  (composes with --pipeline: N rounds of M pipelined copies) —\n"
      "  repeat-heavy traffic for exercising the server's result cache.\n");
  return 2;
}

/// One `--graph NAME=SNAP[:DELTA]` tenant of a multi-graph daemon. The
/// legacy `--graph FILE` form (no '=') keeps meaning a text graph file.
struct GraphSpec {
  std::string id;
  std::string snapshot;
  std::string delta;
};

bool ParseGraphSpec(const std::string& text, GraphSpec* spec,
                    std::string* error) {
  size_t eq = text.find('=');
  if (eq == 0 || eq == std::string::npos) {
    *error = "--graph tenant spec must be NAME=SNAPSHOT[:DELTA]";
    return false;
  }
  spec->id = text.substr(0, eq);
  std::string paths = text.substr(eq + 1);
  // The first ':' splits snapshot from delta — tenant snapshot paths
  // therefore cannot contain ':' (use the single-tenant flags for those).
  size_t colon = paths.find(':');
  spec->snapshot = paths.substr(0, colon);
  if (colon != std::string::npos) spec->delta = paths.substr(colon + 1);
  if (spec->snapshot.empty()) {
    *error = "--graph " + spec->id + "= needs a snapshot path";
    return false;
  }
  return true;
}

void PrintTuples(const QueryResponse& resp, uint64_t max_print) {
  if (resp.tuple_arity == 0) return;
  uint64_t count = resp.tuples.size() / resp.tuple_arity;
  for (uint64_t i = 0; i < count && i < max_print; ++i) {
    std::printf("(");
    for (uint32_t j = 0; j < resp.tuple_arity; ++j) {
      std::printf(j ? " %u" : "%u", resp.tuples[i * resp.tuple_arity + j]);
    }
    std::printf(")\n");
  }
}

}  // namespace

int ServeToolMain(int argc, char** argv, int first_arg) {
  std::string snapshot_path, graph_path, socket_path, host = "127.0.0.1";
  std::string delta_path;
  std::vector<GraphSpec> tenants;
  uint32_t max_engines = 0;
  int port = -1;
  SnapshotIoMode io_mode = DefaultSnapshotIoMode();
  ServerConfig config;
  for (int i = first_arg; i < argc; ++i) {
    const char* v;
    if (std::strcmp(argv[i], "--snapshot") == 0) {
      if ((v = NeedValue(argc, argv, &i, "--snapshot")) == nullptr)
        return ServeUsage();
      snapshot_path = v;
    } else if (std::strcmp(argv[i], "--delta") == 0) {
      if ((v = NeedValue(argc, argv, &i, "--delta")) == nullptr)
        return ServeUsage();
      delta_path = v;
    } else if (std::strcmp(argv[i], "--snapshot-io") == 0) {
      if ((v = NeedValue(argc, argv, &i, "--snapshot-io")) == nullptr)
        return ServeUsage();
      if (!ParseSnapshotIoMode(v, &io_mode)) {
        std::fprintf(stderr, "--snapshot-io must be mmap or read (got %s)\n",
                     v);
        return ServeUsage();
      }
    } else if (std::strcmp(argv[i], "--graph") == 0) {
      if ((v = NeedValue(argc, argv, &i, "--graph")) == nullptr)
        return ServeUsage();
      if (std::strchr(v, '=') != nullptr) {
        GraphSpec spec;
        std::string spec_error;
        if (!ParseGraphSpec(v, &spec, &spec_error)) {
          std::fprintf(stderr, "%s\n", spec_error.c_str());
          return ServeUsage();
        }
        tenants.push_back(std::move(spec));
      } else {
        graph_path = v;
      }
    } else if (std::strcmp(argv[i], "--max-engines") == 0) {
      if ((v = NeedValue(argc, argv, &i, "--max-engines")) == nullptr)
        return ServeUsage();
      max_engines = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (std::strcmp(argv[i], "--socket") == 0) {
      if ((v = NeedValue(argc, argv, &i, "--socket")) == nullptr)
        return ServeUsage();
      socket_path = v;
    } else if (std::strcmp(argv[i], "--host") == 0) {
      if ((v = NeedValue(argc, argv, &i, "--host")) == nullptr)
        return ServeUsage();
      host = v;
    } else if (std::strcmp(argv[i], "--port") == 0) {
      if ((v = NeedValue(argc, argv, &i, "--port")) == nullptr)
        return ServeUsage();
      port = std::atoi(v);
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      if ((v = NeedValue(argc, argv, &i, "--workers")) == nullptr)
        return ServeUsage();
      config.num_workers = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (std::strcmp(argv[i], "--max-tuples") == 0) {
      if ((v = NeedValue(argc, argv, &i, "--max-tuples")) == nullptr)
        return ServeUsage();
      config.max_return_tuples =
          static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (std::strcmp(argv[i], "--max-conns") == 0) {
      if ((v = NeedValue(argc, argv, &i, "--max-conns")) == nullptr)
        return ServeUsage();
      config.max_connections =
          static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (std::strcmp(argv[i], "--idle-timeout-ms") == 0) {
      if ((v = NeedValue(argc, argv, &i, "--idle-timeout-ms")) == nullptr)
        return ServeUsage();
      config.idle_timeout_ms =
          static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (std::strcmp(argv[i], "--cache-bytes") == 0) {
      if ((v = NeedValue(argc, argv, &i, "--cache-bytes")) == nullptr)
        return ServeUsage();
      config.cache_bytes = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(argv[i], "--maintenance-interval-ms") == 0) {
      if ((v = NeedValue(argc, argv, &i, "--maintenance-interval-ms")) ==
          nullptr)
        return ServeUsage();
      config.maintenance_interval_ms =
          static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (std::strcmp(argv[i], "--auto-compact-ratio") == 0) {
      if ((v = NeedValue(argc, argv, &i, "--auto-compact-ratio")) == nullptr)
        return ServeUsage();
      config.auto_compact_ratio = std::strtod(v, nullptr);
      if (config.auto_compact_ratio < 0) {
        std::fprintf(stderr, "--auto-compact-ratio must be >= 0\n");
        return ServeUsage();
      }
    } else if (std::strcmp(argv[i], "--no-remote-shutdown") == 0) {
      config.allow_remote_shutdown = false;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return ServeUsage();
    }
  }
  if (!snapshot_path.empty() && !graph_path.empty()) {
    std::fprintf(stderr,
                 "serve needs at most one of --snapshot and --graph FILE\n");
    return ServeUsage();
  }
  if (snapshot_path.empty() && graph_path.empty() && tenants.empty()) {
    std::fprintf(stderr,
                 "serve needs --snapshot, --graph FILE, or --graph "
                 "NAME=SNAP[:DELTA]\n");
    return ServeUsage();
  }
  if (socket_path.empty() && port < 0) {
    std::fprintf(stderr, "serve needs --socket PATH or --port N\n");
    return ServeUsage();
  }
  if (!delta_path.empty() && snapshot_path.empty()) {
    // A delta log is bound to a base snapshot checksum; without a snapshot
    // there is nothing to bind the refresh to.
    std::fprintf(stderr, "--delta requires --snapshot\n");
    return ServeUsage();
  }
  if (config.auto_compact_ratio > 0 && config.maintenance_interval_ms == 0) {
    std::fprintf(stderr,
                 "--auto-compact-ratio needs --maintenance-interval-ms (the "
                 "maintenance thread is what triggers compactions)\n");
    return ServeUsage();
  }
  config.unix_path = socket_path;
  config.host = host;
  config.port = static_cast<uint16_t>(port < 0 ? 0 : port);
  // EngineSource::delta_io stays on its kRead default: --snapshot-io
  // governs how the (immutable, rename-replaced) snapshots are loaded, but
  // delta logs are appended to and tail-truncated in place, where reading
  // through a mapping could SIGBUS (server.h).

  // Load once; serve many. The snapshot path is the whole point: restart
  // cost is one deserialization, not a parse + index rebuild — and in mmap
  // mode (the default) the graph is served straight out of a read-only
  // MAP_SHARED mapping, so N daemons on one snapshot share a single
  // physical copy through the page cache.
  std::string error;
  auto catalog = std::make_shared<EngineCatalog>(max_engines);
  // Before any engine opens: the result cache is attached per generation
  // at open/adopt/refresh time with the budget in force right then.
  catalog->set_cache_bytes(config.cache_bytes);
  WarmEngine warm;
  std::optional<Graph> parsed_graph;
  std::optional<GmEngine> cold_engine;
  if (!snapshot_path.empty()) {
    // A previous compaction may have re-pointed the storage at a newer
    // generation: resolve the lineage head and load what it names. The
    // CONFIGURED paths stay in the EngineSource — they are the identity
    // the head file itself is keyed by.
    Lineage lineage;
    lineage.snapshot_path = snapshot_path;
    lineage.delta_path = delta_path;
    if (!ResolveLineage(snapshot_path, delta_path, &lineage, &error)) {
      std::fprintf(stderr, "cannot resolve storage lineage: %s\n",
                   error.c_str());
      return 1;
    }
    LoadOptions load_options;
    load_options.io_mode = io_mode;
    auto loaded =
        LoadEngineSnapshot(lineage.snapshot_path, load_options, &error);
    if (!loaded.has_value()) {
      std::fprintf(stderr, "cannot load snapshot: %s\n", error.c_str());
      return 1;
    }
    warm = std::move(*loaded);
    std::printf("snapshot: %s (warm start via %s%s)\n",
                lineage.snapshot_path.c_str(),
                io_mode == SnapshotIoMode::kMmap ? "mmap" : "read",
                lineage.generation > 0 ? ", compacted lineage" : "");
    std::printf("graph: %s\n", warm.graph->Summary().c_str());
    EngineSource source;
    source.snapshot_path = snapshot_path;
    source.delta_path = delta_path;
    source.io_mode = io_mode;
    if (!delta_path.empty()) {
      // Bind refreshes to this exact base — the checksum of the bytes we
      // actually LOADED, not a re-read of the path (which a concurrent
      // compaction may have rename-replaced with a different snapshot).
      std::printf("delta: %s (kRefresh enabled, generation %llu, "
                  "base %016llx)\n",
                  lineage.delta_path.c_str(),
                  static_cast<unsigned long long>(lineage.generation),
                  static_cast<unsigned long long>(warm.stored_checksum));
    }
    catalog->AdoptEngine("default", *warm.engine, std::move(source),
                         warm.stored_checksum);
  } else if (!graph_path.empty()) {
    parsed_graph = ReadGraphFile(graph_path, &error);
    if (!parsed_graph.has_value()) {
      std::fprintf(stderr, "cannot read graph: %s\n", error.c_str());
      return 1;
    }
    cold_engine.emplace(*parsed_graph);
    std::printf("graph: %s (cold start, index built in %.2f ms)\n",
                parsed_graph->Summary().c_str(), cold_engine->reach_build_ms());
    catalog->AdoptEngine("default", *cold_engine);
  }
  for (const GraphSpec& spec : tenants) {
    EngineSource source;
    source.snapshot_path = spec.snapshot;
    source.delta_path = spec.delta;
    source.io_mode = io_mode;
    if (!catalog->Register(spec.id, std::move(source), &error)) {
      std::fprintf(stderr, "cannot register graph %s: %s\n", spec.id.c_str(),
                   error.c_str());
      return 1;
    }
    std::printf("graph %s: %s%s%s (lazy open)\n", spec.id.c_str(),
                spec.snapshot.c_str(), spec.delta.empty() ? "" : " + delta ",
                spec.delta.c_str());
  }
  // Fail fast on a broken default source instead of handing every
  // unaddressed client the same open error at query time.
  if (catalog->Acquire("", &error) == nullptr) {
    std::fprintf(stderr, "cannot open default graph: %s\n", error.c_str());
    return 1;
  }

  QueryServer server(catalog, config);
  if (!server.Start(&error)) {
    std::fprintf(stderr, "cannot start server: %s\n", error.c_str());
    return 1;
  }
  std::printf("serving on %s (workers=%u, graphs=%zu, default=%s%s)\n",
              server.endpoint().c_str(), config.num_workers,
              catalog->List().size(), catalog->default_id().c_str(),
              max_engines > 0
                  ? (", max-engines=" + std::to_string(max_engines)).c_str()
                  : "");
  std::fflush(stdout);

  g_signal_stop = 0;
  std::signal(SIGINT, OnStopSignal);
  std::signal(SIGTERM, OnStopSignal);
  while (g_signal_stop == 0 && !server.stop_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.Stop();
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);

  ServerStats stats = server.Snapshot();
  std::printf("shutdown: %llu request(s), %llu query(ies), %llu "
              "occurrence(s), %llu error(s) over %.1f s "
              "(p50 %.2f ms, p99 %.2f ms)\n",
              static_cast<unsigned long long>(stats.requests_served),
              static_cast<unsigned long long>(stats.queries_served),
              static_cast<unsigned long long>(stats.occurrences_emitted),
              static_cast<unsigned long long>(stats.errors),
              stats.uptime_ms / 1000.0, stats.latency_p50_ms,
              stats.latency_p99_ms);
  return 0;
}

int ClientToolMain(int argc, char** argv, int first_arg) {
  std::string socket_path, host = "127.0.0.1", batch_path, graph_id;
  int port = -1;
  bool want_stats = false, want_ping = false, want_shutdown = false;
  bool want_refresh = false, want_list_graphs = false;
  uint64_t print = 10;
  uint64_t pipeline = 0;
  uint64_t repeat = 1;
  uint64_t idle_hold = 0;
  uint64_t hold_secs = 600;
  QueryRequest req;
  for (int i = first_arg; i < argc; ++i) {
    const char* v;
    if (std::strcmp(argv[i], "--socket") == 0) {
      if ((v = NeedValue(argc, argv, &i, "--socket")) == nullptr)
        return ClientUsage();
      socket_path = v;
    } else if (std::strcmp(argv[i], "--host") == 0) {
      if ((v = NeedValue(argc, argv, &i, "--host")) == nullptr)
        return ClientUsage();
      host = v;
    } else if (std::strcmp(argv[i], "--port") == 0) {
      if ((v = NeedValue(argc, argv, &i, "--port")) == nullptr)
        return ClientUsage();
      port = std::atoi(v);
    } else if (std::strcmp(argv[i], "--graph") == 0) {
      if ((v = NeedValue(argc, argv, &i, "--graph")) == nullptr)
        return ClientUsage();
      graph_id = v;
    } else if (std::strcmp(argv[i], "--pattern") == 0) {
      if ((v = NeedValue(argc, argv, &i, "--pattern")) == nullptr)
        return ClientUsage();
      req.patterns.push_back(v);
    } else if (std::strcmp(argv[i], "--batch") == 0) {
      if ((v = NeedValue(argc, argv, &i, "--batch")) == nullptr)
        return ClientUsage();
      batch_path = v;
    } else if (std::strcmp(argv[i], "--template") == 0) {
      if ((v = NeedValue(argc, argv, &i, "--template")) == nullptr)
        return ClientUsage();
      req.template_name = v;
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      if ((v = NeedValue(argc, argv, &i, "--seed")) == nullptr)
        return ClientUsage();
      req.template_seed = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(argv[i], "--limit") == 0) {
      if ((v = NeedValue(argc, argv, &i, "--limit")) == nullptr)
        return ClientUsage();
      req.limit = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      if ((v = NeedValue(argc, argv, &i, "--threads")) == nullptr)
        return ClientUsage();
      req.num_threads = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (std::strcmp(argv[i], "--tuples") == 0) {
      if ((v = NeedValue(argc, argv, &i, "--tuples")) == nullptr)
        return ClientUsage();
      req.max_return_tuples =
          static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (std::strcmp(argv[i], "--print") == 0) {
      if ((v = NeedValue(argc, argv, &i, "--print")) == nullptr)
        return ClientUsage();
      print = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(argv[i], "--pipeline") == 0) {
      if ((v = NeedValue(argc, argv, &i, "--pipeline")) == nullptr)
        return ClientUsage();
      pipeline = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(argv[i], "--repeat") == 0) {
      if ((v = NeedValue(argc, argv, &i, "--repeat")) == nullptr)
        return ClientUsage();
      repeat = std::strtoull(v, nullptr, 10);
      if (repeat == 0) repeat = 1;
    } else if (std::strcmp(argv[i], "--idle-hold") == 0) {
      if ((v = NeedValue(argc, argv, &i, "--idle-hold")) == nullptr)
        return ClientUsage();
      idle_hold = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(argv[i], "--hold-secs") == 0) {
      if ((v = NeedValue(argc, argv, &i, "--hold-secs")) == nullptr)
        return ClientUsage();
      hold_secs = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      want_stats = true;
    } else if (std::strcmp(argv[i], "--ping") == 0) {
      want_ping = true;
    } else if (std::strcmp(argv[i], "--refresh") == 0) {
      want_refresh = true;
    } else if (std::strcmp(argv[i], "--list-graphs") == 0) {
      want_list_graphs = true;
    } else if (std::strcmp(argv[i], "--shutdown") == 0) {
      want_shutdown = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return ClientUsage();
    }
  }
  if (socket_path.empty() && port < 0) {
    std::fprintf(stderr, "client needs --socket PATH or --port N\n");
    return ClientUsage();
  }
  if (!batch_path.empty()) {
    std::ifstream in(batch_path);
    if (!in) {
      std::fprintf(stderr, "cannot open batch file %s\n", batch_path.c_str());
      return 1;
    }
    std::string line;
    while (std::getline(in, line)) {
      size_t first = line.find_first_not_of(" \t\r");
      if (first == std::string::npos || line[first] == '#') continue;
      req.patterns.push_back(line);
    }
  }
  const bool has_query = !req.patterns.empty() || !req.template_name.empty();
  if (!has_query && !want_stats && !want_ping && !want_refresh &&
      !want_list_graphs && !want_shutdown && idle_hold == 0) {
    std::fprintf(stderr, "client has nothing to do\n");
    return ClientUsage();
  }
  // Printing a tuple requires the server to echo it.
  if (has_query && req.max_return_tuples == 0 && print > 0) {
    req.max_return_tuples =
        static_cast<uint32_t>(std::min<uint64_t>(print, 1u << 20));
  }

  QueryClient client;
  std::string error;

  // Idle-hold mode: open N connections, announce, and sit on them. The
  // C10K smoke test backgrounds this to prove idle connections cost the
  // server an fd each and nothing else (no worker is parked on them).
  if (idle_hold > 0) {
    std::vector<QueryClient> holders;
    holders.reserve(idle_hold);
    for (uint64_t i = 0; i < idle_hold; ++i) {
      QueryClient holder;
      bool ok = socket_path.empty()
                    ? holder.ConnectTcp(host, static_cast<uint16_t>(port),
                                        &error)
                    : holder.ConnectUnix(socket_path, &error);
      if (!ok) {
        std::fprintf(stderr, "idle-hold connect %llu/%llu failed: %s\n",
                     static_cast<unsigned long long>(i + 1),
                     static_cast<unsigned long long>(idle_hold),
                     error.c_str());
        return 1;
      }
      holders.push_back(std::move(holder));
    }
    std::printf("holding %llu connection(s)\n",
                static_cast<unsigned long long>(idle_hold));
    std::fflush(stdout);
    // Sleep in slices so the harness can SIGKILL us promptly; exiting on
    // our own (timeout) is also fine — the server just reaps the EOFs.
    for (uint64_t slept = 0; slept < hold_secs * 10; ++slept) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    return 0;
  }

  bool connected = socket_path.empty()
                       ? client.ConnectTcp(host, static_cast<uint16_t>(port),
                                           &error)
                       : client.ConnectUnix(socket_path, &error);
  if (!connected) {
    std::fprintf(stderr, "cannot connect: %s\n", error.c_str());
    return 1;
  }
  client.SetGraph(graph_id);

  if (want_ping) {
    auto caps = client.Capabilities(&error);
    if (!caps.has_value()) {
      std::fprintf(stderr, "ping failed: %s\n", error.c_str());
      return 1;
    }
    std::printf("pong (protocol revision %u%s%s%s%s)\n", caps->revision,
                caps->tagged() ? ", tagged" : "",
                caps->refresh() ? ", refresh" : "",
                caps->scoped() ? ", scoped" : "",
                caps->list_graphs() ? ", list-graphs" : "");
  }

  if (want_list_graphs) {
    auto list = client.ListGraphs(&error);
    if (!list.has_value()) {
      std::fprintf(stderr, "list-graphs failed: %s\n", error.c_str());
      return 1;
    }
    if (list->status != StatusCode::kOk) {
      std::fprintf(stderr, "server rejected list-graphs (%s): %s\n",
                   StatusCodeName(list->status), list->error.c_str());
      return 1;
    }
    std::printf("graphs: %zu registered (default: %s)\n", list->graphs.size(),
                list->default_id.c_str());
    for (const GraphInfoWire& g : list->graphs) {
      std::printf("  %s: %s%s, seqno %llu, %llu query(ies)\n", g.id.c_str(),
                  g.resident ? "resident" : "cold",
                  g.refreshable ? ", refreshable" : "",
                  static_cast<unsigned long long>(g.applied_seqno),
                  static_cast<unsigned long long>(g.queries));
    }
  }

  if (want_refresh) {
    auto resp = client.Refresh(&error);
    if (!resp.has_value()) {
      std::fprintf(stderr, "refresh failed: %s\n", error.c_str());
      return 1;
    }
    if (resp->status != StatusCode::kOk) {
      std::fprintf(stderr, "server rejected refresh (%s): %s\n",
                   StatusCodeName(resp->status), resp->error.c_str());
      return 1;
    }
    std::printf("refresh: %llu record(s), %llu edge(s) applied in %.2f ms "
                "(log position %llu%s)\n",
                static_cast<unsigned long long>(resp->records_applied),
                static_cast<unsigned long long>(resp->edges_in_records),
                resp->refresh_ms,
                static_cast<unsigned long long>(resp->last_seqno),
                resp->log_truncated ? "; log has a torn tail" : "");
    std::printf("serving: %llu node(s), %llu edge(s)\n",
                static_cast<unsigned long long>(resp->num_nodes),
                static_cast<unsigned long long>(resp->num_edges));
  }

  // --repeat re-issues the same request N times on this one connection;
  // only the final round is printed so scripted callers still see one
  // occurrence line. With a warm server-side result cache every round
  // after the first should be a hit.
  for (uint64_t round = 0; has_query && round < repeat; ++round) {
    const bool final_round = round + 1 == repeat;
    if (final_round && repeat > 1) {
      std::printf("repeat: %llu round(s) completed\n",
                  static_cast<unsigned long long>(repeat));
    }
    if (pipeline > 1) {
      // Pipelined mode: N copies of the request in flight at once on this
      // one connection, answered out of order and matched back by tag.
      std::vector<QueryRequest> reqs(pipeline, req);
      auto resps = client.QueryPipelined(reqs, &error);
      if (!resps.has_value()) {
        std::fprintf(stderr, "pipelined query failed: %s\n", error.c_str());
        return 1;
      }
      uint64_t ok = 0;
      for (const QueryResponse& r : *resps) {
        if (r.status != StatusCode::kOk) {
          std::fprintf(stderr, "server rejected query (%s): %s\n",
                       StatusCodeName(r.status), r.error.c_str());
          return 1;
        }
        ++ok;
      }
      if (!final_round) continue;
      std::printf("pipeline: %llu request(s) completed\n",
                  static_cast<unsigned long long>(ok));
      // Report the LAST response's counts: if a refresh raced the pipeline,
      // earlier responses may legitimately reflect the older graph.
      const QueryResponse& last = resps->back();
      std::printf("%llu occurrence(s)%s\n",
                  static_cast<unsigned long long>(last.TotalOccurrences()),
                  !last.results.empty() && last.results.back().hit_limit
                      ? " (limit reached)"
                      : "");
    } else {
      auto resp = client.Query(req, &error);
      if (!resp.has_value()) {
        std::fprintf(stderr, "query failed: %s\n", error.c_str());
        return 1;
      }
      if (resp->status != StatusCode::kOk) {
        std::fprintf(stderr, "server rejected query (%s): %s\n",
                     StatusCodeName(resp->status), resp->error.c_str());
        return 1;
      }
      if (!final_round) continue;
      if (resp->results.size() == 1) {
        PrintTuples(*resp, print);
        std::printf("%llu occurrence(s)%s\n",
                    static_cast<unsigned long long>(
                        resp->results[0].num_occurrences),
                    resp->results[0].hit_limit ? " (limit reached)" : "");
      } else {
        for (size_t i = 0; i < resp->results.size(); ++i) {
          std::printf("query %zu: %llu occurrence(s)%s\n", i,
                      static_cast<unsigned long long>(
                          resp->results[i].num_occurrences),
                      resp->results[i].hit_limit ? " (limit reached)" : "");
        }
        std::printf("batch: %zu query(ies), %llu occurrence(s)\n",
                    resp->results.size(),
                    static_cast<unsigned long long>(resp->TotalOccurrences()));
      }
    }
  }

  if (want_stats) {
    auto stats = client.Stats(&error);
    if (!stats.has_value()) {
      std::fprintf(stderr, "stats failed: %s\n", error.c_str());
      return 1;
    }
    std::printf("uptime: %.1f s\n", stats->uptime_ms / 1000.0);
    std::printf("connections: %llu accepted, %llu active\n",
                static_cast<unsigned long long>(stats->connections_accepted),
                static_cast<unsigned long long>(stats->active_connections));
    std::printf("requests: %llu (%llu query(ies), %llu error(s))\n",
                static_cast<unsigned long long>(stats->requests_served),
                static_cast<unsigned long long>(stats->queries_served),
                static_cast<unsigned long long>(stats->errors));
    std::printf("occurrences emitted: %llu\n",
                static_cast<unsigned long long>(stats->occurrences_emitted));
    std::printf("refreshes: %llu\n",
                static_cast<unsigned long long>(stats->refreshes));
    std::printf("maintenance: %llu auto-refresh(es), %llu compaction(s), "
                "%llu byte(s) reclaimed, %llu delete(s) applied\n",
                static_cast<unsigned long long>(stats->auto_refreshes),
                static_cast<unsigned long long>(stats->auto_compactions),
                static_cast<unsigned long long>(
                    stats->maintenance_bytes_reclaimed),
                static_cast<unsigned long long>(stats->deletes_applied));
    std::printf("latency: p50 %.2f ms, p99 %.2f ms\n", stats->latency_p50_ms,
                stats->latency_p99_ms);
    std::printf("dispatch depth: %llu\n",
                static_cast<unsigned long long>(stats->dispatch_depth));
    std::printf("accept-to-first-byte: p50 %.2f ms, p99 %.2f ms\n",
                stats->accept_p50_ms, stats->accept_p99_ms);
    std::printf("flushes: %llu (%llu frame(s) flushed)\n",
                static_cast<unsigned long long>(stats->flushes),
                static_cast<unsigned long long>(stats->frames_flushed));
    std::printf("result cache: %llu hit(s), %llu miss(es), %llu insert(s), "
                "%llu eviction(s), %llu singleflight wait(s), %llu entry(ies), "
                "%llu byte(s)\n",
                static_cast<unsigned long long>(stats->cache_hits),
                static_cast<unsigned long long>(stats->cache_misses),
                static_cast<unsigned long long>(stats->cache_inserts),
                static_cast<unsigned long long>(stats->cache_evictions),
                static_cast<unsigned long long>(
                    stats->cache_singleflight_waits),
                static_cast<unsigned long long>(stats->cache_entries),
                static_cast<unsigned long long>(stats->cache_bytes_used));
    if (stats->graphs_registered > 0) {
      std::printf("catalog: %llu graph(s), %llu resident, %llu hit(s), "
                  "%llu miss(es), %llu eviction(s)\n",
                  static_cast<unsigned long long>(stats->graphs_registered),
                  static_cast<unsigned long long>(stats->graphs_resident),
                  static_cast<unsigned long long>(stats->catalog_hits),
                  static_cast<unsigned long long>(stats->catalog_misses),
                  static_cast<unsigned long long>(stats->catalog_evictions));
      for (const GraphInfoWire& t : stats->tenants) {
        std::printf("  %s: %s%s, seqno %llu, %llu query(ies)\n", t.id.c_str(),
                    t.resident ? "resident" : "cold",
                    t.refreshable ? ", refreshable" : "",
                    static_cast<unsigned long long>(t.applied_seqno),
                    static_cast<unsigned long long>(t.queries));
      }
      for (const TenantCacheWire& c : stats->tenant_caches) {
        std::printf("  %s cache: %llu hit(s), %llu miss(es), %llu "
                    "eviction(s), %llu entry(ies), %llu byte(s)\n",
                    c.id.c_str(), static_cast<unsigned long long>(c.hits),
                    static_cast<unsigned long long>(c.misses),
                    static_cast<unsigned long long>(c.evictions),
                    static_cast<unsigned long long>(c.entries),
                    static_cast<unsigned long long>(c.bytes_used));
      }
    }
  }

  if (want_shutdown) {
    if (!client.Shutdown(&error)) {
      std::fprintf(stderr, "shutdown failed: %s\n", error.c_str());
      return 1;
    }
    std::printf("server shutting down\n");
  }
  return 0;
}

}  // namespace rigpm::server
