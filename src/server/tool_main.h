#ifndef RIGPM_SERVER_TOOL_MAIN_H_
#define RIGPM_SERVER_TOOL_MAIN_H_

namespace rigpm::server {

/// Entry points shared by the standalone `rigpm_serve` daemon and the
/// `rigpm_cli serve` / `rigpm_cli client` subcommands, so both surfaces
/// parse the same flags and behave identically. `first_arg` is the index of
/// the first flag in argv (1 for the daemon, 2 after a subcommand word).

/// Loads an engine (snapshot or text graph), serves until SIGINT/SIGTERM or
/// a remote shutdown request, prints final serving stats. Returns a process
/// exit code.
int ServeToolMain(int argc, char** argv, int first_arg);

/// One-shot client: connects, issues the requested operation(s), prints
/// results in the CLI's "N occurrence(s)" format. Returns a process exit
/// code.
int ClientToolMain(int argc, char** argv, int first_arg);

}  // namespace rigpm::server

#endif  // RIGPM_SERVER_TOOL_MAIN_H_
