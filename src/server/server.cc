#include "server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/uio.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <limits>
#include <span>
#include <utility>

#include "query/pattern_parser.h"
#include "query/query_templates.h"
#include "util/concurrency.h"

namespace rigpm::server {

namespace {

/// Epoll wait slice: bounds how stale the stop flag and the idle-timeout
/// scan can get when no fd is active.
constexpr int kLoopTickMs = 100;
constexpr size_t kLatencyRingCapacity = 4096;
/// recv() staging buffer, and the per-event read bound that keeps one
/// firehose client from monopolizing the loop (leftover bytes re-trigger
/// the level-triggered EPOLLIN on the next re-arm).
constexpr size_t kReadChunk = 16384;
constexpr size_t kMaxReadPerEvent = 256 * 1024;
/// Shutdown drain bound: in-flight requests get this long to finish and
/// flush before remaining connections are cut.
constexpr double kDrainCapMs = 5000.0;

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

bool KnownTemplateName(const std::string& name) {
  for (const QueryTemplate& tpl : HQueryTemplates()) {
    if (tpl.name == name) return true;
  }
  return false;
}

/// Percentile over an unsorted sample copy (nearest-rank).
double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  size_t rank = static_cast<size_t>(p * static_cast<double>(samples.size()));
  rank = std::min(rank, samples.size() - 1);
  std::nth_element(samples.begin(), samples.begin() + rank, samples.end());
  return samples[rank];
}

bool SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// Length prefix + payload as one contiguous buffer, ready for the
/// non-blocking write queue (the blocking WriteFrame of protocol.cc cannot
/// be used from the event loop).
std::vector<uint8_t> FrameBytes(const ByteSink& payload) {
  uint32_t len = static_cast<uint32_t>(payload.size());
  std::vector<uint8_t> framed(sizeof(len) + payload.size());
  std::memcpy(framed.data(), &len, sizeof(len));
  std::memcpy(framed.data() + sizeof(len), payload.data().data(),
              payload.size());
  return framed;
}

uint32_t PeekType(const std::vector<uint8_t>& bytes, size_t offset = 0) {
  uint32_t type = 0;
  if (bytes.size() >= offset + sizeof(type)) {
    std::memcpy(&type, bytes.data() + offset, sizeof(type));
  }
  return type;
}

}  // namespace

QueryServer::QueryServer(std::shared_ptr<EngineCatalog> catalog,
                         ServerConfig config)
    : config_(std::move(config)), catalog_(std::move(catalog)) {
  latency_ring_.resize(kLatencyRingCapacity, 0.0);
  accept_ring_.resize(kLatencyRingCapacity, 0.0);
  if (config_.max_pipeline == 0) config_.max_pipeline = 1;
}

QueryServer::QueryServer(const GmEngine& engine, ServerConfig config)
    : QueryServer(std::make_shared<EngineCatalog>(), std::move(config)) {
  // Before AdoptEngine: the cache is attached when the state is built.
  catalog_->set_cache_bytes(config_.cache_bytes);
  // The adopted state aliases the caller's engine (which must outlive the
  // server); refreshed states own their graph + engine.
  EngineSource source;
  source.delta_path = config_.delta_path;
  source.delta_io = config_.delta_io;
  catalog_->AdoptEngine("default", engine, std::move(source),
                        config_.base_checksum);
}

QueryServer::~QueryServer() { Stop(); }

std::string QueryServer::endpoint() const {
  if (!config_.unix_path.empty()) return "unix:" + config_.unix_path;
  return config_.host + ":" + std::to_string(bound_port_);
}

QueryServer::TenantSlot* QueryServer::SyncWorkerEngine(
    WorkerEngine& we, const std::string& graph_id, std::string* error,
    bool* bad_request) {
  std::shared_ptr<const EngineState> current =
      catalog_->Acquire(graph_id, error);
  if (current == nullptr) {
    // An id the catalog has never heard of is the client's mistake; a
    // registered source that fails to open is the server's.
    const std::string& resolved =
        graph_id.empty() ? catalog_->default_id() : graph_id;
    *bad_request = !catalog_->Has(resolved);
    return nullptr;
  }
  // Slots are keyed by the resolved id so "" and the default tenant's
  // explicit name share one pin (and one warm context).
  const std::string key = graph_id.empty() ? catalog_->default_id() : graph_id;
  TenantSlot& slot = we.slots[key];
  if (current != slot.state) {
    // The context references the state's graph/index; drop it before the
    // state so nothing dangles, then rebuild against the fresh engine.
    slot.ctx.reset();
    slot.state = std::move(current);
    slot.ctx.emplace(slot.state->engine->MakeContext());
  }
  return &slot;
}

uint64_t QueryServer::applied_seqno() const {
  std::shared_ptr<const EngineState> state = catalog_->Acquire("");
  return state != nullptr ? state->applied_seqno : 0;
}

bool QueryServer::Start(std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    if (epoll_fd_ >= 0) {
      ::close(epoll_fd_);
      epoll_fd_ = -1;
    }
    if (wake_fd_ >= 0) {
      ::close(wake_fd_);
      wake_fd_ = -1;
    }
    return false;
  };

  if (!config_.unix_path.empty()) {
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return fail(std::strerror(errno));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (config_.unix_path.size() >= sizeof(addr.sun_path)) {
      return fail("unix socket path too long: " + config_.unix_path);
    }
    std::strncpy(addr.sun_path, config_.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    // Only remove a STALE socket (left by a dead server). If a live daemon
    // still answers on the path, fail loudly instead of silently unlinking
    // its endpoint out from under it; and never unlink a non-socket (a
    // mistyped --socket pointing at a regular file must not delete it).
    struct stat st{};
    if (::lstat(config_.unix_path.c_str(), &st) == 0) {
      if (!S_ISSOCK(st.st_mode)) {
        return fail(config_.unix_path + " exists and is not a socket");
      }
      int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (probe >= 0) {
        bool alive = ::connect(probe, reinterpret_cast<sockaddr*>(&addr),
                               sizeof(addr)) == 0;
        ::close(probe);
        if (alive) {
          return fail(config_.unix_path + " is already being served");
        }
      }
      ::unlink(config_.unix_path.c_str());
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) < 0) {
      return fail("bind " + config_.unix_path + ": " + std::strerror(errno));
    }
    bound_unix_ = true;
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return fail(std::strerror(errno));
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config_.port);
    if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
      return fail("cannot parse host address " + config_.host);
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) < 0) {
      return fail("bind " + config_.host + ":" + std::to_string(config_.port) +
                  ": " + std::strerror(errno));
    }
    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &bound_len) == 0) {
      bound_port_ = ntohs(bound.sin_port);
    }
  }
  if (::listen(listen_fd_, SOMAXCONN) < 0) {
    return fail(std::string("listen: ") + std::strerror(errno));
  }
  if (!SetNonBlocking(listen_fd_)) {
    return fail(std::string("fcntl O_NONBLOCK: ") + std::strerror(errno));
  }

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    return fail(std::string("epoll_create1: ") + std::strerror(errno));
  }
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) {
    return fail(std::string("eventfd: ") + std::strerror(errno));
  }
  // The listen socket and the wake eventfd stay level-triggered and
  // always armed; only connection fds use EPOLLONESHOT re-arm.
  epoll_event lev{};
  lev.events = EPOLLIN;
  lev.data.fd = listen_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &lev) < 0) {
    return fail(std::string("epoll_ctl listen: ") + std::strerror(errno));
  }
  epoll_event wev{};
  wev.events = EPOLLIN;
  wev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &wev) < 0) {
    return fail(std::string("epoll_ctl eventfd: ") + std::strerror(errno));
  }

  stop_.store(false);
  running_.store(true);
  start_time_ = std::chrono::steady_clock::now();
  // Refreshable tenants can be superseded, capped catalogs can evict —
  // either way an idle worker pin would keep a dead engine resident.
  engines_volatile_ =
      catalog_->any_refreshable() || catalog_->max_engines() > 0;

  uint32_t workers = ResolveWorkerCount(config_.num_workers,
                                        std::numeric_limits<size_t>::max());
  workers_.reserve(workers);
  for (uint32_t i = 0; i < workers; ++i) {
    workers_.emplace_back(&QueryServer::WorkerLoop, this, i);
  }
  loop_thread_ = std::thread(&QueryServer::EventLoop, this);
  if (config_.maintenance_interval_ms > 0) {
    catalog_->SetMaintenancePolicy(MaintenancePolicy{
        config_.auto_compact_ratio, config_.maintenance_interval_ms});
    maintenance_thread_ = std::thread(&QueryServer::MaintenanceLoop, this);
  }
  return true;
}

void QueryServer::MaintenanceLoop() {
  const auto interval =
      std::chrono::milliseconds(config_.maintenance_interval_ms);
  std::unique_lock<std::mutex> lock(maint_mu_);
  while (!stop_.load()) {
    // Interruptible sleep FIRST: a tick at t=0 would race the daemon's
    // own startup appends for nothing.
    if (maint_cv_.wait_for(lock, interval, [&] { return stop_.load(); })) {
      return;
    }
    lock.unlock();
    catalog_->RunMaintenance();
    lock.lock();
  }
}

void QueryServer::RequestStop() {
  stop_.store(true);
  queue_cv_.notify_all();
  maint_cv_.notify_all();
  WakeLoop();
}

void QueryServer::WakeLoop() {
  if (wake_fd_ < 0) return;
  uint64_t one = 1;
  [[maybe_unused]] ssize_t r = ::write(wake_fd_, &one, sizeof(one));
}

void QueryServer::Wait() {
  while (!stop_.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  Stop();
}

void QueryServer::Stop() {
  RequestStop();
  if (maintenance_thread_.joinable()) maintenance_thread_.join();
  if (loop_thread_.joinable()) loop_thread_.join();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
  if (wake_fd_ >= 0) {
    ::close(wake_fd_);
    wake_fd_ = -1;
  }
  if (bound_unix_) {
    ::unlink(config_.unix_path.c_str());
    bound_unix_ = false;
  }
  running_.store(false);
}

// ------------------------------------------------------------ event loop

void QueryServer::EventLoop() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  bool draining = false;
  std::chrono::steady_clock::time_point drain_start;

  while (true) {
    if (stop_.load() && !draining) {
      // Stop accepting; keep looping until dispatched requests have
      // finished and their responses are flushed (the shutdown ACK must
      // reach its client), then cut the remaining connections.
      draining = true;
      drain_start = std::chrono::steady_clock::now();
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
      queue_cv_.notify_all();
    }
    if (draining && (Drained() || MsSince(drain_start) > kDrainCapMs)) break;

    int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, kLoopTickMs);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    // Accepts are deferred to the end of the batch: closing a connection
    // mid-batch releases its fd number, and accepting inside the batch
    // could re-use it while a stale event for the old connection is still
    // queued in `events`.
    bool accept_ready = false;
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      if (fd == listen_fd_) {
        accept_ready = true;
        continue;
      }
      if (fd == wake_fd_) {
        uint64_t drainv = 0;
        [[maybe_unused]] ssize_t r = ::read(wake_fd_, &drainv, sizeof(drainv));
        continue;
      }
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      std::shared_ptr<Connection> conn = it->second;
      if (events[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) {
        HandleReadable(conn);
      }
      SettleConnection(conn);
    }
    if (accept_ready && !draining) AcceptNewConnections();

    // Worker completions: flush the fresh responses and re-arm (a finished
    // untagged request may also unblock held frames → PumpDispatch inside
    // SettleConnection).
    std::vector<std::shared_ptr<Connection>> done;
    {
      std::lock_guard<std::mutex> lock(compl_mu_);
      done.swap(completions_);
    }
    for (const std::shared_ptr<Connection>& conn : done) {
      SettleConnection(conn);
    }

    if (config_.idle_timeout_ms > 0 && !draining) CloseIdleConnections();
  }

  // Teardown: everything still open is cut (queued-but-unserved frames and
  // unflushed bytes included — the drain window above is their grace
  // period).
  std::vector<std::shared_ptr<Connection>> remaining;
  remaining.reserve(conns_.size());
  for (auto& [fd, conn] : conns_) remaining.push_back(conn);
  for (const std::shared_ptr<Connection>& conn : remaining) {
    CloseConnection(conn);
  }
}

bool QueryServer::Drained() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (!dispatch_q_.empty()) return false;
  }
  if (inflight_total_.load() != 0) return false;
  for (auto& [fd, conn] : conns_) {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (!conn->wq.empty()) return false;
  }
  return true;
}

void QueryServer::AcceptNewConnections() {
  while (true) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN (drained) or a transient accept error
    }
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++connections_accepted_;
    }
    if (config_.max_connections > 0 &&
        conns_.size() >= config_.max_connections) {
      // Over the ceiling: shed the connection instead of letting an fd
      // flood starve the process of descriptors.
      ::close(fd);
      continue;
    }
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conn->accept_time = std::chrono::steady_clock::now();
    conn->last_activity = conn->accept_time;
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLONESHOT;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      continue;
    }
    conn->in_epoll = true;
    conns_.emplace(fd, std::move(conn));
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++active_connections_;
    }
  }
}

void QueryServer::HandleReadable(const std::shared_ptr<Connection>& conn) {
  if (conn->poisoned || conn->eof || conn->io_dead) return;
  uint8_t buf[kReadChunk];
  size_t total = 0;
  while (total < kMaxReadPerEvent) {
    ssize_t r = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (r > 0) {
      conn->rbuf.insert(conn->rbuf.end(), buf, buf + r);
      conn->last_activity = std::chrono::steady_clock::now();
      total += static_cast<size_t>(r);
      continue;
    }
    if (r == 0) {
      // Clean FIN. Frames already received still get served and their
      // responses written (the write side may be open); the connection is
      // reaped once it quiesces (SettleConnection).
      conn->eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    conn->io_dead = true;
    return;
  }
  ParseFrames(conn);
}

void QueryServer::ParseFrames(const std::shared_ptr<Connection>& conn) {
  while (!conn->poisoned) {
    size_t avail = conn->rbuf.size() - conn->rpos;
    uint32_t len = 0;
    if (avail < sizeof(len)) break;
    std::memcpy(&len, conn->rbuf.data() + conn->rpos, sizeof(len));
    if (len > config_.max_frame_bytes) {
      // The oversized payload will never be buffered, so the stream cannot
      // be resynchronized — answer once and drop the connection after the
      // error flushes. Frames already parsed but not dispatched are
      // dropped with it (the client never got an ack for them).
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++errors_;
      }
      ByteSink err = MakeErrorResponse(
          StatusCode::kBadRequest,
          "frame of " + std::to_string(len) + " bytes exceeds the limit of " +
              std::to_string(config_.max_frame_bytes));
      std::vector<uint8_t> framed = FrameBytes(err);
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        conn->wq_bytes += framed.size();
        conn->wq.push_back(std::move(framed));
        conn->close_after_flush = true;
      }
      conn->ready.clear();
      conn->poisoned = true;
      break;
    }
    if (avail - sizeof(len) < len) break;  // frame still incomplete
    auto begin = conn->rbuf.begin() +
                 static_cast<ptrdiff_t>(conn->rpos + sizeof(len));
    conn->ready.emplace_back(begin, begin + static_cast<ptrdiff_t>(len));
    conn->rpos += sizeof(len) + len;
  }
  // Compact the consumed prefix (the leftover is at most one partial
  // frame's worth of bytes).
  if (conn->rpos > 0) {
    conn->rbuf.erase(conn->rbuf.begin(),
                     conn->rbuf.begin() + static_cast<ptrdiff_t>(conn->rpos));
    conn->rpos = 0;
  }
}

void QueryServer::PumpDispatch(const std::shared_ptr<Connection>& conn) {
  if (stop_.load()) return;  // draining: never-dispatched frames are dropped
  while (!conn->ready.empty()) {
    const std::vector<uint8_t>& front = conn->ready.front();
    bool tagged = PeekType(front) ==
                  static_cast<uint32_t>(MessageType::kTaggedRequest);
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      // Untagged requests keep their original strictly-in-order contract:
      // one in flight, nothing overtakes it. Tagged requests fill the
      // pipeline up to the cap.
      if (conn->untagged_inflight) break;
      if (!tagged && conn->inflight > 0) break;
      if (tagged && conn->inflight >= config_.max_pipeline) break;
      ++conn->inflight;
      if (!tagged) conn->untagged_inflight = true;
    }
    inflight_total_.fetch_add(1);
    WorkItem item;
    item.conn = conn;
    item.frame = std::move(conn->ready.front());
    conn->ready.pop_front();
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      dispatch_q_.push_back(std::move(item));
    }
    queue_cv_.notify_one();
  }
}

bool QueryServer::FlushWrites(const std::shared_ptr<Connection>& conn) {
  // Gather cap per sendmsg (IOV_MAX is far higher; deeper queues loop).
  constexpr size_t kMaxFlushIov = 64;
  std::lock_guard<std::mutex> lock(conn->mu);
  uint64_t flushes = 0;
  uint64_t frames = 0;
  auto commit = [&] {
    if (flushes == 0) return;
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    flushes_ += flushes;
    frames_flushed_ += frames;
  };
  while (!conn->wq.empty()) {
    // Writev-style coalescing: every queued response frame (up to the
    // iovec cap) leaves in ONE gathering send — a pipeline of small
    // responses costs one syscall and one packet, not one per frame.
    iovec iov[kMaxFlushIov];
    size_t niov = 0;
    for (const std::vector<uint8_t>& frame : conn->wq) {
      if (niov == kMaxFlushIov) break;
      size_t off = niov == 0 ? conn->wq_front_off : 0;
      iov[niov].iov_base = const_cast<uint8_t*>(frame.data() + off);
      iov[niov].iov_len = frame.size() - off;
      ++niov;
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = niov;
    // sendmsg rather than plain writev: only msg-based sends take
    // MSG_NOSIGNAL, and a vanished peer must be an error return here, not
    // a process-wide SIGPIPE.
    ssize_t r = ::sendmsg(conn->fd, &msg, MSG_NOSIGNAL);
    if (r > 0) {
      if (!conn->first_byte_recorded) {
        conn->first_byte_recorded = true;
        RecordAcceptLatency(MsSince(conn->accept_time));
      }
      conn->last_activity = std::chrono::steady_clock::now();
      conn->wq_bytes -= static_cast<size_t>(r);
      ++flushes;
      // Retire fully-sent frames, advance into a partially-sent one.
      size_t sent = static_cast<size_t>(r);
      while (sent > 0) {
        size_t left = conn->wq.front().size() - conn->wq_front_off;
        if (sent < left) {
          conn->wq_front_off += sent;
          break;
        }
        sent -= left;
        conn->wq.pop_front();
        conn->wq_front_off = 0;
        ++frames;
      }
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    commit();
    if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return true;  // socket buffer full; EPOLLOUT re-arms the flush
    }
    return false;  // peer vanished
  }
  commit();
  return !conn->close_after_flush;  // fully flushed; close if so marked
}

bool QueryServer::SettleConnection(const std::shared_ptr<Connection>& conn) {
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->closed) return false;
  }
  if (conn->io_dead) {
    CloseConnection(conn);
    return false;
  }
  if (!FlushWrites(conn)) {
    CloseConnection(conn);
    return false;
  }
  PumpDispatch(conn);
  bool quiesced;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    quiesced = conn->eof && conn->ready.empty() && conn->inflight == 0 &&
               conn->wq.empty();
  }
  if (quiesced) {
    CloseConnection(conn);
    return false;
  }
  UpdateInterest(conn);
  return true;
}

void QueryServer::UpdateInterest(const std::shared_ptr<Connection>& conn) {
  bool want_read;
  bool want_write;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    want_write = !conn->wq.empty();
    // Backpressure: a connection whose pipeline or write queue is full
    // simply stops being read until completions drain it — the client
    // blocks in its send() instead of ballooning server memory.
    bool backpressured =
        conn->ready.size() >= 2 * static_cast<size_t>(config_.max_pipeline) ||
        conn->wq_bytes > 2 * static_cast<size_t>(config_.max_frame_bytes);
    want_read = !conn->poisoned && !conn->eof && !conn->close_after_flush &&
                !backpressured && !stop_.load();
  }
  epoll_event ev{};
  ev.events = EPOLLONESHOT | (want_read ? EPOLLIN : 0u) |
              (want_write ? EPOLLOUT : 0u);
  ev.data.fd = conn->fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

void QueryServer::CloseConnection(const std::shared_ptr<Connection>& conn) {
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->closed) return;
    conn->closed = true;
    conn->wq.clear();
    conn->wq_bytes = 0;
  }
  if (conn->in_epoll) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
    conn->in_epoll = false;
  }
  ::close(conn->fd);
  conns_.erase(conn->fd);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    --active_connections_;
  }
}

void QueryServer::CloseIdleConnections() {
  std::vector<std::shared_ptr<Connection>> idle;
  for (auto& [fd, conn] : conns_) {
    bool busy;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      busy = conn->inflight > 0 || !conn->wq.empty() || !conn->ready.empty();
    }
    if (!busy && MsSince(conn->last_activity) >
                     static_cast<double>(config_.idle_timeout_ms)) {
      idle.push_back(conn);
    }
  }
  for (const std::shared_ptr<Connection>& conn : idle) {
    CloseConnection(conn);
  }
}

// --------------------------------------------------------------- workers

void QueryServer::WorkerLoop(size_t /*worker_index*/) {
  WorkerEngine we;
  while (true) {
    WorkItem item;
    bool queue_empty;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock,
                     [&] { return stop_.load() || !dispatch_q_.empty(); });
      if (dispatch_q_.empty()) {
        // stop_ is set and nothing is queued: every dispatched request has
        // an owner; this worker is done.
        return;
      }
      item = std::move(dispatch_q_.front());
      dispatch_q_.pop_front();
      queue_empty = dispatch_q_.empty();
    }
    ProcessItem(std::move(item), we);
    if (engines_volatile_ || queue_empty) {
      // Drop the engine pins between requests (refreshable or evicting
      // catalogs) and whenever the worker goes idle: an idle pin would
      // keep a superseded or evicted graph + index generation resident.
      // Static unlimited catalogs under load keep the contexts warm
      // instead.
      we.slots.clear();
    }
  }
}

void QueryServer::ProcessItem(WorkItem item, WorkerEngine& we) {
  ByteSource src(item.frame.data(), item.frame.size());
  MessageType type = ReadMessageType(src);
  bool tagged = false;
  uint64_t request_id = 0;
  bool close_after = false;
  ByteSink response;
  bool have_response = false;

  if (src.ok() && type == MessageType::kTaggedRequest) {
    request_id = ReadTaggedId(src);
    if (!src.ok()) {
      // No id to echo — answer untagged, like any other malformed frame.
      response = MakeErrorResponse(StatusCode::kBadRequest,
                                   "tagged frame too short for a request id");
      have_response = true;
    } else {
      tagged = true;
      type = ReadMessageType(src);
    }
  }

  // The tenant-addressing envelope sits inside any tagging (PumpDispatch
  // peeks the outermost type for pipeline admission). An empty or absent
  // id routes to the catalog's default tenant.
  std::string graph_id;
  if (!have_response && src.ok() && type == MessageType::kScopedRequest) {
    graph_id = ReadScopedId(src);
    if (!src.ok()) {
      response = MakeErrorResponse(StatusCode::kBadRequest,
                                   "scoped frame too short for a graph id");
      have_response = true;
    } else {
      type = ReadMessageType(src);
      if (src.ok() && type == MessageType::kScopedRequest) {
        response = MakeErrorResponse(StatusCode::kBadRequest,
                                     "scoped envelope cannot nest");
        have_response = true;
      } else if (src.ok() && type == MessageType::kTaggedRequest) {
        response = MakeErrorResponse(StatusCode::kBadRequest,
                                     "tagged envelope must be outermost");
        have_response = true;
      }
    }
  }

  if (!have_response) {
    if (!src.ok()) {
      response = MakeErrorResponse(StatusCode::kBadRequest,
                                   "frame too short for a message type");
    } else {
      switch (type) {
        case MessageType::kQueryRequest: {
          QueryRequest req = QueryRequest::Deserialize(src);
          if (!src.ok() || src.remaining() != 0) {
            response = MakeErrorResponse(
                StatusCode::kBadRequest,
                src.ok() ? "trailing bytes in query request" : src.error());
          } else {
            // Pick up any engine published by a refresh (or reopened after
            // an eviction) since the last request; queries in flight
            // elsewhere keep their own pins.
            std::string sync_error;
            bool bad_request = false;
            TenantSlot* slot =
                SyncWorkerEngine(we, graph_id, &sync_error, &bad_request);
            if (slot == nullptr) {
              response = MakeErrorResponse(bad_request
                                               ? StatusCode::kBadRequest
                                               : StatusCode::kInternalError,
                                           sync_error);
            } else {
              auto t0 = std::chrono::steady_clock::now();
              response = HandleQuery(req, graph_id, *slot);
              RecordLatency(MsSince(t0));
            }
          }
          break;
        }
        case MessageType::kStatsRequest:
          response = HandleStats();
          break;
        case MessageType::kPingRequest: {
          ServerCapabilities caps;
          caps.revision = kProtocolRevision;
          caps.capabilities = kCapTagged | kCapScoped | kCapListGraphs |
                              (catalog_->any_refreshable() ? kCapRefresh : 0u);
          response = MakePingResponse(caps);
          break;
        }
        case MessageType::kRefreshRequest:
          response = HandleRefresh(graph_id);
          break;
        case MessageType::kListGraphsRequest:
          response = HandleListGraphs();
          break;
        case MessageType::kShutdownRequest:
          if (config_.allow_remote_shutdown) {
            response.WriteU32(
                static_cast<uint32_t>(MessageType::kShutdownResponse));
            close_after = true;
            RequestStop();
          } else {
            response = MakeErrorResponse(StatusCode::kBadRequest,
                                         "remote shutdown is disabled");
          }
          break;
        default:
          response = MakeErrorResponse(
              StatusCode::kBadRequest,
              "unknown request type " +
                  std::to_string(static_cast<uint32_t>(type)));
          break;
      }
    }
  }

  // A frame the client would reject as oversize (and that a 4-byte length
  // prefix may not even represent): substitute a small error so the work
  // is not silently dropped on the client side. The tagged envelope costs
  // 12 bytes of the budget.
  const size_t envelope_bytes =
      tagged ? sizeof(uint32_t) + sizeof(uint64_t) : 0;
  if (response.size() + envelope_bytes > config_.max_frame_bytes) {
    response = MakeErrorResponse(
        StatusCode::kInternalError,
        "response of " + std::to_string(response.size()) +
            " bytes exceeds the frame cap of " +
            std::to_string(config_.max_frame_bytes));
  }
  {
    // Count every protocol rejection the same way, whichever branch built
    // it (query failures are counted inside HandleQuery). The peek looks
    // at the INNER response type, before any envelope.
    uint32_t resp_type = 0;
    if (response.size() >= sizeof(resp_type)) {
      std::memcpy(&resp_type, response.data().data(), sizeof(resp_type));
    }
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++requests_served_;
    if (resp_type == static_cast<uint32_t>(MessageType::kErrorResponse)) {
      ++errors_;
    }
  }
  if (tagged) {
    response = WrapTagged(MessageType::kTaggedResponse, request_id, response);
  }
  FinishRequest(item.conn, FrameBytes(response), /*was_untagged=*/!tagged,
                close_after);
}

void QueryServer::FinishRequest(const std::shared_ptr<Connection>& conn,
                                std::vector<uint8_t> framed_response,
                                bool was_untagged, bool close_after) {
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    --conn->inflight;
    if (was_untagged) conn->untagged_inflight = false;
    if (close_after) conn->close_after_flush = true;
    if (!conn->closed) {
      conn->wq_bytes += framed_response.size();
      conn->wq.push_back(std::move(framed_response));
    }
  }
  inflight_total_.fetch_sub(1);
  {
    std::lock_guard<std::mutex> lock(compl_mu_);
    completions_.push_back(conn);
  }
  WakeLoop();
}

// -------------------------------------------------------------- handlers

ByteSink QueryServer::HandleQuery(const QueryRequest& req,
                                  const std::string& graph_id,
                                  TenantSlot& slot) {
  const GmEngine& engine = *slot.state->engine;
  EvalContext& ctx = *slot.ctx;
  // Generation-scoped: lives and dies with the pinned state, so a hit is
  // always consistent with the engine this request would have evaluated on.
  const std::shared_ptr<ResultCache>& cache = slot.state->cache;
  auto respond_error = [&](StatusCode status, const std::string& msg) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++errors_;
    }
    QueryResponse resp;
    resp.status = status;
    resp.error = msg;
    ByteSink sink;
    resp.Serialize(sink);
    return sink;
  };

  // Validate and parse. Template INSTANTIATION is deferred past the cache
  // probe: a template request's key needs only the name and seed, so the
  // hot template hit path skips instantiation along with evaluation.
  const bool is_template = !req.template_name.empty();
  std::vector<PatternQuery> queries;
  if (is_template) {
    if (!req.patterns.empty()) {
      return respond_error(StatusCode::kBadRequest,
                           "request has both patterns and a template");
    }
    if (!KnownTemplateName(req.template_name)) {
      return respond_error(StatusCode::kParseError,
                           "unknown query template " + req.template_name);
    }
  } else {
    if (req.patterns.empty()) {
      return respond_error(StatusCode::kBadRequest,
                           "request has neither patterns nor a template");
    }
    std::string parse_error;
    for (const std::string& text : req.patterns) {
      auto q = ParsePattern(text, &parse_error);
      if (!q.has_value()) {
        return respond_error(StatusCode::kParseError,
                             "cannot parse pattern '" + text +
                                 "': " + parse_error);
      }
      if (!q->IsConnected()) {
        return respond_error(StatusCode::kParseError,
                             "pattern '" + text + "' must be connected");
      }
      queries.push_back(std::move(*q));
    }
  }
  const uint64_t num_queries = is_template ? 1 : queries.size();

  GmOptions opts;
  opts.limit = req.limit;
  // The thread count is client-controlled; clamp it to the hardware so a
  // hostile request cannot make the enumeration spawn an unbounded number
  // of std::threads (0 keeps its "hardware concurrency" meaning).
  uint32_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 2;
  opts.num_threads = std::min(req.num_threads, hw);
  opts.use_transitive_reduction = req.use_transitive_reduction;
  opts.use_prefilter = req.use_prefilter;
  opts.use_double_simulation = req.use_double_simulation;

  const uint32_t tuple_cap =
      std::min(req.max_return_tuples, config_.max_return_tuples);

  // Books a served response (hit or cold) and puts it on the wire.
  auto serve = [&](const std::shared_ptr<const QueryResponse>& r) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      queries_served_ += num_queries;
      occurrences_emitted_ += r->TotalOccurrences();
    }
    catalog_->CountQuery(graph_id, num_queries);
    ByteSink sink;
    r->Serialize(sink);
    return sink;
  };

  // Cache key: exact canonical bytes (compared in full on every probe — a
  // digest collision could serve a wrong result, so no digest-only keys),
  // plus the result-relevant options. num_threads is excluded: per-query
  // results are identical at every thread count (the PR 1 equivalence the
  // tests lock), so thread-count variants share one entry.
  std::string cache_key;
  if (cache != nullptr) {
    ByteSink kb;
    if (is_template) {
      kb.WriteU8('T');
      kb.WriteString(req.template_name);
      kb.WriteU64(req.template_seed);
    } else {
      // Per-pattern canonical encodings, concatenated in REQUEST order: a
      // batch response carries one result row per request position, so
      // batch order is result-relevant even though each pattern's own
      // encoding is declaration-order-insensitive.
      kb.WriteU8('P');
      for (const PatternQuery& q : queries) {
        std::vector<uint8_t> enc = q.CanonicalEncoding();
        kb.WriteU64(enc.size());
        kb.WriteRaw(enc.data(), enc.size());
      }
    }
    kb.WriteU64(req.limit);
    kb.WriteU8(req.use_transitive_reduction ? 1 : 0);
    kb.WriteU8(req.use_prefilter ? 1 : 0);
    kb.WriteU8(req.use_double_simulation ? 1 : 0);
    kb.WriteU32(tuple_cap);
    cache_key.assign(reinterpret_cast<const char*>(kb.data().data()),
                     kb.size());
    if (is_template) {
      if (auto hit = cache->Lookup(cache_key)) return serve(hit);
    }
  }

  if (is_template) {
    queries.push_back(InstantiateTemplate(TemplateByName(req.template_name),
                                          QueryVariant::kHybrid,
                                          engine.graph().NumLabels(),
                                          req.template_seed));
  }

  auto evaluate = [&]() -> std::shared_ptr<const QueryResponse> {
    auto resp = std::make_shared<QueryResponse>();
    std::vector<GmResult> results;
    if (queries.size() == 1) {
      // The serving hot path: the worker's own reusable context.
      resp->tuple_arity = queries[0].NumNodes();
      std::mutex tuples_mu;  // parallel enumeration invokes the sink
                             // concurrently
      OccurrenceSink sink = nullptr;
      if (tuple_cap > 0) {
        sink = [&](const Occurrence& t) {
          std::lock_guard<std::mutex> lock(tuples_mu);
          if (resp->tuples.size() / resp->tuple_arity <
              static_cast<size_t>(tuple_cap)) {
            resp->tuples.insert(resp->tuples.end(), t.begin(), t.end());
          }
          return true;
        };
      }
      results.push_back(engine.Evaluate(ctx, queries[0], opts, sink));
    } else {
      // Multi-pattern request: one EvaluateBatch call (its own worker pool
      // and contexts; per-query results identical to sequential
      // evaluation).
      results = engine.EvaluateBatch(std::span<const PatternQuery>(queries),
                                     opts, nullptr);
    }
    for (const GmResult& r : results) {
      QueryResultWire w;
      w.num_occurrences = r.num_occurrences;
      w.hit_limit = r.hit_limit;
      w.matching_ms = r.MatchingMs();
      w.enumerate_ms = r.enumerate_ms;
      w.phase_timings.reserve(r.phase_timings.size());
      for (const PhaseTiming& pt : r.phase_timings) {
        w.phase_timings.push_back(PhaseTimingWire{pt.name, pt.ms});
      }
      resp->results.push_back(std::move(w));
    }
    return resp;
  };

  // Miss path: singleflight — N concurrent identical cold queries (a full
  // pipeline of the same hot pattern) evaluate once and share the result.
  std::shared_ptr<const QueryResponse> result =
      cache != nullptr ? cache->GetOrCompute(cache_key, evaluate)
                       : evaluate();
  return serve(result);
}

ByteSink QueryServer::HandleRefresh(const std::string& graph_id) {
  // The replay/validate/swap pipeline (and its per-tenant serialization)
  // lives in the catalog; this wrapper only translates the result onto the
  // wire and into the serving counters.
  auto t0 = std::chrono::steady_clock::now();
  CatalogRefreshResult result = catalog_->Refresh(graph_id);
  RefreshResponse resp;
  resp.records_applied = result.records_applied;
  resp.edges_in_records = result.edges_in_records;
  resp.last_seqno = result.last_seqno;
  resp.num_nodes = result.num_nodes;
  resp.num_edges = result.num_edges;
  resp.log_truncated = result.log_truncated;
  if (!result.ok) {
    resp.status = result.bad_request ? StatusCode::kBadRequest
                                     : StatusCode::kInternalError;
    resp.error = result.error;
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++errors_;
  } else if (result.records_applied > 0) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++refreshes_;
  }
  resp.refresh_ms = MsSince(t0);
  ByteSink sink;
  resp.Serialize(sink);
  return sink;
}

ByteSink QueryServer::HandleListGraphs() const {
  ListGraphsResponse resp;
  resp.default_id = catalog_->default_id();
  std::vector<TenantInfo> tenants = catalog_->List();
  resp.graphs.reserve(tenants.size());
  for (const TenantInfo& t : tenants) {
    resp.graphs.push_back(GraphInfoWire{t.id, t.resident, t.refreshable,
                                        t.applied_seqno, t.queries});
  }
  ByteSink sink;
  resp.Serialize(sink);
  return sink;
}

ByteSink QueryServer::HandleStats() const {
  ServerStats stats = Snapshot();
  StatsResponse resp;
  resp.uptime_ms = static_cast<uint64_t>(stats.uptime_ms);
  resp.connections_accepted = stats.connections_accepted;
  resp.active_connections = stats.active_connections;
  resp.requests_served = stats.requests_served;
  resp.queries_served = stats.queries_served;
  resp.errors = stats.errors;
  resp.occurrences_emitted = stats.occurrences_emitted;
  resp.refreshes = stats.refreshes;
  resp.dispatch_depth = stats.dispatch_depth;
  resp.latency_p50_ms = stats.latency_p50_ms;
  resp.latency_p99_ms = stats.latency_p99_ms;
  resp.accept_p50_ms = stats.accept_p50_ms;
  resp.accept_p99_ms = stats.accept_p99_ms;
  CatalogStats cstats = catalog_->Stats();
  resp.graphs_registered = cstats.registered;
  resp.graphs_resident = cstats.resident;
  resp.catalog_hits = cstats.hits;
  resp.catalog_misses = cstats.misses;
  resp.catalog_evictions = cstats.evictions;
  std::vector<TenantInfo> tenants = catalog_->List();
  resp.tenants.reserve(tenants.size());
  resp.tenant_caches.reserve(tenants.size());
  for (const TenantInfo& t : tenants) {
    resp.tenants.push_back(GraphInfoWire{t.id, t.resident, t.refreshable,
                                         t.applied_seqno, t.queries});
    resp.tenant_caches.push_back(TenantCacheWire{
        t.id, t.cache.hits, t.cache.misses, t.cache.inserts,
        t.cache.evictions, t.cache.singleflight_waits, t.cache.bytes_used,
        t.cache.entries});
  }
  resp.cache_hits = stats.cache.hits;
  resp.cache_misses = stats.cache.misses;
  resp.cache_inserts = stats.cache.inserts;
  resp.cache_evictions = stats.cache.evictions;
  resp.cache_singleflight_waits = stats.cache.singleflight_waits;
  resp.cache_bytes_used = stats.cache.bytes_used;
  resp.cache_entries = stats.cache.entries;
  resp.flushes = stats.flushes;
  resp.frames_flushed = stats.frames_flushed;
  resp.auto_refreshes = stats.auto_refreshes;
  resp.auto_compactions = stats.auto_compactions;
  resp.maintenance_bytes_reclaimed = stats.maintenance_bytes_reclaimed;
  resp.deletes_applied = stats.deletes_applied;
  ByteSink sink;
  resp.Serialize(sink);
  return sink;
}

void QueryServer::RecordLatency(double ms) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  latency_ring_[latency_next_] = ms;
  latency_next_ = (latency_next_ + 1) % latency_ring_.size();
  if (latency_next_ == 0) latency_wrapped_ = true;
}

void QueryServer::RecordAcceptLatency(double ms) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  accept_ring_[accept_next_] = ms;
  accept_next_ = (accept_next_ + 1) % accept_ring_.size();
  if (accept_next_ == 0) accept_wrapped_ = true;
}

ServerStats QueryServer::Snapshot() const {
  ServerStats stats;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stats.dispatch_depth = dispatch_q_.size();
  }
  // Cache totals: sum every resident tenant's current-generation cache
  // (the catalog walk takes its own locks, so it stays outside stats_mu_).
  for (const TenantInfo& t : catalog_->List()) {
    stats.cache.hits += t.cache.hits;
    stats.cache.misses += t.cache.misses;
    stats.cache.inserts += t.cache.inserts;
    stats.cache.evictions += t.cache.evictions;
    stats.cache.singleflight_waits += t.cache.singleflight_waits;
    stats.cache.bytes_used += t.cache.bytes_used;
    stats.cache.entries += t.cache.entries;
  }
  {
    MaintenanceStats maint = catalog_->maintenance_stats();
    stats.auto_refreshes = maint.auto_refreshes;
    stats.auto_compactions = maint.auto_compactions;
    stats.maintenance_bytes_reclaimed = maint.bytes_reclaimed;
    stats.deletes_applied = maint.deletes_applied;
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats.connections_accepted = connections_accepted_;
  stats.active_connections = active_connections_;
  stats.requests_served = requests_served_;
  stats.queries_served = queries_served_;
  stats.errors = errors_;
  stats.occurrences_emitted = occurrences_emitted_;
  stats.refreshes = refreshes_;
  stats.flushes = flushes_;
  stats.frames_flushed = frames_flushed_;
  stats.uptime_ms = MsSince(start_time_);
  std::vector<double> samples(
      latency_ring_.begin(),
      latency_ring_.begin() +
          (latency_wrapped_ ? latency_ring_.size() : latency_next_));
  stats.latency_p50_ms = Percentile(samples, 0.50);
  stats.latency_p99_ms = Percentile(std::move(samples), 0.99);
  std::vector<double> accepts(
      accept_ring_.begin(),
      accept_ring_.begin() +
          (accept_wrapped_ ? accept_ring_.size() : accept_next_));
  stats.accept_p50_ms = Percentile(accepts, 0.50);
  stats.accept_p99_ms = Percentile(std::move(accepts), 0.99);
  return stats;
}

}  // namespace rigpm::server
