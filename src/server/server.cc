#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <limits>
#include <span>
#include <utility>

#include "query/pattern_parser.h"
#include "query/query_templates.h"
#include "storage/delta_log.h"
#include "util/concurrency.h"

namespace rigpm::server {

namespace {

constexpr int kAcceptPollMs = 100;
constexpr size_t kLatencyRingCapacity = 4096;

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

bool KnownTemplateName(const std::string& name) {
  for (const QueryTemplate& tpl : HQueryTemplates()) {
    if (tpl.name == name) return true;
  }
  return false;
}

/// Percentile over an unsorted sample copy (nearest-rank).
double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  size_t rank = static_cast<size_t>(p * static_cast<double>(samples.size()));
  rank = std::min(rank, samples.size() - 1);
  std::nth_element(samples.begin(), samples.begin() + rank, samples.end());
  return samples[rank];
}

}  // namespace

QueryServer::QueryServer(const GmEngine& engine, ServerConfig config)
    : config_(std::move(config)) {
  // The initial state aliases the caller's engine (which must outlive the
  // server); refreshed states own their graph + engine.
  auto initial = std::make_shared<EngineState>();
  initial->engine = std::shared_ptr<const GmEngine>(
      std::shared_ptr<const GmEngine>(), &engine);
  state_ = std::move(initial);
  latency_ring_.resize(kLatencyRingCapacity, 0.0);
}

QueryServer::~QueryServer() { Stop(); }

std::string QueryServer::endpoint() const {
  if (!config_.unix_path.empty()) return "unix:" + config_.unix_path;
  return config_.host + ":" + std::to_string(bound_port_);
}

std::shared_ptr<const QueryServer::EngineState> QueryServer::CurrentState()
    const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return state_;
}

void QueryServer::SyncWorkerEngine(WorkerEngine& we) const {
  std::shared_ptr<const EngineState> current = CurrentState();
  if (current == we.state) return;
  // The context references the state's graph/index; drop it before the
  // state so nothing dangles, then rebuild against the fresh engine.
  we.ctx.reset();
  we.state = std::move(current);
  we.ctx.emplace(we.state->engine->MakeContext());
}

uint64_t QueryServer::applied_seqno() const {
  return CurrentState()->applied_seqno;
}

bool QueryServer::Start(std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };

  if (!config_.unix_path.empty()) {
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return fail(std::strerror(errno));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (config_.unix_path.size() >= sizeof(addr.sun_path)) {
      return fail("unix socket path too long: " + config_.unix_path);
    }
    std::strncpy(addr.sun_path, config_.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    // Only remove a STALE socket (left by a dead server). If a live daemon
    // still answers on the path, fail loudly instead of silently unlinking
    // its endpoint out from under it; and never unlink a non-socket (a
    // mistyped --socket pointing at a regular file must not delete it).
    struct stat st{};
    if (::lstat(config_.unix_path.c_str(), &st) == 0) {
      if (!S_ISSOCK(st.st_mode)) {
        return fail(config_.unix_path + " exists and is not a socket");
      }
      int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (probe >= 0) {
        bool alive = ::connect(probe, reinterpret_cast<sockaddr*>(&addr),
                               sizeof(addr)) == 0;
        ::close(probe);
        if (alive) {
          return fail(config_.unix_path + " is already being served");
        }
      }
      ::unlink(config_.unix_path.c_str());
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) < 0) {
      return fail("bind " + config_.unix_path + ": " + std::strerror(errno));
    }
    bound_unix_ = true;
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return fail(std::strerror(errno));
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config_.port);
    if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
      return fail("cannot parse host address " + config_.host);
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) < 0) {
      return fail("bind " + config_.host + ":" + std::to_string(config_.port) +
                  ": " + std::strerror(errno));
    }
    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &bound_len) == 0) {
      bound_port_ = ntohs(bound.sin_port);
    }
  }
  if (::listen(listen_fd_, SOMAXCONN) < 0) {
    return fail(std::string("listen: ") + std::strerror(errno));
  }

  stop_.store(false);
  running_.store(true);
  start_time_ = std::chrono::steady_clock::now();

  uint32_t workers = ResolveWorkerCount(config_.num_workers,
                                        std::numeric_limits<size_t>::max());
  workers_.reserve(workers);
  for (uint32_t i = 0; i < workers; ++i) {
    workers_.emplace_back(&QueryServer::WorkerLoop, this, i);
  }
  acceptor_ = std::thread(&QueryServer::AcceptLoop, this);
  return true;
}

void QueryServer::RequestStop() {
  stop_.store(true);
  queue_cv_.notify_all();
}

void QueryServer::Wait() {
  while (!stop_.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  Stop();
}

void QueryServer::Stop() {
  RequestStop();
  if (acceptor_.joinable()) acceptor_.join();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  // Connections accepted but never picked up by a worker.
  for (int fd : pending_fds_) ::close(fd);
  pending_fds_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (bound_unix_) {
    ::unlink(config_.unix_path.c_str());
    bound_unix_ = false;
  }
  running_.store(false);
}

void QueryServer::AcceptLoop() {
  while (!stop_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, kAcceptPollMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++connections_accepted_;
    }
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      pending_fds_.push_back(fd);
    }
    queue_cv_.notify_one();
  }
}

void QueryServer::WorkerLoop(size_t /*worker_index*/) {
  WorkerEngine we;
  while (true) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock,
                     [&] { return stop_.load() || !pending_fds_.empty(); });
      if (stop_.load()) return;  // queued fds are closed by Stop()
      fd = pending_fds_.front();
      pending_fds_.pop_front();
    }
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++active_connections_;
    }
    ServeConnection(fd, we);
    ::close(fd);
    // Drop the engine pin before blocking on the queue: an idle worker
    // must not keep a superseded (refreshed-away) graph + index
    // generation resident — with N workers that would hold up to N extra
    // full engines after refreshes. The context is rebuilt on the next
    // query request (SyncWorkerEngine), which is cheap next to serving a
    // connection.
    we.ctx.reset();
    we.state.reset();
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      --active_connections_;
    }
  }
}

void QueryServer::ServeConnection(int fd, WorkerEngine& we) {
  std::vector<uint8_t> frame;
  std::string io_error;
  while (!stop_.load()) {
    FrameReadStatus st = ReadFrame(fd, config_.max_frame_bytes, &frame,
                                   &io_error, &stop_);
    if (st == FrameReadStatus::kEof || st == FrameReadStatus::kStopped) {
      return;
    }
    if (st == FrameReadStatus::kOversize) {
      // The oversized payload was never read, so the stream cannot be
      // resynchronized — answer once and drop the connection.
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++errors_;
      }
      ByteSink err = MakeErrorResponse(StatusCode::kBadRequest, io_error);
      WriteFrame(fd, err, nullptr);
      return;
    }
    if (st == FrameReadStatus::kError) return;  // disconnect mid-frame

    ByteSource src(frame.data(), frame.size());
    MessageType type = ReadMessageType(src);
    ByteSink response;
    bool close_after = false;
    if (!src.ok()) {
      response = MakeErrorResponse(StatusCode::kBadRequest,
                                   "frame too short for a message type");
    } else {
      switch (type) {
        case MessageType::kQueryRequest: {
          QueryRequest req = QueryRequest::Deserialize(src);
          if (!src.ok() || src.remaining() != 0) {
            response = MakeErrorResponse(
                StatusCode::kBadRequest,
                src.ok() ? "trailing bytes in query request" : src.error());
          } else {
            // Pick up any engine published by a refresh since the last
            // request; queries in flight elsewhere keep their own pins.
            SyncWorkerEngine(we);
            auto t0 = std::chrono::steady_clock::now();
            response = HandleQuery(req, we);
            RecordLatency(MsSince(t0));
          }
          break;
        }
        case MessageType::kStatsRequest:
          response = HandleStats();
          break;
        case MessageType::kPingRequest:
          response.WriteU32(
              static_cast<uint32_t>(MessageType::kPingResponse));
          break;
        case MessageType::kRefreshRequest:
          response = HandleRefresh();
          break;
        case MessageType::kShutdownRequest:
          if (config_.allow_remote_shutdown) {
            response.WriteU32(
                static_cast<uint32_t>(MessageType::kShutdownResponse));
            close_after = true;
            RequestStop();
          } else {
            response = MakeErrorResponse(StatusCode::kBadRequest,
                                         "remote shutdown is disabled");
          }
          break;
        default:
          response = MakeErrorResponse(
              StatusCode::kBadRequest,
              "unknown request type " +
                  std::to_string(static_cast<uint32_t>(type)));
          break;
      }
    }
    if (response.size() > config_.max_frame_bytes) {
      // A frame the client would reject as oversize (and that a 4-byte
      // length prefix may not even represent): substitute a small error
      // so the work is not silently dropped on the client side.
      response = MakeErrorResponse(
          StatusCode::kInternalError,
          "response of " + std::to_string(response.size()) +
              " bytes exceeds the frame cap of " +
              std::to_string(config_.max_frame_bytes));
    }
    {
      // Count every protocol rejection the same way, whichever branch
      // built it (query failures are counted inside HandleQuery).
      uint32_t resp_type = 0;
      if (response.size() >= sizeof(resp_type)) {
        std::memcpy(&resp_type, response.data().data(), sizeof(resp_type));
      }
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++requests_served_;
      if (resp_type == static_cast<uint32_t>(MessageType::kErrorResponse)) {
        ++errors_;
      }
    }
    if (!WriteFrame(fd, response, nullptr)) return;  // peer vanished
    if (close_after) return;
    if (!config_.delta_path.empty()) {
      // Refresh-enabled daemon: drop the engine pin before blocking for
      // the connection's next request, or an idle-but-connected client
      // would keep a refreshed-away engine generation resident. Costs a
      // context rebuild per request; static-engine deployments (no delta)
      // keep the per-connection scratch reuse instead.
      we.ctx.reset();
      we.state.reset();
    }
  }
}

ByteSink QueryServer::HandleQuery(const QueryRequest& req, WorkerEngine& we) {
  const GmEngine& engine = *we.state->engine;
  EvalContext& ctx = *we.ctx;
  QueryResponse resp;
  auto respond_error = [&](StatusCode status, const std::string& msg) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++errors_;
    }
    resp.status = status;
    resp.error = msg;
    resp.results.clear();
    ByteSink sink;
    resp.Serialize(sink);
    return sink;
  };

  // Resolve the request into concrete queries.
  std::vector<PatternQuery> queries;
  if (!req.template_name.empty()) {
    if (!req.patterns.empty()) {
      return respond_error(StatusCode::kBadRequest,
                           "request has both patterns and a template");
    }
    if (!KnownTemplateName(req.template_name)) {
      return respond_error(StatusCode::kParseError,
                           "unknown query template " + req.template_name);
    }
    queries.push_back(InstantiateTemplate(TemplateByName(req.template_name),
                                          QueryVariant::kHybrid,
                                          engine.graph().NumLabels(),
                                          req.template_seed));
  } else {
    if (req.patterns.empty()) {
      return respond_error(StatusCode::kBadRequest,
                           "request has neither patterns nor a template");
    }
    std::string parse_error;
    for (const std::string& text : req.patterns) {
      auto q = ParsePattern(text, &parse_error);
      if (!q.has_value()) {
        return respond_error(StatusCode::kParseError,
                             "cannot parse pattern '" + text +
                                 "': " + parse_error);
      }
      if (!q->IsConnected()) {
        return respond_error(StatusCode::kParseError,
                             "pattern '" + text + "' must be connected");
      }
      queries.push_back(std::move(*q));
    }
  }

  GmOptions opts;
  opts.limit = req.limit;
  // The thread count is client-controlled; clamp it to the hardware so a
  // hostile request cannot make the enumeration spawn an unbounded number
  // of std::threads (0 keeps its "hardware concurrency" meaning).
  uint32_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 2;
  opts.num_threads = std::min(req.num_threads, hw);
  opts.use_transitive_reduction = req.use_transitive_reduction;
  opts.use_prefilter = req.use_prefilter;
  opts.use_double_simulation = req.use_double_simulation;

  const uint32_t tuple_cap =
      std::min(req.max_return_tuples, config_.max_return_tuples);

  std::vector<GmResult> results;
  if (queries.size() == 1) {
    // The serving hot path: the worker's own reusable context.
    resp.tuple_arity = queries[0].NumNodes();
    std::mutex tuples_mu;  // parallel enumeration invokes the sink concurrently
    OccurrenceSink sink = nullptr;
    if (tuple_cap > 0) {
      sink = [&](const Occurrence& t) {
        std::lock_guard<std::mutex> lock(tuples_mu);
        if (resp.tuples.size() / resp.tuple_arity <
            static_cast<size_t>(tuple_cap)) {
          resp.tuples.insert(resp.tuples.end(), t.begin(), t.end());
        }
        return true;
      };
    }
    results.push_back(engine.Evaluate(ctx, queries[0], opts, sink));
  } else {
    // Multi-pattern request: one EvaluateBatch call (its own worker pool
    // and contexts; per-query results identical to sequential evaluation).
    results = engine.EvaluateBatch(std::span<const PatternQuery>(queries),
                                   opts, nullptr);
  }

  uint64_t occurrences = 0;
  for (const GmResult& r : results) {
    QueryResultWire w;
    w.num_occurrences = r.num_occurrences;
    w.hit_limit = r.hit_limit;
    w.matching_ms = r.MatchingMs();
    w.enumerate_ms = r.enumerate_ms;
    w.phase_timings.reserve(r.phase_timings.size());
    for (const PhaseTiming& pt : r.phase_timings) {
      w.phase_timings.push_back(PhaseTimingWire{pt.name, pt.ms});
    }
    occurrences += r.num_occurrences;
    resp.results.push_back(std::move(w));
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    queries_served_ += queries.size();
    occurrences_emitted_ += occurrences;
  }

  ByteSink sink;
  resp.Serialize(sink);
  return sink;
}

ByteSink QueryServer::HandleRefresh() {
  RefreshResponse resp;
  auto respond = [&]() {
    if (resp.status != StatusCode::kOk) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++errors_;
    }
    ByteSink sink;
    resp.Serialize(sink);
    return sink;
  };
  if (config_.delta_path.empty()) {
    resp.status = StatusCode::kBadRequest;
    resp.error = "server has no delta log configured (--delta)";
    return respond();
  }

  // One refresh at a time; a second request queues here and then finds the
  // log already replayed (records_applied == 0).
  std::lock_guard<std::mutex> refresh_lock(refresh_mu_);
  auto t0 = std::chrono::steady_clock::now();
  std::shared_ptr<const EngineState> old_state = CurrentState();
  const Graph& old_graph = old_state->engine->graph();
  auto respond_caught_up = [&]() {
    resp.last_seqno = old_state->applied_seqno;
    resp.num_nodes = old_graph.NumNodes();
    resp.num_edges = old_graph.NumEdges();
    resp.refresh_ms = MsSince(t0);
    return respond();
  };

  // The log is created lazily by the first append; a refresh that beats it
  // is a healthy caught-up state, not an error. A zero-length file is the
  // same state one crashed step later (open(O_CREAT) happened, the header
  // pwrite did not) — DeltaWriter::Open likewise treats it as
  // empty-to-initialize.
  struct stat st{};
  if (::stat(config_.delta_path.c_str(), &st) != 0) {
    if (errno == ENOENT) return respond_caught_up();
  } else if (st.st_size == 0) {
    return respond_caught_up();
  }

  DeltaReader reader(config_.delta_path, config_.delta_io);
  if (!reader.ok()) {
    resp.status = StatusCode::kInternalError;
    resp.error = "cannot read delta log: " + reader.error();
    return respond();
  }
  if (config_.base_checksum != 0 &&
      reader.base_checksum() != config_.base_checksum) {
    resp.status = StatusCode::kBadRequest;
    resp.error = "delta log is bound to a different base snapshot";
    return respond();
  }

  // Note: every refresh re-validates the chain from record 1 (the seeded
  // checksums require a prefix scan), so a caught-up poll costs O(total
  // log), not O(new records). Fine while logs stay small relative to the
  // base — compaction-by-resnapshot is the pressure valve; caching the
  // (offset, chain) position across refreshes is the follow-on if polling
  // long logs ever matters.
  std::string replay_error;
  ReplayStats stats;
  std::vector<std::pair<NodeId, NodeId>> edges;
  if (!CollectDeltaEdges(reader, old_graph.NumNodes(),
                         old_state->applied_seqno, &edges, &stats,
                         &replay_error)) {
    resp.status = StatusCode::kInternalError;
    resp.error = replay_error;
    return respond();
  }
  // Corruption check FIRST: a corrupt record inside the already-applied
  // prefix also stops the reader before the resume point, and diagnosing
  // that as "rewritten log" would send the operator chasing the wrong
  // remediation.
  if (reader.truncated() && !reader.tail_torn()) {
    // Corruption of acknowledged data — NOT the benign crashed-append
    // tail. Applying the valid prefix would silently serve a graph missing
    // journaled updates; keep the current state and surface it.
    resp.status = StatusCode::kInternalError;
    resp.error = "delta log is corrupt after record " +
                 std::to_string(reader.records_read()) + " (" +
                 reader.tail_error() + ") — refresh refused";
    return respond();
  }
  // The applied prefix must still be the prefix we applied: if the log
  // was truncated and rewritten with reused seqnos (recovery after
  // corruption, or delete + recreate), skipping by number alone would
  // serve a silently stale graph forever. The chain checksum at the
  // resume point detects any such rewrite.
  if (old_state->applied_seqno > 0 &&
      stats.resume_chain != old_state->applied_chain) {
    resp.status = StatusCode::kBadRequest;
    resp.error =
        "delta log no longer contains the applied prefix (rewritten or "
        "replaced since the last refresh) — restart the daemon from the "
        "base snapshot";
    return respond();
  }
  resp.log_truncated = reader.truncated();
  resp.records_applied = stats.records_applied;
  resp.edges_in_records = stats.edges_in_records;

  // Already caught up: nothing to rebuild or swap.
  if (stats.records_applied == 0) return respond_caught_up();

  // Build the successor state: merged graph + a fresh reachability index.
  // This is the refresh cost — and still far cheaper than re-dumping and
  // reloading the whole snapshot (bench_delta measures both).
  auto new_state = std::make_shared<EngineState>();
  new_state->graph =
      std::make_shared<const Graph>(ApplyEdgesToGraph(old_graph, edges));
  new_state->engine = std::make_shared<const GmEngine>(*new_state->graph);
  new_state->applied_seqno = stats.last_seqno;
  new_state->applied_chain = stats.end_chain;
  resp.last_seqno = stats.last_seqno;
  resp.num_nodes = new_state->graph->NumNodes();
  resp.num_edges = new_state->graph->NumEdges();

  {
    // RCU publish: workers pick the new state up on their next request;
    // queries running right now finish on the old engine, which stays
    // alive until the last of them drops its shared_ptr.
    std::lock_guard<std::mutex> lock(state_mu_);
    state_ = std::move(new_state);
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++refreshes_;
  }
  resp.refresh_ms = MsSince(t0);
  return respond();
}

ByteSink QueryServer::HandleStats() const {
  ServerStats stats = Snapshot();
  StatsResponse resp;
  resp.uptime_ms = static_cast<uint64_t>(stats.uptime_ms);
  resp.connections_accepted = stats.connections_accepted;
  resp.active_connections = stats.active_connections;
  resp.requests_served = stats.requests_served;
  resp.queries_served = stats.queries_served;
  resp.errors = stats.errors;
  resp.occurrences_emitted = stats.occurrences_emitted;
  resp.refreshes = stats.refreshes;
  resp.latency_p50_ms = stats.latency_p50_ms;
  resp.latency_p99_ms = stats.latency_p99_ms;
  ByteSink sink;
  resp.Serialize(sink);
  return sink;
}

void QueryServer::RecordLatency(double ms) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  latency_ring_[latency_next_] = ms;
  latency_next_ = (latency_next_ + 1) % latency_ring_.size();
  if (latency_next_ == 0) latency_wrapped_ = true;
}

ServerStats QueryServer::Snapshot() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  ServerStats stats;
  stats.connections_accepted = connections_accepted_;
  stats.active_connections = active_connections_;
  stats.requests_served = requests_served_;
  stats.queries_served = queries_served_;
  stats.errors = errors_;
  stats.occurrences_emitted = occurrences_emitted_;
  stats.refreshes = refreshes_;
  stats.uptime_ms = MsSince(start_time_);
  std::vector<double> samples(
      latency_ring_.begin(),
      latency_ring_.begin() +
          (latency_wrapped_ ? latency_ring_.size() : latency_next_));
  stats.latency_p50_ms = Percentile(samples, 0.50);
  stats.latency_p99_ms = Percentile(samples, 0.99);
  return stats;
}

}  // namespace rigpm::server
