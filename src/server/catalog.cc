#include "server/catalog.h"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

#include "storage/delta_log.h"
#include "storage/snapshot.h"

namespace rigpm::server {

namespace {

void SetError(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
}

struct FdCloser {
  int fd;
  ~FdCloser() {
    if (fd >= 0) ::close(fd);
  }
};

}  // namespace

EngineCatalog::EngineCatalog(uint32_t max_engines)
    : max_engines_(max_engines) {}

bool EngineCatalog::Register(const std::string& id, EngineSource source,
                             std::string* error) {
  if (id.empty()) {
    SetError(error, "tenant id must not be empty");
    return false;
  }
  if (source.snapshot_path.empty()) {
    SetError(error, "tenant \"" + id + "\" needs a snapshot path");
    return false;
  }
  auto entry = std::make_shared<Entry>();
  entry->id = id;
  entry->source = std::move(source);
  std::lock_guard<std::mutex> lock(mu_);
  if (!entries_.emplace(id, std::move(entry)).second) {
    SetError(error, "tenant \"" + id + "\" is already registered");
    return false;
  }
  if (default_id_.empty()) default_id_ = id;
  return true;
}

bool EngineCatalog::AdoptEngine(const std::string& id, const GmEngine& engine,
                                EngineSource source, uint64_t base_checksum,
                                std::string* error) {
  if (id.empty()) {
    SetError(error, "tenant id must not be empty");
    return false;
  }
  auto state = std::make_shared<EngineState>();
  // Alias the caller's engine (which must outlive the catalog); refreshed
  // successors own their graph + engine.
  state->engine =
      std::shared_ptr<const GmEngine>(std::shared_ptr<const GmEngine>(),
                                      &engine);
  state->base_checksum = base_checksum;
  state->cache = MakeCache();
  auto entry = std::make_shared<Entry>();
  entry->id = id;
  entry->source = std::move(source);
  entry->adopted = true;
  entry->state = std::move(state);
  std::lock_guard<std::mutex> lock(mu_);
  if (!entries_.emplace(id, std::move(entry)).second) {
    SetError(error, "tenant \"" + id + "\" is already registered");
    return false;
  }
  if (default_id_.empty()) default_id_ = id;
  return true;
}

std::shared_ptr<EngineCatalog::Entry> EngineCatalog::FindAndTouch(
    const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string& key = id.empty() ? default_id_ : id;
  auto it = entries_.find(key);
  if (it == entries_.end()) return nullptr;
  it->second->last_used = ++clock_;
  return it->second;
}

std::shared_ptr<EngineCatalog::Entry> EngineCatalog::Find(
    const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string& key = id.empty() ? default_id_ : id;
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : it->second;
}

std::shared_ptr<const EngineState> EngineCatalog::StateOf(
    const Entry& e) const {
  std::lock_guard<std::mutex> lock(e.state_mu);
  return e.state;
}

std::shared_ptr<ResultCache> EngineCatalog::MakeCache() const {
  uint64_t bytes = cache_bytes();
  if (bytes == 0) return nullptr;
  return std::make_shared<ResultCache>(bytes);
}

std::shared_ptr<const EngineState> EngineCatalog::Acquire(
    const std::string& id, std::string* error) {
  std::shared_ptr<Entry> entry = FindAndTouch(id);
  if (entry == nullptr) {
    SetError(error, "unknown graph id \"" + (id.empty() ? default_id() : id) +
                        "\"");
    return nullptr;
  }
  if (auto state = StateOf(*entry)) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return state;
  }
  // Cold (or evicted) tenant: open under the entry's open_mu so concurrent
  // first requests load the snapshot once, while requests for OTHER
  // tenants proceed untouched (no catalog-wide lock is held here).
  std::lock_guard<std::mutex> open_lock(entry->open_mu);
  if (auto state = StateOf(*entry)) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return state;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  std::shared_ptr<const EngineState> opened = Open(*entry, error);
  if (opened == nullptr) return nullptr;
  {
    std::lock_guard<std::mutex> lock(entry->state_mu);
    entry->state = opened;
  }
  EnforceCap(entry.get());
  return opened;
}

std::shared_ptr<const EngineState> EngineCatalog::Open(Entry& e,
                                                       std::string* error) {
  if (e.adopted) {
    // Adopted engines have no source to reopen from; they are pinned
    // resident, so a null state here cannot happen in practice.
    SetError(error, "tenant \"" + e.id + "\" has no snapshot to open");
    return nullptr;
  }
  // A compaction may have re-pointed this tenant's storage at a newer
  // generation: always open what the lineage head names, not the
  // configured gen-0 paths.
  std::string lineage_error;
  if (!ResolveEntryLineage(e, &lineage_error)) {
    SetError(error, lineage_error);
    return nullptr;
  }
  // Replay the ENTIRE current log over the base: an open after eviction
  // must serve base+log exactly as the pre-eviction engine did after its
  // refreshes — never a stale base, never a partial prefix.
  LoadOptions options;
  options.io_mode = e.source.io_mode;
  options.delta_path = e.lineage.delta_path;
  options.delta_io = e.source.delta_io;
  std::string load_error;
  auto warm = LoadEngineSnapshot(e.lineage.snapshot_path, options, &load_error);
  if (!warm.has_value()) {
    SetError(error, "cannot open engine for graph \"" + e.id +
                        "\": " + load_error);
    return nullptr;
  }
  auto state = std::make_shared<EngineState>();
  state->base_checksum = warm->stored_checksum;
  state->applied_seqno = warm->applied_seqno;
  state->applied_chain = warm->applied_chain;
  state->applied_end_offset = warm->applied_end_offset;
  state->graph = std::shared_ptr<const Graph>(std::move(warm->graph));
  state->engine = std::shared_ptr<const GmEngine>(std::move(warm->engine));
  state->cache = MakeCache();
  return state;
}

bool EngineCatalog::ResolveEntryLineage(Entry& e, std::string* error) {
  if (e.lineage_resolved) return true;
  if (e.source.snapshot_path.empty()) {
    // Adopted without a snapshot identity: no head file to consult.
    e.lineage.snapshot_path = e.source.snapshot_path;
    e.lineage.delta_path = e.source.delta_path;
    e.lineage.generation = 0;
    e.lineage_resolved = true;
    return true;
  }
  Lineage lineage;
  std::string resolve_error;
  if (!ResolveLineage(e.source.snapshot_path, e.source.delta_path, &lineage,
                      &resolve_error)) {
    SetError(error, "cannot resolve storage lineage for graph \"" + e.id +
                        "\": " + resolve_error);
    return false;
  }
  e.lineage = std::move(lineage);
  e.lineage_resolved = true;
  return true;
}

void EngineCatalog::EnforceCap(const Entry* keep) {
  if (max_engines_ == 0) return;
  // Evict one LRU victim at a time until the cap holds. The victim's
  // engine is only unreferenced here — requests that pinned it via
  // Acquire finish normally and free it with the last pin.
  while (true) {
    std::shared_ptr<Entry> victim;
    {
      std::lock_guard<std::mutex> lock(mu_);
      uint32_t resident = 0;
      uint64_t oldest = 0;
      for (const auto& [id, entry] : entries_) {
        if (entry->adopted) continue;  // pinned: nothing to reopen from
        bool is_resident;
        {
          std::lock_guard<std::mutex> state_lock(entry->state_mu);
          is_resident = entry->state != nullptr;
        }
        if (!is_resident) continue;
        ++resident;
        if (entry.get() == keep) continue;  // just touched; never the victim
        if (victim == nullptr || entry->last_used < oldest) {
          victim = entry;
          oldest = entry->last_used;
        }
      }
      if (resident <= max_engines_ || victim == nullptr) return;
    }
    {
      std::lock_guard<std::mutex> state_lock(victim->state_mu);
      if (victim->state == nullptr) continue;  // raced with another evictor
      victim->state.reset();
    }
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

CatalogRefreshResult EngineCatalog::Refresh(const std::string& id) {
  CatalogRefreshResult result;
  std::shared_ptr<Entry> entry = FindAndTouch(id);
  if (entry == nullptr) {
    result.bad_request = true;
    result.error =
        "unknown graph id \"" + (id.empty() ? default_id() : id) + "\"";
    return result;
  }
  if (entry->source.delta_path.empty()) {
    result.bad_request = true;
    result.error = "graph \"" + entry->id +
                   "\" has no delta log configured (--delta)";
    return result;
  }

  // One refresh (or open) per tenant at a time; a second request queues
  // here and then finds the log already replayed (records_applied == 0).
  // Other tenants' refreshes and opens run concurrently.
  std::lock_guard<std::mutex> open_lock(entry->open_mu);
  return RefreshLocked(*entry);
}

CatalogRefreshResult EngineCatalog::RefreshLocked(Entry& e, bool fast_tail) {
  CatalogRefreshResult result;
  std::string lineage_error;
  if (!ResolveEntryLineage(e, &lineage_error)) {
    result.error = lineage_error;
    return result;
  }
  const std::string delta_path = e.lineage.delta_path;

  std::shared_ptr<const EngineState> old_state = StateOf(e);
  bool newly_opened = false;
  if (old_state == nullptr) {
    // Refresh of a non-resident tenant: open the BASE alone (a cheap
    // prebuilt-index deserialize) and run the normal replay path below, so
    // the response reports exactly what the log contributed.
    LoadOptions options;
    options.io_mode = e.source.io_mode;
    std::string load_error;
    auto warm =
        LoadEngineSnapshot(e.lineage.snapshot_path, options, &load_error);
    if (!warm.has_value()) {
      result.error = "cannot open engine for graph \"" + e.id +
                     "\": " + load_error;
      return result;
    }
    auto base = std::make_shared<EngineState>();
    base->base_checksum = warm->stored_checksum;
    base->graph = std::shared_ptr<const Graph>(std::move(warm->graph));
    base->engine = std::shared_ptr<const GmEngine>(std::move(warm->engine));
    base->cache = MakeCache();
    old_state = base;
    newly_opened = true;
    misses_.fetch_add(1, std::memory_order_relaxed);
  }
  const Graph& old_graph = old_state->engine->graph();

  auto publish = [&](std::shared_ptr<const EngineState> state) {
    {
      std::lock_guard<std::mutex> lock(e.state_mu);
      e.state = std::move(state);
    }
    EnforceCap(&e);
  };
  auto caught_up = [&]() {
    result.ok = true;
    result.last_seqno = old_state->applied_seqno;
    result.num_nodes = old_graph.NumNodes();
    result.num_edges = old_graph.NumEdges();
    if (newly_opened) publish(old_state);
    return result;
  };

  // The log is created lazily by the first append; a refresh that beats it
  // is a healthy caught-up state, not an error. A zero-length file is the
  // same state one crashed step later.
  struct stat st{};
  if (::stat(delta_path.c_str(), &st) != 0) {
    if (errno == ENOENT) return caught_up();
  } else if (st.st_size == 0) {
    return caught_up();
  } else if (fast_tail && old_state->applied_end_offset != 0 &&
             static_cast<uint64_t>(st.st_size) ==
                 old_state->applied_end_offset) {
    // The O(1) poll answer: the log ends exactly where the applied prefix
    // does, so there is nothing new — without reading a byte of it. (A
    // same-size in-place rewrite is invisible to this check by design;
    // that is why only the background poll takes it — an explicit client
    // kRefresh re-validates the whole chain and catches the rewrite.)
    return caught_up();
  }

  std::string replay_error;
  ReplayStats stats;
  std::vector<DeltaOp> ops;
  bool collected = false;
  bool tail_torn_fast = false;

  // Fast path: seek straight past the applied prefix and parse only the
  // tail — the maintenance poll must stay O(new records), not O(log).
  // Sound because the first tail record's header checksum is seeded by the
  // applied prefix's chain checksum: bytes at this offset that are not the
  // true continuation of the prefix we applied cannot validate. ANY
  // trouble here (failed seek, parse error, torn or corrupt tail) falls
  // through to the full from-header scan, which tells a corrupt log from
  // a rewritten one exactly.
  if (fast_tail && old_state->applied_end_offset != 0) {
    DeltaReader tail(delta_path, e.source.delta_io);
    const uint64_t chain = old_state->applied_seqno == 0
                               ? tail.base_checksum()
                               : old_state->applied_chain;
    if (tail.ok() &&
        (old_state->base_checksum == 0 ||
         tail.base_checksum() == old_state->base_checksum) &&
        tail.SeekTo(old_state->applied_end_offset, old_state->applied_seqno,
                    chain)) {
      std::string fast_error;
      ReplayStats fast_stats;
      std::vector<DeltaOp> fast_ops;
      if (CollectDeltaOps(tail, old_graph.NumNodes(),
                          old_state->applied_seqno, &fast_ops, &fast_stats,
                          &fast_error)) {
        if (!tail.truncated()) {
          ops = std::move(fast_ops);
          stats = fast_stats;
          collected = true;
        } else if (tail.tail_torn() && fast_stats.records_applied > 0) {
          // A benignly torn tail after validated new records: those
          // records chained off the applied prefix, so they are genuine.
          ops = std::move(fast_ops);
          stats = fast_stats;
          collected = true;
          tail_torn_fast = true;
        }
      }
    }
  }

  if (!collected) {
    DeltaReader reader(delta_path, e.source.delta_io);
    if (!reader.ok()) {
      result.error = "cannot read delta log: " + reader.error();
      return result;
    }
    if (old_state->base_checksum != 0 &&
        reader.base_checksum() != old_state->base_checksum) {
      result.bad_request = true;
      result.error = "delta log is bound to a different base snapshot";
      return result;
    }
    if (!CollectDeltaOps(reader, old_graph.NumNodes(),
                         old_state->applied_seqno, &ops, &stats,
                         &replay_error)) {
      result.error = replay_error;
      return result;
    }
    // Corruption check FIRST: a corrupt record inside the already-applied
    // prefix also stops the reader before the resume point, and diagnosing
    // that as "rewritten log" would send the operator chasing the wrong
    // remediation.
    if (reader.truncated() && !reader.tail_torn()) {
      result.error = "delta log is corrupt after record " +
                     std::to_string(reader.records_read()) + " (" +
                     reader.tail_error() + ") — refresh refused";
      return result;
    }
    // The applied prefix must still be the prefix we applied: a log that
    // was truncated and rewritten with reused seqnos must not be resumed
    // by number alone.
    if (old_state->applied_seqno > 0 &&
        stats.resume_chain != old_state->applied_chain) {
      result.bad_request = true;
      result.error =
          "delta log no longer contains the applied prefix (rewritten or "
          "replaced since the last refresh) — restart the daemon from the "
          "base snapshot";
      return result;
    }
    result.log_truncated = reader.truncated();
  } else {
    result.log_truncated = tail_torn_fast;
  }
  result.records_applied = stats.records_applied;
  result.edges_in_records = stats.edges_in_records;
  result.delete_ops = stats.delete_ops;

  if (stats.records_applied == 0) {
    // Nothing new — but remember where the validated log ends so the next
    // poll's size comparison can answer without reading (this is what
    // bootstraps adopted engines, whose end offset starts unknown).
    if (stats.end_offset != 0 &&
        stats.end_offset != old_state->applied_end_offset) {
      auto bumped = std::make_shared<EngineState>(*old_state);
      bumped->applied_end_offset = stats.end_offset;
      publish(std::move(bumped));
      newly_opened = false;  // just published
    }
    return caught_up();
  }

  // Build the successor state: merged graph + a fresh reachability index.
  auto new_state = std::make_shared<EngineState>();
  new_state->graph =
      std::make_shared<const Graph>(ApplyDeltaOps(old_graph, ops));
  new_state->engine = std::make_shared<const GmEngine>(*new_state->graph);
  new_state->applied_seqno = stats.last_seqno;
  new_state->applied_chain = stats.end_chain;
  new_state->applied_end_offset = stats.end_offset;
  new_state->base_checksum = old_state->base_checksum;
  // A fresh EMPTY cache, never the old one: every entry of the outgoing
  // generation answered on the pre-refresh graph.
  new_state->cache = MakeCache();
  deletes_applied_.fetch_add(stats.delete_ops, std::memory_order_relaxed);
  result.ok = true;
  result.last_seqno = stats.last_seqno;
  result.num_nodes = new_state->graph->NumNodes();
  result.num_edges = new_state->graph->NumEdges();
  publish(std::move(new_state));
  return result;
}

CatalogCompactionResult EngineCatalog::Compact(const std::string& id) {
  CatalogCompactionResult result;
  std::shared_ptr<Entry> entry = FindAndTouch(id);
  if (entry == nullptr) {
    result.error =
        "unknown graph id \"" + (id.empty() ? default_id() : id) + "\"";
    return result;
  }
  if (entry->source.delta_path.empty()) {
    result.error =
        "graph \"" + entry->id + "\" has no delta log configured (--delta)";
    return result;
  }
  std::lock_guard<std::mutex> open_lock(entry->open_mu);
  return CompactLocked(*entry);
}

CatalogCompactionResult EngineCatalog::CompactLocked(Entry& e) {
  CatalogCompactionResult result;
  std::string lineage_error;
  if (!ResolveEntryLineage(e, &lineage_error)) {
    result.error = lineage_error;
    return result;
  }
  if (e.source.snapshot_path.empty()) {
    result.error = "graph \"" + e.id +
                   "\" was adopted without a snapshot path — no file to "
                   "re-point";
    return result;
  }
  const Lineage old_lineage = e.lineage;
  result.generation = old_lineage.generation;

  // 1. Fence external appenders by taking the old log's writer flock. A
  // held lock is a live appender mid-batch; with open_mu held we must not
  // wait for it — skip this round, the next poll retries.
  int lock_fd = ::open(old_lineage.delta_path.c_str(), O_RDWR | O_CLOEXEC);
  if (lock_fd < 0) {
    if (errno == ENOENT) {
      // No log was ever created: nothing to fold in.
      result.ok = true;
      result.skipped = true;
      return result;
    }
    result.error = "cannot open delta log " + old_lineage.delta_path + ": " +
                   std::strerror(errno);
    return result;
  }
  FdCloser closer{lock_fd};
  if (::flock(lock_fd, LOCK_EX | LOCK_NB) != 0) {
    result.ok = true;
    result.skipped = true;
    return result;
  }

  // 2. Drain: appenders are fenced, so after this refresh the served
  // engine is EXACTLY base + log, and the log cannot grow under us.
  CatalogRefreshResult drained = RefreshLocked(e);
  if (!drained.ok) {
    result.error = "compaction drain failed: " + drained.error;
    return result;
  }
  std::shared_ptr<const EngineState> state = StateOf(e);
  if (state == nullptr || state->engine == nullptr) {
    result.error =
        "tenant \"" + e.id + "\" has no resident engine to snapshot";
    return result;
  }

  // 3. Write generation N+1 off to the side — first sweeping any orphaned
  // same-name files a compaction that crashed before its head publish
  // left behind.
  const uint64_t generation = old_lineage.generation + 1;
  const std::string new_snapshot =
      GenerationPath(e.source.snapshot_path, generation);
  const std::string new_delta =
      GenerationPath(e.source.delta_path, generation);
  ::unlink(new_snapshot.c_str());
  ::unlink(new_delta.c_str());
  std::string io_error;
  if (!SaveEngineSnapshot(*state->engine, new_snapshot, &io_error)) {
    result.error = "cannot write compacted snapshot: " + io_error;
    return result;
  }
  auto info = InspectSnapshot(new_snapshot, &io_error);
  if (!info.has_value()) {
    ::unlink(new_snapshot.c_str());
    result.error = "cannot read back compacted snapshot: " + io_error;
    return result;
  }
  {
    // A fresh EMPTY log bound to the new base — created eagerly so
    // appenders following the head never race its lazy creation.
    auto writer = DeltaWriter::Open(
        new_delta, info->stored_checksum,
        static_cast<uint32_t>(state->engine->graph().NumNodes()), &io_error);
    if (writer == nullptr) {
      ::unlink(new_snapshot.c_str());
      result.error = "cannot create compacted delta log: " + io_error;
      return result;
    }
  }

  uint64_t reclaimed = 0;
  struct stat st{};
  if (::stat(old_lineage.delta_path.c_str(), &st) == 0) {
    reclaimed += static_cast<uint64_t>(st.st_size);
  }
  if (old_lineage.generation > 0 &&
      ::stat(old_lineage.snapshot_path.c_str(), &st) == 0) {
    reclaimed += static_cast<uint64_t>(st.st_size);
  }

  // 4. THE commit point: the head pointer flips to the new generation in
  // one rename. A crash anywhere above leaves the old lineage fully
  // intact (plus swept-next-time orphans); a crash below re-points on
  // restart and merely re-reclaims.
  Lineage next;
  next.snapshot_path = new_snapshot;
  next.delta_path = new_delta;
  next.generation = generation;
  if (!PublishLineage(e.source.snapshot_path, next, &io_error)) {
    ::unlink(new_snapshot.c_str());
    ::unlink(new_delta.c_str());
    result.error = "cannot publish lineage head: " + io_error;
    return result;
  }

  // 5. Committed. Re-point serving — same graph/engine/cache (the data
  // did not change, only its storage identity), so in-flight queries and
  // cached results stay valid — and reclaim the old generation. The
  // configured gen-0 base snapshot is the operator's file and is never
  // unlinked; the head pointer is what routes around it.
  e.lineage = next;
  auto new_state = std::make_shared<EngineState>(*state);
  new_state->base_checksum = info->stored_checksum;
  new_state->applied_seqno = 0;
  new_state->applied_chain = 0;
  new_state->applied_end_offset = kDeltaFileHeaderBytes;
  {
    std::lock_guard<std::mutex> lock(e.state_mu);
    e.state = std::move(new_state);
  }
  ::unlink(old_lineage.delta_path.c_str());
  if (old_lineage.generation > 0) {
    ::unlink(old_lineage.snapshot_path.c_str());
  }
  bytes_reclaimed_.fetch_add(reclaimed, std::memory_order_relaxed);

  result.ok = true;
  result.generation = generation;
  result.bytes_reclaimed = reclaimed;
  result.snapshot_path = new_snapshot;
  result.delta_path = new_delta;
  return result;
}

void EngineCatalog::SetMaintenancePolicy(const MaintenancePolicy& policy) {
  std::lock_guard<std::mutex> lock(mu_);
  policy_ = policy;
}

MaintenancePolicy EngineCatalog::maintenance_policy() const {
  std::lock_guard<std::mutex> lock(mu_);
  return policy_;
}

MaintenanceStats EngineCatalog::maintenance_stats() const {
  MaintenanceStats stats;
  stats.auto_refreshes = auto_refreshes_.load(std::memory_order_relaxed);
  stats.auto_compactions = auto_compactions_.load(std::memory_order_relaxed);
  stats.bytes_reclaimed = bytes_reclaimed_.load(std::memory_order_relaxed);
  stats.deletes_applied = deletes_applied_.load(std::memory_order_relaxed);
  return stats;
}

uint32_t EngineCatalog::RunMaintenance() {
  const MaintenancePolicy policy = maintenance_policy();
  std::vector<std::shared_ptr<Entry>> entries;
  {
    std::lock_guard<std::mutex> lock(mu_);
    entries.reserve(entries_.size());
    for (const auto& [id, entry] : entries_) entries.push_back(entry);
  }
  uint32_t actions = 0;
  for (const auto& entry : entries) {
    if (entry->source.delta_path.empty()) continue;
    {
      // Maintain RESIDENT tenants only: a cold tenant catches up in its
      // lazy open, and waking it here would fight the LRU cap.
      std::lock_guard<std::mutex> state_lock(entry->state_mu);
      if (entry->state == nullptr) continue;
    }
    std::lock_guard<std::mutex> open_lock(entry->open_mu);
    std::string error;
    if (!ResolveEntryLineage(*entry, &error)) continue;
    std::shared_ptr<const EngineState> state = StateOf(*entry);
    if (state == nullptr) continue;  // evicted while we waited

    // The O(1) poll: on-disk size vs applied end offset. Equal means
    // caught up without reading a byte; on any difference the refresh
    // core does the real (tail-seek) work and the exact diagnosis.
    struct stat st{};
    const bool have_log =
        ::stat(entry->lineage.delta_path.c_str(), &st) == 0 && st.st_size > 0;
    if (have_log &&
        static_cast<uint64_t>(st.st_size) != state->applied_end_offset) {
      CatalogRefreshResult r = RefreshLocked(*entry, /*fast_tail=*/true);
      if (r.ok && r.records_applied > 0) {
        auto_refreshes_.fetch_add(1, std::memory_order_relaxed);
        ++actions;
      }
    }
    if (policy.auto_compact_ratio > 0 && have_log &&
        !entry->source.snapshot_path.empty()) {
      struct stat log_st{};
      struct stat base_st{};
      if (::stat(entry->lineage.delta_path.c_str(), &log_st) == 0 &&
          ::stat(entry->lineage.snapshot_path.c_str(), &base_st) == 0 &&
          static_cast<double>(log_st.st_size) >
              policy.auto_compact_ratio *
                  static_cast<double>(base_st.st_size)) {
        CatalogCompactionResult c = CompactLocked(*entry);
        if (c.ok && !c.skipped) {
          auto_compactions_.fetch_add(1, std::memory_order_relaxed);
          ++actions;
        }
      }
    }
  }
  return actions;
}

void EngineCatalog::CountQuery(const std::string& id, uint64_t n) {
  std::shared_ptr<Entry> entry = Find(id);
  if (entry != nullptr) {
    entry->queries.fetch_add(n, std::memory_order_relaxed);
  }
}

std::vector<TenantInfo> EngineCatalog::List() const {
  std::vector<std::shared_ptr<Entry>> entries;
  {
    std::lock_guard<std::mutex> lock(mu_);
    entries.reserve(entries_.size());
    for (const auto& [id, entry] : entries_) entries.push_back(entry);
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a->id < b->id; });
  std::vector<TenantInfo> infos;
  infos.reserve(entries.size());
  for (const auto& entry : entries) {
    TenantInfo info;
    info.id = entry->id;
    info.refreshable = !entry->source.delta_path.empty();
    info.queries = entry->queries.load(std::memory_order_relaxed);
    if (auto state = StateOf(*entry)) {
      info.resident = true;
      info.applied_seqno = state->applied_seqno;
      if (state->cache != nullptr) info.cache = state->cache->Stats();
    }
    infos.push_back(std::move(info));
  }
  return infos;
}

CatalogStats EngineCatalog::Stats() const {
  CatalogStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  stats.registered = entries_.size();
  for (const auto& [id, entry] : entries_) {
    std::lock_guard<std::mutex> state_lock(entry->state_mu);
    if (entry->state != nullptr) ++stats.resident;
  }
  return stats;
}

bool EngineCatalog::Has(const std::string& id) const {
  return Find(id) != nullptr;
}

bool EngineCatalog::any_refreshable() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [id, entry] : entries_) {
    if (!entry->source.delta_path.empty()) return true;
  }
  return false;
}

std::string EngineCatalog::default_id() const {
  std::lock_guard<std::mutex> lock(mu_);
  return default_id_;
}

bool EngineCatalog::SetDefault(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.find(id) == entries_.end()) return false;
  default_id_ = id;
  return true;
}

}  // namespace rigpm::server
