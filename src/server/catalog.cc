#include "server/catalog.h"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <utility>
#include <vector>

#include "storage/delta_log.h"
#include "storage/snapshot.h"

namespace rigpm::server {

namespace {

void SetError(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
}

}  // namespace

EngineCatalog::EngineCatalog(uint32_t max_engines)
    : max_engines_(max_engines) {}

bool EngineCatalog::Register(const std::string& id, EngineSource source,
                             std::string* error) {
  if (id.empty()) {
    SetError(error, "tenant id must not be empty");
    return false;
  }
  if (source.snapshot_path.empty()) {
    SetError(error, "tenant \"" + id + "\" needs a snapshot path");
    return false;
  }
  auto entry = std::make_shared<Entry>();
  entry->id = id;
  entry->source = std::move(source);
  std::lock_guard<std::mutex> lock(mu_);
  if (!entries_.emplace(id, std::move(entry)).second) {
    SetError(error, "tenant \"" + id + "\" is already registered");
    return false;
  }
  if (default_id_.empty()) default_id_ = id;
  return true;
}

bool EngineCatalog::AdoptEngine(const std::string& id, const GmEngine& engine,
                                EngineSource source, uint64_t base_checksum,
                                std::string* error) {
  if (id.empty()) {
    SetError(error, "tenant id must not be empty");
    return false;
  }
  auto state = std::make_shared<EngineState>();
  // Alias the caller's engine (which must outlive the catalog); refreshed
  // successors own their graph + engine.
  state->engine =
      std::shared_ptr<const GmEngine>(std::shared_ptr<const GmEngine>(),
                                      &engine);
  state->base_checksum = base_checksum;
  state->cache = MakeCache();
  auto entry = std::make_shared<Entry>();
  entry->id = id;
  entry->source = std::move(source);
  entry->adopted = true;
  entry->state = std::move(state);
  std::lock_guard<std::mutex> lock(mu_);
  if (!entries_.emplace(id, std::move(entry)).second) {
    SetError(error, "tenant \"" + id + "\" is already registered");
    return false;
  }
  if (default_id_.empty()) default_id_ = id;
  return true;
}

std::shared_ptr<EngineCatalog::Entry> EngineCatalog::FindAndTouch(
    const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string& key = id.empty() ? default_id_ : id;
  auto it = entries_.find(key);
  if (it == entries_.end()) return nullptr;
  it->second->last_used = ++clock_;
  return it->second;
}

std::shared_ptr<EngineCatalog::Entry> EngineCatalog::Find(
    const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string& key = id.empty() ? default_id_ : id;
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : it->second;
}

std::shared_ptr<const EngineState> EngineCatalog::StateOf(
    const Entry& e) const {
  std::lock_guard<std::mutex> lock(e.state_mu);
  return e.state;
}

std::shared_ptr<ResultCache> EngineCatalog::MakeCache() const {
  uint64_t bytes = cache_bytes();
  if (bytes == 0) return nullptr;
  return std::make_shared<ResultCache>(bytes);
}

std::shared_ptr<const EngineState> EngineCatalog::Acquire(
    const std::string& id, std::string* error) {
  std::shared_ptr<Entry> entry = FindAndTouch(id);
  if (entry == nullptr) {
    SetError(error, "unknown graph id \"" + (id.empty() ? default_id() : id) +
                        "\"");
    return nullptr;
  }
  if (auto state = StateOf(*entry)) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return state;
  }
  // Cold (or evicted) tenant: open under the entry's open_mu so concurrent
  // first requests load the snapshot once, while requests for OTHER
  // tenants proceed untouched (no catalog-wide lock is held here).
  std::lock_guard<std::mutex> open_lock(entry->open_mu);
  if (auto state = StateOf(*entry)) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return state;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  std::shared_ptr<const EngineState> opened = Open(*entry, error);
  if (opened == nullptr) return nullptr;
  {
    std::lock_guard<std::mutex> lock(entry->state_mu);
    entry->state = opened;
  }
  EnforceCap(entry.get());
  return opened;
}

std::shared_ptr<const EngineState> EngineCatalog::Open(Entry& e,
                                                       std::string* error) {
  if (e.adopted) {
    // Adopted engines have no source to reopen from; they are pinned
    // resident, so a null state here cannot happen in practice.
    SetError(error, "tenant \"" + e.id + "\" has no snapshot to open");
    return nullptr;
  }
  // Replay the ENTIRE current log over the base: an open after eviction
  // must serve base+log exactly as the pre-eviction engine did after its
  // refreshes — never a stale base, never a partial prefix.
  LoadOptions options;
  options.io_mode = e.source.io_mode;
  options.delta_path = e.source.delta_path;
  options.delta_io = e.source.delta_io;
  std::string load_error;
  auto warm = LoadEngineSnapshot(e.source.snapshot_path, options, &load_error);
  if (!warm.has_value()) {
    SetError(error, "cannot open engine for graph \"" + e.id +
                        "\": " + load_error);
    return nullptr;
  }
  auto state = std::make_shared<EngineState>();
  state->base_checksum = warm->stored_checksum;
  state->applied_seqno = warm->applied_seqno;
  state->applied_chain = warm->applied_chain;
  state->graph = std::shared_ptr<const Graph>(std::move(warm->graph));
  state->engine = std::shared_ptr<const GmEngine>(std::move(warm->engine));
  state->cache = MakeCache();
  return state;
}

void EngineCatalog::EnforceCap(const Entry* keep) {
  if (max_engines_ == 0) return;
  // Evict one LRU victim at a time until the cap holds. The victim's
  // engine is only unreferenced here — requests that pinned it via
  // Acquire finish normally and free it with the last pin.
  while (true) {
    std::shared_ptr<Entry> victim;
    {
      std::lock_guard<std::mutex> lock(mu_);
      uint32_t resident = 0;
      uint64_t oldest = 0;
      for (const auto& [id, entry] : entries_) {
        if (entry->adopted) continue;  // pinned: nothing to reopen from
        bool is_resident;
        {
          std::lock_guard<std::mutex> state_lock(entry->state_mu);
          is_resident = entry->state != nullptr;
        }
        if (!is_resident) continue;
        ++resident;
        if (entry.get() == keep) continue;  // just touched; never the victim
        if (victim == nullptr || entry->last_used < oldest) {
          victim = entry;
          oldest = entry->last_used;
        }
      }
      if (resident <= max_engines_ || victim == nullptr) return;
    }
    {
      std::lock_guard<std::mutex> state_lock(victim->state_mu);
      if (victim->state == nullptr) continue;  // raced with another evictor
      victim->state.reset();
    }
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

CatalogRefreshResult EngineCatalog::Refresh(const std::string& id) {
  CatalogRefreshResult result;
  std::shared_ptr<Entry> entry = FindAndTouch(id);
  if (entry == nullptr) {
    result.bad_request = true;
    result.error =
        "unknown graph id \"" + (id.empty() ? default_id() : id) + "\"";
    return result;
  }
  if (entry->source.delta_path.empty()) {
    result.bad_request = true;
    result.error = "graph \"" + entry->id +
                   "\" has no delta log configured (--delta)";
    return result;
  }

  // One refresh (or open) per tenant at a time; a second request queues
  // here and then finds the log already replayed (records_applied == 0).
  // Other tenants' refreshes and opens run concurrently.
  std::lock_guard<std::mutex> open_lock(entry->open_mu);

  std::shared_ptr<const EngineState> old_state = StateOf(*entry);
  bool newly_opened = false;
  if (old_state == nullptr) {
    // Refresh of a non-resident tenant: open the BASE alone (a cheap
    // prebuilt-index deserialize) and run the normal replay path below, so
    // the response reports exactly what the log contributed.
    LoadOptions options;
    options.io_mode = entry->source.io_mode;
    std::string load_error;
    auto warm =
        LoadEngineSnapshot(entry->source.snapshot_path, options, &load_error);
    if (!warm.has_value()) {
      result.error = "cannot open engine for graph \"" + entry->id +
                     "\": " + load_error;
      return result;
    }
    auto base = std::make_shared<EngineState>();
    base->base_checksum = warm->stored_checksum;
    base->graph = std::shared_ptr<const Graph>(std::move(warm->graph));
    base->engine = std::shared_ptr<const GmEngine>(std::move(warm->engine));
    base->cache = MakeCache();
    old_state = base;
    newly_opened = true;
    misses_.fetch_add(1, std::memory_order_relaxed);
  }
  const Graph& old_graph = old_state->engine->graph();

  auto publish = [&](std::shared_ptr<const EngineState> state) {
    {
      std::lock_guard<std::mutex> lock(entry->state_mu);
      entry->state = std::move(state);
    }
    EnforceCap(entry.get());
  };
  auto caught_up = [&]() {
    result.ok = true;
    result.last_seqno = old_state->applied_seqno;
    result.num_nodes = old_graph.NumNodes();
    result.num_edges = old_graph.NumEdges();
    if (newly_opened) publish(old_state);
    return result;
  };

  // The log is created lazily by the first append; a refresh that beats it
  // is a healthy caught-up state, not an error. A zero-length file is the
  // same state one crashed step later.
  struct stat st{};
  if (::stat(entry->source.delta_path.c_str(), &st) != 0) {
    if (errno == ENOENT) return caught_up();
  } else if (st.st_size == 0) {
    return caught_up();
  }

  DeltaReader reader(entry->source.delta_path, entry->source.delta_io);
  if (!reader.ok()) {
    result.error = "cannot read delta log: " + reader.error();
    return result;
  }
  if (old_state->base_checksum != 0 &&
      reader.base_checksum() != old_state->base_checksum) {
    result.bad_request = true;
    result.error = "delta log is bound to a different base snapshot";
    return result;
  }

  std::string replay_error;
  ReplayStats stats;
  std::vector<std::pair<NodeId, NodeId>> edges;
  if (!CollectDeltaEdges(reader, old_graph.NumNodes(),
                         old_state->applied_seqno, &edges, &stats,
                         &replay_error)) {
    result.error = replay_error;
    return result;
  }
  // Corruption check FIRST: a corrupt record inside the already-applied
  // prefix also stops the reader before the resume point, and diagnosing
  // that as "rewritten log" would send the operator chasing the wrong
  // remediation.
  if (reader.truncated() && !reader.tail_torn()) {
    result.error = "delta log is corrupt after record " +
                   std::to_string(reader.records_read()) + " (" +
                   reader.tail_error() + ") — refresh refused";
    return result;
  }
  // The applied prefix must still be the prefix we applied: a log that was
  // truncated and rewritten with reused seqnos must not be resumed by
  // number alone.
  if (old_state->applied_seqno > 0 &&
      stats.resume_chain != old_state->applied_chain) {
    result.bad_request = true;
    result.error =
        "delta log no longer contains the applied prefix (rewritten or "
        "replaced since the last refresh) — restart the daemon from the "
        "base snapshot";
    return result;
  }
  result.log_truncated = reader.truncated();
  result.records_applied = stats.records_applied;
  result.edges_in_records = stats.edges_in_records;

  if (stats.records_applied == 0) return caught_up();

  // Build the successor state: merged graph + a fresh reachability index.
  auto new_state = std::make_shared<EngineState>();
  new_state->graph =
      std::make_shared<const Graph>(ApplyEdgesToGraph(old_graph, edges));
  new_state->engine = std::make_shared<const GmEngine>(*new_state->graph);
  new_state->applied_seqno = stats.last_seqno;
  new_state->applied_chain = stats.end_chain;
  new_state->base_checksum = old_state->base_checksum;
  // A fresh EMPTY cache, never the old one: every entry of the outgoing
  // generation answered on the pre-refresh graph.
  new_state->cache = MakeCache();
  result.ok = true;
  result.last_seqno = stats.last_seqno;
  result.num_nodes = new_state->graph->NumNodes();
  result.num_edges = new_state->graph->NumEdges();
  publish(std::move(new_state));
  return result;
}

void EngineCatalog::CountQuery(const std::string& id, uint64_t n) {
  std::shared_ptr<Entry> entry = Find(id);
  if (entry != nullptr) {
    entry->queries.fetch_add(n, std::memory_order_relaxed);
  }
}

std::vector<TenantInfo> EngineCatalog::List() const {
  std::vector<std::shared_ptr<Entry>> entries;
  {
    std::lock_guard<std::mutex> lock(mu_);
    entries.reserve(entries_.size());
    for (const auto& [id, entry] : entries_) entries.push_back(entry);
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a->id < b->id; });
  std::vector<TenantInfo> infos;
  infos.reserve(entries.size());
  for (const auto& entry : entries) {
    TenantInfo info;
    info.id = entry->id;
    info.refreshable = !entry->source.delta_path.empty();
    info.queries = entry->queries.load(std::memory_order_relaxed);
    if (auto state = StateOf(*entry)) {
      info.resident = true;
      info.applied_seqno = state->applied_seqno;
      if (state->cache != nullptr) info.cache = state->cache->Stats();
    }
    infos.push_back(std::move(info));
  }
  return infos;
}

CatalogStats EngineCatalog::Stats() const {
  CatalogStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  stats.registered = entries_.size();
  for (const auto& [id, entry] : entries_) {
    std::lock_guard<std::mutex> state_lock(entry->state_mu);
    if (entry->state != nullptr) ++stats.resident;
  }
  return stats;
}

bool EngineCatalog::Has(const std::string& id) const {
  return Find(id) != nullptr;
}

bool EngineCatalog::any_refreshable() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [id, entry] : entries_) {
    if (!entry->source.delta_path.empty()) return true;
  }
  return false;
}

std::string EngineCatalog::default_id() const {
  std::lock_guard<std::mutex> lock(mu_);
  return default_id_;
}

bool EngineCatalog::SetDefault(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.find(id) == entries_.end()) return false;
  default_id_ = id;
  return true;
}

}  // namespace rigpm::server
