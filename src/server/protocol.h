#ifndef RIGPM_SERVER_PROTOCOL_H_
#define RIGPM_SERVER_PROTOCOL_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/serde.h"

namespace rigpm::server {

/// Wire protocol of the rigpm query daemon (server/server.h): length-prefixed
/// binary frames whose payloads are encoded with the same ByteSink/ByteSource
/// primitives the snapshot subsystem uses (util/serde.h). Like snapshots,
/// frames are host-endian and same-machine/same-build only — this is a
/// serving IPC protocol, not an interchange format.
///
/// Framing (both directions):
///   u32      payload length in bytes (at most the frame cap; a payload too
///            short to hold its message type draws an error response)
///   payload  u32 message type, then the type-specific body
///
/// A connection carries any number of request/response pairs; the server
/// answers every well-formed frame with exactly one response frame and
/// answers malformed-but-framed requests with an error response. Only an
/// oversized length prefix (which poisons the stream position) closes the
/// connection.
///
/// Envelopes compose in a fixed order (outermost first):
///   kTaggedRequest  — u64 request id, then the wrapped payload
///   kScopedRequest  — graph-id string, then the wrapped payload
///   the actual request (kQueryRequest, kRefreshRequest, ...)
/// Tagging stays outermost because the event loop peeks only the first u32
/// of a frame for pipeline admission. An unaddressed (unscoped) request is
/// served by the daemon's default graph, which is what keeps every pre-v2
/// client working against a multi-graph daemon unchanged.

inline constexpr uint32_t kDefaultMaxFrameBytes = 16u << 20;

/// Protocol revision advertised in the kPingResponse tail. Revision 2 added
/// the scoped envelope, graph listing, and the capability tail itself;
/// revision-1 daemons answer a bare pong.
inline constexpr uint32_t kProtocolRevision = 2;

/// Capability bits of the kPingResponse tail.
inline constexpr uint32_t kCapTagged = 1u << 0;      // pipelining envelope
inline constexpr uint32_t kCapRefresh = 1u << 1;     // >=1 refreshable graph
inline constexpr uint32_t kCapScoped = 1u << 2;      // graph-addressed requests
inline constexpr uint32_t kCapListGraphs = 1u << 3;  // kListGraphsRequest

enum class MessageType : uint32_t {
  kQueryRequest = 1,
  kStatsRequest = 2,
  kPingRequest = 3,
  kShutdownRequest = 4,
  /// Asks the daemon to replay the new records of its configured delta log
  /// (storage/delta_log.h) and swap the refreshed engine in behind an
  /// RCU-style shared_ptr — in-flight queries finish on the old engine, new
  /// requests see the merged graph; no restart, no dropped connections.
  /// Empty body. Answered with kRefreshResponse (RefreshResponse below) or
  /// an error response when the daemon has no delta source configured.
  kRefreshRequest = 5,
  /// Pipelining envelope: u64 request_id, then a complete inner request
  /// payload (u32 inner type + body). A client may have many tagged frames
  /// in flight on one connection; each is answered with a kTaggedResponse
  /// carrying the same id, and responses may arrive in any order. Untagged
  /// frames keep their PR-1 semantics: one at a time, answered in order,
  /// with an untagged response (conceptually id 0).
  kTaggedRequest = 6,
  /// Tenant-addressing envelope: graph-id string, then a complete inner
  /// request payload (u32 inner type + body). Routes the inner request to
  /// the named catalog entry; an empty id means the default graph, same as
  /// no envelope at all. Composes INSIDE kTaggedRequest (see above) and
  /// never nests. The response carries no scoped envelope — it goes back
  /// on the same connection, so the addressing is implicit.
  kScopedRequest = 7,
  /// Asks for the daemon's graph catalog (ids, residency, refreshability,
  /// per-graph counters). Empty body; answered with kListGraphsResponse.
  kListGraphsRequest = 8,

  kQueryResponse = 101,
  kStatsResponse = 102,
  /// Bare type from revision-1 daemons; revision 2 appends a tolerated-
  /// if-absent tail (u32 protocol revision + u32 capability bits) so a
  /// client can feature-detect instead of probing with error responses.
  kPingResponse = 103,
  kShutdownResponse = 104,
  kRefreshResponse = 105,
  /// u64 request_id, then the complete inner response payload.
  kTaggedResponse = 106,
  kListGraphsResponse = 107,
  kErrorResponse = 199,
};

enum class StatusCode : uint32_t {
  kOk = 0,
  kParseError = 1,     // pattern text / unknown template
  kBadRequest = 2,     // malformed body, unknown type, oversize
  kShuttingDown = 3,   // server is draining
  kInternalError = 4,  // evaluation failed unexpectedly
};

const char* StatusCodeName(StatusCode s);

/// What a daemon advertises in its kPingResponse tail. A bare pong (no
/// tail) is a revision-1 daemon: tagged pipelining already existed there,
/// so that one bit is assumed; everything newer is reported absent.
struct ServerCapabilities {
  uint32_t revision = 1;
  uint32_t capabilities = kCapTagged;

  bool tagged() const { return (capabilities & kCapTagged) != 0; }
  bool refresh() const { return (capabilities & kCapRefresh) != 0; }
  bool scoped() const { return (capabilities & kCapScoped) != 0; }
  bool list_graphs() const { return (capabilities & kCapListGraphs) != 0; }
};

/// One pattern-matching request. Either `patterns` (inline syntax of
/// query_parser.h; >1 entries are served as one EvaluateBatch call) or
/// `template_name` (one of the paper's HQ0..HQ19, instantiated against the
/// served graph's label alphabet with `template_seed`) must be set.
struct QueryRequest {
  std::vector<std::string> patterns;
  std::string template_name;
  uint64_t template_seed = 17;

  // GmOptions subset (the serving-relevant knobs).
  uint64_t limit = std::numeric_limits<uint64_t>::max();
  uint32_t num_threads = 1;
  bool use_transitive_reduction = true;
  bool use_prefilter = true;
  bool use_double_simulation = true;

  /// Echo up to this many occurrence tuples back (single-query requests
  /// only); the server additionally enforces its own cap.
  uint32_t max_return_tuples = 0;

  void Serialize(ByteSink& sink) const;
  static QueryRequest Deserialize(ByteSource& src);
};

struct PhaseTimingWire {
  std::string name;
  double ms = 0.0;
};

/// Per-query slice of a response (mirrors the GmResult fields a client can
/// act on).
struct QueryResultWire {
  uint64_t num_occurrences = 0;
  bool hit_limit = false;
  double matching_ms = 0.0;
  double enumerate_ms = 0.0;
  std::vector<PhaseTimingWire> phase_timings;
};

struct QueryResponse {
  StatusCode status = StatusCode::kOk;
  std::string error;
  std::vector<QueryResultWire> results;  // one per request pattern

  /// Flattened occurrence tuples of the first query, `tuple_arity` node ids
  /// each, capped by the request and the server.
  uint32_t tuple_arity = 0;
  std::vector<NodeId> tuples;

  uint64_t TotalOccurrences() const;

  void Serialize(ByteSink& sink) const;
  static QueryResponse Deserialize(ByteSource& src);
};

/// One catalog row, as listed by kListGraphsResponse and the stats tail.
struct GraphInfoWire {
  std::string id;
  bool resident = false;     // engine currently open in the daemon
  bool refreshable = false;  // has a delta source (kRefresh will act)
  uint64_t applied_seqno = 0;
  uint64_t queries = 0;  // queries served for this graph since start

  void Serialize(ByteSink& sink) const;
  static GraphInfoWire Deserialize(ByteSource& src);
};

/// Per-tenant result-cache row of the stats tail: counters of the tenant's
/// CURRENT engine generation (the cache is generation-scoped, so a refresh
/// resets them; see server/result_cache.h). Kept out of GraphInfoWire —
/// extending that row mid-stream would break pre-cache readers of the
/// tenant list, while a separate appended list is simply absent for them.
struct TenantCacheWire {
  std::string id;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t inserts = 0;
  uint64_t evictions = 0;
  uint64_t singleflight_waits = 0;
  uint64_t bytes_used = 0;
  uint64_t entries = 0;

  void Serialize(ByteSink& sink) const;
  static TenantCacheWire Deserialize(ByteSource& src);
};

struct StatsResponse {
  uint64_t uptime_ms = 0;
  uint64_t connections_accepted = 0;
  uint64_t active_connections = 0;
  uint64_t requests_served = 0;
  uint64_t queries_served = 0;  // patterns evaluated (a batch counts each)
  uint64_t errors = 0;
  uint64_t occurrences_emitted = 0;
  uint64_t refreshes = 0;  // successful delta refreshes (engine swaps)
  double latency_p50_ms = 0.0;
  double latency_p99_ms = 0.0;

  // Event-loop health (appended at the wire tail; absent from daemons
  // built before the epoll core and then reported as zero).
  uint64_t dispatch_depth = 0;  // requests parsed but not yet on a worker
  double accept_p50_ms = 0.0;   // accept() to first response byte
  double accept_p99_ms = 0.0;

  // Engine-catalog tail (revision 2; absent from older daemons and then
  // reported as zero/empty). Single-tenant daemons report one tenant.
  uint64_t graphs_registered = 0;
  uint64_t graphs_resident = 0;
  uint64_t catalog_hits = 0;
  uint64_t catalog_misses = 0;
  uint64_t catalog_evictions = 0;
  std::vector<GraphInfoWire> tenants;

  // Result-cache + write-coalescing tail (appended after the tenant list;
  // absent from older daemons and then reported as zero/empty). The cache_*
  // totals sum every resident tenant's current-generation cache.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_inserts = 0;
  uint64_t cache_evictions = 0;
  uint64_t cache_singleflight_waits = 0;
  uint64_t cache_bytes_used = 0;
  uint64_t cache_entries = 0;
  uint64_t flushes = 0;         // sendmsg gather calls that moved bytes
  uint64_t frames_flushed = 0;  // whole response frames those calls retired
  std::vector<TenantCacheWire> tenant_caches;
  // Maintenance counters (appended tail; zero when absent or the daemon
  // runs without a maintenance thread/policy).
  uint64_t auto_refreshes = 0;
  uint64_t auto_compactions = 0;
  uint64_t maintenance_bytes_reclaimed = 0;
  uint64_t deletes_applied = 0;

  void Serialize(ByteSink& sink) const;
  static StatsResponse Deserialize(ByteSource& src);
};

/// Answer to kListGraphsRequest: every registered graph, sorted by id,
/// plus which one serves unaddressed requests.
struct ListGraphsResponse {
  StatusCode status = StatusCode::kOk;
  std::string error;
  std::string default_id;
  std::vector<GraphInfoWire> graphs;

  void Serialize(ByteSink& sink) const;
  static ListGraphsResponse Deserialize(ByteSource& src);
};

/// Result of one kRefreshRequest. `records_applied` == 0 with status kOk
/// means the daemon was already caught up with its delta log.
struct RefreshResponse {
  StatusCode status = StatusCode::kOk;
  std::string error;
  uint64_t records_applied = 0;
  uint64_t edges_in_records = 0;  // before deduplication
  uint64_t last_seqno = 0;        // log position the daemon is now at
  uint64_t num_nodes = 0;         // served graph after the refresh
  uint64_t num_edges = 0;
  bool log_truncated = false;  // the log ended in a torn (crashed,
                               // never-acknowledged) append; its valid
                               // prefix was applied. A CORRUPT tail is an
                               // error response instead, never a swap.
  double refresh_ms = 0.0;     // replay + index rebuild + swap

  void Serialize(ByteSink& sink) const;
  static RefreshResponse Deserialize(ByteSource& src);
};

// ------------------------------------------------------------ frame I/O

enum class FrameReadStatus : uint8_t {
  kOk,        // one whole frame in *out
  kEof,       // peer closed cleanly at a frame boundary
  kStopped,   // *stop turned true while waiting
  kOversize,  // declared length exceeds max_bytes (stream is poisoned)
  kError,     // socket error or mid-frame disconnect
};

/// Reads one length-prefixed frame from `fd` into *out. Blocks, but polls in
/// short slices so a stop flag (the server's shutdown signal) interrupts the
/// wait between frames. Never allocates more than `max_bytes`.
FrameReadStatus ReadFrame(int fd, uint32_t max_bytes,
                          std::vector<uint8_t>* out, std::string* error,
                          const std::atomic<bool>* stop = nullptr);

/// Writes the length prefix and `payload` to `fd` (handles partial writes;
/// suppresses SIGPIPE so a vanished peer is an error return, not a signal).
bool WriteFrame(int fd, const ByteSink& payload, std::string* error);

// -------------------------------------------------- payload conveniences

/// Reads the leading u32 message type; on a short payload fails `src`.
MessageType ReadMessageType(ByteSource& src);

/// Builds an error-response payload (type + status + message).
ByteSink MakeErrorResponse(StatusCode status, const std::string& message);

/// Wraps a complete inner payload (u32 type + body) in a pipelining
/// envelope: `envelope` type, u64 request id, inner bytes. `envelope` must
/// be kTaggedRequest or kTaggedResponse.
ByteSink WrapTagged(MessageType envelope, uint64_t request_id,
                    const ByteSink& inner);

/// Reads the u64 request id of a tagged envelope; call after
/// ReadMessageType returned kTaggedRequest/kTaggedResponse. The source is
/// then positioned at the inner payload's message type.
uint64_t ReadTaggedId(ByteSource& src);

/// Wraps a complete inner payload (u32 type + body) in a tenant-addressing
/// envelope: kScopedRequest, graph-id string, inner bytes. Compose as
/// WrapTagged(..., WrapScoped(id, inner)) when pipelining — tagging stays
/// outermost.
ByteSink WrapScoped(const std::string& graph_id, const ByteSink& inner);

/// Reads the graph-id string of a scoped envelope; call after
/// ReadMessageType returned kScopedRequest. The source is then positioned
/// at the inner payload's message type.
std::string ReadScopedId(ByteSource& src);

/// Builds a kPingResponse payload with the revision-2 capability tail.
ByteSink MakePingResponse(const ServerCapabilities& caps);

/// Decodes a kPingResponse payload (the type already consumed). A bare
/// pong yields the revision-1 defaults of ServerCapabilities.
ServerCapabilities ParsePingResponse(ByteSource& src);

}  // namespace rigpm::server

#endif  // RIGPM_SERVER_PROTOCOL_H_
