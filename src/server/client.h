#ifndef RIGPM_SERVER_CLIENT_H_
#define RIGPM_SERVER_CLIENT_H_

#include <cstdint>
#include <optional>
#include <string>

#include "server/protocol.h"

namespace rigpm::server {

/// Blocking client for the rigpm query daemon: one connection, any number of
/// request/response round trips — or, with SendTagged/ReceiveTagged, many
/// requests pipelined on the one connection with out-of-order completion.
/// Thread contract: one thread per client (open several clients for
/// concurrency — the server multiplexes all of them over its event loop).
///
/// The client is the session: it owns the connection, the pipelining id
/// counter, and the graph the session addresses. SetGraph routes every
/// query, pipelined query, and refresh at one of a multi-graph daemon's
/// tenants (the kScopedRequest envelope); the default — no graph set —
/// emits no envelope at all, which any daemon revision serves from its
/// default graph. Ping/Stats/Shutdown are daemon-wide and never scoped.
class QueryClient {
 public:
  QueryClient() = default;
  ~QueryClient();

  QueryClient(const QueryClient&) = delete;
  QueryClient& operator=(const QueryClient&) = delete;
  QueryClient(QueryClient&& other) noexcept
      : max_frame_bytes(other.max_frame_bytes),
        fd_(other.fd_),
        next_request_id_(other.next_request_id_),
        graph_(std::move(other.graph_)) {
    other.fd_ = -1;
  }

  bool ConnectUnix(const std::string& path, std::string* error = nullptr);
  bool ConnectTcp(const std::string& host, uint16_t port,
                  std::string* error = nullptr);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Addresses this session's queries and refreshes at the named graph of
  /// a multi-graph daemon ("" = the daemon's default graph, and the only
  /// setting a pre-v2 daemon understands — see Capabilities().scoped()).
  void SetGraph(std::string graph_id) { graph_ = std::move(graph_id); }
  const std::string& graph() const { return graph_; }

  /// One query round trip. Returns nullopt only on transport failure;
  /// server-side rejections come back as a response with status != kOk.
  std::optional<QueryResponse> Query(const QueryRequest& request,
                                     std::string* error = nullptr);

  /// Pipelining: sends a kTaggedRequest query frame without waiting for
  /// the response and returns the request id it was tagged with. Any
  /// number may be in flight; collect each with ReceiveTagged (responses
  /// arrive in the server's completion order, not send order).
  std::optional<uint64_t> SendTagged(const QueryRequest& request,
                                     std::string* error = nullptr);

  struct TaggedQueryResponse {
    uint64_t request_id = 0;
    QueryResponse response;
  };

  /// Reads one tagged response frame, whichever in-flight request it
  /// answers. Returns nullopt on transport failure or a non-tagged frame.
  std::optional<TaggedQueryResponse> ReceiveTagged(
      std::string* error = nullptr);

  /// Convenience pipeline: sends every request back-to-back on the one
  /// connection, then collects all responses and returns them in request
  /// order regardless of the order the server finished them in.
  std::optional<std::vector<QueryResponse>> QueryPipelined(
      const std::vector<QueryRequest>& requests,
      std::string* error = nullptr);

  std::optional<StatsResponse> Stats(std::string* error = nullptr);

  /// Asks the server to replay its delta log and swap the refreshed engine
  /// in (kRefreshRequest). Returns nullopt only on transport failure;
  /// server-side rejections (no delta configured, unreadable log) come back
  /// as a response with status != kOk.
  std::optional<RefreshResponse> Refresh(std::string* error = nullptr);

  /// Liveness probe (also what scripts poll while the daemon starts up).
  bool Ping(std::string* error = nullptr);

  /// Ping + feature detection: what the daemon advertised in its pong
  /// tail. A bare pong (pre-v2 daemon) yields the revision-1 defaults, so
  /// callers branch on the capability bits, never on errors.
  std::optional<ServerCapabilities> Capabilities(std::string* error = nullptr);

  /// The daemon's graph catalog (kListGraphsRequest; needs
  /// Capabilities().list_graphs()).
  std::optional<ListGraphsResponse> ListGraphs(std::string* error = nullptr);

  /// Asks the server to shut down gracefully (needs the server's
  /// allow_remote_shutdown). Returns true once the server acknowledges.
  bool Shutdown(std::string* error = nullptr);

  /// Raw connection handle, for tests that need to speak malformed bytes.
  int fd() const { return fd_; }

  /// Per-connection cap for response frames (mirrors the server default).
  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;

 private:
  /// Sends `request` and reads one response frame into *payload.
  bool RoundTrip(const ByteSink& request, std::vector<uint8_t>* payload,
                 std::string* error);

  /// Reads one response frame (closing the connection on failure, since
  /// the stream is then desynchronized).
  bool ReadResponseFrame(std::vector<uint8_t>* payload, std::string* error);

  /// Applies the session's graph address: wraps `inner` in a scoped
  /// envelope when a graph is set, passes it through untouched otherwise.
  ByteSink Addressed(const ByteSink& inner) const;

  int fd_ = -1;
  uint64_t next_request_id_ = 1;
  std::string graph_;
};

}  // namespace rigpm::server

#endif  // RIGPM_SERVER_CLIENT_H_
