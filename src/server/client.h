#ifndef RIGPM_SERVER_CLIENT_H_
#define RIGPM_SERVER_CLIENT_H_

#include <cstdint>
#include <optional>
#include <string>

#include "server/protocol.h"

namespace rigpm::server {

/// Blocking client for the rigpm query daemon: one connection, any number of
/// request/response round trips. Thread contract: one thread per client
/// (open several clients for concurrency — the server handles each on its
/// own worker).
class QueryClient {
 public:
  QueryClient() = default;
  ~QueryClient();

  QueryClient(const QueryClient&) = delete;
  QueryClient& operator=(const QueryClient&) = delete;
  QueryClient(QueryClient&& other) noexcept
      : max_frame_bytes(other.max_frame_bytes), fd_(other.fd_) {
    other.fd_ = -1;
  }

  bool ConnectUnix(const std::string& path, std::string* error = nullptr);
  bool ConnectTcp(const std::string& host, uint16_t port,
                  std::string* error = nullptr);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// One query round trip. Returns nullopt only on transport failure;
  /// server-side rejections come back as a response with status != kOk.
  std::optional<QueryResponse> Query(const QueryRequest& request,
                                     std::string* error = nullptr);

  std::optional<StatsResponse> Stats(std::string* error = nullptr);

  /// Asks the server to replay its delta log and swap the refreshed engine
  /// in (kRefreshRequest). Returns nullopt only on transport failure;
  /// server-side rejections (no delta configured, unreadable log) come back
  /// as a response with status != kOk.
  std::optional<RefreshResponse> Refresh(std::string* error = nullptr);

  /// Liveness probe (also what scripts poll while the daemon starts up).
  bool Ping(std::string* error = nullptr);

  /// Asks the server to shut down gracefully (needs the server's
  /// allow_remote_shutdown). Returns true once the server acknowledges.
  bool Shutdown(std::string* error = nullptr);

  /// Raw connection handle, for tests that need to speak malformed bytes.
  int fd() const { return fd_; }

  /// Per-connection cap for response frames (mirrors the server default).
  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;

 private:
  /// Sends `request` and reads one response frame into *payload.
  bool RoundTrip(const ByteSink& request, std::vector<uint8_t>* payload,
                 std::string* error);

  int fd_ = -1;
};

}  // namespace rigpm::server

#endif  // RIGPM_SERVER_CLIENT_H_
