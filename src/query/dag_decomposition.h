#ifndef RIGPM_QUERY_DAG_DECOMPOSITION_H_
#define RIGPM_QUERY_DAG_DECOMPOSITION_H_

#include <vector>

#include "query/pattern_query.h"

namespace rigpm {

/// Decomposition of a (possibly cyclic) pattern query into a spanning DAG
/// plus a set of back edges Δ — the "Dag+Δ" structure FBSim iterates over
/// (Section 4.4, Algorithm 3).
///
/// `dag_edges` / `back_edges` partition the query's edge indices. The DAG
/// formed by `dag_edges` admits `topo_order` as a topological order of all
/// query nodes. For an acyclic query, `back_edges` is empty.
struct DagDecomposition {
  std::vector<QueryEdgeId> dag_edges;
  std::vector<QueryEdgeId> back_edges;
  std::vector<QueryNodeId> topo_order;

  bool IsDagQuery() const { return back_edges.empty(); }
};

/// Computes the decomposition with a DFS: edges closing a directed cycle
/// (pointing into the current DFS stack) become back edges. Deterministic
/// for a given query.
DagDecomposition DecomposeDag(const PatternQuery& q);

}  // namespace rigpm

#endif  // RIGPM_QUERY_DAG_DECOMPOSITION_H_
