#include "query/query_templates.h"

#include <cassert>
#include <cstdlib>
#include <random>

namespace rigpm {

const char* QueryVariantName(QueryVariant v) {
  switch (v) {
    case QueryVariant::kChildOnly:
      return "C";
    case QueryVariant::kHybrid:
      return "H";
    case QueryVariant::kDescendantOnly:
      return "D";
  }
  return "?";
}

const char* PatternClassName(PatternClass c) {
  switch (c) {
    case PatternClass::kAcyclic:
      return "Acyc";
    case PatternClass::kCyclic:
      return "Cyc";
    case PatternClass::kClique:
      return "Clique";
    case PatternClass::kCombo:
      return "Combo";
  }
  return "?";
}

namespace {

// Deterministic "arbitrary" 50/50 child/descendant assignment for hybrid
// templates: a fixed multiplicative hash of the edge index. The figure in
// the paper fixes the assignment per template; any fixed assignment
// preserves the experiment's structure.
EdgeKind HybridKind(size_t edge_index) {
  uint32_t h = static_cast<uint32_t>(edge_index) * 2654435761u;
  return ((h >> 16) & 1) ? EdgeKind::kDescendant : EdgeKind::kChild;
}

QueryTemplate MakeTemplate(
    std::string name, PatternClass cls, uint32_t num_nodes,
    std::vector<std::pair<QueryNodeId, QueryNodeId>> edges) {
  QueryTemplate t;
  t.name = std::move(name);
  t.cls = cls;
  t.num_nodes = num_nodes;
  t.hybrid_kinds.reserve(edges.size());
  for (size_t i = 0; i < edges.size(); ++i) {
    t.hybrid_kinds.push_back(HybridKind(i));
  }
  t.edges = std::move(edges);
  return t;
}

// Acyclic orientation of the complete graph on n nodes: all (i, j), i < j.
QueryTemplate MakeClique(std::string name, uint32_t n) {
  std::vector<std::pair<QueryNodeId, QueryNodeId>> edges;
  for (QueryNodeId i = 0; i < n; ++i) {
    for (QueryNodeId j = i + 1; j < n; ++j) edges.emplace_back(i, j);
  }
  return MakeTemplate(std::move(name), PatternClass::kClique, n,
                      std::move(edges));
}

std::vector<QueryTemplate> BuildTemplates() {
  using P = PatternClass;
  std::vector<QueryTemplate> t;
  t.reserve(20);

  // --- Acyclic patterns (undirected trees). HQ2 is the tree pattern the
  // paper singles out in Fig. 10.
  t.push_back(MakeTemplate("HQ0", P::kAcyclic, 4, {{0, 1}, {1, 2}, {0, 3}}));
  t.push_back(
      MakeTemplate("HQ1", P::kAcyclic, 5, {{0, 1}, {0, 2}, {1, 3}, {1, 4}}));
  t.push_back(MakeTemplate("HQ2", P::kAcyclic, 6,
                           {{0, 1}, {0, 2}, {2, 3}, {2, 4}, {4, 5}}));
  t.push_back(MakeTemplate(
      "HQ3", P::kAcyclic, 7,
      {{0, 1}, {0, 2}, {1, 3}, {1, 4}, {2, 5}, {2, 6}}));
  t.push_back(MakeTemplate("HQ4", P::kAcyclic, 6,
                           {{0, 1}, {0, 2}, {0, 3}, {3, 4}, {4, 5}}));
  t.push_back(MakeTemplate(
      "HQ5", P::kAcyclic, 8,
      {{0, 1}, {1, 2}, {2, 3}, {1, 4}, {4, 5}, {0, 6}, {6, 7}}));

  // --- Cyclic patterns (one or two undirected cycles).
  t.push_back(
      MakeTemplate("HQ6", P::kCyclic, 4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}}));
  t.push_back(MakeTemplate("HQ7", P::kCyclic, 5,
                           {{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}}));
  t.push_back(MakeTemplate("HQ8", P::kCyclic, 3, {{0, 1}, {0, 2}, {1, 2}}));
  t.push_back(MakeTemplate("HQ9", P::kCyclic, 5,
                           {{0, 1}, {1, 2}, {0, 3}, {3, 2}, {2, 4}}));
  // --- Combo patterns (more than two undirected cycles).
  t.push_back(MakeTemplate(
      "HQ10", P::kCombo, 5,
      {{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}, {3, 4}, {2, 4}}));
  // --- Cliques.
  t.push_back(MakeClique("HQ11", 4));
  t.push_back(MakeClique("HQ12", 5));
  // --- More combo patterns.
  t.push_back(MakeTemplate("HQ13", P::kCombo, 6,
                           {{0, 1},
                            {0, 2},
                            {1, 2},
                            {1, 3},
                            {2, 4},
                            {3, 4},
                            {3, 5},
                            {4, 5},
                            {0, 3}}));
  t.push_back(MakeTemplate("HQ14", P::kCombo, 8,
                           {{0, 1},
                            {0, 2},
                            {1, 3},
                            {2, 3},
                            {1, 2},
                            {3, 4},
                            {3, 5},
                            {4, 5},
                            {4, 6},
                            {5, 6},
                            {6, 7},
                            {2, 7}}));
  t.push_back(MakeTemplate(
      "HQ15", P::kCombo, 6,
      {{0, 1}, {0, 2}, {1, 3}, {2, 3}, {2, 4}, {3, 4}, {4, 5}, {1, 5}}));
  t.push_back(MakeTemplate("HQ16", P::kCombo, 7,
                           {{0, 1},
                            {0, 2},
                            {1, 2},
                            {1, 3},
                            {2, 4},
                            {3, 4},
                            {4, 5},
                            {3, 5},
                            {5, 6},
                            {0, 6}}));
  // --- A larger cyclic pattern the figures group with the cyclic class.
  t.push_back(MakeTemplate(
      "HQ17", P::kCyclic, 6,
      {{0, 1}, {1, 2}, {0, 3}, {3, 2}, {2, 4}, {2, 5}}));
  // --- Heaviest combo pattern (the one JM runs out of memory on).
  t.push_back(MakeTemplate("HQ18", P::kCombo, 7,
                           {{0, 1},
                            {0, 2},
                            {1, 2},
                            {1, 3},
                            {2, 3},
                            {2, 4},
                            {3, 4},
                            {4, 5},
                            {3, 5},
                            {5, 6},
                            {4, 6}}));
  // --- 7-clique.
  t.push_back(MakeClique("HQ19", 7));
  return t;
}

}  // namespace

const std::vector<QueryTemplate>& HQueryTemplates() {
  static const std::vector<QueryTemplate>& templates =
      *new std::vector<QueryTemplate>(BuildTemplates());
  return templates;
}

const QueryTemplate& TemplateByName(const std::string& name) {
  for (const QueryTemplate& t : HQueryTemplates()) {
    if (t.name == name) return t;
  }
  std::abort();  // unknown template name is a programming error
}

PatternQuery InstantiateTemplate(const QueryTemplate& tpl, QueryVariant variant,
                                 uint32_t num_labels, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<uint32_t> label_dist(
      0, num_labels > 0 ? num_labels - 1 : 0);
  std::vector<LabelId> labels(tpl.num_nodes);
  for (auto& l : labels) l = label_dist(rng);

  std::vector<QueryEdge> edges;
  edges.reserve(tpl.edges.size());
  for (size_t i = 0; i < tpl.edges.size(); ++i) {
    EdgeKind kind = EdgeKind::kChild;
    switch (variant) {
      case QueryVariant::kChildOnly:
        kind = EdgeKind::kChild;
        break;
      case QueryVariant::kDescendantOnly:
        kind = EdgeKind::kDescendant;
        break;
      case QueryVariant::kHybrid:
        kind = tpl.hybrid_kinds[i];
        break;
    }
    edges.push_back({tpl.edges[i].first, tpl.edges[i].second, kind});
  }
  return PatternQuery::FromParts(std::move(labels), std::move(edges));
}

}  // namespace rigpm
