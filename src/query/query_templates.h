#ifndef RIGPM_QUERY_QUERY_TEMPLATES_H_
#define RIGPM_QUERY_QUERY_TEMPLATES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "query/pattern_query.h"

namespace rigpm {

/// C / H / D query variants of Section 7.1: child-edge-only, hybrid (each
/// edge child or descendant), and descendant-edge-only.
enum class QueryVariant : uint8_t { kChildOnly, kHybrid, kDescendantOnly };

const char* QueryVariantName(QueryVariant v);

/// Structural classes of the designed query sets (Section 7.1): acyclic,
/// cyclic (>=1 undirected cycle), clique (complete undirected graph), and
/// combo (> 2 undirected cycles).
enum class PatternClass : uint8_t { kAcyclic, kCyclic, kClique, kCombo };

const char* PatternClassName(PatternClass c);

/// One of the twenty query templates of Fig. 7. `hybrid_kinds[i]` is the
/// edge type edge i takes in the H variant (the published figure fixes these
/// per template; the C and D variants override all edges).
struct QueryTemplate {
  std::string name;  // "HQ0" .. "HQ19"
  PatternClass cls = PatternClass::kAcyclic;
  uint32_t num_nodes = 0;
  std::vector<std::pair<QueryNodeId, QueryNodeId>> edges;
  std::vector<EdgeKind> hybrid_kinds;
};

/// The 20 templates HQ0..HQ19 (shapes reconstructed from the paper's class
/// annotations: HQ0-HQ5 acyclic with HQ2 a tree, HQ6-HQ9+HQ17 cyclic,
/// HQ11/HQ12/HQ19 cliques of 4/5/7 nodes, the rest combo patterns).
const std::vector<QueryTemplate>& HQueryTemplates();

/// Template by name ("HQ7"); aborts on unknown names.
const QueryTemplate& TemplateByName(const std::string& name);

/// Instantiates a template: node labels are drawn uniformly from
/// [0, num_labels) with the given seed; edge kinds follow the variant.
PatternQuery InstantiateTemplate(const QueryTemplate& tpl, QueryVariant variant,
                                 uint32_t num_labels, uint64_t seed);

}  // namespace rigpm

#endif  // RIGPM_QUERY_QUERY_TEMPLATES_H_
