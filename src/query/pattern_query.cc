#include "query/pattern_query.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <numeric>
#include <set>
#include <sstream>

#include "util/serde.h"

namespace rigpm {

namespace {

void AppendU32(std::vector<uint8_t>* out, uint32_t v) {
  const uint8_t* p = reinterpret_cast<const uint8_t*>(&v);
  out->insert(out->end(), p, p + sizeof(v));
}

}  // namespace

PatternQuery PatternQuery::FromParts(std::vector<LabelId> labels,
                                     std::vector<QueryEdge> edges) {
  PatternQuery q;
  q.labels_ = std::move(labels);
  std::sort(edges.begin(), edges.end(),
            [](const QueryEdge& a, const QueryEdge& b) {
              return std::tie(a.from, a.to, a.kind, a.max_hops) <
                     std::tie(b.from, b.to, b.kind, b.max_hops);
            });
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  q.edges_ = std::move(edges);
  q.num_child_edges_ = 0;
  for (const QueryEdge& e : q.edges_) {
    assert(e.from < q.labels_.size() && e.to < q.labels_.size());
    if (e.kind == EdgeKind::kChild) ++q.num_child_edges_;
  }
  q.BuildIncidence();
  return q;
}

void PatternQuery::BuildIncidence() {
  const uint32_t n = NumNodes();
  out_offsets_.assign(n + 1, 0);
  in_offsets_.assign(n + 1, 0);
  for (const QueryEdge& e : edges_) {
    ++out_offsets_[e.from + 1];
    ++in_offsets_[e.to + 1];
  }
  for (uint32_t i = 0; i < n; ++i) {
    out_offsets_[i + 1] += out_offsets_[i];
    in_offsets_[i + 1] += in_offsets_[i];
  }
  out_edges_.resize(edges_.size());
  in_edges_.resize(edges_.size());
  std::vector<uint32_t> opos(out_offsets_.begin(), out_offsets_.end() - 1);
  std::vector<uint32_t> ipos(in_offsets_.begin(), in_offsets_.end() - 1);
  for (QueryEdgeId i = 0; i < edges_.size(); ++i) {
    out_edges_[opos[edges_[i].from]++] = i;
    in_edges_[ipos[edges_[i].to]++] = i;
  }
}

bool PatternQuery::HasEdgeBetween(QueryNodeId p, QueryNodeId q) const {
  for (QueryEdgeId e : OutEdges(p)) {
    if (edges_[e].to == q) return true;
  }
  return false;
}

bool PatternQuery::IsConnected() const {
  const uint32_t n = NumNodes();
  if (n == 0) return false;
  std::vector<uint8_t> seen(n, 0);
  std::vector<QueryNodeId> stack = {0};
  seen[0] = 1;
  uint32_t count = 1;
  while (!stack.empty()) {
    QueryNodeId q = stack.back();
    stack.pop_back();
    auto visit = [&](QueryNodeId w) {
      if (!seen[w]) {
        seen[w] = 1;
        ++count;
        stack.push_back(w);
      }
    };
    for (QueryEdgeId e : OutEdges(q)) visit(edges_[e].to);
    for (QueryEdgeId e : InEdges(q)) visit(edges_[e].from);
  }
  return count == n;
}

bool PatternQuery::IsDag(std::vector<QueryNodeId>* topo_order) const {
  const uint32_t n = NumNodes();
  std::vector<uint32_t> indeg(n, 0);
  for (const QueryEdge& e : edges_) ++indeg[e.to];
  std::vector<QueryNodeId> order;
  order.reserve(n);
  for (QueryNodeId q = 0; q < n; ++q) {
    if (indeg[q] == 0) order.push_back(q);
  }
  for (size_t head = 0; head < order.size(); ++head) {
    QueryNodeId q = order[head];
    for (QueryEdgeId e : OutEdges(q)) {
      if (--indeg[edges_[e].to] == 0) order.push_back(edges_[e].to);
    }
  }
  if (order.size() != n) return false;
  if (topo_order != nullptr) *topo_order = std::move(order);
  return true;
}

bool PatternQuery::IsUndirectedAcyclic() const {
  if (!IsConnected()) return false;
  std::set<std::pair<QueryNodeId, QueryNodeId>> undirected;
  for (const QueryEdge& e : edges_) {
    undirected.insert({std::min(e.from, e.to), std::max(e.from, e.to)});
  }
  return undirected.size() == NumNodes() - 1;
}

std::vector<uint8_t> PatternQuery::CanonicalEncoding() const {
  const uint32_t n = NumNodes();
  // Child edges ignore max_hops (pattern_query.h); normalize it out so two
  // declarations differing only in a meaningless bound still collide.
  auto hops_of = [&](const QueryEdge& e) {
    return e.kind == EdgeKind::kChild ? 0u : e.max_hops;
  };

  // WL color refinement seeded from the labels: a node's next color hashes
  // its current color together with the sorted multiset of (direction,
  // kind, bound, neighbor color) over its incident edges. Isomorphic
  // patterns refine to identical color multisets, so sorting nodes by
  // refined color is already order-insensitive; only nodes refinement
  // cannot tell apart need the permutation tie-break below.
  std::vector<uint64_t> color(n);
  for (uint32_t q = 0; q < n; ++q) {
    uint64_t label = labels_[q];
    color[q] = Checksum64(&label, sizeof(label), 0x243f6a8885a308d3ull);
  }
  auto count_classes = [&] {
    std::vector<uint64_t> sorted(color);
    std::sort(sorted.begin(), sorted.end());
    return static_cast<size_t>(
        std::unique(sorted.begin(), sorted.end()) - sorted.begin());
  };
  size_t classes = count_classes();
  std::vector<uint64_t> next(n);
  std::vector<uint64_t> sig;
  for (uint32_t round = 0; round + 1 < n && classes < n; ++round) {
    for (uint32_t q = 0; q < n; ++q) {
      sig.clear();
      auto add = [&](uint64_t dir, const QueryEdge& edge, uint64_t other) {
        uint64_t fields[4] = {dir, static_cast<uint64_t>(edge.kind),
                              hops_of(edge), other};
        sig.push_back(Checksum64(fields, sizeof(fields)));
      };
      for (QueryEdgeId e : OutEdges(q)) add(0, edges_[e], color[edges_[e].to]);
      for (QueryEdgeId e : InEdges(q)) add(1, edges_[e], color[edges_[e].from]);
      std::sort(sig.begin(), sig.end());
      sig.push_back(color[q]);
      next[q] = Checksum64(sig.data(), sig.size() * sizeof(uint64_t),
                           0x13198a2e03707344ull);
    }
    color.swap(next);
    size_t refined = count_classes();
    if (refined == classes) break;  // stable partition
    classes = refined;
  }

  // Canonical position order: by refined color, construction index as the
  // (only-in-fallback) tie-break.
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return color[a] != color[b] ? color[a] < color[b] : a < b;
  });

  auto encode = [&](const std::vector<uint32_t>& ord) {
    std::vector<uint32_t> inv(n);
    for (uint32_t i = 0; i < n; ++i) inv[ord[i]] = i;
    std::vector<uint8_t> out;
    out.reserve(sizeof(uint32_t) * (2 + n + 4 * edges_.size()));
    AppendU32(&out, n);
    for (uint32_t i = 0; i < n; ++i) AppendU32(&out, labels_[ord[i]]);
    std::vector<std::array<uint32_t, 4>> mapped;
    mapped.reserve(edges_.size());
    for (const QueryEdge& e : edges_) {
      mapped.push_back({inv[e.from], inv[e.to],
                        static_cast<uint32_t>(e.kind), hops_of(e)});
    }
    std::sort(mapped.begin(), mapped.end());
    AppendU32(&out, static_cast<uint32_t>(mapped.size()));
    for (const auto& e : mapped) {
      for (uint32_t field : e) AppendU32(&out, field);
    }
    return out;
  };

  // Color classes refinement could not split: try every within-class
  // ordering (bounded) and keep the lexicographically smallest encoding —
  // any isomorphism maps refined classes onto each other, so the minimum
  // over class-respecting orders is isomorphism-invariant.
  struct TieGroup {
    size_t begin;
    size_t end;
  };
  std::vector<TieGroup> groups;
  uint64_t perms = 1;
  bool bounded = true;
  for (size_t i = 0; i < order.size();) {
    size_t j = i + 1;
    while (j < order.size() && color[order[j]] == color[order[i]]) ++j;
    if (j - i > 1) {
      groups.push_back({i, j});
      for (size_t k = 2; k <= j - i && bounded; ++k) {
        perms *= k;
        if (perms > kMaxCanonicalPerms) bounded = false;
      }
    }
    i = j;
  }
  if (groups.empty() || !bounded) return encode(order);

  std::vector<uint8_t> best = encode(order);
  while (true) {
    // Odometer over the tie groups, each stepped by next_permutation (the
    // slices start sorted ascending, so every combination is visited once).
    size_t g = 0;
    for (; g < groups.size(); ++g) {
      auto begin = order.begin() + static_cast<ptrdiff_t>(groups[g].begin);
      auto end = order.begin() + static_cast<ptrdiff_t>(groups[g].end);
      if (std::next_permutation(begin, end)) break;
    }
    if (g == groups.size()) break;  // every combination seen
    std::vector<uint8_t> candidate = encode(order);
    if (candidate < best) best = std::move(candidate);
  }
  return best;
}

uint64_t PatternQuery::CanonicalFingerprint() const {
  std::vector<uint8_t> encoding = CanonicalEncoding();
  return Checksum64(encoding.data(), encoding.size(), 0xa4093822299f31d0ull);
}

std::string PatternQuery::Summary() const {
  std::ostringstream os;
  os << "nodes=" << NumNodes() << " edges=" << NumEdges() << " (child "
     << NumChildEdges() << ", desc " << NumDescendantEdges() << ")";
  return os.str();
}

}  // namespace rigpm
