#include "query/pattern_query.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <sstream>

namespace rigpm {

PatternQuery PatternQuery::FromParts(std::vector<LabelId> labels,
                                     std::vector<QueryEdge> edges) {
  PatternQuery q;
  q.labels_ = std::move(labels);
  std::sort(edges.begin(), edges.end(),
            [](const QueryEdge& a, const QueryEdge& b) {
              return std::tie(a.from, a.to, a.kind, a.max_hops) <
                     std::tie(b.from, b.to, b.kind, b.max_hops);
            });
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  q.edges_ = std::move(edges);
  q.num_child_edges_ = 0;
  for (const QueryEdge& e : q.edges_) {
    assert(e.from < q.labels_.size() && e.to < q.labels_.size());
    if (e.kind == EdgeKind::kChild) ++q.num_child_edges_;
  }
  q.BuildIncidence();
  return q;
}

void PatternQuery::BuildIncidence() {
  const uint32_t n = NumNodes();
  out_offsets_.assign(n + 1, 0);
  in_offsets_.assign(n + 1, 0);
  for (const QueryEdge& e : edges_) {
    ++out_offsets_[e.from + 1];
    ++in_offsets_[e.to + 1];
  }
  for (uint32_t i = 0; i < n; ++i) {
    out_offsets_[i + 1] += out_offsets_[i];
    in_offsets_[i + 1] += in_offsets_[i];
  }
  out_edges_.resize(edges_.size());
  in_edges_.resize(edges_.size());
  std::vector<uint32_t> opos(out_offsets_.begin(), out_offsets_.end() - 1);
  std::vector<uint32_t> ipos(in_offsets_.begin(), in_offsets_.end() - 1);
  for (QueryEdgeId i = 0; i < edges_.size(); ++i) {
    out_edges_[opos[edges_[i].from]++] = i;
    in_edges_[ipos[edges_[i].to]++] = i;
  }
}

bool PatternQuery::HasEdgeBetween(QueryNodeId p, QueryNodeId q) const {
  for (QueryEdgeId e : OutEdges(p)) {
    if (edges_[e].to == q) return true;
  }
  return false;
}

bool PatternQuery::IsConnected() const {
  const uint32_t n = NumNodes();
  if (n == 0) return false;
  std::vector<uint8_t> seen(n, 0);
  std::vector<QueryNodeId> stack = {0};
  seen[0] = 1;
  uint32_t count = 1;
  while (!stack.empty()) {
    QueryNodeId q = stack.back();
    stack.pop_back();
    auto visit = [&](QueryNodeId w) {
      if (!seen[w]) {
        seen[w] = 1;
        ++count;
        stack.push_back(w);
      }
    };
    for (QueryEdgeId e : OutEdges(q)) visit(edges_[e].to);
    for (QueryEdgeId e : InEdges(q)) visit(edges_[e].from);
  }
  return count == n;
}

bool PatternQuery::IsDag(std::vector<QueryNodeId>* topo_order) const {
  const uint32_t n = NumNodes();
  std::vector<uint32_t> indeg(n, 0);
  for (const QueryEdge& e : edges_) ++indeg[e.to];
  std::vector<QueryNodeId> order;
  order.reserve(n);
  for (QueryNodeId q = 0; q < n; ++q) {
    if (indeg[q] == 0) order.push_back(q);
  }
  for (size_t head = 0; head < order.size(); ++head) {
    QueryNodeId q = order[head];
    for (QueryEdgeId e : OutEdges(q)) {
      if (--indeg[edges_[e].to] == 0) order.push_back(edges_[e].to);
    }
  }
  if (order.size() != n) return false;
  if (topo_order != nullptr) *topo_order = std::move(order);
  return true;
}

bool PatternQuery::IsUndirectedAcyclic() const {
  if (!IsConnected()) return false;
  std::set<std::pair<QueryNodeId, QueryNodeId>> undirected;
  for (const QueryEdge& e : edges_) {
    undirected.insert({std::min(e.from, e.to), std::max(e.from, e.to)});
  }
  return undirected.size() == NumNodes() - 1;
}

std::string PatternQuery::Summary() const {
  std::ostringstream os;
  os << "nodes=" << NumNodes() << " edges=" << NumEdges() << " (child "
     << NumChildEdges() << ", desc " << NumDescendantEdges() << ")";
  return os.str();
}

}  // namespace rigpm
