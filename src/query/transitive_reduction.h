#ifndef RIGPM_QUERY_TRANSITIVE_REDUCTION_H_
#define RIGPM_QUERY_TRANSITIVE_REDUCTION_H_

#include "query/pattern_query.h"

namespace rigpm {

/// Query-level transitive closure and reduction (Section 3).
///
/// A reachability (descendant) edge e = (x, y) is *transitive* — hence
/// redundant — when some other directed path from x to y exists in Q; the
/// reachability constraint it expresses is implied by that path, whatever
/// data graph the query runs on. Removing transitive edges before evaluation
/// avoids the expensive edge-to-path matching work for them (Fig. 15 shows
/// up to 12x speedups).

/// Returns the transitive closure of `q`: a descendant edge (x, y) is added
/// for every pair with x ≺ y in Q (inference rules IR1/IR2 iterated to a
/// fixpoint). Child edges are preserved unchanged.
PatternQuery QueryTransitiveClosure(const PatternQuery& q);

/// Returns a transitive reduction of `q`: child edges are kept verbatim and
/// every transitive descendant edge is dropped. For acyclic queries this is
/// the unique minimal equivalent query (Definition 3.1); for cyclic queries
/// a greedy (deterministic) reduction is returned.
PatternQuery QueryTransitiveReduction(const PatternQuery& q);

/// True iff there is a directed path from `from` to `to` in `q` using any
/// edges except the single edge index `skip` (pass NumEdges() to skip none).
bool QueryReaches(const PatternQuery& q, QueryNodeId from, QueryNodeId to,
                  QueryEdgeId skip);

}  // namespace rigpm

#endif  // RIGPM_QUERY_TRANSITIVE_REDUCTION_H_
