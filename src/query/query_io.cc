#include "query/query_io.h"

#include <sstream>
#include <vector>

namespace rigpm {

void WriteQuery(const PatternQuery& q, std::ostream& out) {
  out << "q " << q.NumNodes() << '\n';
  for (QueryNodeId v = 0; v < q.NumNodes(); ++v) {
    out << "v " << v << ' ' << q.Label(v) << '\n';
  }
  for (const QueryEdge& e : q.Edges()) {
    out << "e " << e.from << ' ' << e.to << ' '
        << (e.kind == EdgeKind::kChild ? 'c' : 'd');
    if (e.kind == EdgeKind::kDescendant && e.max_hops > 0) {
      out << ' ' << e.max_hops;
    }
    out << '\n';
  }
}

std::optional<PatternQuery> ReadQuery(std::istream& in, std::string* error) {
  auto fail = [error](const std::string& msg) -> std::optional<PatternQuery> {
    if (error != nullptr) *error = msg;
    return std::nullopt;
  };

  std::vector<LabelId> labels;
  std::vector<QueryEdge> edges;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    char tag = 0;
    ls >> tag;
    if (tag == 'q') {
      uint32_t n = 0;
      ls >> n;
      labels.reserve(n);
    } else if (tag == 'v') {
      uint64_t id = 0, label = 0;
      if (!(ls >> id >> label)) {
        return fail("malformed query node at line " + std::to_string(line_no));
      }
      if (id != labels.size()) {
        return fail("non-dense query node id at line " +
                    std::to_string(line_no));
      }
      labels.push_back(static_cast<LabelId>(label));
    } else if (tag == 'e') {
      uint64_t u = 0, v = 0;
      char kind = 0;
      if (!(ls >> u >> v >> kind) || (kind != 'c' && kind != 'd')) {
        return fail("malformed query edge at line " + std::to_string(line_no));
      }
      if (u >= labels.size() || v >= labels.size()) {
        return fail("query edge endpoint out of range at line " +
                    std::to_string(line_no));
      }
      QueryEdge edge{static_cast<QueryNodeId>(u), static_cast<QueryNodeId>(v),
                     kind == 'c' ? EdgeKind::kChild : EdgeKind::kDescendant};
      uint64_t hops = 0;
      if (kind == 'd' && (ls >> hops)) {
        edge.max_hops = static_cast<uint32_t>(hops);
      }
      edges.push_back(edge);
    } else {
      return fail("unknown record tag at line " + std::to_string(line_no));
    }
  }
  return PatternQuery::FromParts(std::move(labels), std::move(edges));
}

std::optional<PatternQuery> ParseQuery(const std::string& text,
                                       std::string* error) {
  std::istringstream in(text);
  return ReadQuery(in, error);
}

std::string QueryToString(const PatternQuery& q) {
  std::ostringstream os;
  WriteQuery(q, os);
  return os.str();
}

}  // namespace rigpm
