#ifndef RIGPM_QUERY_QUERY_IO_H_
#define RIGPM_QUERY_QUERY_IO_H_

#include <iosfwd>
#include <optional>
#include <string>

#include "query/pattern_query.h"

namespace rigpm {

/// Text serialization of pattern queries.
///
/// Format ('#' starts a comment):
///   q <num_nodes>
///   v <node_id> <label_id>
///   e <src_id> <dst_id> c     -- child (direct) edge
///   e <src_id> <dst_id> d     -- descendant (reachability) edge
///   e <src_id> <dst_id> d <k> -- bounded descendant edge (path length <= k)
void WriteQuery(const PatternQuery& q, std::ostream& out);
std::optional<PatternQuery> ReadQuery(std::istream& in,
                                      std::string* error = nullptr);

/// Parses an inline string, e.g. "q 3\nv 0 0\nv 1 1\nv 2 2\ne 0 1 c\ne 1 2 d".
std::optional<PatternQuery> ParseQuery(const std::string& text,
                                       std::string* error = nullptr);

std::string QueryToString(const PatternQuery& q);

}  // namespace rigpm

#endif  // RIGPM_QUERY_QUERY_IO_H_
