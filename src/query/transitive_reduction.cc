#include "query/transitive_reduction.h"

#include <vector>

namespace rigpm {

bool QueryReaches(const PatternQuery& q, QueryNodeId from, QueryNodeId to,
                  QueryEdgeId skip) {
  if (from == to) return false;
  std::vector<uint8_t> seen(q.NumNodes(), 0);
  std::vector<QueryNodeId> stack = {from};
  seen[from] = 1;
  while (!stack.empty()) {
    QueryNodeId v = stack.back();
    stack.pop_back();
    for (QueryEdgeId e : q.OutEdges(v)) {
      if (e == skip) continue;
      QueryNodeId w = q.Edge(e).to;
      if (w == to) return true;
      if (!seen[w]) {
        seen[w] = 1;
        stack.push_back(w);
      }
    }
  }
  return false;
}

PatternQuery QueryTransitiveClosure(const PatternQuery& q) {
  const uint32_t n = q.NumNodes();
  // reach[x][y] = 1 iff x ≺ y in Q. Seeded by IR1 (every edge implies
  // reachability) and closed under IR2 (transitivity) with a simple
  // Floyd-Warshall pass — queries are tiny, so O(n^3) is immaterial.
  std::vector<std::vector<uint8_t>> reach(n, std::vector<uint8_t>(n, 0));
  for (const QueryEdge& e : q.Edges()) reach[e.from][e.to] = 1;
  for (uint32_t k = 0; k < n; ++k) {
    for (uint32_t i = 0; i < n; ++i) {
      if (!reach[i][k]) continue;
      for (uint32_t j = 0; j < n; ++j) {
        if (reach[k][j]) reach[i][j] = 1;
      }
    }
  }
  std::vector<QueryEdge> edges;
  for (const QueryEdge& e : q.Edges()) {
    // Child edges and bounded descendant edges express constraints strictly
    // stronger than plain reachability; they are kept verbatim.
    if (e.kind == EdgeKind::kChild || e.max_hops > 0) edges.push_back(e);
  }
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = 0; j < n; ++j) {
      if (reach[i][j]) {
        edges.push_back({i, j, EdgeKind::kDescendant});
      }
    }
  }
  return PatternQuery::FromParts(q.Labels(), std::move(edges));
}

PatternQuery QueryTransitiveReduction(const PatternQuery& q) {
  // Greedy deterministic reduction: repeatedly drop a descendant edge whose
  // endpoints stay connected by an alternative directed path. Child edges
  // are never dropped (they express a strictly stronger constraint).
  std::vector<QueryEdge> edges = q.Edges();
  bool changed = true;
  while (changed) {
    changed = false;
    PatternQuery current = PatternQuery::FromParts(q.Labels(), edges);
    for (QueryEdgeId e = 0; e < current.NumEdges(); ++e) {
      const QueryEdge& edge = current.Edge(e);
      if (edge.kind != EdgeKind::kDescendant) continue;
      if (edge.max_hops > 0) continue;  // bounded edges are never redundant
      if (QueryReaches(current, edge.from, edge.to, e)) {
        edges = current.Edges();
        edges.erase(edges.begin() + e);
        changed = true;
        break;
      }
    }
  }
  return PatternQuery::FromParts(q.Labels(), std::move(edges));
}

}  // namespace rigpm
