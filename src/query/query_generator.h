#ifndef RIGPM_QUERY_QUERY_GENERATOR_H_
#define RIGPM_QUERY_QUERY_GENERATOR_H_

#include <cstdint>
#include <optional>

#include "graph/graph.h"
#include "query/pattern_query.h"
#include "query/query_templates.h"

namespace rigpm {

/// Random connected pattern query over a synthetic label alphabet.
/// The directed shape is acyclic (edges go from lower to higher node rank),
/// matching the published templates; labels are uniform.
struct RandomQueryOptions {
  uint32_t num_nodes = 6;
  uint32_t num_edges = 8;  // clamped to [num_nodes-1, n*(n-1)/2]
  uint32_t num_labels = 10;
  QueryVariant variant = QueryVariant::kHybrid;
  uint64_t seed = 1;
};

PatternQuery GenerateRandomQuery(const RandomQueryOptions& opts);

/// Extracts a query from a data graph the way the subgraph-matching papers
/// the evaluation reuses do ([53], Section 7.1): random-walk a connected
/// subgraph of `num_nodes` nodes, take (a subset of) its induced edges, and
/// copy the data labels. Guarantees at least one match on `g` for the C
/// variant — and therefore also for H/D variants, because an edge is a path.
///
/// When `dense` is true the extraction retries until every query node has
/// (undirected) degree >= 3, the "dense query set" rule of the RapidMatch
/// comparison (Fig. 17); sparse queries cap every degree at < 3... returns
/// std::nullopt if the structure cannot be found within `max_attempts`.
struct ExtractedQueryOptions {
  uint32_t num_nodes = 8;
  QueryVariant variant = QueryVariant::kChildOnly;
  uint64_t seed = 1;
  std::optional<bool> dense;  // nullopt: no degree constraint
  uint32_t max_attempts = 200;
};

std::optional<PatternQuery> ExtractQueryFromGraph(
    const Graph& g, const ExtractedQueryOptions& opts);

}  // namespace rigpm

#endif  // RIGPM_QUERY_QUERY_GENERATOR_H_
