#include "query/pattern_parser.h"

#include <cctype>
#include <map>
#include <sstream>
#include <vector>

namespace rigpm {

namespace {

// Minimal recursive-descent scanner over the pattern grammar.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  std::optional<PatternQuery> Run(std::string* error) {
    while (!AtEnd()) {
      if (!Clause()) {
        if (error != nullptr) *error = error_;
        return std::nullopt;
      }
      SkipSpace();
      if (AtEnd()) break;
      if (!Consume(',')) {
        if (error != nullptr) *error = "expected ',' at offset " + Where();
        return std::nullopt;
      }
    }
    if (labels_.empty()) {
      if (error != nullptr) *error = "empty pattern";
      return std::nullopt;
    }
    return PatternQuery::FromParts(labels_, edges_);
  }

 private:
  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  std::string Where() { return std::to_string(pos_); }

  bool Fail(const std::string& msg) {
    error_ = msg + " at offset " + Where();
    return false;
  }

  // node := '(' name [':' label] ')'
  bool Node(QueryNodeId* out) {
    if (!Consume('(')) return Fail("expected '('");
    SkipSpace();
    std::string name;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      name.push_back(text_[pos_++]);
    }
    if (name.empty()) return Fail("expected node name");
    std::optional<LabelId> label;
    if (Consume(':')) {
      SkipSpace();
      std::string digits;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        digits.push_back(text_[pos_++]);
      }
      if (digits.empty()) return Fail("expected numeric label");
      label = static_cast<LabelId>(std::stoul(digits));
    }
    if (!Consume(')')) return Fail("expected ')'");

    auto it = bindings_.find(name);
    if (it != bindings_.end()) {
      if (label.has_value() && labels_[it->second] != *label) {
        return Fail("conflicting label for node '" + name + "'");
      }
      *out = it->second;
      return true;
    }
    if (!label.has_value()) {
      return Fail("first use of node '" + name + "' needs a ':label'");
    }
    QueryNodeId id = static_cast<QueryNodeId>(labels_.size());
    labels_.push_back(*label);
    bindings_[name] = id;
    *out = id;
    return true;
  }

  // edge := '->' | '=>' | '=N>' | '<-' | '<='  (kind, bound, direction)
  bool Edge(EdgeKind* kind, uint32_t* max_hops, bool* reversed) {
    SkipSpace();
    *max_hops = 0;
    if (pos_ + 1 >= text_.size()) return Fail("expected edge");
    char a = text_[pos_], b = text_[pos_ + 1];
    if (a == '-' && b == '>') {
      *kind = EdgeKind::kChild;
      *reversed = false;
    } else if (a == '=' && std::isdigit(static_cast<unsigned char>(b))) {
      // Bounded descendant edge '=N>': path of at most N edges.
      size_t p = pos_ + 1;
      std::string digits;
      while (p < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[p]))) {
        digits.push_back(text_[p++]);
      }
      if (p >= text_.size() || text_[p] != '>') {
        return Fail("expected '>' after '=N'");
      }
      *kind = EdgeKind::kDescendant;
      *max_hops = static_cast<uint32_t>(std::stoul(digits));
      *reversed = false;
      pos_ = p + 1;
      return true;
    } else if (a == '=' && b == '>') {
      *kind = EdgeKind::kDescendant;
      *reversed = false;
    } else if (a == '<' && b == '-') {
      *kind = EdgeKind::kChild;
      *reversed = true;
    } else if (a == '<' && b == '=') {
      *kind = EdgeKind::kDescendant;
      *reversed = true;
    } else {
      return Fail("expected '->', '=>', '=N>', '<-' or '<='");
    }
    pos_ += 2;
    return true;
  }

  // clause := node (edge node)*
  bool Clause() {
    QueryNodeId current = 0;
    if (!Node(&current)) return false;
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] == ',') return true;
      EdgeKind kind;
      uint32_t max_hops = 0;
      bool reversed = false;
      if (!Edge(&kind, &max_hops, &reversed)) return false;
      QueryNodeId next = 0;
      if (!Node(&next)) return false;
      if (reversed) {
        edges_.push_back({next, current, kind, max_hops});
      } else {
        edges_.push_back({current, next, kind, max_hops});
      }
      current = next;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::string error_;
  std::vector<LabelId> labels_;
  std::vector<QueryEdge> edges_;
  std::map<std::string, QueryNodeId> bindings_;
};

}  // namespace

std::optional<PatternQuery> ParsePattern(const std::string& text,
                                         std::string* error) {
  Parser p(text);
  return p.Run(error);
}

std::string PatternToString(const PatternQuery& q) {
  std::ostringstream os;
  // Emit every node once with its label, via the first clause that uses it.
  std::vector<bool> labeled(q.NumNodes(), false);
  auto node = [&](QueryNodeId v) {
    std::ostringstream n;
    n << "(n" << v;
    if (!labeled[v]) {
      n << ':' << q.Label(v);
      labeled[v] = true;
    }
    n << ')';
    return n.str();
  };
  bool first = true;
  for (const QueryEdge& e : q.Edges()) {
    if (!first) os << ", ";
    first = false;
    os << node(e.from);
    if (e.kind == EdgeKind::kChild) {
      os << "->";
    } else if (e.max_hops > 0) {
      os << '=' << e.max_hops << '>';
    } else {
      os << "=>";
    }
    os << node(e.to);
  }
  // Isolated nodes (single-node queries).
  for (QueryNodeId v = 0; v < q.NumNodes(); ++v) {
    if (q.Degree(v) == 0) {
      if (!first) os << ", ";
      first = false;
      os << node(v);
    }
  }
  return os.str();
}

}  // namespace rigpm
