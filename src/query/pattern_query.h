#ifndef RIGPM_QUERY_PATTERN_QUERY_H_
#define RIGPM_QUERY_PATTERN_QUERY_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace rigpm {

/// Node index inside a pattern query (dense, 0-based).
using QueryNodeId = uint32_t;
/// Edge index inside a pattern query.
using QueryEdgeId = uint32_t;

/// The two edge types of a hybrid pattern (Definition 2.4): a child edge
/// maps to a single data edge (edge-to-edge); a descendant edge maps to a
/// path of one or more data edges (edge-to-path).
enum class EdgeKind : uint8_t {
  kChild,       // direct structural relationship
  kDescendant,  // reachability relationship
};

struct QueryEdge {
  QueryNodeId from = 0;
  QueryNodeId to = 0;
  EdgeKind kind = EdgeKind::kChild;

  /// For descendant edges only: maximum path length in the data graph
  /// (the *bounded* graph patterns of Zou et al., VLDB J. 2012, which the
  /// paper discusses as the R-Join application). 0 means unbounded — the
  /// plain reachability semantics of Definition 2.5. A bound of 1 is
  /// equivalent to a child edge. Ignored for child edges.
  uint32_t max_hops = 0;

  bool operator==(const QueryEdge&) const = default;
};

/// A connected directed node-labeled hybrid graph pattern (Definition 2.4).
///
/// Immutable after construction. Besides node labels and typed edges, the
/// class precomputes the per-node incident-edge lists that every matching
/// algorithm iterates (children(q) / parents(q) in the paper's pseudocode).
class PatternQuery {
 public:
  PatternQuery() = default;

  /// Builds a query. Duplicate edges (same endpoints and kind) are removed;
  /// a child and a descendant edge between the same endpoints may coexist
  /// (the descendant one is then transitively redundant, see Section 3).
  static PatternQuery FromParts(std::vector<LabelId> labels,
                                std::vector<QueryEdge> edges);

  uint32_t NumNodes() const { return static_cast<uint32_t>(labels_.size()); }
  uint32_t NumEdges() const { return static_cast<uint32_t>(edges_.size()); }

  LabelId Label(QueryNodeId q) const { return labels_[q]; }
  const std::vector<LabelId>& Labels() const { return labels_; }

  const QueryEdge& Edge(QueryEdgeId e) const { return edges_[e]; }
  const std::vector<QueryEdge>& Edges() const { return edges_; }

  /// Indices of edges leaving `q` (q is the tail).
  std::span<const QueryEdgeId> OutEdges(QueryNodeId q) const {
    return {out_edges_.data() + out_offsets_[q],
            out_edges_.data() + out_offsets_[q + 1]};
  }
  /// Indices of edges entering `q` (q is the head).
  std::span<const QueryEdgeId> InEdges(QueryNodeId q) const {
    return {in_edges_.data() + in_offsets_[q],
            in_edges_.data() + in_offsets_[q + 1]};
  }

  uint32_t OutDegree(QueryNodeId q) const {
    return static_cast<uint32_t>(out_offsets_[q + 1] - out_offsets_[q]);
  }
  uint32_t InDegree(QueryNodeId q) const {
    return static_cast<uint32_t>(in_offsets_[q + 1] - in_offsets_[q]);
  }
  uint32_t Degree(QueryNodeId q) const { return OutDegree(q) + InDegree(q); }

  uint32_t NumChildEdges() const { return num_child_edges_; }
  uint32_t NumDescendantEdges() const {
    return NumEdges() - num_child_edges_;
  }

  /// True iff there is a directed edge (p, q) of any kind.
  bool HasEdgeBetween(QueryNodeId p, QueryNodeId q) const;

  /// True iff the underlying *undirected* graph is connected (queries are
  /// required to be connected, Definition 2.4).
  bool IsConnected() const;

  /// True iff the *directed* query has no cycle. When true and `topo_order`
  /// is non-null, it receives the nodes in a topological order.
  bool IsDag(std::vector<QueryNodeId>* topo_order = nullptr) const;

  /// True iff the underlying undirected graph is acyclic ("acyclic pattern"
  /// class of Section 7.1): connected + exactly n-1 undirected edges between
  /// distinct endpoint pairs.
  bool IsUndirectedAcyclic() const;

  /// Canonical byte encoding of the pattern, invariant under the node
  /// renumbering that a permuted declaration order induces: two patterns
  /// that are isomorphic as labeled typed digraphs produce identical bytes
  /// (WL color refinement picks the node order; ties are broken by trying
  /// every within-class permutation and keeping the lexicographically
  /// smallest encoding). Distinct patterns always encode differently — the
  /// encoding is a faithful serialization, so it is safe as an exact cache
  /// key. For pathological patterns whose refined color classes admit more
  /// than kMaxCanonicalPerms orderings the tie-break falls back to the
  /// construction order: such twins may fail to collide (a cache miss),
  /// never the reverse.
  std::vector<uint8_t> CanonicalEncoding() const;

  /// 64-bit digest of CanonicalEncoding() — the order-insensitive pattern
  /// fingerprint the server's result cache keys on.
  uint64_t CanonicalFingerprint() const;

  /// Tie-break budget of CanonicalEncoding(): the maximum number of
  /// within-color-class orderings tried before falling back (8! covers any
  /// realistic pattern; the search only runs when refinement leaves
  /// structurally indistinguishable nodes).
  static constexpr uint64_t kMaxCanonicalPerms = 40320;

  /// One-line human-readable description for logs and bench output.
  std::string Summary() const;

  bool operator==(const PatternQuery& other) const {
    return labels_ == other.labels_ && edges_ == other.edges_;
  }

 private:
  void BuildIncidence();

  std::vector<LabelId> labels_;
  std::vector<QueryEdge> edges_;
  uint32_t num_child_edges_ = 0;

  std::vector<uint32_t> out_offsets_;
  std::vector<QueryEdgeId> out_edges_;
  std::vector<uint32_t> in_offsets_;
  std::vector<QueryEdgeId> in_edges_;
};

}  // namespace rigpm

#endif  // RIGPM_QUERY_PATTERN_QUERY_H_
