#ifndef RIGPM_QUERY_PATTERN_PARSER_H_
#define RIGPM_QUERY_PATTERN_PARSER_H_

#include <optional>
#include <string>

#include "query/pattern_query.h"

namespace rigpm {

/// A compact, Cypher-flavoured surface syntax for hybrid patterns, for
/// interactive use (CLI, examples). Grammar:
///
///   pattern  := clause (',' clause)*
///   clause   := node (edge node)*
///   node     := '(' name [':' label] ')'
///   edge     := '->'            child (direct) edge
///            |  '=>'            descendant (reachability) edge
///            |  '<-' | '<='     the same, right-to-left
///
/// `name` binds a query node (re-using a name refers to the same node);
/// `label` is a non-negative integer label id and must be given on the
/// first occurrence of each name.
///
/// Example — the paper's running example query (Fig. 2a):
///   (a:0)->(b:1), (a)->(c:2), (b)=>(c)
std::optional<PatternQuery> ParsePattern(const std::string& text,
                                         std::string* error = nullptr);

/// Renders a query back into the surface syntax (one clause per edge).
std::string PatternToString(const PatternQuery& q);

}  // namespace rigpm

#endif  // RIGPM_QUERY_PATTERN_PARSER_H_
