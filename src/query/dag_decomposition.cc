#include "query/dag_decomposition.h"

#include <algorithm>
#include <cassert>

namespace rigpm {

DagDecomposition DecomposeDag(const PatternQuery& q) {
  const uint32_t n = q.NumNodes();
  DagDecomposition out;

  // DFS that classifies every edge. An edge to a node currently on the DFS
  // stack closes a directed cycle and is sent to Δ; all other edges keep the
  // graph acyclic and stay in the DAG.
  enum : uint8_t { kWhite, kGray, kBlack };
  std::vector<uint8_t> color(n, kWhite);
  std::vector<std::pair<QueryNodeId, uint32_t>> stack;  // node, out-edge pos
  std::vector<uint8_t> is_back(q.NumEdges(), 0);

  for (QueryNodeId root = 0; root < n; ++root) {
    if (color[root] != kWhite) continue;
    color[root] = kGray;
    stack.emplace_back(root, 0);
    while (!stack.empty()) {
      QueryNodeId v = stack.back().first;
      auto out_edges = q.OutEdges(v);
      bool descended = false;
      while (stack.back().second < out_edges.size()) {
        QueryEdgeId e = out_edges[stack.back().second++];
        QueryNodeId w = q.Edge(e).to;
        if (color[w] == kGray) {
          is_back[e] = 1;  // closes a directed cycle
        } else if (color[w] == kWhite) {
          color[w] = kGray;
          stack.emplace_back(w, 0);
          descended = true;
          break;
        }
        // kBlack: forward/cross edge, keeps the DAG acyclic.
      }
      if (!descended && !stack.empty() && stack.back().first == v &&
          stack.back().second >= out_edges.size()) {
        color[v] = kBlack;
        stack.pop_back();
      }
    }
  }

  for (QueryEdgeId e = 0; e < q.NumEdges(); ++e) {
    (is_back[e] ? out.back_edges : out.dag_edges).push_back(e);
  }

  // Topological order of the DAG part (Kahn).
  std::vector<uint32_t> indeg(n, 0);
  for (QueryEdgeId e : out.dag_edges) ++indeg[q.Edge(e).to];
  std::vector<QueryNodeId> order;
  order.reserve(n);
  for (QueryNodeId v = 0; v < n; ++v) {
    if (indeg[v] == 0) order.push_back(v);
  }
  for (size_t head = 0; head < order.size(); ++head) {
    QueryNodeId v = order[head];
    for (QueryEdgeId e : q.OutEdges(v)) {
      if (is_back[e]) continue;
      if (--indeg[q.Edge(e).to] == 0) order.push_back(q.Edge(e).to);
    }
  }
  assert(order.size() == n && "DAG part must be acyclic");
  out.topo_order = std::move(order);
  return out;
}

}  // namespace rigpm
