#include "query/query_generator.h"

#include <algorithm>
#include <random>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace rigpm {

namespace {

EdgeKind KindFor(QueryVariant variant, std::mt19937_64& rng) {
  switch (variant) {
    case QueryVariant::kChildOnly:
      return EdgeKind::kChild;
    case QueryVariant::kDescendantOnly:
      return EdgeKind::kDescendant;
    case QueryVariant::kHybrid:
      return (rng() & 1) ? EdgeKind::kDescendant : EdgeKind::kChild;
  }
  return EdgeKind::kChild;
}

}  // namespace

PatternQuery GenerateRandomQuery(const RandomQueryOptions& opts) {
  std::mt19937_64 rng(opts.seed);
  const uint32_t n = std::max<uint32_t>(2, opts.num_nodes);
  const uint32_t max_edges = n * (n - 1) / 2;
  const uint32_t m =
      std::min(std::max(opts.num_edges, n - 1), max_edges);

  std::vector<LabelId> labels(n);
  std::uniform_int_distribution<uint32_t> label_dist(
      0, opts.num_labels > 0 ? opts.num_labels - 1 : 0);
  for (auto& l : labels) l = label_dist(rng);

  // Random spanning tree first (connectivity), then extra forward edges.
  std::set<std::pair<QueryNodeId, QueryNodeId>> chosen;
  for (QueryNodeId v = 1; v < n; ++v) {
    std::uniform_int_distribution<uint32_t> parent_dist(0, v - 1);
    chosen.insert({parent_dist(rng), v});
  }
  std::uniform_int_distribution<uint32_t> node_dist(0, n - 1);
  while (chosen.size() < m) {
    QueryNodeId a = node_dist(rng);
    QueryNodeId b = node_dist(rng);
    if (a == b) continue;
    if (a > b) std::swap(a, b);  // acyclic orientation
    chosen.insert({a, b});
  }

  std::vector<QueryEdge> edges;
  edges.reserve(chosen.size());
  for (const auto& [a, b] : chosen) {
    edges.push_back({a, b, KindFor(opts.variant, rng)});
  }
  return PatternQuery::FromParts(std::move(labels), std::move(edges));
}

std::optional<PatternQuery> ExtractQueryFromGraph(
    const Graph& g, const ExtractedQueryOptions& opts) {
  if (g.NumNodes() == 0 || opts.num_nodes < 2) return std::nullopt;
  std::mt19937_64 rng(opts.seed);
  std::uniform_int_distribution<uint32_t> node_dist(0, g.NumNodes() - 1);

  for (uint32_t attempt = 0; attempt < opts.max_attempts; ++attempt) {
    // Grow a connected node set by random expansion over both directions,
    // remembering the discovery (spanning-tree) edges in data-graph space.
    std::vector<NodeId> members;
    std::unordered_set<NodeId> in_set;
    std::vector<std::pair<NodeId, NodeId>> tree_edges;  // directed as in G
    NodeId start = node_dist(rng);
    if (g.OutDegree(start) + g.InDegree(start) == 0) continue;
    members.push_back(start);
    in_set.insert(start);
    bool stuck = false;
    while (members.size() < opts.num_nodes && !stuck) {
      // Collect expansion candidates from a random member.
      stuck = true;
      // Sparse queries must keep every degree < 3: grow as a self-avoiding
      // walk (expand only the latest node, giving a path). Otherwise expand
      // a random member (giving a dense, branchy subgraph).
      const bool want_path = opts.dense.has_value() && !*opts.dense;
      for (uint32_t tries = 0; tries < 4 * members.size() + 8; ++tries) {
        std::uniform_int_distribution<size_t> mem_dist(0, members.size() - 1);
        NodeId v = want_path ? members.back() : members[mem_dist(rng)];
        auto outs = g.OutNeighbors(v);
        auto ins = g.InNeighbors(v);
        const size_t total = outs.size() + ins.size();
        if (total == 0) continue;
        std::uniform_int_distribution<size_t> pick(0, total - 1);
        size_t k = pick(rng);
        bool forward = k < outs.size();
        NodeId w = forward ? outs[k] : ins[k - outs.size()];
        if (in_set.insert(w).second) {
          members.push_back(w);
          if (forward) {
            tree_edges.emplace_back(v, w);
          } else {
            tree_edges.emplace_back(w, v);
          }
          stuck = false;
          break;
        }
      }
    }
    if (members.size() < opts.num_nodes) continue;

    // Induced edges, remapped to dense query node ids.
    std::unordered_map<NodeId, QueryNodeId> remap;
    std::vector<LabelId> labels(members.size());
    for (size_t i = 0; i < members.size(); ++i) {
      remap[members[i]] = static_cast<QueryNodeId>(i);
      labels[i] = g.Label(members[i]);
    }
    std::vector<QueryEdge> edges;
    if (opts.dense.has_value() && !*opts.dense) {
      // Sparse queries: only the spanning-tree edges, so degrees stay low
      // even on dense data graphs (the RapidMatch sparse-set rule).
      for (const auto& [u, w] : tree_edges) {
        edges.push_back({remap[u], remap[w], EdgeKind::kChild});
      }
    } else {
      for (NodeId u : members) {
        for (NodeId w : g.OutNeighbors(u)) {
          auto it = remap.find(w);
          if (it == remap.end()) continue;
          if (u == w) continue;  // query self-loops are not meaningful
          edges.push_back({remap[u], it->second, EdgeKind::kChild});
        }
      }
    }

    PatternQuery candidate =
        PatternQuery::FromParts(labels, edges);
    if (!candidate.IsConnected()) continue;

    if (opts.dense.has_value()) {
      bool ok = true;
      for (QueryNodeId v = 0; v < candidate.NumNodes(); ++v) {
        uint32_t deg = candidate.Degree(v);
        if (*opts.dense ? (deg < 3) : (deg >= 3)) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
    }

    if (opts.variant == QueryVariant::kChildOnly) return candidate;
    // Re-type edges for H / D variants; an edge is a path, so the query
    // still has the identity match.
    std::vector<QueryEdge> typed = candidate.Edges();
    for (QueryEdge& e : typed) {
      e.kind = (opts.variant == QueryVariant::kDescendantOnly)
                   ? EdgeKind::kDescendant
                   : ((rng() & 1) ? EdgeKind::kDescendant : EdgeKind::kChild);
    }
    return PatternQuery::FromParts(candidate.Labels(), std::move(typed));
  }
  return std::nullopt;
}

}  // namespace rigpm
