#include "enumerate/mjoin_parallel.h"

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "util/concurrency.h"

namespace rigpm {

namespace {

// Round-robin split of a bitmap into `parts` bitmaps. Round-robin (rather
// than contiguous ranges) balances skew: consecutive ids often share hubs.
std::vector<Bitmap> SplitRoundRobin(const Bitmap& input, uint32_t parts) {
  std::vector<std::vector<uint32_t>> buckets(parts);
  uint64_t i = 0;
  input.ForEach([&](uint32_t v) { buckets[i++ % parts].push_back(v); });
  std::vector<Bitmap> out;
  out.reserve(parts);
  for (auto& b : buckets) out.push_back(Bitmap::FromSorted(b));
  return out;
}

}  // namespace

uint64_t MJoinParallel(const PatternQuery& q, const Rig& rig,
                       std::span<const QueryNodeId> order,
                       const OccurrenceSink& sink,
                       const ParallelMJoinOptions& opts, MJoinStats* stats) {
  if (rig.AnyEmpty() || q.NumNodes() == 0) return 0;
  const uint32_t threads =
      ResolveWorkerCount(opts.num_threads, rig.Cos(order[0]).Cardinality());
  if (threads <= 1) {
    MJoinOptions seq;
    seq.limit = opts.limit;
    return MJoin(q, rig, order, sink, seq, stats);
  }

  std::vector<Bitmap> partitions = SplitRoundRobin(rig.Cos(order[0]), threads);
  std::atomic<uint64_t> produced{0};
  std::atomic<bool> aborted{false};
  std::vector<MJoinStats> worker_stats(threads);
  std::vector<std::thread> workers;
  workers.reserve(threads);

  for (uint32_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      MJoinOptions wopts;
      wopts.root_restriction = &partitions[t];
      // Each worker claims occurrences against the shared budget; when the
      // budget is gone (or a sink aborted), it stops via the sink callback.
      OccurrenceSink wrapped = [&](const Occurrence& occ) {
        if (aborted.load(std::memory_order_relaxed)) return false;
        uint64_t ticket = produced.fetch_add(1, std::memory_order_relaxed);
        if (ticket >= opts.limit) {
          produced.fetch_sub(1, std::memory_order_relaxed);
          aborted.store(true, std::memory_order_relaxed);
          return false;
        }
        if (sink && !sink(occ)) {
          aborted.store(true, std::memory_order_relaxed);
          return false;
        }
        return ticket + 1 < opts.limit;
      };
      MJoin(q, rig, order, wrapped, wopts, &worker_stats[t]);
    });
  }
  for (auto& w : workers) w.join();

  if (stats != nullptr) {
    *stats = MJoinStats();
    for (const MJoinStats& ws : worker_stats) {
      stats->intersections += ws.intersections;
      stats->candidates_scanned += ws.candidates_scanned;
      stats->max_depth_reached =
          std::max(stats->max_depth_reached, ws.max_depth_reached);
    }
    stats->occurrences = std::min<uint64_t>(produced.load(), opts.limit);
  }
  return std::min<uint64_t>(produced.load(), opts.limit);
}

uint64_t MJoinParallelCount(const PatternQuery& q, const Rig& rig,
                            std::span<const QueryNodeId> order,
                            const ParallelMJoinOptions& opts,
                            MJoinStats* stats) {
  return MJoinParallel(q, rig, order, nullptr, opts, stats);
}

std::vector<Occurrence> MJoinParallelCollect(const PatternQuery& q,
                                             const Rig& rig,
                                             std::span<const QueryNodeId> order,
                                             const ParallelMJoinOptions& opts,
                                             MJoinStats* stats) {
  std::mutex mu;
  std::vector<Occurrence> out;
  MJoinParallel(
      q, rig, order,
      [&](const Occurrence& occ) {
        std::lock_guard<std::mutex> lock(mu);
        out.push_back(occ);
        return true;
      },
      opts, stats);
  return out;
}

}  // namespace rigpm
