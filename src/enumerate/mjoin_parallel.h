#ifndef RIGPM_ENUMERATE_MJOIN_PARALLEL_H_
#define RIGPM_ENUMERATE_MJOIN_PARALLEL_H_

#include <cstdint>
#include <limits>

#include "enumerate/mjoin.h"

namespace rigpm {

/// Options for the multi-threaded enumerator.
struct ParallelMJoinOptions {
  /// Worker count; 0 = std::thread::hardware_concurrency().
  uint32_t num_threads = 0;
  /// Global cap across all workers. Workers co-operate through an atomic
  /// counter; the result never exceeds the limit.
  uint64_t limit = std::numeric_limits<uint64_t>::max();
};

/// Parallel MJoin — the multi-threaded evaluation the paper sketches as
/// future work in Section 6. The search space is partitioned by splitting
/// cos(q_1) (the first node of the search order) round-robin across workers;
/// each worker runs an independent sequential MJoin restricted to its share,
/// so no locks are taken on the RIG and the union of the workers' outputs is
/// exactly the sequential answer (each occurrence binds q_1 to exactly one
/// candidate, hence lands in exactly one partition).
///
/// `sink`, when provided, is invoked CONCURRENTLY from worker threads and
/// must be thread-safe; returning false stops all workers. Returns the
/// number of occurrences produced (clamped to opts.limit).
uint64_t MJoinParallel(const PatternQuery& q, const Rig& rig,
                       std::span<const QueryNodeId> order,
                       const OccurrenceSink& sink,
                       const ParallelMJoinOptions& opts = {},
                       MJoinStats* stats = nullptr);

/// Counting variant (no sink, no synchronization beyond the limit counter).
uint64_t MJoinParallelCount(const PatternQuery& q, const Rig& rig,
                            std::span<const QueryNodeId> order,
                            const ParallelMJoinOptions& opts = {},
                            MJoinStats* stats = nullptr);

/// Collecting variant: per-worker buffers merged at the end (order of
/// tuples is unspecified, unlike sequential MJoin).
std::vector<Occurrence> MJoinParallelCollect(
    const PatternQuery& q, const Rig& rig, std::span<const QueryNodeId> order,
    const ParallelMJoinOptions& opts = {}, MJoinStats* stats = nullptr);

}  // namespace rigpm

#endif  // RIGPM_ENUMERATE_MJOIN_PARALLEL_H_
