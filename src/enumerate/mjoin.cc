#include "enumerate/mjoin.h"

#include <cassert>

namespace rigpm {

namespace {

// A constraint binding search step `i` to an earlier step: the candidate at
// step i must appear in the RIG adjacency (forward or backward, depending on
// the query edge's direction) of the node matched at `earlier_pos`.
struct EarlierConstraint {
  QueryEdgeId edge = 0;
  uint32_t earlier_pos = 0;
  bool earlier_is_tail = false;  // true: edge = (q_earlier -> q_i)
};

class Enumerator {
 public:
  Enumerator(const PatternQuery& q, const Rig& rig,
             std::span<const QueryNodeId> order, const OccurrenceSink& sink,
             const MJoinOptions& opts, MJoinStats* stats)
      : q_(q), rig_(rig), order_(order), sink_(sink), opts_(opts),
        stats_(stats) {
    assert(order.size() == q.NumNodes());
    // Precompute, per search step, the constraints toward earlier steps.
    std::vector<uint32_t> pos(q.NumNodes());
    for (uint32_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
    constraints_.resize(order.size());
    for (QueryEdgeId e = 0; e < q.NumEdges(); ++e) {
      const QueryEdge& edge = q.Edge(e);
      uint32_t pf = pos[edge.from];
      uint32_t pt = pos[edge.to];
      if (pf < pt) {
        constraints_[pt].push_back({e, pf, /*earlier_is_tail=*/true});
      } else {
        constraints_[pf].push_back({e, pt, /*earlier_is_tail=*/false});
      }
    }
    tuple_.assign(q.NumNodes(), kInvalidNode);
  }

  uint64_t Run() {
    if (q_.NumNodes() == 0) return 0;
    Descend(0);
    if (stats_ != nullptr) stats_->occurrences = produced_;
    return produced_;
  }

 private:
  // Recursive backtracking search (procedure `enumeration` of Algorithm 5).
  // Returns false when the enumeration must stop (limit hit / sink said no).
  bool Descend(uint32_t i) {
    if (i == order_.size()) {
      ++produced_;
      if (sink_ && !sink_(tuple_)) return false;
      return produced_ < opts_.limit;
    }
    if (stats_ != nullptr) {
      stats_->max_depth_reached =
          std::max<uint64_t>(stats_->max_depth_reached, i + 1);
    }

    QueryNodeId qi = order_[i];
    // Multiway intersection: cos(q_i) ∩ all adjacency lists of the already
    // matched neighbors (lines 4-7 of Algorithm 5).
    std::vector<const Bitmap*> inputs;
    inputs.reserve(constraints_[i].size() + 2);
    inputs.push_back(&rig_.Cos(qi));
    if (i == 0 && opts_.root_restriction != nullptr) {
      inputs.push_back(opts_.root_restriction);
    }
    for (const EarlierConstraint& c : constraints_[i]) {
      NodeId matched = tuple_[order_[c.earlier_pos]];
      const Bitmap& adj = c.earlier_is_tail ? rig_.Forward(c.edge, matched)
                                            : rig_.Backward(c.edge, matched);
      inputs.push_back(&adj);
    }
    if (stats_ != nullptr) ++stats_->intersections;
    Bitmap cosi = Bitmap::AndMany(inputs);

    bool keep_going = true;
    cosi.ForEach([&](NodeId v) {
      if (!keep_going) return;
      if (stats_ != nullptr) ++stats_->candidates_scanned;
      tuple_[qi] = v;
      keep_going = Descend(i + 1);
    });
    tuple_[qi] = kInvalidNode;
    return keep_going;
  }

  const PatternQuery& q_;
  const Rig& rig_;
  std::span<const QueryNodeId> order_;
  const OccurrenceSink& sink_;
  const MJoinOptions& opts_;
  MJoinStats* stats_;

  std::vector<std::vector<EarlierConstraint>> constraints_;
  Occurrence tuple_;
  uint64_t produced_ = 0;
};

}  // namespace

uint64_t MJoin(const PatternQuery& q, const Rig& rig,
               std::span<const QueryNodeId> order, const OccurrenceSink& sink,
               const MJoinOptions& opts, MJoinStats* stats) {
  if (rig.AnyEmpty()) {
    if (stats != nullptr) stats->occurrences = 0;
    return 0;  // empty RIG: the answer is empty, no search needed
  }
  Enumerator e(q, rig, order, sink, opts, stats);
  return e.Run();
}

std::vector<Occurrence> MJoinCollect(const PatternQuery& q, const Rig& rig,
                                     std::span<const QueryNodeId> order,
                                     const MJoinOptions& opts,
                                     MJoinStats* stats) {
  std::vector<Occurrence> out;
  MJoin(
      q, rig, order,
      [&out](const Occurrence& t) {
        out.push_back(t);
        return true;
      },
      opts, stats);
  return out;
}

uint64_t MJoinCount(const PatternQuery& q, const Rig& rig,
                    std::span<const QueryNodeId> order,
                    const MJoinOptions& opts, MJoinStats* stats) {
  return MJoin(q, rig, order, nullptr, opts, stats);
}

}  // namespace rigpm
