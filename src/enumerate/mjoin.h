#ifndef RIGPM_ENUMERATE_MJOIN_H_
#define RIGPM_ENUMERATE_MJOIN_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <span>
#include <vector>

#include "query/pattern_query.h"
#include "rig/rig.h"

namespace rigpm {

/// One occurrence of the query: occurrence[q] is the data node matched to
/// query node q (Definition 2.6 — one row of the answer relation).
using Occurrence = std::vector<NodeId>;

/// Receives each occurrence as it is produced; return false to stop the
/// enumeration early. The referenced vector is reused between calls — copy
/// it if it must outlive the callback.
using OccurrenceSink = std::function<bool(const Occurrence&)>;

struct MJoinOptions {
  /// Stop after this many occurrences (the experiments cap at 1e7).
  uint64_t limit = std::numeric_limits<uint64_t>::max();

  /// When non-null, the candidates of the FIRST node in the search order are
  /// additionally intersected with this set. This is the partitioning hook
  /// the parallel enumerator uses (mjoin_parallel.h): splitting cos(q_1)
  /// across workers partitions the whole search space without locks.
  const Bitmap* root_restriction = nullptr;
};

struct MJoinStats {
  uint64_t occurrences = 0;        // tuples emitted
  uint64_t intersections = 0;      // multiway-intersection operations
  uint64_t candidates_scanned = 0; // nodes iterated across all cos_i sets
  uint64_t max_depth_reached = 0;
};

/// Algorithm 5, MJoin: worst-case-optimal, query-node-at-a-time enumeration
/// over a runtime index graph. At search step i the local candidate set is
///   cos_i = cos(q_i) ∩ ⋂ { adjacency of t[j] in G_Q : q_j earlier nbr }
/// computed as one multiway bitmap intersection; the recursion therefore
/// never materializes partial join results (space O(n * MaxCos),
/// Theorem 5.1).
///
/// Returns the number of occurrences emitted. `order` must be a permutation
/// of the query nodes; connected prefixes (as produced by ComputeSearchOrder)
/// avoid Cartesian blowups but any permutation is correct.
uint64_t MJoin(const PatternQuery& q, const Rig& rig,
               std::span<const QueryNodeId> order, const OccurrenceSink& sink,
               const MJoinOptions& opts = {}, MJoinStats* stats = nullptr);

/// Convenience wrapper materializing the (possibly limited) answer.
std::vector<Occurrence> MJoinCollect(const PatternQuery& q, const Rig& rig,
                                     std::span<const QueryNodeId> order,
                                     const MJoinOptions& opts = {},
                                     MJoinStats* stats = nullptr);

/// Counts occurrences without materializing them.
uint64_t MJoinCount(const PatternQuery& q, const Rig& rig,
                    std::span<const QueryNodeId> order,
                    const MJoinOptions& opts = {},
                    MJoinStats* stats = nullptr);

}  // namespace rigpm

#endif  // RIGPM_ENUMERATE_MJOIN_H_
