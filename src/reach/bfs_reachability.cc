#include "reach/bfs_reachability.h"

namespace rigpm {

BfsReachability::BfsReachability(const Graph& g) : cond_(g) {
  visited_epoch_.assign(cond_.NumComponents(), 0);
}

bool BfsReachability::Reaches(NodeId u, NodeId v) const {
  uint32_t cu = cond_.Component(u);
  uint32_t cv = cond_.Component(v);
  if (cu == cv) return cond_.IsCyclic(cu);
  if (cu > cv) return false;  // topological numbering

  std::lock_guard<std::mutex> lock(scratch_mu_);
  ++epoch_;
  frontier_.clear();
  frontier_.push_back(cu);
  visited_epoch_[cu] = epoch_;
  for (size_t head = 0; head < frontier_.size(); ++head) {
    uint32_t c = frontier_[head];
    for (uint32_t d : cond_.Successors(c)) {
      if (d == cv) return true;
      if (d > cv) continue;  // cannot reach a smaller topological id
      if (visited_epoch_[d] == epoch_) continue;
      visited_epoch_[d] = epoch_;
      frontier_.push_back(d);
    }
  }
  return false;
}

size_t BfsReachability::MemoryBytes() const {
  return visited_epoch_.capacity() * sizeof(uint32_t) +
         frontier_.capacity() * sizeof(uint32_t);
}

}  // namespace rigpm
