#include "reach/transitive_closure.h"

namespace rigpm {

TransitiveClosure::TransitiveClosure(const Graph& g) : cond_(g) {
  const uint32_t nc = cond_.NumComponents();
  reach_.resize(nc);
  // Component ids are topological; process sinks first so every successor's
  // closure is ready when we merge it.
  for (uint32_t c = nc; c-- > 0;) {
    Bitmap& r = reach_[c];
    for (uint32_t d : cond_.Successors(c)) {
      r.Add(d);
      r.OrWith(reach_[d]);
    }
    // Closure rows over topological component ids are highly clustered
    // (a component reaches dense id ranges of its descendants), so once a
    // row is final, re-encoding it as run containers collapses most of the
    // O(n^2/64) bitset footprint this structure is notorious for.
    r.RunOptimize();
  }
}

bool TransitiveClosure::Reaches(NodeId u, NodeId v) const {
  uint32_t cu = cond_.Component(u);
  uint32_t cv = cond_.Component(v);
  if (cu == cv) return cond_.IsCyclic(cu);
  return reach_[cu].Contains(cv);
}

Bitmap TransitiveClosure::ReachableNodeSet(NodeId u, const Graph& g) const {
  uint32_t cu = cond_.Component(u);
  Bitmap out;
  // Nodes in reachable components...
  std::vector<uint32_t> comps = reach_[cu].ToVector();
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    uint32_t cv = cond_.Component(v);
    if (cv == cu) {
      if (cond_.IsCyclic(cu)) out.Add(v);
    } else if (reach_[cu].Contains(cv)) {
      out.Add(v);
    }
  }
  return out;
}

size_t TransitiveClosure::MemoryBytes() const {
  size_t bytes = 0;
  for (const Bitmap& b : reach_) bytes += b.MemoryBytes();
  return bytes;
}

}  // namespace rigpm
