#include "reach/reachability.h"

#include "reach/bfl_index.h"
#include "reach/bfs_reachability.h"
#include "reach/transitive_closure.h"

namespace rigpm {

const char* ReachKindName(ReachKind kind) {
  switch (kind) {
    case ReachKind::kBfs:
      return "BFS";
    case ReachKind::kTransitiveClosure:
      return "TC";
    case ReachKind::kBfl:
      return "BFL";
  }
  return "?";
}

std::unique_ptr<ReachabilityIndex> BuildReachabilityIndex(const Graph& g,
                                                          ReachKind kind) {
  switch (kind) {
    case ReachKind::kBfs:
      return std::make_unique<BfsReachability>(g);
    case ReachKind::kTransitiveClosure:
      return std::make_unique<TransitiveClosure>(g);
    case ReachKind::kBfl:
      return std::make_unique<BflIndex>(g);
  }
  return nullptr;
}

}  // namespace rigpm
