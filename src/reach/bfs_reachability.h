#ifndef RIGPM_REACH_BFS_REACHABILITY_H_
#define RIGPM_REACH_BFS_REACHABILITY_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "graph/scc.h"
#include "reach/reachability.h"

namespace rigpm {

/// Index-free reachability: answers each query with a BFS over the SCC
/// condensation DAG. Used as the correctness oracle in tests and as the
/// "no precomputation" point in the index-cost experiments.
///
/// Component ids are topological, so the search prunes any component whose
/// id exceeds the target's.
class BfsReachability : public ReachabilityIndex {
 public:
  explicit BfsReachability(const Graph& g);

  bool Reaches(NodeId u, NodeId v) const override;
  std::string Name() const override { return "BFS"; }
  size_t MemoryBytes() const override;

 private:
  Condensation cond_;
  // Epoch-stamped visited marks avoid clearing between queries. The scratch
  // is shared by every worker holding the index, so queries that reach the
  // BFS serialize on the mutex (this engine is the no-index baseline; the
  // lock cost is noise next to the per-query BFS).
  mutable std::mutex scratch_mu_;
  mutable std::vector<uint32_t> visited_epoch_;
  mutable uint32_t epoch_ = 0;
  mutable std::vector<uint32_t> frontier_;
};

}  // namespace rigpm

#endif  // RIGPM_REACH_BFS_REACHABILITY_H_
