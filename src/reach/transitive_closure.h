#ifndef RIGPM_REACH_TRANSITIVE_CLOSURE_H_
#define RIGPM_REACH_TRANSITIVE_CLOSURE_H_

#include <cstddef>
#include <vector>

#include "bitmap/bitmap.h"
#include "graph/scc.h"
#include "reach/reachability.h"

namespace rigpm {

/// Fully materialized reachability: one bitmap of reachable components per
/// component, computed by merging successor sets in reverse topological
/// order. O(1) queries, O(|V|^2 / 64)-ish memory in the worst case — this is
/// the expensive precomputation the paper charges GraphflowDB with in
/// Fig. 18(a), and the oracle for property tests.
class TransitiveClosure : public ReachabilityIndex {
 public:
  explicit TransitiveClosure(const Graph& g);

  bool Reaches(NodeId u, NodeId v) const override;
  std::string Name() const override { return "TC"; }
  size_t MemoryBytes() const override;

  /// Set of data nodes reachable from `u` (>= 1 edge), materialized on the
  /// fly from the component closure. Used by the WCOJ baseline to run
  /// edge-to-path queries on a "closure graph" the way the paper did for GF.
  Bitmap ReachableNodeSet(NodeId u, const Graph& g) const;

 private:
  Condensation cond_;
  std::vector<Bitmap> reach_;  // per component: reachable components
};

}  // namespace rigpm

#endif  // RIGPM_REACH_TRANSITIVE_CLOSURE_H_
