#include "reach/bfl_index.h"

#include <algorithm>

namespace rigpm {

namespace {

// SplitMix64 finalizer: cheap, well-distributed component hash.
uint64_t Mix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

BflIndex::BflIndex(const Graph& g, uint32_t bits, uint64_t seed)
    : cond_(g), intervals_(g, cond_) {
  const uint32_t nc = cond_.NumComponents();
  words_ = std::max<uint32_t>(1, (bits + 63) / 64);
  const uint32_t total_bits = words_ * 64;

  std::vector<uint32_t>& hash = hash_.Mutable();
  hash.resize(nc);
  for (uint32_t c = 0; c < nc; ++c) {
    hash[c] = static_cast<uint32_t>(Mix(seed ^ c) % total_bits);
  }

  // Predecessor CSR of the condensation DAG.
  std::vector<uint64_t>& pred_offsets = pred_offsets_.Mutable();
  std::vector<uint32_t>& pred_targets = pred_targets_.Mutable();
  pred_offsets.assign(nc + 1, 0);
  for (uint32_t c = 0; c < nc; ++c) {
    for (uint32_t d : cond_.Successors(c)) ++pred_offsets[d + 1];
  }
  for (uint32_t c = 0; c < nc; ++c) pred_offsets[c + 1] += pred_offsets[c];
  pred_targets.resize(cond_.NumDagEdges());
  {
    std::vector<uint64_t> pos(pred_offsets.begin(), pred_offsets.end() - 1);
    for (uint32_t c = 0; c < nc; ++c) {
      for (uint32_t d : cond_.Successors(c)) pred_targets[pos[d]++] = c;
    }
  }

  // L_out: reverse topological merge (component ids are topological, so a
  // plain descending scan visits every successor first). Each set contains
  // the component's own hash, making the subset test a necessary condition
  // for reachability including the endpoints.
  std::vector<uint64_t>& l_out = l_out_.Mutable();
  l_out.assign(static_cast<size_t>(nc) * words_, 0);
  for (uint32_t c = nc; c-- > 0;) {
    uint64_t* out = &l_out[static_cast<size_t>(c) * words_];
    out[hash[c] >> 6] |= uint64_t{1} << (hash[c] & 63);
    for (uint32_t d : cond_.Successors(c)) {
      const uint64_t* child = &l_out[static_cast<size_t>(d) * words_];
      for (uint32_t w = 0; w < words_; ++w) out[w] |= child[w];
    }
  }

  // L_in: forward topological merge over predecessors.
  std::vector<uint64_t>& l_in = l_in_.Mutable();
  l_in.assign(static_cast<size_t>(nc) * words_, 0);
  for (uint32_t c = 0; c < nc; ++c) {
    uint64_t* in = &l_in[static_cast<size_t>(c) * words_];
    in[hash[c] >> 6] |= uint64_t{1} << (hash[c] & 63);
    for (uint64_t p = pred_offsets[c]; p < pred_offsets[c + 1]; ++p) {
      const uint64_t* parent =
          &l_in[static_cast<size_t>(pred_targets[p]) * words_];
      for (uint32_t w = 0; w < words_; ++w) in[w] |= parent[w];
    }
  }

  visited_epoch_.assign(nc, 0);
}

bool BflIndex::OutSubset(uint32_t sub, uint32_t super) const {
  const uint64_t* a = &l_out_[static_cast<size_t>(sub) * words_];
  const uint64_t* b = &l_out_[static_cast<size_t>(super) * words_];
  for (uint32_t w = 0; w < words_; ++w) {
    if (a[w] & ~b[w]) return false;
  }
  return true;
}

bool BflIndex::InSubset(uint32_t sub, uint32_t super) const {
  const uint64_t* a = &l_in_[static_cast<size_t>(sub) * words_];
  const uint64_t* b = &l_in_[static_cast<size_t>(super) * words_];
  for (uint32_t w = 0; w < words_; ++w) {
    if (a[w] & ~b[w]) return false;
  }
  return true;
}

bool BflIndex::DecidedByCuts(NodeId u, NodeId v, bool* result) const {
  uint32_t cu = cond_.Component(u);
  uint32_t cv = cond_.Component(v);
  if (cu == cv) {
    *result = cond_.IsCyclic(cu);
    return true;
  }
  if (cu > cv) {  // topological order: only smaller ids can reach larger
    *result = false;
    return true;
  }
  if (intervals_.CompBegin(cu) < intervals_.CompBegin(cv) &&
      intervals_.CompEnd(cv) <= intervals_.CompEnd(cu)) {
    *result = true;  // positive interval cut: DFS-subtree containment
    return true;
  }
  if (intervals_.CompEnd(cu) < intervals_.CompBegin(cv)) {
    *result = false;  // negative interval cut
    return true;
  }
  if (!OutSubset(cv, cu) || !InSubset(cu, cv)) {
    *result = false;  // Bloom cut: u's out-label must cover v's, etc.
    return true;
  }
  return false;
}

bool BflIndex::Reaches(NodeId u, NodeId v) const {
  bool result = false;
  if (DecidedByCuts(u, v, &result)) return result;
  return CompReaches(cond_.Component(u), cond_.Component(v));
}

bool BflIndex::CompReaches(uint32_t cu, uint32_t cv) const {
  // Guided DFS with label pruning. Exactness: the pruning conditions are all
  // necessary for reaching cv, so skipping a pruned branch never loses a
  // true path.
  std::lock_guard<std::mutex> lock(scratch_mu_);
  ++epoch_;
  stack_.clear();
  stack_.push_back(cu);
  visited_epoch_[cu] = epoch_;
  const uint32_t target_begin = intervals_.CompBegin(cv);
  const uint32_t target_end = intervals_.CompEnd(cv);
  while (!stack_.empty()) {
    uint32_t c = stack_.back();
    stack_.pop_back();
    for (uint32_t d : cond_.Successors(c)) {
      if (d == cv) return true;
      if (d > cv) continue;                     // topological prune
      if (visited_epoch_[d] == epoch_) continue;
      visited_epoch_[d] = epoch_;
      if (intervals_.CompEnd(d) < target_begin) continue;  // negative cut
      if (intervals_.CompBegin(d) < target_begin &&
          target_end <= intervals_.CompEnd(d)) {
        return true;  // positive cut: d's DFS subtree contains cv
      }
      if (!OutSubset(cv, d)) continue;          // Bloom cut
      stack_.push_back(d);
    }
  }
  return false;
}

void BflIndex::Serialize(ByteSink& sink) const {
  cond_.Serialize(sink);
  intervals_.Serialize(sink);
  sink.WriteU32(words_);
  sink.WriteSpan<uint64_t>(l_out_);
  sink.WriteSpan<uint64_t>(l_in_);
  sink.WriteSpan<uint32_t>(hash_);
  sink.WriteSpan<uint64_t>(pred_offsets_);
  sink.WriteSpan<uint32_t>(pred_targets_);
}

std::unique_ptr<BflIndex> BflIndex::Deserialize(ByteSource& src) {
  Condensation cond = Condensation::Deserialize(src);
  IntervalLabels intervals = IntervalLabels::Deserialize(src);
  if (!src.ok()) return nullptr;
  std::unique_ptr<BflIndex> index(
      new BflIndex(std::move(cond), std::move(intervals)));
  index->storage_ = src.storage();  // keeps a zero-copy mapping alive
  index->words_ = src.ReadU32();
  src.ReadSpan(&index->l_out_);
  src.ReadSpan(&index->l_in_);
  src.ReadSpan(&index->hash_);
  src.ReadSpan(&index->pred_offsets_);
  src.ReadSpan(&index->pred_targets_);
  if (!src.ok()) return nullptr;
  const uint32_t nc = index->cond_.NumComponents();
  const size_t label_words = static_cast<size_t>(nc) * index->words_;
  // The interval labels must cover exactly this condensation: every query
  // indexes begin_/end_ by component id and begin_node_/end_node_ by data
  // node id, so a size mismatch (corrupt or crafted but checksum-valid
  // file) would read out of bounds at query time.
  if (index->words_ == 0 || index->l_out_.size() != label_words ||
      index->l_in_.size() != label_words || index->hash_.size() != nc ||
      index->pred_offsets_.size() != static_cast<uint64_t>(nc) + 1 ||
      (nc > 0 && index->pred_offsets_.back() != index->pred_targets_.size()) ||
      index->intervals_.NumComponents() != nc ||
      index->intervals_.NumNodes() != index->cond_.NumNodes()) {
    src.Fail("BFL snapshot structure is inconsistent");
    return nullptr;
  }
  index->visited_epoch_.assign(nc, 0);
  return index;
}

size_t BflIndex::MemoryBytes() const {
  // Owned heap only: borrowed label arrays live in the shared snapshot
  // mapping and are accounted there.
  return l_out_.OwnedHeapBytes() + l_in_.OwnedHeapBytes() +
         hash_.OwnedHeapBytes() + pred_offsets_.OwnedHeapBytes() +
         pred_targets_.OwnedHeapBytes() +
         visited_epoch_.capacity() * sizeof(uint32_t);
}

}  // namespace rigpm
