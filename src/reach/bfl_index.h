#ifndef RIGPM_REACH_BFL_INDEX_H_
#define RIGPM_REACH_BFL_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "graph/interval_labels.h"
#include "graph/scc.h"
#include "reach/reachability.h"
#include "util/owned_span.h"
#include "util/serde.h"

namespace rigpm {

/// Bloom Filter Labeling reachability index (after Su, Zhu, Wei, Yu:
/// "Reachability Querying: Can It Be Even Faster?", TKDE 2017) — the scheme
/// the paper uses for all descendant-edge checks.
///
/// Per condensation component c the index stores:
///  * DFS interval labels (begin, end) — positive cut (subtree containment
///    proves reachability) and negative cut (end(u) < begin(v) proves
///    non-reachability);
///  * L_out(c): a k-bit Bloom set of hashes of components reachable from c;
///  * L_in(c):  a Bloom set of hashes of components that reach c.
///
/// Query u ≺ v: after the O(1) cuts, a guided DFS explores successors while
/// pruning any component whose labels fail the necessary conditions
///   L_out(v) ⊆ L_out(c)   and   interval-negative-cut(c, v).
/// The index is exact: the Bloom sets only ever prune true negatives.
class BflIndex : public ReachabilityIndex {
 public:
  /// `bits` is the Bloom label width (default 256, as a few cache lines per
  /// node gave the best trade-off in the BFL paper).
  explicit BflIndex(const Graph& g, uint32_t bits = 256,
                    uint64_t seed = 0x9E3779B97F4A7C15ull);

  bool Reaches(NodeId u, NodeId v) const override;
  std::string Name() const override { return "BFL"; }
  size_t MemoryBytes() const override;

  /// Exposed for the white-box tests: true iff the Bloom/interval cuts alone
  /// decide the query (no DFS needed).
  bool DecidedByCuts(NodeId u, NodeId v, bool* result) const;

  /// The condensation / interval labels the index was built over. A warm
  /// GmEngine reuses these instead of recomputing them from the graph.
  const Condensation& condensation() const { return cond_; }
  const IntervalLabels& intervals() const { return intervals_; }

  /// Appends a binary image (condensation, interval labels, and the packed
  /// Bloom label arrays) to `sink`; see storage/snapshot.h.
  void Serialize(ByteSink& sink) const;

  /// Decodes an image written by Serialize. Returns nullptr on malformed
  /// input (with `src.ok()` false).
  static std::unique_ptr<BflIndex> Deserialize(ByteSource& src);

 private:
  BflIndex(Condensation cond, IntervalLabels intervals)
      : cond_(std::move(cond)), intervals_(std::move(intervals)) {}

  bool CompReaches(uint32_t cu, uint32_t cv) const;

  // L_out(sub) subset-of L_out(super) over the packed label words.
  bool OutSubset(uint32_t sub, uint32_t super) const;
  bool InSubset(uint32_t sub, uint32_t super) const;

  Condensation cond_;
  IntervalLabels intervals_;
  uint32_t words_;  // label width in 64-bit words
  // Owned when built; borrowed views into the snapshot mapping when loaded
  // zero-copy (storage_ keeps the mapping alive).
  OwnedOrBorrowedSpan<uint64_t> l_out_;  // nc * words_
  OwnedOrBorrowedSpan<uint64_t> l_in_;   // nc * words_
  OwnedOrBorrowedSpan<uint32_t> hash_;   // per-component hash bit position

  // DAG predecessor lists (needed to propagate L_in).
  OwnedOrBorrowedSpan<uint64_t> pred_offsets_;
  OwnedOrBorrowedSpan<uint32_t> pred_targets_;
  std::shared_ptr<const void> storage_;

  // Scratch for the guided-DFS fallback. One engine's index is shared by
  // every worker (EvaluateBatch, parallel GraphDatabase verify), so the
  // rare queries the O(1) cuts cannot decide serialize on this mutex; the
  // cut paths above stay lock-free.
  mutable std::mutex scratch_mu_;
  mutable std::vector<uint32_t> visited_epoch_;
  mutable uint32_t epoch_ = 0;
  mutable std::vector<uint32_t> stack_;
};

}  // namespace rigpm

#endif  // RIGPM_REACH_BFL_INDEX_H_
