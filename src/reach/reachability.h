#ifndef RIGPM_REACH_REACHABILITY_H_
#define RIGPM_REACH_REACHABILITY_H_

#include <cstddef>
#include <memory>
#include <string>

#include "graph/graph.h"

namespace rigpm {

/// Which reachability indexing scheme to build. The paper's implementation
/// uses BFL (Bloom Filter Labeling, Su et al., TKDE 2017); the others serve
/// as baselines for Fig. 18(a) (index construction cost) and as oracles in
/// the test suite.
enum class ReachKind {
  kBfs,                // no index: per-query pruned BFS over the condensation
  kTransitiveClosure,  // materialized reachability (fast query, slow build)
  kBfl,                // Bloom Filter Labeling + interval cuts + guided DFS
};

const char* ReachKindName(ReachKind kind);

/// Answers node-reachability queries u ≺ v: "is there a path of one or more
/// edges from u to v?" (Definition 2.2). Implementations are exact and safe
/// to query from concurrent workers: the fast paths are read-only, and the
/// implementations that fall back to a search serialize their reusable
/// scratch on an internal mutex.
class ReachabilityIndex {
 public:
  virtual ~ReachabilityIndex() = default;

  /// True iff u reaches v through at least one edge.
  virtual bool Reaches(NodeId u, NodeId v) const = 0;

  virtual std::string Name() const = 0;

  /// Approximate heap footprint of the index payload.
  virtual size_t MemoryBytes() const = 0;
};

/// Builds an index of the requested kind over `g`.
std::unique_ptr<ReachabilityIndex> BuildReachabilityIndex(const Graph& g,
                                                          ReachKind kind);

}  // namespace rigpm

#endif  // RIGPM_REACH_REACHABILITY_H_
