#include "storage/lineage.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace rigpm {

namespace {

constexpr char kHeadMagicLine[] = "rigpm-lineage 1";

void SetError(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
}

bool SyncParentDir(const std::string& path, std::string* error) {
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  const std::string dir = parent.empty() ? std::string(".") : parent.string();
  int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd < 0) {
    SetError(error,
             "cannot open directory " + dir + ": " + std::strerror(errno));
    return false;
  }
  const bool ok = ::fsync(dfd) == 0;
  if (!ok) {
    SetError(error,
             "cannot sync directory " + dir + ": " + std::strerror(errno));
  }
  ::close(dfd);
  return ok;
}

}  // namespace

std::string LineageHeadPath(const std::string& snapshot_path) {
  return snapshot_path + ".head";
}

std::string GenerationPath(const std::string& path, uint64_t generation) {
  return path + ".g" + std::to_string(generation);
}

bool ResolveLineage(const std::string& snapshot_path,
                    const std::string& delta_path, Lineage* out,
                    std::string* error) {
  out->snapshot_path = snapshot_path;
  out->delta_path = delta_path;
  out->generation = 0;
  const std::string head_path = LineageHeadPath(snapshot_path);
  std::ifstream in(head_path);
  if (!in) {
    if (errno == ENOENT || !std::filesystem::exists(head_path)) {
      return true;  // no head: generation 0, the configured paths
    }
    SetError(error, "cannot read lineage head " + head_path);
    return false;
  }
  // Text head file: magic line, then `key value` lines. Small enough that
  // a torn write is caught by the magic/field checks (and the publisher
  // renames a complete temp file into place, so a torn head only exists if
  // something other than PublishLineage wrote it).
  std::string line;
  if (!std::getline(in, line) || line != kHeadMagicLine) {
    SetError(error, head_path + " is not a rigpm lineage head (refusing to "
                        "guess the current generation)");
    return false;
  }
  bool have_gen = false, have_snap = false, have_delta = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "generation") {
      fields >> out->generation;
      have_gen = !fields.fail();
    } else if (key == "snapshot") {
      // Paths may contain spaces: the value is the rest of the line.
      out->snapshot_path = line.substr(std::strlen("snapshot "));
      have_snap = !out->snapshot_path.empty();
    } else if (key == "delta") {
      out->delta_path = line.substr(std::strlen("delta "));
      have_delta = !out->delta_path.empty();
    }
    // Unknown keys are ignored: forward compatibility for future fields.
  }
  if (!have_gen || !have_snap || !have_delta) {
    SetError(error, head_path + " is missing lineage fields (refusing to "
                        "guess the current generation)");
    return false;
  }
  return true;
}

bool PublishLineage(const std::string& snapshot_path, const Lineage& lineage,
                    std::string* error) {
  const std::string head_path = LineageHeadPath(snapshot_path);
  const std::string tmp_path =
      head_path + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out(tmp_path, std::ios::trunc);
    if (!out) {
      SetError(error, "cannot write " + tmp_path);
      return false;
    }
    out << kHeadMagicLine << "\n"
        << "generation " << lineage.generation << "\n"
        << "snapshot " << lineage.snapshot_path << "\n"
        << "delta " << lineage.delta_path << "\n";
    out.flush();
    if (!out) {
      SetError(error, "cannot write " + tmp_path);
      std::remove(tmp_path.c_str());
      return false;
    }
  }
  // fsync the temp file's BYTES before the rename makes them reachable:
  // rename-then-crash must never expose an empty head.
  int fd = ::open(tmp_path.c_str(), O_RDONLY);
  if (fd < 0 || ::fsync(fd) != 0) {
    SetError(error, "cannot sync " + tmp_path + ": " + std::strerror(errno));
    if (fd >= 0) ::close(fd);
    std::remove(tmp_path.c_str());
    return false;
  }
  ::close(fd);
  if (std::rename(tmp_path.c_str(), head_path.c_str()) != 0) {
    SetError(error, "cannot publish " + head_path + ": " +
                        std::strerror(errno));
    std::remove(tmp_path.c_str());
    return false;
  }
  return SyncParentDir(head_path, error);
}

}  // namespace rigpm
