#ifndef RIGPM_STORAGE_SNAPSHOT_IO_H_
#define RIGPM_STORAGE_SNAPSHOT_IO_H_

#include <cstdint>
#include <cstring>
#include <string>

namespace rigpm {

enum class SnapshotKind : uint32_t;  // defined in storage/snapshot.h

/// How SnapshotReader gets the payload into memory (split out of
/// storage/snapshot.h so lightweight headers can take a mode parameter
/// without pulling in the engine).
enum class SnapshotIoMode : uint8_t {
  /// mmap the file read-only MAP_SHARED, checksum it in place, and decode
  /// into borrowed views — warm start is page-fault-lazy and N processes
  /// serving the same snapshot share one physical copy. Falls back to kRead
  /// for sources that cannot be mapped (FIFOs, exotic filesystems).
  kMmap,
  /// Stream the payload into a private buffer in bounded chunks (checksum
  /// verified incrementally), then decode by copying. Works for any
  /// readable source; uses private anonymous memory for everything.
  kRead,
};

/// kMmap unless the RIGPM_SNAPSHOT_IO environment variable says "read"
/// ("mmap" selects the default explicitly; CI uses this to force one mode
/// across a whole test run).
SnapshotIoMode DefaultSnapshotIoMode();

/// Options shared by every snapshot load entry point — LoadGraphSnapshot,
/// LoadEngineSnapshot, GraphDatabase::Load, and the server's engine catalog
/// — so the next knob lands in one struct instead of fanning another
/// positional parameter across every signature (io_mode already did that
/// once).
struct LoadOptions {
  /// How the payload gets into memory (kMmap = zero-copy default).
  SnapshotIoMode io_mode = DefaultSnapshotIoMode();

  /// When non-empty, replay this append-only delta log (storage/delta_log.h)
  /// over the loaded base and return the merged graph — for engine loads
  /// the reachability index is rebuilt over it, and the result matches what
  /// a daemon serves after a kRefresh against the same log. Loads that
  /// produce no single graph to overlay (GraphDatabase) reject a non-empty
  /// value. A missing or zero-length log is a caught-up no-op; a torn tail
  /// (crashed, never-acknowledged append) replays the valid prefix;
  /// corruption of acknowledged records fails the load.
  std::string delta_path;

  /// IO mode for reading the delta log itself. Defaults to kRead — unlike
  /// snapshots (immutable, replaced by rename), a live log can be
  /// tail-truncated in place by a recovering writer, which would SIGBUS a
  /// reader of the vanished pages (see DeltaReader).
  SnapshotIoMode delta_io = SnapshotIoMode::kRead;

  /// When nonzero, assert the file's header kind equals this value — a
  /// caller-routing check for paths that arrive from config or a CLI flag,
  /// so handing (say) a database snapshot to an engine loader fails with a
  /// kind mismatch up front instead of a decode error deep in a
  /// deserializer. Zero (default) means "whatever the loader decodes".
  SnapshotKind expected_kind = SnapshotKind{0};
};

/// Parses a --snapshot-io flag value ("mmap" or "read"). Returns false on
/// anything else, leaving *out untouched.
inline bool ParseSnapshotIoMode(const char* value, SnapshotIoMode* out) {
  if (std::strcmp(value, "mmap") == 0) {
    *out = SnapshotIoMode::kMmap;
    return true;
  }
  if (std::strcmp(value, "read") == 0) {
    *out = SnapshotIoMode::kRead;
    return true;
  }
  return false;
}

}  // namespace rigpm

#endif  // RIGPM_STORAGE_SNAPSHOT_IO_H_
