#ifndef RIGPM_STORAGE_SNAPSHOT_IO_H_
#define RIGPM_STORAGE_SNAPSHOT_IO_H_

#include <cstdint>
#include <cstring>

namespace rigpm {

/// How SnapshotReader gets the payload into memory (split out of
/// storage/snapshot.h so lightweight headers can take a mode parameter
/// without pulling in the engine).
enum class SnapshotIoMode : uint8_t {
  /// mmap the file read-only MAP_SHARED, checksum it in place, and decode
  /// into borrowed views — warm start is page-fault-lazy and N processes
  /// serving the same snapshot share one physical copy. Falls back to kRead
  /// for sources that cannot be mapped (FIFOs, exotic filesystems).
  kMmap,
  /// Stream the payload into a private buffer in bounded chunks (checksum
  /// verified incrementally), then decode by copying. Works for any
  /// readable source; uses private anonymous memory for everything.
  kRead,
};

/// kMmap unless the RIGPM_SNAPSHOT_IO environment variable says "read"
/// ("mmap" selects the default explicitly; CI uses this to force one mode
/// across a whole test run).
SnapshotIoMode DefaultSnapshotIoMode();

/// Parses a --snapshot-io flag value ("mmap" or "read"). Returns false on
/// anything else, leaving *out untouched.
inline bool ParseSnapshotIoMode(const char* value, SnapshotIoMode* out) {
  if (std::strcmp(value, "mmap") == 0) {
    *out = SnapshotIoMode::kMmap;
    return true;
  }
  if (std::strcmp(value, "read") == 0) {
    *out = SnapshotIoMode::kRead;
    return true;
  }
  return false;
}

}  // namespace rigpm

#endif  // RIGPM_STORAGE_SNAPSHOT_IO_H_
