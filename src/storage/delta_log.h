#ifndef RIGPM_STORAGE_DELTA_LOG_H_
#define RIGPM_STORAGE_DELTA_LOG_H_

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "storage/snapshot_io.h"
#include "util/mapped_file.h"

namespace rigpm {

/// Append-only edge-delta log over a base snapshot — the persistence layer
/// for the incremental setting (engine/incremental.h). A served graph is
/// refreshed by shipping `base.snap + graph.delta` instead of re-dumping
/// and reloading the whole snapshot: updates land in the log as small
/// checksummed records, and readers (rigpm_serve's kRefresh path, `rigpm_cli
/// delta replay`) rebuild the current graph by replaying them over the base.
///
/// File layout (the 24-byte container head of storage/snapshot.h plus an
/// 8-byte delta extension; the body is an unbounded record sequence rather
/// than one checksummed payload — an append must not have to rewrite a
/// trailing footer):
///   8 bytes  magic "RIGPMSNP"
///   u32      format version — kDeltaFormatAddOnly (3) and below are the
///            original add-only format; kDeltaFormatOps (4) additionally
///            allows records carrying per-edge add/delete ops
///   u32      kind (SnapshotKind::kDelta)
///   u64      base checksum — the stored payload checksum of the base
///            snapshot file (SnapshotInfo::stored_checksum); binds the log
///            to exactly one base
///   u32      base node count — recorded at creation so later appends can
///            validate edge endpoints without decoding the base snapshot
///            at all (delta ops never add nodes, so the bound is permanent)
///   u32      reserved (0)
/// followed by zero or more records, each:
///   u64      base checksum (repeated, so every record self-identifies)
///   u64      sequence number (1-based, consecutive)
///   u32      edge count
///   u32      flags — 0, or kDeltaRecordHasOps (bit 0, version >= 4 only):
///            the record carries a per-edge op-kind byte array
///   u64      header checksum — Checksum64 over the four fields above,
///            seeded like the record checksum. It makes the edge count
///            trustworthy on its own, so a bit-flipped length that claims
///            to run past end-of-file is detected as corruption instead of
///            masquerading as a torn append.
///   pairs    edge list: (u32 src, u32 dst) per edge
///   bytes    (kDeltaRecordHasOps only) one op kind per edge, in edge
///            order: 0 = add, 1 = delete
///   u64      record checksum — Checksum64 over the record bytes above,
///            SEEDED with the previous record's checksum (the base checksum
///            for record 1). The seed chaining makes each checksum depend
///            on the whole prefix, so reordered, spliced, or cross-wired
///            records fail validation, not just bit-flipped ones.
///
/// Version compatibility: records with flags == 0 are byte-identical in
/// every version, so a version-4 log full of add-only records differs from
/// a version-3 log only in its header. An old build refuses a version-4
/// header up front ("unsupported delta log version 4"), and a new build
/// refuses to append delete ops into a version <= 3 log — both fail with a
/// version message, never a misleading chain-checksum error.
///
/// Durability: DeltaWriter::Append writes the record and fdatasync()s by
/// default, so an acknowledged append survives a crash. A crash mid-append
/// leaves a truncated tail; DeltaWriter::Open truncates it away (standard
/// WAL recovery) and DeltaReader replays the valid prefix.
///
/// All integers are host-endian, like every other rigpm persistence format.

/// Highest delta format version without delete ops (the original format;
/// versions 1..3 track the snapshot container versions they shipped with).
inline constexpr uint32_t kDeltaFormatAddOnly = 3;
/// Delta format v2: records may carry per-edge add/delete ops.
inline constexpr uint32_t kDeltaFormatOps = 4;
/// Record flag: the record body carries an op-kind byte per edge.
inline constexpr uint32_t kDeltaRecordHasOps = 1u << 0;
/// Size of the fixed file header preceding record 1 — the end offset of an
/// empty (freshly created) log, and the smallest offset DeltaReader::SeekTo
/// accepts.
inline constexpr uint64_t kDeltaFileHeaderBytes = 32;

enum class DeltaOpKind : uint8_t { kAdd = 0, kDelete = 1 };

/// One edge mutation. Ordered by (src, dst, kind) so normalized batches
/// are deterministic.
struct DeltaOp {
  NodeId src = 0;
  NodeId dst = 0;
  DeltaOpKind kind = DeltaOpKind::kAdd;

  friend bool operator==(const DeltaOp&, const DeltaOp&) = default;
  friend bool operator<(const DeltaOp& a, const DeltaOp& b) {
    if (a.src != b.src) return a.src < b.src;
    if (a.dst != b.dst) return a.dst < b.dst;
    return static_cast<uint8_t>(a.kind) < static_cast<uint8_t>(b.kind);
  }
};

/// Converts an add-only edge batch to ops (every op kAdd).
std::vector<DeltaOp> EdgesToOps(
    std::span<const std::pair<NodeId, NodeId>> edges);

/// One replayable op batch. Records read from a version <= 3 log (or
/// flags == 0 records of a version 4 log) come back with every op kAdd.
struct DeltaRecord {
  uint64_t seqno = 0;
  std::vector<DeltaOp> ops;

  uint64_t delete_count() const;
};

struct DeltaWriterOptions {
  /// fdatasync() after every record. Turn off only where losing the tail on
  /// a crash is acceptable (benchmarks).
  bool fsync_each_append = true;
  /// Format version stamped on a log this writer CREATES, and the highest
  /// version it will append to (an existing log keeps its own version; one
  /// newer than this is refused with a version message). Pass
  /// kDeltaFormatAddOnly to emulate a pre-ops build.
  uint32_t format_version = kDeltaFormatOps;
};

/// Appends op-batch records to a delta log, creating the file (and its
/// header) on first use. Open() recovers from a crashed append by
/// truncating the invalid tail, then positions at the end of the valid
/// prefix; Append() frames, checksums, and (by default) syncs one record.
class DeltaWriter {
 public:
  ~DeltaWriter();

  DeltaWriter(const DeltaWriter&) = delete;
  DeltaWriter& operator=(const DeltaWriter&) = delete;

  /// Opens `path` for appending and takes an exclusive flock (held for
  /// the writer's lifetime; a second concurrent writer is refused). A
  /// missing or empty file is initialized with a header binding it to
  /// `base_checksum` and `base_num_nodes` (and the directory entry
  /// fsynced); an existing log must carry the same base checksum
  /// (appending records for a different base would make the whole log
  /// unreplayable) and `base_num_nodes` is then read from it, so callers
  /// may pass 0 to mean "whatever the log says" — decoding the base graph
  /// is only needed to CREATE a log. A TORN tail — a record whose bytes
  /// end at EOF, i.e. a crashed append — is truncated to the last valid
  /// record; full-size records that fail validation are treated as
  /// corruption of acknowledged data and make Open refuse rather than
  /// destroy them. (Deliberate tradeoff: on filesystems whose crash
  /// behavior can extend the file size before all data blocks land, an
  /// UNACKNOWLEDGED torn append may leave a full-size-but-invalid tail
  /// indistinguishable from corruption of an acknowledged record — Open
  /// refuses that too, favoring "never silently drop acknowledged data"
  /// over auto-recovery; the operator inspects and rebuilds the log.) A
  /// nonempty file that is not a delta log — including one shorter than
  /// the header — is refused, never overwritten. Returns null with *error
  /// on failure.
  static std::unique_ptr<DeltaWriter> Open(const std::string& path,
                                           uint64_t base_checksum,
                                           uint32_t base_num_nodes,
                                           std::string* error,
                                           DeltaWriterOptions options = {});

  /// Appends one record holding `ops` and assigns it the next sequence
  /// number. Every endpoint must be < base_num_nodes() — a violating batch
  /// is rejected whole (the format layer's own enforcement that no record
  /// can ever be unreplayable, on top of the callers' earlier checks). A
  /// batch containing delete ops is refused with a version message when
  /// the log's format version predates ops (format_version() <
  /// kDeltaFormatOps). An empty batch is valid (and replayable) but
  /// pointless; callers usually skip it.
  bool AppendOps(std::span<const DeltaOp> ops, std::string* error);

  /// Add-only convenience over AppendOps.
  bool Append(std::span<const std::pair<NodeId, NodeId>> edges,
              std::string* error);
  bool Append(std::initializer_list<std::pair<NodeId, NodeId>> edges,
              std::string* error) {
    return Append(std::span<const std::pair<NodeId, NodeId>>(edges.begin(),
                                                             edges.size()),
                  error);
  }

  uint64_t base_checksum() const { return base_checksum_; }
  /// Node count of the base graph (from the header; the endpoint bound).
  uint32_t base_num_nodes() const { return base_num_nodes_; }
  /// The log's format version (from its header, or the creation stamp).
  uint32_t format_version() const { return format_version_; }
  /// Sequence number the next Append will stamp.
  uint64_t next_seqno() const { return last_seqno_ + 1; }
  /// Records in the log (== last stamped sequence number).
  uint64_t record_count() const { return last_seqno_; }

 private:
  DeltaWriter() = default;

  int fd_ = -1;
  uint64_t base_checksum_ = 0;
  uint32_t base_num_nodes_ = 0;
  uint32_t format_version_ = kDeltaFormatOps;
  uint64_t last_seqno_ = 0;
  uint64_t chain_checksum_ = 0;  // checksum of the last record (seed chain)
  /// A failed append whose rollback ALSO failed left unknown bytes at the
  /// tail; further appends would land after them and become unreadable.
  /// All later Appends fail until the log is reopened (recovery rescans).
  bool poisoned_ = false;
  DeltaWriterOptions options_;
};

/// Sequential reader over a delta log: validates the header, then hands out
/// records one at a time, verifying the base-checksum binding, sequence
/// numbering, and the seeded checksum chain as it goes. A truncated or
/// corrupt tail ends iteration at the last valid record (`truncated()`
/// reports it) — the valid prefix is always replayable.
///
/// IO: mmap mode maps the file read-only (MappedFile, the same mechanism
/// SnapshotReader uses); read mode slurps it into private memory. Delta
/// logs are small next to their base snapshot, so both are cheap. Caveat:
/// unlike snapshots (immutable, replaced by rename), a delta log mutates
/// in place — a concurrently recovering writer may ftruncate a torn tail,
/// and shrinking a mapped file SIGBUSes readers of the vanished pages.
/// Long-lived processes that poll a log while writers may restart (the
/// daemon's kRefresh) should therefore use kRead; one-shot CLI reads are
/// fine either way.
class DeltaReader {
 public:
  explicit DeltaReader(const std::string& path,
                       SnapshotIoMode mode = DefaultSnapshotIoMode());

  DeltaReader(const DeltaReader&) = delete;
  DeltaReader& operator=(const DeltaReader&) = delete;

  /// Header was valid; records may be read.
  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

  uint64_t base_checksum() const { return base_checksum_; }
  /// Node count of the base graph, from the header.
  uint32_t base_num_nodes() const { return base_num_nodes_; }
  /// The log's format version, from the header.
  uint32_t format_version() const { return format_version_; }

  /// Reads the next valid record into *out. Returns false at the end of
  /// the valid prefix — either a clean end of file, or a truncated/corrupt
  /// tail (distinguish with truncated()).
  bool Next(DeltaRecord* out);

  /// True once Next() has hit an invalid tail: bytes remain after the last
  /// valid record but they do not form one. tail_error() describes why,
  /// and tail_torn() distinguishes the two classes: true = the record
  /// simply runs past end-of-file (a crashed, never-acknowledged append —
  /// benign, the valid prefix is complete), false = full-size bytes that
  /// fail validation (corruption of acknowledged data — the prefix is NOT
  /// everything that was written; surface it, do not compact over it).
  bool truncated() const { return truncated_; }
  bool tail_torn() const { return tail_torn_; }
  const std::string& tail_error() const { return tail_error_; }

  /// Records successfully returned by Next() so far.
  uint64_t records_read() const { return records_read_; }

  /// Sequence number of the last record Next() returned (0 before any),
  /// or the resume seqno installed by SeekTo.
  uint64_t last_seqno() const { return last_seqno_; }

  /// Checksum-chain value after the last record Next() returned (the base
  /// checksum before any). Two logs agree on a prefix iff they agree on
  /// this value at its end — consumers resuming "after seqno N" compare it
  /// to detect a log that was truncated and rewritten with reused seqnos.
  uint64_t chain_checksum() const { return chain_checksum_; }

  /// Byte offset of the next unread record (the header size on a fresh
  /// reader). Together with chain_checksum() and the last seqno it names a
  /// resume point for SeekTo.
  uint64_t offset() const { return offset_; }

  /// Positions the reader at a previously recorded resume point — the
  /// O(tail) refresh poll: instead of re-validating the whole chain from
  /// the header, a caller that stored (offset, last_seqno, chain) when it
  /// last applied the log resumes right there and pays only for new bytes.
  /// The very next record is still fully validated against the seeded
  /// chain, so a log that was truncated-and-rewritten underneath the
  /// caller surfaces as a corrupt tail (the caller then falls back to a
  /// full from-the-header read for an exact diagnosis). Returns false
  /// (reader unusable for fast resume; construct a fresh one) when
  /// `offset` is out of bounds — e.g. the log shrank.
  bool SeekTo(uint64_t offset, uint64_t last_seqno, uint64_t chain_checksum);

 private:
  const uint8_t* data_ = nullptr;  // whole file
  uint64_t size_ = 0;
  uint64_t offset_ = 0;  // next unread byte
  std::shared_ptr<MappedFile> mapping_;  // mmap mode keeps the file alive
  std::vector<uint8_t> buffer_;          // read mode owns the bytes
  uint64_t base_checksum_ = 0;
  uint32_t base_num_nodes_ = 0;
  uint32_t format_version_ = 0;
  uint64_t chain_checksum_ = 0;
  uint64_t last_seqno_ = 0;
  uint64_t records_read_ = 0;
  bool truncated_ = false;
  bool tail_torn_ = false;
  std::string tail_error_;
  std::string error_;
};

/// Returns a copy of `g` with `ops` applied: delete ops remove existing
/// edges, add ops insert new ones (the node set and labels are unchanged).
/// Every endpoint must be < g.NumNodes(); the caller validates. This is
/// the shared rebuild step of IncrementalMatcher, delta replay, and the
/// daemon's refresh. Pass `already_normalized = true` when the caller has
/// run NormalizeDeltaOps itself (IncrementalMatcher must, to journal
/// exactly the ops that change the graph) to skip the second pass.
Graph ApplyDeltaOps(const Graph& g, std::span<const DeltaOp> ops,
                    bool already_normalized = false);

/// Add-only convenience over ApplyDeltaOps (`already_deduplicated` maps to
/// `already_normalized`). Kept for the many add-only callers; deletions go
/// through ApplyDeltaOps.
Graph ApplyEdgesToGraph(const Graph& g,
                        std::span<const std::pair<NodeId, NodeId>> new_edges,
                        bool already_deduplicated = false);

struct ReplayStats {
  uint64_t records_applied = 0;
  uint64_t edges_in_records = 0;  // ops in applied records, pre-normalize
  uint64_t delete_ops = 0;        // of which deletes
  uint64_t last_seqno = 0;        // 0 when nothing was applied
  /// Chain checksum at the resume point: the checksum of the record with
  /// seqno == after_seqno (the reader's base checksum when after_seqno is
  /// 0), or 0 if the log never reached after_seqno. A caller that stored
  /// this value when it applied record after_seqno compares it to detect a
  /// rewritten log (see DeltaReader::chain_checksum()).
  uint64_t resume_chain = 0;
  /// Chain checksum after the last applied record (== resume_chain when
  /// nothing applied); store it alongside last_seqno for the next resume.
  uint64_t end_chain = 0;
  /// Byte offset just past the last applied record (the resume-point
  /// offset when nothing applied). Store it with end_chain/last_seqno to
  /// make the next poll O(tail) via DeltaReader::SeekTo.
  uint64_t end_offset = 0;
};

/// Checks that every endpoint in `edges` names an existing node
/// (< num_nodes). False with a descriptive *error on the first violation —
/// the shared enforcement of the format's core precondition (a journaled
/// record must always replay against its base): IncrementalMatcher checks
/// before journaling, `rigpm_cli delta append` before appending, and
/// replay before applying.
bool ValidateEdgeEndpoints(std::span<const std::pair<NodeId, NodeId>> edges,
                           uint32_t num_nodes, std::string* error);

/// Op-batch flavor of ValidateEdgeEndpoints.
bool ValidateOpEndpoints(std::span<const DeltaOp> ops, uint32_t num_nodes,
                         std::string* error);

/// Sorts *edges, drops in-batch duplicates, and drops edges `g` already
/// has — the add-only special case of NormalizeDeltaOps, kept for callers
/// that deal in plain edge batches.
void DedupeNewEdges(const Graph& g,
                    std::vector<std::pair<NodeId, NodeId>>* edges);

/// Reduces *ops to exactly the mutations that change `g`: within the
/// batch the LAST op per (src, dst) wins (add-then-delete of the same edge
/// is a delete, and vice versa), then adds of edges `g` already has and
/// deletes of edges it lacks are dropped. The result is sorted by
/// (src, dst). This is the one definition of "the ops that actually change
/// the graph", shared by journaling (IncrementalMatcher) and replay
/// (ApplyDeltaOps) so the two can never diverge.
void NormalizeDeltaOps(const Graph& g, std::vector<DeltaOp>* ops);

/// Reads every record of `reader` with seqno > `after_seqno`, validating
/// each endpoint against `num_nodes`, and appends their ops to *ops.
/// False (with *error) on an out-of-range endpoint or an unreadable log.
/// This is ReplayDelta without the graph rebuild — callers that may find
/// nothing new (the daemon's caught-up refresh poll) use it to avoid
/// materializing a merged graph just to discard it.
bool CollectDeltaOps(DeltaReader& reader, uint32_t num_nodes,
                     uint64_t after_seqno, std::vector<DeltaOp>* ops,
                     ReplayStats* stats, std::string* error);

/// Replays every record of `reader` with seqno > `after_seqno` over `base`
/// and returns the merged graph. Fails (nullopt + *error) if any applied
/// record references a node that does not exist in `base` — a journaled
/// log never contains such a record (IncrementalMatcher validates before
/// journaling), so hitting one means the log does not belong to this base.
/// A truncated tail is NOT an error here: the valid prefix is replayed and
/// the caller can consult reader.truncated().
std::optional<Graph> ReplayDelta(const Graph& base, DeltaReader& reader,
                                 std::string* error,
                                 ReplayStats* stats = nullptr,
                                 uint64_t after_seqno = 0);

}  // namespace rigpm

#endif  // RIGPM_STORAGE_DELTA_LOG_H_
