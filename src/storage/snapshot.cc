#include "storage/snapshot.h"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "reach/bfl_index.h"
#include "storage/delta_log.h"

namespace rigpm {

namespace {

constexpr char kMagic[8] = {'R', 'I', 'G', 'P', 'M', 'S', 'N', 'P'};
constexpr size_t kHeaderBytes = sizeof(kMagic) + 2 * sizeof(uint32_t) +
                                sizeof(uint64_t);
// The zero-copy alignment contract (ByteSink::PadTo8 pads relative to the
// payload start) only holds because the header size keeps payload offsets
// congruent to file offsets mod 8.
static_assert(kHeaderBytes % 8 == 0,
              "payload must start 8-byte aligned in the file");

// Streaming fallback granularity: bounded so a corrupt payload_size from an
// unseekable source can never trigger one huge up-front allocation — the
// buffer grows chunk by chunk with the bytes that actually arrive, and a
// short source fails with `truncated` long before memory becomes a problem.
constexpr size_t kReadChunkBytes = size_t{4} << 20;

void SetError(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
}

struct SnapshotHeader {
  uint32_t version = 0;
  uint32_t kind_value = 0;
  uint64_t payload_size = 0;
};

// Extracts the header fields from the 24 header bytes; false (with *error)
// on bad magic. No version/kind validation — InspectSnapshot reports even
// versions this build cannot load.
bool ExtractHeader(const uint8_t* bytes, SnapshotHeader* out,
                   std::string* error) {
  if (std::memcmp(bytes, kMagic, sizeof(kMagic)) != 0) {
    *error = "bad snapshot magic (not a rigpm snapshot)";
    return false;
  }
  std::memcpy(&out->version, bytes + sizeof(kMagic), sizeof(uint32_t));
  std::memcpy(&out->kind_value, bytes + sizeof(kMagic) + sizeof(uint32_t),
              sizeof(uint32_t));
  std::memcpy(&out->payload_size, bytes + sizeof(kMagic) + 2 * sizeof(uint32_t),
              sizeof(uint64_t));
  return true;
}

// ExtractHeader plus the validation loading requires: supported version,
// expected kind.
bool ParseHeader(const uint8_t* bytes, SnapshotKind expected_kind,
                 SnapshotHeader* out, std::string* error) {
  if (!ExtractHeader(bytes, out, error)) return false;
  if (out->version < kMinSnapshotVersion || out->version > kSnapshotVersion) {
    *error = "unsupported snapshot version " + std::to_string(out->version) +
             " (this build reads versions " +
             std::to_string(kMinSnapshotVersion) + ".." +
             std::to_string(kSnapshotVersion) + ")";
    return false;
  }
  if (out->kind_value != static_cast<uint32_t>(expected_kind)) {
    *error = "snapshot kind mismatch (file has kind " +
             std::to_string(out->kind_value) + ", expected " +
             std::to_string(static_cast<uint32_t>(expected_kind)) + ")";
    return false;
  }
  return true;
}

}  // namespace

SnapshotIoMode DefaultSnapshotIoMode() {
  const char* raw = std::getenv("RIGPM_SNAPSHOT_IO");
  if (raw != nullptr && std::strcmp(raw, "read") == 0) {
    return SnapshotIoMode::kRead;
  }
  return SnapshotIoMode::kMmap;
}

bool WriteSnapshotFile(const std::string& path, SnapshotKind kind,
                       const ByteSink& payload, std::string* error,
                       uint32_t version) {
  if (version < kMinSnapshotVersion || version > kSnapshotVersion) {
    SetError(error, "cannot write snapshot version " + std::to_string(version));
    return false;
  }
  // Write to a temp file and rename over the target: daemons may be serving
  // queries straight out of a MAP_SHARED mapping of `path`, and truncating
  // it in place would feed them half-written bytes (or SIGBUS them past a
  // shortened EOF). rename() leaves existing mappings pinned to the old
  // inode; they keep serving the old snapshot until restart.
  const std::string tmp_path =
      path + ".tmp." + std::to_string(::getpid());
  std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
  if (!out) {
    SetError(error, "cannot open " + tmp_path + " for writing");
    return false;
  }
  uint32_t kind_value = static_cast<uint32_t>(kind);
  uint64_t payload_size = payload.size();
  uint64_t checksum = Checksum64(payload.data().data(), payload.size());
  out.write(kMagic, sizeof(kMagic));
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  out.write(reinterpret_cast<const char*>(&kind_value), sizeof(kind_value));
  out.write(reinterpret_cast<const char*>(&payload_size),
            sizeof(payload_size));
  out.write(reinterpret_cast<const char*>(payload.data().data()),
            static_cast<std::streamsize>(payload.size()));
  out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  out.close();
  if (!out) {
    SetError(error, "short write to " + tmp_path);
    std::remove(tmp_path.c_str());
    return false;
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    SetError(error, "cannot rename " + tmp_path + " to " + path);
    std::remove(tmp_path.c_str());
    return false;
  }
  return true;
}

std::optional<SnapshotInfo> InspectSnapshot(const std::string& path,
                                            std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    SetError(error, "cannot open " + path);
    return std::nullopt;
  }
  uint8_t header[kHeaderBytes];
  in.read(reinterpret_cast<char*>(header), sizeof(header));
  if (static_cast<size_t>(in.gcount()) < sizeof(header)) {
    SetError(error, "truncated snapshot (smaller than header)");
    return std::nullopt;
  }
  SnapshotHeader fields;
  std::string extract_error;
  if (!ExtractHeader(header, &fields, &extract_error)) {
    SetError(error, extract_error);
    return std::nullopt;
  }
  SnapshotInfo info;
  info.version = fields.version;
  info.kind_value = fields.kind_value;
  info.payload_size = fields.payload_size;
  info.aligned = info.version >= 2;
  info.run_encoded = info.version >= 3;
  if (fields.kind_value == static_cast<uint32_t>(SnapshotKind::kDelta)) {
    // Delta logs reuse the container head but not its framing: the u64 slot
    // is the base snapshot checksum, the head is followed by an 8-byte
    // delta extension (base node count + reserved, storage/delta_log.h),
    // and there is no trailing footer — the single-payload size/footer
    // cross-checks below do not apply.
    constexpr uint64_t kDeltaHeaderBytes = kHeaderBytes + 2 * sizeof(uint32_t);
    info.stored_checksum = fields.payload_size;
    info.payload_size = 0;
    in.seekg(0, std::ios::end);
    const std::streamoff delta_end = static_cast<std::streamoff>(in.tellg());
    if (in && delta_end >= static_cast<std::streamoff>(kDeltaHeaderBytes)) {
      info.file_size = static_cast<uint64_t>(delta_end);
      info.payload_size = info.file_size - kDeltaHeaderBytes;  // record area
    }
    return info;
  }
  in.seekg(0, std::ios::end);
  const std::streamoff end_pos = static_cast<std::streamoff>(in.tellg());
  if (in && end_pos >= 0) {
    info.file_size = static_cast<uint64_t>(end_pos);
    if (info.file_size < kHeaderBytes + sizeof(uint64_t) ||
        info.payload_size !=
            info.file_size - kHeaderBytes - sizeof(uint64_t)) {
      SetError(error, "snapshot payload size does not match the file size");
      return std::nullopt;
    }
    in.clear();
    in.seekg(static_cast<std::streamoff>(kHeaderBytes + info.payload_size),
             std::ios::beg);
    in.read(reinterpret_cast<char*>(&info.stored_checksum),
            sizeof(info.stored_checksum));
    if (!in) {
      SetError(error, "truncated snapshot footer");
      return std::nullopt;
    }
  }
  return info;
}

SnapshotReader::SnapshotReader(const std::string& path,
                               SnapshotKind expected_kind,
                               SnapshotIoMode mode) {
  if (mode == SnapshotIoMode::kMmap) {
    std::string map_error;
    mapping_ = MappedFile::Open(path, &map_error);
    if (mapping_ != nullptr) {
      InitFromMapping(expected_kind);
      return;
    }
    // Unmappable source (FIFO, special filesystem, ...): graceful fallback
    // to the streaming read below. A missing file fails there too, with a
    // proper error.
  }
  InitFromStream(path, expected_kind);
}

void SnapshotReader::InitFromMapping(SnapshotKind expected_kind) {
  const uint8_t* data = mapping_->data();
  const uint64_t file_size = mapping_->size();
  if (file_size < kHeaderBytes + sizeof(uint64_t)) {
    error_ = "truncated snapshot (smaller than header)";
    return;
  }
  SnapshotHeader header;
  if (!ParseHeader(data, expected_kind, &header, &error_)) return;
  // The declared payload must fit exactly between the header and the
  // trailing checksum; this bounds every read before any byte is decoded.
  if (header.payload_size != file_size - kHeaderBytes - sizeof(uint64_t)) {
    error_ = "snapshot payload size does not match the file size";
    return;
  }
  payload_size_ = header.payload_size;
  const uint8_t* payload = data + kHeaderBytes;
  uint64_t stored_checksum = 0;
  std::memcpy(&stored_checksum, payload + payload_size_,
              sizeof(stored_checksum));
  // Checksummed in place — no private copy of the payload is ever made.
  if (stored_checksum != Checksum64(payload, payload_size_)) {
    error_ = "snapshot checksum mismatch (file is corrupt)";
    return;
  }
  stored_checksum_ = stored_checksum;
  // The sequential pass is done; what follows is decode + point queries.
  mapping_->AdviseRandom();
  source_.emplace(payload, payload_size_);
  if (header.version < 2) source_->SetUnpadded();
  if (header.version < 3) source_->DisallowRunContainers();
  // Deserialized objects retain the mapping via this token, so they outlive
  // the reader (and the mapping outlives them all).
  source_->EnableZeroCopy(mapping_);
}

void SnapshotReader::InitFromStream(const std::string& path,
                                    SnapshotKind expected_kind) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    error_ = "cannot open " + path;
    return;
  }
  uint8_t header_bytes[kHeaderBytes];
  in.read(reinterpret_cast<char*>(header_bytes), sizeof(header_bytes));
  if (static_cast<size_t>(in.gcount()) < sizeof(header_bytes)) {
    error_ = "truncated snapshot (smaller than header)";
    return;
  }
  SnapshotHeader header;
  if (!ParseHeader(header_bytes, expected_kind, &header, &error_)) return;

  // Regular files know their size up front: cross-check the declared
  // payload size before reading (and reserve exactly once). Unseekable
  // sources (FIFOs) cannot be cross-checked; the bounded chunk loop below
  // keeps a lying header from allocating more than what actually arrives.
  bool seekable = false;
  {
    const std::streamoff pos = static_cast<std::streamoff>(in.tellg());
    if (in && pos >= 0) {
      in.seekg(0, std::ios::end);
      const std::streamoff end_pos = static_cast<std::streamoff>(in.tellg());
      if (in && end_pos >= 0) {
        seekable = true;
        const auto file_size = static_cast<uint64_t>(end_pos);
        // Guard the subtraction: a file of 24..31 bytes (header but no
        // checksum footer) must not wrap into a huge expected size.
        if (file_size < kHeaderBytes + sizeof(uint64_t)) {
          error_ = "truncated snapshot (smaller than header)";
          return;
        }
        if (header.payload_size !=
            file_size - kHeaderBytes - sizeof(uint64_t)) {
          error_ = "snapshot payload size does not match the file size";
          return;
        }
        in.seekg(pos, std::ios::beg);
      } else {
        in.clear();
      }
    } else {
      in.clear();
    }
  }

  payload_size_ = header.payload_size;
  // Seekable sources have a cross-checked size: allocate exactly once,
  // uninitialized (zeroing hundreds of MB just to overwrite them with the
  // read is measurable). Unseekable sources grow a vector chunk by chunk —
  // the zero-init there is the price of not trusting a lying header.
  uint8_t* dest = nullptr;
  if (seekable) {
    payload_raw_ = std::make_unique_for_overwrite<uint8_t[]>(payload_size_);
    dest = payload_raw_.get();
  }
  Checksum64Stream checksum;
  uint64_t got = 0;
  while (got < payload_size_) {
    const size_t chunk = static_cast<size_t>(
        std::min<uint64_t>(kReadChunkBytes, payload_size_ - got));
    if (!seekable) {
      payload_buf_.resize(got + chunk);
      dest = payload_buf_.data();
    }
    in.read(reinterpret_cast<char*>(dest + got),
            static_cast<std::streamsize>(chunk));
    const size_t n = static_cast<size_t>(in.gcount());
    if (n == 0) {
      error_ = "truncated snapshot payload";
      return;
    }
    checksum.Update(dest + got, n);
    got += n;
    if (n < chunk) {
      if (!seekable) payload_buf_.resize(got);
      in.clear();  // keep reading: a FIFO may deliver short counts
    }
  }
  uint64_t stored_checksum = 0;
  in.read(reinterpret_cast<char*>(&stored_checksum), sizeof(stored_checksum));
  if (static_cast<size_t>(in.gcount()) < sizeof(stored_checksum)) {
    error_ = "truncated snapshot payload";
    return;
  }
  if (stored_checksum != checksum.Finish()) {
    error_ = "snapshot checksum mismatch (file is corrupt)";
    return;
  }
  stored_checksum_ = stored_checksum;
  source_.emplace(seekable ? payload_raw_.get() : payload_buf_.data(),
                  payload_size_);
  if (header.version < 2) source_->SetUnpadded();
  if (header.version < 3) source_->DisallowRunContainers();
  // No zero copy: decode copies out of payload_buf_, which dies with the
  // reader.
}

bool SnapshotReader::Finish() {
  if (!ok()) return false;
  if (!source_->ok()) {
    error_ = source_->error();
    return false;
  }
  if (source_->remaining() != 0) {
    error_ = "snapshot payload has trailing bytes";
    return false;
  }
  return true;
}

// ------------------------------------------------------------------ graphs

bool SaveGraphSnapshot(const Graph& g, const std::string& path,
                       std::string* error) {
  ByteSink sink;
  g.Serialize(sink);
  return WriteSnapshotFile(path, SnapshotKind::kGraph, sink, error);
}

namespace {

/// The loader-side half of LoadOptions::expected_kind: a caller that
/// asserted a kind must have routed the path to the loader that decodes it.
bool CheckExpectedKind(const LoadOptions& options, SnapshotKind decodes,
                       std::string* error) {
  if (options.expected_kind == SnapshotKind{0} ||
      options.expected_kind == decodes) {
    return true;
  }
  SetError(error, "caller expects snapshot kind " +
                      std::to_string(
                          static_cast<uint32_t>(options.expected_kind)) +
                      " but this loader decodes kind " +
                      std::to_string(static_cast<uint32_t>(decodes)));
  return false;
}

/// Shared delta-overlay step of the Load* entry points — one definition of
/// "base + log", identical to the daemon's kRefresh replay. Returns false
/// (with *error) on an unusable log. On success *merged holds the merged
/// graph when records actually applied, and stays empty in the caught-up
/// states (missing log, zero-length log, fully-compacted-away log) so an
/// mmap-backed base is never deep-copied just to be thrown away. *stats
/// reports the resume position for a later incremental refresh.
bool OverlayDelta(const Graph& base, uint64_t base_checksum,
                  const LoadOptions& options, std::optional<Graph>* merged,
                  ReplayStats* stats, std::string* error) {
  merged->reset();
  *stats = ReplayStats{};
  // The log is created lazily by the first append; loading before that (or
  // after a crash between open(O_CREAT) and the header write) is the same
  // healthy caught-up state the daemon's refresh poll reports.
  struct stat st{};
  if (::stat(options.delta_path.c_str(), &st) != 0) {
    if (errno == ENOENT) return true;
  } else if (st.st_size == 0) {
    return true;
  }
  DeltaReader reader(options.delta_path, options.delta_io);
  if (!reader.ok()) {
    SetError(error, "cannot read delta log: " + reader.error());
    return false;
  }
  if (reader.base_checksum() != base_checksum) {
    SetError(error, "delta log is bound to a different base snapshot");
    return false;
  }
  std::vector<DeltaOp> ops;
  if (!CollectDeltaOps(reader, base.NumNodes(), /*after_seqno=*/0, &ops,
                       stats, error)) {
    return false;
  }
  if (reader.truncated() && !reader.tail_torn()) {
    // Corruption of acknowledged data — not the benign crashed-append tail.
    // Serving the valid prefix would silently drop journaled updates.
    SetError(error, "delta log is corrupt after record " +
                        std::to_string(reader.records_read()) + " (" +
                        reader.tail_error() +
                        ") — refusing to load a silently partial graph");
    return false;
  }
  if (stats->records_applied == 0) return true;  // caught up; keep the base
  merged->emplace(ApplyDeltaOps(base, ops));
  return true;
}

}  // namespace

std::optional<Graph> LoadGraphSnapshot(const std::string& path,
                                       const LoadOptions& options,
                                       std::string* error) {
  if (!CheckExpectedKind(options, SnapshotKind::kGraph, error)) {
    return std::nullopt;
  }
  SnapshotReader reader(path, SnapshotKind::kGraph, options.io_mode);
  if (!reader.ok()) {
    SetError(error, reader.error());
    return std::nullopt;
  }
  Graph g = Graph::Deserialize(reader.source());
  if (!reader.Finish()) {
    SetError(error, reader.error());
    return std::nullopt;
  }
  if (!options.delta_path.empty()) {
    std::optional<Graph> merged;
    ReplayStats stats;
    if (!OverlayDelta(g, reader.stored_checksum(), options, &merged, &stats,
                      error)) {
      return std::nullopt;
    }
    if (merged.has_value()) return std::move(*merged);
  }
  return g;
}

// ----------------------------------------------------------------- engines

bool SaveEngineSnapshot(const GmEngine& engine, const std::string& path,
                        std::string* error) {
  const auto* bfl = dynamic_cast<const BflIndex*>(&engine.reach());
  if (bfl == nullptr) {
    SetError(error, "only BFL-backed engines can be snapshotted (engine uses " +
                        engine.reach().Name() + ")");
    return false;
  }
  ByteSink sink;
  engine.graph().Serialize(sink);
  bfl->Serialize(sink);
  return WriteSnapshotFile(path, SnapshotKind::kEngine, sink, error);
}

std::optional<WarmEngine> LoadEngineSnapshot(const std::string& path,
                                             const LoadOptions& options,
                                             std::string* error) {
  if (!CheckExpectedKind(options, SnapshotKind::kEngine, error)) {
    return std::nullopt;
  }
  SnapshotReader reader(path, SnapshotKind::kEngine, options.io_mode);
  if (!reader.ok()) {
    SetError(error, reader.error());
    return std::nullopt;
  }
  auto graph = std::make_unique<Graph>(Graph::Deserialize(reader.source()));
  std::unique_ptr<BflIndex> bfl = BflIndex::Deserialize(reader.source());
  if (!reader.Finish() || bfl == nullptr) {
    SetError(error, reader.error());
    return std::nullopt;
  }
  if (bfl->condensation().NumNodes() != graph->NumNodes()) {
    SetError(error, "engine snapshot index does not match its graph");
    return std::nullopt;
  }
  // The engine keeps its own copies of the condensation and interval labels
  // (identical to the index's, both being deterministic functions of the
  // graph); copying vectors is memcpy-cheap next to rebuilding them.
  auto condensation = std::make_unique<Condensation>(bfl->condensation());
  auto intervals = std::make_unique<IntervalLabels>(bfl->intervals());
  WarmEngine warm;
  warm.graph = std::move(graph);
  warm.engine = std::make_unique<GmEngine>(*warm.graph, std::move(bfl),
                                           std::move(condensation),
                                           std::move(intervals));
  warm.stored_checksum = reader.stored_checksum();
  if (!options.delta_path.empty()) {
    std::optional<Graph> merged;
    ReplayStats stats;
    if (!OverlayDelta(*warm.graph, warm.stored_checksum, options, &merged,
                      &stats, error)) {
      return std::nullopt;
    }
    if (merged.has_value()) {
      warm.engine.reset();  // references the base graph; drop it first
      warm.graph = std::make_unique<Graph>(std::move(*merged));
      warm.engine = std::make_unique<GmEngine>(*warm.graph);
      warm.applied_seqno = stats.last_seqno;
      warm.applied_chain = stats.end_chain;
    }
    warm.applied_end_offset = stats.end_offset;
    // An empty (or fully-compacted-away) log keeps the warm start warm:
    // the snapshot's prebuilt index is already exactly right.
  }
  return warm;
}

}  // namespace rigpm
