#include "storage/snapshot.h"

#include <cstring>
#include <utility>

#include "reach/bfl_index.h"

namespace rigpm {

namespace {

constexpr char kMagic[8] = {'R', 'I', 'G', 'P', 'M', 'S', 'N', 'P'};
constexpr size_t kHeaderBytes = sizeof(kMagic) + 2 * sizeof(uint32_t) +
                                sizeof(uint64_t);

void SetError(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
}

}  // namespace

bool WriteSnapshotFile(const std::string& path, SnapshotKind kind,
                       const ByteSink& payload, std::string* error) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    SetError(error, "cannot open " + path + " for writing");
    return false;
  }
  uint32_t version = kSnapshotVersion;
  uint32_t kind_value = static_cast<uint32_t>(kind);
  uint64_t payload_size = payload.size();
  uint64_t checksum = Checksum64(payload.data().data(), payload.size());
  out.write(kMagic, sizeof(kMagic));
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  out.write(reinterpret_cast<const char*>(&kind_value), sizeof(kind_value));
  out.write(reinterpret_cast<const char*>(&payload_size),
            sizeof(payload_size));
  out.write(reinterpret_cast<const char*>(payload.data().data()),
            static_cast<std::streamsize>(payload.size()));
  out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  if (!out) {
    SetError(error, "short write to " + path);
    return false;
  }
  return true;
}

SnapshotReader::SnapshotReader(const std::string& path,
                               SnapshotKind expected_kind) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    error_ = "cannot open " + path;
    return;
  }
  in.seekg(0, std::ios::end);
  // tellg() returns -1 on failure (unseekable source, failed stream);
  // casting that straight to uint64_t would fabricate a ~2^64 "file size"
  // that defeats every size check below, so reject it explicitly.
  const std::streamoff end_pos = static_cast<std::streamoff>(in.tellg());
  if (!in || end_pos < 0) {
    error_ = "cannot determine size of " + path +
             " (unseekable or failed stream)";
    return;
  }
  const auto file_size = static_cast<uint64_t>(end_pos);
  in.seekg(0, std::ios::beg);
  if (!in) {
    error_ = "cannot rewind " + path;
    return;
  }
  if (file_size < kHeaderBytes + sizeof(uint64_t)) {
    error_ = "truncated snapshot (smaller than header)";
    return;
  }

  char magic[sizeof(kMagic)];
  uint32_t version = 0;
  uint32_t kind_value = 0;
  uint64_t payload_size = 0;
  in.read(magic, sizeof(magic));
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  in.read(reinterpret_cast<char*>(&kind_value), sizeof(kind_value));
  in.read(reinterpret_cast<char*>(&payload_size), sizeof(payload_size));
  if (!in) {
    error_ = "truncated snapshot header";
    return;
  }
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    error_ = "bad snapshot magic (not a rigpm snapshot)";
    return;
  }
  if (version != kSnapshotVersion) {
    error_ = "unsupported snapshot version " + std::to_string(version) +
             " (this build reads version " +
             std::to_string(kSnapshotVersion) + ")";
    return;
  }
  if (kind_value != static_cast<uint32_t>(expected_kind)) {
    error_ = "snapshot kind mismatch (file has kind " +
             std::to_string(kind_value) + ", expected " +
             std::to_string(static_cast<uint32_t>(expected_kind)) + ")";
    return;
  }
  // The declared payload must fit between the header and the trailing
  // checksum; this bounds the slurp allocation (and every ReadVec inside
  // it) before any bytes are decoded.
  if (payload_size != file_size - kHeaderBytes - sizeof(uint64_t)) {
    error_ = "snapshot payload size does not match the file size";
    return;
  }
  // make_unique_for_overwrite: the buffer is about to be filled by the
  // read; zero-initializing hundreds of MB first is measurable.
  payload_size_ = payload_size;
  payload_ = std::make_unique_for_overwrite<uint8_t[]>(payload_size);
  in.read(reinterpret_cast<char*>(payload_.get()),
          static_cast<std::streamsize>(payload_size));
  uint64_t stored_checksum = 0;
  in.read(reinterpret_cast<char*>(&stored_checksum), sizeof(stored_checksum));
  if (!in) {
    error_ = "truncated snapshot payload";
    return;
  }
  if (stored_checksum != Checksum64(payload_.get(), payload_size_)) {
    error_ = "snapshot checksum mismatch (file is corrupt)";
    return;
  }
  source_.emplace(payload_.get(), payload_size_);
}

bool SnapshotReader::Finish() {
  if (!ok()) return false;
  if (!source_->ok()) {
    error_ = source_->error();
    return false;
  }
  if (source_->remaining() != 0) {
    error_ = "snapshot payload has trailing bytes";
    return false;
  }
  return true;
}

// ------------------------------------------------------------------ graphs

bool SaveGraphSnapshot(const Graph& g, const std::string& path,
                       std::string* error) {
  ByteSink sink;
  g.Serialize(sink);
  return WriteSnapshotFile(path, SnapshotKind::kGraph, sink, error);
}

std::optional<Graph> LoadGraphSnapshot(const std::string& path,
                                       std::string* error) {
  SnapshotReader reader(path, SnapshotKind::kGraph);
  if (!reader.ok()) {
    SetError(error, reader.error());
    return std::nullopt;
  }
  Graph g = Graph::Deserialize(reader.source());
  if (!reader.Finish()) {
    SetError(error, reader.error());
    return std::nullopt;
  }
  return g;
}

// ----------------------------------------------------------------- engines

bool SaveEngineSnapshot(const GmEngine& engine, const std::string& path,
                        std::string* error) {
  const auto* bfl = dynamic_cast<const BflIndex*>(&engine.reach());
  if (bfl == nullptr) {
    SetError(error, "only BFL-backed engines can be snapshotted (engine uses " +
                        engine.reach().Name() + ")");
    return false;
  }
  ByteSink sink;
  engine.graph().Serialize(sink);
  bfl->Serialize(sink);
  return WriteSnapshotFile(path, SnapshotKind::kEngine, sink, error);
}

std::optional<WarmEngine> LoadEngineSnapshot(const std::string& path,
                                             std::string* error) {
  SnapshotReader reader(path, SnapshotKind::kEngine);
  if (!reader.ok()) {
    SetError(error, reader.error());
    return std::nullopt;
  }
  auto graph = std::make_unique<Graph>(Graph::Deserialize(reader.source()));
  std::unique_ptr<BflIndex> bfl = BflIndex::Deserialize(reader.source());
  if (!reader.Finish() || bfl == nullptr) {
    SetError(error, reader.error());
    return std::nullopt;
  }
  if (bfl->condensation().NumNodes() != graph->NumNodes()) {
    SetError(error, "engine snapshot index does not match its graph");
    return std::nullopt;
  }
  // The engine keeps its own copies of the condensation and interval labels
  // (identical to the index's, both being deterministic functions of the
  // graph); copying vectors is memcpy-cheap next to rebuilding them.
  auto condensation = std::make_unique<Condensation>(bfl->condensation());
  auto intervals = std::make_unique<IntervalLabels>(bfl->intervals());
  WarmEngine warm;
  warm.graph = std::move(graph);
  warm.engine = std::make_unique<GmEngine>(*warm.graph, std::move(bfl),
                                           std::move(condensation),
                                           std::move(intervals));
  return warm;
}

}  // namespace rigpm
